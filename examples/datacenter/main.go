// datacenter demonstrates the paper's scheduling result on a small fleet:
// transcoding tasks are first characterized on the baseline server, then
// placed one-to-one onto heterogeneous servers (the Table IV
// configurations) by the smart scheduler, and the outcome is compared with
// random and oracle placement.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	transcoding "repro"
)

func main() {
	// Ctrl-C cancels the context; the measurement matrix aborts mid-fill.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	tasks := transcoding.SchedulerTasks() // Table III
	configs := transcoding.Configs()      // Table IV

	fmt.Println("characterizing", len(tasks), "tasks on", len(configs), "server types (simulated)...")
	matrix, err := transcoding.MeasureScheduling(ctx, tasks, configs,
		transcoding.Workload{Frames: 10})
	if err != nil {
		log.Fatal(err)
	}
	outcome, err := transcoding.EvaluateSchedulers(matrix)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-6s %-13s %-22s %-9s %-9s\n", "task", "video", "baseline bottleneck", "smart", "best")
	for ti, t := range tasks {
		td := matrix.Reports[ti][0].Topdown
		bottleneck := "memory"
		switch {
		case td.BadSpec > td.MemBound && td.BadSpec > td.FrontEnd && td.BadSpec > td.CoreBound:
			bottleneck = "bad speculation"
		case td.FrontEnd > td.MemBound && td.FrontEnd > td.CoreBound:
			bottleneck = "front end"
		case td.CoreBound > td.MemBound:
			bottleneck = "core resources"
		}
		fmt.Printf("%-6s %-13s %-22s %-9s %-9s\n", t.Name, t.Video, bottleneck,
			configs[outcome.SmartAssign[ti]].Name, configs[outcome.BestAssign[ti]].Name)
	}

	fmt.Printf("\nspeedup over all-baseline fleet:\n")
	fmt.Printf("  random placement: %+6.2f %%\n",
		transcoding.SchedulerSpeedup(outcome.BaselineSeconds, outcome.RandomSeconds))
	fmt.Printf("  smart placement:  %+6.2f %%\n",
		transcoding.SchedulerSpeedup(outcome.BaselineSeconds, outcome.SmartSeconds))
	fmt.Printf("  oracle placement: %+6.2f %%\n",
		transcoding.SchedulerSpeedup(outcome.BaselineSeconds, outcome.BestSeconds))
	fmt.Printf("smart matches the oracle on %d of %d tasks\n",
		outcome.SmartMatchesBest, len(tasks))
}
