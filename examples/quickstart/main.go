// Quickstart: synthesize a vbench clip, encode it, decode it back, and
// check quality — the whole public API in under forty lines of logic.
package main

import (
	"fmt"
	"log"

	transcoding "repro"
)

func main() {
	// 1. Synthesize 24 frames of the "cricket" catalog entry at quarter
	//    resolution (deterministic: same call, same pixels).
	frames, err := transcoding.Synthesize("cricket", 24, 4)
	if err != nil {
		log.Fatal(err)
	}
	info, _ := transcoding.VideoByName("cricket")
	fmt.Printf("synthesized %d frames of %s (%dx%d, entropy %.1f)\n",
		len(frames), info.ShortName, frames[0].Width, frames[0].Height, info.Entropy)

	// 2. Encode with the paper's defaults: medium preset, CRF 23.
	opt := transcoding.DefaultOptions()
	stream, stats, err := transcoding.Encode(frames, info.FPS, opt)
	if err != nil {
		log.Fatal(err)
	}
	i, p, b := stats.CountTypes()
	fmt.Printf("encoded: %d bytes (%.0f kbps), PSNR %.2f dB, I/P/B = %d/%d/%d\n",
		len(stream), stats.BitrateKbps(), stats.AveragePSNR, i, p, b)

	// 3. Decode and verify round-trip quality.
	decoded, _, err := transcoding.Decode(stream)
	if err != nil {
		log.Fatal(err)
	}
	var psnr float64
	for k := range decoded {
		psnr += transcoding.PSNR(frames[k], decoded[k])
	}
	fmt.Printf("decoded %d frames, mean PSNR vs source %.2f dB\n",
		len(decoded), psnr/float64(len(decoded)))

	// 4. Transcode the stream to a smaller rendition, as a streaming
	//    service would for a lower-bandwidth client.
	small := transcoding.DefaultOptions()
	small.CRF = 33
	if err := transcoding.ApplyPreset(&small, "veryfast"); err != nil {
		log.Fatal(err)
	}
	small.CRF = 33
	stream2, stats2, err := transcoding.Transcode(stream, small)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transcoded to veryfast/crf33: %d bytes (%.0f kbps), PSNR %.2f dB\n",
		len(stream2), stats2.BitrateKbps(), stats2.AveragePSNR)
}
