// abrladder builds a per-title adaptive-bitrate ladder the way the serving
// layer does it: one POST /jobs request whose ladder of rungs fans out into
// independently placed rung jobs (here rung × segment parts), all reusing
// the single shared codec.Analysis artifact of the title. The example
// stands up an in-process orchestrator with a real HTTP listener, submits
// the ladder over the wire, waits for the parent job to settle, and then
// proves the shared-analysis economics from the metrics registry: N rungs
// cost exactly one analysis build plus N-1 cache hits.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/uarch"
)

// ladder is the rung plan: one rendition per quality tier, highest first.
// CRF is the quality knob; every rung inherits the job's preset and refs.
var ladder = []serve.Rung{
	{Name: "high", CRF: 20},
	{Name: "medium", CRF: 30},
	{Name: "low", CRF: 40},
	{Name: "minimal", CRF: 48},
}

func main() {
	const video = "house"
	hitKey := obs.Key("core_cache_hits", "cache", "analysis")
	missKey := obs.Key("core_cache_misses", "cache", "analysis")
	before := obs.Default().Snapshot()

	// A two-server loopback fleet: parts are placed independently, so even
	// this tiny example runs two rungs at a time.
	s, err := serve.New(serve.Config{
		Pool:  sched.UniformPool([]uarch.Config{uarch.Baseline()}, 2),
		Proto: core.Workload{Frames: 8, Scale: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	defer s.Stop()

	ln, err := net.Listen("tcp", "localhost:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	body, _ := json.Marshal(serve.JobRequest{Video: video, Ladder: ladder, Segments: 2})
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var parent serve.JobView
	if err := json.NewDecoder(resp.Body).Decode(&parent); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted ladder job %s for %s: %d rungs x 2 segments = %d parts\n\n",
		parent.ID, video, len(ladder), parent.PartsTotal)

	parent = waitDone(base, parent.ID)
	fmt.Printf("%-10s  %-8s  %4s  %-7s  %12s\n", "part", "rung", "crf", "segment", "sim seconds")
	for _, id := range parent.Parts {
		pv := getJob(base, id)
		seg := "whole"
		if pv.Segment != nil {
			seg = pv.Segment.String()
		}
		fmt.Printf("%-10s  %-8s  %4d  %-7s  %12.3f\n", pv.ID, pv.Rung, pv.CRF, seg, pv.SimSeconds)
	}
	fmt.Printf("\nladder settled in %s of simulated fleet time (%d/%d parts)\n",
		fmt.Sprintf("%.3fs", parent.SimSeconds), parent.PartsDone, parent.PartsTotal)

	// The shared-analysis claim, read off the default metrics registry: the
	// first rung of each segment builds the artifact, every other rung hits.
	after := obs.Default().Snapshot()
	hits := after.Counters[hitKey] - before.Counters[hitKey]
	misses := after.Counters[missKey] - before.Counters[missKey]
	const segments = 2
	wantMisses, wantHits := int64(segments), int64(segments*(len(ladder)-1))
	fmt.Printf("analysis artifacts: %d built, %d reused (want %d built, %d reused: N-1 hits per segment)\n",
		misses, hits, wantMisses, wantHits)
	if misses != wantMisses || hits != wantHits {
		log.Fatalf("rungs did not share analysis artifacts")
	}
}

func getJob(base, id string) serve.JobView {
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var v serve.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		log.Fatal(err)
	}
	return v
}

func waitDone(base, id string) serve.JobView {
	deadline := time.Now().Add(2 * time.Minute)
	for {
		v := getJob(base, id)
		switch v.State {
		case serve.StateDone:
			return v
		case serve.StateFailed, serve.StateCanceled:
			log.Fatalf("ladder job %s: %s (%s)", id, v.State, v.Error)
		}
		if time.Now().After(deadline) {
			log.Fatalf("ladder job %s did not settle", id)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
