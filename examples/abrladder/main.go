// abrladder builds a per-title adaptive-bitrate ladder, the workload that
// motivates the paper's introduction: a streaming service transcodes every
// upload into several renditions, picking encoder parameters per rung.
//
// For each rung's bitrate cap, the example searches the CRF scale for the
// highest quality that fits, using the real encoder — the same convex
// quality/size tradeoff Figure 2 describes.
package main

import (
	"fmt"
	"log"

	transcoding "repro"
)

// rung is one ladder entry: a bitrate ceiling for a class of clients.
type rung struct {
	name    string
	maxKbps float64
}

var ladder = []rung{
	{"high", 2000},
	{"medium", 900},
	{"low", 400},
	{"minimal", 150},
}

func main() {
	const video = "house"
	frames, err := transcoding.Synthesize(video, 24, 6)
	if err != nil {
		log.Fatal(err)
	}
	info, _ := transcoding.VideoByName(video)
	fmt.Printf("building ladder for %s (%d frames, entropy %.1f)\n\n",
		video, len(frames), info.Entropy)

	fmt.Printf("%-8s  %9s  %4s  %9s  %8s\n", "rung", "cap(kbps)", "crf", "got(kbps)", "PSNR(dB)")
	for _, r := range ladder {
		crf, stats := fitCRF(frames, info.FPS, r.maxKbps)
		if stats == nil {
			fmt.Printf("%-8s  %9.0f  cannot fit under cap\n", r.name, r.maxKbps)
			continue
		}
		fmt.Printf("%-8s  %9.0f  %4d  %9.0f  %8.2f\n",
			r.name, r.maxKbps, crf, stats.BitrateKbps(), stats.AveragePSNR)
	}
}

// fitCRF binary-searches the CRF scale for the smallest CRF (best quality)
// whose bitrate fits under the cap. Bitrate decreases monotonically in CRF,
// which makes the search sound.
func fitCRF(frames []*transcoding.Frame, fps int, maxKbps float64) (int, *transcoding.Stats) {
	lo, hi := 1, 51
	bestCRF := -1
	var bestStats *transcoding.Stats
	for lo <= hi {
		mid := (lo + hi) / 2
		opt := transcoding.DefaultOptions()
		if err := transcoding.ApplyPreset(&opt, "fast"); err != nil {
			log.Fatal(err)
		}
		opt.CRF = mid
		_, stats, err := transcoding.Encode(frames, fps, opt)
		if err != nil {
			log.Fatal(err)
		}
		if stats.BitrateKbps() <= maxKbps {
			bestCRF, bestStats = mid, stats
			hi = mid - 1 // try better quality
		} else {
			lo = mid + 1
		}
	}
	if bestCRF < 0 {
		return 0, nil
	}
	return bestCRF, bestStats
}
