// tuning explores the transcoding speed / quality / file-size triangle of
// Figure 2: how crf, refs and the preset trade the three metrics against
// each other, measured with the simulator so "speed" is microarchitectural
// time rather than host time.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	transcoding "repro"
)

func main() {
	// Ctrl-C cancels the context and aborts the remaining simulations.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	const video = "game2"
	w := transcoding.Workload{Video: video, Frames: 12}
	cfg := transcoding.BaselineConfig()

	fmt.Printf("speed/quality/size triangle on %q (simulated on %s)\n\n", video, cfg.Name)

	// Axis 1: crf. Raising it actively lowers quality, passively shrinks
	// files and speeds up transcoding.
	fmt.Println("varying crf (refs=3, medium):")
	fmt.Printf("  %4s  %9s  %9s  %8s\n", "crf", "time(ms)", "kbps", "PSNR")
	for _, crf := range []int{14, 20, 26, 32, 38, 44} {
		opt := transcoding.DefaultOptions()
		opt.CRF = crf
		rep, stats := profile(ctx, w, opt, cfg)
		fmt.Printf("  %4d  %9.2f  %9.0f  %8.2f\n",
			crf, rep.Seconds*1000, stats.BitrateKbps(), stats.AveragePSNR)
	}

	// Axis 2: refs. Raising it actively shrinks files, passively slows
	// transcoding; quality is unchanged (CRF holds it).
	fmt.Println("\nvarying refs (crf=23, medium):")
	fmt.Printf("  %4s  %9s  %9s  %8s\n", "refs", "time(ms)", "kbps", "PSNR")
	for _, refs := range []int{1, 2, 4, 8, 16} {
		opt := transcoding.DefaultOptions()
		opt.Refs = refs
		rep, stats := profile(ctx, w, opt, cfg)
		fmt.Printf("  %4d  %9.2f  %9.0f  %8.2f\n",
			refs, rep.Seconds*1000, stats.BitrateKbps(), stats.AveragePSNR)
	}

	// Axis 3: preset. The bundled deal across all options.
	fmt.Println("\nvarying preset (crf=23, refs=3):")
	fmt.Printf("  %-10s  %9s  %9s  %8s\n", "preset", "time(ms)", "kbps", "PSNR")
	for _, p := range []transcoding.Preset{"ultrafast", "veryfast", "medium", "slower"} {
		opt := transcoding.DefaultOptions()
		if err := transcoding.ApplyPreset(&opt, p); err != nil {
			log.Fatal(err)
		}
		opt.Refs = 3
		rep, stats := profile(ctx, w, opt, cfg)
		fmt.Printf("  %-10s  %9.2f  %9.0f  %8.2f\n",
			p, rep.Seconds*1000, stats.BitrateKbps(), stats.AveragePSNR)
	}
}

func profile(ctx context.Context, w transcoding.Workload, opt transcoding.Options, cfg transcoding.Config) (*transcoding.Report, *transcoding.Stats) {
	rep, stats, err := transcoding.Profile(ctx, transcoding.Job{Workload: w, Options: opt, Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	return rep, stats
}
