// metrics compares objective quality metrics (PSNR, SSIM) against bitrate
// across presets and CRF values — the measurement methodology behind the
// paper's quality axis, and a template for building rate-distortion curves
// with this library.
package main

import (
	"fmt"
	"log"
	"math"

	transcoding "repro"
)

func main() {
	const video = "landscape"
	frames, err := transcoding.Synthesize(video, 16, 6)
	if err != nil {
		log.Fatal(err)
	}
	info, _ := transcoding.VideoByName(video)
	fmt.Printf("rate-distortion sweep on %s (entropy %.1f, %d frames)\n\n",
		video, info.Entropy, len(frames))

	fmt.Printf("%-10s %4s  %9s  %8s  %7s  %8s\n",
		"preset", "crf", "kbps", "PSNR(dB)", "SSIM", "SSIM(dB)")
	for _, preset := range []transcoding.Preset{"veryfast", "medium", "slower"} {
		for _, crf := range []int{18, 26, 34, 42} {
			opt := transcoding.DefaultOptions()
			if err := transcoding.ApplyPreset(&opt, preset); err != nil {
				log.Fatal(err)
			}
			opt.CRF = crf
			stream, stats, err := transcoding.Encode(frames, info.FPS, opt)
			if err != nil {
				log.Fatal(err)
			}
			decoded, _, err := transcoding.Decode(stream)
			if err != nil {
				log.Fatal(err)
			}
			var ssim float64
			for k := range decoded {
				ssim += transcoding.SSIM(frames[k], decoded[k])
			}
			ssim /= float64(len(decoded))
			fmt.Printf("%-10s %4d  %9.0f  %8.2f  %7.4f  %8.2f\n",
				preset, crf, stats.BitrateKbps(), stats.AveragePSNR, ssim, ssimDB(ssim))
		}
		fmt.Println()
	}
	fmt.Println("higher presets buy bitrate at equal quality; higher crf buys")
	fmt.Println("bitrate at lower quality — the Figure 2 triangle in numbers.")
}

// ssimDB is the conventional decibel form of SSIM.
func ssimDB(s float64) float64 {
	if s >= 1 {
		return math.Inf(1)
	}
	return -10 * math.Log10(1-s)
}
