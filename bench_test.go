package transcoding

// One benchmark per table and figure of the paper, plus codec-throughput
// microbenchmarks. Each BenchmarkTableN/BenchmarkFigN target runs a reduced
// version of the corresponding experiment; cmd/paper regenerates the full
// outputs (see EXPERIMENTS.md for the recorded results).

import (
	"context"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
)

func benchWorkload() Workload { return Workload{Video: "cricket", Frames: 6, Scale: 8} }

// BenchmarkTable1Catalog measures catalog synthesis: one frame of every
// Table I video.
func BenchmarkTable1Catalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, v := range Videos() {
			frames, err := Synthesize(v.ShortName, 1, 16)
			if err != nil {
				b.Fatal(err)
			}
			_ = frames
		}
	}
}

// BenchmarkTable2Presets measures one tiny encode under each Table II
// preset.
func BenchmarkTable2Presets(b *testing.B) {
	frames, err := Synthesize("cricket", 4, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range Presets {
			opt := DefaultOptions()
			if err := ApplyPreset(&opt, p); err != nil {
				b.Fatal(err)
			}
			if _, _, err := Encode(frames, 30, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable3Tasks measures building and validating the scheduler
// tasks' encode options via one tiny encode per task.
func BenchmarkTable3Tasks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, task := range SchedulerTasks() {
			frames, err := Synthesize(task.Video, 2, 16)
			if err != nil {
				b.Fatal(err)
			}
			opt := DefaultOptions()
			if err := ApplyPreset(&opt, task.Preset); err != nil {
				b.Fatal(err)
			}
			opt.CRF = task.CRF
			opt.Refs = task.Refs
			if _, _, err := Encode(frames, 30, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable4Configs measures one simulated run per Table IV
// configuration.
func BenchmarkTable4Configs(b *testing.B) {
	w := benchWorkload()
	for i := 0; i < b.N; i++ {
		for _, cfg := range Configs() {
			if _, _, err := Profile(context.Background(), Job{Workload: w, Options: DefaultOptions(), Config: cfg}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig2Triangle measures the three-metric measurement at one
// (crf, refs) corner of the Figure 2 triangle.
func BenchmarkFig2Triangle(b *testing.B) {
	w := benchWorkload()
	for i := 0; i < b.N; i++ {
		opt := DefaultOptions()
		opt.CRF = 28
		opt.Refs = 4
		if _, _, err := Profile(context.Background(), Job{Workload: w, Options: opt, Config: BaselineConfig()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Heatmaps measures one 2x2 corner of the Figure 3 crf x refs
// top-down heatmaps.
func BenchmarkFig3Heatmaps(b *testing.B) {
	w := benchWorkload()
	for i := 0; i < b.N; i++ {
		pts := SweepCRFRefs(context.Background(), w, DefaultOptions(), BaselineConfig(), []int{15, 40}, []int{1, 4})
		for _, p := range pts {
			if p.Err != nil {
				b.Fatal(p.Err)
			}
		}
	}
}

// BenchmarkFig4Projections measures the refs axis at one crf (projection B).
func BenchmarkFig4Projections(b *testing.B) {
	w := benchWorkload()
	for i := 0; i < b.N; i++ {
		pts := SweepCRFRefs(context.Background(), w, DefaultOptions(), BaselineConfig(), []int{23}, []int{1, 4, 8})
		for _, p := range pts {
			if p.Err != nil {
				b.Fatal(p.Err)
			}
		}
	}
}

// BenchmarkFig5Counters measures the full counter extraction at one sweep
// point (all eight Figure 5 quantities come from one profile).
func BenchmarkFig5Counters(b *testing.B) {
	w := benchWorkload()
	for i := 0; i < b.N; i++ {
		rep, _, err := Profile(context.Background(), Job{Workload: w, Options: DefaultOptions(), Config: BaselineConfig()})
		if err != nil {
			b.Fatal(err)
		}
		_ = rep.BranchMPKI + rep.L1DMPKI + rep.L2MPKI + rep.L3MPKI +
			rep.StallAnyPKI + rep.StallROBPKI + rep.StallRSPKI + rep.StallSBPKI
	}
}

// BenchmarkFig6Presets measures the preset-profiling sweep at its two
// extremes.
func BenchmarkFig6Presets(b *testing.B) {
	w := benchWorkload()
	for i := 0; i < b.N; i++ {
		pts := SweepPresets(context.Background(), w, BaselineConfig(), []Preset{"ultrafast", "medium"}, 23, 3)
		for _, p := range pts {
			if p.Err != nil {
				b.Fatal(p.Err)
			}
		}
	}
}

// BenchmarkFig7Videos measures per-video profiling at the entropy extremes.
func BenchmarkFig7Videos(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := SweepVideos(context.Background(), []string{"desktop", "hall"}, 6, 8, DefaultOptions(), BaselineConfig())
		for _, p := range pts {
			if p.Err != nil {
				b.Fatal(p.Err)
			}
		}
	}
}

// BenchmarkFig8Compiler measures one AutoFDO train+apply+profile cycle.
func BenchmarkFig8Compiler(b *testing.B) {
	w := benchWorkload()
	opt := DefaultOptions()
	for i := 0; i < b.N; i++ {
		img, err := TrainAutoFDO(w, opt)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := Profile(context.Background(), Job{Workload: w, Options: opt, Config: BaselineConfig(), Image: img}); err != nil {
			b.Fatal(err)
		}
		gopt := opt
		gopt.Tune = GraphiteTuning(AllGraphiteFlags())
		if _, _, err := Profile(context.Background(), Job{Workload: w, Options: gopt, Config: BaselineConfig()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Scheduler measures a reduced scheduling study: two tasks on
// baseline + two optimized configurations, evaluated with all three
// schedulers.
func BenchmarkFig9Scheduler(b *testing.B) {
	tasks := SchedulerTasks()[:2]
	configs := []Config{Configs()[0], Configs()[2], Configs()[3]}
	for i := 0; i < b.N; i++ {
		m, err := MeasureScheduling(context.Background(), tasks, configs, Workload{Frames: 4, Scale: 8})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := EvaluateSchedulers(m); err != nil {
			b.Fatal(err)
		}
	}
}

// --- decode-replay cache benchmarks ---------------------------------------------
//
// The sweep benchmarks measure the same reduced 4x4 crf x refs grid with
// the decoded-mezzanine replay cache on and off; their ratio is the perf
// claim of the replay layer and is recorded by scripts/bench.sh in
// BENCH_core.json.

// benchSweepWorkload fixes the replay-cache comparison point: a clip and an
// encode fast enough that the mezzanine decode is a large share of each
// sweep point, which is exactly the regime the cache exists for.
func benchSweepWorkload() (Workload, Options) {
	opt := DefaultOptions()
	if err := ApplyPreset(&opt, "ultrafast"); err != nil {
		panic(err)
	}
	return Workload{Video: "desktop", Frames: 6, Scale: 8}, opt
}

func benchSweepGrid() ([]int, []int) {
	return []int{30, 36, 42, 48}, []int{1, 2, 3, 4}
}

// BenchmarkDecodeReplay measures replaying a recorded mezzanine decode
// trace into a fresh machine — the per-point decode cost under the cache.
func BenchmarkDecodeReplay(b *testing.B) {
	w, _ := benchSweepWorkload()
	_, events, err := DecodedMezzanine(context.Background(), w, DecoderOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(events)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplayTrace(events, BaselineConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayParsed measures fanning the pre-parsed decode trace into
// a fresh machine via the devirtualized event loop — BenchmarkDecodeReplay
// minus the per-point varint decode and Sink dispatch.
func BenchmarkReplayParsed(b *testing.B) {
	w, _ := benchSweepWorkload()
	parsed, err := ParsedDecodeTrace(context.Background(), w, DecoderOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(parsed.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReplayParsedTrace(parsed, BaselineConfig())
	}
}

// BenchmarkReplayMulti measures the decode-once fan-out across all five
// Table IV configurations from one raw buffer.
func BenchmarkReplayMulti(b *testing.B) {
	w, _ := benchSweepWorkload()
	_, events, err := DecodedMezzanine(context.Background(), w, DecoderOptions{})
	if err != nil {
		b.Fatal(err)
	}
	cfgs := Configs()
	b.SetBytes(int64(len(events)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplayTraceMulti(events, cfgs...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepCRFRefsCached runs the reduced grid with the replay cache
// (the default production path).
func BenchmarkSweepCRFRefsCached(b *testing.B) {
	w, opt := benchSweepWorkload()
	if _, _, err := DecodedMezzanine(context.Background(), w, DecoderOptions{}); err != nil {
		b.Fatal(err)
	}
	crfs, refs := benchSweepGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range SweepCRFRefs(context.Background(), w, opt, BaselineConfig(), crfs, refs) {
			if p.Err != nil {
				b.Fatal(p.Err)
			}
		}
	}
}

// BenchmarkSweepCRFRefsUncached runs the identical grid decoding every
// point live (NoReplayCache), the pre-cache behaviour.
func BenchmarkSweepCRFRefsUncached(b *testing.B) {
	w, opt := benchSweepWorkload()
	if _, err := core.Mezzanine(context.Background(), w); err != nil {
		b.Fatal(err)
	}
	crfs, refs := benchSweepGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := SweepCRFRefsWith(context.Background(), w, opt, BaselineConfig(), crfs, refs, SweepOpts{NoReplayCache: true})
		for _, p := range pts {
			if p.Err != nil {
				b.Fatal(p.Err)
			}
		}
	}
}

// BenchmarkAnalysisReuse measures one sweep point with the shared per-video
// analysis artifact against the same point running its own lookahead; the
// ratio is the perf claim of the analysis layer (recorded in BENCH_core.json
// alongside the replay-cache ratio).
func BenchmarkAnalysisReuse(b *testing.B) {
	w, opt := benchSweepWorkload()
	for _, mode := range []string{"shared", "live"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			job := Job{Workload: w, Options: opt, Config: BaselineConfig(), NoAnalysisCache: mode == "live"}
			// Warm every cache the mode uses so the loop measures steady state.
			if _, _, err := Profile(context.Background(), job); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := Profile(context.Background(), job); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLadderSharedAnalysis measures a 3-rung ABR ladder encode with
// every rung reusing one shared analysis artifact versus each rung running
// its own lookahead — the per-title saving the serving layer banks when a
// ladder job fans out into rung parts (recorded in BENCH_core.json
// alongside the per-point AnalysisReuse ratio). Matching the serving
// steady state (core's analysis cache hands every rung the same artifact,
// the N-1 hit contract), the artifact is built outside the timed loop.
func BenchmarkLadderSharedAnalysis(b *testing.B) {
	frames, err := Synthesize("cricket", 6, 8)
	if err != nil {
		b.Fatal(err)
	}
	codec.AssignBases(frames)
	base := codec.Defaults()
	// Exhaustive b-adapt: the ladder encodes at production-grade lookahead,
	// which is also the setting where sharing the artifact pays most.
	base.BAdapt = 2
	crfs := []int{23, 33, 43}
	encodeRung := func(b *testing.B, crf int, a *codec.Analysis) {
		opt := base
		opt.CRF = crf
		enc, err := codec.NewEncoder(frames[0].Width, frames[0].Height, 30, opt, nil)
		if err != nil {
			b.Fatal(err)
		}
		if a != nil {
			if err := enc.SetAnalysis(a); err != nil {
				b.Fatal(err)
			}
		}
		stream, _, err := enc.EncodeAll(frames)
		if err != nil {
			b.Fatal(err)
		}
		benchKernelSink += len(stream)
	}
	b.Run("shared", func(b *testing.B) {
		a, err := codec.Analyze(frames, 30, base)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, crf := range crfs {
				encodeRung(b, crf, a)
			}
		}
	})
	b.Run("live", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, crf := range crfs {
				encodeRung(b, crf, nil)
			}
		}
	})
}

// --- codec throughput microbenchmarks -------------------------------------------

// benchPlanes builds two deterministic pseudo-random planes for the pixel
// kernel benchmarks.
func benchPlanes(w, h int) (*frame.Plane, *frame.Plane) {
	a, b := frame.NewPlane(w, h), frame.NewPlane(w, h)
	s := uint32(0x2545f491)
	fill := func(p *frame.Plane) {
		for i := range p.Pix {
			s ^= s << 13
			s ^= s >> 17
			s ^= s << 5
			p.Pix[i] = uint8(s)
		}
	}
	fill(&a)
	fill(&b)
	return &a, &b
}

var benchKernelSink int

// BenchmarkSAD measures the SWAR 16x16 SAD kernel, the motion search's
// innermost cost.
func BenchmarkSAD(b *testing.B) {
	pa, pb := benchPlanes(128, 128)
	b.SetBytes(2 * 16 * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchKernelSink += frame.SAD(pa, 16, 16, pb, 17, 15, 16, 16)
	}
}

// BenchmarkSATD measures the SWAR 8x8 Hadamard-SATD kernel used by subpel
// refinement and the lookahead.
func BenchmarkSATD(b *testing.B) {
	pa, pb := benchPlanes(128, 128)
	b.SetBytes(2 * 8 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchKernelSink += frame.SATD(pa, 16, 16, pb, 17, 15, 8, 8)
	}
}

// BenchmarkEncodeMedium measures raw (unsimulated) encoder throughput.
func BenchmarkEncodeMedium(b *testing.B) {
	frames, err := Synthesize("cricket", 6, 8)
	if err != nil {
		b.Fatal(err)
	}
	pixels := int64(len(frames) * frames[0].Width * frames[0].Height)
	b.SetBytes(pixels)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Encode(frames, 30, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecode measures raw decoder throughput.
func BenchmarkDecode(b *testing.B) {
	frames, err := Synthesize("cricket", 6, 8)
	if err != nil {
		b.Fatal(err)
	}
	stream, _, err := Encode(frames, 30, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(stream)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(stream); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulationOverhead compares a traced encode against the
// untraced encode to expose the simulator's cost.
func BenchmarkSimulationOverhead(b *testing.B) {
	w := benchWorkload()
	for i := 0; i < b.N; i++ {
		if _, _, err := Profile(context.Background(), Job{Workload: w, Options: DefaultOptions(), Config: BaselineConfig(), SkipDecode: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks ----------------------------------------------------------
//
// Each ablation isolates one design choice DESIGN.md calls out, so its cost
// can be tracked over time.

// BenchmarkAblationTrellis compares trellis levels 0 and 2: the dominant
// quality-vs-speed lever inside the residual path.
func BenchmarkAblationTrellis(b *testing.B) {
	frames, err := Synthesize("cricket", 6, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, level := range []int{0, 2} {
		level := level
		b.Run(map[int]string{0: "off", 2: "full"}[level], func(b *testing.B) {
			opt := DefaultOptions()
			opt.Trellis = level
			for i := 0; i < b.N; i++ {
				if _, _, err := Encode(frames, 30, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTraceSampling compares full tracing against 1/8
// macroblock sampling: the knob that makes 816-point sweeps tractable.
func BenchmarkAblationTraceSampling(b *testing.B) {
	w := benchWorkload()
	for _, log2 := range []int{0, 3} {
		log2 := log2
		b.Run(map[int]string{0: "full", 3: "sample8"}[log2], func(b *testing.B) {
			opt := DefaultOptions()
			opt.TraceSampleLog2 = log2
			for i := 0; i < b.N; i++ {
				if _, _, err := Profile(context.Background(), Job{Workload: w, Options: opt, Config: BaselineConfig()}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFusedDeblock compares the separate whole-frame deblock
// pass against the Graphite-fused per-row schedule.
func BenchmarkAblationFusedDeblock(b *testing.B) {
	w := benchWorkload()
	for _, fused := range []bool{false, true} {
		fused := fused
		b.Run(map[bool]string{false: "separate", true: "fused"}[fused], func(b *testing.B) {
			opt := DefaultOptions()
			opt.Tune = Tuning{FuseDeblock: fused}
			for i := 0; i < b.N; i++ {
				if _, _, err := Profile(context.Background(), Job{Workload: w, Options: opt, Config: BaselineConfig()}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRefs measures how the reference-list depth scales
// encoder cost (the Figure 4B time axis).
func BenchmarkAblationRefs(b *testing.B) {
	frames, err := Synthesize("cricket", 8, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, refs := range []int{1, 4, 16} {
		refs := refs
		b.Run(map[int]string{1: "refs1", 4: "refs4", 16: "refs16"}[refs], func(b *testing.B) {
			opt := DefaultOptions()
			opt.Refs = refs
			opt.BFrames = 0
			for i := 0; i < b.N; i++ {
				if _, _, err := Encode(frames, 30, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPredictor compares the two branch predictors end to end.
func BenchmarkAblationPredictor(b *testing.B) {
	w := benchWorkload()
	for _, name := range []string{"baseline", "bs_op"} {
		name := name
		b.Run(name, func(b *testing.B) {
			cfg, _ := ConfigByName(name)
			for i := 0; i < b.N; i++ {
				if _, _, err := Profile(context.Background(), Job{Workload: w, Options: DefaultOptions(), Config: cfg}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDCT8x8 compares the 4x4 and 8x8 luma transforms.
func BenchmarkAblationDCT8x8(b *testing.B) {
	frames, err := Synthesize("presentation", 6, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, dct8 := range []bool{false, true} {
		dct8 := dct8
		b.Run(map[bool]string{false: "dct4x4", true: "dct8x8"}[dct8], func(b *testing.B) {
			opt := DefaultOptions()
			opt.DCT8x8 = dct8
			for i := 0; i < b.N; i++ {
				if _, _, err := Encode(frames, 30, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
