// Command serve runs the online transcoding service: an HTTP job API over
// the characterization-driven dispatcher on a simulated heterogeneous
// fleet (DESIGN.md §10).
//
//	serve -addr localhost:8080 -pool baseline,fe_op,be_op1,be_op2,bs_op
//	serve -addr localhost:8080 -policy random -each 2 -warm all
//	serve -addr localhost:8080 -pool baseline,accel:250 -objective cost
//
// Pool entries use the server-spec grammar name[:price][:spot] (see
// internal/backend): a Table IV uarch config or "accel", an optional hourly
// price in cents, and an optional spot marker.
//
// The listener carries the job API (POST /jobs, GET /jobs/{id}, GET
// /healthz) and the standard observability endpoints (/metrics,
// /debug/vars, /debug/pprof) on one mux. SIGINT/SIGTERM drains gracefully:
// admissions stop, queued jobs finish, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/vbench"
)

var (
	flagAddr      = flag.String("addr", "localhost:8080", "listen address for the job API (use :0 for an ephemeral port)")
	flagPool      = flag.String("pool", "baseline,fe_op,be_op1,be_op2,bs_op", "comma-separated server specs (name[:price][:spot]) forming the fleet")
	flagEach      = flag.Int("each", 1, "replicas of each -pool entry")
	flagPolicy    = flag.String("policy", "smart", "placement policy: smart or random")
	flagObjective = flag.String("objective", "seconds", "placement objective: seconds (fleet service time) or cost (dollars under deadlines)")
	flagDepth     = flag.Int("depth", 0, "admission queue depth (0: default 256)")
	flagWork      = flag.Int("workers", 0, "concurrent executions (0: one per server)")
	flagFrames    = flag.Int("frames", 8, "frames per job")
	flagScale     = flag.Int("scale", 0, "proxy downscale factor (0: auto)")
	flagSeed      = flag.Uint64("seed", 1, "seed for deterministic random placement")
	flagWarm      = flag.String("warm", "", "videos to pre-profile into the cost model (comma list, or 'all' for the catalog)")
	flagFleet     = flag.Bool("fleet", false, "run as a fleet orchestrator: execution comes from cmd/worker processes instead of the in-process pool")
	flagLease     = flag.Duration("lease-ttl", 0, "fleet job lease TTL; a lease not renewed by heartbeats within this window is requeued (0: adaptive from observed job durations)")
	flagPoll      = flag.Duration("poll-wait", 10*time.Second, "fleet long-poll window for idle workers")
)

func main() {
	cli.Main("serve", run)
}

func run(ctx context.Context) error {
	policy, err := serve.ParsePolicy(*flagPolicy)
	if err != nil {
		return err
	}
	objective, err := sched.ParseObjective(*flagObjective)
	if err != nil {
		return err
	}
	cfg := serve.Config{
		Policy:     policy,
		Objective:  objective,
		QueueDepth: *flagDepth,
		Workers:    *flagWork,
		Proto:      core.Workload{Frames: *flagFrames, Scale: *flagScale},
		Seed:       *flagSeed,
	}
	if *flagFleet {
		// Capability comes from worker registrations, not a local pool.
		cfg.Fleet = &serve.FleetOptions{LeaseTTL: *flagLease, PollWait: *flagPoll}
	} else {
		specs, err := backend.ParseFleet(*flagPool, *flagEach)
		if err != nil {
			return err
		}
		cfg.Servers = sched.Fleet(specs)
	}
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	if *flagWarm != "" {
		videos := cli.Strings(*flagWarm)
		if strings.EqualFold(*flagWarm, "all") {
			videos = vbench.Names()
		}
		fmt.Fprintf(os.Stderr, "serve: warming cost model for %d videos...\n", len(videos))
		if err := s.Warm(ctx, videos); err != nil {
			return err
		}
	}

	// The dispatcher gets its own context so that SIGINT triggers a drain
	// (Stop) rather than abandoning queued jobs mid-flight.
	dispCtx, dispCancel := context.WithCancel(context.Background())
	defer dispCancel()
	s.Start(dispCtx)

	ln, err := net.Listen("tcp", *flagAddr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.Serve(ln) }()
	if *flagFleet {
		ttl := "adaptive"
		if *flagLease > 0 {
			ttl = flagLease.String()
		}
		fmt.Fprintf(os.Stderr, "serve: fleet orchestrator (%s policy, %s objective, lease ttl %s) on http://%s\n",
			policy, objective, ttl, ln.Addr())
	} else {
		fmt.Fprintf(os.Stderr, "serve: %d servers (%s policy, %s objective) on http://%s\n",
			len(cfg.Servers), policy, objective, ln.Addr())
	}

	select {
	case err := <-httpDone:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "serve: draining...")
	hs.Shutdown(context.Background())
	s.Stop()
	tot := s.Totals()
	fmt.Fprintf(os.Stderr, "serve: done — %d submitted, %d completed, %d failed, %d canceled, %d rejected, %.3f fleet-seconds, %.6f¢, %d deadline misses\n",
		tot.Submitted, tot.Completed, tot.Failed, tot.Canceled, tot.Rejected, tot.SimSeconds, tot.CostCents, tot.DeadlineMisses)
	cli.Summary("serve", false)
	return nil
}
