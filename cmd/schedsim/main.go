// Command schedsim runs the scheduling case study (Tables III/IV, Figure
// 9): the Table III tasks are simulated on every Table IV configuration and
// the random, smart and best schedulers are compared.
//
//	schedsim -frames 16
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/uarch"
)

var flagFrames = flag.Int("frames", 16, "frames per clip")

func main() {
	cli.Main("schedsim", run)
}

func run(ctx context.Context) error {
	tasks := sched.TableIII()
	configs := uarch.TableIV()
	fmt.Println("measuring", len(tasks), "tasks on", len(configs), "configurations...")
	m, err := sched.Measure(ctx, tasks, configs, core.Workload{Frames: *flagFrames})
	if err != nil {
		return err
	}
	headers := []string{"task", "video"}
	for _, c := range configs {
		headers = append(headers, c.Name+"(ms)")
	}
	rows := [][]string{}
	for ti, t := range tasks {
		row := []string{t.Name, t.Video}
		for ci := range configs {
			row = append(row, report.F(m.Seconds[ti][ci]*1000, 3))
		}
		rows = append(rows, row)
	}
	if err := report.Table(os.Stdout, headers, rows); err != nil {
		return err
	}
	o, err := m.Evaluate()
	if err != nil {
		return err
	}
	fmt.Println()
	for ti, t := range tasks {
		fmt.Printf("%s: smart -> %-7s best -> %-7s (baseline profile: fe %.1f%% bs %.1f%% mem %.1f%% core %.1f%%)\n",
			t.Name, configs[o.SmartAssign[ti]].Name, configs[o.BestAssign[ti]].Name,
			m.Reports[ti][0].Topdown.FrontEnd, m.Reports[ti][0].Topdown.BadSpec,
			m.Reports[ti][0].Topdown.MemBound, m.Reports[ti][0].Topdown.CoreBound)
	}
	fmt.Printf("\nspeedup over baseline: random %+.2f%%  smart %+.2f%%  best %+.2f%%\n",
		sched.Speedup(o.BaselineSeconds, o.RandomSeconds),
		sched.Speedup(o.BaselineSeconds, o.SmartSeconds),
		sched.Speedup(o.BaselineSeconds, o.BestSeconds))
	fmt.Printf("smart over random: %+.2f%%; matches best on %d/%d tasks\n",
		sched.Speedup(o.RandomSeconds, o.SmartSeconds), o.SmartMatchesBest, len(tasks))
	return nil
}
