// Command worker is one member of the distributed transcoding fleet: it
// joins an orchestrator (cmd/serve -fleet), heartbeats with live load
// telemetry, pulls leased jobs when idle, runs them through the shared
// core pipeline under its configured uarch profile, and streams results
// back (DESIGN.md §11).
//
//	worker -orchestrator localhost:8080 -id w1 -config baseline
//	worker -orchestrator http://host:8080 -id w2 -config fe_op -heartbeat 500ms
//	worker -orchestrator localhost:8080 -id w3 -backend accel -price 250
//	worker -orchestrator localhost:8080 -id w4 -backend accel -spot
//
// Crash-and-rejoin is free: restart the process with the same -id and the
// orchestrator reclaims any job the dead incarnation was holding.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/backend"
	"repro/internal/cli"
	"repro/internal/uarch"
	"repro/internal/worker"
)

var (
	flagOrch      = flag.String("orchestrator", "localhost:8080", "orchestrator base URL (cmd/serve -fleet instance)")
	flagID        = flag.String("id", "", "worker id (required; reuse after a crash to rejoin as the same worker)")
	flagConfig    = flag.String("config", "baseline", "uarch configuration this worker simulates (software backend only)")
	flagBackend   = flag.String("backend", "software", "encoder class: software (uarch-simulated codec) or accel (fixed-function)")
	flagPrice     = flag.Float64("price", 0, "advertised rental price in cents per hour (0: class default, spot-discounted)")
	flagSpot      = flag.Bool("spot", false, "advertise as preemptible spot capacity")
	flagHeartbeat = flag.Duration("heartbeat", time.Second, "heartbeat period (must be well inside the orchestrator's lease TTL)")
	flagMinJob    = flag.Duration("min-job", 0, "pad every job to at least this duration (fault-injection knob for smoke tests)")
)

func main() {
	cli.Main("worker", run)
}

func run(ctx context.Context) error {
	kind, err := backend.ParseKind(*flagBackend)
	if err != nil {
		return err
	}
	cfg, ok := uarch.ByName(*flagConfig)
	if !ok {
		return fmt.Errorf("worker: unknown configuration %q", *flagConfig)
	}
	w, err := worker.New(worker.Options{
		Orchestrator:   cli.BaseURL(*flagOrch),
		ID:             *flagID,
		Config:         cfg,
		Backend:        kind,
		PriceCentsHour: *flagPrice,
		Spot:           *flagSpot,
		Heartbeat:      *flagHeartbeat,
		MinJobTime:     *flagMinJob,
	})
	if err != nil {
		return err
	}
	class := cfg.Name
	if kind == backend.Accel {
		class = string(backend.Accel)
	}
	fmt.Fprintf(os.Stderr, "worker: %s (%s) joining %s\n", *flagID, class, cli.BaseURL(*flagOrch))
	err = w.Run(ctx)
	if errors.Is(err, context.Canceled) {
		// SIGINT/SIGTERM is the normal way to retire a worker.
		err = nil
	}
	cli.Summary("worker", false)
	return err
}
