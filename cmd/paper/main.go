// Command paper regenerates every table and figure of "CPU
// Microarchitectural Performance Characterization of Cloud Video
// Transcoding" (IISWC 2020) on the simulated stack.
//
// Usage:
//
//	paper -all                     # everything (slow: full sweeps)
//	paper -table 1                 # Table I..IV
//	paper -fig 3                   # Figure 2..9
//	paper -video cricket -frames 16
//
// Results print to stdout as aligned tables, ASCII heatmaps and CSV blocks
// suitable for EXPERIMENTS.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/cli"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/opt/autofdo"
	"repro/internal/opt/graphite"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/vbench"
)

var (
	flagTable      = flag.Int("table", 0, "regenerate one table (1-4)")
	flagFig        = flag.Int("fig", 0, "regenerate one figure (2-9)")
	flagAll        = flag.Bool("all", false, "regenerate everything")
	flagVideo      = flag.String("video", "cricket", "video for the crf/refs and preset studies")
	flagFrames     = flag.Int("frames", 16, "frames per synthetic clip")
	flagScale      = flag.Int("scale", 0, "proxy downscale factor (0: auto)")
	flagFine       = flag.Bool("fine", false, "use the full 816-point crf x refs grid (slow)")
	flagSVGDir     = flag.String("svgdir", "", "also write figures as SVG files into this directory")
	flagNoRC       = flag.Bool("no-replay-cache", false, "decode the mezzanine live at every point instead of replaying the cached decode trace")
	flagNoAC       = flag.Bool("no-analysis-cache", false, "run the lookahead and AQ analysis live at every point instead of reusing the shared per-video artifact")
	flagProgress   = flag.Bool("progress", false, "report per-point sweep progress on stderr")
	flagMetricsOut = flag.String("metrics-out", "", "write the JSON run manifest (inputs, git rev, metrics snapshot, wall time) to this file")
)

// svgOut opens an SVG file in -svgdir; returns nil when SVG output is off.
func svgOut(name string) *os.File {
	if *flagSVGDir == "" {
		return nil
	}
	if err := os.MkdirAll(*flagSVGDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "svgdir:", err)
		return nil
	}
	f, err := os.Create(*flagSVGDir + "/" + name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "svg:", err)
		return nil
	}
	return f
}

func main() {
	cli.Main("paper", run)
}

// section is one regenerable unit: a table or figure taking the root
// context, so Ctrl-C aborts the underlying sweep mid-grid.
type section = func(ctx context.Context) error

func run(ctx context.Context) error {
	start := time.Now()
	err := runSections(ctx)
	// Summary and manifest cover aborted runs too: partial telemetry is
	// exactly what debugging an interrupted -all regeneration needs.
	cli.Summary("paper", !*flagProgress)
	if *flagMetricsOut != "" {
		m := obs.NewManifest("paper", os.Args[1:], start, nil)
		if werr := m.WriteFile(*flagMetricsOut); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

func runSections(ctx context.Context) error {
	if !*flagAll && *flagTable == 0 && *flagFig == 0 {
		flag.Usage()
		os.Exit(2)
	}
	emit := func(name string, f section) error {
		fmt.Printf("\n=== %s ===\n", name)
		if err := f(ctx); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		return nil
	}
	tables := map[int]section{1: table1, 2: table2, 3: table3, 4: table4}
	figs := map[int]section{
		2: fig2, 3: figs345, 4: nop, 5: nop,
		6: fig6, 7: fig7, 8: fig8, 9: fig9,
	}
	if *flagAll {
		for i := 1; i <= 4; i++ {
			if err := emit(fmt.Sprintf("Table %d", i), tables[i]); err != nil {
				return err
			}
		}
		for _, s := range []struct {
			name string
			f    section
		}{
			{"Figure 2", fig2}, {"Figures 3-5", figs345}, {"Figure 6", fig6},
			{"Figure 7", fig7}, {"Figure 8", fig8}, {"Figure 9", fig9},
		} {
			if err := emit(s.name, s.f); err != nil {
				return err
			}
		}
		return nil
	}
	if *flagTable != 0 {
		f, ok := tables[*flagTable]
		if !ok {
			return fmt.Errorf("unknown table %d", *flagTable)
		}
		if err := emit(fmt.Sprintf("Table %d", *flagTable), f); err != nil {
			return err
		}
	}
	if *flagFig != 0 {
		f, ok := figs[*flagFig]
		if !ok {
			return fmt.Errorf("unknown figure %d", *flagFig)
		}
		if *flagFig == 4 || *flagFig == 5 {
			f = figs345 // shares the Figure 3 sweep
		}
		if err := emit(fmt.Sprintf("Figure %d", *flagFig), f); err != nil {
			return err
		}
	}
	return nil
}

func nop(context.Context) error { return nil }

func workload() core.Workload {
	return core.Workload{Video: *flagVideo, Frames: *flagFrames, Scale: *flagScale}
}

func sweepOpts() core.SweepOpts {
	return core.SweepOpts{
		NoReplayCache:   *flagNoRC,
		NoAnalysisCache: *flagNoAC,
		Progress:        cli.Progress("paper", !*flagProgress),
	}
}

// --- tables --------------------------------------------------------------------

func table1(context.Context) error {
	rows := [][]string{}
	for _, v := range vbench.Catalog {
		rows = append(rows, []string{v.FullName, v.ShortName, v.Resolution(),
			report.I(v.FPS), report.F(v.Entropy, 1)})
	}
	return report.Table(os.Stdout, []string{"Full Name", "Short", "Res", "FPS", "Entropy"}, rows)
}

func table2(context.Context) error {
	opts := []string{"aq-mode", "b-adapt", "bframes", "deblock", "me", "merange",
		"partitions", "refs", "scenecut", "subme", "trellis"}
	headers := append([]string{"Option"}, func() []string {
		var s []string
		for _, p := range codec.Presets {
			s = append(s, string(p))
		}
		return s
	}()...)
	rows := [][]string{}
	for _, o := range opts {
		row := []string{o}
		for _, p := range codec.Presets {
			info, err := codec.PresetInfo(p)
			if err != nil {
				return err
			}
			row = append(row, info[o])
		}
		rows = append(rows, row)
	}
	return report.Table(os.Stdout, headers, rows)
}

func table3(context.Context) error {
	rows := [][]string{}
	for _, t := range sched.TableIII() {
		rows = append(rows, []string{t.Name, t.Video, report.I(t.CRF), report.I(t.Refs), string(t.Preset)})
	}
	return report.Table(os.Stdout, []string{"Task", "Video", "crf", "refs", "Preset"}, rows)
}

func table4(context.Context) error {
	rows := [][]string{}
	for _, c := range uarch.TableIV() {
		l4 := "none"
		if c.L4 != nil {
			l4 = fmt.Sprintf("%dK", c.L4.Size>>10)
		}
		iad := "No"
		if c.IssueAtDispatch {
			iad = "Yes"
		}
		rows = append(rows, []string{
			c.Name,
			fmt.Sprintf("%dK", c.L1D.Size>>10), fmt.Sprintf("%dK", c.L1I.Size>>10),
			fmt.Sprintf("%dK", c.L2.Size>>10), fmt.Sprintf("%dK", c.L3.Size>>10), l4,
			report.I(c.ITLBEntries), report.I(c.ROBSize), report.I(c.RSSize), iad, c.Predictor,
		})
	}
	return report.Table(os.Stdout, []string{"Config", "L1d", "L1i", "L2", "L3", "L4",
		"itlb", "ROB", "RS", "issue@disp", "predictor"}, rows)
}

// --- figures -------------------------------------------------------------------

// fig2 demonstrates the speed/quality/size triangle: the sign of each
// metric's response to crf and refs.
func fig2(ctx context.Context) error {
	w := workload()
	crfs := []int{18, 23, 28, 33}
	refs := []int{1, 4, 8}
	pts := core.SweepCRFRefsWith(ctx, w, codec.Defaults(), uarch.Baseline(), crfs, refs, sweepOpts())
	if err := pts.FirstErr(); err != nil {
		return err
	}
	rows := [][]string{}
	for _, p := range pts {
		rows = append(rows, []string{
			report.I(p.CRF), report.I(p.Refs),
			report.F(p.Report.Seconds*1000, 2),
			report.F(p.Stats.BitrateKbps(), 0),
			report.F(p.Stats.AveragePSNR, 2),
		})
	}
	return report.Table(os.Stdout, []string{"crf", "refs", "time(ms)", "bitrate(kbps)", "PSNR(dB)"}, rows)
}

// figs345 runs the crf x refs sweep once and renders the Figure 3 top-down
// heatmaps, the Figure 4 projections, and the Figure 5 counter heatmaps.
func figs345(ctx context.Context) error {
	w := workload()
	var crfs []int
	var refs []int
	if *flagFine {
		for c := 1; c <= 51; c++ {
			crfs = append(crfs, c)
		}
		for r := 1; r <= 16; r++ {
			refs = append(refs, r)
		}
	} else {
		crfs = []int{1, 6, 11, 16, 21, 26, 31, 36, 41, 46, 51}
		refs = []int{1, 2, 3, 4, 6, 8, 12, 16}
	}
	pts := core.SweepCRFRefsWith(ctx, w, codec.Defaults(), uarch.Baseline(), crfs, refs, sweepOpts())
	if err := pts.FirstErr(); err != nil {
		return err
	}
	at := func(i, j int) *core.Point { return &pts[i*len(refs)+j] }
	rowLab := make([]string, len(crfs))
	for i, c := range crfs {
		rowLab[i] = fmt.Sprintf("crf%02d", c)
	}
	colLab := make([]string, len(refs))
	for j, r := range refs {
		colLab[j] = fmt.Sprintf("r%02d", r)
	}
	hm := func(title string, f func(p *core.Point) float64) error {
		if err := report.Heatmap(os.Stdout, title, rowLab, colLab,
			func(i, j int) float64 { return f(at(i, j)) }); err != nil {
			return err
		}
		name := "fig_" + sanitize(title) + ".svg"
		if out := svgOut(name); out != nil {
			defer out.Close()
			return report.SVGHeatmap(out, title, rowLab, colLab,
				func(i, j int) float64 { return f(at(i, j)) })
		}
		return nil
	}

	fmt.Println("\n-- Figure 3: top-down pipeline-slot heatmaps (% of slots) --")
	if err := hm("(a) Front-end bound", func(p *core.Point) float64 { return p.Report.Topdown.FrontEnd }); err != nil {
		return err
	}
	if err := hm("(b) Back-end bound", func(p *core.Point) float64 { return p.Report.Topdown.BackEnd }); err != nil {
		return err
	}
	if err := hm("(c) Bad speculation bound", func(p *core.Point) float64 { return p.Report.Topdown.BadSpec }); err != nil {
		return err
	}

	fmt.Println("\n-- Figure 4: projections --")
	fmt.Println("(A) bitrate range across refs per crf (PSNR fixed by crf)")
	rowsA := [][]string{}
	for i, c := range crfs {
		lo, hi := at(i, 0).Stats.BitrateKbps(), at(i, 0).Stats.BitrateKbps()
		psnr := at(i, 0).Stats.AveragePSNR
		for j := range refs {
			b := at(i, j).Stats.BitrateKbps()
			if b < lo {
				lo = b
			}
			if b > hi {
				hi = b
			}
		}
		rowsA = append(rowsA, []string{report.I(c), report.F(psnr, 2), report.F(hi, 0),
			report.F(lo, 0), report.F((hi-lo)/hi*100, 1)})
	}
	if err := report.Table(os.Stdout, []string{"crf", "PSNR", "bitrate@refs1", "bitrate@min", "saving%"}, rowsA); err != nil {
		return err
	}
	fmt.Println("(B) transcoding time (ms) vs refs per crf")
	rowsB := [][]string{}
	for i, c := range crfs {
		row := []string{report.I(c)}
		for j := range refs {
			row = append(row, report.F(at(i, j).Report.Seconds*1000, 1))
		}
		rowsB = append(rowsB, row)
	}
	if err := report.Table(os.Stdout, append([]string{"crf"}, colLab...), rowsB); err != nil {
		return err
	}
	if out := svgOut("fig4b_time_vs_refs.svg"); out != nil {
		var series []report.Series
		for i, c := range crfs {
			pts := make([]float64, len(refs))
			for j := range refs {
				pts[j] = at(i, j).Report.Seconds * 1000
			}
			series = append(series, report.Series{Name: fmt.Sprintf("crf%d", c), Points: pts})
		}
		if err := report.SVGLines(out, "Figure 4B: transcoding time vs refs", "ms", colLab, series); err != nil {
			out.Close()
			return err
		}
		out.Close()
	}

	fmt.Println("\n-- Figure 5: microarchitecture-resource heatmaps --")
	counters := []struct {
		name string
		f    func(p *core.Point) float64
	}{
		{"(a) Branch MPKI", func(p *core.Point) float64 { return p.Report.BranchMPKI }},
		{"(b) L1d MPKI", func(p *core.Point) float64 { return p.Report.L1DMPKI }},
		{"(c) L2 MPKI", func(p *core.Point) float64 { return p.Report.L2MPKI }},
		{"(d) L3 MPKI", func(p *core.Point) float64 { return p.Report.L3MPKI }},
		{"(e) Resource stalls - Any (cycles/kinst)", func(p *core.Point) float64 { return p.Report.StallAnyPKI }},
		{"(f) Resource stalls - ROB", func(p *core.Point) float64 { return p.Report.StallROBPKI }},
		{"(g) Resource stalls - RS", func(p *core.Point) float64 { return p.Report.StallRSPKI }},
		{"(h) Resource stalls - SB", func(p *core.Point) float64 { return p.Report.StallSBPKI }},
	}
	for _, c := range counters {
		if err := hm(c.name, c.f); err != nil {
			return err
		}
	}
	return nil
}

func fig6(ctx context.Context) error {
	w := workload()
	pts := core.SweepPresetsWith(ctx, w, uarch.Baseline(), codec.Presets, 23, 3, sweepOpts())
	if err := pts.FirstErr(); err != nil {
		return err
	}
	rows := [][]string{}
	for _, p := range pts {
		r := p.Report
		rows = append(rows, []string{
			string(p.Preset),
			report.F(r.Seconds*1000, 2), report.F(p.Stats.BitrateKbps(), 0), report.F(p.Stats.AveragePSNR, 2),
			report.F(r.Topdown.FrontEnd, 1), report.F(r.Topdown.BackEnd, 1), report.F(r.Topdown.BadSpec, 1),
			report.F(r.BranchMPKI, 2), report.F(r.L1DMPKI, 2), report.F(r.L2MPKI, 2), report.F(r.L3MPKI, 2),
			report.F(r.StallROBPKI, 1), report.F(r.StallRSPKI, 2), report.F(r.StallSBPKI, 1),
		})
	}
	if err := report.Table(os.Stdout, []string{"preset", "time(ms)", "kbps", "PSNR",
		"FE%", "BE%", "BS%", "brMPKI", "L1d", "L2", "L3", "ROB", "RS", "SB"}, rows); err != nil {
		return err
	}
	if out := svgOut("fig6_topdown_presets.svg"); out != nil {
		defer out.Close()
		labels := make([]string, len(pts))
		fe := report.Series{Name: "front-end"}
		be := report.Series{Name: "back-end"}
		bs := report.Series{Name: "bad-spec"}
		for i, p := range pts {
			labels[i] = string(p.Preset)
			fe.Points = append(fe.Points, p.Report.Topdown.FrontEnd)
			be.Points = append(be.Points, p.Report.Topdown.BackEnd)
			bs.Points = append(bs.Points, p.Report.Topdown.BadSpec)
		}
		return report.SVGLines(out, "Figure 6b: top-down slots across presets", "% slots",
			labels, []report.Series{fe, be, bs})
	}
	return nil
}

func fig7(ctx context.Context) error {
	names := vbench.Names()
	// Group by resolution, then sort by entropy within the group (the
	// paper's Figure 7 x-axis).
	infos := make([]vbench.VideoInfo, 0, len(names))
	for _, n := range names {
		v, _ := vbench.ByName(n)
		infos = append(infos, v)
	}
	sort.SliceStable(infos, func(i, j int) bool {
		if infos[i].Height != infos[j].Height {
			return infos[i].Height < infos[j].Height
		}
		return infos[i].Entropy < infos[j].Entropy
	})
	ordered := make([]string, len(infos))
	for i, v := range infos {
		ordered[i] = v.ShortName
	}
	pts := core.SweepVideosWith(ctx, ordered, *flagFrames, 0, codec.Defaults(), uarch.Baseline(), sweepOpts())
	if err := pts.FirstErr(); err != nil {
		return err
	}
	rows := [][]string{}
	for i, p := range pts {
		r := p.Report
		rows = append(rows, []string{
			p.Video, infos[i].Resolution(), report.F(infos[i].Entropy, 1),
			report.F(r.Topdown.FrontEnd, 1), report.F(r.Topdown.BackEnd, 1), report.F(r.Topdown.BadSpec, 1),
			report.F(r.Topdown.MemBound, 1), report.F(r.Topdown.CoreBound, 1),
			report.F(r.BranchMPKI, 2), report.F(r.L1DMPKI, 2), report.F(r.L2MPKI, 2), report.F(r.L3MPKI, 2),
			report.F(r.StallROBPKI, 1), report.F(r.StallRSPKI, 2), report.F(r.StallSBPKI, 1),
		})
	}
	if err := report.Table(os.Stdout, []string{"video", "res", "entropy",
		"FE%", "BE%", "BS%", "mem%", "core%", "brMPKI", "L1d", "L2", "L3", "ROB", "RS", "SB"}, rows); err != nil {
		return err
	}
	if out := svgOut("fig7_topdown_videos.svg"); out != nil {
		defer out.Close()
		labels := make([]string, len(pts))
		fe := report.Series{Name: "front-end"}
		be := report.Series{Name: "back-end"}
		bs := report.Series{Name: "bad-spec"}
		for i, p := range pts {
			labels[i] = p.Video
			fe.Points = append(fe.Points, p.Report.Topdown.FrontEnd)
			be.Points = append(be.Points, p.Report.Topdown.BackEnd)
			bs.Points = append(bs.Points, p.Report.Topdown.BadSpec)
		}
		return report.SVGLines(out, "Figure 7a: top-down slots across videos", "% slots",
			labels, []report.Series{fe, be, bs})
	}
	return nil
}

// fig8 measures AutoFDO and Graphite speedups per video.
func fig8(ctx context.Context) error {
	// Parameter combinations averaged per video (a reduced version of the
	// paper's 32-combination average).
	combos := []struct {
		preset codec.Preset
		crf    int
		refs   int
	}{
		{codec.PresetMedium, 23, 3},
		{codec.PresetVeryfast, 30, 1},
	}
	rows := [][]string{}
	var sumF, sumG float64
	videos := vbench.Names()
	for _, v := range videos {
		w := core.Workload{Video: v, Frames: *flagFrames}
		var fdoSum, grSum float64
		for _, cb := range combos {
			opt := codec.Options{RC: codec.RCCRF, CRF: cb.crf, QP: 26, KeyintMax: 250}
			if err := codec.ApplyPreset(&opt, cb.preset); err != nil {
				return err
			}
			opt.Refs = cb.refs

			base, err := core.Run(ctx, core.Job{Workload: w, Options: opt, Config: uarch.Baseline(), NoReplayCache: *flagNoRC, NoAnalysisCache: *flagNoAC})
			if err != nil {
				return err
			}
			img, err := trainFDO(ctx, w, opt)
			if err != nil {
				return err
			}
			fdo, err := core.Run(ctx, core.Job{Workload: w, Options: opt, Config: uarch.Baseline(), Image: img, NoReplayCache: *flagNoRC})
			if err != nil {
				return err
			}
			gopt := opt
			gopt.Tune = graphite.All().Tuning()
			gr, err := core.Run(ctx, core.Job{Workload: w, Options: gopt, Config: uarch.Baseline(), NoReplayCache: *flagNoRC, NoAnalysisCache: *flagNoAC})
			if err != nil {
				return err
			}
			fdoSum += (base.Report.Seconds/fdo.Report.Seconds - 1) * 100
			grSum += (base.Report.Seconds/gr.Report.Seconds - 1) * 100
		}
		f := fdoSum / float64(len(combos))
		g := grSum / float64(len(combos))
		sumF += f
		sumG += g
		rows = append(rows, []string{v, report.F(f, 2), report.F(g, 2)})
	}
	rows = append(rows, []string{"average",
		report.F(sumF/float64(len(videos)), 2), report.F(sumG/float64(len(videos)), 2)})
	if err := report.Table(os.Stdout, []string{"video", "AutoFDO speedup %", "Graphite speedup %"}, rows); err != nil {
		return err
	}
	if out := svgOut("fig8_compiler_speedups.svg"); out != nil {
		defer out.Close()
		labels := make([]string, 0, len(rows))
		fdo := report.Series{Name: "AutoFDO"}
		gr := report.Series{Name: "Graphite"}
		for _, r := range rows {
			labels = append(labels, r[0])
			fdo.Points = append(fdo.Points, parseF(r[1]))
			gr.Points = append(gr.Points, parseF(r[2]))
		}
		return report.SVGBars(out, "Figure 8: compiler-optimization speedups", "% speedup", labels,
			[]report.Series{fdo, gr})
	}
	return nil
}

func parseF(s string) float64 {
	var v float64
	fmt.Sscanf(s, "%f", &v)
	return v
}

// sanitize converts a figure title into a file-name fragment.
func sanitize(title string) string {
	var b []byte
	for _, c := range title {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			b = append(b, byte(c))
		case c >= 'A' && c <= 'Z':
			b = append(b, byte(c+32))
		case c == ' ' || c == '-' || c == '/':
			if len(b) > 0 && b[len(b)-1] != '_' {
				b = append(b, '_')
			}
		}
	}
	for len(b) > 0 && b[len(b)-1] == '_' {
		b = b[:len(b)-1]
	}
	if len(b) > 40 {
		b = b[:40]
	}
	return string(b)
}

func trainFDO(ctx context.Context, w core.Workload, opt codec.Options) (*trace.Image, error) {
	col := autofdo.NewCollector()
	stream, err := core.Mezzanine(ctx, w)
	if err != nil {
		return nil, err
	}
	dec := codec.NewDecoder(codec.DecoderOptions{}, col)
	frames, info, err := dec.Decode(stream)
	if err != nil {
		return nil, err
	}
	enc, err := codec.NewEncoder(frames[0].Width, frames[0].Height, info.FPS, opt, col)
	if err != nil {
		return nil, err
	}
	if _, _, err := enc.EncodeAll(frames); err != nil {
		return nil, err
	}
	return col.Profile().Apply(trace.NewImage(nil), autofdo.Options{}), nil
}

func fig9(ctx context.Context) error {
	m, err := sched.Measure(ctx, sched.TableIII(), uarch.TableIV(), core.Workload{Frames: *flagFrames})
	if err != nil {
		return err
	}
	rows := [][]string{}
	for ti, t := range m.Tasks {
		row := []string{t.Name, t.Video}
		for ci := range m.Configs {
			row = append(row, report.F(m.Seconds[ti][ci]*1000, 2))
		}
		rows = append(rows, row)
	}
	headers := []string{"task", "video"}
	for _, c := range m.Configs {
		headers = append(headers, c.Name+"(ms)")
	}
	if err := report.Table(os.Stdout, headers, rows); err != nil {
		return err
	}
	o, err := m.Evaluate()
	if err != nil {
		return err
	}
	fmt.Println()
	sum := [][]string{
		{"random", report.F(sched.Speedup(o.BaselineSeconds, o.RandomSeconds), 2)},
		{"smart", report.F(sched.Speedup(o.BaselineSeconds, o.SmartSeconds), 2)},
		{"best", report.F(sched.Speedup(o.BaselineSeconds, o.BestSeconds), 2)},
	}
	if err := report.Table(os.Stdout, []string{"scheduler", "speedup over baseline %"}, sum); err != nil {
		return err
	}
	fmt.Printf("smart over random: %+.2f%%; smart matches best on %d/%d tasks\n",
		sched.Speedup(o.RandomSeconds, o.SmartSeconds), o.SmartMatchesBest, len(m.Tasks))
	for ti, t := range m.Tasks {
		fmt.Printf("  %s -> smart: %s, best: %s\n", t.Name,
			m.Configs[o.SmartAssign[ti]].Name, m.Configs[o.BestAssign[ti]].Name)
	}
	if out := svgOut("fig9_scheduler_speedups.svg"); out != nil {
		defer out.Close()
		labels := make([]string, len(m.Tasks))
		rs := report.Series{Name: "random"}
		ss := report.Series{Name: "smart"}
		bs := report.Series{Name: "best"}
		for ti, t := range m.Tasks {
			labels[ti] = t.Name
			base := o.BaselineSeconds[ti]
			rs.Points = append(rs.Points, (base/o.RandomSeconds[ti]-1)*100)
			ss.Points = append(ss.Points, (base/o.SmartSeconds[ti]-1)*100)
			bs.Points = append(bs.Points, (base/o.BestSeconds[ti]-1)*100)
		}
		return report.SVGBars(out, "Figure 9: scheduler speedup over baseline", "% speedup", labels,
			[]report.Series{rs, ss, bs})
	}
	return nil
}
