// Command transcode is the ffmpeg-like front end of the codec: it
// synthesizes (or reads) a clip, encodes it with the requested parameters,
// optionally decodes it back, and reports speed/quality/size.
//
//	transcode -video cricket -frames 24 -crf 23 -refs 3 -preset medium -o out.rvc
//	transcode -i out.rvc -crf 35 -preset veryfast -o smaller.rvc   # true transcode
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/trace"
	"repro/internal/vbench"
)

var (
	flagVideo   = flag.String("video", "cricket", "vbench video to synthesize as input")
	flagFrames  = flag.Int("frames", 24, "frames to synthesize")
	flagScale   = flag.Int("scale", 4, "downscale factor for synthesis")
	flagInput   = flag.String("i", "", "input bitstream to transcode (overrides -video)")
	flagOutput  = flag.String("o", "", "output bitstream path (optional)")
	flagCRF     = flag.Int("crf", 23, "constant rate factor (0-51)")
	flagQP      = flag.Int("qp", 26, "quantizer for -rc cqp")
	flagRefs    = flag.Int("refs", 0, "reference frames (0: preset default)")
	flagPreset  = flag.String("preset", "medium", "x264 preset")
	flagRC      = flag.String("rc", "crf", "rate control: crf|cqp|abr|2pass|cbr|vbv")
	flagBitrate = flag.Int("bitrate", 1000, "target bitrate (kbps) for abr/2pass/cbr")
	flagVerify  = flag.Bool("verify", false, "decode the output and report PSNR/SSIM vs input")
	flagY4MIn   = flag.String("y4m-in", "", "read raw input frames from a y4m file")
	flagY4MOut  = flag.String("y4m-out", "", "write decoded output frames to a y4m file")
	flagAnalyze = flag.Bool("analyze", false, "with -i: print per-frame coding structure and exit")
	flagDCT8    = flag.Bool("8x8dct", false, "code luma residuals with the 8x8 transform")

	flagSegments = flag.Int("segments", 1, "split the encode into N independently encodable segments and stitch")
	flagIndep    = flag.Bool("independent", false,
		"encode each segment with its own encoder and trace recorder (reverse order) and stitch afterwards, instead of the serial shared-sink reference")
	flagTraceOut = flag.String("trace-out", "", "write the recorded instrumentation trace to this path")
)

func main() {
	cli.Main("transcode", run)
}

func buildOptions() (codec.Options, error) {
	opt := codec.Options{CRF: *flagCRF, QP: *flagQP, KeyintMax: 250}
	if err := codec.ApplyPreset(&opt, codec.Preset(*flagPreset)); err != nil {
		return opt, err
	}
	if *flagRefs > 0 {
		opt.Refs = *flagRefs
	}
	opt.DCT8x8 = *flagDCT8
	switch *flagRC {
	case "crf":
		opt.RC = codec.RCCRF
	case "cqp":
		opt.RC = codec.RCCQP
	case "abr":
		opt.RC = codec.RCABR
		opt.BitrateKbps = *flagBitrate
	case "2pass":
		opt.RC = codec.RCABR2
		opt.BitrateKbps = *flagBitrate
	case "cbr":
		opt.RC = codec.RCCBR
		opt.BitrateKbps = *flagBitrate
	case "vbv":
		opt.RC = codec.RCVBV
		opt.VBVMaxKbps = *flagBitrate
		opt.VBVBufKbits = *flagBitrate * 2
	default:
		return opt, fmt.Errorf("unknown rate control %q", *flagRC)
	}
	return opt, nil
}

// run does its single encode inline — there is no sweep to cancel — so the
// signal context is unused beyond cli.Main's exit-code handling.
func run(_ context.Context) error {
	opt, err := buildOptions()
	if err != nil {
		return err
	}
	if *flagAnalyze {
		if *flagInput == "" {
			return fmt.Errorf("-analyze requires -i")
		}
		return analyze(*flagInput)
	}

	var input []*frame.Frame
	fps := 30
	if *flagY4MIn != "" {
		f, err := os.Open(*flagY4MIn)
		if err != nil {
			return err
		}
		defer f.Close()
		input, fps, err = frame.ReadY4M(f)
		if err != nil {
			return err
		}
		fmt.Printf("input: %s (y4m) %dx%d @%d fps, %d frames\n",
			*flagY4MIn, input[0].Width, input[0].Height, fps, len(input))
	} else if *flagInput != "" {
		data, err := os.ReadFile(*flagInput)
		if err != nil {
			return err
		}
		dec := codec.NewDecoder(codec.DecoderOptions{}, nil)
		frames, info, err := dec.Decode(data)
		if err != nil {
			return err
		}
		input, fps = frames, info.FPS
		fmt.Printf("input: %s %dx%d @%d fps, %d frames\n",
			*flagInput, info.Width, info.Height, info.FPS, info.Frames)
	} else {
		info, err := vbench.ByName(*flagVideo)
		if err != nil {
			return err
		}
		src := vbench.NewSource(info, vbench.SourceOptions{Scale: *flagScale})
		fps = info.FPS
		for i := 0; i < *flagFrames; i++ {
			input = append(input, src.Frame(i))
		}
		fmt.Printf("input: synthetic %s %dx%d @%d fps, %d frames (entropy %.1f)\n",
			info.ShortName, src.W, src.H, fps, len(input), info.Entropy)
	}

	stream, stats, events, err := encode(input, fps, opt)
	if err != nil {
		return err
	}
	i, p, b := stats.CountTypes()
	fmt.Printf("encoded: %d bytes, %.0f kbps, PSNR %.2f dB, frames I/P/B = %d/%d/%d\n",
		len(stream), stats.BitrateKbps(), stats.AveragePSNR, i, p, b)

	if *flagOutput != "" {
		if err := os.WriteFile(*flagOutput, stream, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *flagOutput)
	}
	if *flagTraceOut != "" {
		if err := os.WriteFile(*flagTraceOut, events, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d trace bytes)\n", *flagTraceOut, len(events))
	}
	if *flagVerify || *flagY4MOut != "" {
		dec := codec.NewDecoder(codec.DecoderOptions{}, nil)
		out, _, err := dec.Decode(stream)
		if err != nil {
			return fmt.Errorf("verify decode: %w", err)
		}
		if *flagVerify {
			var psnr, ssim float64
			for k := range out {
				psnr += frame.PSNR(input[k], out[k])
				ssim += frame.SSIM(input[k], out[k])
			}
			n := float64(len(out))
			fmt.Printf("verified: decoded %d frames, mean PSNR %.2f dB, mean SSIM %.4f\n",
				len(out), psnr/n, ssim/n)
		}
		if *flagY4MOut != "" {
			f, err := os.Create(*flagY4MOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := frame.WriteY4M(f, out, fps); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *flagY4MOut)
		}
	}
	return nil
}

// encode runs the requested encode shape: a plain whole-clip EncodeAll, a
// serial segmented encode (one process, fresh encoder per segment, one
// shared trace recorder), or the distributed shape — independent encoders
// and recorders per segment, run in reverse order, stitched afterwards.
// All three produce byte-identical bitstreams (and, segmented, traces);
// scripts/determinism.sh compares them with cmp.
func encode(input []*frame.Frame, fps int, opt codec.Options) ([]byte, *codec.Stats, []byte, error) {
	if *flagSegments < 1 {
		return nil, nil, nil, fmt.Errorf("-segments %d, want >= 1", *flagSegments)
	}
	if *flagSegments == 1 && !*flagIndep && *flagTraceOut == "" {
		enc, err := codec.NewEncoder(input[0].Width, input[0].Height, fps, opt, nil)
		if err != nil {
			return nil, nil, nil, err
		}
		stream, stats, err := enc.EncodeAll(input)
		return stream, stats, nil, err
	}
	// Segmented (or traced) modes pre-base the clip so every segment
	// encoder records identical addresses regardless of process or order.
	codec.AssignBases(input)
	if !*flagIndep {
		rec := trace.NewRecorder()
		stream, stats, err := codec.EncodeSegments(input, fps, opt, rec, *flagSegments)
		if err != nil {
			return nil, nil, nil, err
		}
		if *flagSegments > 1 {
			fmt.Printf("encoded %d segments serially (shared trace sink)\n", *flagSegments)
		}
		return stream, stats, rec.Bytes(), nil
	}
	segs := codec.SplitSegments(len(input), *flagSegments)
	streams := make([][]byte, len(segs))
	traces := make([][]byte, len(segs))
	parts := make([]*codec.Stats, len(segs))
	for i := len(segs) - 1; i >= 0; i-- {
		rec := trace.NewRecorder()
		var err error
		if streams[i], parts[i], err = codec.EncodeSegment(input, fps, opt, rec, segs[i]); err != nil {
			return nil, nil, nil, err
		}
		traces[i] = append([]byte(nil), rec.Bytes()...)
	}
	stream, err := codec.StitchStreams(streams)
	if err != nil {
		return nil, nil, nil, err
	}
	events, err := trace.Stitch(traces...)
	if err != nil {
		return nil, nil, nil, err
	}
	stats, err := codec.StitchStats(parts)
	if err != nil {
		return nil, nil, nil, err
	}
	fmt.Printf("stitched %d independently encoded segments\n", len(segs))
	return stream, stats, events, nil
}

// analyze prints the coding structure of a bitstream: one row per coded
// frame in coding order.
func analyze(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	_, info, err := codec.NewDecoder(codec.DecoderOptions{}, nil).Decode(data)
	if err != nil {
		return err
	}
	fmt.Printf("%dx%d @%d fps, %d frames\n", info.Width, info.Height, info.FPS, info.Frames)
	fmt.Printf("%5s  %4s  %3s  %10s\n", "coded", "pts", "typ", "bits")
	for i, m := range info.Coded {
		fmt.Printf("%5d  %4d  %3s  %10d  qp=%d\n", i, m.PTS, m.Type, m.Bits, m.QP)
	}
	return nil
}
