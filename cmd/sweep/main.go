// Command sweep runs the paper's three profiling sweeps and emits the raw
// results as CSV for plotting or further analysis.
//
//	sweep -mode crf-refs -video cricket
//	sweep -mode presets  -video cricket
//	sweep -mode videos
//
// Ctrl-C cancels the sweep context: in-flight points finish, the rest are
// abandoned, and the process exits 130 without writing a truncated CSV.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/uarch"
	"repro/internal/vbench"
)

var (
	flagMode       = flag.String("mode", "crf-refs", "sweep: crf-refs|presets|videos")
	flagVideo      = flag.String("video", "cricket", "video for crf-refs and presets")
	flagFrames     = flag.Int("frames", 16, "frames per clip")
	flagCRFs       = flag.String("crfs", "1,6,11,16,21,26,31,36,41,46,51", "comma-separated crf values")
	flagRefs       = flag.String("refs", "1,2,3,4,6,8,12,16", "comma-separated refs values")
	flagNoRC       = flag.Bool("no-replay-cache", false, "decode the mezzanine live at every sweep point instead of replaying the cached decode trace")
	flagNoAC       = flag.Bool("no-analysis-cache", false, "run the lookahead and AQ analysis live at every sweep point instead of reusing the shared per-video artifact")
	flagNoPC       = flag.Bool("no-parse-cache", false, "stream replays through the raw varint trace instead of the shared pre-parsed event slab")
	flagProgress   = flag.Bool("progress", false, "report per-point progress on stderr")
	flagMetricsOut = flag.String("metrics-out", "", "write the JSON run manifest (inputs, git rev, metrics snapshot, wall time) to this file")
	flagWorkers    = flag.Int("workers", 0, "intra-encode worker count for crf-refs and videos modes (0/1: serial; output is byte-identical at any count)")
)

func main() {
	cli.Main("sweep", run)
}

func row(p *core.Point) []string {
	r := p.Report
	return []string{
		p.Video, fmt.Sprint(p.CRF), fmt.Sprint(p.Refs), string(p.Preset),
		fmt.Sprintf("%.6f", r.Seconds),
		fmt.Sprintf("%.1f", p.Stats.BitrateKbps()),
		fmt.Sprintf("%.2f", p.Stats.AveragePSNR),
		fmt.Sprintf("%.2f", r.Topdown.Retiring),
		fmt.Sprintf("%.2f", r.Topdown.FrontEnd),
		fmt.Sprintf("%.2f", r.Topdown.BadSpec),
		fmt.Sprintf("%.2f", r.Topdown.BackEnd),
		fmt.Sprintf("%.2f", r.Topdown.MemBound),
		fmt.Sprintf("%.2f", r.Topdown.CoreBound),
		fmt.Sprintf("%.3f", r.BranchMPKI),
		fmt.Sprintf("%.3f", r.L1DMPKI),
		fmt.Sprintf("%.3f", r.L2MPKI),
		fmt.Sprintf("%.3f", r.L3MPKI),
		fmt.Sprintf("%.2f", r.StallAnyPKI),
		fmt.Sprintf("%.2f", r.StallROBPKI),
		fmt.Sprintf("%.2f", r.StallRSPKI),
		fmt.Sprintf("%.2f", r.StallSBPKI),
	}
}

var headers = []string{"video", "crf", "refs", "preset", "seconds", "kbps", "psnr",
	"retiring", "fe", "bs", "be", "mem", "core",
	"br_mpki", "l1d_mpki", "l2_mpki", "l3_mpki",
	"stall_any", "stall_rob", "stall_rs", "stall_sb"}

func run(ctx context.Context) error {
	start := time.Now()
	w := core.Workload{Video: *flagVideo, Frames: *flagFrames}
	opts := core.SweepOpts{
		NoReplayCache:   *flagNoRC,
		NoParseCache:    *flagNoPC,
		NoAnalysisCache: *flagNoAC,
		// Stage histograms ride along whenever the run is being observed
		// anyway (manifest or live progress); the benchmarked silent path
		// stays timing-call free.
		StageMetrics: *flagMetricsOut != "" || *flagProgress,
		Progress:     cli.Progress("sweep", !*flagProgress),
	}
	base := codec.Defaults()
	base.Workers = *flagWorkers
	var pts core.Points
	switch *flagMode {
	case "crf-refs":
		crfs, err := cli.Ints(*flagCRFs)
		if err != nil {
			return err
		}
		refs, err := cli.Ints(*flagRefs)
		if err != nil {
			return err
		}
		pts = core.SweepCRFRefsWith(ctx, w, base, uarch.Baseline(), crfs, refs, opts)
	case "presets":
		// Preset points build their options from the preset table, so
		// -workers does not apply here.
		pts = core.SweepPresetsWith(ctx, w, uarch.Baseline(), codec.Presets, 23, 3, opts)
	case "videos":
		pts = core.SweepVideosWith(ctx, vbench.Names(), *flagFrames, 0, base, uarch.Baseline(), opts)
	default:
		return fmt.Errorf("unknown mode %q", *flagMode)
	}
	// The manifest and summary cover failed runs too — telemetry matters
	// most when something went wrong — so emit them before error handling.
	cli.Summary("sweep", !*flagProgress)
	if err := writeManifest(start); err != nil {
		return err
	}
	// Per-point failures become the exit code, not silent CSV holes.
	if err := pts.FirstErr(); err != nil {
		if n := len(pts.Failed()); n > 1 {
			return fmt.Errorf("%d of %d points failed, first: %w", n, len(pts), err)
		}
		return err
	}
	rows := make([][]string, 0, len(pts))
	for i := range pts {
		rows = append(rows, row(&pts[i]))
	}
	return report.CSV(os.Stdout, headers, rows)
}

// writeManifest records the run manifest when -metrics-out is set.
func writeManifest(start time.Time) error {
	if *flagMetricsOut == "" {
		return nil
	}
	m := obs.NewManifest("sweep", os.Args[1:], start, nil)
	return m.WriteFile(*flagMetricsOut)
}
