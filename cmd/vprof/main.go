// Command vprof is the VTune/perf stand-in: it simulates one transcoding
// job on a chosen microarchitecture configuration and prints the Top-down
// breakdown, MPKI counters, resource stalls and roofline position.
//
//	vprof -video cricket -crf 23 -refs 3 -preset medium -config baseline
package main

import (
	"context"
	"flag"
	"fmt"

	"repro/internal/cli"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/roofline"
	"repro/internal/uarch"
)

var (
	flagVideo  = flag.String("video", "cricket", "vbench video")
	flagFrames = flag.Int("frames", 16, "frames to transcode")
	flagCRF    = flag.Int("crf", 23, "constant rate factor")
	flagRefs   = flag.Int("refs", 0, "reference frames (0: preset default)")
	flagPreset = flag.String("preset", "medium", "x264 preset")
	flagConfig = flag.String("config", "baseline", "uarch config (baseline|fe_op|be_op1|be_op2|bs_op)")
	flagSample = flag.Int("sample", 0, "trace-sampling log2 (0: trace everything)")
)

func main() {
	cli.Main("vprof", run)
}

func run(ctx context.Context) error {
	opt := codec.Options{RC: codec.RCCRF, CRF: *flagCRF, QP: 26, KeyintMax: 250}
	if err := codec.ApplyPreset(&opt, codec.Preset(*flagPreset)); err != nil {
		return err
	}
	if *flagRefs > 0 {
		opt.Refs = *flagRefs
	}
	opt.TraceSampleLog2 = *flagSample
	cfg, ok := uarch.ByName(*flagConfig)
	if !ok {
		return fmt.Errorf("unknown config %q", *flagConfig)
	}
	res, err := core.Run(ctx, core.Job{
		Workload: core.Workload{Video: *flagVideo, Frames: *flagFrames},
		Options:  opt,
		Config:   cfg,
	})
	if err != nil {
		return err
	}
	r := res.Report
	s := res.Stats
	fmt.Printf("workload: %s, %d frames, crf=%d refs=%d preset=%s on %s\n",
		*flagVideo, *flagFrames, *flagCRF, opt.Refs, *flagPreset, cfg.Name)
	fmt.Printf("codec:    %.0f kbps, PSNR %.2f dB\n", s.BitrateKbps(), s.AveragePSNR)
	fmt.Printf("time:     %.4f s (simulated), IPC %.2f, %.1fM instructions\n",
		r.Seconds, r.IPC, r.Insts/1e6)
	fmt.Println("\nTop-down pipeline slots:")
	fmt.Printf("  retiring        %5.1f %%\n", r.Topdown.Retiring)
	fmt.Printf("  front-end bound %5.1f %%\n", r.Topdown.FrontEnd)
	fmt.Printf("  bad speculation %5.1f %%\n", r.Topdown.BadSpec)
	fmt.Printf("  back-end bound  %5.1f %%  (memory %.1f %%, core %.1f %%)\n",
		r.Topdown.BackEnd, r.Topdown.MemBound, r.Topdown.CoreBound)
	fmt.Println("\nCounters (per kilo instruction):")
	fmt.Printf("  branch MPKI %6.2f    L1i MPKI %6.2f   iTLB MPKI %6.3f\n", r.BranchMPKI, r.L1IMPKI, r.ITLBMPKI)
	fmt.Printf("  L1d MPKI    %6.2f    L2 MPKI  %6.2f   L3 MPKI   %6.3f\n", r.L1DMPKI, r.L2MPKI, r.L3MPKI)
	fmt.Printf("  stalls: any %.1f  rob %.1f  rs %.2f  sb %.1f\n",
		r.StallAnyPKI, r.StallROBPKI, r.StallRSPKI, r.StallSBPKI)
	fmt.Printf("\nclassification: %s\n", r.DominantBottleneck())
	model := roofline.Default()
	oi := r.OperationalIntensity()
	fmt.Println("\nRoofline:")
	fmt.Printf("  operational intensity %.1f ops/byte (ridge %.2f) -> %s\n",
		oi, model.RidgePoint(), map[bool]string{true: "memory bound", false: "compute bound"}[model.MemoryBound(oi)])
	return nil
}
