// Command optbench runs the compiler-optimization study (Figure 8): the
// AutoFDO and Graphite speedups over the unoptimized build, per video.
//
//	optbench -videos desktop,cricket,hall -frames 16
package main

import (
	"context"
	"flag"
	"os"

	"repro/internal/cli"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/opt/autofdo"
	"repro/internal/opt/graphite"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/vbench"
)

var (
	flagVideos = flag.String("videos", "", "comma-separated videos (default: whole catalog)")
	flagFrames = flag.Int("frames", 16, "frames per clip")
	flagCRF    = flag.Int("crf", 23, "crf for the measured encode")
	flagPreset = flag.String("preset", "medium", "preset for the measured encode")
)

func main() {
	cli.Main("optbench", run)
}

func run(ctx context.Context) error {
	videos := vbench.Names()
	if *flagVideos != "" {
		videos = cli.Strings(*flagVideos)
	}
	opt := codec.Options{RC: codec.RCCRF, CRF: *flagCRF, QP: 26, KeyintMax: 250}
	if err := codec.ApplyPreset(&opt, codec.Preset(*flagPreset)); err != nil {
		return err
	}

	rows := [][]string{}
	var sumF, sumG float64
	for _, v := range videos {
		w := core.Workload{Video: v, Frames: *flagFrames}
		base, err := core.Run(ctx, core.Job{Workload: w, Options: opt, Config: uarch.Baseline()})
		if err != nil {
			return err
		}
		img, err := train(ctx, w, opt)
		if err != nil {
			return err
		}
		fdo, err := core.Run(ctx, core.Job{Workload: w, Options: opt, Config: uarch.Baseline(), Image: img})
		if err != nil {
			return err
		}
		gopt := opt
		gopt.Tune = graphite.All().Tuning()
		gr, err := core.Run(ctx, core.Job{Workload: w, Options: gopt, Config: uarch.Baseline()})
		if err != nil {
			return err
		}
		f := (base.Report.Seconds/fdo.Report.Seconds - 1) * 100
		g := (base.Report.Seconds/gr.Report.Seconds - 1) * 100
		sumF += f
		sumG += g
		rows = append(rows, []string{v,
			report.F(base.Report.Seconds*1000, 2), report.F(f, 2), report.F(g, 2),
			report.F(base.Report.L1IMPKI, 3), report.F(fdo.Report.L1IMPKI, 3),
			report.F(base.Report.L2MPKI, 2), report.F(gr.Report.L2MPKI, 2)})
	}
	rows = append(rows, []string{"average", "",
		report.F(sumF/float64(len(videos)), 2), report.F(sumG/float64(len(videos)), 2), "", "", "", ""})
	return report.Table(os.Stdout, []string{"video", "base(ms)", "AutoFDO %", "Graphite %",
		"L1i MPKI", "L1i(FDO)", "L2 MPKI", "L2(Graphite)"}, rows)
}

func train(ctx context.Context, w core.Workload, opt codec.Options) (*trace.Image, error) {
	col := autofdo.NewCollector()
	stream, err := core.Mezzanine(ctx, w)
	if err != nil {
		return nil, err
	}
	frames, info, err := codec.NewDecoder(codec.DecoderOptions{}, col).Decode(stream)
	if err != nil {
		return nil, err
	}
	enc, err := codec.NewEncoder(frames[0].Width, frames[0].Height, info.FPS, opt, col)
	if err != nil {
		return nil, err
	}
	if _, _, err := enc.EncodeAll(frames); err != nil {
		return nil, err
	}
	return col.Profile().Apply(trace.NewImage(nil), autofdo.Options{}), nil
}
