// Command benchgate compares a fresh benchmark run against the committed
// baseline (BENCH_core.json) and fails when any benchmark slowed beyond the
// ns/op tolerance or allocated beyond the allocs/op tolerance — the
// perf-regression tripwire behind scripts/benchgate.sh and the CI bench job.
//
//	benchgate -base BENCH_core.json -new new.json -tol 0.10 -alloc-tol 0.20
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/perf"
	"repro/internal/report"
)

var (
	flagBase = flag.String("base", "BENCH_core.json", "baseline benchmark JSON")
	flagNew  = flag.String("new", "", "new benchmark JSON to compare (required)")
	flagTol  = flag.Float64("tol", 0.10, "relative ns/op tolerance (0.10 = +10%)")
	flagATol = flag.Float64("alloc-tol", 0.20, "relative allocs/op tolerance (0.20 = +20%)")
)

func main() {
	cli.Main("benchgate", run)
}

func run(context.Context) error {
	if *flagNew == "" {
		return fmt.Errorf("-new is required")
	}
	base, err := perf.ReadBenchFile(*flagBase)
	if err != nil {
		return err
	}
	cur, err := perf.ReadBenchFile(*flagNew)
	if err != nil {
		return err
	}
	deltas, err := perf.CompareBench(base, cur, *flagTol, *flagATol)
	if err != nil {
		return err
	}
	rows := make([][]string, 0, len(deltas))
	newCount := 0
	for _, d := range deltas {
		if d.New {
			// Informational: the benchmark has no baseline yet, so there is
			// nothing to gate until BENCH_core.json is regenerated.
			newCount++
			rows = append(rows, []string{
				d.Name, "-", fmt.Sprintf("%.0f", d.NewNs), "-",
				"-", fmt.Sprintf("%.0f", d.NewAllocs), "-",
				"new (no baseline)",
			})
			continue
		}
		verdict := "ok"
		switch {
		case d.Regressed && d.AllocRegressed:
			verdict = "REGRESSED (ns+allocs)"
		case d.Regressed:
			verdict = "REGRESSED (ns)"
		case d.AllocRegressed:
			verdict = "REGRESSED (allocs)"
		}
		allocDelta := "-" // no finite ratio for a zero-alloc baseline
		if d.BaseAllocs > 0 {
			allocDelta = fmt.Sprintf("%+.1f%%", (d.AllocRatio-1)*100)
		}
		rows = append(rows, []string{
			d.Name,
			fmt.Sprintf("%.0f", d.BaseNs),
			fmt.Sprintf("%.0f", d.NewNs),
			fmt.Sprintf("%+.1f%%", (d.Ratio-1)*100),
			fmt.Sprintf("%.0f", d.BaseAllocs),
			fmt.Sprintf("%.0f", d.NewAllocs),
			allocDelta,
			verdict,
		})
	}
	headers := []string{"benchmark", "base ns/op", "new ns/op", "delta",
		"base allocs/op", "new allocs/op", "delta", "verdict"}
	if err := report.Table(os.Stdout, headers, rows); err != nil {
		return err
	}
	if regs := perf.Regressions(deltas); len(regs) > 0 {
		names := make([]string, len(regs))
		for i, d := range regs {
			if d.AllocRegressed && !d.Regressed {
				names[i] = fmt.Sprintf("%s (allocs %+.1f%%)", d.Name, (d.AllocRatio-1)*100)
			} else {
				names[i] = fmt.Sprintf("%s (%+.1f%%)", d.Name, (d.Ratio-1)*100)
			}
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond +%.0f%% ns/op or +%.0f%% allocs/op: %s",
			len(regs), *flagTol*100, *flagATol*100, strings.Join(names, ", "))
	}
	gated := len(deltas) - newCount
	fmt.Printf("bench gate ok: %d benchmarks within +%.0f%% ns/op and +%.0f%% allocs/op of baseline",
		gated, *flagTol*100, *flagATol*100)
	if newCount > 0 {
		fmt.Printf(" (%d new, not gated)", newCount)
	}
	fmt.Println()
	return nil
}
