// Command benchgate compares a fresh benchmark run against the committed
// baseline (BENCH_core.json) and fails when any benchmark slowed beyond
// the tolerance — the perf-regression tripwire behind scripts/benchgate.sh
// and the CI bench job.
//
//	benchgate -base BENCH_core.json -new new.json -tol 0.10
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/perf"
	"repro/internal/report"
)

var (
	flagBase = flag.String("base", "BENCH_core.json", "baseline benchmark JSON")
	flagNew  = flag.String("new", "", "new benchmark JSON to compare (required)")
	flagTol  = flag.Float64("tol", 0.10, "relative ns/op tolerance (0.10 = +10%)")
)

func main() {
	cli.Main("benchgate", run)
}

func run(context.Context) error {
	if *flagNew == "" {
		return fmt.Errorf("-new is required")
	}
	base, err := perf.ReadBenchFile(*flagBase)
	if err != nil {
		return err
	}
	cur, err := perf.ReadBenchFile(*flagNew)
	if err != nil {
		return err
	}
	deltas, err := perf.CompareBench(base, cur, *flagTol)
	if err != nil {
		return err
	}
	rows := make([][]string, 0, len(deltas))
	for _, d := range deltas {
		verdict := "ok"
		if d.Regressed {
			verdict = "REGRESSED"
		}
		rows = append(rows, []string{
			d.Name,
			fmt.Sprintf("%.0f", d.BaseNs),
			fmt.Sprintf("%.0f", d.NewNs),
			fmt.Sprintf("%+.1f%%", (d.Ratio-1)*100),
			verdict,
		})
	}
	if err := report.Table(os.Stdout, []string{"benchmark", "base ns/op", "new ns/op", "delta", "verdict"}, rows); err != nil {
		return err
	}
	if regs := perf.Regressions(deltas); len(regs) > 0 {
		names := make([]string, len(regs))
		for i, d := range regs {
			names[i] = fmt.Sprintf("%s (%+.1f%%)", d.Name, (d.Ratio-1)*100)
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%: %s",
			len(regs), *flagTol*100, strings.Join(names, ", "))
	}
	fmt.Printf("bench gate ok: %d benchmarks within %.0f%% of baseline\n", len(deltas), *flagTol*100)
	return nil
}
