// Command loadgen drives an online serving instance (cmd/serve) with a
// deterministic open-loop arrival process and reports sojourn-time
// quantiles — the client side of the DESIGN.md §10 serving study.
//
//	loadgen -addr localhost:8080 -n 50 -rate 25 -seed 1
//	loadgen -compare -n 8 -seed 42
//
// Arrivals are Poisson (exponential interarrivals) but fully seeded:
// the i-th job's task parameters come from sched.GenerateTasks and its
// arrival gap from a per-index hash, so two runs with the same flags
// submit the identical workload on the identical schedule. The run fails
// (exit 1) if any admitted job is lost — neither completed, failed, nor
// canceled within -timeout — or if the server's /metrics snapshot does not
// expose the queue depth gauge and sojourn histogram the serving layer is
// supposed to publish.
//
// With -compare, no server is contacted: the same task sequence is served
// in-process once under smart placement and once under random, printing
// the completed-work delta (the online analogue of schedsim).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"time"

	"repro/internal/backend"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/serve"
)

var (
	flagAddr     = flag.String("addr", "localhost:8080", "serve instance to drive")
	flagTarget   = flag.String("target", "", "base URL of a remote orchestrator (overrides -addr; e.g. http://host:8080)")
	flagN        = flag.Int("n", 50, "jobs to submit")
	flagRate     = flag.Float64("rate", 25, "mean arrival rate, jobs/second")
	flagSeed     = flag.Uint64("seed", 1, "seed for tasks and interarrival gaps")
	flagClasses  = flag.String("classes", "live,batch", "fairness classes cycled across jobs")
	flagTimeout  = flag.Duration("timeout", 120*time.Second, "deadline for all jobs to reach a terminal state")
	flagCompare  = flag.Bool("compare", false, "run the in-process smart-vs-random comparison instead of driving a server")
	flagSegs     = flag.Int("segments", 1, "segments per job: every submission fans out into this many independently placed segment parts")
	flagLadder   = flag.String("ladder", "", "comma-separated rung CRFs (e.g. 23,33,43): every submission becomes an ABR ladder job")
	flagPool     = flag.String("pool", "baseline,fe_op,be_op1,be_op2,bs_op", "fleet server specs, name[:price][:spot] (-compare/-compare-cost only)")
	flagEach     = flag.Int("each", 1, "replicas of each -pool entry (-compare/-compare-cost only)")
	flagFrames   = flag.Int("frames", 8, "frames per job (-compare/-compare-cost only)")
	flagScale    = flag.Int("scale", 0, "proxy downscale factor (-compare/-compare-cost only)")
	flagCmpCost  = flag.Bool("compare-cost", false, "run the in-process cost-vs-seconds objective comparison over the -pool fleet")
	flagDeadline = flag.Float64("deadline", 0, "per-job deadline in simulated seconds, carried on every submission (0: none)")
	flagBudget   = flag.Float64("budget", 0, "per-job cost budget in cents; the run fails if the mean cost of completed jobs exceeds it (0: no check)")
)

func main() {
	cli.Main("loadgen", run)
}

func run(ctx context.Context) error {
	if *flagCompare {
		return runCompare(ctx)
	}
	if *flagCmpCost {
		return runCompareCost(ctx)
	}
	return runLoad(ctx)
}

// splitmix64 mirrors the serving layer's per-index hash so arrival gaps
// are deterministic without sharing RNG state across jobs.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// gap returns the i-th exponential interarrival time for the given rate.
func gap(seed uint64, i int, rate float64) time.Duration {
	u := float64(splitmix64(seed^uint64(i))>>11) / float64(1<<53) // [0,1)
	d := -math.Log(1-u) / rate
	return time.Duration(d * float64(time.Second))
}

type submitted struct {
	id    string
	class string
}

// ladderRungs parses -ladder into rung specs: one rung per CRF, named
// after it, all inheriting the job's preset and refs.
func ladderRungs() ([]serve.Rung, error) {
	if *flagLadder == "" {
		return nil, nil
	}
	crfs, err := cli.Ints(*flagLadder)
	if err != nil {
		return nil, fmt.Errorf("-ladder: %w", err)
	}
	rungs := make([]serve.Rung, len(crfs))
	for i, crf := range crfs {
		rungs[i] = serve.Rung{Name: fmt.Sprintf("crf%d", crf), CRF: crf}
	}
	return rungs, nil
}

func runLoad(ctx context.Context) error {
	tasks := sched.GenerateTasks(*flagN, *flagSeed)
	classes := cli.Strings(*flagClasses)
	if len(classes) == 0 {
		classes = []string{""}
	}
	rungs, err := ladderRungs()
	if err != nil {
		return err
	}
	multi := *flagSegs > 1 || len(rungs) > 0
	base := cli.BaseURL(*flagAddr)
	if *flagTarget != "" {
		base = cli.BaseURL(*flagTarget)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	reg := obs.NewRegistry()
	sojourn := reg.Histogram("loadgen_sojourn_ns")

	var accepted []submitted
	var rejected, infeasible int
	for i, task := range tasks {
		select {
		case <-time.After(gap(*flagSeed, i, *flagRate)):
		case <-ctx.Done():
			return ctx.Err()
		}
		req := serve.JobRequest{
			Video: task.Video, CRF: task.CRF, Refs: task.Refs,
			Preset: string(task.Preset), Class: classes[i%len(classes)],
			Ladder: rungs, DeadlineSeconds: *flagDeadline,
		}
		if *flagSegs > 1 {
			req.Segments = *flagSegs
		}
		body, _ := json.Marshal(req)
		resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("submit %d: %w", i, err)
		}
		var view serve.JobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusAccepted && err == nil:
			accepted = append(accepted, submitted{id: view.ID, class: view.Class})
		case resp.StatusCode == http.StatusTooManyRequests:
			rejected++ // admission control doing its job, not a lost job
		case resp.StatusCode == http.StatusUnprocessableEntity:
			infeasible++ // deadline-infeasible at admission: rejected, not lost
		default:
			return fmt.Errorf("submit %d: status %d (%v)", i, resp.StatusCode, err)
		}
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d submitted, %d accepted, %d rejected, %d deadline-infeasible\n",
		len(tasks), len(accepted), rejected, infeasible)

	// Poll every accepted job to a terminal state within the deadline.
	deadline := time.Now().Add(*flagTimeout)
	var done, failed, canceled, lost, missed int
	var costCents float64
	var parents []serve.JobView
	for _, sub := range accepted {
		final, err := pollJob(ctx, client, base, sub.id, deadline)
		if err != nil {
			return err
		}
		costCents += final.CostCents
		switch final.State {
		case serve.StateDone:
			done++
			if final.DeadlineMiss {
				missed++
			}
			sojourn.Observe(int64(final.Finished.Sub(final.Submitted)))
			if multi {
				parents = append(parents, final)
			}
		case serve.StateFailed:
			failed++
		case serve.StateCanceled:
			canceled++
		default:
			lost++
			fmt.Fprintf(os.Stderr, "loadgen: job %s still %s at deadline\n", sub.id, final.State)
		}
	}

	if h, ok := reg.Snapshot().HistogramByName("loadgen_sojourn_ns"); ok && h.Count > 0 {
		fmt.Printf("loadgen: %d jobs done, sojourn p50 %s p95 %s p99 %s (max %s)\n",
			done, obs.FmtDuration(h.P50), obs.FmtDuration(h.P95), obs.FmtDuration(h.P99),
			obs.FmtDuration(h.Max))
	}
	fmt.Printf("loadgen: outcomes: %d done, %d failed, %d canceled, %d rejected, %d infeasible, %d lost\n",
		done, failed, canceled, rejected, infeasible, lost)
	if done > 0 {
		missRate := float64(missed) / float64(done)
		fmt.Printf("loadgen: economics: %.6f¢ total, %.6f¢/job, %d deadline misses (%.1f%% of completed)\n",
			costCents, costCents/float64(done), missed, 100*missRate)
	}

	if err := checkServerMetrics(client, base, multi); err != nil {
		return err
	}
	if err := checkCostLedger(client, base, costCents); err != nil {
		return err
	}
	if multi {
		if err := verifyParts(client, base, parents); err != nil {
			return err
		}
	}
	if lost > 0 {
		return fmt.Errorf("%d jobs lost (admitted but not terminal within %s)", lost, *flagTimeout)
	}
	if failed > 0 {
		return fmt.Errorf("%d jobs failed", failed)
	}
	if *flagBudget > 0 && done > 0 && costCents/float64(done) > *flagBudget {
		return fmt.Errorf("mean cost %.6f¢/job exceeds the %.6f¢ budget", costCents/float64(done), *flagBudget)
	}
	return nil
}

// checkCostLedger cross-checks the client-side cost tally against the
// server's own Totals: every cent the jobs report must appear exactly once
// in the server ledger. The server may have served other clients, so its
// total is only required to be >= ours (and consistent within float noise
// when we are the sole client and they match closely).
func checkCostLedger(client *http.Client, base string, clientCents float64) error {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	defer resp.Body.Close()
	var body struct {
		Totals serve.Totals `json:"totals"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if body.Totals.CostCents+1e-9 < clientCents {
		return fmt.Errorf("cost ledger: server records %.9f¢ but jobs reported %.9f¢",
			body.Totals.CostCents, clientCents)
	}
	fmt.Fprintf(os.Stderr, "loadgen: cost ledger ok (server %.6f¢ >= client %.6f¢)\n",
		body.Totals.CostCents, clientCents)
	return nil
}

func pollJob(ctx context.Context, client *http.Client, base, id string, deadline time.Time) (serve.JobView, error) {
	var view serve.JobView
	for {
		resp, err := client.Get(base + "/jobs/" + id)
		if err != nil {
			return view, fmt.Errorf("poll %s: %w", id, err)
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			return view, fmt.Errorf("poll %s: %w", id, err)
		}
		switch view.State {
		case serve.StateDone, serve.StateFailed, serve.StateCanceled:
			return view, nil
		}
		if time.Now().After(deadline) {
			return view, nil // caller counts it lost
		}
		select {
		case <-time.After(20 * time.Millisecond):
		case <-ctx.Done():
			return view, ctx.Err()
		}
	}
}

// checkServerMetrics asserts the serving instance publishes the queue and
// sojourn instrumentation on /metrics — the observability contract the CI
// smoke test pins. In multi-part mode it additionally requires the segment
// fan-out instrumentation and a balanced part ledger: every part the
// server admitted must also have completed, however many times its lease
// was reassigned along the way.
func checkServerMetrics(client *http.Client, base string, multi bool) error {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if !gaugeExists(snap, "queue_depth") {
		return fmt.Errorf("metrics: server exposes no queue_depth gauge")
	}
	for _, h := range []string{"serve_sojourn_ns", "queue_wait_ns"} {
		if _, ok := snap.HistogramByName(h); !ok {
			return fmt.Errorf("metrics: server exposes no %s histogram", h)
		}
	}
	fmt.Fprintln(os.Stderr, "loadgen: server metrics ok (queue depth gauge + sojourn histograms present)")
	if !multi {
		return nil
	}
	for _, h := range []string{"serve_fanout_ns", "serve_stitch_ns"} {
		if hs, ok := snap.HistogramByName(h); !ok || hs.Count == 0 {
			return fmt.Errorf("metrics: server exposes no %s observations", h)
		}
	}
	sub := snap.CounterTotal("serve_parts_submitted")
	comp := snap.CounterTotal("serve_parts_completed")
	if sub == 0 || sub != comp {
		return fmt.Errorf("metrics: part ledger unbalanced: %d submitted, %d completed", sub, comp)
	}
	fmt.Fprintf(os.Stderr, "loadgen: part ledger balanced (%d parts submitted and completed)\n", sub)
	return nil
}

// verifyParts walks every completed parent's part jobs and asserts the job
// graph settled without loss: every part done, and every requeue confined
// to individual parts — siblings of a reassigned part keep attempts == 1,
// which is the per-segment (not whole-job) recovery contract
// scripts/ladder_smoke.sh pins after killing a worker mid-segment.
func verifyParts(client *http.Client, base string, parents []serve.JobView) error {
	var total, reassigned, untouched int
	for _, p := range parents {
		if p.PartsTotal == 0 || p.PartsDone != p.PartsTotal {
			return fmt.Errorf("parts: job %s done with %d/%d parts", p.ID, p.PartsDone, p.PartsTotal)
		}
		re := 0
		for _, id := range p.Parts {
			resp, err := client.Get(base + "/jobs/" + id)
			if err != nil {
				return fmt.Errorf("parts: %s: %w", id, err)
			}
			var pv serve.JobView
			err = json.NewDecoder(resp.Body).Decode(&pv)
			resp.Body.Close()
			if err != nil {
				return fmt.Errorf("parts: %s: %w", id, err)
			}
			if pv.State != serve.StateDone {
				return fmt.Errorf("parts: %s is %s under a done parent", id, pv.State)
			}
			total++
			if pv.Attempts > 1 {
				re++
			}
		}
		reassigned += re
		if re > 0 {
			untouched += p.PartsTotal - re
		}
	}
	fmt.Printf("loadgen: parts: %d done, %d reassigned, %d untouched siblings of reassigned parents\n",
		total, reassigned, untouched)
	return nil
}

func gaugeExists(snap obs.Snapshot, name string) bool {
	for k := range snap.Gauges {
		if k == name || len(k) > len(name) && k[:len(name)+1] == name+"{" {
			return true
		}
	}
	return false
}

// runCompareCost serves the same tasks under the seconds and cost
// objectives over a (typically mixed) fleet and prints the bill delta.
func runCompareCost(ctx context.Context) error {
	specs, err := backend.ParseFleet(*flagPool, *flagEach)
	if err != nil {
		return err
	}
	fleet := sched.Fleet(specs)
	tasks := sched.GenerateTasks(*flagN, *flagSeed)
	proto := core.Workload{Frames: *flagFrames, Scale: *flagScale}
	fmt.Fprintf(os.Stderr, "loadgen: comparing cost vs seconds objectives over %d jobs on %d servers...\n",
		len(tasks), len(fleet))
	c, err := serve.RunCostComparison(ctx, fleet, tasks, proto, *flagSeed)
	if err != nil {
		return err
	}
	fmt.Printf("seconds-objective: %d completed, %.3f fleet-seconds, %.6f¢, %d deadline misses\n",
		c.Seconds.Completed, c.Seconds.SimSeconds, c.Seconds.CostCents, c.Seconds.DeadlineMisses)
	fmt.Printf("cost-objective:    %d completed, %.3f fleet-seconds, %.6f¢, %d deadline misses\n",
		c.Cost.Completed, c.Cost.SimSeconds, c.Cost.CostCents, c.Cost.DeadlineMisses)
	fmt.Printf("savings: cost-aware placement avoids %.1f%% of the seconds-objective bill\n", 100*c.Savings())
	return nil
}

func runCompare(ctx context.Context) error {
	pool, err := sched.PoolByNames(cli.Strings(*flagPool), *flagEach)
	if err != nil {
		return err
	}
	tasks := sched.GenerateTasks(*flagN, *flagSeed)
	proto := core.Workload{Frames: *flagFrames, Scale: *flagScale}
	fmt.Fprintf(os.Stderr, "loadgen: comparing smart vs random over %d jobs on %d servers...\n",
		len(tasks), len(pool))
	c, err := serve.RunComparison(ctx, pool, tasks, proto, *flagSeed)
	if err != nil {
		return err
	}
	fmt.Printf("smart:  %d completed, %.3f fleet-seconds\n", c.Smart.Completed, c.Smart.SimSeconds)
	fmt.Printf("random: %d completed, %.3f fleet-seconds\n", c.Random.Completed, c.Random.SimSeconds)
	fmt.Printf("delta:  smart frees %+.2f%% of the fleet time random spends\n", 100*c.Delta())
	return nil
}
