package transcoding

import (
	"bytes"
	"context"
	"math"
	"testing"
)

func testWorkload(video string) Workload {
	return Workload{Video: video, Frames: 8, Scale: 8}
}

func TestVideosCatalog(t *testing.T) {
	if len(Videos()) != 15 {
		t.Fatalf("catalog size %d", len(Videos()))
	}
	v, err := VideoByName("chicken")
	if err != nil || v.Height != 2160 {
		t.Fatalf("chicken lookup: %v %+v", err, v)
	}
	if _, err := VideoByName("missing"); err == nil {
		t.Fatal("unknown video accepted")
	}
}

func TestSynthesizeEncodeDecodeTranscode(t *testing.T) {
	frames, err := Synthesize("girl", 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 8 || frames[0].Width%16 != 0 {
		t.Fatalf("synthesis shape: %d frames %dx%d", len(frames), frames[0].Width, frames[0].Height)
	}
	opt := DefaultOptions()
	stream, stats, err := Encode(frames, 30, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BitrateKbps() <= 0 {
		t.Fatal("no bitrate")
	}
	decoded, info, err := Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	if info.Width != frames[0].Width || len(decoded) != 8 {
		t.Fatalf("decode shape: %+v, %d frames", info, len(decoded))
	}
	// Decoded output equals the encoder's reconstruction.
	if got := PSNR(frames[0], decoded[0]); math.Abs(got-stats.Frames[0].PSNR) > 1e-9 {
		t.Fatalf("decoder PSNR %.6f != encoder %.6f", got, stats.Frames[0].PSNR)
	}
	// Transcoding to a coarser setting shrinks the stream.
	small := DefaultOptions()
	small.CRF = 40
	stream2, _, err := Transcode(stream, small)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream2) >= len(stream) {
		t.Fatalf("crf 40 transcode (%d B) not smaller than crf 23 original (%d B)",
			len(stream2), len(stream))
	}
	if _, _, err := Encode(nil, 30, opt); err == nil {
		t.Fatal("empty encode accepted")
	}
}

func TestProfileFacade(t *testing.T) {
	rep, stats, err := Profile(context.Background(), Job{
		Workload: testWorkload("bike"),
		Options:  DefaultOptions(),
		Config:   BaselineConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seconds <= 0 || stats.TotalBits <= 0 {
		t.Fatal("degenerate profile")
	}
	td := rep.Topdown
	if s := td.Retiring + td.FrontEnd + td.BadSpec + td.BackEnd; s < 99.9 || s > 100.1 {
		t.Fatalf("top-down sum %f", s)
	}
}

func TestConfigsFacade(t *testing.T) {
	if len(Configs()) != 5 {
		t.Fatalf("%d configs", len(Configs()))
	}
	if _, ok := ConfigByName("be_op1"); !ok {
		t.Fatal("be_op1 missing")
	}
	if _, ok := ConfigByName("zz"); ok {
		t.Fatal("bogus config resolved")
	}
}

func TestTrainAutoFDOProducesFasterImage(t *testing.T) {
	w := testWorkload("desktop")
	opt := DefaultOptions()
	img, err := TrainAutoFDO(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := Profile(context.Background(), Job{Workload: w, Options: opt, Config: BaselineConfig()})
	if err != nil {
		t.Fatal(err)
	}
	fdo, _, err := Profile(context.Background(), Job{Workload: w, Options: opt, Config: BaselineConfig(), Image: img})
	if err != nil {
		t.Fatal(err)
	}
	if fdo.Seconds >= base.Seconds {
		t.Fatalf("AutoFDO (%.5fs) not faster than baseline (%.5fs)", fdo.Seconds, base.Seconds)
	}
	if fdo.L1IMPKI >= base.L1IMPKI {
		t.Fatalf("AutoFDO L1i MPKI %.3f not below %.3f", fdo.L1IMPKI, base.L1IMPKI)
	}
}

func TestGraphiteTuningFacade(t *testing.T) {
	tn := GraphiteTuning(AllGraphiteFlags())
	if !tn.FuseDeblock || !tn.InterchangeResidual || !tn.DistributeLookahead {
		t.Fatalf("tuning %+v", tn)
	}
}

func TestSweepFacades(t *testing.T) {
	w := testWorkload("cat")
	pts := SweepCRFRefs(context.Background(), w, DefaultOptions(), BaselineConfig(), []int{20, 40}, []int{1})
	if len(pts) != 2 || pts[0].Err != nil || pts[1].Err != nil {
		t.Fatalf("crf sweep: %+v", pts)
	}
	if pts[1].Report.Seconds >= pts[0].Report.Seconds {
		t.Fatal("crf 40 should transcode faster than crf 20")
	}
	pp := SweepPresets(context.Background(), w, BaselineConfig(), []Preset{"ultrafast"}, 23, 3)
	if len(pp) != 1 || pp[0].Err != nil {
		t.Fatalf("preset sweep: %+v", pp)
	}
	vv := SweepVideos(context.Background(), []string{"cat"}, 8, 8, DefaultOptions(), BaselineConfig())
	if len(vv) != 1 || vv[0].Err != nil {
		t.Fatalf("video sweep: %+v", vv)
	}
}

func TestSchedulerFacade(t *testing.T) {
	tasks := SchedulerTasks()
	if len(tasks) != 4 {
		t.Fatalf("%d tasks", len(tasks))
	}
	// A reduced matrix keeps this integration test fast; the one-to-one
	// constraint needs at least as many optimized configs as tasks.
	configs := []Config{BaselineConfig(), Configs()[2], Configs()[3]}
	m, err := MeasureScheduling(context.Background(), tasks[:2], configs, Workload{Frames: 6, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	o, err := EvaluateSchedulers(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.SmartAssign) != 2 || len(o.BestSeconds) != 2 {
		t.Fatalf("outcome shape: %+v", o)
	}
	best := SchedulerSpeedup(o.BaselineSeconds, o.BestSeconds)
	smart := SchedulerSpeedup(o.BaselineSeconds, o.SmartSeconds)
	if smart > best+1e-9 {
		t.Fatalf("smart (%f) cannot beat best (%f)", smart, best)
	}
}

func TestFleetFacade(t *testing.T) {
	tasks := GenerateTasks(6, 11)
	if len(tasks) != 6 {
		t.Fatalf("%d tasks", len(tasks))
	}
	pool := UniformPool(Configs()[1:], 2)
	if len(pool) != 8 {
		t.Fatalf("pool size %d", len(pool))
	}
	// Synthetic baseline reports route tasks without simulation.
	reports := make([]*Report, len(tasks))
	for i := range reports {
		reports[i] = &Report{}
		reports[i].Topdown.MemBound = float64(10 + i*5)
		reports[i].Topdown.FrontEnd = float64(30 - i*5)
	}
	assign, err := AssignPool(tasks, reports, pool)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, si := range assign {
		if si < 0 || si >= len(pool) || seen[si] {
			t.Fatalf("invalid assignment %v", assign)
		}
		seen[si] = true
	}
}

func TestSSIMFacade(t *testing.T) {
	frames, err := Synthesize("bike", 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s := SSIM(frames[0], frames[0]); s < 0.999 {
		t.Fatalf("self SSIM %f", s)
	}
	if s := SSIM(frames[0], frames[1]); s >= 1 {
		t.Fatalf("distinct frames SSIM %f", s)
	}
}

func TestY4MFacade(t *testing.T) {
	frames, err := Synthesize("bike", 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteY4M(&buf, frames, 29); err != nil {
		t.Fatal(err)
	}
	got, fps, err := ReadY4M(&buf)
	if err != nil || fps != 29 || len(got) != 2 {
		t.Fatalf("y4m roundtrip: %v fps=%d n=%d", err, fps, len(got))
	}
	if !math.IsInf(PSNR(frames[0], got[0]), 1) {
		t.Fatal("y4m roundtrip not bit-exact")
	}
}
