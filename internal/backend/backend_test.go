package backend

import (
	"strings"
	"testing"

	"repro/internal/codec"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in      string
		label   string
		price   float64
		spot    bool
		wantErr string
	}{
		{in: "baseline", label: "baseline", price: 34},
		{in: "fe_op:42", label: "fe_op", price: 42},
		{in: "accel", label: "accel", price: 250},
		{in: "accel:120.5", label: "accel", price: 120.5},
		{in: "accel::spot", label: "accel", price: 250 * SpotDiscount, spot: true},
		{in: "be_op1:12.5:spot", label: "be_op1", price: 12.5, spot: true},
		{in: "bogus", wantErr: "unknown server class"},
		{in: "baseline:-3", wantErr: "bad price"},
		{in: "baseline:34:onsale", wantErr: "bad suffix"},
		{in: "baseline:34:spot:x", wantErr: "too many fields"},
		{in: "", wantErr: "empty"},
	}
	for _, c := range cases {
		spec, err := ParseSpec(c.in)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("ParseSpec(%q) err = %v, want containing %q", c.in, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if spec.Label() != c.label || spec.PriceCentsHour != c.price || spec.Spot != c.spot {
			t.Errorf("ParseSpec(%q) = {%s %.2f spot=%v}, want {%s %.2f spot=%v}",
				c.in, spec.Label(), spec.PriceCentsHour, spec.Spot, c.label, c.price, c.spot)
		}
	}
}

func TestParseFleet(t *testing.T) {
	fleet, err := ParseFleet("baseline, accel:100", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 4 {
		t.Fatalf("len = %d, want 4", len(fleet))
	}
	if fleet[0].Label() != "baseline" || fleet[1].Label() != "baseline" ||
		fleet[2].Label() != "accel" || fleet[3].Label() != "accel" {
		t.Fatalf("unexpected fleet order: %v %v %v %v",
			fleet[0].Label(), fleet[1].Label(), fleet[2].Label(), fleet[3].Label())
	}
	if _, err := ParseFleet(" , ", 1); err == nil {
		t.Fatal("empty fleet spec accepted")
	}
}

func TestCostCents(t *testing.T) {
	s := ServerSpec{PriceCentsHour: 3600}
	if got := s.CostCents(2); got != 2 {
		t.Fatalf("CostCents(2) at 3600 c/h = %v, want 2", got)
	}
}

func TestAccelSecondsMonotonic(t *testing.T) {
	m := DefaultAccel()
	small := m.Seconds(4, 64, 64)
	big := m.Seconds(8, 128, 128)
	if small <= m.StartupSeconds || big <= small {
		t.Fatalf("Seconds not monotonic: small=%v big=%v", small, big)
	}
	// 4 frames of 64×64 is 4×4×4 = 64 macroblocks.
	want := m.StartupSeconds + 64/m.MBPerSecond
	if diff := small - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("Seconds(4,64,64) = %v, want %v", small, want)
	}
}

func TestAccelAccepts(t *testing.T) {
	// ultrafast..medium with a small DPB fit the fixed-function surface;
	// slow presets (deep refs, trellis 2, umh/tesa search) do not.
	ok := []string{"ultrafast", "superfast", "veryfast", "faster", "fast", "medium"}
	bad := []string{"slow", "slower", "veryslow", "placebo"}
	m := DefaultAccel()
	for _, p := range ok {
		opt := codec.Defaults()
		if err := codec.ApplyPreset(&opt, codec.Preset(p)); err != nil {
			t.Fatalf("preset %s: %v", p, err)
		}
		if opt.Refs > 4 {
			opt.Refs = 4
		}
		if !m.Accepts(opt) {
			t.Errorf("preset %s (refs %d) rejected, want accepted", p, opt.Refs)
		}
	}
	for _, p := range bad {
		opt := codec.Defaults()
		if err := codec.ApplyPreset(&opt, codec.Preset(p)); err != nil {
			t.Fatalf("preset %s: %v", p, err)
		}
		if m.Accepts(opt) {
			t.Errorf("preset %s accepted, want rejected", p)
		}
	}
	opt := codec.Defaults()
	opt.Refs = 5
	if m.Accepts(opt) {
		t.Error("refs=5 accepted, want rejected (DPB limit)")
	}
	opt = codec.Defaults()
	opt.RC = codec.RCABR
	if m.Accepts(opt) {
		t.Error("ABR rate control accepted, want rejected")
	}
}
