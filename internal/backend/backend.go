// Package backend abstracts the encoder hardware a fleet server brings to
// the job market: the paper's software path (codec + uarch simulation, one
// of the Table IV configurations) or a fixed-function "NVENC-like"
// accelerator that trades option-surface flexibility and a quantified
// quality penalty for an order-of-magnitude wall-clock advantage. Each
// server additionally carries an hourly price and a spot flag so placement
// can optimize dollars under deadlines instead of raw fleet-seconds.
//
// The package sits below sched and serve: it knows codec options and uarch
// configs, but nothing about queues, leases, or assignment matrices.
package backend

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/codec"
	"repro/internal/uarch"
)

// Kind names an encoder implementation class.
type Kind string

const (
	// Software is the paper's path: the codec running on a simulated x86
	// core described by a uarch.Config. Speed varies per config via the
	// characterization model (topdown affinity).
	Software Kind = "software"
	// Accel is a fixed-function hardware encoder modeled after NVENC-class
	// ASICs: near-constant throughput in macroblocks/second, a restricted
	// option surface, and a quality penalty relative to software at the
	// same CRF.
	Accel Kind = "accel"
)

// ParseKind validates a backend kind string.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case Software, Accel:
		return Kind(s), nil
	case "":
		return Software, nil
	}
	return "", fmt.Errorf("backend: unknown kind %q (want software or accel)", s)
}

// ServerSpec describes one fleet server: what silicon it encodes with and
// what it costs to keep running.
type ServerSpec struct {
	Backend Kind
	// Config is the simulated microarchitecture for Software servers.
	// Ignored by Accel servers (the ASIC's host core is not modeled).
	Config uarch.Config
	// PriceCentsHour is the rental price in cents per hour of wall clock.
	PriceCentsHour float64
	// Spot marks the server as preemptible: it may vanish mid-job without
	// notice, relying on leases + segment restart for recovery.
	Spot bool
}

// Label is the capability-class name used in metrics and placement keys:
// the uarch config name for software servers, "accel" for accelerators.
func (s ServerSpec) Label() string {
	if s.Backend == Accel {
		return string(Accel)
	}
	return s.Config.Name
}

// CostCents prices seconds of busy wall clock on this server.
func (s ServerSpec) CostCents(seconds float64) float64 {
	return seconds * s.PriceCentsHour / 3600
}

// Default on-demand prices in cents per hour, loosely shaped like cloud
// instance pricing: deeper/wider software configs rent for more, and the
// accelerator box (host + ASIC) is the most expensive instance but wins on
// cost-per-encode when its throughput applies. Unknown configs fall back
// to the baseline price.
const (
	defaultSoftwarePrice = 34.0
	defaultAccelPrice    = 250.0
	// SpotDiscount is the default price multiplier for spot servers when
	// no explicit price is given.
	SpotDiscount = 0.3
)

var defaultPrices = map[string]float64{
	"baseline": 34,
	"fe_op":    42,
	"be_op1":   44,
	"be_op2":   46,
	"bs_op":    40,
	"pf_op":    48,
	"accel":    defaultAccelPrice,
}

// DefaultPriceCents returns the default on-demand hourly price for a
// capability-class label (uarch config name or "accel").
func DefaultPriceCents(label string) float64 {
	if p, ok := defaultPrices[label]; ok {
		return p
	}
	return defaultSoftwarePrice
}

// FillDefaults resolves zero-valued pricing on a spec: unset prices take
// the class default, discounted for spot capacity.
func (s ServerSpec) FillDefaults() ServerSpec {
	if s.Backend == "" {
		s.Backend = Software
	}
	if s.PriceCentsHour <= 0 {
		s.PriceCentsHour = DefaultPriceCents(s.Label())
		if s.Spot {
			s.PriceCentsHour *= SpotDiscount
		}
	}
	return s
}

// ParseSpec parses one server spec of the form
//
//	name[:price][:spot]
//
// where name is a Table IV uarch config name or "accel", price is cents
// per hour (omitted or 0 → class default, spot-discounted), and the
// literal suffix "spot" marks preemptible capacity. Examples:
//
//	baseline
//	fe_op:42
//	accel:250
//	accel::spot        (default accel price × spot discount)
//	be_op1:12.5:spot
func ParseSpec(s string) (ServerSpec, error) {
	parts := strings.Split(strings.TrimSpace(s), ":")
	if len(parts) == 0 || parts[0] == "" {
		return ServerSpec{}, fmt.Errorf("backend: empty server spec")
	}
	var spec ServerSpec
	name := parts[0]
	if name == string(Accel) {
		spec.Backend = Accel
	} else {
		cfg, ok := uarch.ByName(name)
		if !ok {
			return ServerSpec{}, fmt.Errorf("backend: unknown server class %q (want a Table IV config or accel)", name)
		}
		spec.Backend = Software
		spec.Config = cfg
	}
	if len(parts) > 1 && parts[1] != "" {
		p, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || p < 0 {
			return ServerSpec{}, fmt.Errorf("backend: bad price %q in spec %q", parts[1], s)
		}
		spec.PriceCentsHour = p
	}
	if len(parts) > 2 {
		switch parts[2] {
		case "spot":
			spec.Spot = true
		case "":
		default:
			return ServerSpec{}, fmt.Errorf("backend: bad suffix %q in spec %q (want spot)", parts[2], s)
		}
	}
	if len(parts) > 3 {
		return ServerSpec{}, fmt.Errorf("backend: too many fields in spec %q", s)
	}
	return spec.FillDefaults(), nil
}

// ParseFleet parses a comma-separated list of server specs, replicating
// each `each` times (each < 1 is treated as 1).
func ParseFleet(list string, each int) ([]ServerSpec, error) {
	if each < 1 {
		each = 1
	}
	var fleet []ServerSpec
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		spec, err := ParseSpec(tok)
		if err != nil {
			return nil, err
		}
		for i := 0; i < each; i++ {
			fleet = append(fleet, spec)
		}
	}
	if len(fleet) == 0 {
		return nil, fmt.Errorf("backend: empty fleet spec %q", list)
	}
	return fleet, nil
}

// AccelModel is the wall-clock and quality model for the fixed-function
// encoder. NVENC-class ASICs stream macroblocks through a fixed pipeline:
// throughput is near-constant per macroblock regardless of preset-style
// tuning, there is a small per-job setup cost, and rate-distortion quality
// at a given CRF trails good software encodes by a few CRF points.
type AccelModel struct {
	// MBPerSecond is sustained 16×16-macroblock throughput.
	MBPerSecond float64
	// StartupSeconds is the fixed per-job pipeline setup cost.
	StartupSeconds float64
	// CRFOffset is the quality penalty: an accelerator encode at CRF c
	// looks like a software encode at roughly c + CRFOffset. Placement
	// uses it to honor per-job quality floors.
	CRFOffset int
}

// DefaultAccel is calibrated against the simulated software path, which
// sustains ~0.4M macroblocks per simulated second on the baseline config:
// the ASIC runs ~15× faster with a negligible setup cost, and costs ~4
// CRF points of quality (the commonly cited NVENC-vs-x264 gap at speed
// parity).
func DefaultAccel() AccelModel {
	return AccelModel{MBPerSecond: 6e6, StartupSeconds: 1e-5, CRFOffset: 4}
}

// Seconds predicts the accelerator's wall clock for an encode of frames
// frames at width×height pixels. It is a closed-form model — unlike the
// software path it needs no warm profile, so accel cells in a placement
// matrix are always predictable.
func (m AccelModel) Seconds(frames, width, height int) float64 {
	if frames <= 0 || width <= 0 || height <= 0 {
		return m.StartupSeconds
	}
	mbw := (width + 15) / 16
	mbh := (height + 15) / 16
	return m.StartupSeconds + float64(frames)*float64(mbw)*float64(mbh)/m.MBPerSecond
}

// Accepts reports whether the fixed-function pipeline can execute the
// given options unchanged. The surface mirrors real ASIC limits: CRF-style
// rate control only, a small DPB (≤ 4 reference frames), dia/hex-class
// motion search, and no trellis-2 exhaustive RD quantization. Jobs outside
// the surface are rejected rather than silently transformed, so a part
// encoded on either backend produces the identical bitstream and segment
// stitching stays byte-exact across a mixed fleet.
func (m AccelModel) Accepts(opt codec.Options) bool {
	if opt.RC != codec.RCCRF {
		return false
	}
	if opt.Refs > 4 {
		return false
	}
	if opt.ME != codec.MEDia && opt.ME != codec.MEHex {
		return false
	}
	if opt.Trellis > 1 {
		return false
	}
	return true
}
