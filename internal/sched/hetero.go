package sched

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/codec"
	"repro/internal/perf"
)

// Fleet is the heterogeneous generalization of Pool: each server carries a
// backend kind, a price, and a spot flag in addition to its uarch config.
type Fleet []backend.ServerSpec

// FleetFromPool lifts a homogeneous software pool into a Fleet at default
// on-demand prices, preserving order.
func FleetFromPool(p Pool) Fleet {
	f := make(Fleet, len(p))
	for i, cfg := range p {
		f[i] = backend.ServerSpec{Backend: backend.Software, Config: cfg}.FillDefaults()
	}
	return f
}

// Configs projects the software view of a fleet for code that only
// understands uarch configs (accel servers project their zero config).
func (f Fleet) Configs() Pool {
	p := make(Pool, len(f))
	for i, s := range f {
		p[i] = s.Config
	}
	return p
}

// AllSoftware reports whether no server in the fleet is an accelerator.
func (f Fleet) AllSoftware() bool {
	for _, s := range f {
		if s.Backend == backend.Accel {
			return false
		}
	}
	return true
}

// Objective selects what the placement matrix minimizes.
type Objective string

const (
	// ObjectiveSeconds minimizes predicted fleet-seconds (the legacy
	// behavior, and the default).
	ObjectiveSeconds Objective = "seconds"
	// ObjectiveCost minimizes predicted dollars: seconds × the assigned
	// server's hourly price.
	ObjectiveCost Objective = "cost"
)

// ParseObjective validates an objective string ("" → seconds).
func ParseObjective(s string) (Objective, error) {
	switch Objective(s) {
	case ObjectiveSeconds, ObjectiveCost:
		return Objective(s), nil
	case "":
		return ObjectiveSeconds, nil
	}
	return "", fmt.Errorf("sched: unknown objective %q (want seconds or cost)", s)
}

// HeteroJob is one placement row: a job with its warm profile (nil when
// cold), the codec options it must run with, and its economic metadata.
type HeteroJob struct {
	// Report is the warmed baseline profile for the job's video, nil when
	// the dispatcher has not yet measured it.
	Report *perf.Report
	// Opts are the exact encoder options; the accelerator's restricted
	// surface is checked against them.
	Opts codec.Options
	// DeadlineSeconds caps predicted service seconds for this job (per
	// part for segmented jobs); 0 means no deadline.
	DeadlineSeconds float64
	// QualityFloor is the worst acceptable effective CRF (higher CRF =
	// worse quality); 0 means no floor. A backend whose quality penalty
	// pushes the effective CRF above the floor is infeasible.
	QualityFloor int
	// Frames, Width, Height describe the proxy geometry of the unit being
	// placed, for the accelerator's closed-form clock model.
	Frames, Width, Height int
}

// PredictSeconds estimates service seconds for a job on a server. The
// accelerator is a closed-form model and always predictable; software
// servers need a warm baseline profile (ok=false when cold). Software
// predictions scale the measured baseline seconds by the topdown affinity
// (a percentage improvement estimate) of the server's config.
func PredictSeconds(rep *perf.Report, spec backend.ServerSpec, model backend.AccelModel, frames, width, height int) (float64, bool) {
	if spec.Backend == backend.Accel {
		return model.Seconds(frames, width, height), true
	}
	if rep == nil {
		return 0, false
	}
	s := rep.Seconds * (1 - Affinity(rep, spec.Config)/100)
	if s < 0 {
		s = 0
	}
	return s, true
}

// Feasible reports whether a server may run a job at all, independent of
// time: the accelerator must accept the option surface and must not push
// the effective CRF past the job's quality floor.
func Feasible(job HeteroJob, spec backend.ServerSpec, model backend.AccelModel) bool {
	if spec.Backend != backend.Accel {
		return true
	}
	if !model.Accepts(job.Opts) {
		return false
	}
	if job.QualityFloor > 0 && job.Opts.CRF+model.CRFOffset > job.QualityFloor {
		return false
	}
	return true
}

// maskPenalty marks an infeasible (or deadline-busting) cell. It is finite
// so HungarianPad stays total, and large enough that a masked cell is only
// chosen when a row has no feasible column at all — the caller detects
// that and leaves the job unplaced.
const maskPenalty = 1e12

// AssignHetero builds the economic placement matrix over warm jobs and
// free servers and solves it with HungarianPad. Cell (i,j) is the
// objective value (seconds or cents) of running job i on server j;
// infeasible cells — accelerator option/quality rejections and cells whose
// predicted seconds exceed the job's deadline — are masked before the
// solve, and any assignment that lands on a masked cell is returned as -1
// (unplaced), as are cold jobs (nil Report), which the caller places by
// fallback policy among servers that pass Feasible.
//
// bias, when non-nil, is a per-server load-spreading term in [0,1]-ish
// units (typically utilization fractions); it is scaled by the mean
// feasible cell magnitude so it breaks ties without fighting the
// objective, mirroring AssignDynamicBiased.
func AssignHetero(jobs []HeteroJob, free []backend.ServerSpec, model backend.AccelModel, obj Objective, bias []float64) []int {
	out := make([]int, len(jobs))
	var warm []int
	for i := range jobs {
		out[i] = -1
		if jobs[i].Report != nil {
			warm = append(warm, i)
		}
	}
	if len(warm) == 0 || len(free) == 0 {
		return out
	}
	cost := make([][]float64, len(warm))
	var sum float64
	var n int
	for k, i := range warm {
		cost[k] = make([]float64, len(free))
		for j, spec := range free {
			sec, ok := PredictSeconds(jobs[i].Report, spec, model, jobs[i].Frames, jobs[i].Width, jobs[i].Height)
			if !ok || !Feasible(jobs[i], spec, model) ||
				(jobs[i].DeadlineSeconds > 0 && sec > jobs[i].DeadlineSeconds) {
				cost[k][j] = maskPenalty
				continue
			}
			v := sec
			if obj == ObjectiveCost {
				v = spec.CostCents(sec)
			}
			cost[k][j] = v
			sum += v
			n++
		}
	}
	if bias != nil && n > 0 {
		// Scale the bias relative to the matrix magnitude so utilization
		// spreading stays a tiebreaker at any objective unit (seconds are
		// ~1e-4, cents ~1e-6 for the tiny CI proxies).
		scale := sum / float64(n)
		if scale <= 0 {
			scale = 1
		}
		for k := range cost {
			for j := range cost[k] {
				if cost[k][j] < maskPenalty {
					cost[k][j] += bias[j] * scale
				}
			}
		}
	}
	for k, j := range HungarianPad(cost) {
		if j >= 0 && cost[k][j] >= maskPenalty {
			j = -1
		}
		out[warm[k]] = j
	}
	return out
}

// FeasibleAnywhere reports whether at least one server class in specs can
// predictably meet the job's deadline and quality floor. Cold software
// classes (no profile yet) are treated optimistically — admission should
// not reject a job the fleet has never measured. It is the admission-time
// companion to the placement-time masking in AssignHetero.
func FeasibleAnywhere(job HeteroJob, specs []backend.ServerSpec, model backend.AccelModel) bool {
	if len(specs) == 0 {
		return true
	}
	for _, spec := range specs {
		if !Feasible(job, spec, model) {
			continue
		}
		sec, ok := PredictSeconds(job.Report, spec, model, job.Frames, job.Width, job.Height)
		if !ok {
			return true // cold software class: optimistic
		}
		if job.DeadlineSeconds <= 0 || sec <= job.DeadlineSeconds {
			return true
		}
	}
	return false
}

// FleetCost prices a vector of (seconds, server) outcomes; a convenience
// for reports and tests.
func FleetCost(seconds []float64, specs []backend.ServerSpec) float64 {
	var cents float64
	for i, s := range seconds {
		if i < len(specs) {
			cents += specs[i].CostCents(s)
		}
	}
	return cents
}
