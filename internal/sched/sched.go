package sched

import (
	"context"
	"fmt"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/uarch"
)

// Task is one transcoding job to place (a Table III row).
type Task struct {
	Name   string
	Video  string
	CRF    int
	Refs   int
	Preset codec.Preset
}

// TableIII returns the four tasks of the paper's case study.
func TableIII() []Task {
	return []Task{
		{"task1", "desktop", 30, 8, codec.PresetVeryfast},
		{"task2", "holi", 10, 1, codec.PresetSlow},
		{"task3", "presentation", 35, 6, codec.PresetVeryfast},
		{"task4", "game2", 15, 2, codec.PresetMedium},
	}
}

// Options builds the encoder options of a task: preset defaults with the
// task's crf and refs pinned on top, as the paper does. It is exported for
// the serving layer, which turns submitted jobs into the same encode
// options the offline study uses.
func (t Task) Options() (codec.Options, error) {
	o := codec.Options{RC: codec.RCCRF, CRF: t.CRF, QP: 26, KeyintMax: 250}
	if err := codec.ApplyPreset(&o, t.Preset); err != nil {
		return o, err
	}
	o.CRF = t.CRF
	o.Refs = t.Refs
	return o, nil
}

// Matrix holds the measured transcoding time of every task on every
// configuration, plus the per-cell profiles.
type Matrix struct {
	Tasks   []Task
	Configs []uarch.Config
	Seconds [][]float64 // [task][config]
	Reports [][]*perf.Report
}

// Measure simulates every task on every configuration. workload fields
// other than Video are taken from proto (Frames/Scale/Seed), letting tests
// shrink the study. The task×config cells fan out on the shared execution
// engine (they are independent simulations); the first failure aborts the
// remaining cells and cancellation propagates from ctx.
func Measure(ctx context.Context, tasks []Task, configs []uarch.Config, proto core.Workload) (*Matrix, error) {
	m := &Matrix{Tasks: tasks, Configs: configs}
	m.Seconds = make([][]float64, len(tasks))
	m.Reports = make([][]*perf.Report, len(tasks))
	opts := make([]codec.Options, len(tasks))
	for ti, t := range tasks {
		opt, err := t.Options()
		if err != nil {
			return nil, err
		}
		opts[ti] = opt
		m.Seconds[ti] = make([]float64, len(configs))
		m.Reports[ti] = make([]*perf.Report, len(configs))
	}
	nc := len(configs)
	cellHist := obs.Default().Histogram("sched_cell_ns")
	cells := obs.Default().Counter("sched_cells_measured")
	_, err := exec.Pool{Policy: exec.FailFast}.Map(ctx, len(tasks)*nc, func(ctx context.Context, i int) error {
		ti, ci := i/nc, i%nc
		w := proto
		w.Video = tasks[ti].Video
		sp := cellHist.Start()
		res, err := core.Run(ctx, core.Job{Workload: w, Options: opts[ti], Config: configs[ci]})
		sp.End()
		if err != nil {
			return fmt.Errorf("sched: %s on %s: %w", tasks[ti].Name, configs[ci].Name, err)
		}
		cells.Inc()
		m.Seconds[ti][ci] = res.Report.Seconds
		m.Reports[ti][ci] = res.Report
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// configIndex locates a configuration by name.
func (m *Matrix) configIndex(name string) int {
	for i, c := range m.Configs {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// BestAssignment returns, per task, the index of the fastest configuration
// (repetition allowed — the paper's unconstrained "best scheduler").
func (m *Matrix) BestAssignment() []int {
	out := make([]int, len(m.Tasks))
	for ti, row := range m.Seconds {
		best := 0
		for ci, s := range row {
			if s < row[best] {
				best = ci
			}
		}
		out[ti] = best
	}
	return out
}

// RandomExpectedSeconds returns each task's expected time under uniform
// random placement across the configurations.
func (m *Matrix) RandomExpectedSeconds() []float64 {
	out := make([]float64, len(m.Tasks))
	for ti, row := range m.Seconds {
		var sum float64
		for _, s := range row {
			sum += s
		}
		out[ti] = sum / float64(len(row))
	}
	return out
}

// Affinity scores how well a configuration's strengths match a task's
// baseline bottleneck profile: the Top-down share (percent of slots) the
// configuration targets, weighted by how much of that share the upgrade
// recovers in practice. The efficacy factors are calibrated once from
// profiling microbenchmarks (doubling the L1i converts most front-end
// stalls; a better predictor recovers only a small part of bad speculation
// because data-dependent branches stay hard), exactly the kind of reference
// data the paper says the profiling results provide to the scheduler.
func Affinity(baseline *perf.Report, cfg uarch.Config) float64 {
	td := baseline.Topdown
	switch cfg.Name {
	case "fe_op":
		return 0.60 * td.FrontEnd
	case "be_op1":
		return 0.20 * td.MemBound
	case "be_op2":
		return 0.30*td.CoreBound + 0.08*td.MemBound
	case "bs_op":
		return 0.10 * td.BadSpec
	default:
		return 0
	}
}

// SmartAssignment implements the paper's characterization-driven scheduler:
// each task is profiled once on the baseline configuration, and tasks are
// then matched one-to-one to configurations maximizing total recovered
// bottleneck share. It never looks at the measured per-configuration
// times — only at the baseline characterization, as a real scheduler would.
// It fails (rather than panics) when there are fewer configurations than
// tasks.
func SmartAssignment(tasks []Task, baselineReports []*perf.Report, configs []uarch.Config) ([]int, error) {
	n := len(tasks)
	cost := make([][]float64, n)
	for ti := 0; ti < n; ti++ {
		cost[ti] = make([]float64, len(configs))
		for ci, cfg := range configs {
			cost[ti][ci] = -Affinity(baselineReports[ti], cfg) // maximize affinity
		}
	}
	return Hungarian(cost)
}

// Outcome summarizes the three schedulers on a measured matrix against a
// baseline time vector.
type Outcome struct {
	BaselineSeconds []float64
	RandomSeconds   []float64
	SmartSeconds    []float64
	BestSeconds     []float64
	SmartAssign     []int
	BestAssign      []int
	// SmartMatchesBest counts tasks where the smart placement achieved the
	// best scheduler's time (the paper's "matches 75% of the time").
	SmartMatchesBest int
}

// Speedup returns the mean per-task speedup of x over base, in percent —
// the quantity Figure 9 plots (each task contributes equally, as in the
// paper's per-task bars).
func Speedup(base, x []float64) float64 {
	var sum float64
	for i := range base {
		if x[i] > 0 {
			sum += base[i]/x[i] - 1
		}
	}
	return sum / float64(len(base)) * 100
}

// Evaluate runs the full Figure 9 experiment on a measured matrix whose
// configuration set must include "baseline"; the smart and best schedulers
// place across the *other* configurations.
func (m *Matrix) Evaluate() (*Outcome, error) {
	bi := m.configIndex("baseline")
	if bi < 0 {
		return nil, fmt.Errorf("sched: matrix lacks a baseline configuration")
	}
	var optCfg []uarch.Config
	var optIdx []int
	for i, c := range m.Configs {
		if i != bi {
			optCfg = append(optCfg, c)
			optIdx = append(optIdx, i)
		}
	}
	n := len(m.Tasks)
	if len(optCfg) < n {
		return nil, fmt.Errorf("sched: one-to-one placement needs at least %d optimized configurations, have %d", n, len(optCfg))
	}
	o := &Outcome{
		BaselineSeconds: make([]float64, n),
		RandomSeconds:   make([]float64, n),
		SmartSeconds:    make([]float64, n),
		BestSeconds:     make([]float64, n),
	}
	baseReports := make([]*perf.Report, n)
	for ti := 0; ti < n; ti++ {
		o.BaselineSeconds[ti] = m.Seconds[ti][bi]
		baseReports[ti] = m.Reports[ti][bi]
		var sum float64
		for _, i := range optIdx {
			sum += m.Seconds[ti][i]
		}
		o.RandomSeconds[ti] = sum / float64(len(optIdx))
	}
	smart, err := SmartAssignment(m.Tasks, baseReports, optCfg)
	if err != nil {
		return nil, err
	}
	o.SmartAssign = make([]int, n)
	for ti, ci := range smart {
		o.SmartAssign[ti] = optIdx[ci]
		o.SmartSeconds[ti] = m.Seconds[ti][optIdx[ci]]
	}
	o.BestAssign = make([]int, n)
	for ti := 0; ti < n; ti++ {
		best := optIdx[0]
		for _, i := range optIdx {
			if m.Seconds[ti][i] < m.Seconds[ti][best] {
				best = i
			}
		}
		o.BestAssign[ti] = best
		o.BestSeconds[ti] = m.Seconds[ti][best]
		// "Matches" is performance-based, as in the paper: the smart
		// placement achieves the best scheduler's time within measurement
		// noise (0.5%).
		if o.SmartAssign[ti] == best || o.SmartSeconds[ti] <= o.BestSeconds[ti]*1.005 {
			o.SmartMatchesBest++
		}
	}
	return o, nil
}
