package sched

import (
	"math"
	"testing"

	"repro/internal/perf"
	"repro/internal/uarch"
)

func TestTableIIIMatchesPaper(t *testing.T) {
	tasks := TableIII()
	if len(tasks) != 4 {
		t.Fatalf("%d tasks, Table III lists 4", len(tasks))
	}
	want := []Task{
		{"task1", "desktop", 30, 8, "veryfast"},
		{"task2", "holi", 10, 1, "slow"},
		{"task3", "presentation", 35, 6, "veryfast"},
		{"task4", "game2", 15, 2, "medium"},
	}
	for i, task := range tasks {
		if task != want[i] {
			t.Errorf("task %d: %+v, want %+v", i, task, want[i])
		}
	}
}

func TestTaskOptionsPinCRFAndRefs(t *testing.T) {
	task := TableIII()[0] // veryfast preset has refs=1, task pins 8
	opt, err := task.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opt.CRF != 30 || opt.Refs != 8 {
		t.Fatalf("task options crf=%d refs=%d", opt.CRF, opt.Refs)
	}
	if opt.ME.String() != "hex" {
		t.Fatalf("veryfast me = %v", opt.ME)
	}
}

// fakeMatrix builds a Matrix with hand-written seconds and baseline
// profiles, bypassing simulation.
func fakeMatrix() *Matrix {
	configs := uarch.TableIV()
	mkReport := func(fe, bs, mem, core float64) *perf.Report {
		return &perf.Report{Topdown: perf.Topdown{
			FrontEnd: fe, BadSpec: bs, MemBound: mem, CoreBound: core,
			BackEnd: mem + core, Retiring: 100 - fe - bs - mem - core,
		}}
	}
	m := &Matrix{
		Tasks:   TableIII(),
		Configs: configs,
		// Columns: baseline, fe_op, be_op1, be_op2, bs_op.
		Seconds: [][]float64{
			{1.00, 0.93, 0.99, 0.99, 0.99}, // task1: front-end bound
			{1.00, 0.99, 0.94, 0.98, 0.99}, // task2: memory bound
			{1.00, 0.99, 0.98, 0.92, 0.99}, // task3: core bound
			{1.00, 0.99, 0.99, 0.98, 0.93}, // task4: bad speculation
		},
		Reports: [][]*perf.Report{
			{mkReport(30, 2, 10, 5), nil, nil, nil, nil},
			{mkReport(3, 2, 40, 5), nil, nil, nil, nil},
			{mkReport(3, 2, 10, 35), nil, nil, nil, nil},
			{mkReport(3, 40, 10, 5), nil, nil, nil, nil},
		},
	}
	return m
}

func TestBestAssignmentPicksMinima(t *testing.T) {
	m := fakeMatrix()
	best := m.BestAssignment()
	want := []int{1, 2, 3, 4}
	for i := range want {
		if best[i] != want[i] {
			t.Fatalf("best assignment %v, want %v", best, want)
		}
	}
}

func TestRandomExpectedSeconds(t *testing.T) {
	m := fakeMatrix()
	r := m.RandomExpectedSeconds()
	want := (1.00 + 0.93 + 0.99 + 0.99 + 0.99) / 5
	if math.Abs(r[0]-want) > 1e-9 {
		t.Fatalf("random expectation %f, want %f", r[0], want)
	}
}

func TestSmartAssignmentRecoversClearBottlenecks(t *testing.T) {
	m := fakeMatrix()
	o, err := m.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// With one clear bottleneck per task, smart must route each task to
	// its matching configuration (configs 1..4 after removing baseline).
	want := []int{1, 2, 3, 4}
	for i := range want {
		if o.SmartAssign[i] != want[i] {
			t.Fatalf("smart assignment %v, want %v", o.SmartAssign, want)
		}
	}
	if o.SmartMatchesBest != 4 {
		t.Fatalf("smart should match best on all clear-cut tasks, got %d", o.SmartMatchesBest)
	}
	// Ordering: best >= smart >= random in this construction.
	sBest := Speedup(o.BaselineSeconds, o.BestSeconds)
	sSmart := Speedup(o.BaselineSeconds, o.SmartSeconds)
	sRand := Speedup(o.BaselineSeconds, o.RandomSeconds)
	if !(sBest >= sSmart && sSmart > sRand) {
		t.Fatalf("speedup ordering violated: best %f smart %f random %f", sBest, sSmart, sRand)
	}
}

func TestEvaluateRequiresBaseline(t *testing.T) {
	m := fakeMatrix()
	m.Configs = m.Configs[1:] // drop baseline
	for i := range m.Seconds {
		m.Seconds[i] = m.Seconds[i][1:]
		m.Reports[i] = m.Reports[i][1:]
	}
	if _, err := m.Evaluate(); err == nil {
		t.Fatal("matrix without baseline must error")
	}
}

func TestEvaluateRejectsTooFewConfigs(t *testing.T) {
	m := fakeMatrix()
	// Keep baseline plus a single optimized config for four tasks.
	m.Configs = m.Configs[:2]
	for i := range m.Seconds {
		m.Seconds[i] = m.Seconds[i][:2]
		m.Reports[i] = m.Reports[i][:2]
	}
	if _, err := m.Evaluate(); err == nil {
		t.Fatal("under-provisioned matrix must error, not panic")
	}
}

func TestSpeedupMeanPerTask(t *testing.T) {
	base := []float64{2, 2}
	x := []float64{1, 2} // 100% and 0%
	if s := Speedup(base, x); math.Abs(s-50) > 1e-9 {
		t.Fatalf("speedup %f, want 50", s)
	}
	if s := Speedup(base, []float64{0, 0}); s != 0 {
		t.Fatalf("zero times must not divide: %f", s)
	}
}

func TestAffinityMapping(t *testing.T) {
	rep := &perf.Report{Topdown: perf.Topdown{FrontEnd: 10, BadSpec: 20, MemBound: 30, CoreBound: 40}}
	cfgFE, _ := uarch.ByName("fe_op")
	cfgBS, _ := uarch.ByName("bs_op")
	cfgBase, _ := uarch.ByName("baseline")
	if Affinity(rep, cfgFE) <= 0 || Affinity(rep, cfgBS) <= 0 {
		t.Fatal("affinities must be positive for nonzero shares")
	}
	if Affinity(rep, cfgBase) != 0 {
		t.Fatal("baseline has no affinity")
	}
}
