package sched

import (
	"math/rand"
	"testing"
)

// bruteForce finds the optimal assignment by enumerating permutations.
func bruteForce(cost [][]float64) float64 {
	n, m := len(cost), len(cost[0])
	cols := make([]int, m)
	for i := range cols {
		cols[i] = i
	}
	best := 1e308
	var perm func(k int)
	used := make([]bool, m)
	cur := make([]int, n)
	perm = func(k int) {
		if k == n {
			total := 0.0
			for i, c := range cur {
				total += cost[i][c]
			}
			if total < best {
				best = total
			}
			return
		}
		for c := 0; c < m; c++ {
			if !used[c] {
				used[c] = true
				cur[k] = c
				perm(k + 1)
				used[c] = false
			}
		}
	}
	perm(0)
	return best
}

func totalCost(cost [][]float64, assign []int) float64 {
	var sum float64
	for i, c := range assign {
		sum += cost[i][c]
	}
	return sum
}

func TestHungarianKnownCases(t *testing.T) {
	cases := []struct {
		cost [][]float64
		want float64
	}{
		{[][]float64{{1}}, 1},
		{[][]float64{{1, 2}, {2, 1}}, 2},
		{[][]float64{{4, 1, 3}, {2, 0, 5}, {3, 2, 2}}, 5},
		{[][]float64{{10, 19, 8, 15}, {10, 18, 7, 17}, {13, 16, 9, 14}, {12, 19, 8, 18}}, 49},
	}
	for i, c := range cases {
		got, err := Hungarian(c.cost)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if tc := totalCost(c.cost, got); tc != c.want {
			t.Errorf("case %d: cost %f, want %f (assign %v)", i, tc, c.want, got)
		}
		// Assignment must be a valid injection.
		seen := map[int]bool{}
		for _, col := range got {
			if col < 0 || col >= len(c.cost[0]) || seen[col] {
				t.Errorf("case %d: invalid assignment %v", i, got)
			}
			seen[col] = true
		}
	}
}

func TestHungarianMatchesBruteForceOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		m := n + rng.Intn(3)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = float64(rng.Intn(100))
			}
		}
		assign, err := Hungarian(cost)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := totalCost(cost, assign)
		want := bruteForce(cost)
		if got != want {
			t.Fatalf("trial %d: hungarian %f != optimal %f for %v", trial, got, want, cost)
		}
	}
}

func TestHungarianNegativeCosts(t *testing.T) {
	cost := [][]float64{{-5, -1}, {-2, -8}}
	got, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	if totalCost(cost, got) != -13 {
		t.Fatalf("negative costs mishandled: %v -> %f", got, totalCost(cost, got))
	}
}

func TestHungarianRejectsWideRows(t *testing.T) {
	if _, err := Hungarian([][]float64{{1}, {2}}); err == nil {
		t.Fatal("n > m must return an error")
	}
}

func TestHungarianPadOverload(t *testing.T) {
	// Three tasks, one server: the cheapest task gets the server, the
	// other two report unplaced (-1) instead of panicking the dispatcher.
	cost := [][]float64{{5}, {1}, {3}}
	got := HungarianPad(cost)
	if len(got) != 3 || got[1] != 0 || got[0] != -1 || got[2] != -1 {
		t.Fatalf("pad assignment %v, want [-1 0 -1]", got)
	}
	// Two tasks, two servers: padding must not change an exact solve.
	square := [][]float64{{1, 2}, {2, 1}}
	if got := HungarianPad(square); got[0] != 0 || got[1] != 1 {
		t.Fatalf("square pad assignment %v, want [0 1]", got)
	}
	// Rectangular overload with negative costs: the two best rows win.
	neg := [][]float64{{-1, 0}, {-5, -4}, {-3, -6}}
	got = HungarianPad(neg)
	placed := 0
	for _, j := range got {
		if j >= 0 {
			placed++
		}
	}
	if placed != 2 {
		t.Fatalf("pad placed %d rows of %v, want 2", placed, got)
	}
	if got[1] != 0 || got[2] != 1 {
		t.Fatalf("pad assignment %v, want rows 1,2 placed on 0,1", got)
	}
}

func TestHungarianEmpty(t *testing.T) {
	out, err := Hungarian(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Fatal("empty input must give empty output")
	}
	if out := HungarianPad(nil); out != nil {
		t.Fatal("empty pad input must give empty output")
	}
}
