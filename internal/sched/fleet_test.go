package sched

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/perf"
	"repro/internal/uarch"
)

func TestGenerateTasksDeterministic(t *testing.T) {
	a := GenerateTasks(20, 7)
	b := GenerateTasks(20, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("task %d differs between identical seeds", i)
		}
	}
	c := GenerateTasks(20, 8)
	same := 0
	for i := range a {
		if a[i].Video == c[i].Video && a[i].CRF == c[i].CRF {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical tasks")
	}
}

func TestGenerateTasksInRange(t *testing.T) {
	for _, task := range GenerateTasks(100, 3) {
		if task.CRF < 10 || task.CRF > 44 {
			t.Fatalf("crf %d out of range", task.CRF)
		}
		if task.Refs < 1 || task.Refs > 8 {
			t.Fatalf("refs %d out of range", task.Refs)
		}
		opt, err := task.Options()
		if err != nil {
			t.Fatalf("%+v: %v", task, err)
		}
		if err := opt.Validate(); err != nil {
			t.Fatalf("%+v: %v", task, err)
		}
	}
}

func TestUniformPool(t *testing.T) {
	p := UniformPool(uarch.TableIV()[1:], 3)
	if len(p) != 12 {
		t.Fatalf("pool size %d", len(p))
	}
	counts := map[string]int{}
	for _, c := range p {
		counts[c.Name]++
	}
	for name, n := range counts {
		if n != 3 {
			t.Fatalf("%s appears %d times", name, n)
		}
	}
}

func TestAssignPoolRoutesByBottleneck(t *testing.T) {
	mk := func(fe, bs, mem, core float64) *perf.Report {
		return &perf.Report{Topdown: perf.Topdown{
			FrontEnd: fe, BadSpec: bs, MemBound: mem, CoreBound: core, BackEnd: mem + core,
		}}
	}
	tasks := GenerateTasks(4, 1)
	reports := []*perf.Report{
		mk(40, 2, 5, 3), // front-end bound
		mk(2, 40, 5, 3), // bad speculation
		mk(2, 2, 45, 3), // memory bound
		mk(2, 2, 5, 45), // core bound
	}
	// Pool with two of each relevant config.
	pool := UniformPool(uarch.TableIV()[1:], 2)
	assign, err := AssignPool(tasks, reports, pool)
	if err != nil {
		t.Fatal(err)
	}
	wantName := []string{"fe_op", "bs_op", "be_op1", "be_op2"}
	seen := map[int]bool{}
	for ti, si := range assign {
		if seen[si] {
			t.Fatalf("server %d assigned twice", si)
		}
		seen[si] = true
		if pool[si].Name != wantName[ti] {
			t.Fatalf("task %d routed to %s, want %s", ti, pool[si].Name, wantName[ti])
		}
	}
}

func TestPoolSpeedup(t *testing.T) {
	tasks := GenerateTasks(2, 2)
	pool := Pool{uarch.FeOp(), uarch.BeOp1()}
	baseline := []float64{2, 2}
	seconds := func(ti int, cfg uarch.Config) float64 {
		if cfg.Name == "fe_op" {
			return 1
		}
		return 2
	}
	// task0 -> fe_op (2x), task1 -> be_op1 (1x): mean speedup 50%.
	got := PoolSpeedup(tasks, pool, []int{0, 1}, baseline, seconds)
	if got != 50 {
		t.Fatalf("pool speedup %f", got)
	}
}

func TestAssignPoolOverloadErrors(t *testing.T) {
	tasks := GenerateTasks(3, 5)
	reports := []*perf.Report{{}, {}, {}}
	if _, err := AssignPool(tasks, reports, Pool{uarch.Baseline()}); err == nil {
		t.Fatal("3 tasks on a 1-server pool must return an error")
	}
}

func TestItoaBoundaries(t *testing.T) {
	cases := []int{0, 1, 9, 10, 99999999, 100000000, 123456789, 2147483647, -1, -100000000}
	for _, v := range cases {
		if got, want := itoa(v), strconv.Itoa(v); got != want {
			t.Errorf("itoa(%d) = %q, want %q", v, got, want)
		}
	}
	if got, want := itoa(math.MaxInt64), strconv.Itoa(math.MaxInt64); got != want {
		t.Errorf("itoa(MaxInt64) = %q, want %q", got, want)
	}
	if got, want := itoa(math.MinInt64), strconv.Itoa(math.MinInt64); got != want {
		t.Errorf("itoa(MinInt64) = %q, want %q", got, want)
	}
}

// TestAssignDynamic exercises placement over a free set that changes
// between batches — the dynamic-fleet shape where workers register, go
// busy and crash between placement cycles.
func TestAssignDynamic(t *testing.T) {
	mk := func(fe, bs, mem, core float64) *perf.Report {
		return &perf.Report{Topdown: perf.Topdown{
			FrontEnd: fe, BadSpec: bs, MemBound: mem, CoreBound: core, BackEnd: mem + core,
		}}
	}
	byName := func(name string) uarch.Config {
		c, ok := uarch.ByName(name)
		if !ok {
			t.Fatalf("unknown config %s", name)
		}
		return c
	}
	feBound, bsBound := mk(40, 2, 5, 3), mk(2, 40, 5, 3)

	// Batch 1: both specialists free — each job routes to its bottleneck fix.
	free := []uarch.Config{byName("fe_op"), byName("bs_op")}
	assign := AssignDynamic([]*perf.Report{feBound, bsBound}, free)
	if free[assign[0]].Name != "fe_op" || free[assign[1]].Name != "bs_op" {
		t.Fatalf("assign %v routed to %s/%s, want fe_op/bs_op",
			assign, free[assign[0]].Name, free[assign[1]].Name)
	}

	// Batch 2: the fe_op worker left (crashed mid-heartbeat); the same
	// front-end-bound job must still place on what remains.
	free = []uarch.Config{byName("bs_op"), byName("be_op1")}
	assign = AssignDynamic([]*perf.Report{feBound}, free)
	if assign[0] < 0 || assign[0] >= len(free) {
		t.Fatalf("assign %v: job unplaced despite free workers", assign)
	}

	// Batch 3: overload — three jobs, one free worker. Exactly one places;
	// the rest report -1 and stay queued.
	free = []uarch.Config{byName("fe_op")}
	assign = AssignDynamic([]*perf.Report{feBound, bsBound, feBound}, free)
	placed := 0
	for _, j := range assign {
		if j >= 0 {
			placed++
		}
	}
	if placed != 1 {
		t.Fatalf("assign %v placed %d jobs on one worker", assign, placed)
	}

	// Cold rows (nil report) are never matched, even with workers to spare.
	free = []uarch.Config{byName("fe_op"), byName("bs_op")}
	assign = AssignDynamic([]*perf.Report{nil, bsBound}, free)
	if assign[0] != -1 {
		t.Fatalf("cold row placed at %d, want -1", assign[0])
	}
	if free[assign[1]].Name != "bs_op" {
		t.Fatalf("warm row routed to %s, want bs_op", free[assign[1]].Name)
	}

	// A joined worker set larger than the batch leaves the extras idle.
	if got := AssignDynamic(nil, free); len(got) != 0 {
		t.Fatalf("empty batch assigned %v", got)
	}
}

// TestAssignDynamicBiased pins the load-spreading tiebreak: between two
// identical free workers a utilization bias steers the job to the idler
// one, while a real affinity gap overrides any plausible bias.
func TestAssignDynamicBiased(t *testing.T) {
	mk := func(fe, bs, mem, core float64) *perf.Report {
		return &perf.Report{Topdown: perf.Topdown{
			FrontEnd: fe, BadSpec: bs, MemBound: mem, CoreBound: core, BackEnd: mem + core,
		}}
	}
	byName := func(name string) uarch.Config {
		c, ok := uarch.ByName(name)
		if !ok {
			t.Fatalf("unknown config %s", name)
		}
		return c
	}
	feBound := mk(40, 2, 5, 3)

	// Two identical workers: affinity ties, bias decides. Slot 0 is busier.
	free := []uarch.Config{byName("fe_op"), byName("fe_op")}
	assign := AssignDynamicBiased([]*perf.Report{feBound}, free, []float64{0.04, 0.0})
	if assign[0] != 1 {
		t.Fatalf("tied affinity placed on slot %d, want idler slot 1", assign[0])
	}
	// Reversed bias reverses the choice.
	assign = AssignDynamicBiased([]*perf.Report{feBound}, free, []float64{0.0, 0.04})
	if assign[0] != 0 {
		t.Fatalf("tied affinity placed on slot %d, want idler slot 0", assign[0])
	}

	// Affinity gap dominates: the front-end specialist wins even at full
	// utilization bias against it.
	free = []uarch.Config{byName("fe_op"), byName("bs_op")}
	assign = AssignDynamicBiased([]*perf.Report{feBound}, free, []float64{0.05, 0.0})
	if free[assign[0]].Name != "fe_op" {
		t.Fatalf("bias overrode affinity: placed on %s", free[assign[0]].Name)
	}

	// Nil bias is plain AssignDynamic.
	a := AssignDynamicBiased([]*perf.Report{feBound}, free, nil)
	b := AssignDynamic([]*perf.Report{feBound}, free)
	if a[0] != b[0] {
		t.Fatalf("nil-bias assignment %v differs from AssignDynamic %v", a, b)
	}
}
