package sched

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/perf"
	"repro/internal/uarch"
	"repro/internal/vbench"
)

// This file extends the paper's four-task case study to fleet scale: many
// tasks, a pool of servers with repeated configurations, and the same
// characterization-driven placement — the deployment the paper's §V
// positions as future work for streaming providers.

// GenerateTasks deterministically samples n transcoding tasks across the
// vbench catalog and the parameter space the paper sweeps. The same (n,
// seed) always yields the same task list.
func GenerateTasks(n int, seed uint64) []Task {
	videos := vbench.Names()
	presets := []codec.Preset{
		codec.PresetUltrafast, codec.PresetVeryfast, codec.PresetFast,
		codec.PresetMedium, codec.PresetSlow,
	}
	out := make([]Task, n)
	state := seed | 1
	next := func(mod int) int {
		// xorshift64*: deterministic, stdlib-free.
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return int((state * 0x2545F4914F6CDD1D >> 33) % uint64(mod))
	}
	for i := range out {
		out[i] = Task{
			Name:   "job" + itoa(i),
			Video:  videos[next(len(videos))],
			CRF:    10 + next(35),
			Refs:   1 + next(8),
			Preset: presets[next(len(presets))],
		}
	}
	return out
}

// itoa renders v in decimal. The buffer covers the full int range
// (20 bytes: 19 digits of -math.MinInt64 plus the sign); the previous
// fixed [8]byte version silently truncated nine-digit task indices.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	// Negate via unsigned so math.MinInt64 (whose negation overflows int)
	// still renders correctly.
	u := uint64(v)
	if neg {
		u = -u
	}
	var buf [20]byte
	i := len(buf)
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Pool is a heterogeneous server fleet: each entry is one physical server
// with its configuration. Configurations may repeat.
type Pool []uarch.Config

// UniformPool builds a fleet with `each` servers of every configuration.
func UniformPool(configs []uarch.Config, each int) Pool {
	var p Pool
	for i := 0; i < each; i++ {
		p = append(p, configs...)
	}
	return p
}

// PoolByNames builds a uniform fleet from configuration names (the -pool
// flag shape the serving binaries share).
func PoolByNames(names []string, each int) (Pool, error) {
	if each < 1 {
		return nil, fmt.Errorf("sched: pool replicas %d, want >= 1", each)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("sched: empty pool")
	}
	configs := make([]uarch.Config, len(names))
	for i, name := range names {
		c, ok := uarch.ByName(name)
		if !ok {
			return nil, fmt.Errorf("sched: unknown configuration %q", name)
		}
		configs[i] = c
	}
	return UniformPool(configs, each), nil
}

// AssignPool places tasks one-to-one onto the pool's servers by
// characterization affinity (the smart scheduler generalized to fleets).
// It fails when len(pool) < len(tasks); callers that want partial placement
// under overload build the cost matrix themselves and use HungarianPad.
// Returns, per task, the pool index of the chosen server.
func AssignPool(tasks []Task, baselineReports []*perf.Report, pool Pool) ([]int, error) {
	n := len(tasks)
	cost := make([][]float64, n)
	for ti := 0; ti < n; ti++ {
		cost[ti] = make([]float64, len(pool))
		for si, cfg := range pool {
			cost[ti][si] = -Affinity(baselineReports[ti], cfg)
		}
	}
	return Hungarian(cost)
}

// AssignDynamic is the dynamic-fleet variant of AssignPool: it places jobs
// onto whatever servers are free *right now*. The free set is a snapshot —
// workers join and leave between calls (registration, heartbeat loss,
// crashes), so unlike AssignPool there is no fixed pool identity: the
// caller re-snapshots before every batch and maps the returned indices
// back onto its own slot bookkeeping. Rows may exceed columns (overload);
// unplaceable rows come back as -1 instead of failing the batch, and rows
// with a nil report (no baseline characterization yet) are never matched —
// they return -1 so the caller can place them by its cold-start rule.
func AssignDynamic(reports []*perf.Report, free []uarch.Config) []int {
	return AssignDynamicBiased(reports, free, nil)
}

// AssignDynamicBiased is AssignDynamic with a per-slot additive cost bias:
// bias[j] (nil: all zero) is added to every job's cost of taking slot j.
// The intended use is load spreading — the dispatcher feeds a small term
// proportional to each worker's reported utilization, so that among slots
// of near-equal affinity the matcher prefers the idler machine, while a
// real affinity gap still dominates. Bias magnitudes should stay well below
// typical affinity spreads (the Affinity weights sum to ~1) or placement
// quality degrades into pure load balancing.
func AssignDynamicBiased(reports []*perf.Report, free []uarch.Config, bias []float64) []int {
	out := make([]int, len(reports))
	var warm []int
	for i, rep := range reports {
		out[i] = -1
		if rep != nil {
			warm = append(warm, i)
		}
	}
	if len(warm) == 0 || len(free) == 0 {
		return out
	}
	cost := make([][]float64, len(warm))
	for k, i := range warm {
		cost[k] = make([]float64, len(free))
		for j, cfg := range free {
			cost[k][j] = -Affinity(reports[i], cfg)
			if bias != nil {
				cost[k][j] += bias[j]
			}
		}
	}
	for k, j := range HungarianPad(cost) {
		out[warm[k]] = j
	}
	return out
}

// PoolSpeedup estimates the fleet-wide mean per-task speedup of an
// assignment, given a seconds matrix indexed [task][configIndexOf(pool)].
// secondsFor maps (task index, config) to measured seconds.
func PoolSpeedup(tasks []Task, pool Pool, assign []int, baseline []float64, secondsFor func(ti int, cfg uarch.Config) float64) float64 {
	assigned := make([]float64, len(tasks))
	for ti := range tasks {
		assigned[ti] = secondsFor(ti, pool[assign[ti]])
	}
	return Speedup(baseline, assigned)
}
