package sched

import (
	"repro/internal/codec"
	"repro/internal/perf"
	"repro/internal/uarch"
	"repro/internal/vbench"
)

// This file extends the paper's four-task case study to fleet scale: many
// tasks, a pool of servers with repeated configurations, and the same
// characterization-driven placement — the deployment the paper's §V
// positions as future work for streaming providers.

// GenerateTasks deterministically samples n transcoding tasks across the
// vbench catalog and the parameter space the paper sweeps. The same (n,
// seed) always yields the same task list.
func GenerateTasks(n int, seed uint64) []Task {
	videos := vbench.Names()
	presets := []codec.Preset{
		codec.PresetUltrafast, codec.PresetVeryfast, codec.PresetFast,
		codec.PresetMedium, codec.PresetSlow,
	}
	out := make([]Task, n)
	state := seed | 1
	next := func(mod int) int {
		// xorshift64*: deterministic, stdlib-free.
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return int((state * 0x2545F4914F6CDD1D >> 33) % uint64(mod))
	}
	for i := range out {
		out[i] = Task{
			Name:   "job" + itoa(i),
			Video:  videos[next(len(videos))],
			CRF:    10 + next(35),
			Refs:   1 + next(8),
			Preset: presets[next(len(presets))],
		}
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Pool is a heterogeneous server fleet: each entry is one physical server
// with its configuration. Configurations may repeat.
type Pool []uarch.Config

// UniformPool builds a fleet with `each` servers of every configuration.
func UniformPool(configs []uarch.Config, each int) Pool {
	var p Pool
	for i := 0; i < each; i++ {
		p = append(p, configs...)
	}
	return p
}

// AssignPool places tasks one-to-one onto the pool's servers by
// characterization affinity (the smart scheduler generalized to fleets).
// len(pool) must be >= len(tasks). Returns, per task, the pool index of the
// chosen server.
func AssignPool(tasks []Task, baselineReports []*perf.Report, pool Pool) []int {
	n := len(tasks)
	cost := make([][]float64, n)
	for ti := 0; ti < n; ti++ {
		cost[ti] = make([]float64, len(pool))
		for si, cfg := range pool {
			cost[ti][si] = -Affinity(baselineReports[ti], cfg)
		}
	}
	return Hungarian(cost)
}

// PoolSpeedup estimates the fleet-wide mean per-task speedup of an
// assignment, given a seconds matrix indexed [task][configIndexOf(pool)].
// secondsFor maps (task index, config) to measured seconds.
func PoolSpeedup(tasks []Task, pool Pool, assign []int, baseline []float64, secondsFor func(ti int, cfg uarch.Config) float64) float64 {
	assigned := make([]float64, len(tasks))
	for ti := range tasks {
		assigned[ti] = secondsFor(ti, pool[assign[ti]])
	}
	return Speedup(baseline, assigned)
}
