package sched

import (
	"testing"

	"repro/internal/backend"
	"repro/internal/codec"
	"repro/internal/perf"
	"repro/internal/uarch"
)

func warmReport(seconds, frontEnd float64) *perf.Report {
	return &perf.Report{
		Config:  "baseline",
		Seconds: seconds,
		Topdown: perf.Topdown{FrontEnd: frontEnd, BadSpec: 2, CoreBound: 20, MemBound: 25, Retiring: 40},
	}
}

func softSpec(name string, price float64) backend.ServerSpec {
	cfg, ok := uarch.ByName(name)
	if !ok {
		panic("unknown config " + name)
	}
	return backend.ServerSpec{Backend: backend.Software, Config: cfg, PriceCentsHour: price}
}

func accelSpec(price float64) backend.ServerSpec {
	return backend.ServerSpec{Backend: backend.Accel, PriceCentsHour: price}
}

func crfJob(rep *perf.Report) HeteroJob {
	opt := codec.Defaults() // medium: hex, refs 3, trellis 1 → accel-feasible
	opt.Refs = 3
	return HeteroJob{Report: rep, Opts: opt, Frames: 4, Width: 64, Height: 64}
}

func TestPredictSeconds(t *testing.T) {
	model := backend.DefaultAccel()
	rep := warmReport(0.01, 15)
	soft := softSpec("fe_op", 42)
	sec, ok := PredictSeconds(rep, soft, model, 4, 64, 64)
	if !ok {
		t.Fatal("warm software not predictable")
	}
	// fe_op affinity = 0.60 × 15% = 9% faster than baseline.
	want := 0.01 * (1 - 0.09)
	if diff := sec - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("software predict = %v, want %v", sec, want)
	}
	if _, ok := PredictSeconds(nil, soft, model, 4, 64, 64); ok {
		t.Fatal("cold software claimed predictable")
	}
	asec, ok := PredictSeconds(nil, accelSpec(250), model, 4, 64, 64)
	if !ok || asec != model.Seconds(4, 64, 64) {
		t.Fatalf("accel predict = %v ok=%v, want closed-form %v", asec, ok, model.Seconds(4, 64, 64))
	}
}

func TestFeasibleQualityFloor(t *testing.T) {
	model := backend.DefaultAccel()
	job := crfJob(nil)
	job.Opts.CRF = 26
	// Floor 28: accel effective CRF 26+4=30 > 28 → infeasible on accel,
	// always feasible on software.
	job.QualityFloor = 28
	if Feasible(job, accelSpec(250), model) {
		t.Fatal("quality floor not enforced on accel")
	}
	if !Feasible(job, softSpec("baseline", 34), model) {
		t.Fatal("software should ignore quality floor")
	}
	job.QualityFloor = 30
	if !Feasible(job, accelSpec(250), model) {
		t.Fatal("floor 30 should admit accel at CRF 26 (+4)")
	}
}

func TestAssignHeteroCostVsSeconds(t *testing.T) {
	model := backend.DefaultAccel()
	// One warm job; two servers: a cheap software box and a fast but
	// expensive accelerator. Seconds objective picks the accel (faster);
	// cost objective picks the software box (cheaper per encode).
	rep := warmReport(0.01, 15)
	job := crfJob(rep)
	free := []backend.ServerSpec{softSpec("baseline", 34), accelSpec(100000)}
	sec := AssignHetero([]HeteroJob{job}, free, model, ObjectiveSeconds, nil)
	if sec[0] != 1 {
		t.Fatalf("seconds objective chose %d, want accel (1)", sec[0])
	}
	cost := AssignHetero([]HeteroJob{job}, free, model, ObjectiveCost, nil)
	if cost[0] != 0 {
		t.Fatalf("cost objective chose %d, want software (0)", cost[0])
	}
}

func TestAssignHeteroMasksDeadline(t *testing.T) {
	model := backend.DefaultAccel()
	rep := warmReport(0.01, 15)
	job := crfJob(rep)
	// Deadline below every predictable cell: both columns mask, job stays
	// unplaced rather than being silently placed late.
	job.DeadlineSeconds = 1e-9
	free := []backend.ServerSpec{softSpec("baseline", 34), accelSpec(250)}
	out := AssignHetero([]HeteroJob{job}, free, model, ObjectiveCost, nil)
	if out[0] != -1 {
		t.Fatalf("deadline-infeasible job placed on %d, want -1", out[0])
	}
	// A deadline only the accel can meet must route to the accel even
	// under the cost objective (software is cheaper but masked).
	job.DeadlineSeconds = model.Seconds(4, 64, 64) * 2
	if job.DeadlineSeconds >= 0.01 {
		t.Fatal("test geometry broken: accel deadline would admit software too")
	}
	out = AssignHetero([]HeteroJob{job}, free, model, ObjectiveCost, nil)
	if out[0] != 1 {
		t.Fatalf("tight deadline chose %d, want accel (1)", out[0])
	}
}

func TestAssignHeteroMasksOptionSurface(t *testing.T) {
	model := backend.DefaultAccel()
	rep := warmReport(0.01, 15)
	job := crfJob(rep)
	job.Opts.Refs = 8 // beyond the accel DPB
	free := []backend.ServerSpec{accelSpec(250)}
	out := AssignHetero([]HeteroJob{job}, free, model, ObjectiveSeconds, nil)
	if out[0] != -1 {
		t.Fatalf("options-infeasible job placed on accel, want -1")
	}
	if FeasibleAnywhere(job, free, model) {
		t.Fatal("FeasibleAnywhere true with only an option-rejecting accel")
	}
}

func TestAssignHeteroColdRowsFallBack(t *testing.T) {
	model := backend.DefaultAccel()
	out := AssignHetero([]HeteroJob{crfJob(nil)}, []backend.ServerSpec{softSpec("baseline", 34), accelSpec(250)}, model, ObjectiveCost, nil)
	if out[0] != -1 {
		t.Fatalf("cold job placed by matrix (%d), want -1 fallback", out[0])
	}
}

func TestFeasibleAnywhereOptimisticWhenCold(t *testing.T) {
	model := backend.DefaultAccel()
	job := crfJob(nil)
	job.DeadlineSeconds = 1e-12
	// A cold software class cannot be predicted → optimistic admit.
	if !FeasibleAnywhere(job, []backend.ServerSpec{softSpec("baseline", 34)}, model) {
		t.Fatal("cold software class should be optimistic")
	}
	// The accel IS predictable, and misses the deadline → reject when it
	// is the only class.
	if FeasibleAnywhere(job, []backend.ServerSpec{accelSpec(250)}, model) {
		t.Fatal("accel-only fleet should reject an impossible deadline")
	}
	// Warm software class that cannot meet the deadline either → reject.
	job.Report = warmReport(0.01, 15)
	if FeasibleAnywhere(job, []backend.ServerSpec{softSpec("baseline", 34), accelSpec(250)}, model) {
		t.Fatal("fully predictable infeasible deadline should reject")
	}
}

func TestFleetFromPoolDefaults(t *testing.T) {
	f := FleetFromPool(UniformPool(uarch.TableIV(), 1))
	if len(f) != len(uarch.TableIV()) {
		t.Fatalf("fleet size %d", len(f))
	}
	for _, s := range f {
		if s.Backend != backend.Software || s.PriceCentsHour <= 0 {
			t.Fatalf("spec not defaulted: %+v", s)
		}
	}
	if !f.AllSoftware() {
		t.Fatal("AllSoftware false for software pool")
	}
	f = append(f, accelSpec(250))
	if f.AllSoftware() {
		t.Fatal("AllSoftware true with accel present")
	}
}
