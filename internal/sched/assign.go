// Package sched implements the paper's scheduling case study (§III-D2,
// Figure 9): transcoding tasks with different parameters are assigned to
// servers with different microarchitecture configurations. Three policies
// are compared — random (expected value over all placements), smart
// (characterization-driven, under a one-to-one constraint solved exactly
// with the Hungarian algorithm), and best (per-task optimum, no
// constraint).
package sched

import (
	"fmt"
	"math"
)

// Hungarian solves the rectangular assignment problem: cost is an n x m
// matrix with n <= m; the result maps each row to a distinct column such
// that the total cost is minimized. O(n^2 m) via shortest augmenting paths
// with potentials.
//
// More rows than columns is an error, not a panic: an online dispatcher can
// momentarily have more waiting tasks than free servers, and overload must
// degrade (callers fall back, or use HungarianPad) instead of crashing the
// serving process.
func Hungarian(cost [][]float64) ([]int, error) {
	n := len(cost)
	if n == 0 {
		return nil, nil
	}
	m := len(cost[0])
	if m < n {
		return nil, fmt.Errorf("sched: Hungarian needs at least as many columns as rows (have %d rows, %d columns)", n, m)
	}
	return solveAssignment(cost, n, m), nil
}

// HungarianPad solves the assignment problem for any shape by padding the
// matrix with virtual columns whose cost exceeds every real cell: when rows
// outnumber columns, the overflow rows land on virtual columns and are
// reported as -1 (unplaced) instead of failing the whole solve. The rows
// that do get real columns still form a minimum-cost matching — exactly the
// degraded behaviour an overloaded dispatcher wants (place what fits now,
// keep the rest queued).
func HungarianPad(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	m := len(cost[0])
	if m >= n {
		return solveAssignment(cost, n, m)
	}
	// Virtual column cost: strictly worse than any real cell, so the solver
	// only uses virtual columns for the rows that cannot fit. The pad is
	// finite (not +Inf) to keep the potentials arithmetic exact.
	worst := 0.0
	for _, row := range cost {
		for _, c := range row {
			if v := math.Abs(c); v > worst {
				worst = v
			}
		}
	}
	pad := worst*float64(n) + 1
	padded := make([][]float64, n)
	for i, row := range cost {
		padded[i] = make([]float64, n)
		copy(padded[i], row)
		for j := m; j < n; j++ {
			padded[i][j] = pad
		}
	}
	out := solveAssignment(padded, n, n)
	for i, j := range out {
		if j >= m {
			out[i] = -1
		}
	}
	return out
}

// solveAssignment is the shortest-augmenting-path core shared by Hungarian
// and HungarianPad; it requires n <= m (checked by the callers).
func solveAssignment(cost [][]float64, n, m int) []int {
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)   // p[j]: row matched to column j (1-based; 0 = none)
	way := make([]int, m+1) // predecessor columns on the augmenting path

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	out := make([]int, n)
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			out[p[j]-1] = j - 1
		}
	}
	return out
}
