package exec

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"
)

// defaultWorkers is the pool's worker default (GOMAXPROCS), shared with
// Map's inline resolution.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ErrStreamClosed reports a Submit after Close.
var ErrStreamClosed = errors.New("exec: stream closed")

// Stream is the open-ended counterpart of Pool.Map: the same bounded worker
// pool, panic recovery and telemetry, but fed one job at a time instead of
// a fixed index range. It exists for the serving layer, where jobs arrive
// over time and there is no n to map over.
//
// Usage discipline: one owner submits and eventually calls Close exactly
// once; Submit must not race Close (the dispatcher's single submit loop
// guarantees this). Job errors are the submitter's business — record them
// from inside the job function; the stream only counts them.
type Stream struct {
	jobs    chan streamJob
	ctx     context.Context
	met     poolMetrics
	wg      sync.WaitGroup
	closed  bool
	inFlite sync.WaitGroup // jobs accepted but not yet finished
}

type streamJob struct {
	fn  func(ctx context.Context) error
	enq time.Time
}

// Stream starts the pool's workers and returns a running stream. The
// workers exit when Close is called or ctx is canceled; jobs already
// handed to a worker run to completion either way (they observe ctx at
// their own checkpoints, exactly like Map jobs).
func (p Pool) Stream(ctx context.Context) *Stream {
	workers := p.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	s := &Stream{
		jobs: make(chan streamJob),
		ctx:  ctx,
		met:  p.metrics(),
	}
	s.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer s.wg.Done()
			for job := range s.jobs {
				s.met.queueWait.ObserveSince(job.enq)
				s.met.started.Inc()
				start := time.Now()
				err, panicked := runJob(ctx, 0, func(ctx context.Context, _ int) error {
					return job.fn(ctx)
				})
				d := time.Since(start)
				s.met.jobTime.Observe(int64(d))
				s.met.busyNs.Add(int64(d))
				s.met.completed.Inc()
				if panicked {
					s.met.panicked.Inc()
				}
				if err != nil {
					s.met.failed.Inc()
				}
				s.inFlite.Done()
			}
		}()
	}
	return s
}

// Submit hands one job to the stream, blocking until a worker accepts it
// (the unbuffered handoff is the stream's backpressure: a full pool pushes
// the wait back into the submitter). Returns ctx.Err() when the submitter's
// ctx or the stream's ctx cancels first, ErrStreamClosed after Close. A
// panic inside fn is recovered and counted; fn's error is not returned
// here — report outcomes from inside fn.
func (s *Stream) Submit(ctx context.Context, fn func(ctx context.Context) error) error {
	if s.closed {
		return ErrStreamClosed
	}
	s.inFlite.Add(1)
	select {
	case s.jobs <- streamJob{fn: fn, enq: time.Now()}:
		return nil
	case <-ctx.Done():
		s.inFlite.Done()
		return ctx.Err()
	case <-s.ctx.Done():
		s.inFlite.Done()
		return s.ctx.Err()
	}
}

// Wait blocks until every accepted job has finished. The stream stays
// usable afterwards; drain points (end of a test, a graceful shutdown)
// call Wait before reading results the jobs wrote.
func (s *Stream) Wait() { s.inFlite.Wait() }

// Close stops the workers and blocks until in-flight jobs finish. Close is
// idempotent per the single-owner discipline: call it exactly once, after
// the last Submit has returned.
func (s *Stream) Close() {
	if s.closed {
		return
	}
	s.closed = true
	close(s.jobs)
	s.wg.Wait()
}
