package exec

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestStreamRunsEveryJob(t *testing.T) {
	s := Pool{Workers: 4, Metrics: obs.NewRegistry()}.Stream(context.Background())
	const n = 100
	var ran atomic.Int64
	for i := 0; i < n; i++ {
		if err := s.Submit(context.Background(), func(ctx context.Context) error {
			ran.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d jobs, want %d", got, n)
	}
}

func TestStreamPanicIsContained(t *testing.T) {
	reg := obs.NewRegistry()
	s := Pool{Workers: 2, Metrics: reg}.Stream(context.Background())
	var after atomic.Bool
	if err := s.Submit(context.Background(), func(ctx context.Context) error {
		panic("one corrupt job")
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(context.Background(), func(ctx context.Context) error {
		after.Store(true)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if !after.Load() {
		t.Fatal("job after a panic never ran")
	}
	snap := reg.Snapshot()
	if snap.CounterTotal("exec_jobs_panicked") != 1 {
		t.Fatalf("panicked counter %d, want 1", snap.CounterTotal("exec_jobs_panicked"))
	}
}

func TestStreamSubmitObservesCancel(t *testing.T) {
	// One worker, occupied by a blocking job: the next Submit has no free
	// worker and must return when its ctx cancels.
	s := Pool{Workers: 1, Metrics: obs.NewRegistry()}.Stream(context.Background())
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Submit(context.Background(), func(ctx context.Context) error {
			<-release
			return nil
		})
	}()
	wg.Wait() // the goroutine has at least entered Submit
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Submit(ctx, func(ctx context.Context) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("submit error %v, want context.Canceled", err)
	}
	close(release)
	s.Close()
}

func TestStreamSubmitAfterClose(t *testing.T) {
	s := Pool{Workers: 1, Metrics: obs.NewRegistry()}.Stream(context.Background())
	s.Close()
	if err := s.Submit(context.Background(), func(ctx context.Context) error { return nil }); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("submit after close: %v, want ErrStreamClosed", err)
	}
}

func TestStreamWaitDrains(t *testing.T) {
	s := Pool{Workers: 3, Metrics: obs.NewRegistry()}.Stream(context.Background())
	var done atomic.Int64
	for i := 0; i < 20; i++ {
		if err := s.Submit(context.Background(), func(ctx context.Context) error {
			done.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Wait()
	if got := done.Load(); got != 20 {
		t.Fatalf("wait returned with %d/20 jobs done", got)
	}
	s.Close()
}

func TestStreamConcurrentSubmitters(t *testing.T) {
	// Many submitters, one stream: exercised under -race by ci.sh. Note the
	// single-owner Close discipline: Close happens only after every
	// submitter finished.
	s := Pool{Workers: 4, Metrics: obs.NewRegistry()}.Stream(context.Background())
	var ran atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := s.Submit(context.Background(), func(ctx context.Context) error {
					ran.Add(1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	s.Close()
	if got := ran.Load(); got != 200 {
		t.Fatalf("ran %d jobs, want 200", got)
	}
}
