package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestMapRunsAll(t *testing.T) {
	const n = 100
	var ran [n]int32
	errs, err := Map(context.Background(), n, func(ctx context.Context, i int) error {
		atomic.AddInt32(&ran[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != n {
		t.Fatalf("%d error slots", len(errs))
	}
	for i := range ran {
		if ran[i] != 1 {
			t.Fatalf("job %d ran %d times", i, ran[i])
		}
		if errs[i] != nil {
			t.Fatalf("job %d unexpected error %v", i, errs[i])
		}
	}
}

func TestMapZeroJobs(t *testing.T) {
	errs, err := Map(context.Background(), 0, func(ctx context.Context, i int) error {
		t.Error("job ran")
		return nil
	})
	if err != nil || len(errs) != 0 {
		t.Fatalf("errs=%v err=%v", errs, err)
	}
}

func TestMapErrorsPerIndex(t *testing.T) {
	boom := errors.New("boom")
	errs, err := Map(context.Background(), 10, func(ctx context.Context, i int) error {
		if i%3 == 0 {
			return fmt.Errorf("job %d: %w", i, boom)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Collect policy returned engine error %v", err)
	}
	for i, e := range errs {
		if i%3 == 0 && !errors.Is(e, boom) {
			t.Fatalf("job %d error %v", i, e)
		}
		if i%3 != 0 && e != nil {
			t.Fatalf("job %d unexpected error %v", i, e)
		}
	}
}

// TestMapProgress checks the satellite guarantee: progress calls are
// serialized, strictly increasing, and their count matches the job count.
func TestMapProgress(t *testing.T) {
	const n = 64
	var calls []int
	p := Pool{
		Workers: 8,
		OnProgress: func(done, total int) {
			if total != n {
				t.Errorf("total = %d", total)
			}
			calls = append(calls, done) // serialized by the engine
		},
	}
	if _, err := p.Map(context.Background(), n, func(ctx context.Context, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(calls) != n {
		t.Fatalf("%d progress calls for %d jobs", len(calls), n)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress call %d reported done=%d", i, d)
		}
	}
}

// TestMapCancel checks prompt cancellation: workers blocked in jobs that
// honor ctx return, and every unstarted job is marked with ctx.Err().
func TestMapCancel(t *testing.T) {
	const n = 50
	ctx, cancel := context.WithCancel(context.Background())
	var entered int32
	p := Pool{Workers: 4}
	start := time.Now()
	errs, err := p.Map(ctx, n, func(ctx context.Context, i int) error {
		if atomic.AddInt32(&entered, 1) == 4 {
			cancel() // all workers busy: the rest of the queue must be abandoned
		}
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("engine error %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not return promptly")
	}
	var unstarted int
	for _, e := range errs {
		if e == nil {
			t.Fatal("job reported success under cancellation")
		}
		if errors.Is(e, context.Canceled) {
			unstarted++
		}
	}
	if unstarted < n-8 { // at most one in-flight job per worker plus the four runners
		t.Fatalf("only %d/%d jobs carry ctx.Err()", unstarted, n)
	}
}

// TestMapPanicIsolation checks that a panic in one job fails only that
// job's slot.
func TestMapPanicIsolation(t *testing.T) {
	errs, err := Map(context.Background(), 8, func(ctx context.Context, i int) error {
		if i == 3 {
			panic("kaboom")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("engine error %v", err)
	}
	for i, e := range errs {
		if i == 3 {
			if e == nil || !strings.Contains(e.Error(), "kaboom") {
				t.Fatalf("panicking job error = %v", e)
			}
			continue
		}
		if e != nil {
			t.Fatalf("job %d poisoned by sibling panic: %v", i, e)
		}
	}
}

// TestMapFailFast checks the FailFast policy on one worker, where skipping
// is deterministic: everything after the failing job is abandoned.
func TestMapFailFast(t *testing.T) {
	boom := errors.New("boom")
	p := Pool{Workers: 1, Policy: FailFast}
	errs, err := p.Map(context.Background(), 10, func(ctx context.Context, i int) error {
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("engine error %v", err)
	}
	for i, e := range errs {
		switch {
		case i < 2 && e != nil:
			t.Fatalf("job %d failed: %v", i, e)
		case i == 2 && !errors.Is(e, boom):
			t.Fatalf("trigger slot holds %v", e)
		case i > 2 && !errors.Is(e, ErrSkipped):
			t.Fatalf("job %d after the trip holds %v, want ErrSkipped", i, e)
		}
	}
}

// TestMapFailFastRace hammers the FailFast trip from many workers at once;
// under -race this is the engine's data-race gate (scripts/ci.sh).
func TestMapFailFastRace(t *testing.T) {
	const n = 200
	p := Pool{Workers: 16, Policy: FailFast, OnProgress: func(done, total int) {}}
	var failures int32
	errs, err := p.Map(context.Background(), n, func(ctx context.Context, i int) error {
		atomic.AddInt32(&failures, 1)
		return fmt.Errorf("job %d failed", i)
	})
	if err == nil {
		t.Fatal("no engine error despite failures")
	}
	for i, e := range errs {
		if e == nil {
			t.Fatalf("job %d reported success", i)
		}
	}
}

// TestMapWorkerBound verifies the pool really is bounded.
func TestMapWorkerBound(t *testing.T) {
	const workers = 3
	var cur, peak int32
	var mu sync.Mutex
	p := Pool{Workers: workers}
	if _, err := p.Map(context.Background(), 30, func(ctx context.Context, i int) error {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&cur, -1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Fatalf("observed %d concurrent jobs with %d workers", peak, workers)
	}
}

// TestMapPreCanceled checks that a context canceled before Map is called
// runs nothing and marks every slot.
func TestMapPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	errs, err := Map(ctx, 5, func(ctx context.Context, i int) error {
		t.Error("job ran under pre-canceled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("engine error %v", err)
	}
	for i, e := range errs {
		if !errors.Is(e, context.Canceled) {
			t.Fatalf("job %d error %v", i, e)
		}
	}
}

// TestMapMetrics pins the pool's telemetry contract: per-job counters,
// queue-wait and job-duration histograms, and the utilization gauge all
// land in the pool's registry.
func TestMapMetrics(t *testing.T) {
	r := obs.NewRegistry()
	boom := errors.New("boom")
	p := Pool{Workers: 2, Metrics: r}
	_, err := p.Map(context.Background(), 6, func(_ context.Context, i int) error {
		switch i {
		case 3:
			return boom
		case 4:
			panic("kaboom")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Collect policy returned engine error: %v", err)
	}
	s := r.Snapshot()
	for name, want := range map[string]int64{
		"exec_jobs_started":   6,
		"exec_jobs_completed": 6,
		"exec_jobs_failed":    2, // the error and the panic
		"exec_jobs_panicked":  1,
	} {
		if got := s.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if h, ok := s.HistogramByName("exec_job_ns"); !ok || h.Count != 6 {
		t.Errorf("exec_job_ns count = %+v, want 6 observations", h)
	}
	if h, ok := s.HistogramByName("exec_queue_wait_ns"); !ok || h.Count != 6 {
		t.Errorf("exec_queue_wait_ns count = %+v, want 6 observations", h)
	}
	if s.Counters["exec_busy_ns"] <= 0 {
		t.Error("exec_busy_ns not accumulated")
	}
	util, ok := s.Gauges["exec_utilization_pct"]
	if !ok || util < 0 || util > 100 {
		t.Errorf("exec_utilization_pct = %d (present=%v), want 0..100", util, ok)
	}
}
