// Package exec is the execution layer shared by every fan-out in the repo:
// a context-aware job engine that runs indexed jobs on a bounded worker
// pool with cancellation, per-job panic recovery, a configurable error
// policy and an optional progress callback.
//
// The sweeps in internal/core, the scheduling measurement matrix in
// internal/sched and any future sharded or remote execution all funnel
// through Pool.Map, so cancellation and error semantics are defined in
// exactly one place.
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Policy selects what the engine does when a job returns an error.
type Policy int

const (
	// Collect runs every job regardless of failures; errors are reported
	// per job. This is the sweep default: one bad point must not void the
	// other 815.
	Collect Policy = iota
	// FailFast cancels the remaining jobs after the first error. In-flight
	// jobs still run to completion (jobs are CPU-bound simulations that
	// observe ctx only at their own checkpoints); unstarted jobs are
	// marked with ErrSkipped.
	FailFast
)

// ErrSkipped marks a job that never started because FailFast tripped on an
// earlier error. Jobs unstarted because the caller's context was canceled
// are marked with that context's error instead.
var ErrSkipped = errors.New("exec: job skipped after earlier failure")

// Pool configures a bounded worker pool. The zero value is a Collect-policy
// pool with GOMAXPROCS workers and no progress reporting.
type Pool struct {
	// Workers bounds concurrency; 0 means GOMAXPROCS. The pool is fixed:
	// Workers goroutines pull job indices from a channel, so an 816-point
	// sweep holds a handful of live goroutines, not 816 parked ones.
	Workers int
	// Policy selects Collect (default) or FailFast error handling.
	Policy Policy
	// OnProgress, when non-nil, is called once per finished job with the
	// number of jobs completed so far and the total. Calls are serialized
	// and done is strictly increasing, so the callback needs no locking of
	// its own.
	OnProgress func(done, total int)
	// Metrics selects the registry the pool records its telemetry into
	// (job counts, queue wait, worker utilization); nil means obs.Default.
	Metrics *obs.Registry
}

// metrics bundles the pool's instrumentation points, resolved once per Map
// call so the per-job hot path is atomic adds only.
type poolMetrics struct {
	started   *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	panicked  *obs.Counter
	queueWait *obs.Histogram
	jobTime   *obs.Histogram
	busyNs    *obs.Counter
	util      *obs.Gauge
}

func (p Pool) metrics() poolMetrics {
	r := p.Metrics
	if r == nil {
		r = obs.Default()
	}
	return poolMetrics{
		started:   r.Counter("exec_jobs_started"),
		completed: r.Counter("exec_jobs_completed"),
		failed:    r.Counter("exec_jobs_failed"),
		panicked:  r.Counter("exec_jobs_panicked"),
		queueWait: r.Histogram("exec_queue_wait_ns"),
		jobTime:   r.Histogram("exec_job_ns"),
		busyNs:    r.Counter("exec_busy_ns"),
		util:      r.Gauge("exec_utilization_pct"),
	}
}

// Map runs fn(ctx, i) for every i in [0, n) on the pool and returns one
// error slot per job.
//
// Semantics:
//   - errs[i] is fn's return for jobs that ran (nil on success), the
//     recovered panic for jobs that panicked, ctx.Err() for jobs unstarted
//     at cancellation, and ErrSkipped for jobs unstarted after a FailFast
//     trip.
//   - The returned error is the engine-level outcome: nil when every job
//     was attempted, ctx.Err() when the caller's context canceled the run,
//     or the triggering job error under FailFast.
//   - A panic in one job fails only that job's slot.
//
// Map always waits for in-flight jobs before returning, so on return no
// goroutine started by Map is still touching caller state: cancellation
// costs at most one in-flight job per worker.
func (p Pool) Map(ctx context.Context, n int, fn func(ctx context.Context, i int) error) ([]error, error) {
	errs := make([]error, n)
	if n <= 0 {
		return errs, ctx.Err()
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	// runCtx stops the feeder and the workers' per-job checks; it is
	// canceled by the caller's ctx or by a FailFast trip.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		done     int
		firstErr error // FailFast trigger
		started  = make([]bool, n)
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	finish := func() {
		if p.OnProgress == nil {
			return
		}
		// The callback runs under the pool lock: that is what serializes
		// calls across workers (the callback must not call back into Map).
		mu.Lock()
		done++
		p.OnProgress(done, n)
		mu.Unlock()
	}

	m := p.metrics()
	mapStart := time.Now()

	// The feeder stamps each index when it starts offering it; the channel
	// is unbuffered, so receive-time minus stamp is exactly how long the
	// job sat waiting for a free worker.
	type item struct {
		i   int
		enq time.Time
	}
	idx := make(chan item)
	go func() {
		defer close(idx)
		for i := 0; i < n; i++ {
			select {
			case idx <- item{i: i, enq: time.Now()}:
			case <-runCtx.Done():
				return
			}
		}
	}()

	var busyNs atomic.Int64 // busy time of this Map call only (the counter spans calls)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for it := range idx {
				i := it.i
				if runCtx.Err() != nil {
					// Drain without running: the feeder may have handed
					// out this index before observing cancellation.
					continue
				}
				m.queueWait.ObserveSince(it.enq)
				m.started.Inc()
				started[i] = true
				jobStart := time.Now()
				err, panicked := runJob(runCtx, i, fn)
				d := time.Since(jobStart)
				m.jobTime.Observe(int64(d))
				m.busyNs.Add(int64(d))
				busyNs.Add(int64(d))
				m.completed.Inc()
				if panicked {
					m.panicked.Inc()
				}
				if err != nil {
					m.failed.Inc()
				}
				errs[i] = err
				if err != nil && p.Policy == FailFast {
					fail(err)
				}
				finish()
			}
		}()
	}
	wg.Wait()

	// Utilization of this Map call: busy worker-time over the worker-time
	// available while the pool ran. A fully fed pool reads ~100.
	if wall := time.Since(mapStart); wall > 0 {
		m.util.Set(busyNs.Load() * 100 / int64(wall) / int64(workers))
	}

	// Mark the jobs that never ran. The caller's cancellation wins over a
	// concurrent FailFast trip: those jobs were abandoned either way, but
	// ctx.Err() is the more truthful cause.
	var skip error
	switch {
	case ctx.Err() != nil:
		skip = ctx.Err()
	case firstErr != nil:
		skip = ErrSkipped
	}
	if skip != nil {
		for i := range errs {
			if !started[i] && errs[i] == nil {
				errs[i] = skip
			}
		}
	}
	switch {
	case ctx.Err() != nil:
		return errs, ctx.Err()
	case firstErr != nil:
		return errs, firstErr
	}
	return errs, nil
}

// runJob invokes fn for one index, converting a panic into that job's
// error so one corrupt point cannot take down a whole sweep. The second
// result reports whether the error came from a recovered panic.
func runJob(ctx context.Context, i int, fn func(ctx context.Context, i int) error) (err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("exec: job %d panicked: %v\n%s", i, r, debug.Stack())
			panicked = true
		}
	}()
	return fn(ctx, i), false
}

// Map runs fn over [0, n) on a default pool (GOMAXPROCS workers, Collect
// policy) — the common case for callers that track errors per job.
func Map(ctx context.Context, n int, fn func(ctx context.Context, i int) error) ([]error, error) {
	return Pool{}.Map(ctx, n, fn)
}
