package worker

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/uarch"
)

var tinyProto = core.Workload{Frames: 4, Scale: 16}

// startFleet brings up an orchestrator in fleet mode behind a listener.
func startFleet(t *testing.T, ttl time.Duration, reg *obs.Registry) (*serve.Server, *httptest.Server, context.CancelFunc) {
	t.Helper()
	s, err := serve.New(serve.Config{
		Proto: tinyProto, Seed: 1, Metrics: reg,
		Fleet: &serve.FleetOptions{LeaseTTL: ttl, PollWait: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	return s, ts, cancel
}

// startWorker runs one real worker until its cancel func is called.
func startWorker(t *testing.T, url, id string, cfg uarch.Config, opts Options) (context.CancelFunc, chan struct{}) {
	t.Helper()
	opts.Orchestrator = url
	opts.ID = id
	opts.Config = cfg
	if opts.Heartbeat == 0 {
		opts.Heartbeat = 50 * time.Millisecond
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	w, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	return cancel, done
}

// TestWorkerEndToEnd: two real workers on different configurations join an
// orchestrator, a stream of jobs is submitted over the job API, and every
// job settles done with a worker id as its server. Jobs that run on the
// baseline worker must warm the cost model (smart placements appear).
func TestWorkerEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts, cancel := startFleet(t, 5*time.Second, reg)
	base, _ := uarch.ByName("baseline")
	fe, _ := uarch.ByName("fe_op")
	stop1, done1 := startWorker(t, ts.URL, "w-base", base, Options{})
	stop2, done2 := startWorker(t, ts.URL, "w-fe", fe, Options{})
	defer func() {
		cancel()
		s.Stop()
		stop1()
		stop2()
		<-done1
		<-done2
		ts.Close()
	}()

	ctx := context.Background()
	var ids []string
	for i := 0; i < 6; i++ {
		view, err := s.Submit(ctx, serve.JobRequest{Video: "bbb"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, view.ID)
	}
	workers := map[string]bool{}
	for _, id := range ids {
		wctx, wcancel := context.WithTimeout(ctx, 30*time.Second)
		final, err := s.WaitJob(wctx, id)
		wcancel()
		if err != nil {
			t.Fatal(err)
		}
		if final.State != serve.StateDone {
			t.Fatalf("job %s: %s (%s)", id, final.State, final.Error)
		}
		if final.Server != "w-base" && final.Server != "w-fe" {
			t.Fatalf("job %s ran on %q, want a worker id", id, final.Server)
		}
		workers[final.Server] = true
	}
	if tot := s.Totals(); tot.Completed != 6 {
		t.Fatalf("totals %+v, want 6 completions", tot)
	}
	// All jobs are the same video and the first completion on w-base warms
	// the model, so at least one later placement must be smart.
	snap := reg.Snapshot()
	if smart := snap.CounterTotal(obs.Key("serve_placements", "mode", "smart")); smart == 0 {
		t.Fatalf("no smart placements after baseline warm-up; placements: %v", snap.Counters)
	}
}

// TestWorkerCrashMidJobReassigns is the tentpole's acceptance scenario in
// miniature: a worker dies mid-job without a goodbye; the lease expires
// and the job finishes on the surviving worker, settled exactly once.
func TestWorkerCrashMidJobReassigns(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts, cancel := startFleet(t, 300*time.Millisecond, reg)
	base, _ := uarch.ByName("baseline")
	// The doomed worker pads jobs to 10s, so the crash always lands mid-job.
	stopDoomed, doomedDone := startWorker(t, ts.URL, "w-doomed", base, Options{MinJobTime: 10 * time.Second})
	defer func() {
		cancel()
		s.Stop()
		ts.Close()
	}()

	ctx := context.Background()
	view, err := s.Submit(ctx, serve.JobRequest{Video: "bbb"})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the doomed worker actually holds the job, then "crash" it
	// (cancel kills heartbeats and the job; nothing is reported — the
	// closest in-process stand-in for kill -9).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, ok := s.Job(view.ID); ok && v.State == serve.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started on the doomed worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stopDoomed()
	<-doomedDone

	// The survivor joins after the crash and inherits the job.
	stopLive, liveDone := startWorker(t, ts.URL, "w-live", base, Options{})
	defer func() {
		stopLive()
		<-liveDone
	}()
	wctx, wcancel := context.WithTimeout(ctx, 30*time.Second)
	final, err := s.WaitJob(wctx, view.ID)
	wcancel()
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.StateDone || final.Server != "w-live" || final.Attempts != 2 {
		t.Fatalf("final %+v, want done on w-live after 2 attempts", final)
	}
	if tot := s.Totals(); tot.Completed != 1 || tot.Failed != 0 {
		t.Fatalf("totals %+v, want exactly one completion", tot)
	}
	snap := reg.Snapshot()
	if snap.CounterTotal("fleet_lease_reassigned") == 0 {
		t.Fatal("no lease reassignment recorded")
	}
}

// TestWorkerLeaseAbortStopsWastedWork: when a worker's lease is
// invalidated (here: expired while the job drags on), the next heartbeat
// reply makes the worker abandon the job instead of finishing it.
func TestWorkerLeaseAbortStopsWastedWork(t *testing.T) {
	wreg := obs.NewRegistry()
	reg := obs.NewRegistry()
	s, ts, cancel := startFleet(t, 200*time.Millisecond, reg)
	base, _ := uarch.ByName("baseline")
	// Heartbeat slower than the TTL: the lease always expires mid-job, and
	// the next heartbeat learns it.
	stop, done := startWorker(t, ts.URL, "w-slow", base, Options{
		Heartbeat:  500 * time.Millisecond,
		MinJobTime: 30 * time.Second,
		Metrics:    wreg,
	})
	defer func() {
		cancel()
		s.Stop()
		stop()
		<-done
		ts.Close()
	}()

	if _, err := s.Submit(context.Background(), serve.JobRequest{Video: "bbb"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for wreg.Snapshot().CounterTotal("worker_lease_aborts") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never aborted its invalidated lease")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
