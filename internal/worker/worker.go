// Package worker is the execution half of the distributed serving layer:
// a pull-based transcoding worker that registers with an orchestrator
// (internal/serve in fleet mode) over HTTP, heartbeats with live load
// telemetry, long-polls for leased jobs when idle, runs them through the
// shared core pipeline, and streams results back. Registration is
// idempotent — every heartbeat and poll upserts the worker — so a worker
// that crashes can simply restart under the same id and rejoin; any job it
// was holding is released by the orchestrator's lease machinery (instantly
// on the first rejoin poll, or at lease TTL if it never comes back).
package worker

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/uarch"
)

// Options configures one worker process.
type Options struct {
	// Orchestrator is the base URL of the orchestrator ("http://host:port").
	Orchestrator string
	// ID names this worker; rejoining under the same id after a crash
	// reclaims its identity. Required.
	ID string
	// Config is the uarch configuration this worker simulates — its
	// capability metadata for placement. Zero means baseline. Ignored when
	// Backend is accel (the ASIC's host core is not modeled).
	Config uarch.Config
	// Backend is the encoder class this worker executes with: software
	// (default) runs the codec through the uarch simulation; accel models a
	// fixed-function encoder — restricted option surface, closed-form wall
	// clock, no profile.
	Backend backend.Kind
	// PriceCentsHour is the advertised rental price (0: class default,
	// spot-discounted when Spot is set).
	PriceCentsHour float64
	// Spot marks this worker as preemptible capacity.
	Spot bool
	// Heartbeat is the liveness/telemetry period (0: 1s). Must be well
	// inside the orchestrator's lease TTL or running jobs lose their lease.
	Heartbeat time.Duration
	// MinJobTime pads every job to at least this duration (0: none) — a
	// fault-injection knob so tests and the smoke script can hold a job
	// in-flight long enough to kill the worker mid-job.
	MinJobTime time.Duration
	// Metrics selects the registry; nil means obs.Default().
	Metrics *obs.Registry
	// Client overrides the HTTP client (tests); nil uses a fresh client
	// with no global timeout, since polls park server-side.
	Client *http.Client
}

type workerMetrics struct {
	jobsDone    *obs.Counter
	busyNs      *obs.Counter
	heartbeats  *obs.Counter
	leaseAborts *obs.Counter
	busyG       *obs.Gauge
}

// Worker is one fleet member; create with New, drive with Run.
type Worker struct {
	opts   Options
	spec   backend.ServerSpec // resolved economic capability
	accel  backend.AccelModel
	base   string
	client *http.Client
	met    workerMetrics

	mu       sync.Mutex
	leaseID  string             // lease of the in-flight job, "" when idle
	abort    context.CancelFunc // cancels the in-flight job
	jobsDone int64
	busyNs   int64
	started  time.Time
}

// New validates options and builds a stopped worker.
func New(opts Options) (*Worker, error) {
	if opts.Orchestrator == "" {
		return nil, errors.New("worker: missing orchestrator URL")
	}
	if opts.ID == "" {
		return nil, errors.New("worker: missing id")
	}
	if opts.Config.Name == "" {
		opts.Config = uarch.Baseline()
	}
	if _, err := backend.ParseKind(string(opts.Backend)); err != nil {
		return nil, fmt.Errorf("worker: %w", err)
	}
	if opts.Backend == "" {
		opts.Backend = backend.Software
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = time.Second
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	return &Worker{
		opts: opts,
		spec: backend.ServerSpec{
			Backend: opts.Backend, Config: opts.Config,
			PriceCentsHour: opts.PriceCentsHour, Spot: opts.Spot,
		}.FillDefaults(),
		accel:  backend.DefaultAccel(),
		base:   opts.Orchestrator,
		client: client,
		met: workerMetrics{
			jobsDone:    reg.Counter("worker_jobs_done"),
			busyNs:      reg.Counter("worker_busy_ns"),
			heartbeats:  reg.Counter("worker_heartbeats"),
			leaseAborts: reg.Counter("worker_lease_aborts"),
			busyG:       reg.Gauge("worker_busy"),
		},
	}, nil
}

// Run is the worker main loop: heartbeat in the background, poll-execute-
// report in the foreground, until ctx cancels. An unreachable orchestrator
// is retried at the heartbeat period — the worker outlives orchestrator
// restarts the same way the orchestrator outlives worker restarts.
func (w *Worker) Run(ctx context.Context) error {
	w.mu.Lock()
	w.started = time.Now()
	w.mu.Unlock()
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeatLoop(hbCtx)
	}()
	defer func() {
		stopHB()
		<-hbDone
	}()
	// Announce immediately so the orchestrator sees the worker before the
	// first poll parks.
	w.beat(ctx)
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		a, ok, err := w.poll(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if !sleep(ctx, w.opts.Heartbeat) {
				return ctx.Err()
			}
			continue
		}
		if !ok {
			continue // empty poll window; park again
		}
		w.execute(ctx, a)
	}
}

// execute runs one leased job and reports the result. The job is skipped
// silently when its context dies first — a lease abort means the
// orchestrator already requeued the job, and a process shutdown means the
// result could not be delivered anyway.
func (w *Worker) execute(ctx context.Context, a serve.Assignment) {
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	w.mu.Lock()
	w.leaseID = a.LeaseID
	w.abort = cancel
	w.mu.Unlock()
	w.met.busyG.Set(1)
	started := time.Now()

	rep := serve.ResultReport{WorkerID: w.opts.ID, LeaseID: a.LeaseID, JobID: a.JobID}
	task := sched.Task{Video: a.Video, CRF: a.CRF, Refs: a.Refs, Preset: codec.Preset(a.Preset)}
	if opts, err := task.Options(); err != nil {
		rep.Error = err.Error()
	} else {
		job := core.Job{
			Workload:   core.Workload{Video: a.Video, Frames: a.Frames, Scale: a.Scale, Seed: a.Seed},
			Options:    opts,
			Config:     w.opts.Config,
			Segment:    codec.Segment{Start: a.SegStart, End: a.SegEnd},
			KeepStream: a.WantStream,
		}
		if w.opts.Backend == backend.Accel {
			w.executeAccel(jctx, job, &rep)
		} else {
			res, err := core.Run(jctx, job)
			if err != nil {
				rep.Error = err.Error()
			} else {
				rep.Seconds = res.Report.Seconds
				rep.Topdown = &res.Report.Topdown
				if a.WantStream {
					rep.Stream = res.Stream
				}
			}
		}
		if pad := w.opts.MinJobTime - time.Since(started); pad > 0 {
			sleep(jctx, pad)
		}
	}

	w.met.busyG.Set(0)
	w.met.busyNs.Add(time.Since(started).Nanoseconds())
	w.mu.Lock()
	w.leaseID = ""
	w.abort = nil
	w.busyNs += time.Since(started).Nanoseconds()
	w.mu.Unlock()

	if jctx.Err() != nil {
		return // aborted (lease reassigned) or shutting down: nothing to report
	}
	if w.report(ctx, rep) {
		w.met.jobsDone.Inc()
		w.mu.Lock()
		w.jobsDone++
		w.mu.Unlock()
	}
}

// executeAccel is the fixed-function execution path: the encode runs with
// no uarch simulation attached (identical bitstream, no profile) and the
// reported wall clock comes from the accelerator's closed-form throughput
// model. Jobs outside the ASIC's option surface are rejected — placement
// never sends them here, so an arrival is a real error worth surfacing.
func (w *Worker) executeAccel(ctx context.Context, job core.Job, rep *serve.ResultReport) {
	if !w.accel.Accepts(job.Options) {
		rep.Error = "worker: options outside the accelerator's surface"
		return
	}
	pw, ph, frames, err := core.ProxyDims(job.Workload)
	if err != nil {
		rep.Error = err.Error()
		return
	}
	if job.Segment.End > job.Segment.Start {
		frames = job.Segment.End - job.Segment.Start
	}
	res, err := core.EncodeOnly(ctx, job)
	if err != nil {
		rep.Error = err.Error()
		return
	}
	rep.Seconds = w.accel.Seconds(frames, pw, ph)
	if job.KeepStream {
		rep.Stream = res.Stream
	}
}

// report posts a result with bounded retries; true means some reply was
// received (any 2xx reply is final — the orchestrator deduplicates).
func (w *Worker) report(ctx context.Context, rep serve.ResultReport) bool {
	for attempt := 0; attempt < 5; attempt++ {
		var reply serve.ResultReply
		if err := w.post(ctx, "/fleet/result", rep, &reply); err == nil {
			return true
		}
		if !sleep(ctx, w.opts.Heartbeat) {
			return false
		}
	}
	return false
}

// poll asks for one job; ok is false on an empty window (HTTP 204).
func (w *Worker) poll(ctx context.Context) (serve.Assignment, bool, error) {
	body, err := json.Marshal(serve.PollRequest{
		WorkerID: w.opts.ID, Config: w.opts.Config.Name,
		Backend:        string(w.spec.Backend),
		PriceCentsHour: w.spec.PriceCentsHour, Spot: w.spec.Spot,
	})
	if err != nil {
		return serve.Assignment{}, false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+"/fleet/poll", bytes.NewReader(body))
	if err != nil {
		return serve.Assignment{}, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return serve.Assignment{}, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return serve.Assignment{}, false, nil
	case http.StatusOK:
		var a serve.Assignment
		if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
			return serve.Assignment{}, false, err
		}
		return a, true, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return serve.Assignment{}, false, fmt.Errorf("worker: poll: %s: %s", resp.Status, msg)
	}
}

// heartbeatLoop is the background liveness/telemetry loop.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	t := time.NewTicker(w.opts.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		w.beat(ctx)
	}
}

// beat sends one heartbeat; a reply invalidating our lease aborts the
// in-flight job (the orchestrator already requeued it — finishing would
// only waste the simulated cycles).
func (w *Worker) beat(ctx context.Context) {
	w.mu.Lock()
	lease := w.leaseID
	hb := serve.Heartbeat{
		WorkerID: w.opts.ID, Config: w.opts.Config.Name,
		Backend:        string(w.spec.Backend),
		PriceCentsHour: w.spec.PriceCentsHour, Spot: w.spec.Spot,
		Busy: lease != "", LeaseID: lease,
		UtilizationPct: w.utilLocked(time.Now()), JobsDone: w.jobsDone,
	}
	w.mu.Unlock()
	var reply serve.HeartbeatReply
	if err := w.post(ctx, "/fleet/heartbeat", hb, &reply); err != nil {
		return
	}
	w.met.heartbeats.Inc()
	if lease != "" && !reply.LeaseValid {
		w.mu.Lock()
		if w.leaseID == lease && w.abort != nil {
			w.abort()
			w.met.leaseAborts.Inc()
		}
		w.mu.Unlock()
	}
}

// utilLocked is lifetime utilization: busy time over wall time, percent.
func (w *Worker) utilLocked(now time.Time) float64 {
	if w.started.IsZero() {
		return 0
	}
	wall := now.Sub(w.started)
	if wall <= 0 {
		return 0
	}
	busy := time.Duration(w.busyNs)
	if w.leaseID != "" {
		// An in-flight job counts as busy even before it lands in busyNs.
		busy += w.opts.Heartbeat
	}
	pct := 100 * float64(busy) / float64(wall)
	if pct > 100 {
		pct = 100
	}
	return pct
}

// post is the plain request/reply POST (heartbeat, result).
func (w *Worker) post(ctx context.Context, path string, body, reply any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("worker: %s: %s: %s", path, resp.Status, msg)
	}
	return json.NewDecoder(resp.Body).Decode(reply)
}

// sleep is a ctx-aware pause; false means ctx won.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
