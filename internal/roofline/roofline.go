// Package roofline implements the roofline performance model (Williams,
// Waterman, Patterson) the paper uses to explain why crf, refs, presets and
// video entropy move the memory-bound/core-bound balance: attainable
// performance is the minimum of peak compute and operational intensity
// times memory bandwidth.
package roofline

// Model describes one machine's roofline.
type Model struct {
	PeakGopsPerSec float64 // compute ceiling
	MemBWGBPerSec  float64 // DRAM bandwidth ceiling
}

// Default returns a roofline loosely matched to the simulated 4-wide
// 3.5 GHz core: 14 Gops/s peak, 20 GB/s of memory bandwidth.
func Default() Model {
	return Model{PeakGopsPerSec: 14, MemBWGBPerSec: 20}
}

// RidgePoint returns the operational intensity (ops/byte) at which the
// model transitions from memory bound to compute bound.
func (m Model) RidgePoint() float64 {
	return m.PeakGopsPerSec / m.MemBWGBPerSec
}

// Attainable returns the performance ceiling in Gops/s at the given
// operational intensity.
func (m Model) Attainable(intensity float64) float64 {
	bw := intensity * m.MemBWGBPerSec
	if bw < m.PeakGopsPerSec {
		return bw
	}
	return m.PeakGopsPerSec
}

// MemoryBound reports whether a workload at the given intensity sits on the
// bandwidth-limited side of the ridge.
func (m Model) MemoryBound(intensity float64) bool {
	return intensity < m.RidgePoint()
}

// Utilization returns achieved/attainable given measured Gops/s.
func (m Model) Utilization(intensity, achievedGops float64) float64 {
	a := m.Attainable(intensity)
	if a == 0 {
		return 0
	}
	return achievedGops / a
}
