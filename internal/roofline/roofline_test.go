package roofline

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRidgePoint(t *testing.T) {
	m := Model{PeakGopsPerSec: 10, MemBWGBPerSec: 20}
	if m.RidgePoint() != 0.5 {
		t.Fatalf("ridge %f", m.RidgePoint())
	}
}

func TestAttainableShape(t *testing.T) {
	m := Default()
	// Below the ridge: bandwidth-limited, linear in intensity.
	lo := m.Attainable(m.RidgePoint() / 2)
	if math.Abs(lo-m.PeakGopsPerSec/2) > 1e-9 {
		t.Fatalf("below ridge attainable %f", lo)
	}
	// Above the ridge: flat at peak.
	if m.Attainable(m.RidgePoint()*10) != m.PeakGopsPerSec {
		t.Fatal("above ridge must hit the compute ceiling")
	}
}

func TestAttainableMonotoneAndCapped(t *testing.T) {
	m := Default()
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if a > b {
			a, b = b, a
		}
		pa, pb := m.Attainable(a), m.Attainable(b)
		return pa <= pb+1e-9 && pb <= m.PeakGopsPerSec+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryBound(t *testing.T) {
	m := Default()
	if !m.MemoryBound(m.RidgePoint() / 2) {
		t.Fatal("below ridge must be memory bound")
	}
	if m.MemoryBound(m.RidgePoint() * 2) {
		t.Fatal("above ridge must be compute bound")
	}
}

func TestUtilization(t *testing.T) {
	m := Default()
	oi := m.RidgePoint() * 4
	if u := m.Utilization(oi, m.PeakGopsPerSec); math.Abs(u-1) > 1e-9 {
		t.Fatalf("peak utilization %f", u)
	}
	if u := m.Utilization(oi, m.PeakGopsPerSec/2); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("half utilization %f", u)
	}
	zero := Model{}
	if zero.Utilization(1, 1) != 0 {
		t.Fatal("degenerate model must not divide by zero")
	}
}
