package codec

import (
	"math/rand"
	"testing"

	"repro/internal/frame"
	"repro/internal/trace"
)

// stagedScalarSAD and stagedScalarSATD are the byte-at-a-time references
// for the staged-block SWAR kernels in pixels.go.
func stagedScalarSAD(a *frame.Plane, ax, ay int, b *block) int {
	s := 0
	for j := 0; j < b.h; j++ {
		ra := a.RowFrom(ax, ay+j, b.w)
		rb := b.row(j)
		for i, va := range ra {
			d := int(va) - int(rb[i])
			if d < 0 {
				d = -d
			}
			s += d
		}
	}
	return s
}

func stagedScalarSATD(a *frame.Plane, ax, ay int, b *block) int {
	var total int
	var d [16]int32
	for j := 0; j < b.h; j += 4 {
		for i := 0; i < b.w; i += 4 {
			for y := 0; y < 4; y++ {
				ra := a.RowFrom(ax+i, ay+j+y, 4)
				rb := b.row(j + y)[i : i+4]
				for x := 0; x < 4; x++ {
					d[y*4+x] = int32(ra[x]) - int32(rb[x])
				}
			}
			total += int(hadamardAbs(&d))
		}
	}
	return total / 2
}

// TestStagedBlockKernelsMatchScalar pins sadBlock and satdBlock against the
// scalar references across block geometries and random content.
func TestStagedBlockKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := frame.NewPlane(64, 48)
	for i := range p.Pix {
		p.Pix[i] = uint8(rng.Intn(256))
	}
	tr := newTracer(trace.Nop{}, 0)
	var b block
	for _, dims := range [][2]int{{4, 4}, {8, 8}, {16, 16}, {8, 16}, {16, 8}, {12, 4}} {
		b.w, b.h = dims[0], dims[1]
		for i := 0; i < b.w*b.h; i++ {
			b.pix[i] = uint8(rng.Intn(256))
		}
		for _, off := range [][2]int{{0, 0}, {7, 3}, {-5, -2}, {31, 17}} {
			ax, ay := off[0], off[1]
			if got, want := tr.sadBlock(trace.FnSAD, &p, ax, ay, &b), stagedScalarSAD(&p, ax, ay, &b); got != want {
				t.Errorf("sadBlock %dx%d at (%d,%d): got %d, want %d", b.w, b.h, ax, ay, got, want)
			}
			if got, want := tr.satdBlock(trace.FnSATD, &p, ax, ay, &b), stagedScalarSATD(&p, ax, ay, &b); got != want {
				t.Errorf("satdBlock %dx%d at (%d,%d): got %d, want %d", b.w, b.h, ax, ay, got, want)
			}
		}
	}
}

// TestESAEarlyTermination verifies the satellite fix: exhaustive search now
// honours meQuery.earlyPx like every other pattern — a good-enough match
// stops the row scan, with the decision reported at the siteMEEarly branch
// site.
func TestESAEarlyTermination(t *testing.T) {
	src, ref := shiftedPlanes(128, 96, 0, 0)
	run := func(earlyPx int) (calls int, res meResult) {
		sink := &recordingSink{}
		enc, err := NewEncoder(128, 96, 30, Defaults(), sink)
		if err != nil {
			t.Fatal(err)
		}
		enc.tr.nextMB() // arm event emission (normally done by the MB loop)
		q := meQuery{
			src: &src, ref: &ref, sx: 48, sy: 32, w: 16, h: 16,
			mvp: MV{}, rangePx: 8, method: MEESA, lambda: 1, earlyPx: earlyPx,
		}
		res = enc.motionSearch(&q)
		return sink.calls, res
	}
	full, fullRes := run(0)
	early, earlyRes := run(64)
	// The content is an exact translation by (0,0), so the zero-vector probe
	// already hits SAD 0: the thresholded search must stop after its first
	// row instead of scanning all 17.
	if fullRes.mv != (MV{}) || earlyRes.mv != (MV{}) {
		t.Fatalf("expected both searches to find the zero vector, got %v and %v", fullRes.mv, earlyRes.mv)
	}
	if early >= full/4 {
		t.Fatalf("early termination saved too little: %d calls with threshold vs %d without", early, full)
	}
}
