package codec

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/trace"
)

// recordingSink captures event counts per kind.
type recordingSink struct {
	ops, loads, stores, branches, loops, calls int
}

func (r *recordingSink) Ops(_ trace.FuncID, n int)                       { r.ops += n }
func (r *recordingSink) Load(_ trace.FuncID, _ uint64, _ int)            { r.loads++ }
func (r *recordingSink) Store(_ trace.FuncID, _ uint64, _ int)           { r.stores++ }
func (r *recordingSink) Load2D(_ trace.FuncID, _ uint64, _, _, _ int)    { r.loads++ }
func (r *recordingSink) Store2D(_ trace.FuncID, _ uint64, _, _, _ int)   { r.stores++ }
func (r *recordingSink) Branch(_ trace.FuncID, _ trace.BranchID, _ bool) { r.branches++ }
func (r *recordingSink) Loop(_ trace.FuncID, _ trace.BranchID, _ int)    { r.loops++ }
func (r *recordingSink) Call(_ trace.FuncID)                             { r.calls++ }

func TestTracerSamplingGates(t *testing.T) {
	sink := &recordingSink{}
	tr := newTracer(sink, 2) // sample 1 of 4 macroblocks
	if tr.SampleFactor() != 4 {
		t.Fatalf("sample factor %f", tr.SampleFactor())
	}
	emitted := 0
	for mb := 0; mb < 16; mb++ {
		tr.nextMB()
		before := sink.ops
		tr.ops(trace.FnSAD, 10)
		if sink.ops != before {
			continue
		}
		emitted++
	}
	// 12 of 16 macroblocks suppressed (mask 3).
	if emitted != 12 {
		t.Fatalf("suppressed %d of 16, want 12", emitted)
	}
}

func TestTracerNilSinkSafe(t *testing.T) {
	tr := newTracer(nil, 0)
	tr.nextMB()
	tr.ops(trace.FnSAD, 5)
	tr.branch(trace.FnSAD, 1, true)
	tr.loop(trace.FnSAD, 2, 3)
	tr.call(trace.FnSAD)
	// No panic: the nil sink becomes a Nop.
}

func TestInstrumentedSADMatchesPlain(t *testing.T) {
	a, b := shiftedPlanes(64, 64, 2, 1)
	tr := newTracer(&recordingSink{}, 0)
	tr.nextMB()
	got := tr.sad(trace.FnSAD, &a, 8, 8, &b, 9, 7, 16, 16)
	want := frame.SAD(&a, 8, 8, &b, 9, 7, 16, 16)
	if got != want {
		t.Fatalf("instrumented SAD %d != plain %d", got, want)
	}
	gotS := tr.satd(trace.FnSATD, &a, 8, 8, &b, 9, 7, 16, 16)
	wantS := frame.SATD(&a, 8, 8, &b, 9, 7, 16, 16)
	if gotS != wantS {
		t.Fatalf("instrumented SATD %d != plain %d", gotS, wantS)
	}
}

func TestSADThreshAbortsEarlyButNeverUnderestimates(t *testing.T) {
	a, b := shiftedPlanes(64, 64, 7, 5)
	tr := newTracer(nil, 0)
	full := frame.SAD(&a, 8, 8, &b, 8, 8, 16, 16)
	got := tr.sadThresh(trace.FnSAD, &a, 8, 8, &b, 8, 8, 16, 16, full/4)
	// Aborted SAD is a lower bound that must already exceed the limit.
	if got <= full/4 {
		t.Fatalf("aborted SAD %d did not exceed the limit %d", got, full/4)
	}
	if got > full {
		t.Fatalf("aborted SAD %d exceeds the full SAD %d", got, full)
	}
	// A generous limit returns the exact value.
	exact := tr.sadThresh(trace.FnSAD, &a, 8, 8, &b, 8, 8, 16, 16, 1<<30)
	if exact != full {
		t.Fatalf("unbounded sadThresh %d != SAD %d", exact, full)
	}
}

func TestSatdBlockMatchesPlaneSATD(t *testing.T) {
	a, _ := shiftedPlanes(64, 64, 0, 0)
	tr := newTracer(nil, 0)
	var blk block
	blk.w, blk.h = 16, 16
	for j := 0; j < 16; j++ {
		copy(blk.row(j), a.RowFrom(20, 20+j, 16))
	}
	// SATD of a block against its own pixels is zero.
	if got := tr.satdBlock(trace.FnSATD, &a, 20, 20, &blk); got != 0 {
		t.Fatalf("self satdBlock %d", got)
	}
	if got := tr.sadBlock(trace.FnSAD, &a, 20, 20, &blk); got != 0 {
		t.Fatalf("self sadBlock %d", got)
	}
}

func TestInterpLumaIntegerIsCopy(t *testing.T) {
	_, ref := shiftedPlanes(64, 64, 0, 0)
	tr := newTracer(nil, 0)
	var dst block
	tr.interpLuma(trace.FnInterp, &ref, 16, 16, MV{8, -4}, &dst, 16, 16) // integer: 2,-1
	for j := 0; j < 16; j++ {
		for i := 0; i < 16; i++ {
			if dst.at(i, j) != ref.At(16+i+2, 16+j-1) {
				t.Fatalf("integer MC mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestInterpLumaHalfPelAverages(t *testing.T) {
	ref := frame.NewPlane(64, 64)
	for y := 0; y < 64; y++ {
		row := ref.Row(y)
		for x := range row {
			row[x] = uint8(x * 4)
		}
	}
	ref.ExtendEdges()
	tr := newTracer(nil, 0)
	var dst block
	tr.interpLuma(trace.FnInterp, &ref, 16, 16, MV{2, 0}, &dst, 8, 8) // half-pel x
	// Horizontal ramp: half-pel sample = average of neighbours.
	for i := 0; i < 7; i++ {
		want := (int(ref.At(16+i, 16)) + int(ref.At(17+i, 16)) + 1) / 2
		got := int(dst.at(i, 0))
		if got < want-1 || got > want+1 {
			t.Fatalf("half-pel at %d: got %d want ~%d", i, got, want)
		}
	}
}

func TestAvgBlocksRounds(t *testing.T) {
	var a, b, out block
	a.w, a.h, b.w, b.h = 4, 4, 4, 4
	for i := 0; i < 16; i++ {
		a.pix[i] = 10
		b.pix[i] = 11
	}
	avgBlocks(&a, &b, &out)
	if out.pix[0] != 11 { // (10+11+1)>>1
		t.Fatalf("bi average %d", out.pix[0])
	}
}

func TestBlitPlacesSubBlocks(t *testing.T) {
	var big, small block
	big.w, big.h = 16, 16
	small.w, small.h = 8, 8
	for i := range small.pix[:64] {
		small.pix[i] = 9
	}
	blit(&big, &small, 8, 8)
	if big.at(8, 8) != 9 || big.at(15, 15) != 9 {
		t.Fatal("blit target region wrong")
	}
	if big.at(0, 0) != 0 || big.at(7, 7) != 0 {
		t.Fatal("blit overwrote outside its region")
	}
}

func TestResidualOrderCoversAllBlocks(t *testing.T) {
	for _, interchange := range []bool{false, true} {
		seen := [16]bool{}
		for _, o := range residualOrder(interchange) {
			idx := o[1]*4 + o[0]
			if seen[idx] {
				t.Fatalf("duplicate block (%d,%d)", o[0], o[1])
			}
			seen[idx] = true
		}
	}
	// The two orders genuinely differ (that is the Graphite interchange).
	a, b := residualOrder(false), residualOrder(true)
	if a == b {
		t.Fatal("interchange produced the same order")
	}
}
