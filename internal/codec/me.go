package codec

import (
	"repro/internal/frame"
	"repro/internal/trace"
)

// meFunc maps a search method to the trace function charged for its driver
// loop.
func meFunc(m MEMethod) trace.FuncID {
	switch m {
	case MEDia:
		return trace.FnMEDia
	case MEHex:
		return trace.FnMEHex
	case MEUMH:
		return trace.FnMEUMH
	default:
		return trace.FnMEESA
	}
}

// visitR bounds the candidate-deduplication window around the predictor;
// searches rarely drift further than the maximum range plus refinement.
const visitR = 72

// meQuery describes one integer-pel motion search.
type meQuery struct {
	src     *frame.Plane // source picture
	ref     *frame.Plane // reference picture (reconstructed)
	sx, sy  int          // block position in the source
	w, h    int          // block dimensions
	mvp     MV           // predictor, quarter-pel
	rangePx int          // integer search range
	method  MEMethod
	useSATD bool // metric for integer search (tesa)
	lambda  int
	earlyPx int // per-pixel early-termination threshold (0 disables)
}

// meResult carries the winning integer-pel vector and its cost.
type meResult struct {
	mv   MV  // quarter-pel (integer-aligned after integer search)
	cost int // metric + lambda*mvd bits
	sad  int // raw metric at the winner
}

// motionSearch runs the configured integer-pel search and returns the best
// vector. All candidate evaluation flows through the tracer so the cache
// and branch-prediction consequences of the search pattern are measurable.
func (e *Encoder) motionSearch(q *meQuery) meResult {
	fn := meFunc(q.method)
	e.tr.call(fn)

	best := meResult{cost: 1 << 30}
	// Candidate evaluation shared by all patterns. Positions are integer
	// pel. Returns true when the candidate improved on the best. A
	// generation-stamped window array deduplicates revisited positions
	// without per-search allocation.
	e.visitGen++
	cpx, cpy := int(q.mvp.X>>2), int(q.mvp.Y>>2)
	ord := 0
	eval := func(mx, my int) bool {
		mx = clampMVRange(mx, q.sx, q.w, q.src.W)
		my = clampMVRange(my, q.sy, q.h, q.src.H)
		if dx, dy := mx-cpx, my-cpy; dx >= -visitR && dx <= visitR && dy >= -visitR && dy <= visitR {
			idx := (dy+visitR)*(2*visitR+1) + dx + visitR
			if e.visited[idx] == e.visitGen {
				return false
			}
			e.visited[idx] = e.visitGen
		}
		var metric int
		if q.useSATD {
			metric = e.tr.satd(trace.FnSATD, q.src, q.sx, q.sy, q.ref, q.sx+mx, q.sy+my, q.w, q.h)
		} else {
			limit := best.cost
			if limit > 1<<24 {
				limit = 1 << 24
			}
			metric = e.tr.sadThresh(trace.FnSAD, q.src, q.sx, q.sy, q.ref, q.sx+mx, q.sy+my, q.w, q.h, limit)
		}
		mv := MV{int32(mx * 4), int32(my * 4)}
		cost := metric + q.lambda*mvBits(MV{mv.X - q.mvp.X, mv.Y - q.mvp.Y})
		better := cost < best.cost
		// Distinct sites per unrolled pattern position: early candidates
		// improve often, ring tails rarely.
		e.tr.branch(fn, siteMECmp+trace.BranchID(ord&15)*16, better)
		ord++
		if better {
			best = meResult{mv: mv, cost: cost, sad: metric}
		}
		return better
	}

	// All searches start from the predictor and the zero vector.
	px, py := int(q.mvp.X>>2), int(q.mvp.Y>>2)
	eval(px, py)
	eval(0, 0)
	earlyLimit := q.earlyPx * q.w * q.h / 256

	switch q.method {
	case MEDia:
		e.diamondSearch(q, fn, eval, &best, earlyLimit)
	case MEHex:
		e.hexSearch(q, fn, eval, &best, earlyLimit)
	case MEUMH:
		e.umhSearch(q, fn, eval, &best, earlyLimit)
	case MEESA, METesa:
		e.esaSearch(q, fn, eval, &best, earlyLimit)
	}
	return best
}

// diamondSearch iterates a small (radius 1) diamond until no improvement.
func (e *Encoder) diamondSearch(q *meQuery, fn trace.FuncID, eval func(int, int) bool, best *meResult, earlyLimit int) {
	iters := 0
	for iters < q.rangePx {
		iters++
		cx, cy := int(best.mv.X>>2), int(best.mv.Y>>2)
		improved := false
		improved = eval(cx+1, cy) || improved
		improved = eval(cx-1, cy) || improved
		improved = eval(cx, cy+1) || improved
		improved = eval(cx, cy-1) || improved
		if !improved {
			break
		}
		if earlyLimit > 0 {
			done := best.sad < earlyLimit
			e.tr.branch(fn, siteMEEarly, done)
			if done {
				break
			}
		}
	}
	e.tr.loop(fn, siteSearchLoop, iters)
}

var hexPoints = [6][2]int{{2, 0}, {1, 2}, {-1, 2}, {-2, 0}, {-1, -2}, {1, -2}}

// hexSearch iterates a six-point hexagon, then refines with a diamond.
func (e *Encoder) hexSearch(q *meQuery, fn trace.FuncID, eval func(int, int) bool, best *meResult, earlyLimit int) {
	iters := 0
	for iters < q.rangePx/2+1 {
		iters++
		cx, cy := int(best.mv.X>>2), int(best.mv.Y>>2)
		improved := false
		for _, p := range hexPoints {
			improved = eval(cx+p[0], cy+p[1]) || improved
		}
		if !improved {
			break
		}
		if earlyLimit > 0 {
			done := best.sad < earlyLimit
			e.tr.branch(fn, siteMEEarly, done)
			if done {
				break
			}
		}
	}
	e.tr.loop(fn, siteSearchLoop, iters)
	// Square refinement.
	cx, cy := int(best.mv.X>>2), int(best.mv.Y>>2)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx != 0 || dy != 0 {
				eval(cx+dx, cy+dy)
			}
		}
	}
}

// umhSearch implements the uneven multi-hexagon pattern: an unsymmetrical
// cross, a 5x5 grid, expanding 16-point multi-hexagons, then hexagon
// refinement. Far more candidates than hex, better vectors on hard content.
func (e *Encoder) umhSearch(q *meQuery, fn trace.FuncID, eval func(int, int) bool, best *meResult, earlyLimit int) {
	cx, cy := int(best.mv.X>>2), int(best.mv.Y>>2)
	// Unsymmetrical cross: horizontal reach = range, vertical = range/2.
	steps := 0
	for d := 2; d <= q.rangePx; d += 2 {
		eval(cx+d, cy)
		eval(cx-d, cy)
		if d <= q.rangePx/2 {
			eval(cx, cy+d)
			eval(cx, cy-d)
		}
		steps++
	}
	e.tr.loop(fn, siteSearchLoop, steps)
	if earlyLimit > 0 && best.sad < earlyLimit*2 {
		e.tr.branch(fn, siteMEEarly, true)
		e.hexSearch(q, fn, eval, best, earlyLimit)
		return
	}
	e.tr.branch(fn, siteMEEarly, false)
	// 5x5 full grid around the current best.
	cx, cy = int(best.mv.X>>2), int(best.mv.Y>>2)
	for dy := -2; dy <= 2; dy++ {
		for dx := -2; dx <= 2; dx++ {
			eval(cx+dx, cy+dy)
		}
	}
	// Expanding multi-hexagons (16 points per ring).
	rings := 0
	for r := 4; r <= q.rangePx; r *= 2 {
		rings++
		for i := 0; i < 16; i++ {
			dx := umhRing[i][0] * r / 4
			dy := umhRing[i][1] * r / 4
			eval(cx+dx, cy+dy)
		}
	}
	e.tr.loop(fn, siteSearchLoop, rings)
	e.hexSearch(q, fn, eval, best, earlyLimit)
}

// umhRing approximates a 16-point hexagon of radius 4.
var umhRing = [16][2]int{
	{4, 0}, {4, 1}, {3, 2}, {2, 3}, {0, 4}, {-2, 3}, {-3, 2}, {-4, 1},
	{-4, 0}, {-4, -1}, {-3, -2}, {-2, -3}, {0, -4}, {2, -3}, {3, -2}, {4, -1},
}

// esaSearch evaluates every integer position within the search window.
// Thanks to threshold-aborted SAD its cost still shrinks as the best cost
// drops, the way real exhaustive searches behave; the early-termination
// threshold the other patterns honour cuts whole remaining rows once a
// good-enough match has been found.
func (e *Encoder) esaSearch(q *meQuery, fn trace.FuncID, eval func(int, int) bool, best *meResult, earlyLimit int) {
	px, py := int(q.mvp.X>>2), int(q.mvp.Y>>2)
	r := q.rangePx
	rows := 0
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			eval(px+dx, py+dy)
		}
		rows++
		if earlyLimit > 0 {
			done := best.sad < earlyLimit
			e.tr.branch(fn, siteMEEarly, done)
			if done {
				break
			}
		}
	}
	e.tr.loop(fn, siteSearchLoop, rows)
}

// subpelIters returns (half, quarter) refinement iteration counts for a
// subme level, following x264's escalation.
func subpelIters(subme int) (half, quarter int) {
	halfTab := [12]int{0, 1, 1, 2, 2, 2, 2, 3, 3, 3, 4, 4}
	quarTab := [12]int{0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 6}
	return halfTab[subme], quarTab[subme]
}

// subpelRefine polishes an integer-pel result at half- then quarter-pel
// resolution using the SATD metric (for subme >= 3, matching x264) or SAD.
func (e *Encoder) subpelRefine(q *meQuery, res meResult, subme int) meResult {
	half, quarter := subpelIters(subme)
	if half+quarter == 0 {
		return res
	}
	e.tr.call(trace.FnSubpel)
	useSATD := subme >= 3
	var pred block
	cost := func(mv MV) int {
		e.tr.interpLuma(trace.FnInterp, q.ref, q.sx, q.sy, mv, &pred, q.w, q.h)
		var m int
		if useSATD {
			m = e.tr.satdBlock(trace.FnSubpel, q.src, q.sx, q.sy, &pred)
		} else {
			m = e.tr.sadBlock(trace.FnSubpel, q.src, q.sx, q.sy, &pred)
		}
		return m + q.lambda*mvBits(MV{mv.X - q.mvp.X, mv.Y - q.mvp.Y})
	}
	refine := func(step int32, iters int) {
		for it := 0; it < iters; it++ {
			improved := false
			c := res.mv
			for _, d := range [4]MV{{step, 0}, {-step, 0}, {0, step}, {0, -step}} {
				mv := MV{c.X + d.X, c.Y + d.Y}
				// Keep fractional reads within padding.
				ix := q.sx + int(mv.X>>2)
				iy := q.sy + int(mv.Y>>2)
				if ix < -(frame.Pad-4) || iy < -(frame.Pad-4) ||
					ix > q.src.W+(frame.Pad-4)-q.w || iy > q.src.H+(frame.Pad-4)-q.h {
					continue
				}
				cst := cost(mv)
				better := cst < res.cost
				e.tr.branch(trace.FnSubpel, siteMECmp, better)
				if better {
					res.cost = cst
					res.mv = mv
					improved = true
				}
			}
			e.tr.loop(trace.FnSubpel, siteSubpelLoop, 4)
			if !improved {
				break
			}
		}
	}
	// Seed the refinement cost with the current metric re-evaluated under
	// the sub-pel metric so comparisons are apples-to-apples.
	res.cost = cost(res.mv)
	refine(2, half)
	refine(1, quarter)
	return res
}
