package bits

import (
	"testing"
	"testing/quick"
)

func TestWriteReadBitsRoundtrip(t *testing.T) {
	w := NewWriter()
	w.WriteBits(0b101, 3)
	w.WriteBits(0xABCD, 16)
	w.WriteBit(true)
	w.WriteBits(0, 5)
	data := w.Bytes()
	r := NewReader(data)
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Fatalf("3 bits: %b", v)
	}
	if v, _ := r.ReadBits(16); v != 0xABCD {
		t.Fatalf("16 bits: %x", v)
	}
	if b, _ := r.ReadBit(); !b {
		t.Fatal("bit")
	}
	if v, _ := r.ReadBits(5); v != 0 {
		t.Fatalf("5 bits: %d", v)
	}
}

func TestUERoundtripQuick(t *testing.T) {
	f := func(vals []uint32) bool {
		w := NewWriter()
		for _, v := range vals {
			w.WriteUE(v % (1 << 24))
		}
		r := NewReader(w.Bytes())
		for _, v := range vals {
			got, err := r.ReadUE()
			if err != nil || got != v%(1<<24) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSERoundtripQuick(t *testing.T) {
	f := func(vals []int32) bool {
		w := NewWriter()
		for _, v := range vals {
			w.WriteSE(v % (1 << 20))
		}
		r := NewReader(w.Bytes())
		for _, v := range vals {
			got, err := r.ReadSE()
			if err != nil || got != v%(1<<20) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUEBitsMatchesWriter(t *testing.T) {
	for _, v := range []uint32{0, 1, 2, 3, 7, 8, 100, 1 << 15, 1<<20 - 1} {
		w := NewWriter()
		w.WriteUE(v)
		if int(w.BitsWritten()) != UEBits(v) {
			t.Errorf("UEBits(%d) = %d, writer used %d", v, UEBits(v), w.BitsWritten())
		}
	}
}

func TestSEBitsMatchesWriter(t *testing.T) {
	for _, v := range []int32{0, 1, -1, 2, -2, 17, -300, 1 << 15} {
		w := NewWriter()
		w.WriteSE(v)
		if int(w.BitsWritten()) != SEBits(v) {
			t.Errorf("SEBits(%d) = %d, writer used %d", v, SEBits(v), w.BitsWritten())
		}
	}
}

func TestKnownExpGolombCodes(t *testing.T) {
	// ue(0) = "1", ue(1) = "010", ue(2) = "011", ue(3) = "00100".
	w := NewWriter()
	w.WriteUE(0)
	w.WriteUE(1)
	w.WriteUE(2)
	w.WriteUE(3)
	// Bit string: 1 010 011 00100 -> 1010 0110 0100 0000
	data := w.Bytes()
	if len(data) != 2 || data[0] != 0xA6 || data[1] != 0x40 {
		t.Fatalf("exp-Golomb encoding wrong: % x", data)
	}
}

func TestAlignByte(t *testing.T) {
	w := NewWriter()
	w.WriteBits(1, 3)
	w.AlignByte()
	if w.BitsWritten() != 8 {
		t.Fatalf("bits after align: %d", w.BitsWritten())
	}
	w.WriteBits(0xFF, 8)
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	r.AlignByte()
	if v, _ := r.ReadBits(8); v != 0xFF {
		t.Fatalf("post-align byte %x", v)
	}
}

func TestReaderUnderflow(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal("first byte should read")
	}
	if _, err := r.ReadBits(1); err != ErrUnderflow {
		t.Fatalf("want underflow, got %v", err)
	}
	// ReadUE on a stream of zeros reports malformed/underflow, not a hang.
	r2 := NewReader([]byte{0, 0, 0, 0})
	if _, err := r2.ReadUE(); err == nil {
		t.Fatal("all-zero UE should error")
	}
}

func TestWriterReusableAfterBytes(t *testing.T) {
	w := NewWriter()
	w.WriteUE(5)
	first := len(w.Bytes())
	w.WriteUE(7)
	if len(w.Bytes()) <= first {
		t.Fatal("writer should keep appending after Bytes()")
	}
}

func BenchmarkWriteUE(b *testing.B) {
	w := NewWriter()
	for i := 0; i < b.N; i++ {
		w.WriteUE(uint32(i) & 0xFFF)
	}
}

func BenchmarkReadUE(b *testing.B) {
	w := NewWriter()
	for i := 0; i < 4096; i++ {
		w.WriteUE(uint32(i) & 0xFF)
	}
	data := w.Bytes()
	b.ResetTimer()
	r := NewReader(data)
	for i := 0; i < b.N; i++ {
		if _, err := r.ReadUE(); err != nil {
			r = NewReader(data)
		}
	}
}
