// Package bits implements the bit-level bitstream layer of the codec: an
// MSB-first bit writer and reader with unsigned and signed exponential-
// Golomb codes, the variable-length entropy primitives used by the
// coefficient coder.
package bits

import (
	"errors"
	"math/bits"
)

// Writer accumulates a bitstream MSB-first.
type Writer struct {
	buf  []byte
	cur  uint64 // pending bits, left-aligned within nbits
	ncur uint   // number of pending bits (< 8 after flushes)
	n    int64  // total bits written
}

// NewWriter returns an empty bitstream writer.
func NewWriter() *Writer { return &Writer{} }

// BitsWritten returns the total number of bits written so far.
func (w *Writer) BitsWritten() int64 { return w.n }

// WriteBits writes the low `n` bits of v, MSB first. n must be <= 32.
func (w *Writer) WriteBits(v uint32, n uint) {
	if n == 0 {
		return
	}
	w.n += int64(n)
	w.cur = w.cur<<n | uint64(v&((1<<n)-1))
	w.ncur += n
	for w.ncur >= 8 {
		w.ncur -= 8
		w.buf = append(w.buf, byte(w.cur>>w.ncur))
	}
}

// WriteBit writes a single bit.
func (w *Writer) WriteBit(b bool) {
	if b {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
}

// WriteUE writes v as an unsigned exponential-Golomb code.
func (w *Writer) WriteUE(v uint32) {
	x := v + 1
	n := uint(bits.Len32(x))
	w.WriteBits(0, n-1)
	w.WriteBits(x, n)
}

// WriteSE writes v as a signed exponential-Golomb code using the H.264
// mapping (positive values first).
func (w *Writer) WriteSE(v int32) {
	w.WriteUE(seToUE(v))
}

// seToUE maps a signed value onto the unsigned exp-Golomb alphabet.
func seToUE(v int32) uint32 {
	if v > 0 {
		return uint32(v)*2 - 1
	}
	return uint32(-v) * 2
}

// UEBits returns the length in bits of the unsigned exp-Golomb code for v.
func UEBits(v uint32) int {
	return 2*bits.Len32(v+1) - 1
}

// SEBits returns the length in bits of the signed exp-Golomb code for v.
func SEBits(v int32) int { return UEBits(seToUE(v)) }

// AlignByte pads the stream with zero bits to the next byte boundary.
func (w *Writer) AlignByte() {
	if w.ncur != 0 {
		pad := 8 - w.ncur
		w.WriteBits(0, pad)
	}
}

// Bytes flushes any partial byte (zero-padded) and returns the stream. The
// writer remains usable; subsequent writes start byte-aligned.
func (w *Writer) Bytes() []byte {
	w.AlignByte()
	return w.buf
}

// ErrUnderflow is returned when a Reader runs out of bits.
var ErrUnderflow = errors.New("bits: read past end of stream")

// Reader consumes a bitstream produced by Writer.
type Reader struct {
	buf []byte
	pos int64 // bit position
}

// NewReader returns a reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// BitsRead returns the number of bits consumed so far.
func (r *Reader) BitsRead() int64 { return r.pos }

// ReadBits reads n bits MSB-first. n must be <= 32.
func (r *Reader) ReadBits(n uint) (uint32, error) {
	if r.pos+int64(n) > int64(len(r.buf))*8 {
		return 0, ErrUnderflow
	}
	var v uint32
	for i := uint(0); i < n; i++ {
		byteIdx := r.pos >> 3
		bitIdx := uint(7 - r.pos&7)
		v = v<<1 | uint32(r.buf[byteIdx]>>bitIdx)&1
		r.pos++
	}
	return v, nil
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (bool, error) {
	v, err := r.ReadBits(1)
	return v == 1, err
}

// ReadUE reads an unsigned exponential-Golomb code.
func (r *Reader) ReadUE() (uint32, error) {
	zeros := uint(0)
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b {
			break
		}
		zeros++
		if zeros > 31 {
			return 0, errors.New("bits: malformed exp-Golomb code")
		}
	}
	rest, err := r.ReadBits(zeros)
	if err != nil {
		return 0, err
	}
	return 1<<zeros | rest - 1, nil
}

// ReadSE reads a signed exponential-Golomb code.
func (r *Reader) ReadSE() (int32, error) {
	u, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	if u%2 == 1 {
		return int32(u/2 + 1), nil
	}
	return -int32(u / 2), nil
}

// AlignByte skips to the next byte boundary.
func (r *Reader) AlignByte() {
	r.pos = (r.pos + 7) &^ 7
}
