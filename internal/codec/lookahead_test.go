package codec

import (
	"testing"

	"repro/internal/frame"
)

// syntheticCosts fabricates lookahead costs for unit-testing the type
// decision without running pixel analysis.
func syntheticCosts(n int, intra, fwd func(i int) int) *lookaheadCosts {
	lc := &lookaheadCosts{intra: make([]int, n), fwd: make([]int, n), bwd: make([]int, n)}
	for i := 0; i < n; i++ {
		lc.intra[i] = intra(i)
		lc.fwd[i] = fwd(i)
		lc.bwd[i] = fwd(i)
	}
	return lc
}

func newTypeEncoder(t *testing.T, mutate func(*Options)) *Encoder {
	t.Helper()
	opt := Defaults()
	if mutate != nil {
		mutate(&opt)
	}
	enc, err := NewEncoder(64, 64, 30, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func dummyFrames(n int) []*frame.Frame {
	out := make([]*frame.Frame, n)
	for i := range out {
		out[i] = frame.New(64, 64)
		out[i].PTS = i
	}
	return out
}

func TestDecideTypesFirstFrameIsI(t *testing.T) {
	enc := newTypeEncoder(t, nil)
	lc := syntheticCosts(5, func(int) int { return 1000 }, func(int) int { return 100 })
	types := enc.decideTypes(dummyFrames(5), lc)
	if types[0] != FrameI {
		t.Fatal("first frame must be I")
	}
}

func TestDecideTypesSceneCut(t *testing.T) {
	enc := newTypeEncoder(t, func(o *Options) { o.BFrames = 0 })
	// Frame 3 has inter cost equal to intra cost: a hard cut.
	lc := syntheticCosts(6, func(int) int { return 1000 }, func(i int) int {
		if i == 3 {
			return 1000
		}
		return 150
	})
	types := enc.decideTypes(dummyFrames(6), lc)
	if types[3] != FrameI {
		t.Fatalf("cut frame typed %v", types[3])
	}
	if types[2] != FrameP || types[4] != FrameP {
		t.Fatalf("neighbours of the cut mis-typed: %v", types)
	}
}

func TestDecideTypesScenecutDisabled(t *testing.T) {
	enc := newTypeEncoder(t, func(o *Options) { o.Scenecut = 0; o.BFrames = 0 })
	lc := syntheticCosts(6, func(int) int { return 1000 }, func(i int) int { return 1000 })
	types := enc.decideTypes(dummyFrames(6), lc)
	for i := 1; i < 6; i++ {
		if types[i] != FrameP {
			t.Fatalf("scenecut disabled but frame %d is %v", i, types[i])
		}
	}
}

func TestDecideTypesKeyint(t *testing.T) {
	enc := newTypeEncoder(t, func(o *Options) { o.Scenecut = 0; o.BFrames = 0; o.KeyintMax = 4 })
	lc := syntheticCosts(10, func(int) int { return 1000 }, func(int) int { return 100 })
	types := enc.decideTypes(dummyFrames(10), lc)
	for _, i := range []int{0, 4, 8} {
		if types[i] != FrameI {
			t.Fatalf("keyint 4: frame %d is %v (%v)", i, types[i], types)
		}
	}
}

func TestDecideTypesBAdaptive(t *testing.T) {
	// Low-motion frames become B under b-adapt 1; high-motion do not.
	enc := newTypeEncoder(t, func(o *Options) { o.BFrames = 3; o.BAdapt = 1 })
	lc := syntheticCosts(8, func(int) int { return 1000 }, func(i int) int {
		if i == 4 {
			return 900 // high motion: stays P
		}
		return 100 // low motion: B-eligible
	})
	types := enc.decideTypes(dummyFrames(8), lc)
	if types[4] != FrameP && types[4] != FrameI {
		t.Fatalf("high-motion frame typed %v", types[4])
	}
	bCount := 0
	for _, ft := range types {
		if ft == FrameB {
			bCount++
		}
	}
	if bCount == 0 {
		t.Fatalf("no B frames assigned: %v", types)
	}
}

func TestDecideTypesBRunBounded(t *testing.T) {
	enc := newTypeEncoder(t, func(o *Options) { o.BFrames = 2; o.BAdapt = 0; o.Scenecut = 0 })
	lc := syntheticCosts(12, func(int) int { return 1000 }, func(int) int { return 10 })
	types := enc.decideTypes(dummyFrames(12), lc)
	run := 0
	for _, ft := range types {
		if ft == FrameB {
			run++
			if run > 2 {
				t.Fatalf("B run exceeds limit: %v", types)
			}
		} else {
			run = 0
		}
	}
	// The final frame must not be B (no closing anchor).
	if types[len(types)-1] == FrameB {
		t.Fatalf("trailing B frame: %v", types)
	}
}

func TestDecideTypesFrameBeforeIStaysP(t *testing.T) {
	enc := newTypeEncoder(t, func(o *Options) { o.BFrames = 3; o.BAdapt = 0; o.KeyintMax = 5; o.Scenecut = 0 })
	lc := syntheticCosts(10, func(int) int { return 1000 }, func(int) int { return 10 })
	types := enc.decideTypes(dummyFrames(10), lc)
	for i := 1; i < len(types); i++ {
		if types[i] == FrameI && types[i-1] == FrameB {
			t.Fatalf("B frame immediately before I at %d: %v", i, types)
		}
	}
}

func TestRunLookaheadProducesOrderedCosts(t *testing.T) {
	// Real frames: a static pair and a scene-cut pair give very different
	// forward costs.
	clip := makeClip(t, "desktop", 4, 8)
	enc := newTypeEncoderDims(t, clip[0].Width, clip[0].Height)
	lc := enc.runLookahead(clip)
	if len(lc.intra) != 4 || len(lc.fwd) != 4 {
		t.Fatal("cost arrays sized wrong")
	}
	if lc.fwd[0] != lc.intra[0] {
		t.Fatal("frame 0 fwd must equal intra (no reference)")
	}
	for i := 1; i < 4; i++ {
		// Static screen content: inter must be far cheaper than intra.
		if lc.fwd[i] >= lc.intra[i] {
			t.Fatalf("frame %d: static content fwd %d >= intra %d", i, lc.fwd[i], lc.intra[i])
		}
	}
}

func newTypeEncoderDims(t *testing.T, w, h int) *Encoder {
	t.Helper()
	enc, err := NewEncoder(w, h, 30, Defaults(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}
