package codec

import (
	"math"

	"repro/internal/codec/transform"
	"repro/internal/trace"
)

// lambdaTab maps QP to the Lagrange multiplier used in SAD/SATD mode costs,
// following x264's lambda = 2^((qp-12)/6) scaling.
var lambdaTab [transform.MaxQP + 1]int

func init() {
	for qp := range lambdaTab {
		l := math.Exp2(float64(qp-12) / 6)
		lambdaTab[qp] = int(math.Max(1, math.Round(l)))
	}
}

func lambdaFor(qp int) int { return lambdaTab[clampInt(qp, 0, transform.MaxQP)] }

// Frame-type QP offsets relative to the P-frame quantizer, as in x264's
// ip_ratio / pb_ratio defaults.
func typeQPOffset(t FrameType) int {
	switch t {
	case FrameI:
		return -3
	case FrameB:
		return +2
	default:
		return 0
	}
}

// rateControl implements the six x264 rate-control modes at frame and
// macroblock granularity (§II-B1). CBR is the only mode that adjusts inside
// a frame (macroblock granularity); the others pick a frame QP and let AQ
// redistribute it spatially.
type rateControl struct {
	opt         *Options
	fps         int
	pixels      int     // per frame
	frameTarget float64 // bits per frame for bitrate-driven modes

	// Cross-frame state.
	totalBits  int64
	framesDone int
	abrQP      float64 // ABR's running frame QP

	// VBV state.
	vbvFill  float64
	vbvBoost int

	// Two-pass state: per-display-frame bits from pass 1 and its QP.
	pass1Bits []int64
	pass1QP   int

	// AQ state: running mean of log2(variance).
	aqAvg float64
	aqN   int

	// CBR in-frame state.
	frameBitsStart int64
	rowAdj         int
}

func newRateControl(opt *Options, w, h, fps int) *rateControl {
	rc := &rateControl{opt: opt, fps: fps, pixels: w * h, aqAvg: 8}
	if opt.BitrateKbps > 0 && fps > 0 {
		rc.frameTarget = float64(opt.BitrateKbps) * 1000 / float64(fps)
	}
	switch opt.RC {
	case RCABR, RCCBR, RCABR2:
		rc.abrQP = float64(rc.qpFromBpp())
	case RCVBV:
		rc.vbvFill = float64(opt.VBVBufKbits) * 1000 / 2
	}
	rc.pass1QP = 28
	return rc
}

// qpFromBpp estimates a starting quantizer from the target bits-per-pixel,
// the classic rate-model seed.
func (rc *rateControl) qpFromBpp() int {
	bpp := rc.frameTarget / float64(rc.pixels)
	if bpp <= 0 {
		return 26
	}
	qp := 20 - 6*math.Log2(bpp/0.08)
	return clampInt(int(math.Round(qp)), 4, transform.MaxQP)
}

// frameQP returns the base quantizer for the next frame of the given type.
// displayIdx indexes pass-1 statistics in two-pass mode.
func (rc *rateControl) frameQP(t FrameType, displayIdx int) int {
	var qp int
	switch rc.opt.RC {
	case RCCQP:
		qp = rc.opt.QP + typeQPOffset(t)
	case RCCRF:
		qp = rc.opt.CRF + typeQPOffset(t)
	case RCABR, RCCBR:
		qp = int(math.Round(rc.abrQP)) + typeQPOffset(t)
	case RCABR2:
		qp = rc.twoPassQP(t, displayIdx)
	case RCVBV:
		qp = rc.opt.CRF + typeQPOffset(t) + rc.vbvBoost
	}
	return clampInt(qp, 0, transform.MaxQP)
}

// twoPassQP allocates bits proportionally to pass-1 complexity^0.6 (the
// qcomp curve) and converts the per-frame allocation into a QP correction.
func (rc *rateControl) twoPassQP(t FrameType, displayIdx int) int {
	if len(rc.pass1Bits) == 0 || displayIdx >= len(rc.pass1Bits) {
		return clampInt(int(rc.abrQP)+typeQPOffset(t), 0, transform.MaxQP)
	}
	const qcomp = 0.6
	var sum float64
	for _, b := range rc.pass1Bits {
		sum += math.Pow(float64(b), qcomp)
	}
	total := rc.frameTarget * float64(len(rc.pass1Bits))
	alloc := total * math.Pow(float64(rc.pass1Bits[displayIdx]), qcomp) / sum
	// QP moves 6 per doubling of the pass1-bits / allocation ratio.
	d := 6 * math.Log2(float64(rc.pass1Bits[displayIdx])/math.Max(1, alloc))
	return clampInt(rc.pass1QP+int(math.Round(d))+typeQPOffset(t), 0, transform.MaxQP)
}

// beginFrame resets in-frame state; bitsSoFar is the writer position.
func (rc *rateControl) beginFrame(bitsSoFar int64) {
	rc.frameBitsStart = bitsSoFar
	rc.rowAdj = 0
}

// mbQP returns the quantizer for one macroblock given the frame base QP and
// the block's luma variance (used when AQ is enabled).
func (rc *rateControl) mbQP(frameQP int, variance float64, aq bool) int {
	qp := frameQP
	if aq && rc.opt.AQMode > 0 {
		lv := math.Log2(variance + 1)
		// Exponential moving average keeps the offset centred.
		rc.aqN++
		w := 1.0 / math.Min(float64(rc.aqN), 512)
		rc.aqAvg += (lv - rc.aqAvg) * w
		off := int(math.Round(1.0 * (lv - rc.aqAvg) / 2))
		qp += clampInt(off, -4, 4)
	}
	if rc.opt.RC == RCCBR {
		qp += rc.rowAdj
	}
	return clampInt(qp, 0, transform.MaxQP)
}

// endRow updates CBR's macroblock-level feedback after each macroblock row.
// rowsDone/rowsTotal prorate the frame budget; bitsSoFar is the writer
// position.
func (rc *rateControl) endRow(rowsDone, rowsTotal int, bitsSoFar int64) {
	if rc.opt.RC != RCCBR || rc.frameTarget <= 0 {
		return
	}
	used := float64(bitsSoFar - rc.frameBitsStart)
	expected := rc.frameTarget * float64(rowsDone) / float64(rowsTotal)
	switch {
	case used > 1.4*expected:
		rc.rowAdj = clampInt(rc.rowAdj+2, -3, 6)
	case used > 1.15*expected:
		rc.rowAdj = clampInt(rc.rowAdj+1, -3, 6)
	case used < 0.6*expected:
		rc.rowAdj = clampInt(rc.rowAdj-1, -3, 6)
	}
}

// postFrame feeds back the coded size of the frame just finished.
func (rc *rateControl) postFrame(bitsThisFrame int64) {
	rc.totalBits += bitsThisFrame
	rc.framesDone++
	switch rc.opt.RC {
	case RCABR, RCCBR:
		if rc.frameTarget > 0 {
			want := rc.frameTarget * float64(rc.framesDone)
			ratio := float64(rc.totalBits) / math.Max(1, want)
			adj := 6 * math.Log2(ratio)
			// CBR reacts faster than ABR, which is allowed long-term drift.
			gain := 0.5
			if rc.opt.RC == RCCBR {
				gain = 1.0
			}
			rc.abrQP = clampFloat(rc.abrQP+gain*clampFloat(adj, -3, 3), 1, transform.MaxQP)
		}
	case RCVBV:
		fill := float64(rc.opt.VBVMaxKbps) * 1000 / float64(rc.fps)
		bufSize := float64(rc.opt.VBVBufKbits) * 1000
		rc.vbvFill += fill - float64(bitsThisFrame)
		if rc.vbvFill < 0 {
			rc.vbvFill = 0
		}
		if rc.vbvFill > bufSize {
			rc.vbvFill = bufSize
		}
		switch {
		case rc.vbvFill < 0.25*bufSize:
			rc.vbvBoost = clampInt(rc.vbvBoost+2, 0, 10)
		case rc.vbvFill > 0.6*bufSize && rc.vbvBoost > 0:
			rc.vbvBoost--
		}
	}
}

func clampFloat(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// traceRC charges rate-control bookkeeping to the simulator.
func (e *Encoder) traceRC() {
	e.tr.call(trace.FnRC)
	e.tr.ops(trace.FnRC, 40)
}
