package codec

import (
	"repro/internal/frame"
	"repro/internal/trace"
)

// tracer gates instrumentation. Every hot routine in the codec funnels its
// trace events through one of these; `on` is toggled per macroblock by the
// sampling policy so that large sweeps only pay for a representative subset
// of events while the pixel work itself always runs in full.
type tracer struct {
	sink   trace.Sink
	on     bool
	mask   uint64 // sample MB when (counter & mask) == 0
	ctr    uint64
	factor float64 // scale factor to recover full-trace counts
}

func newTracer(sink trace.Sink, sampleLog2 int) tracer {
	if sink == nil {
		sink = trace.Nop{}
	}
	if sampleLog2 < 0 {
		sampleLog2 = 0
	}
	return tracer{
		sink:   sink,
		mask:   (1 << uint(sampleLog2)) - 1,
		factor: float64(int(1) << uint(sampleLog2)),
	}
}

// nextMB advances the macroblock counter and arms or disarms event
// emission for the new macroblock.
func (t *tracer) nextMB() {
	t.on = t.ctr&t.mask == 0
	t.ctr++
}

// SampleFactor returns the multiplier that scales sampled event counts back
// to full-trace magnitudes.
func (t *tracer) SampleFactor() float64 { return t.factor }

func (t *tracer) ops(fn trace.FuncID, n int) {
	if t.on {
		t.sink.Ops(fn, n)
	}
}

func (t *tracer) call(fn trace.FuncID) {
	if t.on {
		t.sink.Call(fn)
	}
}

func (t *tracer) branch(fn trace.FuncID, site trace.BranchID, taken bool) {
	if t.on {
		t.sink.Branch(fn, site, taken)
	}
}

func (t *tracer) loop(fn trace.FuncID, site trace.BranchID, iters int) {
	if t.on {
		t.sink.Loop(fn, site, iters)
	}
}

func (t *tracer) load2D(fn trace.FuncID, p *frame.Plane, x, y, w, h int) {
	if t.on {
		t.sink.Load2D(fn, p.Addr(x, y), w, h, p.Stride)
	}
}

func (t *tracer) store2D(fn trace.FuncID, p *frame.Plane, x, y, w, h int) {
	if t.on {
		t.sink.Store2D(fn, p.Addr(x, y), w, h, p.Stride)
	}
}

func (t *tracer) load(fn trace.FuncID, addr uint64, n int) {
	if t.on {
		t.sink.Load(fn, addr, n)
	}
}

func (t *tracer) store(fn trace.FuncID, addr uint64, n int) {
	if t.on {
		t.sink.Store(fn, addr, n)
	}
}

// --- instrumented pixel kernels ---------------------------------------------

// sad computes the SAD between the w x h source block at (ax, ay) and the
// reference block at (bx, by), reporting the work to the tracer under fn.
func (t *tracer) sad(fn trace.FuncID, a *frame.Plane, ax, ay int, b *frame.Plane, bx, by, w, h int) int {
	s := frame.SAD(a, ax, ay, b, bx, by, w, h)
	if t.on {
		t.sink.Call(fn)
		t.sink.Ops(fn, w*h/8+12) // SIMD: one SAD op per 8-16 pixels
		t.sink.Load2D(fn, a.Addr(ax, ay), w, h, a.Stride)
		t.sink.Load2D(fn, b.Addr(bx, by), w, h, b.Stride)
	}
	return s
}

// sadThresh is sad with row-level early abort once the accumulated
// difference exceeds limit; exhaustive search uses it to keep its cost
// proportional to usefulness, as real encoders do.
func (t *tracer) sadThresh(fn trace.FuncID, a *frame.Plane, ax, ay int, b *frame.Plane, bx, by, w, h, limit int) int {
	s := 0
	rows := 0
	for j := 0; j < h; j++ {
		s += frame.SADRow(a.RowFrom(ax, ay+j, w), b.RowFrom(bx, by+j, w))
		rows++
		if s > limit {
			break
		}
	}
	if t.on {
		t.sink.Call(fn)
		t.sink.Ops(fn, w*rows/8+12)
		t.sink.Load2D(fn, a.Addr(ax, ay), w, rows, a.Stride)
		t.sink.Load2D(fn, b.Addr(bx, by), w, rows, b.Stride)
	}
	return s
}

// satd computes the Hadamard-transformed difference metric.
func (t *tracer) satd(fn trace.FuncID, a *frame.Plane, ax, ay int, b *frame.Plane, bx, by, w, h int) int {
	s := frame.SATD(a, ax, ay, b, bx, by, w, h)
	if t.on {
		t.sink.Call(fn)
		t.sink.Ops(fn, w*h/4+24) // Hadamard vectorizes, ~2x SAD cost
		t.sink.Load2D(fn, a.Addr(ax, ay), w, h, a.Stride)
		t.sink.Load2D(fn, b.Addr(bx, by), w, h, b.Stride)
	}
	return s
}

// blockVariance reports the AQ activity measure for a block.
func (t *tracer) blockVariance(p *frame.Plane, x, y, w, h int) float64 {
	v := p.BlockVariance(x, y, w, h)
	if t.on {
		t.sink.Call(trace.FnVariance)
		t.sink.Ops(trace.FnVariance, w*h/8+12)
		t.sink.Load2D(trace.FnVariance, p.Addr(x, y), w, h, p.Stride)
	}
	return v
}

// varianceEvents emits exactly the events blockVariance would, for blocks
// whose value comes from the shared analysis artifact's variance map.
func (t *tracer) varianceEvents(p *frame.Plane, x, y, w, h int) {
	if t.on {
		t.sink.Call(trace.FnVariance)
		t.sink.Ops(trace.FnVariance, w*h/8+12)
		t.sink.Load2D(trace.FnVariance, p.Addr(x, y), w, h, p.Stride)
	}
}

// block is a fixed-capacity pixel block used for predictions and
// reconstruction staging (up to 16x16).
type block struct {
	w, h int
	pix  [256]uint8
}

func (b *block) at(x, y int) uint8     { return b.pix[y*b.w+x] }
func (b *block) set(x, y int, v uint8) { b.pix[y*b.w+x] = v }
func (b *block) row(y int) []uint8     { return b.pix[y*b.w : y*b.w+b.w] }

// sadBlock computes SAD between a plane block and a staged block.
func (t *tracer) sadBlock(fn trace.FuncID, a *frame.Plane, ax, ay int, b *block) int {
	s := 0
	for j := 0; j < b.h; j++ {
		s += frame.SADRow(a.RowFrom(ax, ay+j, b.w), b.row(j))
	}
	if t.on {
		t.sink.Call(fn)
		t.sink.Ops(fn, b.w*b.h/8+12)
		t.sink.Load2D(fn, a.Addr(ax, ay), b.w, b.h, a.Stride)
	}
	return s
}

// satdBlock computes SATD between a plane block and a staged block (4x4
// granularity; block dims must be multiples of 4).
func (t *tracer) satdBlock(fn trace.FuncID, a *frame.Plane, ax, ay int, b *block) int {
	var total int
	for j := 0; j < b.h; j += 4 {
		for i := 0; i < b.w; i += 4 {
			total += frame.Hadamard4x4Packed(
				frame.PackDiff4(a.RowFrom(ax+i, ay+j, 4), b.row(j)[i:i+4]),
				frame.PackDiff4(a.RowFrom(ax+i, ay+j+1, 4), b.row(j + 1)[i:i+4]),
				frame.PackDiff4(a.RowFrom(ax+i, ay+j+2, 4), b.row(j + 2)[i:i+4]),
				frame.PackDiff4(a.RowFrom(ax+i, ay+j+3, 4), b.row(j + 3)[i:i+4]),
			)
		}
	}
	if t.on {
		t.sink.Call(fn)
		t.sink.Ops(fn, b.w*b.h/4+24)
		t.sink.Load2D(fn, a.Addr(ax, ay), b.w, b.h, a.Stride)
	}
	return total / 2
}

// hadamardAbs is the scalar reference transform satdBlock's SWAR path is
// pinned against in pixels_test.go.
func hadamardAbs(d *[16]int32) int32 {
	for i := 0; i < 16; i += 4 {
		s0 := d[i] + d[i+1]
		s1 := d[i] - d[i+1]
		s2 := d[i+2] + d[i+3]
		s3 := d[i+2] - d[i+3]
		d[i], d[i+1], d[i+2], d[i+3] = s0+s2, s1+s3, s0-s2, s1-s3
	}
	var sum int32
	for i := 0; i < 4; i++ {
		s0 := d[i] + d[i+4]
		s1 := d[i] - d[i+4]
		s2 := d[i+8] + d[i+12]
		s3 := d[i+8] - d[i+12]
		for _, v := range [4]int32{s0 + s2, s1 + s3, s0 - s2, s1 - s3} {
			if v < 0 {
				v = -v
			}
			sum += v
		}
	}
	return sum
}

func clampU8(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
