package codec

import (
	"repro/internal/frame"
	"repro/internal/trace"
)

// lookaheadCosts holds the per-frame complexity estimates the frame-type
// decision runs on: a cheap intra cost and a motion-compensated cost
// against the previous (and, for b-adapt 2, the next) frame, measured on a
// sparse grid of 8x8 blocks.
type lookaheadCosts struct {
	intra []int // per frame
	fwd   []int // vs previous frame (frame 0: == intra)
	bwd   []int // vs next frame (only populated for b-adapt 2)
}

// lookaheadGrid is the sampling stride in 8x8 blocks (evaluate one of every
// lookaheadGrid^2 blocks).
const lookaheadGrid = 2

// runLookahead estimates complexities for all frames. With workers
// configured it fans out per frame (see parallel.go); the serial loop below
// is the reference schedule the parallel path reproduces tick for tick.
func (e *Encoder) runLookahead(frames []*frame.Frame) *lookaheadCosts {
	if w := e.parallelWorkers(); w > 1 && len(frames) > 1 {
		return e.runLookaheadParallel(frames, w)
	}
	n := len(frames)
	lc := &lookaheadCosts{
		intra: make([]int, n),
		fwd:   make([]int, n),
		bwd:   make([]int, n),
	}
	needBwd := e.opt.BAdapt >= 2 && e.opt.BFrames > 0
	for i, f := range frames {
		e.tr.call(trace.FnLookahead)
		lc.intra[i] = e.lookaheadIntra(f)
		if i > 0 {
			lc.fwd[i] = e.lookaheadInter(f, frames[i-1])
		} else {
			lc.fwd[i] = lc.intra[i]
		}
		if needBwd {
			if i+1 < n {
				lc.bwd[i] = e.lookaheadInter(f, frames[i+1])
			} else {
				lc.bwd[i] = lc.intra[i]
			}
		}
	}
	return lc
}

// lookaheadEpilogue charges the scalar epilogue the fused lookahead loop
// pays per block when -ftree-loop-distribution has not split it: the
// combined cost/variance loop nest defeats the vectorizer, so part of each
// block runs scalar.
func (e *Encoder) lookaheadEpilogue() {
	if !e.opt.Tune.DistributeLookahead {
		e.tr.ops(trace.FnLookahead, 26)
	}
}

// lookaheadIntra estimates the intra coding cost of a frame: SATD of sparse
// 8x8 blocks against their DC prediction.
func (e *Encoder) lookaheadIntra(f *frame.Frame) int {
	var pred block
	total := 0
	step := 8 * lookaheadGrid
	for y := 0; y+8 <= f.Height; y += step {
		for x := 0; x+8 <= f.Width; x += step {
			e.tr.nextMB()
			// DC prediction from the block's own mean: a cheap stand-in for
			// the best intra mode, adequate for relative comparisons.
			mean := uint8(0)
			var sum int
			for j := 0; j < 8; j++ {
				for _, v := range f.Y.RowFrom(x, y+j, 8) {
					sum += int(v)
				}
			}
			mean = uint8(sum / 64)
			pred.w, pred.h = 8, 8
			for i := range pred.pix[:64] {
				pred.pix[i] = mean
			}
			total += e.tr.satdBlock(trace.FnLookahead, &f.Y, x, y, &pred) + 400
			e.lookaheadEpilogue()
		}
	}
	return total
}

// lookaheadInter estimates the motion-compensated cost of cur given ref: a
// small diamond search per sparse 8x8 block.
func (e *Encoder) lookaheadInter(cur, ref *frame.Frame) int {
	total := 0
	step := 8 * lookaheadGrid
	for y := 0; y+8 <= cur.Height; y += step {
		for x := 0; x+8 <= cur.Width; x += step {
			e.tr.nextMB()
			best := e.tr.sad(trace.FnLookahead, &cur.Y, x, y, &ref.Y, x, y, 8, 8)
			cx, cy := 0, 0
			for it := 0; it < 8; it++ {
				improved := false
				for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nx := clampMVRange(cx+d[0], x, 8, cur.Width)
					ny := clampMVRange(cy+d[1], y, 8, cur.Height)
					s := e.tr.sad(trace.FnLookahead, &cur.Y, x, y, &ref.Y, x+nx, y+ny, 8, 8)
					better := s < best
					e.tr.branch(trace.FnLookahead, siteLookCmp, better)
					if better {
						best, cx, cy = s, nx, ny
						improved = true
					}
				}
				if !improved {
					break
				}
			}
			total += best
			e.lookaheadEpilogue()
		}
	}
	return total
}

// decideTypes assigns a frame type to every display frame using scenecut
// detection, the keyframe interval, and the configured B-frame policy.
func (e *Encoder) decideTypes(frames []*frame.Frame, lc *lookaheadCosts) []FrameType {
	n := len(frames)
	types := make([]FrameType, n)
	types[0] = FrameI
	sinceI := 0

	// Pass 1: place I frames (scenecut + keyint).
	for i := 1; i < n; i++ {
		sinceI++
		cut := false
		if e.opt.Scenecut > 0 {
			// A hard cut makes motion compensation no better than intra.
			thresh := 0.40 + 0.45*float64(100-e.opt.Scenecut)/100
			cut = float64(lc.fwd[i]) > thresh*float64(lc.intra[i])
		}
		if sinceI >= e.opt.KeyintMax || cut {
			types[i] = FrameI
			sinceI = 0
		} else {
			types[i] = FrameP
		}
	}

	// Pass 2: upgrade runs between anchors to B frames.
	if e.opt.BFrames > 0 {
		run := 0
		for i := 1; i < n-1; i++ {
			if types[i] != FrameP {
				run = 0
				continue
			}
			if types[i+1] == FrameI {
				// The frame before an I stays P so every B has two anchors.
				run = 0
				continue
			}
			eligible := false
			switch e.opt.BAdapt {
			case 0:
				eligible = true
			case 1:
				eligible = float64(lc.fwd[i]) < 0.5*float64(lc.intra[i])
			default: // 2: consider both temporal directions
				c := lc.fwd[i]
				if lc.bwd[i] < c {
					c = lc.bwd[i]
				}
				eligible = float64(c) < 0.55*float64(lc.intra[i])
			}
			if eligible && run < e.opt.BFrames {
				types[i] = FrameB
				run++
			} else {
				run = 0
			}
		}
	}
	return types
}
