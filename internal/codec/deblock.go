package codec

import (
	"repro/internal/codec/transform"
	"repro/internal/frame"
	"repro/internal/trace"
)

// Deblocking thresholds derived from the quantizer: alpha bounds the edge
// step that still counts as a blocking artifact (larger steps are assumed
// to be real edges), beta bounds the inner-pixel gradients. Both grow with
// QP like the quantization step itself.
func deblockAlphaBeta(qp, aOff, bOff int) (alpha, beta, tc int32) {
	qs := transform.QStep(clampInt(qp+2*aOff, 0, transform.MaxQP))
	alpha = qs * 2
	qs = transform.QStep(clampInt(qp+2*bOff, 0, transform.MaxQP))
	beta = qs
	tc = beta/4 + 1
	return
}

// deblockState is the per-frame context shared by encoder and decoder: the
// per-macroblock QP and kind maps that determine boundary strength.
type deblockState struct {
	mbw, mbh int
	qp       []int
	kind     []mbKind
}

func newDeblockState(mbw, mbh int) *deblockState {
	return &deblockState{mbw: mbw, mbh: mbh, qp: make([]int, mbw*mbh), kind: make([]mbKind, mbw*mbh)}
}

func (d *deblockState) set(mx, my, qp int, kind mbKind) {
	d.qp[my*d.mbw+mx] = qp
	d.kind[my*d.mbw+mx] = kind
}

// deblockMBRow filters the macroblock row `my` of the reconstruction (luma
// and both chroma planes): each macroblock's left vertical edge, top
// horizontal edge and internal transform-block edges, in raster order. This
// exact order is shared by the fused (per-row, lagged) and unfused
// (whole-frame) schedules, so both produce identical pixels; only the
// memory-access timing differs, which is the Graphite locality effect.
func deblockMBRow(t *tracer, fn trace.FuncID, rec *frame.Frame, st *deblockState, my, aOff, bOff int) {
	for mx := 0; mx < st.mbw; mx++ {
		t.nextMB()
		idx := my*st.mbw + mx
		qp := st.qp[idx]
		strong := st.kind[idx] == kindIntra
		// Vertical edge with the left neighbour.
		if mx > 0 {
			lqp := (qp + st.qp[idx-1] + 1) / 2
			s := strong || st.kind[idx-1] == kindIntra
			filterEdge(t, fn, &rec.Y, mx*16, my*16, 16, false, lqp, aOff, bOff, s)
			filterEdge(t, fn, &rec.Cb, mx*8, my*8, 8, false, chromaQP(lqp), aOff, bOff, s)
			filterEdge(t, fn, &rec.Cr, mx*8, my*8, 8, false, chromaQP(lqp), aOff, bOff, s)
		}
		// Horizontal edge with the top neighbour.
		if my > 0 {
			tqp := (qp + st.qp[idx-st.mbw] + 1) / 2
			s := strong || st.kind[idx-st.mbw] == kindIntra
			filterEdge(t, fn, &rec.Y, mx*16, my*16, 16, true, tqp, aOff, bOff, s)
			filterEdge(t, fn, &rec.Cb, mx*8, my*8, 8, true, chromaQP(tqp), aOff, bOff, s)
			filterEdge(t, fn, &rec.Cr, mx*8, my*8, 8, true, chromaQP(tqp), aOff, bOff, s)
		}
		// Internal 8x8 luma edges (transform-block boundaries), as in H.264.
		filterEdge(t, fn, &rec.Y, mx*16+8, my*16, 16, false, qp, aOff, bOff, false)
		filterEdge(t, fn, &rec.Y, mx*16, my*16+8, 16, true, qp, aOff, bOff, false)
	}
}

// filterEdge smooths one `length`-pixel block edge. For a vertical edge
// the boundary is the column x (pixels x-1 | x); for a horizontal edge the
// row y. Strong (intra) edges use a doubled clip range. The pixel work runs
// in filterEdgePacked (four pixels per lane word); filterEdgeScalar below is
// the per-pixel reference it is pinned against.
func filterEdge(t *tracer, fn trace.FuncID, rec *frame.Plane, x, y, length int, horizontal bool, qp, aOff, bOff int, strong bool) {
	alpha, beta, tc := deblockAlphaBeta(qp, aOff, bOff)
	if strong {
		tc *= 2
	}
	t.call(fn)
	filterEdgePacked(t, fn, rec, x, y, length, horizontal, alpha, beta, tc)
	// Memory traffic: the filter examines a 3+3 pixel band around the edge
	// (the H.264 strong filter reaches p2/q2) and rewrites the inner pair.
	if horizontal {
		t.load2D(fn, rec, x, y-3, length, 6)
		t.store2D(fn, rec, x, y-1, length, 2)
	} else {
		t.load2D(fn, rec, x-3, y, 6, length)
		t.store2D(fn, rec, x-1, y, 2, length)
	}
	t.ops(fn, 24+2*length) // branchy but partially vectorized
}

// filterEdgeScalar is the per-pixel reference implementation of filterEdge,
// kept for the SWAR equivalence tests (identical pixels and trace events).
func filterEdgeScalar(t *tracer, fn trace.FuncID, rec *frame.Plane, x, y, length int, horizontal bool, qp, aOff, bOff int, strong bool) {
	alpha, beta, tc := deblockAlphaBeta(qp, aOff, bOff)
	if strong {
		tc *= 2
	}
	t.call(fn)
	for k := 0; k < length; k++ {
		var p1, p0, q0, q1 int32
		if horizontal {
			p1 = int32(rec.At(x+k, y-2))
			p0 = int32(rec.At(x+k, y-1))
			q0 = int32(rec.At(x+k, y))
			q1 = int32(rec.At(x+k, y+1))
		} else {
			p1 = int32(rec.At(x-2, y+k))
			p0 = int32(rec.At(x-1, y+k))
			q0 = int32(rec.At(x, y+k))
			q1 = int32(rec.At(x+1, y+k))
		}
		filter := abs32(p0-q0) < alpha && abs32(p1-p0) < beta && abs32(q1-q0) < beta
		if k%4 == 0 {
			t.branch(fn, siteDeblockBS, filter)
		}
		if !filter {
			continue
		}
		delta := clip32(((q0-p0)*4+(p1-q1)+4)>>3, -tc, tc)
		np0 := clampU8(p0 + delta)
		nq0 := clampU8(q0 - delta)
		if horizontal {
			rec.Set(x+k, y-1, np0)
			rec.Set(x+k, y, nq0)
		} else {
			rec.Set(x-1, y+k, np0)
			rec.Set(x, y+k, nq0)
		}
	}
	// Memory traffic: the filter examines a 3+3 pixel band around the edge
	// (the H.264 strong filter reaches p2/q2) and rewrites the inner pair.
	if horizontal {
		t.load2D(fn, rec, x, y-3, length, 6)
		t.store2D(fn, rec, x, y-1, length, 2)
	} else {
		t.load2D(fn, rec, x-3, y, 6, length)
		t.store2D(fn, rec, x-1, y, 2, length)
	}
	t.ops(fn, 24+2*length) // branchy but partially vectorized
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func clip32(v, lo, hi int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
