package codec

import (
	"testing"
)

func TestDecoderRejectsGarbage(t *testing.T) {
	dec := NewDecoder(DecoderOptions{}, nil)
	for _, stream := range [][]byte{
		nil,
		{},
		{0x00},
		{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02},
	} {
		if _, _, err := dec.Decode(stream); err == nil {
			t.Fatalf("garbage stream %v accepted", stream)
		}
	}
}

func TestDecoderRejectsTruncation(t *testing.T) {
	frames := makeClip(t, "cricket", 6, 8)
	stream, _ := encodeClip(t, frames, Defaults())
	for _, cut := range []int{len(stream) / 4, len(stream) / 2, len(stream) - 3} {
		dec := NewDecoder(DecoderOptions{}, nil)
		if _, _, err := dec.Decode(stream[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecoderSurvivesCorruption(t *testing.T) {
	// Flipping bytes must never panic: either a clean error or a decode of
	// (wrong) pixels.
	frames := makeClip(t, "cricket", 6, 8)
	stream, _ := encodeClip(t, frames, Defaults())
	for pos := 8; pos < len(stream); pos += 37 {
		mutated := make([]byte, len(stream))
		copy(mutated, stream)
		mutated[pos] ^= 0xA5
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decoder panicked on corruption at byte %d: %v", pos, r)
				}
			}()
			dec := NewDecoder(DecoderOptions{}, nil)
			_, _, _ = dec.Decode(mutated)
		}()
	}
}

func TestDecoderHeaderSanity(t *testing.T) {
	// A header claiming absurd dimensions must be rejected before any
	// allocation.
	frames := makeClip(t, "cricket", 2, 8)
	stream, _ := encodeClip(t, frames, Defaults())
	// Rewrite the magic-adjacent mbw field with an enormous exp-Golomb
	// value by zeroing the first header byte after the magic.
	mutated := make([]byte, len(stream))
	copy(mutated, stream)
	mutated[4] = 0x00
	mutated[5] = 0x00
	dec := NewDecoder(DecoderOptions{}, nil)
	if _, _, err := dec.Decode(mutated); err == nil {
		t.Fatal("implausible header accepted")
	}
}

func TestDecodeDisplayOrderWithBFrames(t *testing.T) {
	frames := makeClip(t, "desktop", 12, 8)
	opt := Defaults()
	opt.BAdapt = 0 // force B usage
	stream, stats := encodeClip(t, frames, opt)
	if _, _, b := stats.CountTypes(); b == 0 {
		t.Skip("content produced no B frames")
	}
	out, info, err := NewDecoder(DecoderOptions{}, nil).Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	if info.Frames != len(frames) {
		t.Fatalf("header frames %d", info.Frames)
	}
	for i, f := range out {
		if f.PTS != i {
			t.Fatalf("display order broken: position %d has pts %d", i, f.PTS)
		}
	}
}

func TestDecoderInfoFields(t *testing.T) {
	frames := makeClip(t, "cat", 4, 4)
	stream, _ := encodeClip(t, frames, Defaults())
	_, info, err := NewDecoder(DecoderOptions{}, nil).Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	if info.Width != frames[0].Width || info.Height != frames[0].Height {
		t.Fatalf("info %dx%d vs %dx%d", info.Width, info.Height, frames[0].Width, frames[0].Height)
	}
	if info.FPS != 30 {
		t.Fatalf("fps %d", info.FPS)
	}
}

func TestDecoderCodedMetadata(t *testing.T) {
	frames := makeClip(t, "desktop", 8, 8)
	opt := Defaults()
	opt.BAdapt = 0
	stream, stats := encodeClip(t, frames, opt)
	_, info, err := NewDecoder(DecoderOptions{}, nil).Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Coded) != len(frames) {
		t.Fatalf("%d coded entries", len(info.Coded))
	}
	// Coding-order metadata matches the encoder's per-frame stats.
	if info.Coded[0].Type != FrameI || info.Coded[0].PTS != 0 {
		t.Fatalf("first coded frame %+v", info.Coded[0])
	}
	var total int64
	byPTS := map[int]FrameStats{}
	for _, fs := range stats.Frames {
		byPTS[fs.PTS] = fs
	}
	for _, m := range info.Coded {
		total += m.Bits
		want := byPTS[m.PTS]
		if m.Type != want.Type || m.QP != want.QP {
			t.Fatalf("coded meta %+v disagrees with encoder stats %+v", m, want)
		}
	}
	// Per-frame bits cover the stream except the sequence header.
	if total > stats.TotalBits || total < stats.TotalBits-256 {
		t.Fatalf("coded bits %d vs encoder total %d", total, stats.TotalBits)
	}
}
