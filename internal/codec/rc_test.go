package codec

import (
	"math"
	"testing"
)

// encodeWithRC encodes a clip under the given rate-control settings.
func encodeWithRC(t *testing.T, video string, frames int, rc RateControlMode, kbps int) *Stats {
	t.Helper()
	clip := makeClip(t, video, frames, 6)
	opt := Defaults()
	opt.RC = rc
	switch rc {
	case RCABR, RCABR2, RCCBR:
		opt.BitrateKbps = kbps
	case RCVBV:
		opt.VBVMaxKbps = kbps
		opt.VBVBufKbits = kbps
	}
	_, stats := encodeClip(t, clip, opt)
	return stats
}

func TestABRConvergesToTarget(t *testing.T) {
	const target = 800
	stats := encodeWithRC(t, "cricket", 30, RCABR, target)
	got := stats.BitrateKbps()
	if got < target*0.55 || got > target*1.6 {
		t.Fatalf("ABR produced %.0f kbps for a %d kbps target", got, target)
	}
}

func TestCBRTracksTargetTighterLongRun(t *testing.T) {
	const target = 800
	stats := encodeWithRC(t, "cricket", 30, RCCBR, target)
	got := stats.BitrateKbps()
	if got < target*0.55 || got > target*1.6 {
		t.Fatalf("CBR produced %.0f kbps for a %d kbps target", got, target)
	}
	// CBR regulates inside frames: the max/mean frame-size ratio of the
	// non-I frames stays moderate.
	var sum, maxBits float64
	n := 0
	for _, f := range stats.Frames {
		if f.Type == FrameI {
			continue
		}
		sum += float64(f.Bits)
		if float64(f.Bits) > maxBits {
			maxBits = float64(f.Bits)
		}
		n++
	}
	if n > 0 && maxBits > 8*sum/float64(n) {
		t.Fatalf("CBR frame sizes too bursty: max %.0f vs mean %.0f", maxBits, sum/float64(n))
	}
}

func TestTwoPassHitsTargetBetterThanOneSeesInPass1(t *testing.T) {
	const target = 700
	stats := encodeWithRC(t, "holi", 24, RCABR2, target)
	got := stats.BitrateKbps()
	if got < target*0.5 || got > target*1.7 {
		t.Fatalf("2-pass produced %.0f kbps for a %d kbps target", got, target)
	}
}

func TestVBVCapsRate(t *testing.T) {
	// A tight VBV on complex content must push QP up and reduce the rate
	// versus unconstrained CRF.
	clip := makeClip(t, "hall", 24, 6)
	opt := Defaults()
	opt.CRF = 18 // generous quality target
	_, free := encodeClip(t, clip, opt)

	opt.RC = RCVBV
	opt.VBVMaxKbps = int(free.BitrateKbps() / 3)
	opt.VBVBufKbits = opt.VBVMaxKbps / 2
	_, capped := encodeClip(t, clip, opt)
	if capped.TotalBits >= free.TotalBits {
		t.Fatalf("VBV did not constrain: %d vs %d bits", capped.TotalBits, free.TotalBits)
	}
}

func TestCQPMonotoneInQP(t *testing.T) {
	clip := makeClip(t, "game2", 8, 8)
	var prev int64 = math.MaxInt64
	for _, qp := range []int{15, 25, 35, 45} {
		opt := Defaults()
		opt.RC = RCCQP
		opt.QP = qp
		_, stats := encodeClip(t, clip, opt)
		if stats.TotalBits >= prev {
			t.Fatalf("qp %d bits %d not below previous %d", qp, stats.TotalBits, prev)
		}
		prev = stats.TotalBits
	}
}

func TestFrameTypeQPOffsets(t *testing.T) {
	if typeQPOffset(FrameI) >= typeQPOffset(FrameP) {
		t.Fatal("I frames must use a lower QP than P")
	}
	if typeQPOffset(FrameB) <= typeQPOffset(FrameP) {
		t.Fatal("B frames must use a higher QP than P")
	}
}

func TestLambdaMonotone(t *testing.T) {
	for qp := 1; qp <= 51; qp++ {
		if lambdaFor(qp) < lambdaFor(qp-1) {
			t.Fatalf("lambda not monotone at qp %d", qp)
		}
	}
	if lambdaFor(0) < 1 {
		t.Fatal("lambda floor")
	}
}

func TestAQRedistributesQP(t *testing.T) {
	rc := newRateControl(&Options{AQMode: 1, RC: RCCRF, CRF: 23}, 320, 192, 30)
	// Feed alternating flat/busy blocks: offsets must differ.
	var flatQP, busyQP int
	for i := 0; i < 400; i++ {
		flatQP = rc.mbQP(23, 2, true)
		busyQP = rc.mbQP(23, 4000, true)
	}
	if busyQP <= flatQP {
		t.Fatalf("AQ should raise QP on busy blocks: flat %d busy %d", flatQP, busyQP)
	}
	// AQ off: no change.
	rcOff := newRateControl(&Options{AQMode: 0, RC: RCCRF, CRF: 23}, 320, 192, 30)
	if rcOff.mbQP(23, 4000, false) != 23 {
		t.Fatal("AQ off must not adjust QP")
	}
}

func TestQPFromBppSane(t *testing.T) {
	lo := newRateControl(&Options{RC: RCABR, BitrateKbps: 100}, 1920, 1080, 30)
	hi := newRateControl(&Options{RC: RCABR, BitrateKbps: 20000}, 1920, 1080, 30)
	if lo.qpFromBpp() <= hi.qpFromBpp() {
		t.Fatalf("starving bitrate must start at higher QP: %d vs %d", lo.qpFromBpp(), hi.qpFromBpp())
	}
}
