package codec

import (
	"sync/atomic"
	"time"
)

// EncodeStage labels one phase of the encode hot path for latency
// accounting. The split mirrors the paper's per-function breakdown: frame
// decision (lookahead), motion estimation and mode analysis, transform plus
// quantization plus reconstruction, entropy coding, and the in-loop
// deblocking filter.
type EncodeStage int

const (
	StageLookahead EncodeStage = iota // complexity estimation + frame typing
	StageME                           // motion search and intra/inter analysis
	StageTransform                    // prediction, transform, quant, reconstruction
	StageEntropy                      // macroblock syntax + residual coding
	StageDeblock                      // in-loop deblocking
	NumEncodeStages
)

// String returns the short stage label used in metric names.
func (s EncodeStage) String() string {
	switch s {
	case StageLookahead:
		return "lookahead"
	case StageME:
		return "me"
	case StageTransform:
		return "transform"
	case StageEntropy:
		return "entropy"
	case StageDeblock:
		return "deblock"
	}
	return "unknown"
}

// StageObserver receives the wall time spent in each encode stage. The
// lookahead stage is reported once per EncodeAll (it runs before the first
// frame); the others once per coded frame. Under parallel encoding the
// analysis stages sum across workers, so they read as CPU time rather than
// critical-path time. Observation calls are serialized onto the EncodeAll
// goroutine.
type StageObserver interface {
	ObserveStage(stage EncodeStage, d time.Duration)
}

// stageClock accumulates per-stage nanoseconds. It is shared by the
// sequencer and every shadow encoder of a parallel encode, hence atomic.
type stageClock [NumEncodeStages]atomic.Int64

// SetStageObserver attaches a latency observer. The default (nil) keeps the
// hot path entirely free of timing calls — the only residual cost is one
// pointer nil-check per stage boundary. Must be called before EncodeAll.
func (e *Encoder) SetStageObserver(o StageObserver) {
	e.stageObs = o
	if o != nil && e.stage == nil {
		e.stage = new(stageClock)
	}
	if o == nil {
		e.stage = nil
	}
}

// stageStart returns the stage timestamp, or the zero time when no observer
// is attached.
func (e *Encoder) stageStart() time.Time {
	if e.stage == nil {
		return time.Time{}
	}
	return time.Now()
}

// stageEnd charges the time elapsed since stageStart to a stage.
func (e *Encoder) stageEnd(s EncodeStage, t0 time.Time) {
	if e.stage == nil || t0.IsZero() {
		return
	}
	e.stage[s].Add(int64(time.Since(t0)))
}

// flushStages reports and clears the accumulated stage times. Called once
// after the lookahead and once per coded frame.
func (e *Encoder) flushStages() {
	if e.stage == nil || e.stageObs == nil {
		return
	}
	for s := EncodeStage(0); s < NumEncodeStages; s++ {
		if ns := e.stage[s].Swap(0); ns > 0 {
			e.stageObs.ObserveStage(s, time.Duration(ns))
		}
	}
}
