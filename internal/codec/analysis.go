package codec

import (
	"fmt"

	"repro/internal/frame"
	"repro/internal/trace"
)

// The shared per-video analysis pass factors the encoder work that depends
// only on the video and a small option subset — lookahead cost curves and
// the per-MB variance map behind adaptive quantization — out of EncodeAll,
// so a crf x refs sweep computes it once instead of once per point. The
// artifact carries the recorded lookahead trace events and the tracer's
// post-lookahead sampling state: a consumer replays the events into its
// machine before encoding and restores the sampling counter, making the
// reused encode's event stream byte-identical to a live one (asserted by
// TestAnalysisEncodeEquivalence and core's sweep determinism test).

// AnalysisParams is the option subset the analysis work depends on. Two
// option sets with equal params produce identical artifacts, which is what
// lets a sweep share one across every (crf, refs) point.
type AnalysisParams struct {
	W, H, Frames int
	// Base is the first analyzed frame's PTS: zero for a whole clip,
	// non-zero for a mid-clip segment. Keying on it keeps same-length
	// segments at different offsets from sharing one artifact.
	Base int
	// SampleLog2 fixes the macroblock sampling cadence and therefore which
	// lookahead events were recorded and where the counter ends.
	SampleLog2 int
	// NeedBwd selects the extra backward lookahead pass (b-adapt 2 with B
	// frames enabled).
	NeedBwd bool
	// Distribute mirrors Tuning.DistributeLookahead, which gates the scalar
	// epilogue charged per lookahead block.
	Distribute bool
	// Variance selects the per-MB variance map (any AQ mode).
	Variance bool
}

// AnalysisParamsFor derives the analysis parameters an encode with opt over
// an n-frame w x h clip (or clip segment starting at PTS base) implies.
func AnalysisParamsFor(opt Options, w, h, base, n int) AnalysisParams {
	return AnalysisParams{
		W: w, H: h, Frames: n, Base: base,
		SampleLog2: opt.TraceSampleLog2,
		NeedBwd:    opt.BAdapt >= 2 && opt.BFrames > 0,
		Distribute: opt.Tune.DistributeLookahead,
		Variance:   opt.AQMode > 0,
	}
}

// Analysis is the memoized crf/refs-invariant analysis of one clip. It is
// immutable after Analyze returns and safe to share across concurrent
// encoders.
type Analysis struct {
	Params AnalysisParams

	look     lookaheadCosts
	events   []byte // recorded lookahead trace
	ctr      uint64 // tracer state after the lookahead...
	on       bool   // ...so consumers resume sampling mid-phase
	mbw, mbh int
	variance []float64 // per-MB AQ activity, nil unless Params.Variance
}

// Events returns the recorded lookahead event stream. A consumer that
// encodes with this artifact must first feed these events to its trace sink
// (e.g. via trace.Replay) — they are the instrumentation the skipped
// lookahead would have emitted.
func (a *Analysis) Events() []byte { return a.events }

// SizeBytes reports the artifact's memory footprint for cache accounting.
func (a *Analysis) SizeBytes() int64 {
	return int64(len(a.events)) + int64(8*len(a.variance)) +
		int64(8*(len(a.look.intra)+len(a.look.fwd)+len(a.look.bwd)))
}

// varianceAt returns the cached AQ activity of macroblock (mx, my) of the
// frame with the given PTS; ok is false when the artifact has no entry (no
// variance map, or a PTS outside the analyzed clip).
func (a *Analysis) varianceAt(pts, mx, my int) (float64, bool) {
	i := pts - a.Params.Base
	if a.variance == nil || i < 0 || i >= a.Params.Frames {
		return 0, false
	}
	return a.variance[(i*a.mbh+my)*a.mbw+mx], true
}

// Analyze runs the shared per-video analysis over a clip: the lookahead
// cost pass (recorded through a trace.Recorder) and, when AQ is active, the
// per-MB variance map. Frames must carry sequential PTS (starting anywhere
// — a mid-clip segment keeps its absolute positions); frames without an
// assigned virtual base are given the same bases EncodeAll would assign, so
// recorded addresses match a later encode of the same frames.
func Analyze(frames []*frame.Frame, fps int, opt Options) (*Analysis, error) {
	if len(frames) == 0 {
		return nil, ErrNoFrames
	}
	if opt.RC == RCABR2 {
		// The two-pass probe interleaves a full first-pass encode before the
		// lookahead; its tracer state is not reproducible from this artifact.
		return nil, fmt.Errorf("codec: analysis artifact unsupported for two-pass ABR")
	}
	rec := trace.NewRecorder()
	e, err := NewEncoder(frames[0].Width, frames[0].Height, fps, opt, rec)
	if err != nil {
		return nil, err
	}
	base := frames[0].PTS
	for i, f := range frames {
		if f.Width != e.w || f.Height != e.h {
			return nil, fmt.Errorf("codec: analysis frame %d is %dx%d, clip is %dx%d",
				i, f.Width, f.Height, e.w, e.h)
		}
		if f.PTS != base+i {
			return nil, fmt.Errorf("codec: analysis frame %d has PTS %d, want sequential from %d", i, f.PTS, base)
		}
		if f.Y.Base == 0 {
			e.allocVA(f)
		}
	}

	lc := e.runLookahead(frames)
	a := &Analysis{
		Params: AnalysisParamsFor(opt, e.w, e.h, base, len(frames)),
		look:   *lc,
		ctr:    e.tr.ctr,
		on:     e.tr.on,
		mbw:    e.w / 16,
		mbh:    e.h / 16,
	}
	a.events = rec.Bytes()
	if a.Params.Variance {
		a.variance = make([]float64, len(frames)*a.mbw*a.mbh)
		for i, f := range frames {
			for my := 0; my < a.mbh; my++ {
				for mx := 0; mx < a.mbw; mx++ {
					a.variance[(i*a.mbh+my)*a.mbw+mx] = f.Y.BlockVariance(mx*16, my*16, 16, 16)
				}
			}
		}
	}
	return a, nil
}

// SetAnalysis attaches a shared analysis artifact. EncodeAll will skip its
// own lookahead and variance computation and resume the tracer from the
// artifact's recorded state; the caller is responsible for having fed
// a.Events() to the encoder's trace sink first, and the artifact's params
// must match the encode (checked in EncodeAll, where the clip length is
// known).
func (e *Encoder) SetAnalysis(a *Analysis) error {
	if e.opt.RC == RCABR2 {
		return fmt.Errorf("codec: analysis artifact unsupported for two-pass ABR")
	}
	if e.tr.ctr != 0 {
		return fmt.Errorf("codec: analysis reuse requires an unused encoder")
	}
	e.analysis = a
	return nil
}

// analysisCosts validates the attached artifact against this encode and
// returns its lookahead costs with the tracer advanced past the recorded
// events' sampling window.
func (e *Encoder) analysisCosts(frames []*frame.Frame) (*lookaheadCosts, error) {
	a := e.analysis
	want := AnalysisParamsFor(e.opt, e.w, e.h, frames[0].PTS, len(frames))
	if a.Params != want {
		return nil, fmt.Errorf("codec: analysis params %+v do not match encode %+v", a.Params, want)
	}
	if e.tr.ctr != 0 {
		return nil, fmt.Errorf("codec: analysis reuse requires a fresh tracer")
	}
	e.tr.ctr, e.tr.on = a.ctr, a.on
	return &a.look, nil
}

// analysisVariance looks up the cached AQ activity for a macroblock; ok is
// false when no artifact (or no variance map) is attached.
func (e *Encoder) analysisVariance(pts, mx, my int) (float64, bool) {
	if e.analysis == nil {
		return 0, false
	}
	return e.analysis.varianceAt(pts, mx, my)
}
