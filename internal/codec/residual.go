package codec

import (
	"repro/internal/codec/transform"
	"repro/internal/frame"
	"repro/internal/trace"
)

// mbKind classifies a coded macroblock.
type mbKind uint8

const (
	kindSkip mbKind = iota
	kindInter
	kindIntra
)

// Inter partition modes.
const (
	part16x16 = iota
	part16x8
	part8x16
	part8x8
)

// B-prediction directions.
const (
	dirL0 = iota
	dirL1
	dirBI
)

// macroblock carries the full coded state of one 16x16 region: the mode
// decision, motion, quantized coefficients and reconstruction bookkeeping.
type macroblock struct {
	x, y int // luma pixel coordinates
	qp   int
	kind mbKind

	// Inter state.
	partMode int
	sub4x4   [4]bool // per-8x8: split to 4x4 (partMode == part8x8)
	refIdx   int
	dir      int    // B frames: dirL0/dirL1/dirBI
	mvs      [16]MV // list-0 vector per 4x4 cell
	mvsL1    [16]MV // list-1 vector per 4x4 cell (B only)

	// Intra state.
	intra intraChoice

	// Residual: quantized levels. Luma blocks 0..15 in raster order, Cb
	// 16..19, Cr 20..23. With the 8x8 transform, luma lives in coefs8
	// (one block per 8x8 quadrant) instead.
	coefs  [24]transform.Block
	nzc    [24]uint8
	coefs8 [4]transform.Block8
	nzc8   [4]uint8
	dct8   bool   // luma coded with the 8x8 transform
	cbp    uint32 // bit per block group: 4 luma 8x8 + 2 chroma
}

// setMV stores mv into the 4x4 cells covered by the partition rectangle
// (px, py, pw, ph) in luma pixels relative to the MB origin.
func (mb *macroblock) setMV(list int, px, py, pw, ph int, mv MV) {
	for j := py / 4; j < (py+ph)/4; j++ {
		for i := px / 4; i < (px+pw)/4; i++ {
			if list == 0 {
				mb.mvs[j*4+i] = mv
			} else {
				mb.mvsL1[j*4+i] = mv
			}
		}
	}
}

// residualOrder yields the (bx, by) iteration order of 4x4 luma blocks.
// The naive loop nest is column-major; -floop-interchange (Graphite) turns
// it row-major so consecutive blocks share cache lines.
func residualOrder(interchange bool) [16][2]int {
	var order [16][2]int
	k := 0
	if interchange {
		for by := 0; by < 4; by++ {
			for bx := 0; bx < 4; bx++ {
				order[k] = [2]int{bx, by}
				k++
			}
		}
	} else {
		for bx := 0; bx < 4; bx++ {
			for by := 0; by < 4; by++ {
				order[k] = [2]int{bx, by}
				k++
			}
		}
	}
	return order
}

// codeResidual4x4 transforms, quantizes and reconstructs one 4x4 block.
// src is the source plane, rec the reconstruction plane, pred the staged
// prediction for the whole parent block (predOx/predOy locate this 4x4
// inside pred). Quantized levels are left in *coef. Returns the nonzero
// count.
func (t *tracer) codeResidual4x4(src, rec *frame.Plane, x, y int, pred *block, predOx, predOy int,
	qp int, deadzone int32, trellis bool, lambda int32, coef *transform.Block) int {

	var res transform.Block
	for j := 0; j < 4; j++ {
		srow := src.RowFrom(x, y+j, 4)
		prow := pred.row(predOy + j)[predOx : predOx+4]
		for i := 0; i < 4; i++ {
			res[j*4+i] = int32(srow[i]) - int32(prow[i])
		}
	}
	t.load2D(trace.FnFDCT, src, x, y, 4, 4)
	t.ops(trace.FnFDCT, 28)

	var freq transform.Block
	transform.FDCT(&res, &freq)

	var nz int
	if trellis {
		t.call(trace.FnTrellis)
		nz = transform.TrellisQuant(&freq, qp, deadzone, lambda)
		// Trellis is scalar in x264 and its cost follows the number of
		// surviving coefficients.
		t.ops(trace.FnTrellis, 24+nz*10)
	} else {
		t.ops(trace.FnQuant, 12)
		nz = transform.Quant(&freq, qp, deadzone)
	}
	*coef = freq

	// Reconstruct: dequant + inverse transform + add prediction.
	if nz > 0 {
		deq := freq
		transform.Dequant(&deq, qp)
		var spatial transform.Block
		transform.IDCT(&deq, &spatial)
		t.ops(trace.FnIDCT, 28)
		for j := 0; j < 4; j++ {
			prow := pred.row(predOy + j)[predOx : predOx+4]
			for i := 0; i < 4; i++ {
				rec.Set(x+i, y+j, clampU8(int32(prow[i])+spatial[j*4+i]))
			}
		}
	} else {
		for j := 0; j < 4; j++ {
			prow := pred.row(predOy + j)[predOx : predOx+4]
			for i := 0; i < 4; i++ {
				rec.Set(x+i, y+j, prow[i])
			}
		}
	}
	t.store2D(trace.FnIDCT, rec, x, y, 4, 4)
	return nz
}

// codeResidual8x8 transforms, quantizes and reconstructs one 8x8 luma
// block (the --8x8dct path). Mirrors codeResidual4x4.
func (t *tracer) codeResidual8x8(src, rec *frame.Plane, x, y int, pred *block, predOx, predOy int,
	qp int, deadzone int32, coef *transform.Block8) int {

	var res transform.Block8
	for j := 0; j < 8; j++ {
		srow := src.RowFrom(x, y+j, 8)
		prow := pred.row(predOy + j)[predOx : predOx+8]
		for i := 0; i < 8; i++ {
			res[j*8+i] = int32(srow[i]) - int32(prow[i])
		}
	}
	t.load2D(trace.FnFDCT, src, x, y, 8, 8)
	t.ops(trace.FnFDCT, 72) // the 8x8 butterfly costs ~2.5x four 4x4s

	var freq transform.Block8
	transform.FDCT8(&res, &freq)
	t.ops(trace.FnQuant, 40)
	nz := transform.Quant8(&freq, qp, deadzone)
	*coef = freq

	if nz > 0 {
		deq := freq
		transform.Dequant8(&deq, qp)
		var spatial transform.Block8
		transform.IDCT8(&deq, &spatial)
		t.ops(trace.FnIDCT, 72)
		for j := 0; j < 8; j++ {
			prow := pred.row(predOy + j)[predOx : predOx+8]
			for i := 0; i < 8; i++ {
				rec.Set(x+i, y+j, clampU8(int32(prow[i])+spatial[j*8+i]))
			}
		}
	} else {
		for j := 0; j < 8; j++ {
			prow := pred.row(predOy + j)[predOx : predOx+8]
			for i := 0; i < 8; i++ {
				rec.Set(x+i, y+j, prow[i])
			}
		}
	}
	t.store2D(trace.FnIDCT, rec, x, y, 8, 8)
	return nz
}

// copyPredToRec writes a staged prediction straight into the recon plane
// (used by skip macroblocks).
func (t *tracer) copyPredToRec(rec *frame.Plane, x, y int, pred *block) {
	for j := 0; j < pred.h; j++ {
		copy(rec.RowFrom(x, y+j, pred.w), pred.row(j))
	}
	t.ops(trace.FnMC, pred.w*pred.h/16+8)
	t.store2D(trace.FnMC, rec, x, y, pred.w, pred.h)
}

// --- coefficient entropy coding ----------------------------------------------

// writeResidualBlock codes one quantized 4x4 block as nCoef followed by
// (zero-run, level) pairs in zigzag order.
func (e *Encoder) writeResidualBlock(blk *transform.Block, nz int) {
	bw := e.bw
	bw.WriteUE(uint32(nz))
	e.tr.ops(trace.FnCAVLC, 24)
	if nz == 0 {
		return
	}
	run := uint32(0)
	coded := 0
	for zi, pos := range transform.Zigzag {
		l := blk[pos]
		sig := l != 0
		// One static branch site per scan position: the coefficient loop is
		// unrolled in real entropy coders, and significance bias is strongly
		// position-dependent.
		e.tr.branch(trace.FnCAVLC, siteCoefNZ+trace.BranchID(zi)*16, sig)
		if !sig {
			run++
			continue
		}
		bw.WriteUE(run)
		bw.WriteSE(l)
		e.tr.ops(trace.FnCAVLC, 12)
		run = 0
		coded++
		if coded == nz {
			break
		}
	}
	e.tr.loop(trace.FnCAVLC, siteZigzagLoop, 16)
}

// writeResidualBlock8 codes one quantized 8x8 block in zigzag order.
func (e *Encoder) writeResidualBlock8(blk *transform.Block8, nz int) {
	bw := e.bw
	bw.WriteUE(uint32(nz))
	e.tr.ops(trace.FnCAVLC, 36)
	if nz == 0 {
		return
	}
	run := uint32(0)
	coded := 0
	for zi, pos := range transform.Zigzag8 {
		l := blk[pos]
		sig := l != 0
		e.tr.branch(trace.FnCAVLC, siteCoefNZ+trace.BranchID(zi&15)*16, sig)
		if !sig {
			run++
			continue
		}
		bw.WriteUE(run)
		bw.WriteSE(l)
		e.tr.ops(trace.FnCAVLC, 12)
		run = 0
		coded++
		if coded == nz {
			break
		}
	}
	e.tr.loop(trace.FnCAVLC, siteZigzagLoop, 64)
}

// readResidualBlock8 is the decoder counterpart of writeResidualBlock8.
func (d *Decoder) readResidualBlock8(blk *transform.Block8) (int, error) {
	br := d.br
	nz32, err := br.ReadUE()
	if err != nil {
		return 0, err
	}
	nz := int(nz32)
	*blk = transform.Block8{}
	pos := 0
	for k := 0; k < nz; k++ {
		run, err := br.ReadUE()
		if err != nil {
			return 0, err
		}
		level, err := br.ReadSE()
		if err != nil {
			return 0, err
		}
		pos += int(run)
		if pos >= 64 {
			return 0, errBitstream("8x8 coefficient run overflows block")
		}
		blk[transform.Zigzag8[pos]] = level
		pos++
		d.tr.ops(trace.FnDecParse, 16)
	}
	d.tr.loop(trace.FnDecParse, siteZigzagLoop, nz+1)
	return nz, nil
}

// readResidualBlock is the decoder counterpart of writeResidualBlock.
func (d *Decoder) readResidualBlock(blk *transform.Block) (int, error) {
	br := d.br
	nz32, err := br.ReadUE()
	if err != nil {
		return 0, err
	}
	nz := int(nz32)
	*blk = transform.Block{}
	pos := 0
	for k := 0; k < nz; k++ {
		run, err := br.ReadUE()
		if err != nil {
			return 0, err
		}
		level, err := br.ReadSE()
		if err != nil {
			return 0, err
		}
		pos += int(run)
		if pos >= 16 {
			return 0, errBitstream("coefficient run overflows block")
		}
		blk[transform.Zigzag[pos]] = level
		pos++
		d.tr.branch(trace.FnDecParse, siteDecCoef, true)
		d.tr.ops(trace.FnDecParse, 16)
	}
	d.tr.loop(trace.FnDecParse, siteZigzagLoop, nz+1)
	return nz, nil
}

// bitWriterTrace charges bitstream output work: ops proportional to bits
// plus a store stream at the write cursor.
func (e *Encoder) bitWriterTrace(startBits int64) {
	wrote := e.bw.BitsWritten() - startBits
	if wrote <= 0 || !e.tr.on {
		return
	}
	e.tr.ops(trace.FnBitWriter, int(wrote/4)+4)
	e.tr.store(trace.FnBitWriter, bitstreamBase+uint64(startBits/8), int(wrote/8)+1)
}

// bitstreamBase is the virtual address of the output buffer for tracing.
const bitstreamBase = 0x2000000000

// errBitstream builds a decode error.
type bitstreamError string

func errBitstream(msg string) error { return bitstreamError(msg) }

func (e bitstreamError) Error() string { return "codec: corrupt bitstream: " + string(e) }
