package codec

import (
	"fmt"
	"testing"
)

// benchSink keeps the compiler from eliding benchmark kernel results.
var benchSink int

// BenchmarkDeblock measures the packed deblocking filter over a full frame
// of reconstructed content (every macroblock row, luma and chroma, with a
// mix of strong and normal edges).
func BenchmarkDeblock(b *testing.B) {
	frames := makeClip(b, "cricket", 1, 8)
	rec := frames[0]
	mbw, mbh := rec.Width/16, rec.Height/16
	st := newDeblockState(mbw, mbh)
	for my := 0; my < mbh; my++ {
		for mx := 0; mx < mbw; mx++ {
			kind := kindInter
			if (mx+my)%5 == 0 {
				kind = kindIntra
			}
			st.set(mx, my, 22+(mx+my)%8, kind)
		}
	}
	tr := newTracer(nil, 0)
	b.SetBytes(int64(rec.Width * rec.Height))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for my := 0; my < mbh; my++ {
			deblockMBRow(&tr, 0, rec, st, my, 0, 0)
		}
	}
}

// BenchmarkIntraPredict measures the fused predict+SATD intra analysis over
// a frame's macroblocks: every 16x16 mode plus the 4x4 sub-block search.
func BenchmarkIntraPredict(b *testing.B) {
	frames := makeClip(b, "cricket", 1, 8)
	src := frames[0]
	opt := Defaults()
	enc, err := NewEncoder(src.Width, src.Height, 30, opt, nil)
	if err != nil {
		b.Fatal(err)
	}
	enc.recon = enc.getRecon()
	enc.recon.Y.CopyFrom(&src.Y)
	enc.recon.Cb.CopyFrom(&src.Cb)
	enc.recon.Cr.CopyFrom(&src.Cr)
	mbw, mbh := src.Width/16, src.Height/16
	b.SetBytes(int64(src.Width * src.Height))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for my := 0; my < mbh; my++ {
			for mx := 0; mx < mbw; mx++ {
				c := enc.analyseIntra(&src.Y, &enc.recon.Y, mx*16, my*16, lambdaFor(26))
				benchSink += c.cost
			}
		}
	}
}

// BenchmarkSegmentedEncode measures the serial segmented encode-and-stitch
// at 1/2/4 segments over the same clip; parts=1 is the whole-clip baseline,
// so the deltas price what segment-parallel transcoding pays per split —
// the extra closed-GOP opens plus the bitstream/stats stitch.
func BenchmarkSegmentedEncode(b *testing.B) {
	frames := makeClip(b, "cricket", 8, 8)
	AssignBases(frames)
	opt := Defaults()
	for _, parts := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parts=%d", parts), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stream, _, err := EncodeSegments(frames, 30, opt, nil, parts)
				if err != nil {
					b.Fatal(err)
				}
				benchSink += len(stream)
			}
		})
	}
}

// BenchmarkEncodeParallel measures a full traced medium-preset encode at
// several intra-encode worker counts; workers=1 is the serial baseline the
// wavefront speedup is read against.
func BenchmarkEncodeParallel(b *testing.B) {
	frames := makeClip(b, "cricket", 6, 8)
	pinClipVAs(b, frames)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := Defaults()
			opt.Tune.FuseDeblock = true
			opt.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				enc, err := NewEncoder(frames[0].Width, frames[0].Height, 30, opt, nil)
				if err != nil {
					b.Fatal(err)
				}
				stream, _, err := enc.EncodeAll(frames)
				if err != nil {
					b.Fatal(err)
				}
				benchSink += len(stream)
			}
		})
	}
}
