package codec

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/frame"
	"repro/internal/trace"
)

// baseClip assigns decoder-style virtual bases up front, the way frames
// arrive in the production pipeline. Encoders only advance their own VA
// allocator for frames without bases, so pre-basing keeps every encoder
// sharing the clip — live, Analyze, reuse — on identical recon addresses.
func baseClip(frames []*frame.Frame) {
	AssignBases(frames)
}

// analysisOptions are the option sets the reuse equivalence is pinned over:
// the defaults (AQ, scenecut, b-adapt 1), a b-adapt 2 + sampled-trace
// configuration exercising the backward lookahead pass and a mid-phase
// sampling counter, and ultrafast (lookahead with everything else off).
func analysisOptions(t *testing.T) map[string]Options {
	t.Helper()
	badapt2 := Defaults()
	badapt2.BAdapt = 2
	badapt2.TraceSampleLog2 = 2
	ultra := Options{RC: RCCRF, CRF: 30, QP: 26, KeyintMax: 250}
	if err := ApplyPreset(&ultra, PresetUltrafast); err != nil {
		t.Fatal(err)
	}
	return map[string]Options{"medium": Defaults(), "badapt2_sampled": badapt2, "ultrafast": ultra}
}

// TestAnalysisEncodeEquivalence is the tentpole invariant: encoding with a
// shared analysis artifact must reproduce a live encode exactly — the same
// bitstream, the same stats, and a byte-identical trace-event stream once
// the artifact's recorded events are counted in.
func TestAnalysisEncodeEquivalence(t *testing.T) {
	for name, opt := range analysisOptions(t) {
		t.Run(name, func(t *testing.T) {
			frames := makeClip(t, "cricket", 8, 8)
			baseClip(frames)

			liveRec := trace.NewRecorder()
			live, err := NewEncoder(frames[0].Width, frames[0].Height, 30, opt, liveRec)
			if err != nil {
				t.Fatal(err)
			}
			liveStream, liveStats, err := live.EncodeAll(frames)
			if err != nil {
				t.Fatal(err)
			}

			a, err := Analyze(frames, 30, opt)
			if err != nil {
				t.Fatal(err)
			}
			// The consumer contract: feed the artifact's events to the sink,
			// then encode with the artifact attached.
			reuseRec := trace.NewRecorder()
			if err := trace.Replay(a.Events(), reuseRec); err != nil {
				t.Fatal(err)
			}
			reuse, err := NewEncoder(frames[0].Width, frames[0].Height, 30, opt, reuseRec)
			if err != nil {
				t.Fatal(err)
			}
			if err := reuse.SetAnalysis(a); err != nil {
				t.Fatal(err)
			}
			reuseStream, reuseStats, err := reuse.EncodeAll(frames)
			if err != nil {
				t.Fatal(err)
			}

			if !bytes.Equal(liveStream, reuseStream) {
				t.Errorf("bitstreams differ: live %d bytes, reuse %d bytes", len(liveStream), len(reuseStream))
			}
			if !reflect.DeepEqual(liveStats, reuseStats) {
				t.Errorf("stats differ:\nlive  %+v\nreuse %+v", liveStats, reuseStats)
			}
			if !bytes.Equal(liveRec.Bytes(), reuseRec.Bytes()) {
				t.Errorf("trace event streams differ: live %d bytes, reuse %d bytes",
					len(liveRec.Bytes()), len(reuseRec.Bytes()))
			}
		})
	}
}

// TestAnalysisReuseAcrossPoints shares one artifact across several (crf,
// refs) encodes — the sweep's access pattern — and checks each against its
// live twin.
func TestAnalysisReuseAcrossPoints(t *testing.T) {
	frames := makeClip(t, "desktop", 6, 8)
	baseClip(frames)
	base := Defaults()
	a, err := Analyze(frames, 30, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range [][2]int{{20, 1}, {36, 2}, {48, 4}} {
		opt := base
		opt.RC = RCCRF
		opt.CRF = pt[0]
		opt.Refs = pt[1]

		liveStream, liveStats := encodeClip(t, frames, opt)

		enc, err := NewEncoder(frames[0].Width, frames[0].Height, 30, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.SetAnalysis(a); err != nil {
			t.Fatal(err)
		}
		stream, stats, err := enc.EncodeAll(frames)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(liveStream, stream) {
			t.Errorf("crf %d refs %d: bitstream differs under analysis reuse", pt[0], pt[1])
		}
		if !reflect.DeepEqual(liveStats, stats) {
			t.Errorf("crf %d refs %d: stats differ under analysis reuse", pt[0], pt[1])
		}
	}
}

// TestAnalysisGuards covers the misuse cases: mismatched params, two-pass
// ABR, and a tracer that has already advanced.
func TestAnalysisGuards(t *testing.T) {
	frames := makeClip(t, "cricket", 4, 8)
	opt := Defaults()
	a, err := Analyze(frames, 30, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Params mismatch: a different sampling cadence invalidates the artifact.
	bad := opt
	bad.TraceSampleLog2 = 3
	enc, err := NewEncoder(frames[0].Width, frames[0].Height, 30, bad, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.SetAnalysis(a); err != nil {
		t.Fatal(err)
	}
	if _, _, err := enc.EncodeAll(frames); err == nil {
		t.Error("expected params-mismatch error, got nil")
	}

	// Two-pass ABR cannot consume the artifact.
	abr := opt
	abr.RC = RCABR2
	abr.BitrateKbps = 500
	enc, err = NewEncoder(frames[0].Width, frames[0].Height, 30, abr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.SetAnalysis(a); err == nil {
		t.Error("expected SetAnalysis to reject two-pass ABR")
	}
	if _, err := Analyze(frames, 30, abr); err == nil {
		t.Error("expected Analyze to reject two-pass ABR")
	}

	// A used encoder (tracer advanced) must refuse the artifact.
	enc, err = NewEncoder(frames[0].Width, frames[0].Height, 30, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := enc.EncodeAll(frames); err != nil {
		t.Fatal(err)
	}
	if err := enc.SetAnalysis(a); err == nil {
		t.Error("expected SetAnalysis to reject a used encoder")
	}
}
