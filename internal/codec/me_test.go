package codec

import (
	"math"
	"testing"

	"repro/internal/frame"
	"repro/internal/trace"
)

// shiftedPlanes builds a reference plane and a source plane whose content
// is the reference translated by (dx, dy) pixels.
func shiftedPlanes(w, h, dx, dy int) (src, ref frame.Plane) {
	ref = frame.NewPlane(w, h)
	// A smooth, non-repeating texture: SAD forms a single well around the
	// true displacement, so gradient-following searches are well-posed.
	for y := 0; y < h; y++ {
		row := ref.Row(y)
		for x := range row {
			v := 128 + 52*math.Sin(float64(x)/9) + 40*math.Sin(float64(y)/7) +
				26*math.Sin(float64(x+y)/23) + 8*math.Sin(float64(x*3-y)/5)
			row[x] = uint8(v)
		}
	}
	ref.ExtendEdges()
	src = frame.NewPlane(w, h)
	for y := 0; y < h; y++ {
		row := src.Row(y)
		for x := range row {
			row[x] = ref.At(x+dx, y+dy)
		}
	}
	src.ExtendEdges()
	return
}

// searchWith runs one integer search with the given method and returns the
// winning vector in integer pixels.
func searchWith(t *testing.T, method MEMethod, dx, dy, rangePx int) (int, int) {
	t.Helper()
	src, ref := shiftedPlanes(128, 96, dx, dy)
	enc, err := NewEncoder(128, 96, 30, Defaults(), nil)
	if err != nil {
		t.Fatal(err)
	}
	q := meQuery{
		src: &src, ref: &ref, sx: 48, sy: 32, w: 16, h: 16,
		mvp: MV{}, rangePx: rangePx, method: method, lambda: 1,
	}
	res := enc.motionSearch(&q)
	return int(res.mv.X >> 2), int(res.mv.Y >> 2)
}

func TestESAFindsExactTranslation(t *testing.T) {
	// Exhaustive search must find the exact displacement within range.
	for _, d := range [][2]int{{0, 0}, {3, 2}, {-5, 4}, {7, -7}} {
		mx, my := searchWith(t, MEESA, d[0], d[1], 8)
		if mx != d[0] || my != d[1] {
			t.Errorf("esa: shift (%d,%d) found (%d,%d)", d[0], d[1], mx, my)
		}
	}
}

func TestPatternSearchesFindSmallTranslation(t *testing.T) {
	// Gradient-following patterns find small displacements exactly.
	for _, m := range []MEMethod{MEDia, MEHex, MEUMH} {
		mx, my := searchWith(t, m, 2, 1, 16)
		if mx != 2 || my != 1 {
			t.Errorf("%v: shift (2,1) found (%d,%d)", m, mx, my)
		}
	}
}

func TestUMHFindsLargeTranslation(t *testing.T) {
	// The multi-hexagon pattern escapes local minima a small diamond could
	// stall in.
	mx, my := searchWith(t, MEUMH, 12, -6, 16)
	if mx != 12 || my != -6 {
		t.Errorf("umh: shift (12,-6) found (%d,%d)", mx, my)
	}
}

func TestSearchRespectsLambdaBias(t *testing.T) {
	// With an enormous lambda, the predictor vector wins even when a
	// better pixel match exists elsewhere: rate dominates distortion.
	src, ref := shiftedPlanes(128, 96, 6, 0)
	enc, _ := NewEncoder(128, 96, 30, Defaults(), nil)
	q := meQuery{
		src: &src, ref: &ref, sx: 48, sy: 32, w: 16, h: 16,
		mvp: MV{}, rangePx: 16, method: MEESA, lambda: 1 << 20,
	}
	res := enc.motionSearch(&q)
	if res.mv != (MV{}) {
		t.Fatalf("infinite lambda should pin the predictor, got %+v", res.mv)
	}
}

func TestSubpelRefineImprovesCost(t *testing.T) {
	src, ref := shiftedPlanes(128, 96, 1, 0)
	enc, _ := NewEncoder(128, 96, 30, Defaults(), nil)
	q := meQuery{
		src: &src, ref: &ref, sx: 48, sy: 32, w: 16, h: 16,
		mvp: MV{}, rangePx: 8, method: MEHex, lambda: 4,
	}
	res := enc.motionSearch(&q)
	refined := enc.subpelRefine(&q, res, 7)
	if refined.cost > res.cost*2 {
		t.Fatalf("refinement made cost much worse: %d -> %d", res.cost, refined.cost)
	}
	// The refined vector stays within a quarter-pel neighbourhood of the
	// integer winner.
	if abs32(refined.mv.X-res.mv.X) > 8 || abs32(refined.mv.Y-res.mv.Y) > 8 {
		t.Fatalf("refinement wandered: %+v -> %+v", res.mv, refined.mv)
	}
}

func TestSubpelItersEscalate(t *testing.T) {
	prev := 0
	for subme := 0; subme <= 11; subme++ {
		h, q := subpelIters(subme)
		if h+q < prev {
			t.Fatalf("subpel effort not monotone at subme %d", subme)
		}
		prev = h + q
	}
	if h, q := subpelIters(0); h != 0 || q != 0 {
		t.Fatal("subme 0 must skip refinement")
	}
}

func TestMethodEffortOrdering(t *testing.T) {
	// Candidate evaluation counts must grow dia <= hex <= umh <= esa, the
	// Table II escalation that drives the preset time axis.
	count := func(m MEMethod) float64 {
		src, ref := shiftedPlanes(128, 96, 4, 3)
		enc, _ := NewEncoder(128, 96, 30, Defaults(), nil)
		sink := &countingSink{}
		enc.tr = newTracer(sink, 0)
		enc.tr.nextMB()
		q := meQuery{
			src: &src, ref: &ref, sx: 48, sy: 32, w: 16, h: 16,
			mvp: MV{}, rangePx: 16, method: m, lambda: 4,
		}
		enc.motionSearch(&q)
		return sink.ops
	}
	dia, hex, umh, esa := count(MEDia), count(MEHex), count(MEUMH), count(MEESA)
	// dia and hex trade step size against step count, so they land close;
	// umh and esa must clearly escalate (the Table II time axis).
	if dia > 2*hex {
		t.Fatalf("diamond (%f) should not dwarf hexagon (%f)", dia, hex)
	}
	if !(hex <= umh && umh <= esa) {
		t.Fatalf("effort ordering violated: hex %f umh %f esa %f", hex, umh, esa)
	}
	if esa < 4*dia {
		t.Fatalf("exhaustive search suspiciously cheap: %f vs dia %f", esa, dia)
	}
}

func TestMvBits(t *testing.T) {
	if mvBits(MV{0, 0}) != 2 {
		t.Fatalf("zero mvd costs %d bits, want 2", mvBits(MV{0, 0}))
	}
	if mvBits(MV{100, -100}) <= mvBits(MV{1, -1}) {
		t.Fatal("long vectors must cost more bits")
	}
}

func TestMVFieldPrediction(t *testing.T) {
	f := newMVField(4, 4)
	f.set(0, 1, MV{4, 0}, true)  // left of (1,1)
	f.set(1, 0, MV{8, 4}, true)  // top
	f.set(2, 0, MV{12, 8}, true) // top-right
	got := f.predict(1, 1)
	if got != (MV{8, 4}) {
		t.Fatalf("median predictor %+v", got)
	}
	// Out-of-picture neighbours contribute zero vectors.
	if f.predict(0, 0) != (MV{}) {
		t.Fatal("corner MB should predict zero")
	}
	f.reset()
	if mv, coded := f.get(1, 0); coded || mv != (MV{}) {
		t.Fatal("reset did not clear the field")
	}
}

// countingSink tallies ops for effort comparisons.
type countingSink struct {
	ops float64
}

func (c *countingSink) Ops(_ trace.FuncID, n int) { c.ops += float64(n) }

// The remaining Sink methods only count lightly or are ignored.
func (c *countingSink) Load(_ trace.FuncID, _ uint64, n int)             { c.ops += float64(n) / 64 }
func (c *countingSink) Store(_ trace.FuncID, _ uint64, n int)            { c.ops += float64(n) / 64 }
func (c *countingSink) Load2D(_ trace.FuncID, _ uint64, w, h, _ int)     { c.ops += float64(w*h) / 64 }
func (c *countingSink) Store2D(_ trace.FuncID, _ uint64, w, h, _ int)    { c.ops += float64(w*h) / 64 }
func (c *countingSink) Branch(_ trace.FuncID, _ trace.BranchID, _ bool)  { c.ops++ }
func (c *countingSink) Loop(_ trace.FuncID, _ trace.BranchID, iters int) { c.ops += float64(iters) }
func (c *countingSink) Call(_ trace.FuncID)                              { c.ops++ }
