package codec

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/trace"
)

// reconPlane builds a plane with known values to predict from.
func reconPlane(w, h int, fill func(x, y int) uint8) frame.Plane {
	p := frame.NewPlane(w, h)
	for y := 0; y < h; y++ {
		row := p.Row(y)
		for x := range row {
			row[x] = fill(x, y)
		}
	}
	p.ExtendEdges()
	return p
}

func TestIntraDCAveragesNeighbours(t *testing.T) {
	rec := reconPlane(64, 64, func(x, y int) uint8 { return 100 })
	tr := newTracer(nil, 0)
	var pred block
	tr.predIntra(trace.FnIntraPred, &rec, 16, 16, 16, 16, intraDC, &pred)
	for i := 0; i < 256; i++ {
		if pred.pix[i] != 100 {
			t.Fatalf("DC of flat-100 neighbours: %d", pred.pix[i])
		}
	}
}

func TestIntraDCNoNeighboursIsMidGrey(t *testing.T) {
	rec := reconPlane(64, 64, func(x, y int) uint8 { return 10 })
	tr := newTracer(nil, 0)
	var pred block
	tr.predIntra(trace.FnIntraPred, &rec, 0, 0, 16, 16, intraDC, &pred)
	if pred.pix[0] != 128 {
		t.Fatalf("cornerless DC = %d, want 128", pred.pix[0])
	}
}

func TestIntraVerticalCopiesTopRow(t *testing.T) {
	rec := reconPlane(64, 64, func(x, y int) uint8 { return uint8(x * 3) })
	tr := newTracer(nil, 0)
	var pred block
	tr.predIntra(trace.FnIntraPred, &rec, 16, 16, 16, 16, intraV, &pred)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if pred.at(x, y) != rec.At(16+x, 15) {
				t.Fatalf("V prediction (%d,%d) != top row", x, y)
			}
		}
	}
}

func TestIntraHorizontalCopiesLeftColumn(t *testing.T) {
	rec := reconPlane(64, 64, func(x, y int) uint8 { return uint8(y * 5) })
	tr := newTracer(nil, 0)
	var pred block
	tr.predIntra(trace.FnIntraPred, &rec, 16, 16, 16, 16, intraH, &pred)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if pred.at(x, y) != rec.At(15, 16+y) {
				t.Fatalf("H prediction (%d,%d) != left column", x, y)
			}
		}
	}
}

func TestDirectionalModesFallBackToDC(t *testing.T) {
	rec := reconPlane(64, 64, func(x, y int) uint8 { return 77 })
	tr := newTracer(nil, 0)
	var v, h block
	// Top row unavailable at y=0: V must degrade to DC (left-only average).
	tr.predIntra(trace.FnIntraPred, &rec, 16, 0, 16, 16, intraV, &v)
	if v.pix[0] != 77 {
		t.Fatalf("V at top edge should fall back to DC: %d", v.pix[0])
	}
	// Left column unavailable at x=0.
	tr.predIntra(trace.FnIntraPred, &rec, 0, 16, 16, 16, intraH, &h)
	if h.pix[0] != 77 {
		t.Fatalf("H at left edge should fall back to DC: %d", h.pix[0])
	}
}

func TestAnalyseIntraPicksMatchingMode(t *testing.T) {
	// Vertical stripes: the V predictor from the row above is exact, so
	// analysis must choose mode V (or tie with an equally-exact mode).
	stripes := reconPlane(64, 64, func(x, y int) uint8 { return uint8((x % 8) * 30) })
	enc, err := NewEncoder(64, 64, 30, Defaults(), nil)
	if err != nil {
		t.Fatal(err)
	}
	enc.recon = frame.New(64, 64)
	enc.recon.Y.CopyFrom(&stripes)
	choice := enc.analyseIntra(&stripes, &stripes, 16, 16, 4)
	if choice.use4x4 {
		// Acceptable only if the total cost is near zero anyway.
		if choice.cost > 16*4*4 {
			t.Fatalf("4x4 split with nonzero cost chosen over exact V16: %+v", choice)
		}
	} else if choice.mode16 != intraV {
		t.Fatalf("vertical stripes chose mode %d", choice.mode16)
	}

	// Horizontal stripes: H must win.
	hstripes := reconPlane(64, 64, func(x, y int) uint8 { return uint8((y % 8) * 30) })
	choice = enc.analyseIntra(&hstripes, &hstripes, 16, 16, 4)
	if !choice.use4x4 && choice.mode16 != intraH {
		t.Fatalf("horizontal stripes chose mode %d", choice.mode16)
	}
}

func TestAnalyseIntra4x4EnabledByPartitions(t *testing.T) {
	// Complex texture favours per-block modes when allowed.
	textured := reconPlane(64, 64, func(x, y int) uint8 {
		return uint8((x*x + y*y*3 + x*y) % 251)
	})
	opt := Defaults()
	opt.Partitions = Partitions{} // no i4x4
	enc, _ := NewEncoder(64, 64, 30, opt, nil)
	enc.recon = frame.New(64, 64)
	choice := enc.analyseIntra(&textured, &textured, 16, 16, 4)
	if choice.use4x4 {
		t.Fatal("i4x4 chosen while disabled")
	}
	opt.Partitions = Partitions{I4x4: true}
	enc2, _ := NewEncoder(64, 64, 30, opt, nil)
	enc2.recon = frame.New(64, 64)
	choice2 := enc2.analyseIntra(&textured, &textured, 16, 16, 4)
	if choice2.cost > choice.cost {
		t.Fatalf("allowing i4x4 must not worsen the best cost: %d > %d", choice2.cost, choice.cost)
	}
}

func TestMode4SetWellFormed(t *testing.T) {
	if len(mode4Set) != numIntra4 {
		t.Fatal("mode4Set size")
	}
	for _, m := range mode4Set {
		if m == intraPlanar {
			t.Fatal("planar is not a 4x4 mode")
		}
	}
}
