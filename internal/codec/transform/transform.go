// Package transform implements the residual coding math of the encoder: an
// orthonormal fixed-point 4x4 DCT, scalar dead-zone quantization with the
// H.264-style QP-to-step mapping (step doubles every 6 QP), zigzag scanning,
// and trellis (rate-distortion optimal) coefficient refinement.
package transform

// Block is a 4x4 residual block in raster order.
type Block [16]int32

// Fixed-point DCT-II basis, scaled by 64. Rows are the four DCT basis
// vectors; the matrix is orthogonal to within rounding.
//
//	c0 = 0.5*64 = 32,  c1..c3 from cos((2x+1)*u*pi/8) * 0.5 * 64
var dctC = [4][4]int32{
	{32, 32, 32, 32},
	{42, 17, -17, -42},
	{32, -32, -32, 32},
	{17, -42, 42, -17},
}

// fdctScalar is the direct matrix-product form of the forward transform.
// The shipping FDCT in swar.go computes the identical result through packed
// butterflies; this version is kept as the equivalence-test reference.
func fdctScalar(src *Block, dst *Block) {
	var tmp [16]int32
	// Rows: tmp = src * C^T
	for y := 0; y < 4; y++ {
		r := src[y*4 : y*4+4]
		for u := 0; u < 4; u++ {
			c := &dctC[u]
			tmp[y*4+u] = r[0]*c[0] + r[1]*c[1] + r[2]*c[2] + r[3]*c[3]
		}
	}
	// Columns: dst = C * tmp, with rounding back to source scale (>> 12).
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			c := &dctC[u]
			s := c[0]*tmp[v] + c[1]*tmp[4+v] + c[2]*tmp[8+v] + c[3]*tmp[12+v]
			if s >= 0 {
				s += 1 << 11
			} else {
				s -= 1 << 11
			}
			dst[u*4+v] = s >> 12
		}
	}
}

// idctScalar is the matrix-product reference for the packed IDCT in swar.go.
func idctScalar(src *Block, dst *Block) {
	var tmp [16]int32
	// Columns: tmp = C^T * src
	for v := 0; v < 4; v++ {
		for x := 0; x < 4; x++ {
			s := dctC[0][x]*src[v] + dctC[1][x]*src[4+v] + dctC[2][x]*src[8+v] + dctC[3][x]*src[12+v]
			tmp[x*4+v] = s
		}
	}
	// Rows: dst = tmp * C, rounding (>> 12).
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			r := tmp[x*4 : x*4+4]
			s := r[0]*dctC[0][y] + r[1]*dctC[1][y] + r[2]*dctC[2][y] + r[3]*dctC[3][y]
			if s >= 0 {
				s += 1 << 11
			} else {
				s -= 1 << 11
			}
			dst[x*4+y] = s >> 12
		}
	}
}

// MaxQP is the largest legal quantizer (as in H.264/x264).
const MaxQP = 51

// qstep maps QP to the quantization step in coefficient units. Step doubles
// every 6 QP, anchored so that QP 0 is effectively lossless for 8-bit
// residuals and QP 51 retains only gross structure.
var qstep [MaxQP + 1]int32

func init() {
	// qstep[qp] = round(0.675 * 2^((qp-4)/6) * 2), computed in integer form
	// by repeated doubling from a fixed-point seed table for one octave.
	seed := [6]int32{86, 97, 109, 122, 137, 153} // 0.675*2^((i)/6)*128
	for qp := 0; qp <= MaxQP; qp++ {
		oct := qp / 6
		s := seed[qp%6] << uint(oct) // 128 * step
		v := (s + 32) >> 6           // step * 2, rounded
		if v < 1 {
			v = 1
		}
		qstep[qp] = v
	}
	initQuantRecip()
}

// QStep returns the quantization step (x2 fixed point) for qp.
func QStep(qp int) int32 {
	if qp < 0 {
		qp = 0
	}
	if qp > MaxQP {
		qp = MaxQP
	}
	return qstep[qp]
}

// Dead-zone numerators out of 64, as in x264: intra blocks use a larger
// rounding offset because intra residual statistics are flatter.
const (
	DeadzoneIntra = 21
	DeadzoneInter = 11
)

func clampQP(qp int) int {
	if qp < 0 {
		return 0
	}
	if qp > MaxQP {
		return MaxQP
	}
	return qp
}

// Zigzag is the coefficient scan order for 4x4 blocks.
var Zigzag = [16]int{0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15}

// TrellisQuant performs rate-distortion-aware quantization: it first applies
// the dead-zone quantizer, then for every nonzero coefficient considers the
// level below (including zero) and keeps the choice minimizing
// distortion + lambda*rate, where rate is the exp-Golomb level cost plus a
// run bonus for created zeros. Level 1 trellis in x264 applies this to the
// final encode; level 2 applies it during mode decision as well — that
// policy choice lives in the caller. Returns the nonzero count.
func TrellisQuant(b *Block, qp int, deadzone int32, lambda int32) int {
	orig := *b // keep pre-quant coefficients for distortion
	Quant(b, qp, deadzone)
	step := qstep[clampQP(qp)]
	nz := 0
	for i, l := range b {
		if l == 0 {
			continue
		}
		// Candidate A: current level. Candidate B: one step toward zero.
		cand := [2]int32{l, l - sign32(l)}
		best, bestCost := l, int64(0)
		for k, c := range cand {
			recon := c * step / 2
			d := int64(orig[i] - recon)
			cost := d*d + int64(lambda)*int64(levelBits(c))
			if k == 0 || cost < bestCost {
				best, bestCost = c, cost
			}
		}
		b[i] = best
		if best != 0 {
			nz++
		}
	}
	return nz
}

func sign32(v int32) int32 {
	if v < 0 {
		return -1
	}
	return 1
}

// levelBits returns the signed exp-Golomb bit cost of coding level l.
func levelBits(l int32) int32 {
	if l == 0 {
		return 1
	}
	v := uint32(2 * l)
	if l < 0 {
		v = uint32(-2*l) | 1
	}
	bits := int32(1)
	for v > 0 {
		bits += 2
		v >>= 1
	}
	return bits - 2 + 1
}
