package transform

// 8x8 transform support (x264's --8x8dct): a fixed-point orthonormal 8x8
// DCT-II with matching quantization and scan. Larger basis functions code
// smooth areas more compactly than four 4x4 transforms; the codec exposes
// it behind Options.DCT8x8.

// Block8 is an 8x8 residual block in raster order.
type Block8 [64]int32

// cos16Tab holds cos(k*pi/16) for k = 0..8 to full double precision; the
// whole 8-point DCT basis reduces to these nine constants by symmetry.
var cos16Tab = [9]float64{
	1,
	0.9807852804032304,
	0.9238795325112867,
	0.8314696123025452,
	0.7071067811865476,
	0.5555702330196022,
	0.3826834323650898,
	0.19509032201612825,
	0,
}

// cos16 returns cos(m*pi/16) for any integer m.
func cos16(m int) float64 {
	m %= 32
	if m < 0 {
		m += 32
	}
	if m > 16 {
		m = 32 - m // cos(2pi - t) = cos(t)
	}
	if m > 8 {
		return -cos16Tab[16-m] // cos(pi - t) = -cos(t)
	}
	return cos16Tab[m]
}

// dct8C is the 8-point DCT-II basis scaled by 256 (rows are basis vectors).
var dct8C [8][8]int32

func init() {
	for u := 0; u < 8; u++ {
		cu := 0.5 // sqrt(2/8)
		if u == 0 {
			cu = 0.35355339059327373 // sqrt(1/8)
		}
		for x := 0; x < 8; x++ {
			v := cos16((2*x+1)*u) * cu * 256
			if v >= 0 {
				dct8C[u][x] = int32(v + 0.5)
			} else {
				dct8C[u][x] = int32(v - 0.5)
			}
		}
	}
}

// fdct8Scalar is the triple-loop reference for the packed FDCT8 in swar.go.
func fdct8Scalar(src, dst *Block8) {
	var tmp [64]int32
	for y := 0; y < 8; y++ {
		r := src[y*8 : y*8+8]
		for u := 0; u < 8; u++ {
			c := &dct8C[u]
			var s int32
			for x := 0; x < 8; x++ {
				s += r[x] * c[x]
			}
			tmp[y*8+u] = roundShift8(s)
		}
	}
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var s int32
			c := &dct8C[u]
			for y := 0; y < 8; y++ {
				s += c[y] * tmp[y*8+v]
			}
			dst[u*8+v] = roundShift8(s)
		}
	}
}

// roundShift8 divides by 256 with round-to-nearest.
func roundShift8(s int32) int32 {
	if s >= 0 {
		return (s + 128) >> 8
	}
	return -((-s + 128) >> 8)
}

// idct8Scalar is the triple-loop reference for the packed IDCT8 in swar.go.
func idct8Scalar(src, dst *Block8) {
	var tmp [64]int32
	for v := 0; v < 8; v++ {
		for x := 0; x < 8; x++ {
			var s int32
			for u := 0; u < 8; u++ {
				s += dct8C[u][x] * src[u*8+v]
			}
			tmp[x*8+v] = roundShift8(s)
		}
	}
	for x := 0; x < 8; x++ {
		r := tmp[x*8 : x*8+8]
		for y := 0; y < 8; y++ {
			var s int32
			for v := 0; v < 8; v++ {
				s += r[v] * dct8C[v][y]
			}
			dst[x*8+y] = roundShift8(s)
		}
	}
}

// Zigzag8 is the 8x8 coefficient scan order (standard JPEG/H.264 zigzag).
var Zigzag8 = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}
