package transform

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// The packed 4x4 transforms are exact mod 2^32, so their equivalence tests
// draw from the full int32 range. The 8x8 pair routes rounding through a
// per-lane absolute value, exact while pass sums stay below 2^31-128;
// inputs up to 2^18 keep the column-pass sums under 2^30, three orders of
// magnitude beyond any real residual (|r| <= 255) or dequantized
// coefficient the encoder produces.
const max8Input = 1 << 18

func TestDCT8BasisSymmetry(t *testing.T) {
	// The fwd8/inv8 folding relies on the *rounded integer* table keeping
	// the cosine symmetry c[u][7-x] = (-1)^u * c[u][x] exactly.
	for u := 0; u < 8; u++ {
		for x := 0; x < 4; x++ {
			want := dct8C[u][x]
			if u&1 == 1 {
				want = -want
			}
			if dct8C[u][7-x] != want {
				t.Fatalf("dct8C[%d][%d] = %d, want %d", u, 7-x, dct8C[u][7-x], want)
			}
		}
	}
}

func randBlock(rng *rand.Rand, bound int32) Block {
	var b Block
	for i := range b {
		if bound == 0 {
			b[i] = int32(rng.Uint32()) // full range, including overflow territory
		} else {
			b[i] = rng.Int31n(2*bound+1) - bound
		}
	}
	return b
}

func randBlock8(rng *rand.Rand, bound int32) Block8 {
	var b Block8
	for i := range b {
		b[i] = rng.Int31n(2*bound+1) - bound
	}
	return b
}

func TestFDCTMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bounds := []int32{1, 9, 255, 4096, 1 << 20, 0} // 0 = full int32 range
	for _, bound := range bounds {
		for it := 0; it < 2000; it++ {
			src := randBlock(rng, bound)
			var got, want Block
			FDCT(&src, &got)
			fdctScalar(&src, &want)
			if got != want {
				t.Fatalf("bound %d: FDCT mismatch\nsrc  %v\ngot  %v\nwant %v", bound, src, got, want)
			}
		}
	}
}

func TestIDCTMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	bounds := []int32{1, 9, 255, 4096, 1 << 20, 0}
	for _, bound := range bounds {
		for it := 0; it < 2000; it++ {
			src := randBlock(rng, bound)
			var got, want Block
			IDCT(&src, &got)
			idctScalar(&src, &want)
			if got != want {
				t.Fatalf("bound %d: IDCT mismatch\nsrc  %v\ngot  %v\nwant %v", bound, src, got, want)
			}
		}
	}
}

func TestFDCT8MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, bound := range []int32{1, 9, 255, 4096, max8Input} {
		for it := 0; it < 1000; it++ {
			src := randBlock8(rng, bound)
			var got, want Block8
			FDCT8(&src, &got)
			fdct8Scalar(&src, &want)
			if got != want {
				t.Fatalf("bound %d: FDCT8 mismatch\nsrc  %v\ngot  %v\nwant %v", bound, src, got, want)
			}
		}
	}
}

func TestIDCT8MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, bound := range []int32{1, 9, 255, 4096, max8Input} {
		for it := 0; it < 1000; it++ {
			src := randBlock8(rng, bound)
			var got, want Block8
			IDCT8(&src, &got)
			idct8Scalar(&src, &want)
			if got != want {
				t.Fatalf("bound %d: IDCT8 mismatch\nsrc  %v\ngot  %v\nwant %v", bound, src, got, want)
			}
		}
	}
}

// quantRefBlock runs the scalar quantizer with the same step/offset
// derivation as the exported Quant.
func quantRefBlock(b []int32, qp int, deadzone int32) int {
	q := clampQP(qp)
	step := qstep[q]
	return quantScalar(b, step, step*deadzone/64)
}

func TestQuantMatchesScalarExhaustivePairs(t *testing.T) {
	// Every (qp, coefficient) pair across the packed path's range boundary:
	// c sweeps through quantMaxC on both sides so the bail-out and the
	// reciprocal are both exercised for every step size.
	for qp := 0; qp <= MaxQP; qp++ {
		for c := int32(-4200); c <= 4200; c += 3 {
			b := Block{c, -c, c + 1, c - 1, c, c, 0, 1, -1, c, c / 2, -c / 2, c, c, c, -c}
			want := b
			wnz := quantRefBlock(want[:], qp, DeadzoneIntra)
			got := b
			gnz := Quant(&got, qp, DeadzoneIntra)
			if got != want || gnz != wnz {
				t.Fatalf("qp %d c %d: Quant mismatch nz %d/%d\ngot  %v\nwant %v", qp, c, gnz, wnz, got, want)
			}
		}
	}
}

func TestQuantMatchesScalarRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for _, bound := range []int32{1, 40, 4000, 4100, 1 << 16, 0} {
		for it := 0; it < 1500; it++ {
			qp := rng.Intn(MaxQP + 1)
			dz := int32(DeadzoneInter)
			if it&1 == 1 {
				dz = DeadzoneIntra
			}
			b := randBlock(rng, bound)
			want := b
			wnz := quantRefBlock(want[:], qp, dz)
			got := b
			gnz := Quant(&got, qp, dz)
			if got != want || gnz != wnz {
				t.Fatalf("bound %d qp %d dz %d: Quant mismatch nz %d/%d\nin   %v\ngot  %v\nwant %v",
					bound, qp, dz, gnz, wnz, b, got, want)
			}
		}
	}
}

func TestQuant8MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, bound := range []int32{40, 4000, 4100, 1 << 16} {
		for it := 0; it < 800; it++ {
			qp := rng.Intn(MaxQP + 1)
			b := randBlock8(rng, bound)
			want := b
			q := clampQP(qp)
			wnz := quantScalar(want[:], qstep[q], qstep[q]*DeadzoneInter/64)
			got := b
			gnz := Quant8(&got, qp, DeadzoneInter)
			if got != want || gnz != wnz {
				t.Fatalf("bound %d qp %d: Quant8 mismatch nz %d/%d", bound, qp, gnz, wnz)
			}
		}
	}
}

func dequantRefBlock(b []int32, qp int) {
	step := qstep[clampQP(qp)]
	for i, l := range b {
		b[i] = l * step / 2
	}
}

func TestDequantMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	// Bounds straddle the 2^15 packed-path limit so both paths run.
	for _, bound := range []int32{1, 1000, 1<<15 - 1, 1 << 15, 1 << 20, 0} {
		for it := 0; it < 1500; it++ {
			qp := rng.Intn(MaxQP + 1)
			b := randBlock(rng, bound)
			want := b
			dequantRefBlock(want[:], qp)
			got := b
			Dequant(&got, qp)
			if got != want {
				t.Fatalf("bound %d qp %d: Dequant mismatch\nin   %v\ngot  %v\nwant %v", bound, qp, b, got, want)
			}
		}
	}
}

func TestDequant8MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	for _, bound := range []int32{1000, 1<<15 - 1, 1 << 20} {
		for it := 0; it < 600; it++ {
			qp := rng.Intn(MaxQP + 1)
			b := randBlock8(rng, bound)
			want := b
			dequantRefBlock(want[:], qp)
			got := b
			Dequant8(&got, qp)
			if got != want {
				t.Fatalf("bound %d qp %d: Dequant8 mismatch", bound, qp)
			}
		}
	}
}

func blockFromBytes(data []byte) (Block, bool) {
	if len(data) < 64 {
		return Block{}, false
	}
	var b Block
	for i := range b {
		b[i] = int32(binary.LittleEndian.Uint32(data[i*4:]))
	}
	return b, true
}

func FuzzFDCTEquivalence(f *testing.F) {
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		src, ok := blockFromBytes(data)
		if !ok {
			return
		}
		var got, want Block
		FDCT(&src, &got)
		fdctScalar(&src, &want)
		if got != want {
			t.Fatalf("FDCT mismatch for %v: %v != %v", src, got, want)
		}
		IDCT(&src, &got)
		idctScalar(&src, &want)
		if got != want {
			t.Fatalf("IDCT mismatch for %v: %v != %v", src, got, want)
		}
	})
}

func FuzzQuantEquivalence(f *testing.F) {
	f.Add(uint8(26), uint8(0), make([]byte, 64))
	f.Fuzz(func(t *testing.T, qpRaw, dzSel uint8, data []byte) {
		b, ok := blockFromBytes(data)
		if !ok {
			return
		}
		qp := int(qpRaw) % (MaxQP + 1)
		dz := int32(DeadzoneInter)
		if dzSel&1 == 1 {
			dz = DeadzoneIntra
		}
		want := b
		wnz := quantRefBlock(want[:], qp, dz)
		got := b
		gnz := Quant(&got, qp, dz)
		if got != want || gnz != wnz {
			t.Fatalf("Quant mismatch qp %d dz %d for %v", qp, dz, b)
		}
		// Levels (any magnitude, fuzz may hand us wild blocks) back through
		// the dequantizer.
		dq := got
		ref := got
		dequantRefBlock(ref[:], qp)
		Dequant(&dq, qp)
		if dq != ref {
			t.Fatalf("Dequant mismatch qp %d for %v", qp, got)
		}
	})
}

func FuzzFDCT8Equivalence(f *testing.F) {
	f.Add(make([]byte, 256))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 256 {
			return
		}
		var src Block8
		for i := range src {
			v := int32(binary.LittleEndian.Uint32(data[i*4:]))
			// Clamp into the documented exactness domain of the packed 8x8
			// rounding (see swar.go); real residuals are far smaller still.
			src[i] = v % max8Input
		}
		var got, want Block8
		FDCT8(&src, &got)
		fdct8Scalar(&src, &want)
		if got != want {
			t.Fatalf("FDCT8 mismatch for %v", src)
		}
		IDCT8(&src, &got)
		idct8Scalar(&src, &want)
		if got != want {
			t.Fatalf("IDCT8 mismatch for %v", src)
		}
	})
}
