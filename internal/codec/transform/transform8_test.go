package transform

import (
	"testing"
	"testing/quick"
)

func TestFDCT8IDCT8Roundtrip(t *testing.T) {
	f := func(raw [64]int16) bool {
		var in, freq, out Block8
		for i, v := range raw {
			in[i] = int32(v % 256)
		}
		FDCT8(&in, &freq)
		IDCT8(&freq, &out)
		for i := range in {
			d := in[i] - out[i]
			if d < -6 || d > 6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFDCT8DCValue(t *testing.T) {
	var in, freq Block8
	for i := range in {
		in[i] = 50
	}
	FDCT8(&in, &freq)
	// Orthonormal: DC = 8 * 50 = 400.
	if freq[0] < 392 || freq[0] > 408 {
		t.Fatalf("DC of flat 50-block: %d, want ~400", freq[0])
	}
	for i := 1; i < 64; i++ {
		if freq[i] < -3 || freq[i] > 3 {
			t.Fatalf("AC[%d] of flat block: %d", i, freq[i])
		}
	}
}

func TestQuant8DequantBounded(t *testing.T) {
	f := func(raw [64]int16, qpRaw uint8) bool {
		qp := int(qpRaw) % (MaxQP + 1)
		var b Block8
		for i, v := range raw {
			b[i] = int32(v % 512)
		}
		orig := b
		Quant8(&b, qp, DeadzoneInter)
		Dequant8(&b, qp)
		step := QStep(qp)
		for i := range b {
			d := orig[i] - b[i]
			if d < 0 {
				d = -d
			}
			if d > step+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestZigzag8IsPermutation(t *testing.T) {
	seen := [64]bool{}
	for _, p := range Zigzag8 {
		if p < 0 || p > 63 || seen[p] {
			t.Fatalf("zigzag8 invalid at %d", p)
		}
		seen[p] = true
	}
	if Zigzag8[0] != 0 || Zigzag8[1] != 1 || Zigzag8[2] != 8 {
		t.Fatal("zigzag8 scan start wrong")
	}
}

func TestCos16Symmetries(t *testing.T) {
	cases := []struct {
		m    int
		want float64
	}{
		{0, 1}, {8, 0}, {16, -1}, {4, 0.7071067811865476},
		{24, 0}, {28, 0.7071067811865476}, {-4, 0.7071067811865476},
		{12, -0.7071067811865476}, {32, 1},
	}
	for _, c := range cases {
		got := cos16(c.m)
		d := got - c.want
		if d < -1e-12 || d > 1e-12 {
			t.Fatalf("cos16(%d) = %v, want %v", c.m, got, c.want)
		}
	}
}
