package transform

// SWAR transforms and quantizers: the 32-bit-lane counterpart of the
// 16-bit-lane pixel kernels in internal/frame/swar.go. Residual math needs
// wider lanes — a 4x4 row pass already reaches +-42840 — so two int32
// coefficients ride per uint64 with carry-masked lane add/sub (Hacker's
// Delight §2-18 with the mask widened to bit 31/63) and per-lane modular
// multiplies. The butterfly decompositions cut the multiply count of the
// 4-point basis from 16 to 4 per pass (32/42/17 structure) and of the
// 8-point basis from 64 to 32 (even/odd symmetry), and the packed add/sub
// stages then do two rows or columns per operation.
//
// Exactness: every lane operation is two's-complement arithmetic mod 2^32,
// which is exactly what the scalar int32 reference computes, so the 4x4
// FDCT/IDCT match fdctScalar/idctScalar for *all* inputs (including
// wrapped overflow). The 8x8 pair routes its symmetric rounding through a
// per-lane absolute value and matches fdct8Scalar/idct8Scalar for every
// input whose pass sums stay below 2^31-128 — far beyond any residual or
// dequantized coefficient the codec produces. The quantizers keep the
// scalar division as the fallback: the packed path proves its
// multiply-shift reciprocal exact at init time and bails out (leaving the
// block untouched) whenever a coefficient exceeds the verified range.

const (
	signs32 = 0x8000000080000000 // sign bit of each 32-bit lane
	ones32  = 0x0000000100000001 // 1 in each 32-bit lane
	low32   = 0x00000000FFFFFFFF
)

func pack2(a, b int32) uint64 {
	return uint64(uint32(a)) | uint64(uint32(b))<<32
}

func unpack2(x uint64) (int32, int32) {
	return int32(uint32(x)), int32(uint32(x >> 32))
}

// lane32Add and lane32Sub add/subtract the two 32-bit two's-complement
// lanes independently: the sign bits are masked out of the partial
// operation and patched back with xor so no carry or borrow crosses the
// lane boundary.
func lane32Add(x, y uint64) uint64 {
	return ((x &^ signs32) + (y &^ signs32)) ^ ((x ^ y) & signs32)
}

func lane32Sub(x, y uint64) uint64 {
	return ((x | signs32) - (y &^ signs32)) ^ ((x ^ ^y) & signs32)
}

// lane32Mul multiplies both lanes by the scalar constant c, each product
// reduced mod 2^32 — exactly the scalar int32 multiply.
func lane32Mul(x uint64, c int32) uint64 {
	cu := uint64(uint32(c))
	return (uint64(uint32(x))*cu)&low32 | ((x>>32)*cu)<<32
}

// lane32Shl5 multiplies both lanes by 32 (the DC basis weight) as a
// masked shift: (v mod 2^27) << 5 is v*32 mod 2^32 per lane.
func lane32Shl5(x uint64) uint64 {
	return (x & 0x07FFFFFF07FFFFFF) << 5
}

// lane32Abs returns per-lane |x| together with the per-lane negation mask
// (0xFFFFFFFF in negative lanes) and the per-lane sign bit as 0/1, so
// callers can re-apply the signs with one lane32Add(v^m, neg).
func lane32Abs(x uint64) (abs, neg, m uint64) {
	neg = (x >> 31) & ones32
	m = neg * 0xFFFFFFFF
	abs = lane32Add(x^m, neg)
	return
}

// lane32RoundShift12 applies the 4x4 transforms' rounding shift per lane:
// add +-2048 by sign, then arithmetic shift right 12 (logical shift plus
// re-extended sign bits).
func lane32RoundShift12(x uint64) uint64 {
	neg := (x >> 31) & ones32
	x = lane32Add(x, 0x0000080000000800)
	x = lane32Sub(x, neg<<12)
	neg = (x >> 31) & ones32
	return ((x >> 12) & 0x000FFFFF000FFFFF) | neg*0xFFF00000
}

// lane32RoundShiftSym8 applies roundShift8's symmetric /256 per lane:
// round the magnitude, then restore the sign.
func lane32RoundShiftSym8(x uint64) uint64 {
	a, neg, m := lane32Abs(x)
	r := ((a + 0x0000008000000080) >> 8) & 0x00FFFFFF00FFFFFF
	return lane32Add(r^m, neg)
}

// FDCT performs the forward 4x4 transform of src into dst. The output is in
// source scale (orthonormal): a flat block of value v yields DC = 4*v.
//
// Butterfly form of the {32,42,17} basis: with e0=r0+r3, e1=r1+r2,
// o0=r0-r3, o1=r1-r2 the four outputs are 32*(e0+e1), 42*o0+17*o1,
// 32*(e0-e1), 17*o0-42*o1. Two rows (then two columns) ride the lanes of
// each packed word.
func FDCT(src *Block, dst *Block) {
	var tmp Block
	for y := 0; y < 4; y += 2 {
		x0 := pack2(src[y*4+0], src[y*4+4])
		x1 := pack2(src[y*4+1], src[y*4+5])
		x2 := pack2(src[y*4+2], src[y*4+6])
		x3 := pack2(src[y*4+3], src[y*4+7])
		e0, e1 := lane32Add(x0, x3), lane32Add(x1, x2)
		o0, o1 := lane32Sub(x0, x3), lane32Sub(x1, x2)
		t0 := lane32Shl5(lane32Add(e0, e1))
		t1 := lane32Add(lane32Mul(o0, 42), lane32Mul(o1, 17))
		t2 := lane32Shl5(lane32Sub(e0, e1))
		t3 := lane32Sub(lane32Mul(o0, 17), lane32Mul(o1, 42))
		tmp[y*4+0], tmp[y*4+4] = unpack2(t0)
		tmp[y*4+1], tmp[y*4+5] = unpack2(t1)
		tmp[y*4+2], tmp[y*4+6] = unpack2(t2)
		tmp[y*4+3], tmp[y*4+7] = unpack2(t3)
	}
	for v := 0; v < 4; v += 2 {
		x0 := pack2(tmp[v], tmp[v+1])
		x1 := pack2(tmp[4+v], tmp[4+v+1])
		x2 := pack2(tmp[8+v], tmp[8+v+1])
		x3 := pack2(tmp[12+v], tmp[12+v+1])
		e0, e1 := lane32Add(x0, x3), lane32Add(x1, x2)
		o0, o1 := lane32Sub(x0, x3), lane32Sub(x1, x2)
		t0 := lane32Shl5(lane32Add(e0, e1))
		t1 := lane32Add(lane32Mul(o0, 42), lane32Mul(o1, 17))
		t2 := lane32Shl5(lane32Sub(e0, e1))
		t3 := lane32Sub(lane32Mul(o0, 17), lane32Mul(o1, 42))
		dst[0+v], dst[0+v+1] = unpack2(lane32RoundShift12(t0))
		dst[4+v], dst[4+v+1] = unpack2(lane32RoundShift12(t1))
		dst[8+v], dst[8+v+1] = unpack2(lane32RoundShift12(t2))
		dst[12+v], dst[12+v+1] = unpack2(lane32RoundShift12(t3))
	}
}

// IDCT performs the inverse 4x4 transform of src into dst, the exact adjoint
// of FDCT to within rounding. The transposed basis butterflies differently:
// e0=32*(s0+s2), e1=32*(s0-s2), o0=42*s1+17*s3, o1=17*s1-42*s3 and the
// outputs are e0+o0, e1+o1, e1-o1, e0-o0.
func IDCT(src *Block, dst *Block) {
	var tmp Block
	for v := 0; v < 4; v += 2 {
		s0 := pack2(src[v], src[v+1])
		s1 := pack2(src[4+v], src[4+v+1])
		s2 := pack2(src[8+v], src[8+v+1])
		s3 := pack2(src[12+v], src[12+v+1])
		e0 := lane32Shl5(lane32Add(s0, s2))
		e1 := lane32Shl5(lane32Sub(s0, s2))
		o0 := lane32Add(lane32Mul(s1, 42), lane32Mul(s3, 17))
		o1 := lane32Sub(lane32Mul(s1, 17), lane32Mul(s3, 42))
		tmp[0+v], tmp[0+v+1] = unpack2(lane32Add(e0, o0))
		tmp[4+v], tmp[4+v+1] = unpack2(lane32Add(e1, o1))
		tmp[8+v], tmp[8+v+1] = unpack2(lane32Sub(e1, o1))
		tmp[12+v], tmp[12+v+1] = unpack2(lane32Sub(e0, o0))
	}
	for x := 0; x < 4; x += 2 {
		r0 := pack2(tmp[x*4+0], tmp[x*4+4])
		r1 := pack2(tmp[x*4+1], tmp[x*4+5])
		r2 := pack2(tmp[x*4+2], tmp[x*4+6])
		r3 := pack2(tmp[x*4+3], tmp[x*4+7])
		e0 := lane32Shl5(lane32Add(r0, r2))
		e1 := lane32Shl5(lane32Sub(r0, r2))
		o0 := lane32Add(lane32Mul(r1, 42), lane32Mul(r3, 17))
		o1 := lane32Sub(lane32Mul(r1, 17), lane32Mul(r3, 42))
		dst[x*4+0], dst[x*4+4] = unpack2(lane32RoundShift12(lane32Add(e0, o0)))
		dst[x*4+1], dst[x*4+5] = unpack2(lane32RoundShift12(lane32Add(e1, o1)))
		dst[x*4+2], dst[x*4+6] = unpack2(lane32RoundShift12(lane32Sub(e1, o1)))
		dst[x*4+3], dst[x*4+7] = unpack2(lane32RoundShift12(lane32Sub(e0, o0)))
	}
}

// dct8Fwd applies the forward 8-point DCT-II to eight packed words (two
// rows or columns per lane). The basis is symmetric in x for even u and
// antisymmetric for odd u, so four multiplies per output on the folded
// sums/differences replace eight on the raw samples.
func dct8Fwd(x *[8]uint64) (out [8]uint64) {
	var e, o [4]uint64
	for i := 0; i < 4; i++ {
		e[i] = lane32Add(x[i], x[7-i])
		o[i] = lane32Sub(x[i], x[7-i])
	}
	for u := 0; u < 8; u++ {
		c := &dct8C[u]
		half := &e
		if u&1 == 1 {
			half = &o
		}
		acc := lane32Mul(half[0], c[0])
		acc = lane32Add(acc, lane32Mul(half[1], c[1]))
		acc = lane32Add(acc, lane32Mul(half[2], c[2]))
		acc = lane32Add(acc, lane32Mul(half[3], c[3]))
		out[u] = lane32RoundShiftSym8(acc)
	}
	return
}

// dct8Inv applies the transposed 8-point basis: the even-index inputs form
// a part symmetric across the output midpoint and the odd-index inputs an
// antisymmetric part, so outputs pair up as P+Q / P-Q.
func dct8Inv(s *[8]uint64) (out [8]uint64) {
	for x := 0; x < 4; x++ {
		p := lane32Mul(s[0], dct8C[0][x])
		p = lane32Add(p, lane32Mul(s[2], dct8C[2][x]))
		p = lane32Add(p, lane32Mul(s[4], dct8C[4][x]))
		p = lane32Add(p, lane32Mul(s[6], dct8C[6][x]))
		q := lane32Mul(s[1], dct8C[1][x])
		q = lane32Add(q, lane32Mul(s[3], dct8C[3][x]))
		q = lane32Add(q, lane32Mul(s[5], dct8C[5][x]))
		q = lane32Add(q, lane32Mul(s[7], dct8C[7][x]))
		out[x] = lane32RoundShiftSym8(lane32Add(p, q))
		out[7-x] = lane32RoundShiftSym8(lane32Sub(p, q))
	}
	return
}

// FDCT8 performs the forward 8x8 transform of src into dst (orthonormal
// scaling: a flat block of value v yields DC = 8*v).
func FDCT8(src, dst *Block8) {
	var tmp Block8
	for y := 0; y < 8; y += 2 {
		var x [8]uint64
		for i := 0; i < 8; i++ {
			x[i] = pack2(src[y*8+i], src[y*8+8+i])
		}
		out := dct8Fwd(&x)
		for u := 0; u < 8; u++ {
			tmp[y*8+u], tmp[y*8+8+u] = unpack2(out[u])
		}
	}
	for v := 0; v < 8; v += 2 {
		var x [8]uint64
		for y := 0; y < 8; y++ {
			x[y] = pack2(tmp[y*8+v], tmp[y*8+v+1])
		}
		out := dct8Fwd(&x)
		for u := 0; u < 8; u++ {
			dst[u*8+v], dst[u*8+v+1] = unpack2(out[u])
		}
	}
}

// IDCT8 performs the inverse 8x8 transform.
func IDCT8(src, dst *Block8) {
	var tmp Block8
	for v := 0; v < 8; v += 2 {
		var s [8]uint64
		for u := 0; u < 8; u++ {
			s[u] = pack2(src[u*8+v], src[u*8+v+1])
		}
		out := dct8Inv(&s)
		for x := 0; x < 8; x++ {
			tmp[x*8+v], tmp[x*8+v+1] = unpack2(out[x])
		}
	}
	for x := 0; x < 8; x += 2 {
		var s [8]uint64
		for v := 0; v < 8; v++ {
			s[v] = pack2(tmp[x*8+v], tmp[x*8+8+v])
		}
		out := dct8Inv(&s)
		for y := 0; y < 8; y++ {
			dst[x*8+y], dst[x*8+8+y] = unpack2(out[y])
		}
	}
}

// --- packed quantization -----------------------------------------------------

// The packed quantizer replaces the per-coefficient signed division with a
// multiply-shift reciprocal, two coefficients per 64-bit multiply. The
// reciprocal is only used where it is *provably* exact: init verifies
// (n*m)>>quantShift == n/step for every numerator the fast path admits, and
// the per-block magnitude check routes anything larger (or any step whose
// reciprocal would overflow a lane) to the scalar divider.
const (
	quantShift = 22
	quantMaxN  = 1 << 13 // exclusive bound on 2*|c| + deadzone offset
	quantMaxC  = 4015    // largest |coefficient| the packed path accepts
)

type quantRecipEntry struct {
	m  uint64
	ok bool
}

var quantRecip [MaxQP + 1]quantRecipEntry

// initQuantRecip is called from the qstep init in transform.go (file init
// order would run this one first, before the step table exists).
func initQuantRecip() {
	for qp := 0; qp <= MaxQP; qp++ {
		d := uint64(qstep[qp])
		m := (uint64(1)<<quantShift)/d + 1
		if m >= 1<<19 {
			continue // n*m could overflow a 32-bit lane; keep scalar
		}
		ok := true
		for n := uint64(0); n < quantMaxN; n++ {
			if (n*m)>>quantShift != n/d {
				ok = false
				break
			}
		}
		quantRecip[qp] = quantRecipEntry{m: m, ok: ok}
	}
}

// quantPacked quantizes b in place through the reciprocal fast path,
// returning the nonzero count and whether the path applied. When it
// reports false the block is untouched and the caller must run the scalar
// quantizer.
func quantPacked(b []int32, qp int, off int32) (int, bool) {
	qr := &quantRecip[qp]
	if !qr.ok {
		return 0, false
	}
	n := len(b) / 2
	var abs, sign, negs [32]uint64
	var rangeOr uint64
	for i := 0; i < n; i++ {
		a, neg, m := lane32Abs(pack2(b[2*i], b[2*i+1]))
		abs[i], sign[i], negs[i] = a, m, neg
		// Bias each magnitude so the quantMaxC bound becomes a power-of-two
		// bit test on the accumulated OR.
		rangeOr |= a + (4095-quantMaxC)*ones32
	}
	if rangeOr&0xFFFFF000FFFFF000 != 0 {
		return 0, false // some |c| > quantMaxC: scalar path
	}
	offL := uint64(uint32(off)) * ones32
	nz := 0
	for i := 0; i < n; i++ {
		// numerator lanes 2*|c|+off stay below quantMaxN, so both lane
		// products of the single 64-bit multiply are exact.
		num := (abs[i] << 1) + offL
		prod := num * qr.m
		l0 := (prod >> quantShift) & 0x3FF
		l1 := prod >> (32 + quantShift)
		if l0 != 0 {
			nz++
		}
		if l1 != 0 {
			nz++
		}
		b[2*i], b[2*i+1] = unpack2(lane32Add((l0|l1<<32)^sign[i], negs[i]))
	}
	return nz, true
}

func quantScalar(b []int32, step, off int32) int {
	nz := 0
	for i, c := range b {
		neg := c < 0
		if neg {
			c = -c
		}
		// level = (2*c + dead zone) / step, where step is 2*qstep.
		l := (2*c + off) / step
		if l != 0 {
			nz++
		}
		if neg {
			l = -l
		}
		b[i] = l
	}
	return nz
}

// Quant quantizes the transformed block in place with the given QP and
// dead-zone, returning the number of nonzero coefficients. Coefficients are
// divided by QStep/2 with dead-zone rounding.
func Quant(b *Block, qp int, deadzone int32) int {
	q := clampQP(qp)
	step := qstep[q]
	off := step * deadzone / 64
	if nz, ok := quantPacked(b[:], q, off); ok {
		return nz
	}
	return quantScalar(b[:], step, off)
}

// Quant8 quantizes an 8x8 coefficient block in place, returning the
// nonzero count. Same step scale as the 4x4 quantizer.
func Quant8(b *Block8, qp int, deadzone int32) int {
	q := clampQP(qp)
	step := qstep[q]
	off := step * deadzone / 64
	if nz, ok := quantPacked(b[:], q, off); ok {
		return nz
	}
	return quantScalar(b[:], step, off)
}

// dequantPacked reconstructs magnitudes |l|*step>>1 in packed lanes and
// restores the signs, matching the scalar l*step/2 (Go division truncates
// toward zero, which on the magnitude is a plain shift). Levels at or
// above 2^15 fall back to scalar.
func dequantPacked(b []int32, step int32) bool {
	n := len(b) / 2
	var abs, sign, negs [32]uint64
	var rangeOr uint64
	for i := 0; i < n; i++ {
		a, neg, m := lane32Abs(pack2(b[2*i], b[2*i+1]))
		abs[i], sign[i], negs[i] = a, m, neg
		rangeOr |= a
	}
	if rangeOr&0xFFFF8000FFFF8000 != 0 {
		return false
	}
	s := uint64(uint32(step))
	for i := 0; i < n; i++ {
		p := ((abs[i] * s) >> 1) & 0x7FFFFFFF7FFFFFFF
		b[2*i], b[2*i+1] = unpack2(lane32Add(p^sign[i], negs[i]))
	}
	return true
}

// Dequant reconstructs coefficient magnitudes from levels in place.
func Dequant(b *Block, qp int) {
	step := qstep[clampQP(qp)]
	if dequantPacked(b[:], step) {
		return
	}
	for i, l := range b {
		b[i] = l * step / 2
	}
}

// Dequant8 reconstructs coefficient magnitudes in place.
func Dequant8(b *Block8, qp int) {
	step := qstep[clampQP(qp)]
	if dequantPacked(b[:], step) {
		return
	}
	for i, l := range b {
		b[i] = l * step / 2
	}
}
