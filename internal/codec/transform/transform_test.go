package transform

import (
	"testing"
	"testing/quick"
)

func TestFDCTIDCTRoundtrip(t *testing.T) {
	// The fixed-point transform must reconstruct within +-6 of the input
	// for 9-bit residuals (the 6-bit basis plus two rounding shifts bound
	// the error at ~1.2% of full scale, far below quantization error at
	// any practical QP).
	f := func(raw [16]int16) bool {
		var in, freq, out Block
		for i, v := range raw {
			in[i] = int32(v % 256)
		}
		FDCT(&in, &freq)
		IDCT(&freq, &out)
		for i := range in {
			d := in[i] - out[i]
			if d < -6 || d > 6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFDCTDCValue(t *testing.T) {
	// A flat block of value v has DC = 4*v (orthonormal scaling) and zero AC.
	var in, freq Block
	for i := range in {
		in[i] = 50
	}
	FDCT(&in, &freq)
	if freq[0] < 196 || freq[0] > 204 {
		t.Fatalf("DC of flat 50-block: %d, want ~200", freq[0])
	}
	for i := 1; i < 16; i++ {
		if freq[i] < -2 || freq[i] > 2 {
			t.Fatalf("AC[%d] of flat block: %d", i, freq[i])
		}
	}
}

func TestFDCTEnergyConservation(t *testing.T) {
	// Orthonormal transforms preserve energy to within rounding.
	f := func(raw [16]int8) bool {
		var in, freq Block
		var ein, efreq int64
		for i, v := range raw {
			in[i] = int32(v)
			ein += int64(v) * int64(v)
		}
		FDCT(&in, &freq)
		for _, c := range freq {
			efreq += int64(c) * int64(c)
		}
		// Allow 15% + constant slack for fixed-point rounding.
		diff := ein - efreq
		if diff < 0 {
			diff = -diff
		}
		return diff <= ein*15/100+64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQStepDoublesEverySix(t *testing.T) {
	for qp := 0; qp+6 <= MaxQP; qp++ {
		a, b := QStep(qp), QStep(qp+6)
		if a < 1 {
			t.Fatalf("QStep(%d) = %d < 1", qp, a)
		}
		// Doubling within rounding slack.
		if b < 2*a-2 || b > 2*a+2 {
			t.Errorf("QStep(%d)=%d -> QStep(%d)=%d, want ~2x", qp, a, qp+6, b)
		}
	}
}

func TestQStepClamps(t *testing.T) {
	if QStep(-5) != QStep(0) || QStep(99) != QStep(MaxQP) {
		t.Fatal("QStep must clamp out-of-range qp")
	}
}

func TestQuantDequantErrorBounded(t *testing.T) {
	f := func(raw [16]int16, qpRaw uint8) bool {
		qp := int(qpRaw) % (MaxQP + 1)
		var b Block
		for i, v := range raw {
			b[i] = int32(v % 512)
		}
		orig := b
		Quant(&b, qp, DeadzoneInter)
		Dequant(&b, qp)
		step := QStep(qp)
		for i := range b {
			d := orig[i] - b[i]
			if d < 0 {
				d = -d
			}
			// Reconstruction error is bounded by one quantization step.
			if d > step+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuantZeroQPNearLossless(t *testing.T) {
	var b Block
	for i := range b {
		b[i] = int32(i*3 - 20)
	}
	orig := b
	Quant(&b, 0, DeadzoneInter)
	Dequant(&b, 0)
	for i := range b {
		d := orig[i] - b[i]
		if d < -1 || d > 1 {
			t.Fatalf("qp0 coefficient %d: %d -> %d", i, orig[i], b[i])
		}
	}
}

func TestQuantNonzeroCount(t *testing.T) {
	var b Block
	b[0], b[5], b[15] = 1000, -1000, 500
	nz := Quant(&b, 23, DeadzoneInter)
	if nz != 3 {
		t.Fatalf("nz = %d, want 3", nz)
	}
	var zero Block
	if nz := Quant(&zero, 23, DeadzoneInter); nz != 0 {
		t.Fatalf("zero block nz = %d", nz)
	}
}

func TestHighQPKillsSmallCoefficients(t *testing.T) {
	var b Block
	for i := range b {
		b[i] = int32(i % 7) // small texture
	}
	if nz := Quant(&b, 51, DeadzoneInter); nz != 0 {
		t.Fatalf("qp51 kept %d small coefficients", nz)
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	seen := [16]bool{}
	for _, p := range Zigzag {
		if p < 0 || p > 15 || seen[p] {
			t.Fatalf("zigzag invalid at %d", p)
		}
		seen[p] = true
	}
	// Standard start: DC first, then (0,1), (1,0).
	if Zigzag[0] != 0 || Zigzag[1] != 1 || Zigzag[2] != 4 {
		t.Fatal("zigzag does not follow the standard scan start")
	}
}

func TestTrellisNeverIncreasesMagnitude(t *testing.T) {
	f := func(raw [16]int16, qpRaw uint8) bool {
		qp := int(qpRaw) % (MaxQP + 1)
		var plain, trell Block
		for i, v := range raw {
			plain[i] = int32(v % 512)
			trell[i] = plain[i]
		}
		Quant(&plain, qp, DeadzoneInter)
		TrellisQuant(&trell, qp, DeadzoneInter, 4)
		for i := range plain {
			p, q := plain[i], trell[i]
			if p < 0 {
				p = -p
			}
			if q < 0 {
				q = -q
			}
			if q > p {
				return false // trellis only moves levels toward zero
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestTrellisHighLambdaZeroesMore(t *testing.T) {
	mk := func() Block {
		var b Block
		for i := range b {
			b[i] = int32(8 + i)
		}
		return b
	}
	low, high := mk(), mk()
	nzLow := TrellisQuant(&low, 30, DeadzoneInter, 1)
	nzHigh := TrellisQuant(&high, 30, DeadzoneInter, 1<<14)
	if nzHigh > nzLow {
		t.Fatalf("higher lambda kept more coefficients (%d > %d)", nzHigh, nzLow)
	}
}

func TestIntraDeadzoneLargerThanInter(t *testing.T) {
	if DeadzoneIntra <= DeadzoneInter {
		t.Fatal("intra dead-zone must exceed inter (x264 convention)")
	}
}

func BenchmarkFDCT(b *testing.B) {
	var in, out Block
	for i := range in {
		in[i] = int32(i*5 - 40)
	}
	for i := 0; i < b.N; i++ {
		FDCT(&in, &out)
	}
}

func BenchmarkTrellisQuant(b *testing.B) {
	var in Block
	for i := range in {
		in[i] = int32(i*9 - 70)
	}
	for i := 0; i < b.N; i++ {
		blk := in
		TrellisQuant(&blk, 26, DeadzoneInter, 8)
	}
}
