package codec

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/vbench"
)

// FuzzDecode feeds arbitrary bytes to the decoder. The invariant is simple:
// never panic, never allocate absurdly — either return an error or a valid
// set of frames. `go test` runs the seed corpus; `go test -fuzz=FuzzDecode`
// explores further.
func FuzzDecode(f *testing.F) {
	// Seed with real bitstreams of assorted shapes plus junk.
	info, err := vbench.ByName("cat")
	if err != nil {
		f.Fatal(err)
	}
	src := vbench.NewSource(info, vbench.SourceOptions{Scale: 8})
	var frames []*frame.Frame
	for i := 0; i < 4; i++ {
		frames = append(frames, src.Frame(i))
	}
	for _, opt := range []Options{
		Defaults(),
		func() Options {
			o := Options{RC: RCCRF, CRF: 40, QP: 26, KeyintMax: 250}
			if err := ApplyPreset(&o, PresetUltrafast); err != nil {
				f.Fatal(err)
			}
			return o
		}(),
	} {
		enc, err := NewEncoder(frames[0].Width, frames[0].Height, info.FPS, opt, nil)
		if err != nil {
			f.Fatal(err)
		}
		stream, _, err := enc.EncodeAll(frames)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(stream)
		// Truncated and bit-flipped variants.
		f.Add(stream[:len(stream)/2])
		flipped := make([]byte, len(stream))
		copy(flipped, stream)
		for i := 16; i < len(flipped); i += 31 {
			flipped[i] ^= 0x55
		}
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte{0x52, 0x56, 0x43, 0x31})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(DecoderOptions{}, nil)
		out, info, err := dec.Decode(data)
		if err != nil {
			return
		}
		if info.Width <= 0 || info.Height <= 0 || len(out) == 0 {
			t.Fatalf("successful decode with degenerate result: %+v, %d frames", info, len(out))
		}
		for _, fr := range out {
			if fr.Width != info.Width || fr.Height != info.Height {
				t.Fatal("frame dimensions disagree with header")
			}
		}
	})
}
