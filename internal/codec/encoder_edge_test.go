package codec

import (
	"testing"

	"repro/internal/frame"
)

func TestSingleFrameEncode(t *testing.T) {
	frames := makeClip(t, "bike", 1, 8)
	stream, stats := encodeClip(t, frames, Defaults())
	if i, p, b := stats.CountTypes(); i != 1 || p != 0 || b != 0 {
		t.Fatalf("single frame types I/P/B = %d/%d/%d", i, p, b)
	}
	out, _, err := NewDecoder(DecoderOptions{}, nil).Decode(stream)
	if err != nil || len(out) != 1 {
		t.Fatalf("decode: %v, %d frames", err, len(out))
	}
}

func TestMinimumSizeVideo(t *testing.T) {
	// One macroblock: exercises every edge-of-picture path at once.
	f := frame.New(64, 64)
	for y := 0; y < 64; y++ {
		row := f.Y.Row(y)
		for x := range row {
			row[x] = uint8(x*y%200 + 20)
		}
	}
	f.ExtendEdges()
	enc, err := NewEncoder(64, 64, 30, Defaults(), nil)
	if err != nil {
		t.Fatal(err)
	}
	stream, _, err := enc.EncodeAll([]*frame.Frame{f, f.Clone(), f.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := NewDecoder(DecoderOptions{}, nil).Decode(stream)
	if err != nil || len(out) != 3 {
		t.Fatalf("decode: %v", err)
	}
	// Identical input frames: P frames should be almost free.
	if frame.PSNR(f, out[2]) < 30 {
		t.Fatalf("static tiny clip PSNR %.2f", frame.PSNR(f, out[2]))
	}
}

func TestRefsLargerThanClip(t *testing.T) {
	// 16 references requested on a 4-frame clip: the encoder must clamp to
	// the DPB contents gracefully.
	frames := makeClip(t, "girl", 4, 8)
	opt := Defaults()
	opt.Refs = 16
	opt.BFrames = 0
	stream, _ := encodeClip(t, frames, opt)
	if _, _, err := NewDecoder(DecoderOptions{}, nil).Decode(stream); err != nil {
		t.Fatal(err)
	}
}

func TestAllIntraEncode(t *testing.T) {
	frames := makeClip(t, "funny", 5, 8)
	opt := Defaults()
	opt.KeyintMax = 1
	opt.Scenecut = 0
	_, stats := encodeClip(t, frames, opt)
	i, p, b := stats.CountTypes()
	if i != 5 || p != 0 || b != 0 {
		t.Fatalf("keyint 1 produced I/P/B = %d/%d/%d", i, p, b)
	}
}

func TestMaxBFramesPlaceboStyle(t *testing.T) {
	frames := makeClip(t, "desktop", 20, 8)
	opt := Defaults()
	opt.BFrames = 16
	opt.BAdapt = 0
	opt.Scenecut = 0
	stream, stats := encodeClip(t, frames, opt)
	if _, _, b := stats.CountTypes(); b == 0 {
		t.Fatal("bframes 16 produced no B frames on static content")
	}
	out, _, err := NewDecoder(DecoderOptions{}, nil).Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range out {
		if f.PTS != i {
			t.Fatal("display order broken with deep B pyramid")
		}
	}
}

func TestQPDeltaChainSurvivesAQ(t *testing.T) {
	// Adaptive quantization varies QP per macroblock; the delta chain must
	// reproduce it exactly through encode/decode (verified via recon
	// equality at the stats level).
	frames := makeClip(t, "landscape", 6, 6)
	opt := Defaults()
	opt.AQMode = 1
	stream, stats := encodeClip(t, frames, opt)
	out, _, err := NewDecoder(DecoderOptions{}, nil).Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range stats.Frames {
		got := frame.PSNR(frames[fs.PTS], out[fs.PTS])
		if got != fs.PSNR {
			t.Fatalf("frame %d: decoder (%.6f) diverged from encoder (%.6f) under AQ", fs.PTS, got, fs.PSNR)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	frames := makeClip(t, "house", 6, 8)
	_, stats := encodeClip(t, frames, Defaults())
	var sum int64
	mbTotal := (frames[0].Width / 16) * (frames[0].Height / 16)
	for _, fs := range stats.Frames {
		sum += fs.Bits
		if fs.IntraMB+fs.InterMB+fs.SkipMB != mbTotal {
			t.Fatalf("frame %d MB counts do not add up: %d+%d+%d != %d",
				fs.PTS, fs.IntraMB, fs.InterMB, fs.SkipMB, mbTotal)
		}
	}
	if sum != stats.TotalBits {
		t.Fatalf("per-frame bits %d != total %d", sum, stats.TotalBits)
	}
	if stats.FPS != 30 || stats.Width != frames[0].Width {
		t.Fatal("stats metadata wrong")
	}
}
