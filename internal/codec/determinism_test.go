package codec

import (
	"bytes"
	"testing"
)

// TestEncoderDeterministic: identical inputs and options must produce
// byte-identical bitstreams — the property that makes every experiment in
// this repository reproducible.
func TestEncoderDeterministic(t *testing.T) {
	frames := makeClip(t, "game3", 8, 8)
	for _, opt := range []Options{
		Defaults(),
		func() Options {
			o := Options{RC: RCABR, CRF: 23, QP: 26, BitrateKbps: 600, KeyintMax: 250}
			if err := ApplyPreset(&o, PresetFast); err != nil {
				t.Fatal(err)
			}
			o.RC = RCABR
			o.BitrateKbps = 600
			return o
		}(),
	} {
		a, _ := encodeClip(t, frames, opt)
		b, _ := encodeClip(t, frames, opt)
		if !bytes.Equal(a, b) {
			t.Fatalf("nondeterministic bitstream under %v", opt.RC)
		}
	}
}

// TestEncoderIndependentOfTraceSink: attaching instrumentation must never
// change coded output (the simulator observes, it does not perturb).
func TestEncoderIndependentOfTraceSink(t *testing.T) {
	frames := makeClip(t, "game3", 6, 8)
	opt := Defaults()

	plain, err := NewEncoder(frames[0].Width, frames[0].Height, 30, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	sa, _, err := plain.EncodeAll(frames)
	if err != nil {
		t.Fatal(err)
	}

	traced, err := NewEncoder(frames[0].Width, frames[0].Height, 30, opt, &recordingSink{})
	if err != nil {
		t.Fatal(err)
	}
	sb, _, err := traced.EncodeAll(frames)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, sb) {
		t.Fatal("instrumentation changed the bitstream")
	}

	// Sampling must not change output either.
	opt.TraceSampleLog2 = 3
	sampled, err := NewEncoder(frames[0].Width, frames[0].Height, 30, opt, &recordingSink{})
	if err != nil {
		t.Fatal(err)
	}
	sc, _, err := sampled.EncodeAll(frames)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, sc) {
		t.Fatal("trace sampling changed the bitstream")
	}
}
