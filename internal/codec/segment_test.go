package codec

import (
	"bytes"
	"testing"

	"repro/internal/trace"
)

func TestSplitSegments(t *testing.T) {
	cases := []struct {
		n, parts int
		want     []Segment
	}{
		{16, 1, []Segment{{0, 16}}},
		{16, 2, []Segment{{0, 8}, {8, 16}}},
		{16, 4, []Segment{{0, 4}, {4, 8}, {8, 12}, {12, 16}}},
		{10, 3, []Segment{{0, 4}, {4, 7}, {7, 10}}},
		{3, 5, []Segment{{0, 1}, {1, 2}, {2, 3}}},
		{5, 0, []Segment{{0, 5}}},
		{0, 3, nil},
	}
	for _, c := range cases {
		got := SplitSegments(c.n, c.parts)
		if len(got) != len(c.want) {
			t.Fatalf("SplitSegments(%d,%d) = %v, want %v", c.n, c.parts, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("SplitSegments(%d,%d) = %v, want %v", c.n, c.parts, got, c.want)
			}
		}
	}
}

// segmentOptions are the option sets the stitch identity is pinned over:
// the defaults (AQ, scenecut, B frames, deblock), a two-pass ABR encode
// (cross-frame rate-control state), and a sampled-trace configuration.
func segmentOptions(t *testing.T) map[string]Options {
	t.Helper()
	abr2 := Defaults()
	abr2.RC = RCABR2
	abr2.BitrateKbps = 400
	sampled := Defaults()
	sampled.TraceSampleLog2 = 2
	sampled.BAdapt = 2
	return map[string]Options{"medium": Defaults(), "abr2": abr2, "sampled_badapt2": sampled}
}

// TestSegmentStitchByteIdentical is the tentpole invariant: encoding a
// clip's segments independently — each with its own fresh encoder and its
// own trace recorder, in reverse order — and stitching the bitstreams and
// traces must reproduce, byte for byte, the serial segmented encode (one
// process, one shared sink, in order). For one segment it must also equal a
// plain whole-clip EncodeAll.
func TestSegmentStitchByteIdentical(t *testing.T) {
	for name, opt := range segmentOptions(t) {
		t.Run(name, func(t *testing.T) {
			frames := makeClip(t, "desktop", 8, 8)
			baseClip(frames)

			plainRec := trace.NewRecorder()
			plainEnc, err := NewEncoder(frames[0].Width, frames[0].Height, 30, opt, plainRec)
			if err != nil {
				t.Fatal(err)
			}
			plainStream, _, err := plainEnc.EncodeAll(frames)
			if err != nil {
				t.Fatal(err)
			}
			plainTrace := append([]byte(nil), plainRec.Bytes()...)

			for _, parts := range []int{1, 2, 4} {
				// Serial reference: every segment through one shared recorder.
				serialRec := trace.NewRecorder()
				serialStream, serialStats, err := EncodeSegments(frames, 30, opt, serialRec, parts)
				if err != nil {
					t.Fatalf("parts=%d: %v", parts, err)
				}

				// Distributed: independent encoders and recorders, reverse
				// order, stitched afterwards.
				segs := SplitSegments(len(frames), parts)
				streams := make([][]byte, len(segs))
				traces := make([][]byte, len(segs))
				stats := make([]*Stats, len(segs))
				for i := len(segs) - 1; i >= 0; i-- {
					rec := trace.NewRecorder()
					streams[i], stats[i], err = EncodeSegment(frames, 30, opt, rec, segs[i])
					if err != nil {
						t.Fatalf("parts=%d seg=%v: %v", parts, segs[i], err)
					}
					traces[i] = append([]byte(nil), rec.Bytes()...)
				}
				gotStream, err := StitchStreams(streams)
				if err != nil {
					t.Fatalf("parts=%d: %v", parts, err)
				}
				gotTrace, err := trace.Stitch(traces...)
				if err != nil {
					t.Fatalf("parts=%d: %v", parts, err)
				}
				gotStats, err := StitchStats(stats)
				if err != nil {
					t.Fatalf("parts=%d: %v", parts, err)
				}

				if !bytes.Equal(gotStream, serialStream) {
					t.Fatalf("parts=%d: stitched bitstream (%dB) != serial segmented encode (%dB)",
						parts, len(gotStream), len(serialStream))
				}
				if !bytes.Equal(gotTrace, serialRec.Bytes()) {
					t.Fatalf("parts=%d: stitched trace (%dB) != serial segmented trace (%dB)",
						parts, len(gotTrace), len(serialRec.Bytes()))
				}
				if parts == 1 {
					if !bytes.Equal(gotStream, plainStream) {
						t.Fatal("one-segment stitch != plain EncodeAll bitstream")
					}
					if !bytes.Equal(gotTrace, plainTrace) {
						t.Fatal("one-segment stitch trace != plain EncodeAll trace")
					}
				}
				if len(gotStats.Frames) != len(frames) {
					t.Fatalf("parts=%d: stitched stats cover %d frames, want %d", parts, len(gotStats.Frames), len(frames))
				}
				if gotStats.TotalBits != serialStats.TotalBits || gotStats.AveragePSNR != serialStats.AveragePSNR {
					t.Fatalf("parts=%d: stitched stats diverge from serial reference", parts)
				}

				// The stitched stream must decode: full frame count, absolute
				// PTS preserved across segment boundaries.
				dec := NewDecoder(DecoderOptions{}, nil)
				decoded, info, err := dec.Decode(gotStream)
				if err != nil {
					t.Fatalf("parts=%d: decode of stitched stream: %v", parts, err)
				}
				if info.Frames != len(frames) || len(decoded) != len(frames) {
					t.Fatalf("parts=%d: stitched stream decodes %d frames, want %d", parts, len(decoded), len(frames))
				}
				for i, f := range decoded {
					if f.PTS != i {
						t.Fatalf("parts=%d: decoded frame %d has PTS %d", parts, i, f.PTS)
					}
				}
			}
		})
	}
}

// TestSegmentAnalysisReuse checks a mid-clip segment supports the shared
// analysis artifact: analyzing frames [4,8) of a clip and encoding that
// segment with the artifact reproduces the live segment encode exactly.
func TestSegmentAnalysisReuse(t *testing.T) {
	opt := Defaults()
	frames := makeClip(t, "cricket", 8, 8)
	baseClip(frames)
	seg := Segment{Start: 4, End: 8}

	liveRec := trace.NewRecorder()
	liveStream, _, err := EncodeSegment(frames, 30, opt, liveRec, seg)
	if err != nil {
		t.Fatal(err)
	}

	a, err := Analyze(frames[seg.Start:seg.End], 30, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Params.Base != seg.Start {
		t.Fatalf("artifact base = %d, want %d", a.Params.Base, seg.Start)
	}
	reuseRec := trace.NewRecorder()
	if err := trace.Replay(a.Events(), reuseRec); err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(frames[0].Width, frames[0].Height, 30, opt, reuseRec)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.SetAnalysis(a); err != nil {
		t.Fatal(err)
	}
	reuseStream, _, err := enc.EncodeAll(frames[seg.Start:seg.End])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reuseStream, liveStream) {
		t.Fatal("segment encode with shared analysis != live segment encode")
	}
	if !bytes.Equal(reuseRec.Bytes(), liveRec.Bytes()) {
		t.Fatal("segment analysis-reuse trace != live segment trace")
	}
}

// TestStitchStreamsRejects pins the error paths: empty input, incompatible
// headers, truncated parts.
func TestStitchStreamsRejects(t *testing.T) {
	if _, err := StitchStreams(nil); err == nil {
		t.Fatal("want error for no parts")
	}
	frames := makeClip(t, "desktop", 4, 8)
	baseClip(frames)
	a, _, err := EncodeSegment(frames, 30, Defaults(), nil, Segment{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	nodeblock := Defaults()
	nodeblock.Deblock = false
	b, _, err := EncodeSegment(frames, 30, nodeblock, nil, Segment{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StitchStreams([][]byte{a, b}); err == nil {
		t.Fatal("want error for incompatible headers")
	}
	if _, err := StitchStreams([][]byte{a[:3]}); err == nil {
		t.Fatal("want error for truncated part")
	}
}
