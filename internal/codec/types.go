// Package codec implements an H.264-class video encoder and decoder: the
// transcoding workload whose microarchitectural behaviour this module
// characterizes. It provides the same tuning surface the paper sweeps —
// crf, refs, and the ten x264 presets with their me/subme/trellis/bframes/
// partitions sub-options — together with six rate-control modes, I/P/B
// frame-type decision with scenecut detection, up to 16 reference frames,
// sub-pel motion compensation, trellis quantization, CAVLC-style residual
// coding over exponential-Golomb primitives, and an in-loop deblocking
// filter. The encoder is instrumented: its hot loops emit a trace.Sink
// event stream with real code and data addresses so that internal/uarch can
// simulate caches, branch predictors and pipeline-slot accounting under it.
package codec

import (
	"fmt"

	"repro/internal/trace"
)

// FrameType classifies a coded picture.
type FrameType uint8

const (
	FrameI FrameType = iota // intra-only
	FrameP                  // predicted from past references
	FrameB                  // bidirectionally predicted
)

// String returns "I", "P" or "B".
func (t FrameType) String() string {
	switch t {
	case FrameI:
		return "I"
	case FrameP:
		return "P"
	default:
		return "B"
	}
}

// MEMethod selects the integer-pel motion-estimation search pattern, in
// increasing order of effort, mirroring x264's --me option.
type MEMethod uint8

const (
	MEDia  MEMethod = iota // small diamond
	MEHex                  // hexagon
	MEUMH                  // uneven multi-hexagon
	MEESA                  // exhaustive within range
	METesa                 // exhaustive with Hadamard (transformed) metric
)

// String returns the x264 option spelling.
func (m MEMethod) String() string {
	return [...]string{"dia", "hex", "umh", "esa", "tesa"}[m]
}

// ParseMEMethod parses an x264-style me name.
func ParseMEMethod(s string) (MEMethod, error) {
	for m := MEDia; m <= METesa; m++ {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("codec: unknown me method %q", s)
}

// Partitions selects which macroblock subdivisions the analyser may use,
// mirroring x264's --partitions.
type Partitions struct {
	P8x8 bool // allow 16x8 / 8x16 / 8x8 inter partitions
	P4x4 bool // allow splitting 8x8 inter partitions to 4x4
	I8x8 bool // allow 8x8 intra prediction
	I4x4 bool // allow 4x4 intra prediction
}

// String renders in x264 style ("none", "all", or a +/- list).
func (p Partitions) String() string {
	switch {
	case !p.P8x8 && !p.P4x4 && !p.I8x8 && !p.I4x4:
		return "none"
	case p.P8x8 && p.P4x4 && p.I8x8 && p.I4x4:
		return "all"
	case p.P8x8 && !p.P4x4 && p.I8x8 && p.I4x4:
		return "-p4x4"
	case !p.P8x8 && !p.P4x4 && p.I8x8 && p.I4x4:
		return "+i8x8,+i4x4"
	default:
		return fmt.Sprintf("{p8x8:%v p4x4:%v i8x8:%v i4x4:%v}", p.P8x8, p.P4x4, p.I8x8, p.I4x4)
	}
}

// RateControlMode selects the rate-control algorithm (§II-B1 of the paper).
type RateControlMode uint8

const (
	RCCRF  RateControlMode = iota // constant rate factor: quality target (x264 default)
	RCCQP                         // constant quantizer
	RCABR                         // single-pass average bitrate
	RCABR2                        // two-pass average bitrate
	RCCBR                         // constant bitrate with macroblock-level control
	RCVBV                         // constrained encoding: CRF capped by a VBV buffer
)

// String returns the conventional mode name.
func (m RateControlMode) String() string {
	return [...]string{"crf", "cqp", "abr", "2pass-abr", "cbr", "vbv"}[m]
}

// Tuning holds the loop-level code-generation choices a polyhedral
// optimizer (Graphite) makes for the hot frame loops. The flags change the
// real iteration order and pass structure of the encoder/decoder, and hence
// the data-address stream seen by the cache simulator — they never change
// coded output.
type Tuning struct {
	// FuseDeblock runs the deblocking filter per macroblock row, lagged one
	// row, instead of as a separate whole-frame pass. Models loop fusion /
	// blocking (-floop-block): reconstructed pixels are filtered while still
	// cache-resident.
	FuseDeblock bool
	// InterchangeResidual iterates a macroblock's 4x4 residual blocks in
	// row-major order instead of the column-major order of the naive
	// loop nest. Models -floop-interchange: consecutive blocks share cache
	// lines.
	InterchangeResidual bool
	// DistributeLookahead splits the lookahead's fused cost/variance loop
	// nest into separate loops, letting the vectorizer handle each cleanly
	// instead of running a scalar epilogue per block. Models
	// -ftree-loop-distribution's enabling effect.
	DistributeLookahead bool
}

// Options configures an encode. The zero value is not valid; use Defaults()
// or ApplyPreset to populate it.
type Options struct {
	// Rate control.
	RC          RateControlMode
	CRF         int // 0..51, used by RCCRF and RCVBV
	QP          int // used by RCCQP
	BitrateKbps int // target for ABR/2-pass/CBR
	VBVMaxKbps  int // VBV cap (RCVBV)
	VBVBufKbits int // VBV buffer size (RCVBV)

	// Structure.
	Refs      int // reference frames, 1..16
	BFrames   int // max consecutive B frames
	BAdapt    int // 0 fixed, 1 fast heuristic, 2 exhaustive lookahead
	KeyintMax int // maximum GOP length
	Scenecut  int // scenecut sensitivity (0 disables), x264 default 40

	// Analysis.
	ME         MEMethod
	MERange    int // integer search range
	Subme      int // 0..11 sub-pel refinement / RD effort
	Trellis    int // 0 off, 1 final-encode, 2 all mode decisions
	AQMode     int // 0 off, 1 variance-based adaptive quantization
	Partitions Partitions
	DeblockA   int // deblock alpha offset
	DeblockB   int // deblock beta offset
	Deblock    bool

	// Code generation (set by the Graphite model, not by presets).
	Tune Tuning

	// DCT8x8 codes luma residuals with an 8x8 transform where the
	// prediction structure allows it (everything except 4x4 intra), the
	// x264 --8x8dct feature. Off by default; all paper experiments run
	// with the 4x4 transform.
	DCT8x8 bool

	// TraceSampleLog2 makes the instrumentation emit events for 1 of every
	// 2^n macroblocks (0 traces everything). Sampling keeps simulation
	// tractable on large sweeps; counters scale back up by the same factor.
	TraceSampleLog2 int

	// Workers parallelizes the inside of a single encode: macroblock rows
	// are analysed and reconstructed on a wavefront (each row lagging its
	// upper neighbour by two macroblocks, exactly the dependency intra
	// prediction and MV prediction impose) and the lookahead fans out per
	// frame. 0 and 1 encode serially; CBR always runs serially because its
	// row-level rate feedback needs live entropy bit counts. The output is
	// invariant: bitstream bytes and the emitted trace are identical for 1
	// and N workers (asserted by TestEncodeWorkersDeterminism and
	// scripts/determinism.sh).
	Workers int
}

// Defaults returns the medium-preset options with CRF 23, the x264
// defaults used throughout the paper's profiling.
func Defaults() Options {
	o := Options{RC: RCCRF, CRF: 23, QP: 26, KeyintMax: 250}
	ApplyPreset(&o, PresetMedium)
	return o
}

// Validate reports whether the options are internally consistent.
func (o *Options) Validate() error {
	if o.CRF < 0 || o.CRF > 51 {
		return fmt.Errorf("codec: crf %d out of range [0,51]", o.CRF)
	}
	if o.QP < 0 || o.QP > 51 {
		return fmt.Errorf("codec: qp %d out of range [0,51]", o.QP)
	}
	if o.Refs < 1 || o.Refs > 16 {
		return fmt.Errorf("codec: refs %d out of range [1,16]", o.Refs)
	}
	if o.Subme < 0 || o.Subme > 11 {
		return fmt.Errorf("codec: subme %d out of range [0,11]", o.Subme)
	}
	if o.Trellis < 0 || o.Trellis > 2 {
		return fmt.Errorf("codec: trellis %d out of range [0,2]", o.Trellis)
	}
	if o.BFrames < 0 || o.BFrames > 16 {
		return fmt.Errorf("codec: bframes %d out of range [0,16]", o.BFrames)
	}
	if o.MERange < 4 || o.MERange > 64 {
		return fmt.Errorf("codec: merange %d out of range [4,64]", o.MERange)
	}
	if o.Workers < 0 || o.Workers > 64 {
		return fmt.Errorf("codec: workers %d out of range [0,64]", o.Workers)
	}
	switch o.RC {
	case RCABR, RCABR2, RCCBR:
		if o.BitrateKbps <= 0 {
			return fmt.Errorf("codec: %v requires a positive target bitrate", o.RC)
		}
	case RCVBV:
		if o.VBVMaxKbps <= 0 || o.VBVBufKbits <= 0 {
			return fmt.Errorf("codec: vbv requires positive max bitrate and buffer size")
		}
	}
	return nil
}

// MV is a motion vector in quarter-pel units.
type MV struct{ X, Y int32 }

// FrameStats summarizes one coded frame.
type FrameStats struct {
	PTS     int
	Type    FrameType
	QP      int
	Bits    int64
	PSNR    float64
	IntraMB int
	InterMB int
	SkipMB  int
}

// Stats summarizes an encode.
type Stats struct {
	Frames      []FrameStats
	Width       int
	Height      int
	FPS         int
	TotalBits   int64
	AveragePSNR float64 // mean per-frame global PSNR
}

// BitrateKbps returns the stream bitrate implied by the frame count and fps.
func (s *Stats) BitrateKbps() float64 {
	if len(s.Frames) == 0 || s.FPS == 0 {
		return 0
	}
	seconds := float64(len(s.Frames)) / float64(s.FPS)
	return float64(s.TotalBits) / 1000 / seconds
}

// CountTypes returns the number of I, P and B frames.
func (s *Stats) CountTypes() (i, p, b int) {
	for _, f := range s.Frames {
		switch f.Type {
		case FrameI:
			i++
		case FrameP:
			p++
		default:
			b++
		}
	}
	return
}

// sink-site identifiers used by the instrumentation. Grouped here so encoder
// and decoder agree and tests can reference them.
const (
	siteMECmp      trace.BranchID = 1  // candidate-vs-best cost comparison
	siteMEEarly    trace.BranchID = 2  // early-termination check
	siteSkipCheck  trace.BranchID = 3  // P-skip eligibility
	siteCoefNZ     trace.BranchID = 4  // coefficient significance test
	siteModeCmp    trace.BranchID = 5  // intra/inter mode decision compare
	siteRefCmp     trace.BranchID = 6  // best-ref compare
	siteSearchLoop trace.BranchID = 7  // integer search iteration loop
	siteZigzagLoop trace.BranchID = 8  // coefficient scan loop
	siteRowLoop    trace.BranchID = 9  // MB row loop
	siteDeblockBS  trace.BranchID = 10 // deblock boundary-strength test
	siteLookCmp    trace.BranchID = 11 // lookahead cost compare
	siteDecCoef    trace.BranchID = 12 // decoder coefficient loop branch
	siteSubpelLoop trace.BranchID = 13 // subpel refinement loop
)
