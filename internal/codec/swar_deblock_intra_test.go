package codec

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/frame"
	"repro/internal/trace"
)

// randPlane returns a w x h plane with random pixels (padding included, so
// edge filters and predictors that reach into the margin see stable data).
func randPlane(rng *rand.Rand, w, h int) frame.Plane {
	p := frame.NewPlane(w, h)
	for i := range p.Pix {
		p.Pix[i] = uint8(rng.Intn(256))
	}
	return p
}

// TestFilterEdgeMatchesScalar pins the packed deblocking filter against the
// per-pixel reference: identical pixels in the whole plane and identical
// recorded trace bytes, across edge orientations, lengths, strengths and
// the full QP range.
func TestFilterEdgeMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, qp := range []int{0, 8, 16, 23, 30, 38, 45, 51} {
		for _, strong := range []bool{false, true} {
			for _, horizontal := range []bool{false, true} {
				for _, length := range []int{8, 16} {
					a := randPlane(rng, 64, 48)
					b := frame.NewPlane(64, 48)
					b.CopyFrom(&a)
					recA := trace.NewRecorder()
					recB := trace.NewRecorder()
					trA := newTracer(recA, 0)
					trB := newTracer(recB, 0)
					trA.nextMB()
					trB.nextMB()
					filterEdge(&trA, trace.FnDeblock, &a, 16, 16, length, horizontal, qp, 0, 0, strong)
					filterEdgeScalar(&trB, trace.FnDeblock, &b, 16, 16, length, horizontal, qp, 0, 0, strong)
					if !bytes.Equal(a.Pix, b.Pix) {
						t.Fatalf("qp %d strong %v horiz %v len %d: pixel mismatch", qp, strong, horizontal, length)
					}
					if !bytes.Equal(recA.Bytes(), recB.Bytes()) {
						t.Fatalf("qp %d strong %v horiz %v len %d: trace mismatch (%d vs %d events)",
							qp, strong, horizontal, length, recA.Events(), recB.Events())
					}
				}
			}
		}
	}
}

// TestFilterEdgeSmoothContent repeats the pin on low-gradient content where
// the filter condition actually fires (pure noise rarely passes the beta
// checks), so the write-back path is exercised.
func TestFilterEdgeSmoothContent(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for it := 0; it < 50; it++ {
		a := frame.NewPlane(64, 48)
		base := rng.Intn(200)
		for i := range a.Pix {
			a.Pix[i] = uint8(base + rng.Intn(24)) // gentle gradient + block step
		}
		// Inject a blocking step across the edge at x=16.
		for y := 0; y < 48; y++ {
			for x := 16; x < 24; x++ {
				a.Set(x, y, uint8(clampInt(base+12+rng.Intn(8), 0, 255)))
			}
		}
		b := frame.NewPlane(64, 48)
		b.CopyFrom(&a)
		recA := trace.NewRecorder()
		recB := trace.NewRecorder()
		trA := newTracer(recA, 0)
		trB := newTracer(recB, 0)
		trA.nextMB()
		trB.nextMB()
		qp := 20 + rng.Intn(28)
		filterEdge(&trA, trace.FnDeblock, &a, 16, 16, 16, false, qp, 0, 0, it&1 == 0)
		filterEdgeScalar(&trB, trace.FnDeblock, &b, 16, 16, 16, false, qp, 0, 0, it&1 == 0)
		if !bytes.Equal(a.Pix, b.Pix) {
			t.Fatalf("it %d qp %d: pixel mismatch on smooth content", it, qp)
		}
		if !bytes.Equal(recA.Bytes(), recB.Bytes()) {
			t.Fatalf("it %d qp %d: trace mismatch on smooth content", it, qp)
		}
	}
}

// intraSATDStaged is the two-step reference for the fused kernel: stage the
// prediction with predIntra, then measure it with satdBlock.
func intraSATDStaged(tr *tracer, predP, srcP *frame.Plane, x, y, w, h, mode int) int {
	var pred block
	tr.predIntra(trace.FnIntraPred, predP, x, y, w, h, mode, &pred)
	return tr.satdBlock(trace.FnIntraPred, srcP, x, y, &pred)
}

// TestIntraSATDMatchesStaged pins the fused predict+SATD kernel against
// predIntra followed by satdBlock: identical metric and identical recorded
// trace bytes for every mode, block size and neighbour-availability case.
func TestIntraSATDMatchesStaged(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	pred := randPlane(rng, 64, 48)
	src := randPlane(rng, 64, 48)
	cases := []struct {
		w     int
		modes []int
	}{
		{16, []int{intraDC, intraV, intraH, intraPlanar}},
		{8, []int{intraDC, intraV, intraH}},
		{4, []int{intraDC, intraV, intraH, intraDDL}},
	}
	// (0,0), top row, left column and interior exercise every fallback.
	positions := [][2]int{{0, 0}, {16, 0}, {0, 16}, {16, 16}, {32, 24}}
	for _, tc := range cases {
		for _, pos := range positions {
			x, y := pos[0], pos[1]
			for _, mode := range tc.modes {
				recA := trace.NewRecorder()
				recB := trace.NewRecorder()
				trA := newTracer(recA, 0)
				trB := newTracer(recB, 0)
				trA.nextMB()
				trB.nextMB()
				got := trA.intraSATD(trace.FnIntraPred, &pred, &src, x, y, tc.w, tc.w, mode)
				want := intraSATDStaged(&trB, &pred, &src, x, y, tc.w, tc.w, mode)
				if got != want {
					t.Errorf("size %d mode %d at (%d,%d): got %d, want %d", tc.w, mode, x, y, got, want)
				}
				if !bytes.Equal(recA.Bytes(), recB.Bytes()) {
					t.Errorf("size %d mode %d at (%d,%d): trace mismatch", tc.w, mode, x, y)
				}
			}
		}
	}
	// Self-prediction (analysis path: source neighbours) on smooth content,
	// where planar/DDL gradients are realistic.
	smooth := frame.NewPlane(64, 48)
	for yy := 0; yy < 48; yy++ {
		for xx := 0; xx < 64; xx++ {
			smooth.Set(xx, yy, uint8(clampInt(40+3*xx+2*yy+rng.Intn(5), 0, 255)))
		}
	}
	smooth.ExtendEdges()
	for _, tc := range cases {
		for _, pos := range positions {
			for _, mode := range tc.modes {
				recA := trace.NewRecorder()
				recB := trace.NewRecorder()
				trA := newTracer(recA, 0)
				trB := newTracer(recB, 0)
				trA.nextMB()
				trB.nextMB()
				got := trA.intraSATD(trace.FnIntraPred, &smooth, &smooth, pos[0], pos[1], tc.w, tc.w, mode)
				want := intraSATDStaged(&trB, &smooth, &smooth, pos[0], pos[1], tc.w, tc.w, mode)
				if got != want {
					t.Errorf("smooth: size %d mode %d at %v: got %d, want %d", tc.w, mode, pos, got, want)
				}
				if !bytes.Equal(recA.Bytes(), recB.Bytes()) {
					t.Errorf("smooth: size %d mode %d at %v: trace mismatch", tc.w, mode, pos)
				}
			}
		}
	}
}

// FuzzFilterEdgeEquivalence drives the packed filter and the scalar
// reference with fuzz-chosen pixels and parameters.
func FuzzFilterEdgeEquivalence(f *testing.F) {
	f.Add(uint8(26), false, false, make([]byte, 256))
	f.Fuzz(func(t *testing.T, qpRaw uint8, horizontal, strong bool, data []byte) {
		if len(data) < 64 {
			return
		}
		qp := int(qpRaw) % 52
		a := frame.NewPlane(32, 32)
		for i := range a.Pix {
			a.Pix[i] = data[i%len(data)]
		}
		b := frame.NewPlane(32, 32)
		b.CopyFrom(&a)
		recA := trace.NewRecorder()
		recB := trace.NewRecorder()
		trA := newTracer(recA, 0)
		trB := newTracer(recB, 0)
		trA.nextMB()
		trB.nextMB()
		filterEdge(&trA, trace.FnDeblock, &a, 8, 8, 8, horizontal, qp, 0, 0, strong)
		filterEdgeScalar(&trB, trace.FnDeblock, &b, 8, 8, 8, horizontal, qp, 0, 0, strong)
		if !bytes.Equal(a.Pix, b.Pix) {
			t.Fatal("pixel mismatch")
		}
		if !bytes.Equal(recA.Bytes(), recB.Bytes()) {
			t.Fatal("trace mismatch")
		}
	})
}

// FuzzIntraSATDEquivalence drives the fused kernel across fuzz-chosen
// content, mode and position.
func FuzzIntraSATDEquivalence(f *testing.F) {
	f.Add(uint8(0), uint8(0), make([]byte, 256))
	f.Fuzz(func(t *testing.T, modeRaw, posRaw uint8, data []byte) {
		if len(data) < 64 {
			return
		}
		p := frame.NewPlane(48, 48)
		for i := range p.Pix {
			p.Pix[i] = data[i%len(data)]
		}
		sizes := []int{4, 8, 16}
		w := sizes[int(posRaw>>6)%3]
		x := (int(posRaw) % 3) * 16
		y := (int(posRaw>>2) % 3) * 16
		mode := int(modeRaw) % 5
		if mode == intraDDL && w != 4 {
			return // DDL is a 4x4-only mode; the fused kernel matches that domain
		}
		recA := trace.NewRecorder()
		recB := trace.NewRecorder()
		trA := newTracer(recA, 0)
		trB := newTracer(recB, 0)
		trA.nextMB()
		trB.nextMB()
		got := trA.intraSATD(trace.FnIntraPred, &p, &p, x, y, w, w, mode)
		want := intraSATDStaged(&trB, &p, &p, x, y, w, w, mode)
		if got != want {
			t.Fatalf("size %d mode %d at (%d,%d): got %d, want %d", w, mode, x, y, got, want)
		}
		if !bytes.Equal(recA.Bytes(), recB.Bytes()) {
			t.Fatalf("size %d mode %d at (%d,%d): trace mismatch", w, mode, x, y)
		}
	})
}
