package codec

import (
	"repro/internal/codec/bits"
	"repro/internal/frame"
	"repro/internal/trace"
)

// mvBits returns the exp-Golomb bit cost of coding the motion-vector
// difference d (both components, quarter-pel units).
func mvBits(d MV) int {
	return bits.SEBits(d.X) + bits.SEBits(d.Y)
}

// medianMV returns the component-wise median of three vectors, the H.264
// motion-vector predictor.
func medianMV(a, b, c MV) MV {
	return MV{X: median3(a.X, b.X, c.X), Y: median3(a.Y, b.Y, c.Y)}
}

func median3(a, b, c int32) int32 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// mvField tracks, per macroblock, the representative coded motion vector
// (partition 0) used for neighbour prediction, together with availability.
type mvField struct {
	mbw, mbh int
	mv       []MV
	coded    []bool // true when the MB has an inter MV (not intra / out of picture)
}

func newMVField(mbw, mbh int) *mvField {
	return &mvField{mbw: mbw, mbh: mbh, mv: make([]MV, mbw*mbh), coded: make([]bool, mbw*mbh)}
}

func (f *mvField) reset() {
	for i := range f.mv {
		f.mv[i] = MV{}
		f.coded[i] = false
	}
}

func (f *mvField) set(mx, my int, mv MV, coded bool) {
	f.mv[my*f.mbw+mx] = mv
	f.coded[my*f.mbw+mx] = coded
}

func (f *mvField) get(mx, my int) (MV, bool) {
	if mx < 0 || my < 0 || mx >= f.mbw || my >= f.mbh {
		return MV{}, false
	}
	return f.mv[my*f.mbw+mx], f.coded[my*f.mbw+mx]
}

// predict returns the median MV predictor for macroblock (mx, my) from its
// left, top and top-right neighbours; unavailable neighbours contribute
// zero vectors, as in H.264 when the corresponding reference differs.
func (f *mvField) predict(mx, my int) MV {
	l, _ := f.get(mx-1, my)
	t, _ := f.get(mx, my-1)
	tr, ok := f.get(mx+1, my-1)
	if !ok {
		tr, _ = f.get(mx-1, my-1)
	}
	return medianMV(l, t, tr)
}

// clampMVRange limits an integer-pel displacement so that every read of a
// w-by-h block at source position (sx, sy) stays inside the padded plane.
func clampMVRange(m, s, size, dim int) int {
	lo := -(frame.Pad - 4) - s
	hi := dim + (frame.Pad - 4) - size - s
	return clampInt(m, lo, hi)
}

// interpLuma stages the motion-compensated prediction of a w x h luma block
// from ref at quarter-pel vector mv applied to source position (sx, sy).
// Fractional positions use bilinear interpolation. Reports loads under fn.
func (t *tracer) interpLuma(fn trace.FuncID, ref *frame.Plane, sx, sy int, mv MV, dst *block, w, h int) {
	dst.w, dst.h = w, h
	ix := sx + int(mv.X>>2)
	iy := sy + int(mv.Y>>2)
	fx := int32(mv.X & 3)
	fy := int32(mv.Y & 3)
	if fx == 0 && fy == 0 {
		for j := 0; j < h; j++ {
			copy(dst.row(j), ref.RowFrom(ix, iy+j, w))
		}
		if t.on {
			t.sink.Call(fn)
			t.sink.Ops(fn, w*h/16+8) // SIMD block copy
			t.sink.Load2D(fn, ref.Addr(ix, iy), w, h, ref.Stride)
		}
		return
	}
	w00 := (4 - fx) * (4 - fy)
	w01 := fx * (4 - fy)
	w10 := (4 - fx) * fy
	w11 := fx * fy
	for j := 0; j < h; j++ {
		r0 := ref.RowFrom(ix, iy+j, w+1)
		r1 := ref.RowFrom(ix, iy+j+1, w+1)
		out := dst.row(j)
		for i := 0; i < w; i++ {
			v := w00*int32(r0[i]) + w01*int32(r0[i+1]) + w10*int32(r1[i]) + w11*int32(r1[i+1])
			out[i] = uint8((v + 8) >> 4)
		}
	}
	if t.on {
		t.sink.Call(fn)
		t.sink.Ops(fn, w*h/4+16) // SIMD bilinear filter
		t.sink.Load2D(fn, ref.Addr(ix, iy), w+1, h+1, ref.Stride)
	}
}

// interpChroma stages the chroma prediction for a luma-space vector mv; the
// chroma plane has half resolution, so the vector is in eighth-pel chroma
// units. w and h are chroma dimensions.
func (t *tracer) interpChroma(fn trace.FuncID, ref *frame.Plane, sx, sy int, mv MV, dst *block, w, h int) {
	// Luma quarter-pel => chroma eighth-pel; approximate to chroma
	// quarter-pel by halving and re-rounding, which keeps encoder and
	// decoder in exact agreement.
	cmv := MV{X: mv.X / 2, Y: mv.Y / 2}
	t.interpLuma(fn, ref, sx, sy, cmv, dst, w, h)
}

// avgBlocks stages the average of two predictions (bi-prediction).
func avgBlocks(a, b *block, dst *block) {
	dst.w, dst.h = a.w, a.h
	n := a.w * a.h
	for i := 0; i < n; i++ {
		dst.pix[i] = uint8((uint16(a.pix[i]) + uint16(b.pix[i]) + 1) >> 1)
	}
}
