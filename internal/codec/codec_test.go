package codec

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/frame"
)

func TestOptionsValidate(t *testing.T) {
	good := Defaults()
	if err := good.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := []func(*Options){
		func(o *Options) { o.CRF = 52 },
		func(o *Options) { o.CRF = -1 },
		func(o *Options) { o.Refs = 0 },
		func(o *Options) { o.Refs = 17 },
		func(o *Options) { o.Subme = 12 },
		func(o *Options) { o.Trellis = 3 },
		func(o *Options) { o.BFrames = 17 },
		func(o *Options) { o.MERange = 2 },
		func(o *Options) { o.RC = RCABR; o.BitrateKbps = 0 },
		func(o *Options) { o.RC = RCVBV; o.VBVMaxKbps = 0 },
	}
	for i, mutate := range bad {
		o := Defaults()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPresetTableII(t *testing.T) {
	// Spot-check Table II values.
	checks := map[Preset]map[string]string{
		PresetUltrafast: {"me": "dia", "refs": "1", "subme": "0", "trellis": "0", "bframes": "0", "partitions": "none", "scenecut": "0", "aq-mode": "0"},
		PresetMedium:    {"me": "hex", "refs": "3", "subme": "7", "trellis": "1", "bframes": "3", "partitions": "-p4x4", "scenecut": "40", "b-adapt": "1"},
		PresetSlower:    {"me": "umh", "refs": "8", "subme": "9", "trellis": "2", "partitions": "all", "b-adapt": "2"},
		PresetPlacebo:   {"me": "tesa", "refs": "16", "subme": "11", "bframes": "16", "merange": "24"},
	}
	for p, want := range checks {
		info, err := PresetInfo(p)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range want {
			if info[k] != v {
				t.Errorf("%s.%s = %s, want %s", p, k, info[k], v)
			}
		}
	}
	if err := ApplyPreset(&Options{}, "bogus"); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if _, err := PresetInfo("bogus"); err == nil {
		t.Fatal("unknown preset info accepted")
	}
}

func TestApplyPresetLeavesRateControlAlone(t *testing.T) {
	o := Options{RC: RCABR, CRF: 30, QP: 40, BitrateKbps: 1234, KeyintMax: 100}
	if err := ApplyPreset(&o, PresetSlow); err != nil {
		t.Fatal(err)
	}
	if o.RC != RCABR || o.CRF != 30 || o.QP != 40 || o.BitrateKbps != 1234 || o.KeyintMax != 100 {
		t.Fatalf("preset clobbered rate control: %+v", o)
	}
	if o.Refs != 5 || o.Subme != 8 {
		t.Fatalf("slow preset not applied: %+v", o)
	}
}

func TestMEMethodParse(t *testing.T) {
	for m := MEDia; m <= METesa; m++ {
		got, err := ParseMEMethod(m.String())
		if err != nil || got != m {
			t.Errorf("roundtrip %v failed", m)
		}
	}
	if _, err := ParseMEMethod("zigzag"); err == nil {
		t.Fatal("bad method accepted")
	}
}

func TestMedianMVProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := MV{int32(ax), int32(ay)}
		b := MV{int32(bx), int32(by)}
		c := MV{int32(cx), int32(cy)}
		m := medianMV(a, b, c)
		// Median is permutation-invariant and bounded by min/max.
		if m != medianMV(c, a, b) || m != medianMV(b, c, a) {
			return false
		}
		inRange := func(v, p, q, r int32) bool {
			lo, hi := p, p
			for _, x := range []int32{q, r} {
				if x < lo {
					lo = x
				}
				if x > hi {
					hi = x
				}
			}
			return v >= lo && v <= hi
		}
		return inRange(m.X, a.X, b.X, c.X) && inRange(m.Y, a.Y, b.Y, c.Y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampMVRangeKeepsReadsInPadding(t *testing.T) {
	f := func(m int16, s uint8) bool {
		sx := int(s) % 320
		mm := clampMVRange(int(m), sx, 16, 320)
		// The clamped read [sx+mm, sx+mm+16) must stay within the padded area.
		return sx+mm >= -frame.Pad && sx+mm+16 <= 320+frame.Pad
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameTypeStrings(t *testing.T) {
	if FrameI.String() != "I" || FrameP.String() != "P" || FrameB.String() != "B" {
		t.Fatal("frame type strings")
	}
}

func TestChromaQPCapped(t *testing.T) {
	if chromaQP(20) != 20 {
		t.Fatal("low qp should pass through")
	}
	if chromaQP(45) >= 45 {
		t.Fatal("high luma qp must map to lower chroma qp")
	}
	// Monotone.
	for qp := 1; qp <= 51; qp++ {
		if chromaQP(qp) < chromaQP(qp-1) {
			t.Fatalf("chromaQP not monotone at %d", qp)
		}
	}
}

func TestEncoderRejectsBadInput(t *testing.T) {
	if _, err := NewEncoder(100, 96, 30, Defaults(), nil); err == nil {
		t.Fatal("non-multiple-of-16 width accepted")
	}
	if _, err := NewEncoder(96, 96, 0, Defaults(), nil); err == nil {
		t.Fatal("zero fps accepted")
	}
	enc, err := NewEncoder(96, 96, 30, Defaults(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := enc.EncodeAll(nil); err != ErrNoFrames {
		t.Fatalf("empty input: %v", err)
	}
	enc2, _ := NewEncoder(96, 96, 30, Defaults(), nil)
	wrong := frame.New(112, 96)
	if _, _, err := enc2.EncodeAll([]*frame.Frame{wrong}); err == nil {
		t.Fatal("mismatched frame size accepted")
	}
}

func TestDecoderOutputMatchesEncoderPSNR(t *testing.T) {
	// The decoder must reproduce the encoder's reconstruction exactly:
	// per-frame PSNR computed from the decoded frames equals the encoder's
	// reported PSNR bit-for-bit.
	frames := makeClip(t, "game2", 10, 6)
	for _, opt := range []Options{
		Defaults(),
		func() Options { o := Defaults(); o.CRF = 35; return o }(),
		func() Options {
			o := Options{RC: RCCRF, CRF: 23, QP: 26, KeyintMax: 250}
			if err := ApplyPreset(&o, PresetSlower); err != nil {
				t.Fatal(err)
			}
			return o
		}(),
	} {
		stream, stats := encodeClip(t, frames, opt)
		out, _, err := NewDecoder(DecoderOptions{}, nil).Decode(stream)
		if err != nil {
			t.Fatal(err)
		}
		for i, fs := range stats.Frames {
			_ = fs
			got := frame.PSNR(frames[i], out[i])
			var want float64
			for _, s := range stats.Frames {
				if s.PTS == i {
					want = s.PSNR
				}
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("frame %d: decoded PSNR %.6f != encoder PSNR %.6f (recon mismatch)", i, got, want)
			}
		}
	}
}

func TestFusedDeblockBitExact(t *testing.T) {
	// Graphite's loop fusion must not change a single pixel or bit.
	frames := makeClip(t, "house", 8, 8)
	opt := Defaults()
	sPlain, statsPlain := encodeClip(t, frames, opt)
	opt.Tune = Tuning{FuseDeblock: true, InterchangeResidual: true, DistributeLookahead: true}
	sFused, statsFused := encodeClip(t, frames, opt)
	if len(sPlain) != len(sFused) {
		t.Fatalf("tuned bitstream differs in size: %d vs %d", len(sPlain), len(sFused))
	}
	for i := range sPlain {
		if sPlain[i] != sFused[i] {
			t.Fatalf("tuned bitstream differs at byte %d", i)
		}
	}
	if statsPlain.AveragePSNR != statsFused.AveragePSNR {
		t.Fatal("tuned reconstruction differs")
	}
}

func TestCRFControlsQualityMonotonically(t *testing.T) {
	frames := makeClip(t, "cricket", 8, 8)
	var prevPSNR, prevBits float64 = math.Inf(1), math.Inf(1)
	for _, crf := range []int{12, 22, 32, 42} {
		opt := Defaults()
		opt.CRF = crf
		_, stats := encodeClip(t, frames, opt)
		if stats.AveragePSNR >= prevPSNR {
			t.Fatalf("crf %d PSNR %.2f not below previous %.2f", crf, stats.AveragePSNR, prevPSNR)
		}
		if float64(stats.TotalBits) >= prevBits {
			t.Fatalf("crf %d bits %d not below previous %.0f", crf, stats.TotalBits, prevBits)
		}
		prevPSNR, prevBits = stats.AveragePSNR, float64(stats.TotalBits)
	}
}

func TestRefsReduceFileSize(t *testing.T) {
	// More references improve compression (Fig. 2's "active" refs edge).
	frames := makeClip(t, "hall", 12, 8)
	opt := Defaults()
	opt.BFrames = 0 // anchors only, so refs engage fully
	opt.Refs = 1
	_, one := encodeClip(t, frames, opt)
	opt.Refs = 8
	_, eight := encodeClip(t, frames, opt)
	if eight.TotalBits > one.TotalBits {
		t.Fatalf("refs 8 produced more bits (%d) than refs 1 (%d)", eight.TotalBits, one.TotalBits)
	}
	// Quality is unchanged by refs (CRF holds it): within 0.5 dB.
	if math.Abs(eight.AveragePSNR-one.AveragePSNR) > 0.5 {
		t.Fatalf("refs changed quality: %.2f vs %.2f", one.AveragePSNR, eight.AveragePSNR)
	}
}

func TestSceneCutInsertsIFrame(t *testing.T) {
	// holi (entropy 7.0) cuts scenes every ~17 frames at 30 fps.
	frames := makeClip(t, "holi", 30, 4)
	opt := Defaults()
	_, stats := encodeClip(t, frames, opt)
	i, _, _ := stats.CountTypes()
	if i < 2 {
		t.Fatalf("high-entropy clip produced %d I frames; scenecut inactive", i)
	}
	// Disabling scenecut drops back to a single leading I frame.
	opt.Scenecut = 0
	_, stats2 := encodeClip(t, frames, opt)
	i2, _, _ := stats2.CountTypes()
	if i2 != 1 {
		t.Fatalf("scenecut disabled but %d I frames", i2)
	}
}

func TestKeyintForcesIFrames(t *testing.T) {
	frames := makeClip(t, "desktop", 20, 8)
	opt := Defaults()
	opt.Scenecut = 0
	opt.KeyintMax = 5
	_, stats := encodeClip(t, frames, opt)
	i, _, _ := stats.CountTypes()
	if i != 4 {
		t.Fatalf("keyint 5 over 20 frames should give 4 I frames, got %d", i)
	}
}

func TestBFramesBounded(t *testing.T) {
	frames := makeClip(t, "desktop", 20, 8) // static content: B-friendly
	opt := Defaults()
	opt.BFrames = 2
	opt.BAdapt = 0 // always use B when allowed
	_, stats := encodeClip(t, frames, opt)
	// No run of more than 2 consecutive B frames in display order.
	run := 0
	byPTS := make([]FrameType, len(frames))
	for _, fs := range stats.Frames {
		byPTS[fs.PTS] = fs.Type
	}
	for _, ft := range byPTS {
		if ft == FrameB {
			run++
			if run > 2 {
				t.Fatal("B run exceeds bframes limit")
			}
		} else {
			run = 0
		}
	}
	_, _, b := stats.CountTypes()
	if b == 0 {
		t.Fatal("b-adapt 0 with static content produced no B frames")
	}
}

func TestHighCRFSkipsDominate(t *testing.T) {
	frames := makeClip(t, "desktop", 10, 8)
	opt := Defaults()
	opt.CRF = 48
	_, stats := encodeClip(t, frames, opt)
	var inter, skip int
	for _, fs := range stats.Frames {
		inter += fs.InterMB
		skip += fs.SkipMB
	}
	if skip <= inter {
		t.Fatalf("static content at crf 48: %d skips vs %d inter; skip detection weak", skip, inter)
	}
}

func TestTraceSampleFactor(t *testing.T) {
	enc, err := NewEncoder(96, 96, 30, Defaults(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if enc.SampleFactor() != 1 {
		t.Fatal("default sample factor")
	}
	o := Defaults()
	o.TraceSampleLog2 = 3
	enc2, _ := NewEncoder(96, 96, 30, o, nil)
	if enc2.SampleFactor() != 8 {
		t.Fatalf("sample factor %f", enc2.SampleFactor())
	}
}

func TestDCT8x8RoundtripAndBenefit(t *testing.T) {
	frames := makeClip(t, "presentation", 8, 6) // smooth content favours 8x8
	opt := Defaults()
	stream4, stats4 := encodeClip(t, frames, opt)
	opt.DCT8x8 = true
	stream8, stats8 := encodeClip(t, frames, opt)

	// Bit-exact decode under the 8x8 transform.
	out, _, err := NewDecoder(DecoderOptions{}, nil).Decode(stream8)
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range stats8.Frames {
		if got := frame.PSNR(frames[fs.PTS], out[fs.PTS]); math.Abs(got-fs.PSNR) > 1e-9 {
			t.Fatalf("8x8 decode diverged at frame %d: %.6f vs %.6f", fs.PTS, got, fs.PSNR)
		}
	}
	// Comparable quality (same quantizer scale)...
	if math.Abs(stats8.AveragePSNR-stats4.AveragePSNR) > 1.5 {
		t.Fatalf("8x8 transform changed quality too much: %.2f vs %.2f dB",
			stats8.AveragePSNR, stats4.AveragePSNR)
	}
	// ...and the stream stays in the same size class.
	if len(stream8) > len(stream4)*5/4 {
		t.Fatalf("8x8 stream much larger: %d vs %d", len(stream8), len(stream4))
	}
}

func TestDCT8x8WithIntra4x4Mix(t *testing.T) {
	// Textured content mixes intra-4x4 macroblocks (which must stay on the
	// 4x4 transform) with 8x8-coded inter blocks in one stream.
	frames := makeClip(t, "holi", 8, 6)
	opt := Defaults()
	opt.DCT8x8 = true
	stream, stats := encodeClip(t, frames, opt)
	out, _, err := NewDecoder(DecoderOptions{}, nil).Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range stats.Frames {
		if got := frame.PSNR(frames[fs.PTS], out[fs.PTS]); math.Abs(got-fs.PSNR) > 1e-9 {
			t.Fatalf("mixed-transform decode diverged at frame %d", fs.PTS)
		}
	}
}
