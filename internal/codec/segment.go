package codec

import (
	"fmt"

	"repro/internal/codec/bits"
	"repro/internal/frame"
	"repro/internal/trace"
)

// Segment-parallel encoding. Production streamers hide transcode latency by
// splitting a video into GOP-aligned segments, encoding them on different
// machines, and stitching the renditions back together. This file is that
// contract for the simulated codec: SplitSegments is the splitting rule,
// EncodeSegments is the serial reference (one process, one encoder per
// segment), and StitchStreams/StitchStats reassemble independently encoded
// segment bitstreams. Because each segment — serial or distributed — is
// encoded by a fresh Encoder with identical inputs, the stitched bitstream
// and (via trace.Stitch) the stitched event trace are byte-identical to the
// serial reference no matter where or in what order the segments ran.
// For a single segment the output is byte-identical to a plain EncodeAll
// of the whole clip. Both identities are pinned by TestSegmentStitch* and
// enforced in CI by scripts/determinism.sh.

// Segment is a half-open frame range [Start, End) of a clip. The zero value
// means "the whole clip" wherever a Segment parameterizes an encode.
type Segment struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// IsZero reports whether s is the whole-clip sentinel.
func (s Segment) IsZero() bool { return s.Start == 0 && s.End == 0 }

// Len is the segment's frame count.
func (s Segment) Len() int { return s.End - s.Start }

func (s Segment) String() string { return fmt.Sprintf("[%d,%d)", s.Start, s.End) }

// Validate checks the range against a clip of n frames.
func (s Segment) Validate(n int) error {
	if s.Start < 0 || s.End > n || s.Start >= s.End {
		return fmt.Errorf("codec: segment %s invalid for %d-frame clip", s, n)
	}
	return nil
}

// AssignBases pre-assigns decoder-style virtual bases to a raw clip (the
// same fixed range codec.Decoder hands decoded frames). Encoders only
// allocate bases for frames that lack one, so pre-basing a clip keeps
// every segment encoder — in one process or many — on identical recon
// addresses, which is what makes independently recorded segment traces
// stitch byte-identically. Decoded frames never need this; it exists for
// synthesized or file-read inputs (cmd/transcode's segment modes).
func AssignBases(frames []*frame.Frame) {
	va := uint64(0x8_0000_0000)
	for _, f := range frames {
		f.SetBase(va)
		va += (uint64(f.ByteSize()) + 4095) &^ 4095
	}
}

// SplitSegments is the splitting rule: n frames into parts contiguous,
// balanced segments (the first n%parts segments get the extra frame). Every
// segment opens a closed GOP — a fresh encoder's first frame is always an I
// frame — which is what makes the segments independently encodable. More
// parts than frames clamps to one frame per segment; parts < 1 means one
// segment.
func SplitSegments(n, parts int) []Segment {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	segs := make([]Segment, parts)
	size, rem := n/parts, n%parts
	start := 0
	for i := range segs {
		ln := size
		if i < rem {
			ln++
		}
		segs[i] = Segment{Start: start, End: start + ln}
		start += ln
	}
	return segs
}

// EncodeSegment encodes one segment of a clip with a fresh encoder,
// returning the segment's standalone bitstream and stats. Frames keep their
// absolute clip PTS, so the stitched stream's frame headers are identical
// to the serial segmented encode's. The caller is responsible for frames
// carrying pre-assigned virtual bases when address-exact traces across
// encoders are required (decoded mezzanine frames always do).
func EncodeSegment(frames []*frame.Frame, fps int, opt Options, sink trace.Sink, seg Segment) ([]byte, *Stats, error) {
	if err := seg.Validate(len(frames)); err != nil {
		return nil, nil, err
	}
	enc, err := NewEncoder(frames[seg.Start].Width, frames[seg.Start].Height, fps, opt, sink)
	if err != nil {
		return nil, nil, err
	}
	stream, stats, err := enc.EncodeAll(frames[seg.Start:seg.End])
	if err != nil {
		return nil, nil, fmt.Errorf("codec: segment %s: %w", seg, err)
	}
	return stream, stats, nil
}

// EncodeSegments is the serial segmented encode — the reference the
// distributed fan-out must match byte for byte. Each segment is encoded by
// its own fresh Encoder (all sharing one trace sink, so the combined event
// stream is one continuous recording) and the per-segment bitstreams are
// stitched. parts=1 degenerates to a whole-clip encode whose output equals
// a plain EncodeAll.
func EncodeSegments(frames []*frame.Frame, fps int, opt Options, sink trace.Sink, parts int) ([]byte, *Stats, error) {
	if len(frames) == 0 {
		return nil, nil, ErrNoFrames
	}
	segs := SplitSegments(len(frames), parts)
	streams := make([][]byte, len(segs))
	stats := make([]*Stats, len(segs))
	for i, sg := range segs {
		var err error
		if streams[i], stats[i], err = EncodeSegment(frames, fps, opt, sink, sg); err != nil {
			return nil, nil, err
		}
	}
	stream, err := StitchStreams(streams)
	if err != nil {
		return nil, nil, err
	}
	st, err := StitchStats(stats)
	if err != nil {
		return nil, nil, err
	}
	return stream, st, nil
}

// seqHeader is the parsed (or to-be-written) sequence header of a
// bitstream; payload is the byte offset where the first frame's (aligned)
// payload begins, set by parseSeqHeader.
type seqHeader struct {
	mbw, mbh, fps, frames int
	deblock               bool
	deblockA, deblockB    int
	dct8x8                bool
	payload               int
}

// compatible reports whether two segment streams can be stitched: every
// header field other than the frame count must agree.
func (h seqHeader) compatible(o seqHeader) bool {
	return h.mbw == o.mbw && h.mbh == o.mbh && h.fps == o.fps &&
		h.deblock == o.deblock && h.deblockA == o.deblockA &&
		h.deblockB == o.deblockB && h.dct8x8 == o.dct8x8
}

// writeSeqHeader emits the sequence header. EncodeAll and StitchStreams
// share this single writer so a stitched stream's header is bit-identical
// to the one a serial encode of the same total frame count writes.
func writeSeqHeader(bw *bits.Writer, h seqHeader) {
	bw.WriteBits(streamMagic, 32)
	bw.WriteUE(uint32(h.mbw))
	bw.WriteUE(uint32(h.mbh))
	bw.WriteUE(uint32(h.fps))
	bw.WriteUE(uint32(h.frames))
	if h.deblock {
		bw.WriteBit(true)
		bw.WriteSE(int32(h.deblockA))
		bw.WriteSE(int32(h.deblockB))
	} else {
		bw.WriteBit(false)
	}
	bw.WriteBit(h.dct8x8)
}

// parseSeqHeader reads a stream's sequence header and locates the start of
// its frame payload (every frame begins byte-aligned, so the payload starts
// at the byte boundary after the header bits).
func parseSeqHeader(stream []byte) (seqHeader, error) {
	var h seqHeader
	r := bits.NewReader(stream)
	magic, err := r.ReadBits(32)
	if err != nil {
		return h, fmt.Errorf("codec: truncated sequence header: %w", err)
	}
	if magic != streamMagic {
		return h, fmt.Errorf("codec: bad stream magic %#x", magic)
	}
	fields := []*int{&h.mbw, &h.mbh, &h.fps, &h.frames}
	for _, f := range fields {
		v, err := r.ReadUE()
		if err != nil {
			return h, fmt.Errorf("codec: truncated sequence header: %w", err)
		}
		*f = int(v)
	}
	if h.deblock, err = r.ReadBit(); err != nil {
		return h, fmt.Errorf("codec: truncated sequence header: %w", err)
	}
	if h.deblock {
		a, err := r.ReadSE()
		if err != nil {
			return h, fmt.Errorf("codec: truncated sequence header: %w", err)
		}
		b, err := r.ReadSE()
		if err != nil {
			return h, fmt.Errorf("codec: truncated sequence header: %w", err)
		}
		h.deblockA, h.deblockB = int(a), int(b)
	}
	if h.dct8x8, err = r.ReadBit(); err != nil {
		return h, fmt.Errorf("codec: truncated sequence header: %w", err)
	}
	h.payload = int((r.BitsRead() + 7) / 8)
	return h, nil
}

// StitchStreams reassembles independently encoded segment bitstreams into
// one stream: a single sequence header carrying the total frame count,
// followed by every segment's byte-aligned frame payload in order. The
// result is byte-identical to the serial segmented encode of the same
// segment plan, and — for a one-segment plan — to a plain whole-clip
// encode.
func StitchStreams(parts [][]byte) ([]byte, error) {
	if len(parts) == 0 {
		return nil, ErrNoFrames
	}
	hdrs := make([]seqHeader, len(parts))
	total := 0
	for i, p := range parts {
		h, err := parseSeqHeader(p)
		if err != nil {
			return nil, fmt.Errorf("codec: stitch part %d: %w", i, err)
		}
		if i > 0 && !h.compatible(hdrs[0]) {
			return nil, fmt.Errorf("codec: stitch part %d: incompatible sequence header", i)
		}
		hdrs[i] = h
		total += h.frames
	}
	bw := bits.NewWriter()
	combined := hdrs[0]
	combined.frames = total
	writeSeqHeader(bw, combined)
	// Frame payloads are byte-aligned (every frame header starts with an
	// AlignByte), so after padding the header to a byte boundary the
	// segments' payload bytes concatenate directly.
	bw.AlignByte()
	out := bw.Bytes()
	out = append([]byte(nil), out...)
	for i, p := range parts {
		out = append(out, p[hdrs[i].payload:]...)
	}
	return out, nil
}

// StitchStats merges per-segment encode stats into whole-clip stats, in
// segment order: frame records concatenate (coding order within a segment
// is preserved; segments never interleave) and the totals are recomputed
// exactly as EncodeAll computes them.
func StitchStats(parts []*Stats) (*Stats, error) {
	if len(parts) == 0 {
		return nil, ErrNoFrames
	}
	out := &Stats{Width: parts[0].Width, Height: parts[0].Height, FPS: parts[0].FPS}
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("codec: stitch stats part %d: nil", i)
		}
		if p.Width != out.Width || p.Height != out.Height || p.FPS != out.FPS {
			return nil, fmt.Errorf("codec: stitch stats part %d: mismatched geometry", i)
		}
		out.Frames = append(out.Frames, p.Frames...)
	}
	var psnrSum float64
	for i := range out.Frames {
		out.TotalBits += out.Frames[i].Bits
		psnrSum += out.Frames[i].PSNR
	}
	out.AveragePSNR = psnrSum / float64(len(out.Frames))
	return out, nil
}
