package codec

import (
	"fmt"
	"sort"

	"repro/internal/codec/bits"
	"repro/internal/codec/transform"
	"repro/internal/frame"
	"repro/internal/trace"
)

// Decoder decodes bitstreams produced by Encoder. Decoding is the first,
// deterministic half of a transcode; like the encoder it is instrumented,
// charging its work to the FnDec* trace functions.
type Decoder struct {
	tr      tracer
	br      *bits.Reader
	tune    Tuning
	w, h    int
	fps     int
	deblock bool
	dct8    bool
	dA, dB  int
	mvf0    *mvField
	mvf1    *mvField
	dbs     *deblockState
	dpb     []*frame.Frame
	nextVA  uint64
	qpPrev  int
}

// DecoderOptions configure decode-side instrumentation and loop tuning.
type DecoderOptions struct {
	TraceSampleLog2 int
	Tune            Tuning
}

// NewDecoder builds a decoder with the given trace sink (nil disables
// instrumentation).
func NewDecoder(opt DecoderOptions, sink trace.Sink) *Decoder {
	return &Decoder{
		tr:     newTracer(sink, opt.TraceSampleLog2),
		tune:   opt.Tune,
		nextVA: 0x8_0000_0000,
	}
}

// RecordDecode decodes a stream while capturing the decoder's event stream
// into a trace.Recorder, returning the frames, the stream info and the
// recorded buffer. Replaying the buffer into any trace.Sink re-drives
// exactly the events a live decode with the same options would have
// emitted — the foundation of core's decoded-mezzanine cache.
func RecordDecode(stream []byte, opt DecoderOptions) ([]*frame.Frame, *Info, []byte, error) {
	rec := trace.NewRecorder()
	frames, info, err := NewDecoder(opt, rec).Decode(stream)
	if err != nil {
		return nil, nil, nil, err
	}
	return frames, info, rec.Bytes(), nil
}

// FrameMeta describes one coded picture as parsed from the stream.
type FrameMeta struct {
	PTS  int
	Type FrameType
	QP   int
	Bits int64
}

// Info describes a parsed sequence header plus per-frame coding metadata
// (in coding order), the information a stream analyzer reports.
type Info struct {
	Width, Height, FPS, Frames int
	Coded                      []FrameMeta
}

// Decode parses and reconstructs the whole stream, returning frames in
// display order.
func (d *Decoder) Decode(stream []byte) ([]*frame.Frame, *Info, error) {
	d.br = bits.NewReader(stream)
	magic, err := d.br.ReadBits(32)
	if err != nil || magic != streamMagic {
		return nil, nil, errBitstream("bad magic")
	}
	mbw, err := d.readUE()
	if err != nil {
		return nil, nil, err
	}
	mbh, err := d.readUE()
	if err != nil {
		return nil, nil, err
	}
	fps, err := d.readUE()
	if err != nil {
		return nil, nil, err
	}
	nFrames, err := d.readUE()
	if err != nil {
		return nil, nil, err
	}
	if mbw == 0 || mbh == 0 || mbw > 1024 || mbh > 1024 {
		return nil, nil, errBitstream("implausible dimensions")
	}
	// A conforming stream carries at least one picture, and each coded
	// frame consumes at least one bit, so the declared count can never
	// exceed the bits remaining — reject before sizing any allocation.
	if nFrames == 0 || int64(nFrames) > int64(len(stream))*8 {
		return nil, nil, errBitstream("implausible frame count")
	}
	d.w, d.h, d.fps = mbw*16, mbh*16, fps
	db, err := d.br.ReadBit()
	if err != nil {
		return nil, nil, err
	}
	d.deblock = db
	if db {
		a, err := d.br.ReadSE()
		if err != nil {
			return nil, nil, err
		}
		b, err := d.br.ReadSE()
		if err != nil {
			return nil, nil, err
		}
		d.dA, d.dB = int(a), int(b)
	}
	dct8, err := d.br.ReadBit()
	if err != nil {
		return nil, nil, err
	}
	d.dct8 = dct8
	d.mvf0 = newMVField(mbw, mbh)
	d.mvf1 = newMVField(mbw, mbh)
	d.dbs = newDeblockState(mbw, mbh)

	info := &Info{Width: d.w, Height: d.h, FPS: d.fps, Frames: nFrames}
	out := make([]*frame.Frame, 0, nFrames)
	for k := 0; k < nFrames; k++ {
		start := d.br.BitsRead()
		f, t, qp, err := d.decodeFrame()
		if err != nil {
			return nil, nil, fmt.Errorf("frame %d: %w", k, err)
		}
		out = append(out, f)
		info.Coded = append(info.Coded, FrameMeta{
			PTS: f.PTS, Type: t, QP: qp, Bits: d.br.BitsRead() - start,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PTS < out[j].PTS })
	return out, info, nil
}

func (d *Decoder) readUE() (int, error) {
	v, err := d.br.ReadUE()
	return int(v), err
}

// traceParse charges bitstream consumption between two cursor positions.
func (d *Decoder) traceParse(startBits int64) {
	read := d.br.BitsRead() - startBits
	if read <= 0 || !d.tr.on {
		return
	}
	d.tr.ops(trace.FnDecParse, int(read/3)+6)
	d.tr.load(trace.FnDecParse, bitstreamBase+uint64(startBits/8), int(read/8)+1)
}

func (d *Decoder) decodeFrame() (*frame.Frame, FrameType, int, error) {
	fail := func(err error) (*frame.Frame, FrameType, int, error) {
		return nil, FrameI, 0, err
	}
	d.br.AlignByte()
	t64, err := d.readUE()
	if err != nil {
		return fail(err)
	}
	if t64 > int(FrameB) {
		return fail(errBitstream("bad frame type"))
	}
	t := FrameType(t64)
	pts, err := d.readUE()
	if err != nil {
		return fail(err)
	}
	frameQP, err := d.readUE()
	if err != nil {
		return fail(err)
	}
	if _, err := d.readUE(); err != nil { // nRefs: informational
		return fail(err)
	}

	rec := frame.New(d.w, d.h)
	rec.PTS = pts
	rec.SetBase(d.nextVA)
	d.nextVA += (uint64(rec.ByteSize()) + 4095) &^ 4095
	d.mvf0.reset()
	d.mvf1.reset()
	d.qpPrev = frameQP

	var list0 []*frame.Frame
	var list1 *frame.Frame
	switch t {
	case FrameP:
		list0 = d.dpb
		if len(list0) == 0 {
			return fail(errBitstream("P frame with empty reference list"))
		}
	case FrameB:
		if len(d.dpb) < 2 {
			return fail(errBitstream("B frame without two anchors"))
		}
		list1 = d.dpb[0]
		list0 = d.dpb[1:]
	}

	mbw, mbh := d.w/16, d.h/16
	for my := 0; my < mbh; my++ {
		for mx := 0; mx < mbw; mx++ {
			d.tr.nextMB()
			d.tr.call(trace.FnDecParse)
			if err := d.decodeMB(rec, t, list0, list1, mx, my); err != nil {
				return fail(fmt.Errorf("mb (%d,%d): %w", mx, my, err))
			}
		}
		if d.deblock && d.tune.FuseDeblock && my > 0 {
			deblockMBRow(&d.tr, trace.FnDeblock, rec, d.dbs, my-1, d.dA, d.dB)
		}
	}
	if d.deblock {
		if d.tune.FuseDeblock {
			deblockMBRow(&d.tr, trace.FnDeblock, rec, d.dbs, mbh-1, d.dA, d.dB)
		} else {
			for my := 0; my < mbh; my++ {
				deblockMBRow(&d.tr, trace.FnDeblock, rec, d.dbs, my, d.dA, d.dB)
			}
		}
	}
	rec.ExtendEdges()
	if t != FrameB {
		d.dpb = append([]*frame.Frame{rec}, d.dpb...)
		if len(d.dpb) > 16 {
			d.dpb = d.dpb[:16]
		}
	}
	return rec, t, frameQP, nil
}

// decodeMB parses and reconstructs one macroblock.
func (d *Decoder) decodeMB(rec *frame.Frame, t FrameType, list0 []*frame.Frame, list1 *frame.Frame, mx, my int) error {
	startBits := d.br.BitsRead()
	mb := &macroblock{x: mx * 16, y: my * 16}

	if t == FrameI {
		use4, err := d.readUE()
		if err != nil {
			return err
		}
		mb.kind = kindIntra
		if use4 == 1 {
			mb.intra.use4x4 = true
			for i := range mb.intra.modes4 {
				v, err := d.br.ReadBits(2)
				if err != nil {
					return err
				}
				mb.intra.modes4[i] = uint8(v)
			}
		} else {
			v, err := d.br.ReadBits(2)
			if err != nil {
				return err
			}
			mb.intra.mode16 = int(v)
		}
	} else {
		kind, err := d.readUE()
		if err != nil {
			return err
		}
		switch kind {
		case 0: // skip
			mb.kind = kindSkip
			mb.partMode = part16x16
			mvp := d.mvf0.predict(mx, my)
			setAll(&mb.mvs, mvp)
			if t == FrameB {
				mb.dir = dirBI
				setAll(&mb.mvsL1, d.mvf1.predict(mx, my))
			} else {
				mb.dir = dirL0
			}
			mb.qp = d.qpPrev
			d.traceParse(startBits)
			return d.reconstructDecodedMB(rec, mb, list0, list1, mx, my)
		case 1: // inter
			mb.kind = kindInter
			if err := d.parseInterSyntax(mb, t, mx, my, len(list0)); err != nil {
				return err
			}
		case 2: // intra in P/B
			mb.kind = kindIntra
			use4, err := d.br.ReadBit()
			if err != nil {
				return err
			}
			if use4 {
				mb.intra.use4x4 = true
				for i := range mb.intra.modes4 {
					v, err := d.br.ReadBits(2)
					if err != nil {
						return err
					}
					mb.intra.modes4[i] = uint8(v)
				}
			} else {
				v, err := d.br.ReadBits(2)
				if err != nil {
					return err
				}
				mb.intra.mode16 = int(v)
			}
		default:
			return errBitstream("bad mb kind")
		}
	}

	qpd, err := d.br.ReadSE()
	if err != nil {
		return err
	}
	mb.qp = clampInt(d.qpPrev+int(qpd), 0, transform.MaxQP)
	d.qpPrev = mb.qp
	cbp, err := d.br.ReadUE()
	if err != nil {
		return err
	}
	if cbp > 63 {
		return errBitstream("bad cbp")
	}
	mb.cbp = cbp

	mb.dct8 = d.dct8 && !(mb.kind == kindIntra && mb.intra.use4x4)
	for g := 0; g < 4; g++ {
		if mb.cbp&(1<<uint(g)) == 0 {
			continue
		}
		if mb.dct8 {
			nz, err := d.readResidualBlock8(&mb.coefs8[g])
			if err != nil {
				return err
			}
			mb.nzc8[g] = uint8(nz)
			continue
		}
		gx, gy := (g%2)*2, (g/2)*2
		for _, bi := range [4]int{gy*4 + gx, gy*4 + gx + 1, (gy+1)*4 + gx, (gy+1)*4 + gx + 1} {
			nz, err := d.readResidualBlock(&mb.coefs[bi])
			if err != nil {
				return err
			}
			mb.nzc[bi] = uint8(nz)
		}
	}
	for plane := 0; plane < 2; plane++ {
		if mb.cbp&(1<<uint(4+plane)) == 0 {
			continue
		}
		base := 16 + plane*4
		for k := 0; k < 4; k++ {
			nz, err := d.readResidualBlock(&mb.coefs[base+k])
			if err != nil {
				return err
			}
			mb.nzc[base+k] = uint8(nz)
		}
	}
	d.traceParse(startBits)
	return d.reconstructDecodedMB(rec, mb, list0, list1, mx, my)
}

// parseInterSyntax reads partitioning, references and motion vectors.
func (d *Decoder) parseInterSyntax(mb *macroblock, t FrameType, mx, my, nList0 int) error {
	if t == FrameB {
		dir, err := d.readUE()
		if err != nil {
			return err
		}
		if dir > dirBI {
			return errBitstream("bad B direction")
		}
		mb.dir = dir
		if _, err := d.readUE(); err != nil { // partMode, always 16x16 for B
			return err
		}
		if dir != dirL1 {
			ref, err := d.readUE()
			if err != nil {
				return err
			}
			if ref >= nList0 {
				return errBitstream("refIdx out of range")
			}
			mb.refIdx = ref
			mvp := d.mvf0.predict(mx, my)
			dx, err := d.br.ReadSE()
			if err != nil {
				return err
			}
			dy, err := d.br.ReadSE()
			if err != nil {
				return err
			}
			setAll(&mb.mvs, MV{mvp.X + dx, mvp.Y + dy})
		}
		if dir != dirL0 {
			mvp := d.mvf1.predict(mx, my)
			dx, err := d.br.ReadSE()
			if err != nil {
				return err
			}
			dy, err := d.br.ReadSE()
			if err != nil {
				return err
			}
			setAll(&mb.mvsL1, MV{mvp.X + dx, mvp.Y + dy})
		}
		return nil
	}

	pm, err := d.readUE()
	if err != nil {
		return err
	}
	if pm > part8x8 {
		return errBitstream("bad partition mode")
	}
	mb.partMode = pm
	if pm == part8x8 {
		for i := range mb.sub4x4 {
			s, err := d.br.ReadBit()
			if err != nil {
				return err
			}
			mb.sub4x4[i] = s
		}
	}
	ref, err := d.readUE()
	if err != nil {
		return err
	}
	if ref >= nList0 {
		return errBitstream("refIdx out of range")
	}
	mb.refIdx = ref
	mvpred := d.mvf0.predict(mx, my)
	readPart := func(px, py, pw, ph int) error {
		dx, err := d.br.ReadSE()
		if err != nil {
			return err
		}
		dy, err := d.br.ReadSE()
		if err != nil {
			return err
		}
		mv := MV{mvpred.X + dx, mvpred.Y + dy}
		mb.setMV(0, px, py, pw, ph, mv)
		mvpred = mv
		return nil
	}
	if pm == part8x8 {
		for i, g := range partGeom[part8x8] {
			if mb.sub4x4[i] {
				for k := 0; k < 4; k++ {
					if err := readPart(g[0]+(k%2)*4, g[1]+(k/2)*4, 4, 4); err != nil {
						return err
					}
				}
			} else if err := readPart(g[0], g[1], g[2], g[3]); err != nil {
				return err
			}
		}
	} else {
		for _, g := range partGeom[pm] {
			if err := readPart(g[0], g[1], g[2], g[3]); err != nil {
				return err
			}
		}
	}
	return nil
}

// reconstructDecodedMB mirrors the encoder's reconstruction exactly.
func (d *Decoder) reconstructDecodedMB(rec *frame.Frame, mb *macroblock, list0 []*frame.Frame, list1 *frame.Frame, mx, my int) error {
	// Luma prediction + residual.
	switch {
	case mb.kind == kindIntra && mb.intra.use4x4:
		var pred block
		for by := 0; by < 4; by++ {
			for bx := 0; bx < 4; bx++ {
				bi := by*4 + bx
				d.tr.predIntra(trace.FnDecPred, &rec.Y, mb.x+bx*4, mb.y+by*4, 4, 4, mode4Set[mb.intra.modes4[bi]], &pred)
				d.addResidual4x4(&rec.Y, mb.x+bx*4, mb.y+by*4, &pred, 0, 0, mb.qp, &mb.coefs[bi], mb.nzc[bi] > 0)
			}
		}
	default:
		var pred16 block
		if mb.kind == kindIntra {
			d.tr.predIntra(trace.FnDecPred, &rec.Y, mb.x, mb.y, 16, 16, mb.intra.mode16, &pred16)
		} else {
			predictInterLumaInto(&d.tr, trace.FnDecMC, mb, list0, list1, &pred16)
		}
		switch {
		case mb.kind == kindSkip:
			d.tr.copyPredToRec(&rec.Y, mb.x, mb.y, &pred16)
		case mb.dct8:
			for g := 0; g < 4; g++ {
				gx, gy := (g%2)*8, (g/2)*8
				coded := mb.cbp&(1<<uint(g)) != 0 && mb.nzc8[g] > 0
				d.addResidual8x8(&rec.Y, mb.x+gx, mb.y+gy, &pred16, gx, gy, mb.qp, &mb.coefs8[g], coded)
			}
		default:
			for by := 0; by < 4; by++ {
				for bx := 0; bx < 4; bx++ {
					bi := by*4 + bx
					coded := mb.cbp&(1<<uint((by/2)*2+bx/2)) != 0 && mb.nzc[bi] > 0
					d.addResidual4x4(&rec.Y, mb.x+bx*4, mb.y+by*4, &pred16, bx*4, by*4, mb.qp, &mb.coefs[bi], coded)
				}
			}
		}
	}

	// Chroma.
	cqp := chromaQP(mb.qp)
	for plane := 0; plane < 2; plane++ {
		recC := &rec.Cb
		if plane == 1 {
			recC = &rec.Cr
		}
		var predC block
		if mb.kind == kindIntra {
			d.tr.predIntra(trace.FnDecPred, recC, mb.x/2, mb.y/2, 8, 8, intraDC, &predC)
		} else {
			predictInterChromaInto(&d.tr, trace.FnDecMC, mb, list0, list1, plane, &predC)
		}
		if mb.kind == kindSkip {
			d.tr.copyPredToRec(recC, mb.x/2, mb.y/2, &predC)
			continue
		}
		codedPlane := mb.cbp&(1<<uint(4+plane)) != 0
		for by := 0; by < 2; by++ {
			for bx := 0; bx < 2; bx++ {
				ci := 16 + plane*4 + by*2 + bx
				d.addResidual4x4(recC, mb.x/2+bx*4, mb.y/2+by*4, &predC, bx*4, by*4, cqp, &mb.coefs[ci], codedPlane && mb.nzc[ci] > 0)
			}
		}
	}

	// Neighbour bookkeeping, matching the encoder exactly: only
	// transmitted vectors enter the prediction fields.
	coded := mb.kind != kindIntra
	l0 := MV{}
	if coded && mb.dir != dirL1 {
		l0 = mb.mvs[0]
	}
	d.mvf0.set(mx, my, l0, coded && mb.dir != dirL1)
	if list1 != nil {
		l1 := MV{}
		if coded && mb.dir != dirL0 {
			l1 = mb.mvsL1[0]
		}
		d.mvf1.set(mx, my, l1, coded && mb.dir != dirL0)
	}
	d.dbs.set(mx, my, mb.qp, mb.kind)
	return nil
}

// addResidual8x8 reconstructs one 8x8 luma block (the --8x8dct path).
func (d *Decoder) addResidual8x8(rec *frame.Plane, x, y int, pred *block, predOx, predOy, qp int, coef *transform.Block8, coded bool) {
	if !coded {
		for j := 0; j < 8; j++ {
			prow := pred.row(predOy + j)[predOx : predOx+8]
			for i := 0; i < 8; i++ {
				rec.Set(x+i, y+j, prow[i])
			}
		}
		d.tr.store2D(trace.FnDecIDCT, rec, x, y, 8, 8)
		return
	}
	deq := *coef
	transform.Dequant8(&deq, qp)
	var spatial transform.Block8
	transform.IDCT8(&deq, &spatial)
	d.tr.call(trace.FnDecIDCT)
	d.tr.ops(trace.FnDecIDCT, 96)
	for j := 0; j < 8; j++ {
		prow := pred.row(predOy + j)[predOx : predOx+8]
		for i := 0; i < 8; i++ {
			rec.Set(x+i, y+j, clampU8(int32(prow[i])+spatial[j*8+i]))
		}
	}
	d.tr.store2D(trace.FnDecIDCT, rec, x, y, 8, 8)
}

// addResidual4x4 reconstructs one 4x4 block from its prediction and (if
// coded) dequantized coefficients — the decoder half of codeResidual4x4.
func (d *Decoder) addResidual4x4(rec *frame.Plane, x, y int, pred *block, predOx, predOy, qp int, coef *transform.Block, coded bool) {
	if !coded {
		for j := 0; j < 4; j++ {
			prow := pred.row(predOy + j)[predOx : predOx+4]
			for i := 0; i < 4; i++ {
				rec.Set(x+i, y+j, prow[i])
			}
		}
		d.tr.store2D(trace.FnDecIDCT, rec, x, y, 4, 4)
		return
	}
	deq := *coef
	transform.Dequant(&deq, qp)
	var spatial transform.Block
	transform.IDCT(&deq, &spatial)
	d.tr.call(trace.FnDecIDCT)
	d.tr.ops(trace.FnDecIDCT, 36)
	for j := 0; j < 4; j++ {
		prow := pred.row(predOy + j)[predOx : predOx+4]
		for i := 0; i < 4; i++ {
			rec.Set(x+i, y+j, clampU8(int32(prow[i])+spatial[j*4+i]))
		}
	}
	d.tr.store2D(trace.FnDecIDCT, rec, x, y, 4, 4)
}
