package codec

import (
	"repro/internal/codec/bits"
	"repro/internal/codec/transform"
	"repro/internal/frame"
	"repro/internal/trace"
)

// interChoice is the result of inter analysis for one macroblock.
type interChoice struct {
	cost     int
	skip     bool
	partMode int
	sub4x4   [4]bool
	refIdx   int
	dir      int
	mvs      [16]MV
	mvsL1    [16]MV
}

// skipThreshold is the SATD level below which a predictor-vector prediction
// is considered good enough to code the macroblock as a skip. It scales
// with the quantization step: coarser quantizers would discard the residual
// anyway.
func skipThreshold(qp int) int {
	return int(transform.QStep(qp)) * 24
}

// refEarlyThreshold stops the reference-frame loop once a search result is
// essentially a perfect match; unlike the skip check this is almost
// quality-independent — x264 walks the full reference list unless the match
// is already exact.
func refEarlyThreshold(qp int) int {
	return 160 + int(transform.QStep(qp))
}

// setAll fills a 16-cell vector field with one vector.
func setAll(mvs *[16]MV, mv MV) {
	for i := range mvs {
		mvs[i] = mv
	}
}

// setMV mirrors macroblock.setMV for the analysis result.
func (c *interChoice) setMV(list int, px, py, pw, ph int, mv MV) {
	for j := py / 4; j < (py+ph)/4; j++ {
		for i := px / 4; i < (px+pw)/4; i++ {
			if list == 0 {
				c.mvs[j*4+i] = mv
			} else {
				c.mvsL1[j*4+i] = mv
			}
		}
	}
}

// analyseInter performs motion analysis for the macroblock at (mx, my) of a
// P or B frame and returns the best inter choice. list0 holds past
// reconstructed anchors (most recent first); list1 is the future anchor for
// B frames (nil for P).
func (e *Encoder) analyseInter(src *frame.Plane, mx, my int, list0 []*frame.Frame, list1 *frame.Frame, qp int) interChoice {
	e.tr.call(trace.FnAnalyse)
	e.tr.ops(trace.FnAnalyse, 120)
	x, y := mx*16, my*16
	lambda := lambdaFor(qp)
	mvp := e.mvf0.predict(mx, my)
	isB := list1 != nil

	// Skip check first: predict with the neighbourhood vector and measure.
	var pred, predB, scratch block
	var skipMV1 MV
	if isB {
		mvp1 := e.mvf1.predict(mx, my)
		skipMV1 = mvp1
		e.tr.interpLuma(trace.FnInterp, &list0[0].Y, x, y, mvp, &pred, 16, 16)
		e.tr.interpLuma(trace.FnInterp, &list1.Y, x, y, mvp1, &predB, 16, 16)
		avgBlocks(&pred, &predB, &scratch)
		pred = scratch
	} else {
		e.tr.interpLuma(trace.FnInterp, &list0[0].Y, x, y, mvp, &pred, 16, 16)
	}
	skipSATD := e.tr.satdBlock(trace.FnAnalyse, src, x, y, &pred)
	doSkip := skipSATD < skipThreshold(qp)
	e.tr.branch(trace.FnAnalyse, siteSkipCheck, doSkip)
	if doSkip {
		ch := interChoice{cost: skipSATD, skip: true, dir: dirBI}
		setAll(&ch.mvs, mvp)
		setAll(&ch.mvsL1, skipMV1)
		if !isB {
			ch.dir = dirL0
		}
		return ch
	}

	// 16x16 search over the reference list.
	nRefs := e.opt.Refs
	if nRefs > len(list0) {
		nRefs = len(list0)
	}
	best := interChoice{cost: 1 << 30, refIdx: 0, dir: dirL0}
	var bestQ meQuery
	var bestRes meResult
	refsTried := 0
	for r := 0; r < nRefs; r++ {
		q := meQuery{
			src: src, ref: &list0[r].Y, sx: x, sy: y, w: 16, h: 16,
			mvp: mvp, rangePx: e.opt.MERange, method: e.opt.ME,
			useSATD: e.opt.ME == METesa, lambda: lambda,
			earlyPx: int(transform.QStep(qp)) * 2,
		}
		res := e.motionSearch(&q)
		res = e.subpelRefine(&q, res, e.opt.Subme)
		cost := res.cost + lambda*bits.UEBits(uint32(r))
		better := cost < best.cost
		e.tr.branch(trace.FnAnalyse, siteRefCmp, better)
		if better {
			best.cost = cost
			best.refIdx = r
			setAll(&best.mvs, res.mv)
			bestQ, bestRes = q, res
		}
		refsTried++
		early := best.cost < refEarlyThreshold(qp)
		e.tr.branch(trace.FnAnalyse, siteMEEarly, early)
		if early {
			break
		}
	}
	e.tr.loop(trace.FnAnalyse, siteSearchLoop, refsTried)

	if isB {
		// B: evaluate L1 and BI against the L0 result; 16x16 only.
		mvp1 := e.mvf1.predict(mx, my)
		q1 := meQuery{
			src: src, ref: &list1.Y, sx: x, sy: y, w: 16, h: 16,
			mvp: mvp1, rangePx: e.opt.MERange, method: e.opt.ME,
			useSATD: e.opt.ME == METesa, lambda: lambda,
			earlyPx: int(transform.QStep(qp)) * 2,
		}
		res1 := e.motionSearch(&q1)
		res1 = e.subpelRefine(&q1, res1, e.opt.Subme)
		if res1.cost < best.cost {
			e.tr.branch(trace.FnAnalyse, siteModeCmp, true)
			best.cost = res1.cost
			best.dir = dirL1
			setAll(&best.mvsL1, res1.mv)
		} else {
			e.tr.branch(trace.FnAnalyse, siteModeCmp, false)
		}
		// BI: average the best prediction of each list.
		e.tr.interpLuma(trace.FnInterp, &list0[best.refIdx].Y, x, y, bestRes.mv, &pred, 16, 16)
		e.tr.interpLuma(trace.FnInterp, &list1.Y, x, y, res1.mv, &predB, 16, 16)
		avgBlocks(&pred, &predB, &scratch)
		biSATD := e.tr.satdBlock(trace.FnAnalyse, src, x, y, &scratch)
		biCost := biSATD + lambda*(mvBits(MV{bestRes.mv.X - mvp.X, bestRes.mv.Y - mvp.Y})+
			mvBits(MV{res1.mv.X - mvp1.X, res1.mv.Y - mvp1.Y})+4)
		if biCost < best.cost {
			e.tr.branch(trace.FnAnalyse, siteModeCmp, true)
			best.cost = biCost
			best.dir = dirBI
			setAll(&best.mvs, bestRes.mv)
			setAll(&best.mvsL1, res1.mv)
		} else {
			e.tr.branch(trace.FnAnalyse, siteModeCmp, false)
		}
		return best
	}

	// P partitions.
	if e.opt.Partitions.P8x8 && e.opt.Subme >= 2 {
		e.analysePartitions(src, x, y, &bestQ, bestRes, lambda, &best)
	}
	return best
}

// partition geometry tables: offsets and sizes per partition mode.
var partGeom = [4][][4]int{
	part16x16: {{0, 0, 16, 16}},
	part16x8:  {{0, 0, 16, 8}, {0, 8, 16, 8}},
	part8x16:  {{0, 0, 8, 16}, {8, 0, 8, 16}},
	part8x8:   {{0, 0, 8, 8}, {8, 0, 8, 8}, {0, 8, 8, 8}, {8, 8, 8, 8}},
}

// analysePartitions refines the 16x16 winner with 16x8/8x16/8x8 (and
// optionally 4x4) splits, searching a small diamond around the parent
// vector for each part.
func (e *Encoder) analysePartitions(src *frame.Plane, x, y int, parentQ *meQuery, parent meResult, lambda int, best *interChoice) {
	subme := e.opt.Subme
	searchPart := func(px, py, pw, ph int, mvp MV, rangePx int) meResult {
		q := meQuery{
			src: src, ref: parentQ.ref, sx: x + px, sy: y + py, w: pw, h: ph,
			mvp: mvp, rangePx: rangePx, method: MEDia, lambda: lambda,
		}
		res := e.motionSearch(&q)
		if subme >= 3 {
			res = e.subpelRefine(&q, res, clampInt(subme-2, 1, 5))
		}
		return res
	}

	type partResult struct {
		cost int
		mvs  [4]meResult // indexed by partGeom position (2 or 4 parts used)
	}
	tryMode := func(mode int, overhead int) partResult {
		geo := partGeom[mode]
		var pr partResult
		mvpred := parent.mv
		for i, g := range geo {
			r := searchPart(g[0], g[1], g[2], g[3], mvpred, 4)
			pr.mvs[i] = r
			pr.cost += r.cost
			mvpred = r.mv
		}
		pr.cost += lambda * overhead
		return pr
	}

	modes := []int{part16x8, part8x16, part8x8}
	overheads := map[int]int{part16x8: 6, part8x16: 6, part8x8: 12}
	bestMode := part16x16
	var bestPR partResult
	for _, m := range modes {
		pr := tryMode(m, overheads[m])
		better := pr.cost < best.cost
		e.tr.branch(trace.FnAnalyse, siteModeCmp, better)
		if better {
			best.cost = pr.cost
			bestMode = m
			bestPR = pr
		}
	}
	if bestMode == part16x16 {
		return
	}
	best.partMode = bestMode
	for i, g := range partGeom[bestMode] {
		best.setMV(0, g[0], g[1], g[2], g[3], bestPR.mvs[i].mv)
	}
	// Optional 4x4 refinement of each 8x8 block (placebo-class work).
	if bestMode == part8x8 && e.opt.Partitions.P4x4 && subme >= 5 {
		for i, g := range partGeom[part8x8] {
			var sum int
			var sub [4]meResult
			mvpred := bestPR.mvs[i].mv
			for k := 0; k < 4; k++ {
				sx := g[0] + (k%2)*4
				sy := g[1] + (k/2)*4
				r := searchPart(sx, sy, 4, 4, mvpred, 2)
				sub[k] = r
				sum += r.cost
				mvpred = r.mv
			}
			sum += lambda * 8
			split := sum < bestPR.mvs[i].cost
			e.tr.branch(trace.FnAnalyse, siteModeCmp, split)
			if split {
				best.sub4x4[i] = true
				best.cost += sum - bestPR.mvs[i].cost
				for k := 0; k < 4; k++ {
					sx := g[0] + (k%2)*4
					sy := g[1] + (k/2)*4
					best.setMV(0, sx, sy, 4, 4, sub[k].mv)
				}
			}
		}
	}
}

// predictInterLuma stages the final luma prediction of an inter macroblock.
func (e *Encoder) predictInterLuma(mb *macroblock, list0 []*frame.Frame, list1 *frame.Frame, pred *block) {
	predictInterLumaInto(&e.tr, trace.FnInterp, mb, list0, list1, pred)
}

// predictInterLumaInto is shared with the decoder (which charges the work
// to its own trace functions).
func predictInterLumaInto(t *tracer, fn trace.FuncID, mb *macroblock, list0 []*frame.Frame, list1 *frame.Frame, pred *block) {
	pred.w, pred.h = 16, 16
	var part, part1, avg block
	stage := func(g [4]int) {
		cell := (g[1]/4)*4 + g[0]/4
		switch mb.dir {
		case dirL0:
			t.interpLuma(fn, &list0[mb.refIdx].Y, mb.x+g[0], mb.y+g[1], mb.mvs[cell], &part, g[2], g[3])
		case dirL1:
			t.interpLuma(fn, &list1.Y, mb.x+g[0], mb.y+g[1], mb.mvsL1[cell], &part, g[2], g[3])
		default: // BI
			t.interpLuma(fn, &list0[mb.refIdx].Y, mb.x+g[0], mb.y+g[1], mb.mvs[cell], &part, g[2], g[3])
			t.interpLuma(fn, &list1.Y, mb.x+g[0], mb.y+g[1], mb.mvsL1[cell], &part1, g[2], g[3])
			avgBlocks(&part, &part1, &avg)
			part = avg
		}
		blit(pred, &part, g[0], g[1])
	}
	if mb.partMode == part8x8 {
		for i, g := range partGeom[part8x8] {
			if mb.sub4x4[i] {
				for k := 0; k < 4; k++ {
					sg := [4]int{g[0] + (k%2)*4, g[1] + (k/2)*4, 4, 4}
					stage(sg)
				}
			} else {
				stage(g)
			}
		}
		return
	}
	for _, g := range partGeom[mb.partMode] {
		stage(g)
	}
}

// predictInterChroma stages one chroma plane's prediction (8x8) for an
// inter macroblock. plane selects Cb (0) or Cr (1).
func predictInterChromaInto(t *tracer, fn trace.FuncID, mb *macroblock, list0 []*frame.Frame, list1 *frame.Frame, plane int, pred *block) {
	pred.w, pred.h = 8, 8
	sel := func(f *frame.Frame) *frame.Plane {
		if plane == 0 {
			return &f.Cb
		}
		return &f.Cr
	}
	cx, cy := mb.x/2, mb.y/2
	var part, part1, avg block
	// Chroma is predicted in 4x4 blocks, each taking the vector of the
	// corresponding luma 8x8 region.
	for by := 0; by < 2; by++ {
		for bx := 0; bx < 2; bx++ {
			cell := (by*2)*4 + bx*2
			switch mb.dir {
			case dirL0:
				t.interpChroma(fn, sel(list0[mb.refIdx]), cx+bx*4, cy+by*4, mb.mvs[cell], &part, 4, 4)
			case dirL1:
				t.interpChroma(fn, sel(list1), cx+bx*4, cy+by*4, mb.mvsL1[cell], &part, 4, 4)
			default:
				t.interpChroma(fn, sel(list0[mb.refIdx]), cx+bx*4, cy+by*4, mb.mvs[cell], &part, 4, 4)
				t.interpChroma(fn, sel(list1), cx+bx*4, cy+by*4, mb.mvsL1[cell], &part1, 4, 4)
				avgBlocks(&part, &part1, &avg)
				part = avg
			}
			blit(pred, &part, bx*4, by*4)
		}
	}
}

// blit copies a staged block into a larger staged block at (ox, oy).
func blit(dst, src *block, ox, oy int) {
	for j := 0; j < src.h; j++ {
		copy(dst.row(oy + j)[ox:ox+src.w], src.row(j))
	}
}
