package codec

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/frame"
	"repro/internal/trace"
)

// pinClipVAs assigns traced virtual addresses to any frame that lacks them,
// exactly as the first EncodeAll over the clip would. Trace comparisons
// need this done up front: EncodeAll's assignment is persistent, so without
// it the first encode of a shared clip lays its reconstruction buffer at a
// different virtual base than every later encode.
func pinClipVAs(tb testing.TB, frames []*frame.Frame) {
	tb.Helper()
	enc, err := NewEncoder(frames[0].Width, frames[0].Height, 30, Defaults(), nil)
	if err != nil {
		tb.Fatal(err)
	}
	for _, f := range frames {
		if f.Y.Base == 0 {
			enc.allocVA(f)
		}
	}
}

// encodeWorkers encodes the clip with the given worker count, recording the
// full instrumentation stream, and returns the bitstream bytes, the
// recorded trace bytes and the stats.
func encodeWorkers(tb testing.TB, frames []*frame.Frame, opt Options, workers int) ([]byte, []byte, *Stats) {
	tb.Helper()
	opt.Workers = workers
	rec := trace.NewRecorder()
	enc, err := NewEncoder(frames[0].Width, frames[0].Height, 30, opt, rec)
	if err != nil {
		tb.Fatal(err)
	}
	stream, stats, err := enc.EncodeAll(frames)
	if err != nil {
		tb.Fatal(err)
	}
	return stream, rec.Bytes(), stats
}

// workerOptionSets enumerates the option shapes whose parallel schedules
// differ structurally: fused vs unfused deblocking (different tracer tick
// interleavings), B frames with both adaptive policies (bidirectional
// lookahead, L1 MV fields), trellis-2 RD mode decision, the 8x8 transform,
// trace sampling (worker tick pre-simulation must hit the same macroblocks)
// and an I-frame-heavy stream.
func workerOptionSets() map[string]Options {
	medium := Defaults()

	fused := Defaults()
	fused.Tune.FuseDeblock = true

	slower := Options{RC: RCCRF, CRF: 28, QP: 26, KeyintMax: 250}
	ApplyPreset(&slower, PresetSlower)
	slower.Tune.FuseDeblock = true

	dct8 := Defaults()
	dct8.DCT8x8 = true

	sampled := Defaults()
	sampled.TraceSampleLog2 = 2
	sampled.Tune.FuseDeblock = true

	iheavy := Defaults()
	iheavy.KeyintMax = 2
	iheavy.BFrames = 0

	abr2 := Defaults()
	abr2.RC = RCABR2
	abr2.BitrateKbps = 400

	cbr := Defaults()
	cbr.RC = RCCBR
	cbr.BitrateKbps = 400

	return map[string]Options{
		"medium":  medium,
		"fused":   fused,
		"slower":  slower,
		"dct8x8":  dct8,
		"sampled": sampled,
		"iheavy":  iheavy,
		"abr2":    abr2,
		"cbr":     cbr, // serial fallback: must still be identical
	}
}

// TestEncodeWorkersDeterminism is the hard guarantee behind Options.Workers:
// the bitstream bytes AND the emitted trace-event stream are identical for
// 1 and N workers, across every structurally distinct option shape. The
// trace equality is what makes the parallel encoder usable at all here —
// the microarchitectural simulation consumes that stream, and experiments
// must not depend on the host's core count.
func TestEncodeWorkersDeterminism(t *testing.T) {
	frames := makeClip(t, "cricket", 6, 8)
	pinClipVAs(t, frames)
	for name, opt := range workerOptionSets() {
		t.Run(name, func(t *testing.T) {
			refStream, refTrace, refStats := encodeWorkers(t, frames, opt, 1)
			for _, workers := range []int{2, 8} {
				stream, tr, stats := encodeWorkers(t, frames, opt, workers)
				if !bytes.Equal(stream, refStream) {
					t.Fatalf("workers=%d: bitstream differs (%d vs %d bytes)", workers, len(stream), len(refStream))
				}
				if !bytes.Equal(tr, refTrace) {
					t.Fatalf("workers=%d: trace differs (%d vs %d bytes)", workers, len(tr), len(refTrace))
				}
				if fmt.Sprint(stats.Frames) != fmt.Sprint(refStats.Frames) {
					t.Fatalf("workers=%d: per-frame stats differ", workers)
				}
			}
		})
	}
}

// TestEncodeWorkersUntraced covers the recording-free fast path (nil sink):
// workers must skip event recording entirely yet still produce the same
// bytes.
func TestEncodeWorkersUntraced(t *testing.T) {
	frames := makeClip(t, "presentation", 5, 8)
	opt := Defaults()
	opt.Tune.FuseDeblock = true
	ref, _ := encodeClip(t, frames, opt)
	opt.Workers = 4
	got, _ := encodeClip(t, frames, opt)
	if !bytes.Equal(got, ref) {
		t.Fatalf("untraced parallel encode differs (%d vs %d bytes)", len(got), len(ref))
	}
}

// TestAnalysisWorkersDeterminism pins the artifact path: a parallel Analyze
// produces a byte-identical artifact, and an encode consuming an artifact
// stays byte-identical under workers (the worker tick pre-simulation must
// resume mid-sampling-phase from the artifact's saved counter).
func TestAnalysisWorkersDeterminism(t *testing.T) {
	frames := makeClip(t, "cricket", 6, 8)
	pinClipVAs(t, frames)
	opt := Defaults()
	a1, err := Analyze(frames, 30, opt)
	if err != nil {
		t.Fatal(err)
	}
	optW := opt
	optW.Workers = 4
	a4, err := Analyze(frames, 30, optW)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a1.Events(), a4.Events()) {
		t.Fatalf("parallel Analyze recorded different events (%d vs %d bytes)", len(a4.Events()), len(a1.Events()))
	}
	if a1.ctr != a4.ctr || a1.on != a4.on {
		t.Fatalf("parallel Analyze tracer state (%d,%v) != serial (%d,%v)", a4.ctr, a4.on, a1.ctr, a1.on)
	}

	encodeShared := func(workers int) ([]byte, []byte) {
		rec := trace.NewRecorder()
		o := opt
		o.Workers = workers
		enc, err := NewEncoder(frames[0].Width, frames[0].Height, 30, o, rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.SetAnalysis(a1); err != nil {
			t.Fatal(err)
		}
		if err := trace.Replay(a1.Events(), rec); err != nil {
			t.Fatal(err)
		}
		stream, _, err := enc.EncodeAll(frames)
		if err != nil {
			t.Fatal(err)
		}
		return stream, rec.Bytes()
	}
	refStream, refTrace := encodeShared(1)
	stream, tr := encodeShared(4)
	if !bytes.Equal(stream, refStream) {
		t.Fatal("artifact-fed parallel encode: bitstream differs")
	}
	if !bytes.Equal(tr, refTrace) {
		t.Fatal("artifact-fed parallel encode: trace differs")
	}
}

// TestParallelWorkersResolution pins the serial fallbacks: worker counts of
// zero and one, and CBR's row-feedback loop.
func TestParallelWorkersResolution(t *testing.T) {
	opt := Defaults()
	for _, w := range []int{0, 1} {
		opt.Workers = w
		e, err := NewEncoder(64, 64, 30, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := e.parallelWorkers(); got != 1 {
			t.Fatalf("workers=%d resolved to %d, want 1", w, got)
		}
	}
	opt.RC = RCCBR
	opt.BitrateKbps = 400
	opt.Workers = 8
	e, err := NewEncoder(64, 64, 30, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.parallelWorkers(); got != 1 {
		t.Fatalf("CBR resolved to %d workers, want serial fallback", got)
	}
	if err := (&Options{CRF: 23, QP: 26, Refs: 1, MERange: 16, Workers: 65}).Validate(); err == nil {
		t.Fatal("Validate accepted workers=65")
	}
}
