package codec

import (
	"fmt"
	"sync/atomic"

	"repro/internal/codec/bits"
	"repro/internal/codec/transform"
	"repro/internal/frame"
	"repro/internal/trace"
)

// streamMagic begins every bitstream ("RVC1": Repro Video Codec 1).
const streamMagic = 0x52564331

// ErrNoFrames is returned when an encode is requested with no input.
var ErrNoFrames = fmt.Errorf("codec: no frames to encode")

// Encoder encodes a sequence of frames. One Encoder encodes one stream;
// create a fresh one per EncodeAll call.
type Encoder struct {
	opt    Options
	w, h   int
	fps    int
	tr     tracer
	bw     *bits.Writer
	rc     *rateControl
	mvf0   *mvField
	mvf1   *mvField
	dbs    *deblockState
	dpb    []*frame.Frame // reconstructed anchors, most recent first
	recon  *frame.Frame   // current frame's reconstruction
	nextVA uint64         // bump allocator for traced buffer addresses
	pool   []*frame.Frame // retired reconstruction buffers for reuse
	qpPrev int
	stats  Stats
	// basePTS is the first input frame's PTS. Segment encodes hand EncodeAll
	// a mid-clip frame range whose PTS values are absolute clip positions
	// (so frame headers survive stitching); rate-control bookkeeping indexed
	// by display order subtracts the base.
	basePTS int

	// Motion-search candidate deduplication (see me.go).
	visited  []uint32
	visitGen uint32

	scratch arena

	// analysis, when set, replaces the lookahead and variance computation
	// with the shared per-video artifact (see analysis.go).
	analysis *Analysis

	// Intra-encode parallelism (see parallel.go): cached per-worker shadow
	// encoders plus per-frame scratch reused across frames.
	shadows    []*Encoder
	shadowCh   chan *Encoder
	mbScratch  []macroblock
	qpScratch  []int
	progress   []atomic.Int64
	poolDoneCh chan poolResult

	// Per-stage latency accounting (see stage.go). Both nil unless a
	// StageObserver is attached.
	stageObs StageObserver
	stage    *stageClock
}

// arena is the encoder's typed scratch storage: working buffers with
// per-macroblock lifetime that would otherwise be heap-allocated in the MB
// loop. It extends the recon-frame recycling (getRecon) down to the
// macroblock level — the ~2KB coefficient record alone used to account for
// the bulk of a sweep point's steady-state allocations.
type arena struct {
	// mb is the macroblock under construction. encodeMB resets and reuses
	// it; nothing retains the pointer across macroblocks (neighbour state
	// is copied out into mvField/deblockState).
	mb macroblock
}

// NewEncoder builds an encoder for w x h @ fps video with the given options
// and trace sink (nil for no instrumentation).
func NewEncoder(w, h, fps int, opt Options, sink trace.Sink) (*Encoder, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if w <= 0 || h <= 0 || w%16 != 0 || h%16 != 0 {
		return nil, fmt.Errorf("codec: dimensions %dx%d must be positive multiples of 16", w, h)
	}
	if fps <= 0 {
		return nil, fmt.Errorf("codec: fps %d must be positive", fps)
	}
	mbw, mbh := w/16, h/16
	e := &Encoder{
		opt:     opt,
		w:       w,
		h:       h,
		fps:     fps,
		tr:      newTracer(sink, opt.TraceSampleLog2),
		bw:      bits.NewWriter(),
		rc:      newRateControl(&opt, w, h, fps),
		mvf0:    newMVField(mbw, mbh),
		mvf1:    newMVField(mbw, mbh),
		dbs:     newDeblockState(mbw, mbh),
		nextVA:  0x1_0000_0000,
		visited: make([]uint32, (2*visitR+1)*(2*visitR+1)),
	}
	// The options struct embedded in the rate controller must alias e.opt.
	e.rc.opt = &e.opt
	return e, nil
}

// SampleFactor reports the trace-sampling multiplier in effect.
func (e *Encoder) SampleFactor() float64 { return e.tr.SampleFactor() }

// allocVA reserves a traced virtual-address range for a frame buffer.
func (e *Encoder) allocVA(f *frame.Frame) {
	f.SetBase(e.nextVA)
	e.nextVA += (uint64(f.ByteSize()) + 4095) &^ 4095
}

// getRecon returns a reconstruction buffer, reusing retired ones. Like
// x264's picture pool, buffer reuse keeps the encoder's steady-state
// footprint at refs+2 frames instead of growing per frame — without it,
// every frame's first touches would be compulsory cache misses and the
// cache-capacity effects the experiments study would drown in cold traffic.
func (e *Encoder) getRecon() *frame.Frame {
	if n := len(e.pool); n > 0 {
		f := e.pool[n-1]
		e.pool = e.pool[:n-1]
		return f
	}
	f := frame.New(e.w, e.h)
	e.allocVA(f)
	return f
}

// recycle returns a no-longer-referenced buffer to the pool.
func (e *Encoder) recycle(f *frame.Frame) {
	e.pool = append(e.pool, f)
}

// EncodeAll encodes the sequence and returns the bitstream and statistics.
// In two-pass ABR mode the sequence is genuinely encoded twice — the first
// pass gathers complexity statistics, and both passes' work reaches the
// trace sink, doubling the measured cost exactly as 2-pass transcoding
// doubles it in production.
func (e *Encoder) EncodeAll(frames []*frame.Frame) ([]byte, *Stats, error) {
	if len(frames) == 0 {
		return nil, nil, ErrNoFrames
	}
	e.basePTS = frames[0].PTS
	for _, f := range frames {
		if f.Width != e.w || f.Height != e.h {
			return nil, nil, fmt.Errorf("codec: frame %d is %dx%d, encoder is %dx%d",
				f.PTS, f.Width, f.Height, e.w, e.h)
		}
		if f.Y.Base == 0 {
			e.allocVA(f)
		}
	}

	if e.opt.RC == RCABR2 {
		// Pass 1: constant QP probe collecting per-frame bits.
		p1opt := e.opt
		p1opt.RC = RCCQP
		p1opt.QP = e.rc.pass1QP
		p1, err := NewEncoder(e.w, e.h, e.fps, p1opt, e.tr.sink)
		if err != nil {
			return nil, nil, err
		}
		p1.tr = e.tr // share sampling state so pass-1 work is charged too
		_, p1stats, err := p1.EncodeAll(frames)
		if err != nil {
			return nil, nil, fmt.Errorf("codec: 2-pass first pass: %w", err)
		}
		e.tr = p1.tr
		e.rc.pass1Bits = make([]int64, len(p1stats.Frames))
		for _, fs := range p1stats.Frames {
			e.rc.pass1Bits[fs.PTS-e.basePTS] = fs.Bits
		}
	}

	var lc *lookaheadCosts
	if e.analysis != nil {
		// Shared analysis: the artifact's recorded events stand in for the
		// lookahead's emission (the caller already fed them to the sink), so
		// only the cost tables and the tracer's post-lookahead sampling
		// state are taken here. Frame-type decisions are recomputed — they
		// are pure arithmetic over the costs and may depend on options
		// (scenecut, keyint, B policy) outside the artifact's key.
		var err error
		if lc, err = e.analysisCosts(frames); err != nil {
			return nil, nil, err
		}
	} else {
		t0 := e.stageStart()
		lc = e.runLookahead(frames)
		e.stageEnd(StageLookahead, t0)
		e.flushStages()
	}
	types := e.decideTypes(frames, lc)

	e.stats = Stats{Width: e.w, Height: e.h, FPS: e.fps}

	writeSeqHeader(e.bw, seqHeader{
		mbw: e.w / 16, mbh: e.h / 16, fps: e.fps, frames: len(frames),
		deblock: e.opt.Deblock, deblockA: e.opt.DeblockA, deblockB: e.opt.DeblockB,
		dct8x8: e.opt.DCT8x8,
	})

	// Coding order: anchors first, then the B frames they close.
	var pendingB []int
	encodeOne := func(i int, t FrameType) error {
		var list1 *frame.Frame
		list0 := e.dpb
		if t == FrameB {
			if len(e.dpb) < 2 {
				t = FrameP // not enough anchors; degrade
			} else {
				list1 = e.dpb[0]
				list0 = e.dpb[1:]
			}
		}
		if t != FrameI && len(list0) == 0 {
			t = FrameI
		}
		fs, err := e.encodeFrame(frames[i], t, list0, list1)
		if err != nil {
			return err
		}
		e.stats.Frames = append(e.stats.Frames, fs)
		return nil
	}
	for i, t := range types {
		if t == FrameB {
			pendingB = append(pendingB, i)
			continue
		}
		if err := encodeOne(i, t); err != nil {
			return nil, nil, err
		}
		for _, b := range pendingB {
			if err := encodeOne(b, FrameB); err != nil {
				return nil, nil, err
			}
		}
		pendingB = pendingB[:0]
	}
	// Trailing B frames with no closing anchor degrade to P.
	for _, b := range pendingB {
		if err := encodeOne(b, FrameP); err != nil {
			return nil, nil, err
		}
	}

	out := e.bw.Bytes()
	var psnrSum float64
	for i := range e.stats.Frames {
		e.stats.TotalBits += e.stats.Frames[i].Bits
		psnrSum += e.stats.Frames[i].PSNR
	}
	e.stats.AveragePSNR = psnrSum / float64(len(e.stats.Frames))
	return out, &e.stats, nil
}

// pushAnchor inserts a reconstructed anchor at the head of the DPB,
// recycling the anchor that falls out of reference range.
func (e *Encoder) pushAnchor(rec *frame.Frame) {
	e.dpb = append([]*frame.Frame{rec}, e.dpb...)
	if len(e.dpb) > 16 {
		e.recycle(e.dpb[16])
		e.dpb = e.dpb[:16]
	}
}

// encodeFrame encodes one picture and returns its statistics.
func (e *Encoder) encodeFrame(src *frame.Frame, t FrameType, list0 []*frame.Frame, list1 *frame.Frame) (FrameStats, error) {
	startBits := e.bw.BitsWritten()
	frameQP := e.rc.frameQP(t, src.PTS-e.basePTS)
	e.traceRC()
	e.rc.beginFrame(startBits)

	rec := e.getRecon()
	rec.PTS = src.PTS
	e.recon = rec
	e.mvf0.reset()
	e.mvf1.reset()
	e.qpPrev = frameQP

	// Frame header.
	e.bw.AlignByte()
	e.bw.WriteUE(uint32(t))
	e.bw.WriteUE(uint32(src.PTS))
	e.bw.WriteUE(uint32(frameQP))
	nRefs := e.opt.Refs
	if t == FrameI {
		nRefs = 0
	} else if nRefs > len(list0) {
		nRefs = len(list0)
	}
	e.bw.WriteUE(uint32(nRefs))

	mbw, mbh := e.w/16, e.h/16
	intraMB, interMB, skipMB := 0, 0, 0
	if workers := e.parallelWorkers(); workers > 1 && mbh > 1 {
		var err error
		intraMB, interMB, skipMB, err = e.encodeRowsParallel(src, t, list0, list1, frameQP, workers)
		if err != nil {
			return FrameStats{}, err
		}
	} else {
		for my := 0; my < mbh; my++ {
			for mx := 0; mx < mbw; mx++ {
				e.tr.nextMB()
				e.tr.call(trace.FnDriver)
				e.tr.ops(trace.FnDriver, 80)
				mb, err := e.encodeMB(src, t, list0, list1, mx, my, frameQP)
				if err != nil {
					return FrameStats{}, err
				}
				switch mb.kind {
				case kindIntra:
					intraMB++
				case kindInter:
					interMB++
				default:
					skipMB++
				}
			}
			e.tr.loop(trace.FnDriver, siteRowLoop, mbw)
			e.rc.endRow(my+1, mbh, e.bw.BitsWritten())
			// Fused deblocking: filter the previous row while its pixels are
			// still cache-resident (Graphite loop fusion).
			if e.opt.Deblock && e.opt.Tune.FuseDeblock && my > 0 {
				e.deblockRow(rec, my-1)
			}
		}
	}
	if e.opt.Deblock {
		if e.opt.Tune.FuseDeblock {
			e.deblockRow(rec, mbh-1)
		} else {
			for my := 0; my < mbh; my++ {
				e.deblockRow(rec, my)
			}
		}
	}
	rec.ExtendEdges()

	psnr := frame.PSNR(src, rec)
	if t != FrameB {
		e.pushAnchor(rec)
	} else {
		// B reconstructions are never referenced again.
		e.recycle(rec)
	}

	bitsUsed := e.bw.BitsWritten() - startBits
	e.rc.postFrame(bitsUsed)
	e.flushStages()
	return FrameStats{
		PTS:     src.PTS,
		Type:    t,
		QP:      frameQP,
		Bits:    bitsUsed,
		PSNR:    psnr,
		IntraMB: intraMB,
		InterMB: interMB,
		SkipMB:  skipMB,
	}, nil
}

// encodeMB analyses, reconstructs and writes one macroblock.
func (e *Encoder) encodeMB(src *frame.Frame, t FrameType, list0 []*frame.Frame, list1 *frame.Frame, mx, my, frameQP int) (*macroblock, error) {
	mb := &e.scratch.mb
	*mb = macroblock{x: mx * 16, y: my * 16}

	// Macroblock quantizer: AQ spatial offset plus CBR row feedback.
	variance := e.mbVariance(src, mx, my)
	mb.qp = e.rc.mbQP(frameQP, variance, e.opt.AQMode > 0)

	e.decideMB(src, t, list0, list1, mb)
	e.sequenceMB(mb, t, mx, my, list1 != nil)
	return mb, nil
}

// mbVariance returns the luma activity of macroblock (mx, my) when adaptive
// quantization is active, emitting the exact trace events the serial
// computation would.
func (e *Encoder) mbVariance(src *frame.Frame, mx, my int) float64 {
	if e.opt.AQMode <= 0 {
		return 0
	}
	x, y := mx*16, my*16
	if v, ok := e.analysisVariance(src.PTS, mx, my); ok {
		// Cached map: emit the exact events the computation would have
		// (byte-stable traces), skip the arithmetic.
		e.tr.varianceEvents(&src.Y, x, y, 16, 16)
		return v
	}
	return e.tr.blockVariance(&src.Y, x, y, 16, 16)
}

// decideMB runs the per-macroblock mode decision and reconstruction: inter
// and intra analysis, the RD compare, and residual coding into mb (whose
// position and qp must already be set). This is the portion of encodeMB
// that depends only on wavefront-ordered neighbour state — reconstructed
// pixels and MV fields — never on the bit writer, rate controller or
// deblock maps, which is what lets parallel row workers run it off the
// sequencer goroutine (see parallel.go).
func (e *Encoder) decideMB(src *frame.Frame, t FrameType, list0 []*frame.Frame, list1 *frame.Frame, mb *macroblock) {
	mx, my := mb.x/16, mb.y/16
	lambda := lambdaFor(mb.qp)

	// Mode decision.
	t0 := e.stageStart()
	isIntraFrame := t == FrameI
	var inter interChoice
	if !isIntraFrame {
		inter = e.analyseInter(&src.Y, mx, my, list0, list1, mb.qp)
	}
	var intra intraChoice
	if isIntraFrame || !inter.skip {
		intra = e.analyseIntra(&src.Y, &e.recon.Y, mb.x, mb.y, lambda)
	}
	switch {
	case isIntraFrame:
		mb.kind = kindIntra
		mb.intra = intra
	case inter.skip:
		mb.kind = kindSkip
		mb.partMode = part16x16
		mb.refIdx = 0
		mb.dir = inter.dir
		mb.mvs = inter.mvs
		mb.mvsL1 = inter.mvsL1
	default:
		// Intra competes with inter inside P/B frames. At trellis level 2
		// the comparison is RD-based: both candidates are transformed and
		// trellis-quantized, and the full rate+distortion decides.
		useIntra := intra.cost < inter.cost
		if e.opt.Trellis >= 2 && intra.cost < inter.cost*3/2 && inter.cost < intra.cost*3/2 {
			useIntra = e.rdCompareIntra(src, mb, &intra, &inter, list0, list1)
		}
		e.tr.branch(trace.FnAnalyse, siteModeCmp, useIntra)
		if useIntra {
			mb.kind = kindIntra
			mb.intra = intra
		} else {
			mb.kind = kindInter
			mb.partMode = inter.partMode
			mb.sub4x4 = inter.sub4x4
			mb.refIdx = inter.refIdx
			mb.dir = inter.dir
			mb.mvs = inter.mvs
			mb.mvsL1 = inter.mvsL1
		}
	}
	e.stageEnd(StageME, t0)

	// Reconstruction and residual computation.
	t1 := e.stageStart()
	e.reconstructMB(src, mb, list0, list1)
	e.stageEnd(StageTransform, t1)
}

// sequenceMB runs the strictly serial tail of a macroblock: entropy coding
// and the neighbour bookkeeping that feeds MV prediction and deblocking.
func (e *Encoder) sequenceMB(mb *macroblock, t FrameType, mx, my int, hasL1 bool) {
	// Entropy coding.
	t0 := e.stageStart()
	startBits := e.bw.BitsWritten()
	e.writeMB(mb, t)
	e.bitWriterTrace(startBits)
	e.stageEnd(StageEntropy, t0)

	e.setMVField(mx, my, mb, hasL1)
	qpForDeblock := mb.qp
	if mb.kind == kindSkip {
		qpForDeblock = e.qpPrev
	}
	e.dbs.set(mx, my, qpForDeblock, mb.kind)
}

// setMVField publishes the macroblock's transmitted vectors for neighbour
// prediction. Only *transmitted* vectors may influence later predictions,
// or encoder and decoder would diverge: an L1-only B macroblock contributes
// nothing to the L0 field.
func (e *Encoder) setMVField(mx, my int, mb *macroblock, hasL1 bool) {
	coded := mb.kind != kindIntra
	l0 := MV{}
	if coded && mb.dir != dirL1 {
		l0 = mb.mvs[0]
	}
	e.mvf0.set(mx, my, l0, coded && mb.dir != dirL1)
	if hasL1 {
		l1 := MV{}
		if coded && mb.dir != dirL0 {
			l1 = mb.mvsL1[0]
		}
		e.mvf1.set(mx, my, l1, coded && mb.dir != dirL0)
	}
}

// deblockRow filters one reconstructed macroblock row with the master
// tracer, charging the deblock latency stage.
func (e *Encoder) deblockRow(rec *frame.Frame, my int) {
	t0 := e.stageStart()
	deblockMBRow(&e.tr, trace.FnDeblock, rec, e.dbs, my, e.opt.DeblockA, e.opt.DeblockB)
	e.stageEnd(StageDeblock, t0)
}

// reconstructMB stages the final prediction, codes the residual and writes
// the reconstruction for one macroblock.
func (e *Encoder) reconstructMB(src *frame.Frame, mb *macroblock, list0 []*frame.Frame, list1 *frame.Frame) {
	deadzone := int32(transform.DeadzoneInter)
	if mb.kind == kindIntra {
		deadzone = transform.DeadzoneIntra
	}
	trellis := e.opt.Trellis >= 1
	lambda := int32(lambdaFor(mb.qp))

	// Luma.
	switch {
	case mb.kind == kindIntra && mb.intra.use4x4:
		// Sequential 4x4 intra: each block is predicted from already
		// reconstructed neighbours.
		var pred block
		for by := 0; by < 4; by++ {
			for bx := 0; bx < 4; bx++ {
				bi := by*4 + bx
				e.tr.predIntra(trace.FnIntraPred, &e.recon.Y, mb.x+bx*4, mb.y+by*4, 4, 4, mode4Set[mb.intra.modes4[bi]], &pred)
				nz := e.tr.codeResidual4x4(&src.Y, &e.recon.Y, mb.x+bx*4, mb.y+by*4, &pred, 0, 0,
					mb.qp, deadzone, trellis, lambda, &mb.coefs[bi])
				mb.nzc[bi] = uint8(nz)
			}
		}
	default:
		var pred16 block
		if mb.kind == kindIntra {
			e.tr.predIntra(trace.FnIntraPred, &e.recon.Y, mb.x, mb.y, 16, 16, mb.intra.mode16, &pred16)
		} else {
			e.predictInterLuma(mb, list0, list1, &pred16)
		}
		switch {
		case mb.kind == kindSkip:
			e.tr.copyPredToRec(&e.recon.Y, mb.x, mb.y, &pred16)
		case e.opt.DCT8x8:
			mb.dct8 = true
			for g := 0; g < 4; g++ {
				gx, gy := (g%2)*8, (g/2)*8
				nz := e.tr.codeResidual8x8(&src.Y, &e.recon.Y, mb.x+gx, mb.y+gy, &pred16, gx, gy,
					mb.qp, deadzone, &mb.coefs8[g])
				mb.nzc8[g] = uint8(nz)
			}
		default:
			for _, o := range residualOrder(e.opt.Tune.InterchangeResidual) {
				bx, by := o[0], o[1]
				bi := by*4 + bx
				nz := e.tr.codeResidual4x4(&src.Y, &e.recon.Y, mb.x+bx*4, mb.y+by*4, &pred16, bx*4, by*4,
					mb.qp, deadzone, trellis, lambda, &mb.coefs[bi])
				mb.nzc[bi] = uint8(nz)
			}
		}
	}

	// Chroma (8x8 per plane, four 4x4 blocks each).
	cqp := chromaQP(mb.qp)
	for plane := 0; plane < 2; plane++ {
		srcC, recC := &src.Cb, &e.recon.Cb
		if plane == 1 {
			srcC, recC = &src.Cr, &e.recon.Cr
		}
		var predC block
		if mb.kind == kindIntra {
			e.tr.predIntra(trace.FnIntraPred, recC, mb.x/2, mb.y/2, 8, 8, intraDC, &predC)
		} else {
			predictInterChromaInto(&e.tr, trace.FnInterp, mb, list0, list1, plane, &predC)
		}
		if mb.kind == kindSkip {
			e.tr.copyPredToRec(recC, mb.x/2, mb.y/2, &predC)
			continue
		}
		for by := 0; by < 2; by++ {
			for bx := 0; bx < 2; bx++ {
				ci := 16 + plane*4 + by*2 + bx
				nz := e.tr.codeResidual4x4(srcC, recC, mb.x/2+bx*4, mb.y/2+by*4, &predC, bx*4, by*4,
					cqp, deadzone, false, lambda, &mb.coefs[ci])
				mb.nzc[ci] = uint8(nz)
			}
		}
	}

	// Coded block pattern: 4 luma 8x8 groups + 2 chroma planes.
	if mb.kind != kindSkip {
		mb.cbp = 0
		for g := 0; g < 4; g++ {
			if mb.dct8 {
				if mb.nzc8[g] > 0 {
					mb.cbp |= 1 << uint(g)
				}
				continue
			}
			gx, gy := (g%2)*2, (g/2)*2
			if mb.nzc[gy*4+gx] > 0 || mb.nzc[gy*4+gx+1] > 0 ||
				mb.nzc[(gy+1)*4+gx] > 0 || mb.nzc[(gy+1)*4+gx+1] > 0 {
				mb.cbp |= 1 << uint(g)
			}
		}
		for plane := 0; plane < 2; plane++ {
			base := 16 + plane*4
			if mb.nzc[base] > 0 || mb.nzc[base+1] > 0 || mb.nzc[base+2] > 0 || mb.nzc[base+3] > 0 {
				mb.cbp |= 1 << uint(4+plane)
			}
		}
	}
}

// chromaQP maps the luma quantizer to the chroma quantizer (capped, as in
// H.264, so chroma keeps more fidelity at high QP).
func chromaQP(qp int) int {
	if qp > 30 {
		return 30 + (qp-30)*2/3
	}
	return qp
}

// rdCompareIntra decides intra-vs-inter by full rate-distortion when
// trellis 2 is active: both candidates are predicted, transformed and
// trellis-quantized, and the SSD + lambda*bits totals are compared. The
// heavy extra work is exactly why trellis 2 presets transcode slower.
func (e *Encoder) rdCompareIntra(src *frame.Frame, mb *macroblock, intra *intraChoice, inter *interChoice, list0 []*frame.Frame, list1 *frame.Frame) bool {
	lambda := int64(lambdaFor(mb.qp)) * int64(lambdaFor(mb.qp)) / 4 // SSD-domain lambda
	var predI, predP block
	e.tr.predIntra(trace.FnIntraPred, &e.recon.Y, mb.x, mb.y, 16, 16, intra.mode16, &predI)
	trial := macroblock{x: mb.x, y: mb.y, qp: mb.qp, kind: kindInter,
		partMode: inter.partMode, sub4x4: inter.sub4x4, refIdx: inter.refIdx,
		dir: inter.dir, mvs: inter.mvs, mvsL1: inter.mvsL1}
	e.predictInterLuma(&trial, list0, list1, &predP)
	costI := e.rdCostLuma(src, mb.x, mb.y, &predI, mb.qp, transform.DeadzoneIntra)
	costP := e.rdCostLuma(src, mb.x, mb.y, &predP, mb.qp, transform.DeadzoneInter) + lambda*int64(mvBits(inter.mvs[0]))
	return costI < costP
}

// rdCostLuma measures SSD + lambda*coefficient-bits of coding the 16x16
// luma block against the staged prediction, without touching the
// reconstruction plane.
func (e *Encoder) rdCostLuma(src *frame.Frame, x, y int, pred *block, qp int, deadzone int32) int64 {
	lambda := int64(lambdaFor(qp)) * int64(lambdaFor(qp)) / 4
	var total int64
	var res, freq transform.Block
	for by := 0; by < 4; by++ {
		for bx := 0; bx < 4; bx++ {
			for j := 0; j < 4; j++ {
				srow := src.Y.RowFrom(x+bx*4, y+by*4+j, 4)
				prow := pred.row(by*4 + j)[bx*4 : bx*4+4]
				for i := 0; i < 4; i++ {
					res[j*4+i] = int32(srow[i]) - int32(prow[i])
				}
			}
			transform.FDCT(&res, &freq)
			e.tr.call(trace.FnTrellis)
			e.tr.ops(trace.FnTrellis, 220)
			e.tr.load2D(trace.FnTrellis, &src.Y, x+bx*4, y+by*4, 4, 4)
			nz := transform.TrellisQuant(&freq, qp, deadzone, int32(lambdaFor(qp)))
			bitsEst := int64(4)
			deq := freq
			transform.Dequant(&deq, qp)
			var spatial transform.Block
			transform.IDCT(&deq, &spatial)
			for j := 0; j < 4; j++ {
				srow := src.Y.RowFrom(x+bx*4, y+by*4+j, 4)
				prow := pred.row(by*4 + j)[bx*4 : bx*4+4]
				for i := 0; i < 4; i++ {
					rec := int32(prow[i]) + spatial[j*4+i]
					d := int64(int32(srow[i]) - int32(clampU8(rec)))
					total += d * d
				}
			}
			if nz > 0 {
				for _, c := range freq {
					if c != 0 {
						bitsEst += int64(bits.SEBits(c)) + 2
					}
				}
			}
			total += lambda * bitsEst
		}
	}
	return total
}

// writeMB emits the macroblock syntax (residuals included).
func (e *Encoder) writeMB(mb *macroblock, t FrameType) {
	bw := e.bw
	e.tr.call(trace.FnCAVLC)
	e.tr.ops(trace.FnCAVLC, 60)

	if t == FrameI {
		if mb.intra.use4x4 {
			bw.WriteUE(1)
			for _, m := range mb.intra.modes4 {
				bw.WriteBits(uint32(m), 2)
			}
		} else {
			bw.WriteUE(0)
			bw.WriteBits(uint32(mb.intra.mode16), 2)
		}
	} else {
		switch mb.kind {
		case kindSkip:
			bw.WriteUE(0)
			return // skip carries no further syntax
		case kindInter:
			bw.WriteUE(1)
			e.writeInterSyntax(mb, t)
		case kindIntra:
			bw.WriteUE(2)
			if mb.intra.use4x4 {
				bw.WriteBit(true)
				for _, m := range mb.intra.modes4 {
					bw.WriteBits(uint32(m), 2)
				}
			} else {
				bw.WriteBit(false)
				bw.WriteBits(uint32(mb.intra.mode16), 2)
			}
		}
	}

	bw.WriteSE(int32(mb.qp - e.qpPrev))
	e.qpPrev = mb.qp
	bw.WriteUE(mb.cbp)

	// Residuals: luma groups flagged in cbp, then chroma planes.
	for g := 0; g < 4; g++ {
		if mb.cbp&(1<<uint(g)) == 0 {
			continue
		}
		if mb.dct8 {
			e.writeResidualBlock8(&mb.coefs8[g], int(mb.nzc8[g]))
			continue
		}
		gx, gy := (g%2)*2, (g/2)*2
		for _, bi := range [4]int{gy*4 + gx, gy*4 + gx + 1, (gy+1)*4 + gx, (gy+1)*4 + gx + 1} {
			e.writeResidualBlock(&mb.coefs[bi], int(mb.nzc[bi]))
		}
	}
	for plane := 0; plane < 2; plane++ {
		if mb.cbp&(1<<uint(4+plane)) == 0 {
			continue
		}
		base := 16 + plane*4
		for k := 0; k < 4; k++ {
			e.writeResidualBlock(&mb.coefs[base+k], int(mb.nzc[base+k]))
		}
	}
}

// writeInterSyntax emits partitioning, references and motion vectors.
func (e *Encoder) writeInterSyntax(mb *macroblock, t FrameType) {
	bw := e.bw
	if t == FrameB {
		bw.WriteUE(uint32(mb.dir))
		bw.WriteUE(uint32(part16x16)) // B restricted to 16x16 in this codec
		if mb.dir != dirL1 {
			bw.WriteUE(uint32(mb.refIdx))
			mvp := e.mvf0.predict(mb.x/16, mb.y/16)
			bw.WriteSE(mb.mvs[0].X - mvp.X)
			bw.WriteSE(mb.mvs[0].Y - mvp.Y)
		}
		if mb.dir != dirL0 {
			mvp := e.mvf1.predict(mb.x/16, mb.y/16)
			bw.WriteSE(mb.mvsL1[0].X - mvp.X)
			bw.WriteSE(mb.mvsL1[0].Y - mvp.Y)
		}
		return
	}
	bw.WriteUE(uint32(mb.partMode))
	if mb.partMode == part8x8 {
		for _, s := range mb.sub4x4 {
			bw.WriteBit(s)
		}
	}
	bw.WriteUE(uint32(mb.refIdx))
	mvpred := e.mvf0.predict(mb.x/16, mb.y/16)
	writePart := func(px, py int) {
		cell := (py/4)*4 + px/4
		mv := mb.mvs[cell]
		bw.WriteSE(mv.X - mvpred.X)
		bw.WriteSE(mv.Y - mvpred.Y)
		mvpred = mv
	}
	if mb.partMode == part8x8 {
		for i, g := range partGeom[part8x8] {
			if mb.sub4x4[i] {
				for k := 0; k < 4; k++ {
					writePart(g[0]+(k%2)*4, g[1]+(k/2)*4)
				}
			} else {
				writePart(g[0], g[1])
			}
		}
	} else {
		for _, g := range partGeom[mb.partMode] {
			writePart(g[0], g[1])
		}
	}
}
