package codec

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/frame"
	"repro/internal/trace"
)

// Intra-encode parallelism.
//
// A single encode parallelizes in two places, both output-invariant:
//
//   - The macroblock loop runs as a wavefront: each row is analysed and
//     reconstructed by a worker that lags the row above by two macroblocks —
//     exactly the dependency intra prediction (left + top reconstructed
//     pixels) and median MV prediction (left, top, top-right cells) impose.
//     The strictly serial tail — entropy coding, rate control, deblocking —
//     stays on the calling goroutine, consuming finished macroblocks in
//     raster order.
//
//   - The lookahead fans out per frame: every frame's intra/forward/backward
//     cost estimation is independent arithmetic over source pixels.
//
// Determinism is the hard requirement: the bitstream bytes AND the emitted
// trace-event stream must be identical for 1 and N workers, because the
// trace feeds a microarchitectural simulator whose results the experiments
// compare. Three mechanisms deliver it. Quantizers are fixed by a serial
// pre-pass (the AQ average is an order-dependent EMA). Each worker's tracer
// starts at the exact macroblock tick the serial schedule would assign its
// row, so sampling decisions match. And workers record their trace events
// into private buffers that the sequencer replays in raster order.

// parallelWorkers resolves Options.Workers for this encode: 1 (serial)
// unless a worker count above one is configured and the rate-control mode
// tolerates it. CBR adjusts the quantizer row by row from live entropy bit
// counts — a feedback loop the wavefront cannot honour without changing
// output — so it always encodes serially. The count is deliberately NOT
// capped at the core count: output never depends on it, the wavefront
// waits yield (runtime.Gosched) rather than block, and honouring the
// configured count even on smaller machines is what lets single-core CI
// exercise the full parallel machinery.
func (e *Encoder) parallelWorkers() int {
	if e.opt.Workers <= 1 || e.opt.RC == RCCBR {
		return 1
	}
	return e.opt.Workers
}

// shadowPool returns a channel holding `workers` shadow encoders, growing
// the cached set on first use. A shadow can run decideMB off the sequencer
// goroutine: options and geometry are copied, wavefront-shared state (MV
// fields, analysis artifact, stage clock) is aliased, and per-goroutine
// scratch (tracer, ME dedup window, macroblock arena) is private. The bit
// writer, rate controller, DPB and deblock maps are deliberately nil — the
// decision path never touches them, so a nil dereference here means
// sequencer-only work leaked into a worker.
func (e *Encoder) shadowPool(workers int) chan *Encoder {
	for len(e.shadows) < workers {
		e.shadows = append(e.shadows, &Encoder{
			opt:      e.opt,
			w:        e.w,
			h:        e.h,
			fps:      e.fps,
			mvf0:     e.mvf0,
			mvf1:     e.mvf1,
			analysis: e.analysis,
			visited:  make([]uint32, (2*visitR+1)*(2*visitR+1)),
			stage:    e.stage,
		})
	}
	// The channel itself is reused across frames: every user drains its
	// pool before returning, so by the time shadowPool runs again all
	// shadows are back in the channel — drop them and refill from the
	// canonical slice with this frame's reconstruction pointer.
	if cap(e.shadowCh) != workers {
		e.shadowCh = make(chan *Encoder, workers)
	} else {
		for len(e.shadowCh) > 0 {
			<-e.shadowCh
		}
	}
	for _, sh := range e.shadows[:workers] {
		sh.recon = e.recon
		e.shadowCh <- sh
	}
	return e.shadowCh
}

// poolResult carries exec.Pool.Map's return pair across the sequencer's
// completion channel, which is cached on the Encoder like the other
// per-frame wavefront scratch.
type poolResult struct {
	errs []error
	err  error
}

func (e *Encoder) poolDone() chan poolResult {
	if e.poolDoneCh == nil {
		e.poolDoneCh = make(chan poolResult, 1)
	}
	return e.poolDoneCh
}

// encodeRowsParallel runs the macroblock loop of one frame on a wavefront of
// `workers` row workers plus the calling goroutine as sequencer. It is the
// parallel equivalent of the serial loop in encodeFrame, byte-identical in
// bitstream and trace.
func (e *Encoder) encodeRowsParallel(src *frame.Frame, t FrameType, list0 []*frame.Frame, list1 *frame.Frame, frameQP, workers int) (intraMB, interMB, skipMB int, err error) {
	mbw, mbh := e.w/16, e.h/16
	n := mbw * mbh
	fused := e.opt.Deblock && e.opt.Tune.FuseDeblock
	aq := e.opt.AQMode > 0

	// Quantizer pre-pass: rc.mbQP's adaptive-quantization average is an
	// order-dependent EMA, so every macroblock's QP is fixed serially in
	// raster order before any worker runs. This pass is pure arithmetic —
	// the workers themselves emit the variance trace events.
	if cap(e.qpScratch) < n {
		e.qpScratch = make([]int, n)
	}
	qps := e.qpScratch[:n]
	for my := 0; my < mbh; my++ {
		for mx := 0; mx < mbw; mx++ {
			var variance float64
			if aq {
				if v, ok := e.analysisVariance(src.PTS, mx, my); ok {
					variance = v
				} else {
					variance = src.Y.BlockVariance(mx*16, my*16, 16, 16)
				}
			}
			qps[my*mbw+mx] = e.rc.mbQP(frameQP, variance, aq)
		}
	}

	// Tick pre-simulation: a worker's tracer must sample exactly the
	// macroblocks the serial schedule would. With fused deblocking the
	// serial order interleaves one deblock row (mbw nextMB ticks) after
	// every encoded row past the first, so row my's first encode tick is
	// offset by both the rows encoded and the rows deblocked before it.
	ctr0 := e.tr.ctr
	rowTick := func(my int) uint64 {
		ticks := uint64(my * mbw)
		if fused && my > 1 {
			ticks += uint64((my - 1) * mbw)
		}
		return ctr0 + ticks
	}

	_, nop := e.tr.sink.(trace.Nop)
	traced := !nop

	if cap(e.mbScratch) < n {
		e.mbScratch = make([]macroblock, n)
	}
	mbs := e.mbScratch[:n]
	var recs [][]byte
	if traced {
		recs = make([][]byte, n)
	}

	// progress[my] is the count of macroblocks of row my fully decided
	// (reconstruction written, MV field published). Workers spin on the row
	// above; the sequencer spins on the row it is writing out. The slice is
	// per-frame scratch: no worker is running yet, so plain stores reset it.
	if cap(e.progress) < mbh {
		e.progress = make([]atomic.Int64, mbh)
	}
	progress := e.progress[:mbh]
	for i := range progress {
		progress[i].Store(0)
	}
	var abort atomic.Bool
	shadows := e.shadowPool(workers)

	rowFn := func(ctx context.Context, my int) error {
		defer func() {
			if r := recover(); r != nil {
				abort.Store(true) // unblock everyone still spinning
				panic(r)          // re-raised; the pool converts it to an error
			}
		}()
		sh := <-shadows
		defer func() { shadows <- sh }()
		sh.tr = tracer{sink: trace.Nop{}, mask: e.tr.mask, factor: e.tr.factor, ctr: rowTick(my)}
		for mx := 0; mx < mbw; mx++ {
			if my > 0 {
				// Wavefront: (mx, my) reads the reconstruction and vectors of
				// (mx-1, my) — same worker, already done — and (mx+1, my-1).
				need := int64(mx + 2)
				if need > int64(mbw) {
					need = int64(mbw)
				}
				for progress[my-1].Load() < need {
					if abort.Load() {
						return nil
					}
					runtime.Gosched()
				}
			}
			idx := my*mbw + mx
			var rec *trace.Recorder
			if traced {
				rec = trace.NewRecorder()
				sh.tr.sink = rec
			}
			mb := &mbs[idx]
			*mb = macroblock{x: mx * 16, y: my * 16}
			sh.tr.nextMB()
			sh.tr.call(trace.FnDriver)
			sh.tr.ops(trace.FnDriver, 80)
			_ = sh.mbVariance(src, mx, my) // trace events only; QP is pre-assigned
			mb.qp = qps[idx]
			sh.decideMB(src, t, list0, list1, mb)
			sh.setMVField(mx, my, mb, list1 != nil)
			if traced {
				recs[idx] = rec.Bytes()
			}
			progress[my].Store(int64(mx + 1))
		}
		return nil
	}

	poolDone := e.poolDone()
	go func() {
		errs, perr := exec.Pool{Workers: workers}.Map(context.Background(), mbh, rowFn)
		poolDone <- poolResult{errs, perr}
	}()

	// Sequencer: consume macroblocks in raster order, replay each one's
	// recorded trace events under the master tracer, then run the serial
	// tail — entropy coding, deblock bookkeeping, row-end rate control and
	// fused deblocking — exactly as the serial loop would.
	var seqErr error
seq:
	for my := 0; my < mbh; my++ {
		for mx := 0; mx < mbw; mx++ {
			for progress[my].Load() < int64(mx+1) {
				if abort.Load() {
					break seq
				}
				runtime.Gosched()
			}
			idx := my*mbw + mx
			e.tr.nextMB()
			if traced {
				if err := trace.Replay(recs[idx], e.tr.sink); err != nil {
					seqErr = fmt.Errorf("codec: parallel trace replay: %w", err)
					break seq
				}
				recs[idx] = nil
			}
			mb := &mbs[idx]
			switch mb.kind {
			case kindIntra:
				intraMB++
			case kindInter:
				interMB++
			default:
				skipMB++
			}
			t0 := e.stageStart()
			startBits := e.bw.BitsWritten()
			e.writeMB(mb, t)
			e.bitWriterTrace(startBits)
			e.stageEnd(StageEntropy, t0)
			qpForDeblock := mb.qp
			if mb.kind == kindSkip {
				qpForDeblock = e.qpPrev
			}
			e.dbs.set(mx, my, qpForDeblock, mb.kind)
		}
		e.tr.loop(trace.FnDriver, siteRowLoop, mbw)
		e.rc.endRow(my+1, mbh, e.bw.BitsWritten())
		// Fused deblocking of row my-1 is safe here: its bottom-neighbour
		// row my is fully reconstructed (just sequenced), and no worker
		// reads pixels the filter rewrites — row my+1 workers only read
		// reconstruction from row my's bottom pixel rows, below the band
		// the row my-1 filter touches.
		if fused && my > 0 {
			e.deblockRow(e.recon, my-1)
		}
	}

	// Always drain the pool before returning: workers touch the shared
	// reconstruction and MV fields, which the caller recycles.
	res := <-poolDone
	if seqErr != nil {
		return 0, 0, 0, seqErr
	}
	if res.err != nil {
		return 0, 0, 0, res.err
	}
	for _, werr := range res.errs {
		if werr != nil {
			return 0, 0, 0, fmt.Errorf("codec: parallel row worker: %w", werr)
		}
	}
	return intraMB, interMB, skipMB, nil
}

// runLookaheadParallel estimates all frame complexities with one worker per
// frame, reproducing the serial tracer schedule: each frame's sampling
// ticks are pre-computed so worker i starts at the exact counter value the
// serial loop would reach, and recorded events are replayed in frame order.
func (e *Encoder) runLookaheadParallel(frames []*frame.Frame, workers int) *lookaheadCosts {
	n := len(frames)
	lc := &lookaheadCosts{
		intra: make([]int, n),
		fwd:   make([]int, n),
		bwd:   make([]int, n),
	}
	needBwd := e.opt.BAdapt >= 2 && e.opt.BFrames > 0

	// Sampling ticks per frame: one nextMB per grid block per pass (all
	// frames share the clip geometry).
	step := 8 * lookaheadGrid
	blocks := 0
	for y := 0; y+8 <= e.h; y += step {
		for x := 0; x+8 <= e.w; x += step {
			blocks++
		}
	}
	cum := make([]uint64, n+1)
	for i := 0; i < n; i++ {
		t := blocks // intra pass
		if i > 0 {
			t += blocks // forward pass
		}
		if needBwd && i+1 < n {
			t += blocks // backward pass
		}
		cum[i+1] = cum[i] + uint64(t)
	}
	base, entryOn := e.tr.ctr, e.tr.on
	// onAt reproduces the tracer's arming state after `ticks` nextMB calls:
	// nextMB sets on from the pre-increment counter, so the state after k
	// ticks is decided by counter base+k-1 (and is the entry state for 0).
	onAt := func(ticks uint64) bool {
		if ticks == 0 {
			return entryOn
		}
		return (base+ticks-1)&e.tr.mask == 0
	}
	_, nop := e.tr.sink.(trace.Nop)
	traced := !nop
	var recs [][]byte
	if traced {
		recs = make([][]byte, n)
	}
	shadows := e.shadowPool(workers)

	errs, perr := exec.Pool{Workers: workers}.Map(context.Background(), n, func(ctx context.Context, i int) error {
		sh := <-shadows
		defer func() { shadows <- sh }()
		var sink trace.Sink = trace.Nop{}
		var rec *trace.Recorder
		if traced {
			rec = trace.NewRecorder()
			sink = rec
		}
		sh.tr = tracer{sink: sink, mask: e.tr.mask, factor: e.tr.factor, ctr: base + cum[i], on: onAt(cum[i])}
		sh.tr.call(trace.FnLookahead)
		lc.intra[i] = sh.lookaheadIntra(frames[i])
		if i > 0 {
			lc.fwd[i] = sh.lookaheadInter(frames[i], frames[i-1])
		} else {
			lc.fwd[i] = lc.intra[i]
		}
		if needBwd {
			if i+1 < n {
				lc.bwd[i] = sh.lookaheadInter(frames[i], frames[i+1])
			} else {
				lc.bwd[i] = lc.intra[i]
			}
		}
		if traced {
			recs[i] = rec.Bytes()
		}
		return nil
	})
	// The serial lookahead cannot fail; a worker error here is a recovered
	// panic, so surface it as the panic it was.
	if perr != nil {
		panic(perr)
	}
	for _, err := range errs {
		if err != nil {
			panic(err)
		}
	}
	if traced {
		for i := 0; i < n; i++ {
			if err := trace.Replay(recs[i], e.tr.sink); err != nil {
				panic(fmt.Errorf("codec: parallel lookahead replay: %w", err))
			}
		}
	}
	e.tr.ctr = base + cum[n]
	e.tr.on = onAt(cum[n])
	return lc
}
