package codec

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/trace"
)

// blockEdgePlane builds a plane with a sharp vertical step at x=16 (a
// classic blocking artifact).
func blockEdgePlane() frame.Plane {
	p := frame.NewPlane(64, 64)
	for y := 0; y < 64; y++ {
		row := p.Row(y)
		for x := range row {
			if x < 16 {
				row[x] = 90
			} else {
				row[x] = 110
			}
		}
	}
	p.ExtendEdges()
	return p
}

func edgeStep(p *frame.Plane) int {
	d := int(p.At(16, 8)) - int(p.At(15, 8))
	if d < 0 {
		d = -d
	}
	return d
}

func TestFilterEdgeSmoothsBlockingArtifact(t *testing.T) {
	p := blockEdgePlane()
	before := edgeStep(&p)
	tr := newTracer(nil, 0)
	filterEdge(&tr, trace.FnDeblock, &p, 16, 0, 16, false, 32, 0, 0, false)
	after := edgeStep(&p)
	if after >= before {
		t.Fatalf("edge step %d -> %d; filter did nothing", before, after)
	}
}

func TestFilterEdgePreservesRealEdges(t *testing.T) {
	// A step far larger than alpha is detail, not blocking: untouched.
	p := frame.NewPlane(64, 64)
	for y := 0; y < 64; y++ {
		row := p.Row(y)
		for x := range row {
			if x < 16 {
				row[x] = 20
			} else {
				row[x] = 235
			}
		}
	}
	p.ExtendEdges()
	before := edgeStep(&p)
	tr := newTracer(nil, 0)
	filterEdge(&tr, trace.FnDeblock, &p, 16, 0, 16, false, 20, 0, 0, false)
	if edgeStep(&p) != before {
		t.Fatal("strong real edge was smoothed away")
	}
}

func TestDeblockStrengthGrowsWithQP(t *testing.T) {
	aLo, bLo, _ := deblockAlphaBeta(10, 0, 0)
	aHi, bHi, _ := deblockAlphaBeta(40, 0, 0)
	if aHi <= aLo || bHi <= bLo {
		t.Fatalf("thresholds must grow with QP: a %d->%d b %d->%d", aLo, aHi, bLo, bHi)
	}
	// Offsets shift the thresholds.
	aOff, _, _ := deblockAlphaBeta(26, 2, 0)
	aBase, _, _ := deblockAlphaBeta(26, 0, 0)
	if aOff <= aBase {
		t.Fatal("alpha offset ignored")
	}
}

func TestDeblockHorizontalEdge(t *testing.T) {
	p := frame.NewPlane(64, 64)
	for y := 0; y < 64; y++ {
		row := p.Row(y)
		v := uint8(90)
		if y >= 16 {
			v = 108
		}
		for x := range row {
			row[x] = v
		}
	}
	p.ExtendEdges()
	before := int(p.At(8, 16)) - int(p.At(8, 15))
	tr := newTracer(nil, 0)
	filterEdge(&tr, trace.FnDeblock, &p, 0, 16, 16, true, 32, 0, 0, false)
	after := int(p.At(8, 16)) - int(p.At(8, 15))
	if abs32(int32(after)) >= abs32(int32(before)) {
		t.Fatalf("horizontal edge %d -> %d", before, after)
	}
}

func TestUltrafastDisablesDeblock(t *testing.T) {
	o := Options{RC: RCCRF, CRF: 23, KeyintMax: 250}
	if err := ApplyPreset(&o, PresetUltrafast); err != nil {
		t.Fatal(err)
	}
	if o.Deblock {
		t.Fatal("ultrafast must disable the loop filter")
	}
	if err := ApplyPreset(&o, PresetSuperfast); err != nil {
		t.Fatal(err)
	}
	if !o.Deblock {
		t.Fatal("superfast must enable the loop filter")
	}
}

func TestDeblockImprovesQualityAtHighQP(t *testing.T) {
	// At coarse quantization the loop filter should not hurt (and usually
	// helps) reconstruction quality.
	frames := makeClip(t, "funny", 6, 8)
	opt := Defaults()
	opt.CRF = 38
	_, with := encodeClip(t, frames, opt)
	opt.Deblock = false
	_, without := encodeClip(t, frames, opt)
	if with.AveragePSNR < without.AveragePSNR-0.3 {
		t.Fatalf("deblocking hurt quality: %.2f vs %.2f dB", with.AveragePSNR, without.AveragePSNR)
	}
}

func TestDeblockStateTracksMBs(t *testing.T) {
	st := newDeblockState(4, 3)
	st.set(2, 1, 30, kindIntra)
	if st.qp[1*4+2] != 30 || st.kind[1*4+2] != kindIntra {
		t.Fatal("deblock state not stored")
	}
}
