package codec

import "fmt"

// Preset names the ten x264 speed/quality presets (Table II of the paper).
type Preset string

// The presets, fastest first.
const (
	PresetUltrafast Preset = "ultrafast"
	PresetSuperfast Preset = "superfast"
	PresetVeryfast  Preset = "veryfast"
	PresetFaster    Preset = "faster"
	PresetFast      Preset = "fast"
	PresetMedium    Preset = "medium"
	PresetSlow      Preset = "slow"
	PresetSlower    Preset = "slower"
	PresetVeryslow  Preset = "veryslow"
	PresetPlacebo   Preset = "placebo"
)

// Presets lists all presets in speed order (fastest first), the order used
// by Figure 6.
var Presets = []Preset{
	PresetUltrafast, PresetSuperfast, PresetVeryfast, PresetFaster,
	PresetFast, PresetMedium, PresetSlow, PresetSlower, PresetVeryslow,
	PresetPlacebo,
}

// presetDef holds the Table II option values for one preset.
type presetDef struct {
	aqMode     int
	bAdapt     int
	bframes    int
	deblockA   int
	deblockB   int
	me         MEMethod
	merange    int
	partitions Partitions
	refs       int
	scenecut   int
	subme      int
	trellis    int
}

var (
	partsNone   = Partitions{}
	partsIntra  = Partitions{I8x8: true, I4x4: true}
	partsNoP4x4 = Partitions{P8x8: true, I8x8: true, I4x4: true}
	partsAll    = Partitions{P8x8: true, P4x4: true, I8x8: true, I4x4: true}
)

// presetTable reproduces Table II exactly.
var presetTable = map[Preset]presetDef{
	PresetUltrafast: {0, 0, 0, 0, 0, MEDia, 16, partsNone, 1, 0, 0, 0},
	PresetSuperfast: {1, 1, 3, 1, 0, MEDia, 16, partsIntra, 1, 40, 1, 0},
	PresetVeryfast:  {1, 1, 3, 1, 0, MEHex, 16, partsNoP4x4, 1, 40, 2, 0},
	PresetFaster:    {1, 1, 3, 1, 0, MEHex, 16, partsNoP4x4, 2, 40, 4, 1},
	PresetFast:      {1, 1, 3, 1, 0, MEHex, 16, partsNoP4x4, 2, 40, 6, 1},
	PresetMedium:    {1, 1, 3, 1, 0, MEHex, 16, partsNoP4x4, 3, 40, 7, 1},
	PresetSlow:      {1, 1, 3, 1, 0, MEHex, 16, partsNoP4x4, 5, 40, 8, 2},
	PresetSlower:    {1, 2, 3, 1, 0, MEUMH, 16, partsAll, 8, 40, 9, 2},
	PresetVeryslow:  {1, 2, 8, 1, 0, MEUMH, 24, partsAll, 16, 40, 10, 2},
	PresetPlacebo:   {1, 2, 16, 1, 0, METesa, 24, partsAll, 16, 40, 11, 2},
}

// ApplyPreset overwrites the preset-controlled fields of o with the Table II
// values for p. Rate-control fields (RC, CRF, QP, bitrate) are untouched, as
// are Refs if the caller pins them afterwards. Returns an error for an
// unknown preset.
func ApplyPreset(o *Options, p Preset) error {
	def, ok := presetTable[p]
	if !ok {
		return fmt.Errorf("codec: unknown preset %q", p)
	}
	o.AQMode = def.aqMode
	o.BAdapt = def.bAdapt
	o.BFrames = def.bframes
	o.DeblockA = def.deblockA
	o.DeblockB = def.deblockB
	o.Deblock = p != PresetUltrafast
	o.ME = def.me
	o.MERange = def.merange
	o.Partitions = def.partitions
	o.Refs = def.refs
	o.Scenecut = def.scenecut
	o.Subme = def.subme
	o.Trellis = def.trellis
	if o.KeyintMax == 0 {
		o.KeyintMax = 250
	}
	return nil
}

// PresetInfo exposes the Table II row for preset p, for reporting.
func PresetInfo(p Preset) (map[string]string, error) {
	def, ok := presetTable[p]
	if !ok {
		return nil, fmt.Errorf("codec: unknown preset %q", p)
	}
	return map[string]string{
		"aq-mode":    fmt.Sprint(def.aqMode),
		"b-adapt":    fmt.Sprint(def.bAdapt),
		"bframes":    fmt.Sprint(def.bframes),
		"deblock":    fmt.Sprintf("[%d:%d]", def.deblockA, def.deblockB),
		"me":         def.me.String(),
		"merange":    fmt.Sprint(def.merange),
		"partitions": def.partitions.String(),
		"refs":       fmt.Sprint(def.refs),
		"scenecut":   fmt.Sprint(def.scenecut),
		"subme":      fmt.Sprint(def.subme),
		"trellis":    fmt.Sprint(def.trellis),
	}, nil
}
