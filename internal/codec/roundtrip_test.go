package codec

import (
	"fmt"
	"testing"

	"repro/internal/frame"
	"repro/internal/vbench"
)

// makeClip synthesizes n frames of the named catalog video at proxy scale.
func makeClip(tb testing.TB, name string, n, scale int) []*frame.Frame {
	tb.Helper()
	info, err := vbench.ByName(name)
	if err != nil {
		tb.Fatal(err)
	}
	src := vbench.NewSource(info, vbench.SourceOptions{Scale: scale})
	frames := make([]*frame.Frame, n)
	for i := range frames {
		frames[i] = src.Frame(i)
	}
	return frames
}

func encodeClip(tb testing.TB, frames []*frame.Frame, opt Options) ([]byte, *Stats) {
	tb.Helper()
	enc, err := NewEncoder(frames[0].Width, frames[0].Height, 30, opt, nil)
	if err != nil {
		tb.Fatal(err)
	}
	stream, stats, err := enc.EncodeAll(frames)
	if err != nil {
		tb.Fatal(err)
	}
	return stream, stats
}

// TestRoundtripMatchesEncoderRecon checks the fundamental codec invariant:
// the decoder reproduces the encoder's reconstruction bit-exactly, for every
// preset (which together exercise every ME method, partition set, trellis
// level and B-frame policy).
func TestRoundtripMatchesEncoderRecon(t *testing.T) {
	frames := makeClip(t, "cricket", 8, 8)
	for _, p := range Presets {
		p := p
		t.Run(string(p), func(t *testing.T) {
			opt := Options{RC: RCCRF, CRF: 26, KeyintMax: 250}
			if err := ApplyPreset(&opt, p); err != nil {
				t.Fatal(err)
			}
			stream, stats := encodeClip(t, frames, opt)
			dec := NewDecoder(DecoderOptions{}, nil)
			out, info, err := dec.Decode(stream)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if info.Frames != len(frames) || len(out) != len(frames) {
				t.Fatalf("frame count: got %d/%d want %d", info.Frames, len(out), len(frames))
			}
			// Decoded output must be a valid reconstruction: close to the
			// source at this QP.
			for i, f := range out {
				if f.PTS != i {
					t.Fatalf("display order broken at %d (pts %d)", i, f.PTS)
				}
				psnr := frame.PSNR(frames[i], f)
				if psnr < 24 {
					t.Errorf("frame %d PSNR %.2f dB too low", i, psnr)
				}
			}
			if stats.TotalBits <= 0 {
				t.Error("no bits produced")
			}
		})
	}
}

// TestRoundtripDecoderBitExact encodes, decodes, re-encodes the decoder
// output at lossless-ish settings and verifies decode(encode(x)) is stable:
// decoding twice gives identical pixels.
func TestRoundtripDecoderDeterministic(t *testing.T) {
	frames := makeClip(t, "holi", 6, 4)
	opt := Defaults()
	opt.CRF = 30
	stream, _ := encodeClip(t, frames, opt)
	d1, _, err := NewDecoder(DecoderOptions{}, nil).Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := NewDecoder(DecoderOptions{}, nil).Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1 {
		if fmt.Sprint(d1[i].Y.Pix[:200]) != fmt.Sprint(d2[i].Y.Pix[:200]) {
			t.Fatalf("decode not deterministic at frame %d", i)
		}
	}
}
