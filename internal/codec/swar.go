package codec

import (
	"encoding/binary"

	"repro/internal/frame"
	"repro/internal/trace"
)

// Packed-lane kernels for the codec's remaining scalar hot loops: the
// deblocking filter processes four edge pixels per uint64, and intra
// analysis fuses prediction with the SATD metric so mode trials never
// materialize a prediction block. Both build on the 16-bit-lane layout
// exported by internal/frame (Spread4/LaneAdd/LaneSub): pixel differences,
// filter thresholds and clip bounds all fit comfortably in a 16-bit
// two's-complement lane (the largest magnitude in play is alpha <= 976).
//
// Every kernel emits exactly the trace events of the scalar code it
// replaces — deblock_test.go and intra_swar_test.go pin both the pixels
// and the recorded event bytes against the retained scalar references.

func le32(p []uint8) uint32       { return binary.LittleEndian.Uint32(p) }
func putLE32(p []uint8, v uint32) { binary.LittleEndian.PutUint32(p, v) }

// lane16LT returns 1 at the base bit of every lane where a < b, valid
// while |a-b| < 2^15 per lane.
func lane16LT(a, b uint64) uint64 {
	return (frame.LaneSub(a, b) >> 15) & frame.Ones16
}

// shl2Lanes multiplies each 16-bit lane by 4 (mod 2^16, exact for the
// deblock operands which stay within +-1279).
func shl2Lanes(v uint64) uint64 {
	return (v & 0x3FFF3FFF3FFF3FFF) << 2
}

// sar3Lanes arithmetic-shifts each 16-bit lane right by 3.
func sar3Lanes(v uint64) uint64 {
	s := (v >> 15) & frame.Ones16
	return ((v >> 3) & 0x1FFF1FFF1FFF1FFF) | s*0xE000
}

// clampU8Lanes clamps each 16-bit two's-complement lane to [0, 255].
func clampU8Lanes(v uint64) uint64 {
	neg := (v >> 15) & frame.Ones16
	v &^= neg * 0xFFFF
	const maxW = 0x00FF * frame.Ones16
	m := lane16LT(maxW, v) * 0xFFFF
	return (v &^ m) | (maxW & m)
}

// laneClip clamps each lane of v to [lo, hi] (all lanes two's-complement,
// spreads of the same signed bound per lane).
func laneClip(v, lo, hi uint64) uint64 {
	m := lane16LT(v, lo) * 0xFFFF
	v = (lo & m) | (v &^ m)
	m = lane16LT(hi, v) * 0xFFFF
	return (hi & m) | (v &^ m)
}

// spreadConst replicates a signed 16-bit value into all four lanes.
func spreadConst(v int32) uint64 {
	return uint64(uint16(v)) * frame.Ones16
}

// gatherLanes packs one byte column (selected by shift) of four 32-bit row
// words into four 16-bit lanes: the transpose step of the vertical-edge
// filter.
func gatherLanes(r0, r1, r2, r3 uint32, shift uint) uint64 {
	return uint64((r0>>shift)&0xFF) | uint64((r1>>shift)&0xFF)<<16 |
		uint64((r2>>shift)&0xFF)<<32 | uint64((r3>>shift)&0xFF)<<48
}

// filterEdgePacked runs the deblocking filter over one length-pixel edge,
// four pixels per iteration. The per-pixel filter decision, delta clip and
// final clamp of filterEdgeScalar all become per-lane mask arithmetic; the
// branch event at every fourth pixel is lane 0's filter bit, exactly the
// pixel the scalar loop reports. length is always a multiple of 4 (8 for
// chroma, 16 for luma).
func filterEdgePacked(t *tracer, fn trace.FuncID, rec *frame.Plane, x, y, length int, horizontal bool, alpha, beta, tc int32) {
	alphaW := spreadConst(alpha)
	betaW := spreadConst(beta)
	tcW := spreadConst(tc)
	ntcW := spreadConst(-tc)
	fourW := spreadConst(4)
	for k := 0; k < length; k += 4 {
		var p1, p0, q0, q1 uint64
		if horizontal {
			p1 = frame.Spread4(le32(rec.RowFrom(x+k, y-2, 4)))
			p0 = frame.Spread4(le32(rec.RowFrom(x+k, y-1, 4)))
			q0 = frame.Spread4(le32(rec.RowFrom(x+k, y, 4)))
			q1 = frame.Spread4(le32(rec.RowFrom(x+k, y+1, 4)))
		} else {
			r0 := le32(rec.RowFrom(x-2, y+k, 4))
			r1 := le32(rec.RowFrom(x-2, y+k+1, 4))
			r2 := le32(rec.RowFrom(x-2, y+k+2, 4))
			r3 := le32(rec.RowFrom(x-2, y+k+3, 4))
			p1 = gatherLanes(r0, r1, r2, r3, 0)
			p0 = gatherLanes(r0, r1, r2, r3, 8)
			q0 = gatherLanes(r0, r1, r2, r3, 16)
			q1 = gatherLanes(r0, r1, r2, r3, 24)
		}
		d0 := frame.LaneSub(q0, p0)
		fm := lane16LT(frame.AbsLanes16(d0), alphaW) &
			lane16LT(frame.AbsLanes16(frame.LaneSub(p1, p0)), betaW) &
			lane16LT(frame.AbsLanes16(frame.LaneSub(q1, q0)), betaW)
		t.branch(fn, siteDeblockBS, fm&1 == 1)
		if fm == 0 {
			continue
		}
		sum := frame.LaneAdd(frame.LaneAdd(shl2Lanes(d0), frame.LaneSub(p1, q1)), fourW)
		delta := laneClip(sar3Lanes(sum), ntcW, tcW)
		fmask := fm * 0xFFFF
		np0 := (clampU8Lanes(frame.LaneAdd(p0, delta)) & fmask) | (p0 &^ fmask)
		nq0 := (clampU8Lanes(frame.LaneSub(q0, delta)) & fmask) | (q0 &^ fmask)
		if horizontal {
			putLE32(rec.RowFrom(x+k, y-1, 4), frame.Pack4(np0))
			putLE32(rec.RowFrom(x+k, y, 4), frame.Pack4(nq0))
		} else {
			for j := 0; j < 4; j++ {
				sh := uint(16 * j)
				rec.Set(x-1, y+k+j, uint8(np0>>sh))
				rec.Set(x, y+k+j, uint8(nq0>>sh))
			}
		}
	}
}

// --- fused intra prediction + SATD -------------------------------------------

// predIntraEvents emits exactly the trace events of predIntra's staging
// (the prediction-side half of a fused mode trial).
func (t *tracer) predIntraEvents(fn trace.FuncID, rec *frame.Plane, x, y, w, h int) {
	if t.on {
		nb := availNeighbors(x, y)
		t.sink.Call(fn)
		t.sink.Ops(fn, w*h/8+(w+h)/4+8)
		if nb.top {
			t.sink.Load2D(fn, rec.Addr(x, y-1), w, 1, rec.Stride)
		}
		if nb.left {
			t.sink.Load2D(fn, rec.Addr(x-1, y), 1, h, rec.Stride)
		}
	}
}

// satdBlockEvents emits exactly the trace events of satdBlock.
func (t *tracer) satdBlockEvents(fn trace.FuncID, a *frame.Plane, ax, ay, w, h int) {
	if t.on {
		t.sink.Call(fn)
		t.sink.Ops(fn, w*h/4+24)
		t.sink.Load2D(fn, a.Addr(ax, ay), w, h, a.Stride)
	}
}

// intraSATD returns the SATD between the w x h source block of srcP at
// (x, y) and the intra prediction of the given mode built from predP's
// neighbours, without materializing the prediction: each mode's predicted
// rows are generated directly as packed lanes and subtracted from the
// source inside the Hadamard accumulation. Identical in value and in trace
// bytes to predIntra followed by satdBlock (pinned by intra_swar_test.go).
func (t *tracer) intraSATD(fn trace.FuncID, predP, srcP *frame.Plane, x, y, w, h, mode int) int {
	nb := availNeighbors(x, y)
	if (mode == intraV || mode == intraDDL) && !nb.top {
		mode = intraDC
	}
	if mode == intraH && !nb.left {
		mode = intraDC
	}
	if mode == intraPlanar && (!nb.top || !nb.left) {
		mode = intraDC
	}
	total := 0
	switch mode {
	case intraDC:
		var sum, n int32
		if nb.top {
			for _, v := range predP.RowFrom(x, y-1, w) {
				sum += int32(v)
			}
			n += int32(w)
		}
		if nb.left {
			for j := 0; j < h; j++ {
				sum += int32(predP.At(x-1, y+j))
			}
			n += int32(h)
		}
		dc := int32(128)
		if n > 0 {
			dc = (sum + n/2) / n
		}
		dcW := spreadConst(dc)
		for j := 0; j < h; j += 4 {
			for i := 0; i < w; i += 4 {
				total += frame.Hadamard4x4Packed(
					frame.LaneSub(frame.Spread4(le32(srcP.RowFrom(x+i, y+j, 4))), dcW),
					frame.LaneSub(frame.Spread4(le32(srcP.RowFrom(x+i, y+j+1, 4))), dcW),
					frame.LaneSub(frame.Spread4(le32(srcP.RowFrom(x+i, y+j+2, 4))), dcW),
					frame.LaneSub(frame.Spread4(le32(srcP.RowFrom(x+i, y+j+3, 4))), dcW),
				)
			}
		}
	case intraV:
		top := predP.RowFrom(x, y-1, w)
		for i := 0; i < w; i += 4 {
			topW := frame.Spread4(le32(top[i:]))
			for j := 0; j < h; j += 4 {
				total += frame.Hadamard4x4Packed(
					frame.LaneSub(frame.Spread4(le32(srcP.RowFrom(x+i, y+j, 4))), topW),
					frame.LaneSub(frame.Spread4(le32(srcP.RowFrom(x+i, y+j+1, 4))), topW),
					frame.LaneSub(frame.Spread4(le32(srcP.RowFrom(x+i, y+j+2, 4))), topW),
					frame.LaneSub(frame.Spread4(le32(srcP.RowFrom(x+i, y+j+3, 4))), topW),
				)
			}
		}
	case intraH:
		for j := 0; j < h; j += 4 {
			v0 := spreadConst(int32(predP.At(x-1, y+j)))
			v1 := spreadConst(int32(predP.At(x-1, y+j+1)))
			v2 := spreadConst(int32(predP.At(x-1, y+j+2)))
			v3 := spreadConst(int32(predP.At(x-1, y+j+3)))
			for i := 0; i < w; i += 4 {
				total += frame.Hadamard4x4Packed(
					frame.LaneSub(frame.Spread4(le32(srcP.RowFrom(x+i, y+j, 4))), v0),
					frame.LaneSub(frame.Spread4(le32(srcP.RowFrom(x+i, y+j+1, 4))), v1),
					frame.LaneSub(frame.Spread4(le32(srcP.RowFrom(x+i, y+j+2, 4))), v2),
					frame.LaneSub(frame.Spread4(le32(srcP.RowFrom(x+i, y+j+3, 4))), v3),
				)
			}
		}
	case intraPlanar:
		tl := int32(predP.At(x-1, y-1))
		tr := int32(predP.At(x+w-1, y-1))
		bl := int32(predP.At(x-1, y+h-1))
		dH := (tr - tl) / int32(w)
		dV := (bl - tl) / int32(h)
		// Per lane-group horizontal ramps dH*(i+1); the per-row base is a
		// lane constant. base+ramp spans [-480, 735], inside a lane.
		var ramp [4]uint64
		for g := 0; g < w/4; g++ {
			var rw uint64
			for k := 0; k < 4; k++ {
				rw |= uint64(uint16(dH*int32(g*4+k+1))) << uint(16*k)
			}
			ramp[g] = rw
		}
		for j := 0; j < h; j += 4 {
			var rows [4]uint64
			for i := 0; i < w; i += 4 {
				for r := 0; r < 4; r++ {
					base := spreadConst(tl + dV*int32(j+r+1))
					pred := clampU8Lanes(frame.LaneAdd(base, ramp[i/4]))
					rows[r] = frame.LaneSub(frame.Spread4(le32(srcP.RowFrom(x+i, y+j+r, 4))), pred)
				}
				total += frame.Hadamard4x4Packed(rows[0], rows[1], rows[2], rows[3])
			}
		}
	case intraDDL:
		// 4x4 only: top row extended by its last pixel, then the 1-2-1
		// smoothing runs lane-parallel on three staggered spreads. The
		// smoothed value is at most 255, so no clamp is needed.
		top := predP.RowFrom(x, y-1, w)
		var ext [12]uint8
		copy(ext[:], top[:w])
		for i := w; i < len(ext); i++ {
			ext[i] = top[w-1]
		}
		var rows [4]uint64
		for j := 0; j < 4; j++ {
			a := frame.Spread4(le32(ext[j:]))
			b := frame.Spread4(le32(ext[j+1:]))
			c := frame.Spread4(le32(ext[j+2:]))
			pred := ((a + b<<1 + c + 2*frame.Ones16) >> 2) & 0x3FFF3FFF3FFF3FFF
			rows[j] = frame.LaneSub(frame.Spread4(le32(srcP.RowFrom(x, y+j, 4))), pred)
		}
		total = frame.Hadamard4x4Packed(rows[0], rows[1], rows[2], rows[3])
	}
	t.predIntraEvents(fn, predP, x, y, w, h)
	t.satdBlockEvents(fn, srcP, x, y, w, h)
	return total / 2
}
