package codec

import (
	"repro/internal/frame"
	"repro/internal/trace"
)

// Intra prediction modes. 16x16 and 4x4 share the directional subset; 4x4
// additionally has the down-left diagonal.
const (
	intraDC = iota
	intraV
	intraH
	intraPlanar // 16x16 only
	intraDDL    // 4x4 only: diagonal down-left
	numIntra16  = 4
	numIntra4   = 4 // DC, V, H, DDL
)

// mode4Set lists the 4x4 intra modes in bitstream index order: the syntax
// codes a 2-bit index into this table.
var mode4Set = [numIntra4]int{intraDC, intraV, intraH, intraDDL}

// neighbors describes which reconstructed neighbours are available for
// prediction of a block at plane position (x, y).
type neighbors struct {
	left, top bool
}

func availNeighbors(x, y int) neighbors {
	return neighbors{left: x > 0, top: y > 0}
}

// predIntra stages the intra prediction of a w x h block at (x, y) from the
// reconstructed plane rec, for the given mode. Unavailable directional
// modes fall back to DC; DC with no neighbours predicts mid-grey, matching
// both encoder and decoder.
func (t *tracer) predIntra(fn trace.FuncID, rec *frame.Plane, x, y, w, h, mode int, dst *block) {
	dst.w, dst.h = w, h
	nb := availNeighbors(x, y)
	if (mode == intraV || mode == intraDDL) && !nb.top {
		mode = intraDC
	}
	if mode == intraH && !nb.left {
		mode = intraDC
	}
	if mode == intraPlanar && (!nb.top || !nb.left) {
		mode = intraDC
	}
	switch mode {
	case intraDC:
		var sum, n int32
		if nb.top {
			row := rec.RowFrom(x, y-1, w)
			for _, v := range row {
				sum += int32(v)
			}
			n += int32(w)
		}
		if nb.left {
			for j := 0; j < h; j++ {
				sum += int32(rec.At(x-1, y+j))
			}
			n += int32(h)
		}
		dc := uint8(128)
		if n > 0 {
			dc = uint8((sum + n/2) / n)
		}
		for i := range dst.pix[:w*h] {
			dst.pix[i] = dc
		}
	case intraV:
		top := rec.RowFrom(x, y-1, w)
		for j := 0; j < h; j++ {
			copy(dst.row(j), top)
		}
	case intraH:
		for j := 0; j < h; j++ {
			v := rec.At(x-1, y+j)
			row := dst.row(j)
			for i := range row {
				row[i] = v
			}
		}
	case intraPlanar:
		// Simple plane fit from the top row and left column gradients.
		tl := int32(rec.At(x-1, y-1))
		tr := int32(rec.At(x+w-1, y-1))
		bl := int32(rec.At(x-1, y+h-1))
		dH := (tr - tl) / int32(w)
		dV := (bl - tl) / int32(h)
		for j := 0; j < h; j++ {
			row := dst.row(j)
			base := tl + dV*int32(j+1)
			for i := range row {
				row[i] = clampU8(base + dH*int32(i+1))
			}
		}
	case intraDDL:
		// Diagonal down-left from the top row (extended by its last pixel).
		top := rec.RowFrom(x, y-1, w)
		last := top[w-1]
		at := func(i int) int32 {
			if i < w {
				return int32(top[i])
			}
			return int32(last)
		}
		for j := 0; j < h; j++ {
			row := dst.row(j)
			for i := range row {
				row[i] = clampU8((at(i+j) + 2*at(i+j+1) + at(i+j+2) + 2) >> 2)
			}
		}
	}
	if t.on {
		t.sink.Call(fn)
		t.sink.Ops(fn, w*h/8+(w+h)/4+8)
		if nb.top {
			t.sink.Load2D(fn, rec.Addr(x, y-1), w, 1, rec.Stride)
		}
		if nb.left {
			t.sink.Load2D(fn, rec.Addr(x-1, y), 1, h, rec.Stride)
		}
	}
}

// intraChoice is the result of intra analysis for a macroblock.
type intraChoice struct {
	cost    int
	use4x4  bool
	mode16  int
	modes4  [16]uint8 // per-4x4 modes when use4x4
	chromaM int       // chroma mode (DC only in this codec, kept for syntax)
}

// analyseIntra evaluates the allowed intra modes for the luma macroblock at
// (x, y) against the source and returns the cheapest choice. The metric is
// SATD plus the mode signalling cost in lambda units, as in x264.
func (e *Encoder) analyseIntra(src, rec *frame.Plane, x, y, lambda int) intraChoice {
	e.tr.call(trace.FnIntraPred)
	best := intraChoice{cost: 1 << 30, mode16: intraDC}
	// 16x16 modes. Mode trials run through the fused predict+SATD kernel
	// (swar.go): same value and trace events as predIntra followed by
	// satdBlock, without staging the prediction block.
	for mode := 0; mode < numIntra16; mode++ {
		c := e.tr.intraSATD(trace.FnIntraPred, rec, src, x, y, 16, 16, mode) + lambda*4
		better := c < best.cost
		e.tr.branch(trace.FnIntraPred, siteModeCmp, better)
		if better {
			best.cost = c
			best.mode16 = mode
			best.use4x4 = false
		}
	}
	// 4x4 modes: each sub-block predicted from the *source* neighbours
	// during analysis (a standard encoder shortcut); the final encode uses
	// reconstructed neighbours.
	if e.opt.Partitions.I4x4 {
		total := 0
		var modes [16]uint8
		for by := 0; by < 4; by++ {
			for bx := 0; bx < 4; bx++ {
				bbest, bidx := 1<<30, 0
				for idx, m := range mode4Set {
					c := e.tr.intraSATD(trace.FnIntraPred, src, src, x+bx*4, y+by*4, 4, 4, m) + lambda*3
					if c < bbest {
						bbest, bidx = c, idx
					}
				}
				modes[by*4+bx] = uint8(bidx) // bitstream index into mode4Set
				total += bbest
			}
		}
		total += lambda * 8 // extra signalling for the 4x4 mode array
		better := total < best.cost
		e.tr.branch(trace.FnIntraPred, siteModeCmp, better)
		if better {
			best.cost = total
			best.use4x4 = true
			best.modes4 = modes
		}
	}
	// I8x8: evaluated as a coarser variant of the 4x4 path; it shares the
	// mode set and mostly matters as additional analysis work (Table II
	// enables it from superfast up).
	if e.opt.Partitions.I8x8 && !best.use4x4 {
		total := 0
		for by := 0; by < 2; by++ {
			for bx := 0; bx < 2; bx++ {
				bbest := 1 << 30
				for mode := 0; mode < 3; mode++ { // DC, V, H
					c := e.tr.intraSATD(trace.FnIntraPred, src, src, x+bx*8, y+by*8, 8, 8, mode) + lambda*3
					if c < bbest {
						bbest = c
					}
				}
				total += bbest
			}
		}
		e.tr.branch(trace.FnIntraPred, siteModeCmp, total < best.cost)
		// The 8x8 estimate informs the decision but this codec codes intra
		// as either 16x16 or 4x4; an 8x8 win selects the 4x4 syntax with
		// uniform modes when allowed, else stays 16x16.
	}
	return best
}
