package queue

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// TestStressExactlyOnce is the -race gate of the serving layer's core
// invariant: under concurrent submitters, a dispatcher and random
// cancellations, every submitted job has exactly one outcome — rejected at
// admission, canceled before dispatch, or executed once — and the metrics
// agree with the ground truth.
func TestStressExactlyOnce(t *testing.T) {
	const (
		submitters   = 8
		perSubmitter = 200
		total        = submitters * perSubmitter
	)
	reg := obs.NewRegistry()
	q := New[int](Options{MaxDepth: 64, Metrics: reg, Name: "stress"})

	var (
		executed [total]atomic.Int32
		accepted [total]atomic.Bool
		rejected atomic.Int64
		canceled atomic.Int64 // cancellations that won (Cancel returned true)
		done     atomic.Int64 // jobs the dispatcher executed
	)

	// Dispatcher: drain until the queue closes and empties.
	var dispatcher sync.WaitGroup
	dispatcher.Add(1)
	go func() {
		defer dispatcher.Done()
		for {
			tk, err := q.Dequeue(context.Background())
			if err != nil {
				if !errors.Is(err, ErrClosed) {
					t.Errorf("dispatcher: %v", err)
				}
				return
			}
			executed[tk.Payload()].Add(1)
			done.Add(1)
			// A late cancel must always lose against a dequeued ticket.
			if tk.Cancel() {
				t.Error("cancel won after dequeue")
			}
		}
	}()

	classes := []string{"live", "batch", "bulk"}
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + s)))
			for i := 0; i < perSubmitter; i++ {
				id := s*perSubmitter + i
				ctx, cancel := context.WithCancel(context.Background())
				tk, err := q.Submit(ctx, id, SubmitOptions{
					Class:    classes[rng.Intn(len(classes))],
					Priority: rng.Intn(3),
				})
				if err != nil {
					cancel()
					if !errors.Is(err, ErrFull) {
						t.Errorf("submit %d: %v", id, err)
					}
					rejected.Add(1)
					continue
				}
				accepted[id].Store(true)
				switch rng.Intn(3) {
				case 0: // cancel via the submission context
					cancel()
				case 1: // cancel directly; count only if we won
					if tk.Cancel() {
						canceled.Add(1)
					}
					cancel()
				default:
					// Leak no context watcher; the job stays live.
					defer cancel()
				}
			}
		}(s)
	}
	wg.Wait()
	q.Close()
	dispatcher.Wait()

	// Ground truth: every job rejected xor (accepted and executed at most
	// once); nothing both executed and counted as a won cancellation is
	// checked inside the dispatcher loop.
	var execCount int64
	for id := 0; id < total; id++ {
		n := executed[id].Load()
		if n > 1 {
			t.Fatalf("job %d executed %d times", id, n)
		}
		if n == 1 && !accepted[id].Load() {
			t.Fatalf("job %d executed but was never admitted", id)
		}
		execCount += int64(n)
	}
	if execCount != done.Load() {
		t.Fatalf("executed flags %d != dispatcher count %d", execCount, done.Load())
	}

	snap := reg.Snapshot()
	admitted := snap.CounterTotal("queue_admitted")
	if admitted+rejected.Load() != total {
		t.Fatalf("admitted %d + rejected %d != %d submitted", admitted, rejected.Load(), total)
	}
	if got := snap.CounterTotal("queue_rejected"); got != rejected.Load() {
		t.Fatalf("rejected counter %d, want %d", got, rejected.Load())
	}
	// Every admitted job was either dequeued or canceled — no job lost,
	// none double-settled. (ctx-path cancellations are counted by the
	// queue itself; the direct-path ones we tallied must be a subset.)
	dequeued := snap.CounterTotal("queue_dequeued")
	canceledMetric := snap.CounterTotal("queue_canceled")
	if dequeued+canceledMetric != admitted {
		t.Fatalf("dequeued %d + canceled %d != admitted %d: a job was lost or double-settled",
			dequeued, canceledMetric, admitted)
	}
	if dequeued != execCount {
		t.Fatalf("dequeued counter %d != executed jobs %d", dequeued, execCount)
	}
	if canceledMetric < canceled.Load() {
		t.Fatalf("canceled counter %d < direct cancellations %d", canceledMetric, canceled.Load())
	}
	if got := q.Depth(); got != 0 {
		t.Fatalf("depth %d after drain", got)
	}
}

// TestStressRequeueExactlyOnce extends the exactly-once gate to the
// lease-reassignment path: dispatchers randomly "expire the lease" of a
// dequeued ticket and requeue it (bounded retries per ticket), racing
// submitters that cancel via context or directly — including cancels that
// land while a ticket is back on the queue between attempts. The ground
// truth must still reconcile: every admitted job settles exactly once
// (executed xor canceled), and the counters balance with requeues folded
// in: dequeued + canceled = admitted + requeued.
func TestStressRequeueExactlyOnce(t *testing.T) {
	const (
		submitters   = 8
		perSubmitter = 200
		dispatchers  = 4
		total        = submitters * perSubmitter
		maxAttempts  = 3
	)
	reg := obs.NewRegistry()
	q := New[int](Options{MaxDepth: 64, Metrics: reg, Name: "stress-requeue"})

	var (
		executed [total]atomic.Int32
		accepted [total]atomic.Bool
		rejected atomic.Int64
		canceled atomic.Int64 // cancellations that won (Cancel returned true)
		requeues atomic.Int64 // requeues the dispatchers performed
	)

	var dispatcher sync.WaitGroup
	for d := 0; d < dispatchers; d++ {
		dispatcher.Add(1)
		go func(d int) {
			defer dispatcher.Done()
			rng := rand.New(rand.NewSource(int64(7000 + d)))
			for {
				tk, err := q.Dequeue(context.Background())
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("dispatcher: %v", err)
					}
					return
				}
				// Simulated lease expiry: put the ticket back instead of
				// executing, up to maxAttempts total dequeues per ticket.
				if tk.Attempts() < maxAttempts && rng.Intn(3) == 0 {
					if err := q.Requeue(tk); err != nil {
						t.Errorf("requeue: %v", err)
					}
					requeues.Add(1)
					continue
				}
				executed[tk.Payload()].Add(1)
				if tk.Cancel() {
					t.Error("cancel won after final dequeue")
				}
			}
		}(d)
	}

	classes := []string{"live", "batch", "bulk"}
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(3000 + s)))
			for i := 0; i < perSubmitter; i++ {
				id := s*perSubmitter + i
				ctx, cancel := context.WithCancel(context.Background())
				tk, err := q.Submit(ctx, id, SubmitOptions{
					Class:    classes[rng.Intn(len(classes))],
					Priority: rng.Intn(3),
				})
				if err != nil {
					cancel()
					if !errors.Is(err, ErrFull) {
						t.Errorf("submit %d: %v", id, err)
					}
					rejected.Add(1)
					continue
				}
				accepted[id].Store(true)
				switch rng.Intn(4) {
				case 0: // cancel via the submission context
					cancel()
				case 1, 2:
					// Direct cancel after a beat: with dispatchers requeuing,
					// this often races a ticket that is back on the queue
					// between lease attempts — the mid-race case this test
					// exists for. Count it only if we won.
					if rng.Intn(2) == 0 {
						runtime.Gosched()
					}
					if tk.Cancel() {
						canceled.Add(1)
					}
					cancel()
				default:
					defer cancel()
				}
			}
		}(s)
	}
	wg.Wait()
	q.Close()
	dispatcher.Wait()

	// Ground truth: admitted = settled (executed exactly once) + canceled.
	var execCount int64
	for id := 0; id < total; id++ {
		n := executed[id].Load()
		if n > 1 {
			t.Fatalf("job %d executed %d times", id, n)
		}
		if n == 1 && !accepted[id].Load() {
			t.Fatalf("job %d executed but was never admitted", id)
		}
		execCount += int64(n)
	}

	snap := reg.Snapshot()
	admitted := snap.CounterTotal("queue_admitted")
	if admitted+rejected.Load() != total {
		t.Fatalf("admitted %d + rejected %d != %d submitted", admitted, rejected.Load(), total)
	}
	canceledMetric := snap.CounterTotal("queue_canceled")
	if admitted != execCount+canceledMetric {
		t.Fatalf("admitted %d != settled %d + canceled %d: a job was lost or double-settled",
			admitted, execCount, canceledMetric)
	}
	// Requeues fold into the flow balance: every dequeue is either final
	// (settled) or followed by a requeue, and every requeued ticket is
	// dequeued again or canceled off the queue.
	dequeued := snap.CounterTotal("queue_dequeued")
	requeuedMetric := snap.CounterTotal("queue_requeued")
	if dequeued+canceledMetric != admitted+requeuedMetric {
		t.Fatalf("dequeued %d + canceled %d != admitted %d + requeued %d",
			dequeued, canceledMetric, admitted, requeuedMetric)
	}
	if requeuedMetric != requeues.Load() {
		t.Fatalf("requeued counter %d != dispatcher requeues %d", requeuedMetric, requeues.Load())
	}
	if requeuedMetric == 0 {
		t.Fatal("stress run exercised no requeues")
	}
	if canceledMetric < canceled.Load() {
		t.Fatalf("canceled counter %d < direct cancellations %d", canceledMetric, canceled.Load())
	}
	if got := q.Depth(); got != 0 {
		t.Fatalf("depth %d after drain", got)
	}
}
