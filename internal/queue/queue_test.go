package queue

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
)

func newTest(depth int) (*Queue[int], *obs.Registry) {
	r := obs.NewRegistry()
	return New[int](Options{MaxDepth: depth, Metrics: r, Name: "test"}), r
}

func mustSubmit(t *testing.T, q *Queue[int], v int, o SubmitOptions) *Ticket[int] {
	t.Helper()
	tk, err := q.Submit(context.Background(), v, o)
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

func TestPriorityThenDeadlineThenFIFO(t *testing.T) {
	q, _ := newTest(16)
	base := time.Now()
	mustSubmit(t, q, 1, SubmitOptions{Priority: 0})                                    // FIFO floor
	mustSubmit(t, q, 2, SubmitOptions{Priority: 0})                                    // same class+pri, later
	mustSubmit(t, q, 3, SubmitOptions{Priority: 1, Deadline: base.Add(2 * time.Hour)}) // high pri, late deadline
	mustSubmit(t, q, 4, SubmitOptions{Priority: 1, Deadline: base.Add(time.Hour)})     // high pri, early deadline
	mustSubmit(t, q, 5, SubmitOptions{Priority: 1})                                    // high pri, no deadline: last among pri 1

	want := []int{4, 3, 5, 1, 2}
	for i, w := range want {
		tk, err := q.Dequeue(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if got := tk.Payload(); got != w {
			t.Fatalf("dequeue %d: payload %d, want %d", i, got, w)
		}
	}
}

func TestClassRoundRobinFairness(t *testing.T) {
	q, _ := newTest(64)
	// One aggressive class floods ten jobs; a second class submits two.
	for i := 0; i < 10; i++ {
		mustSubmit(t, q, 100+i, SubmitOptions{Class: "batch"})
	}
	mustSubmit(t, q, 1, SubmitOptions{Class: "live"})
	mustSubmit(t, q, 2, SubmitOptions{Class: "live"})
	// Round-robin alternates batch/live while both are nonempty, so the
	// live jobs land in the first four dequeues instead of after the flood.
	var liveSeen int
	for i := 0; i < 4; i++ {
		tk, err := q.Dequeue(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if tk.Class() == "live" {
			liveSeen++
		}
	}
	if liveSeen != 2 {
		t.Fatalf("live jobs seen in first 4 dequeues: %d, want 2", liveSeen)
	}
}

func TestAdmissionControl(t *testing.T) {
	q, reg := newTest(2)
	mustSubmit(t, q, 1, SubmitOptions{})
	mustSubmit(t, q, 2, SubmitOptions{})
	_, err := q.Submit(context.Background(), 3, SubmitOptions{})
	if !errors.Is(err, ErrFull) {
		t.Fatalf("overflow submit: %v, want ErrFull", err)
	}
	if p := q.Pressure(); p != 1 {
		t.Fatalf("pressure %f, want 1", p)
	}
	// Draining one makes room again.
	if _, err := q.Dequeue(context.Background()); err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, q, 4, SubmitOptions{})
	snap := reg.Snapshot()
	if got := snap.CounterTotal("queue_rejected"); got != 1 {
		t.Fatalf("rejected counter %d, want 1", got)
	}
	if got := snap.CounterTotal("queue_admitted"); got != 3 {
		t.Fatalf("admitted counter %d, want 3", got)
	}
}

func TestCancelViaContext(t *testing.T) {
	q, reg := newTest(8)
	ctx, cancel := context.WithCancel(context.Background())
	tk, err := q.Submit(ctx, 1, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	// The AfterFunc watcher runs asynchronously; wait for the withdrawal.
	deadline := time.Now().Add(2 * time.Second)
	for q.Depth() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("canceled ticket never left the queue")
		}
		time.Sleep(time.Millisecond)
	}
	if tk.Cancel() {
		t.Fatal("second cancel must lose")
	}
	if got := reg.Snapshot().CounterTotal("queue_canceled"); got != 1 {
		t.Fatalf("canceled counter %d, want 1", got)
	}
}

func TestCancelLosesAfterDequeue(t *testing.T) {
	q, _ := newTest(8)
	tk := mustSubmit(t, q, 1, SubmitOptions{})
	if _, err := q.Dequeue(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tk.Cancel() {
		t.Fatal("cancel after dequeue must report false")
	}
}

func TestDequeueBlocksUntilSubmit(t *testing.T) {
	q, _ := newTest(8)
	got := make(chan int, 1)
	go func() {
		tk, err := q.Dequeue(context.Background())
		if err != nil {
			got <- -1
			return
		}
		got <- tk.Payload()
	}()
	time.Sleep(10 * time.Millisecond)
	mustSubmit(t, q, 42, SubmitOptions{})
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("dequeued %d, want 42", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dequeue never woke")
	}
}

func TestDequeueObservesContext(t *testing.T) {
	q, _ := newTest(8)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := q.Dequeue(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("dequeue on empty queue: %v, want deadline exceeded", err)
	}
}

func TestCloseDrainsThenRejects(t *testing.T) {
	q, _ := newTest(8)
	mustSubmit(t, q, 1, SubmitOptions{})
	q.Close()
	if _, err := q.Submit(context.Background(), 2, SubmitOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	tk, err := q.Dequeue(context.Background())
	if err != nil || tk.Payload() != 1 {
		t.Fatalf("draining a closed queue: %v, %v", tk, err)
	}
	if _, err := q.Dequeue(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("dequeue on drained closed queue: %v, want ErrClosed", err)
	}
}

func TestTryDequeue(t *testing.T) {
	q, _ := newTest(8)
	if _, ok := q.TryDequeue(); ok {
		t.Fatal("try on empty queue must miss")
	}
	mustSubmit(t, q, 7, SubmitOptions{})
	tk, ok := q.TryDequeue()
	if !ok || tk.Payload() != 7 {
		t.Fatalf("try: %v %v", tk, ok)
	}
}

// TestRequeuePreservesOrdering pins the lease-reassignment contract: a
// requeued ticket keeps its priority, deadline and original FIFO rank, so
// it dequeues ahead of everything that arrived after it.
func TestRequeuePreservesOrdering(t *testing.T) {
	q, reg := newTest(8)
	first := mustSubmit(t, q, 1, SubmitOptions{})
	mustSubmit(t, q, 2, SubmitOptions{})
	mustSubmit(t, q, 3, SubmitOptions{Priority: 5})

	// Priority wins the first pop; requeue it and it must win again.
	tk, _ := q.TryDequeue()
	if tk.Payload() != 3 {
		t.Fatalf("first pop %d, want priority job 3", tk.Payload())
	}
	if err := q.Requeue(tk); err != nil {
		t.Fatal(err)
	}
	if tk, _ = q.TryDequeue(); tk.Payload() != 3 {
		t.Fatalf("pop after priority requeue %d, want 3", tk.Payload())
	}

	// FIFO rank: job 1 requeued after job 2 was already waiting still
	// dequeues first (original sequence id is the tiebreak).
	tk, _ = q.TryDequeue()
	if tk.Payload() != 1 {
		t.Fatalf("pop %d, want 1", tk.Payload())
	}
	if err := q.Requeue(tk); err != nil {
		t.Fatal(err)
	}
	if tk, _ = q.TryDequeue(); tk.Payload() != 1 {
		t.Fatalf("pop after FIFO requeue %d, want 1", tk.Payload())
	}
	if got := tk.Attempts(); got != 2 {
		t.Fatalf("attempts %d, want 2", got)
	}
	if got := first.Attempts(); got != 2 {
		t.Fatalf("first ticket attempts %d, want 2", got)
	}
	if got := reg.Snapshot().CounterTotal("queue_requeued"); got != 2 {
		t.Fatalf("requeued counter %d, want 2", got)
	}
}

// TestRequeueStateChecks rejects requeues of tickets that are not
// currently dequeued, and lets Cancel win against a requeued ticket.
func TestRequeueStateChecks(t *testing.T) {
	q, _ := newTest(8)
	tk := mustSubmit(t, q, 1, SubmitOptions{})
	if err := q.Requeue(tk); err == nil {
		t.Fatal("requeue of a still-queued ticket must fail")
	}
	got, _ := q.TryDequeue()
	if err := q.Requeue(got); err != nil {
		t.Fatal(err)
	}
	if !got.Cancel() {
		t.Fatal("cancel must win against a requeued (queued-again) ticket")
	}
	if err := q.Requeue(got); err == nil {
		t.Fatal("requeue of a canceled ticket must fail")
	}
	if _, ok := q.TryDequeue(); ok {
		t.Fatal("canceled requeued ticket must not dequeue")
	}
}

// TestRequeueBypassesDepthAndClose: a requeued job was already admitted,
// so neither a full nor a closed queue may drop it.
func TestRequeueBypassesDepthAndClose(t *testing.T) {
	q, _ := newTest(1)
	tk := mustSubmit(t, q, 1, SubmitOptions{})
	got, _ := q.TryDequeue()
	_ = tk
	mustSubmit(t, q, 2, SubmitOptions{}) // queue full again
	if err := q.Requeue(got); err != nil {
		t.Fatalf("requeue into a full queue: %v", err)
	}
	q.Close()
	got, _ = q.TryDequeue()
	if got.Payload() != 1 {
		t.Fatalf("pop %d, want requeued job 1", got.Payload())
	}
	if err := q.Requeue(got); err != nil {
		t.Fatalf("requeue into a closed queue: %v", err)
	}
	if tk, err := q.Dequeue(context.Background()); err != nil || tk.Payload() != 1 {
		t.Fatalf("drain of closed queue after requeue: %v %v", tk, err)
	}
}

// TestRequeueWakesDequeue: a parked Dequeue must observe a requeued
// ticket, exactly like a fresh submission.
func TestRequeueWakesDequeue(t *testing.T) {
	q, _ := newTest(8)
	tk := mustSubmit(t, q, 9, SubmitOptions{})
	got, _ := q.TryDequeue()
	_ = tk
	ch := make(chan *Ticket[int], 1)
	go func() {
		tk, err := q.Dequeue(context.Background())
		if err != nil {
			t.Error(err)
		}
		ch <- tk
	}()
	time.Sleep(10 * time.Millisecond) // let the dequeuer park
	if err := q.Requeue(got); err != nil {
		t.Fatal(err)
	}
	select {
	case tk := <-ch:
		if tk.Payload() != 9 {
			t.Fatalf("woken dequeue got %d, want 9", tk.Payload())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("requeue did not wake the parked dequeue")
	}
}
