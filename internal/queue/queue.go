// Package queue is the admission edge of the serving layer: a bounded,
// deadline/priority job queue with per-class fairness, context-driven
// cancellation and backpressure signals.
//
// The design follows what the paper's §III-D2 scheduler needs once tasks
// *arrive* instead of being known upfront: admission control keeps the
// queue from absorbing unbounded load (a full queue rejects with a typed
// reason the API layer can map to 429/503), per-class round-robin keeps one
// tenant's burst from starving the others, and within a class the dequeue
// order is priority, then earliest deadline, then FIFO — so a latency-
// critical live job overtakes a backlog of batch re-encodes without any
// global re-sort.
//
// Everything is safe for concurrent use. The exactly-once guarantee the
// dispatcher builds on: every submitted ticket is observed by exactly one
// of Dequeue (it will run) or cancellation (it never runs) — never both,
// never neither.
package queue

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Typed admission outcomes. Rejections wrap these so callers can map a
// reason to a response code with errors.Is.
var (
	// ErrFull rejects a submission when the queue is at MaxDepth.
	ErrFull = errors.New("queue: full")
	// ErrClosed rejects submissions after Close, and ends a Dequeue loop
	// once a closed queue has drained.
	ErrClosed = errors.New("queue: closed")
)

// Options configures a queue.
type Options struct {
	// MaxDepth bounds the number of queued (not yet dequeued) tickets;
	// submissions beyond it are rejected with ErrFull. 0 means 256.
	MaxDepth int
	// Name labels the queue's metrics (queue_depth{queue=Name}, ...) so two
	// queues in one process stay distinguishable. Empty omits the label.
	Name string
	// Metrics selects the registry; nil means obs.Default().
	Metrics *obs.Registry
}

// SubmitOptions classifies one submission.
type SubmitOptions struct {
	// Class is the fairness class (tenant, traffic tier). Empty is a valid
	// class of its own.
	Class string
	// Priority orders tickets within a class: higher dequeues first.
	Priority int
	// Deadline orders tickets of equal priority: earlier dequeues first.
	// The zero time sorts after every real deadline.
	Deadline time.Time
}

// Ticket is one queued submission. A ticket is handed out by Submit and
// settles exactly once: to dequeued (via Dequeue) or to canceled (via
// Cancel or the submission context). A dequeued ticket whose execution
// attempt failed externally — an expired worker lease — may travel back
// through Requeue any number of times before it settles; every pass keeps
// its original ordering keys, so reassignment never penalizes the job.
type Ticket[T any] struct {
	id      uint64
	opts    SubmitOptions
	payload T
	enq     time.Time

	q        *Queue[T]
	index    int // heap index while queued; -1 once off the heap
	state    ticketState
	attempts int         // completed dequeues (grows by one per Requeue round trip)
	stop     func() bool // releases the context.AfterFunc watcher
}

type ticketState int32

const (
	stateQueued ticketState = iota
	stateDequeued
	stateCanceled
)

// ID returns the queue-assigned sequence number (also the FIFO tiebreak).
func (t *Ticket[T]) ID() uint64 { return t.id }

// Class returns the fairness class the ticket was submitted under.
func (t *Ticket[T]) Class() string { return t.opts.Class }

// Payload returns the submitted value.
func (t *Ticket[T]) Payload() T { return t.payload }

// Deadline returns the submission deadline (zero when none was set).
func (t *Ticket[T]) Deadline() time.Time { return t.opts.Deadline }

// Cancel removes a still-queued ticket. It reports true when this call won
// the race — the ticket will never be dequeued (again) — and false when
// the ticket was already dequeued or canceled. A requeued ticket is queued
// again, so Cancel can still win against it; the dispatcher layer treats
// that as a canceled job exactly like a never-dequeued one.
func (t *Ticket[T]) Cancel() bool { return t.q.cancel(t) }

// Attempts returns how many times the ticket has been dequeued so far
// (1 after its first Dequeue, growing only via Requeue round trips).
func (t *Ticket[T]) Attempts() int {
	t.q.mu.Lock()
	defer t.q.mu.Unlock()
	return t.attempts
}

// Queue is a bounded multi-class priority queue. Use New.
type Queue[T any] struct {
	max int
	met queueMetrics

	mu      sync.Mutex
	cond    *sync.Cond
	classes map[string]*classHeap[T]
	order   []string // class names, sorted, for deterministic round-robin
	rr      int      // next round-robin position in order
	depth   int
	seq     uint64
	closed  bool
}

type queueMetrics struct {
	admitted       *obs.Counter
	rejectedFull   *obs.Counter
	rejectedClosed *obs.Counter
	canceled       *obs.Counter
	dequeued       *obs.Counter
	requeued       *obs.Counter
	depth          *obs.Gauge
	wait           *obs.Histogram
}

// New builds an empty queue.
func New[T any](o Options) *Queue[T] {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 256
	}
	r := o.Metrics
	if r == nil {
		r = obs.Default()
	}
	var labels []string
	if o.Name != "" {
		labels = []string{"queue", o.Name}
	}
	q := &Queue[T]{
		max: o.MaxDepth,
		met: queueMetrics{
			admitted:       r.Counter("queue_admitted", labels...),
			rejectedFull:   r.Counter("queue_rejected", append([]string{"reason", "full"}, labels...)...),
			rejectedClosed: r.Counter("queue_rejected", append([]string{"reason", "closed"}, labels...)...),
			canceled:       r.Counter("queue_canceled", labels...),
			dequeued:       r.Counter("queue_dequeued", labels...),
			requeued:       r.Counter("queue_requeued", labels...),
			depth:          r.Gauge("queue_depth", labels...),
			wait:           r.Histogram("queue_wait_ns", labels...),
		},
		classes: make(map[string]*classHeap[T]),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Submit admits one payload, or rejects it with a reason: ErrFull when the
// queue is at capacity, ErrClosed after Close. On admission the returned
// ticket is live until dequeued; canceling ctx while the ticket is still
// queued withdraws it (the cancellation path of a client that gave up).
// A nil-Done ctx (context.Background()) means no automatic withdrawal.
func (q *Queue[T]) Submit(ctx context.Context, payload T, opts SubmitOptions) (*Ticket[T], error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.met.rejectedClosed.Inc()
		return nil, ErrClosed
	}
	if q.depth >= q.max {
		q.mu.Unlock()
		q.met.rejectedFull.Inc()
		return nil, fmt.Errorf("%w: depth %d at limit", ErrFull, q.max)
	}
	q.seq++
	t := &Ticket[T]{
		id:      q.seq,
		opts:    opts,
		payload: payload,
		enq:     time.Now(),
		q:       q,
	}
	h := q.classes[opts.Class]
	if h == nil {
		h = &classHeap[T]{}
		q.classes[opts.Class] = h
		// Insert the class into the sorted round-robin order. The slice is
		// small (classes are traffic tiers, not jobs) so O(n) insert is fine.
		i := sort.SearchStrings(q.order, opts.Class)
		q.order = append(q.order, "")
		copy(q.order[i+1:], q.order[i:])
		q.order[i] = opts.Class
		if i <= q.rr && len(q.order) > 1 {
			q.rr++ // keep the round-robin cursor on the class it pointed at
		}
	}
	heap.Push(h, t)
	q.depth++
	q.met.admitted.Inc()
	q.met.depth.Set(int64(q.depth))
	// Registering the watcher under the lock closes the race with a
	// concurrent Dequeue reading t.stop.
	if ctx.Done() != nil {
		t.stop = context.AfterFunc(ctx, func() { t.Cancel() })
	}
	q.cond.Signal()
	q.mu.Unlock()
	return t, nil
}

// Dequeue blocks until a ticket is available and returns it, rotating
// fairly across classes: each nonempty class yields one ticket per
// round-robin cycle, and within a class the order is priority desc,
// deadline asc, FIFO. It returns ctx.Err() when ctx cancels first, and
// ErrClosed once the queue is closed and drained.
func (q *Queue[T]) Dequeue(ctx context.Context) (*Ticket[T], error) {
	if ctx.Done() != nil {
		// A canceled ctx must wake a parked waiter; Broadcast (not Signal)
		// because several waiters may share the ctx.
		defer context.AfterFunc(ctx, func() {
			q.mu.Lock()
			q.cond.Broadcast()
			q.mu.Unlock()
		})()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if t := q.popLocked(); t != nil {
			return t, nil
		}
		if q.closed {
			return nil, ErrClosed
		}
		q.cond.Wait()
	}
}

// TryDequeue returns the next ticket without blocking; ok is false when the
// queue is momentarily empty (or closed and drained). The dispatcher uses
// it to top a placement batch up to the free-server count.
func (q *Queue[T]) TryDequeue() (*Ticket[T], bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.popLocked()
	return t, t != nil
}

// popLocked removes and returns the next ticket in fairness order, or nil
// when every class is empty. Caller holds q.mu.
func (q *Queue[T]) popLocked() (t *Ticket[T]) {
	for i := 0; i < len(q.order); i++ {
		ci := (q.rr + i) % len(q.order)
		h := q.classes[q.order[ci]]
		if h.Len() == 0 {
			continue
		}
		t = heap.Pop(h).(*Ticket[T])
		q.rr = (ci + 1) % len(q.order)
		break
	}
	if t == nil {
		return nil
	}
	t.state = stateDequeued
	t.index = -1
	t.attempts++
	if t.stop != nil {
		t.stop() // the ticket is off the queue; the ctx watcher is moot
	}
	q.depth--
	q.met.dequeued.Inc()
	q.met.depth.Set(int64(q.depth))
	q.met.wait.ObserveSince(t.enq)
	return t
}

// cancel implements Ticket.Cancel.
func (q *Queue[T]) cancel(t *Ticket[T]) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if t.state != stateQueued {
		return false
	}
	heap.Remove(q.classes[t.opts.Class], t.index)
	t.state = stateCanceled
	t.index = -1
	q.depth--
	q.met.canceled.Inc()
	q.met.depth.Set(int64(q.depth))
	return true
}

// Requeue re-admits a dequeued ticket whose execution attempt failed
// externally — the lease-reassignment path of the serving layer: a worker
// that held the job missed its heartbeats, so the job must go back and run
// elsewhere. The ticket keeps its class, priority, deadline and original
// FIFO rank (its sequence id), so a reassigned job overtakes everything
// that arrived after it rather than rejoining at the tail.
//
// Requeue deliberately bypasses both MaxDepth and Close: the job was
// already admitted once, and dropping it now would violate the
// exactly-once settlement contract (Close only stops *new* admissions;
// requeued tickets drain like any other queued ticket). It fails when the
// ticket is not currently dequeued — a canceled or still-queued ticket has
// nothing to re-admit.
func (q *Queue[T]) Requeue(t *Ticket[T]) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if t.q != q {
		return errors.New("queue: requeue: ticket belongs to a different queue")
	}
	if t.state != stateDequeued {
		return fmt.Errorf("queue: requeue: ticket %d is not dequeued", t.id)
	}
	t.state = stateQueued
	// The class heap always exists: classes are created at first Submit and
	// never removed.
	heap.Push(q.classes[t.opts.Class], t)
	q.depth++
	q.met.requeued.Inc()
	q.met.depth.Set(int64(q.depth))
	q.cond.Signal()
	return nil
}

// Close stops admissions. Already-queued tickets remain dequeueable (a
// graceful shutdown drains them); Dequeue returns ErrClosed once the queue
// is empty.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Depth returns the number of queued tickets.
func (q *Queue[T]) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}

// Pressure is the backpressure signal: queued depth as a fraction of
// MaxDepth (0 empty, 1 full). Producers can shed or slow down as it
// approaches 1 instead of waiting for hard ErrFull rejections.
func (q *Queue[T]) Pressure() float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return float64(q.depth) / float64(q.max)
}

// classHeap orders one class's tickets: priority desc, then deadline asc
// (zero deadline last), then submission order.
type classHeap[T any] []*Ticket[T]

func (h classHeap[T]) Len() int { return len(h) }

func (h classHeap[T]) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.opts.Priority != b.opts.Priority {
		return a.opts.Priority > b.opts.Priority
	}
	ad, bd := a.opts.Deadline, b.opts.Deadline
	if !ad.Equal(bd) {
		if ad.IsZero() {
			return false
		}
		if bd.IsZero() {
			return true
		}
		return ad.Before(bd)
	}
	return a.id < b.id
}

func (h classHeap[T]) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *classHeap[T]) Push(x any) {
	t := x.(*Ticket[T])
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *classHeap[T]) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
