package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/queue"
	"repro/internal/sched"
	"repro/internal/uarch"
)

// waitParent submits a multi-part request and blocks until the parent
// settles, returning the final parent view.
func waitParent(t *testing.T, s *Server, req JobRequest) JobView {
	t.Helper()
	v, err := s.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	final, err := s.WaitJob(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	return final
}

// TestSegmentedJobGraph is the serving-layer half of the tentpole: a
// segmented submission expands into independently placed part jobs that
// all execute and settle back into one parent record.
func TestSegmentedJobGraph(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{
		Pool:    sched.UniformPool([]uarch.Config{uarch.Baseline()}, 2),
		Proto:   core.Workload{Frames: 4, Scale: 16},
		Seed:    11,
		Metrics: reg,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	defer s.Stop()

	final := waitParent(t, s, JobRequest{Video: "desktop", Segments: 2})
	if final.State != StateDone {
		t.Fatalf("parent state %s (error %q), want done", final.State, final.Error)
	}
	if final.PartsTotal != 2 || final.PartsDone != 2 || len(final.Parts) != 2 {
		t.Fatalf("parent parts = %d total / %d done (%v), want 2/2", final.PartsTotal, final.PartsDone, final.Parts)
	}
	var sum float64
	for i, id := range final.Parts {
		pv, ok := s.Job(id)
		if !ok {
			t.Fatalf("part %s not visible", id)
		}
		if pv.State != StateDone || pv.Parent != final.ID {
			t.Fatalf("part %s: state %s parent %q", id, pv.State, pv.Parent)
		}
		if pv.Segment == nil || pv.Segment.Len() != 2 || pv.Segment.Start != 2*i {
			t.Fatalf("part %s segment = %v, want [%d,%d)", id, pv.Segment, 2*i, 2*i+2)
		}
		sum += pv.SimSeconds
	}
	if final.SimSeconds != sum {
		t.Fatalf("parent seconds %f != part sum %f", final.SimSeconds, sum)
	}
	tot := s.Totals()
	if tot.Submitted != 1 || tot.Completed != 1 {
		t.Fatalf("totals count parts as jobs: %+v", tot)
	}
	snap := reg.Snapshot()
	if got := snap.CounterTotal("serve_parts_submitted"); got != 2 {
		t.Fatalf("serve_parts_submitted = %d, want 2", got)
	}
	if got := snap.CounterTotal("serve_parts_completed"); got != 2 {
		t.Fatalf("serve_parts_completed = %d, want 2", got)
	}
	for _, h := range []string{"serve_fanout_ns", "serve_stitch_ns"} {
		if hs, ok := snap.HistogramByName(h); !ok || hs.Count != 1 {
			t.Fatalf("%s count = %+v, want one observation", h, hs)
		}
	}
}

// TestLadderSharedAnalysis pins the N-1 cache-hit contract: every rung of
// an ABR ladder reuses the one shared codec.Analysis artifact of its
// (video, segment), so N rungs cost exactly one analysis build plus N-1
// cache hits. The workload carries a unique content seed so the global
// core caches are guaranteed cold at entry.
func TestLadderSharedAnalysis(t *testing.T) {
	hitKey := obs.Key("core_cache_hits", "cache", "analysis")
	missKey := obs.Key("core_cache_misses", "cache", "analysis")
	before := obs.Default().Snapshot()

	s := newTestServer(t, Config{
		Pool:  sched.UniformPool([]uarch.Config{uarch.Baseline()}, 1),
		Proto: core.Workload{Frames: 4, Scale: 16, Seed: 0xAB120001},
		Seed:  7,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	defer s.Stop()

	ladder := []Rung{
		{Name: "1080p", CRF: 23},
		{Name: "720p", CRF: 33},
		{Name: "360p", CRF: 43, Refs: 1},
	}
	final := waitParent(t, s, JobRequest{Video: "cricket", Ladder: ladder})
	if final.State != StateDone || final.PartsDone != 3 {
		t.Fatalf("ladder parent: state %s, %d parts done (error %q)", final.State, final.PartsDone, final.Error)
	}
	for i, id := range final.Parts {
		pv, _ := s.Job(id)
		if pv.Rung != ladder[i].Name {
			t.Fatalf("part %s rung %q, want %q", id, pv.Rung, ladder[i].Name)
		}
		if pv.Segment != nil {
			t.Fatalf("unsegmented ladder part %s carries segment %v", id, pv.Segment)
		}
	}

	after := obs.Default().Snapshot()
	hits := after.Counters[hitKey] - before.Counters[hitKey]
	misses := after.Counters[missKey] - before.Counters[missKey]
	if misses != 1 || hits != int64(len(ladder)-1) {
		t.Fatalf("analysis cache: %d misses / %d hits across %d rungs, want 1 / %d",
			misses, hits, len(ladder), len(ladder)-1)
	}
}

// TestLadderTimesSegments checks the rung x segment cross product: 2 rungs
// over 2 segments is 4 parts, every (rung, segment) pair present.
func TestLadderTimesSegments(t *testing.T) {
	s := newTestServer(t, Config{
		Pool:  sched.UniformPool([]uarch.Config{uarch.Baseline()}, 2),
		Proto: core.Workload{Frames: 4, Scale: 16},
		Seed:  13,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	defer s.Stop()

	final := waitParent(t, s, JobRequest{
		Video: "desktop", Segments: 2,
		Ladder: []Rung{{Name: "hi", CRF: 23}, {Name: "lo", CRF: 43}},
	})
	if final.State != StateDone || final.PartsTotal != 4 || final.PartsDone != 4 {
		t.Fatalf("parent: state %s, parts %d/%d (error %q)",
			final.State, final.PartsDone, final.PartsTotal, final.Error)
	}
	seen := map[string]bool{}
	for _, id := range final.Parts {
		pv, _ := s.Job(id)
		if pv.Segment == nil {
			t.Fatalf("part %s has no segment", id)
		}
		seen[pv.Rung+pv.Segment.String()] = true
	}
	for _, rung := range []string{"hi", "lo"} {
		for _, seg := range []string{"[0,2)", "[2,4)"} {
			if !seen[rung+seg] {
				t.Fatalf("missing part %s %s in %v", rung, seg, seen)
			}
		}
	}
}

// TestMultiSubmitAtomic pins all-or-nothing admission: when the queue
// cannot hold every part, the whole submission is rejected and nothing is
// registered or left queued.
func TestMultiSubmitAtomic(t *testing.T) {
	s := newTestServer(t, Config{
		Pool:       sched.UniformPool([]uarch.Config{uarch.Baseline()}, 1),
		QueueDepth: 2,
	})
	// Not started: admission only.
	_, err := s.Submit(context.Background(), JobRequest{Video: "desktop", Segments: 4})
	if !errors.Is(err, queue.ErrFull) {
		t.Fatalf("overflowing multi submit returned %v, want queue full", err)
	}
	if got := s.QueueDepth(); got != 0 {
		t.Fatalf("rejected submit left %d parts queued", got)
	}
	tot := s.Totals()
	if tot.Submitted != 0 || tot.Rejected != 1 {
		t.Fatalf("totals after rejection: %+v", tot)
	}
	if _, ok := s.Job("job-1"); ok {
		t.Fatal("rejected parent is visible")
	}

	// Caps reject before touching the queue.
	if _, err := s.Submit(context.Background(), JobRequest{Video: "desktop", Segments: maxSegments + 1}); err == nil {
		t.Fatal("want error for segments above cap")
	}
	if _, err := s.Submit(context.Background(), JobRequest{
		Video: "desktop", Ladder: make([]Rung, maxLadderRungs+1),
	}); err == nil {
		t.Fatal("want error for oversized ladder")
	}
	if _, err := s.Submit(context.Background(), JobRequest{
		Video: "desktop", Ladder: []Rung{{CRF: 99}},
	}); err == nil {
		t.Fatal("want error for invalid rung crf")
	}
}

// TestMultiSubmitCancel checks client withdrawal: canceling the submit
// context while parts are queued cancels every part and the parent.
func TestMultiSubmitCancel(t *testing.T) {
	s := newTestServer(t, Config{
		Pool: sched.UniformPool([]uarch.Config{uarch.Baseline()}, 1),
	})
	// Not started: parts stay queued until withdrawn.
	ctx, cancel := context.WithCancel(context.Background())
	v, err := s.Submit(ctx, JobRequest{Video: "desktop", Segments: 3})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	final, err := s.WaitJob(wctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCanceled {
		t.Fatalf("parent state %s, want canceled", final.State)
	}
	if got := s.Totals().Canceled; got != 1 {
		t.Fatalf("totals canceled %d, want 1 (parts must not count)", got)
	}
}

// TestPlaceUtilBias is the utilization-aware placement unit test: with two
// free slots of identical configuration, the dispatcher routes a warm job
// to the idler one.
func TestPlaceUtilBias(t *testing.T) {
	s := newTestServer(t, Config{
		Pool: sched.UniformPool([]uarch.Config{uarch.Baseline()}, 2),
	})
	rep := &perf.Report{Config: "baseline", Seconds: 1,
		Topdown: perf.Topdown{FrontEnd: 40, BadSpec: 2, MemBound: 5, CoreBound: 3, BackEnd: 8}}
	s.learn("desktop", rep)
	rec := &record{seq: 1, task: sched.Task{Video: "desktop"}}

	base := uarch.Baseline()
	free := []slot{
		{id: "w-a", label: "w-a", cfg: base, util: 90},
		{id: "w-b", label: "w-b", cfg: base, util: 10},
	}
	got := s.place([]*record{rec}, free)
	if got[0].mode != "smart" || got[0].slot != 1 {
		t.Fatalf("placement %+v, want smart on idler slot 1", got[0])
	}
	// Swapped load swaps the choice.
	free[0].util, free[1].util = 10, 90
	got = s.place([]*record{rec}, free)
	if got[0].slot != 0 {
		t.Fatalf("placement %+v, want idler slot 0", got[0])
	}
}
