package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/queue"
	"repro/internal/sched"
	"repro/internal/uarch"
)

// tinyProto keeps simulated jobs cheap: 4 frames at an aggressive proxy
// scale, the same shrink the sched tests use.
var tinyProto = core.Workload{Frames: 4, Scale: 16}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Pool == nil {
		cfg.Pool = sched.UniformPool(uarch.TableIV(), 1)
	}
	if cfg.Proto == (core.Workload{}) {
		cfg.Proto = tinyProto
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSmartBeatsRandomDeterministic is the acceptance criterion of the
// serving layer: on a heterogeneous pool, the characterization-driven
// dispatcher completes the same job sequence in strictly fewer
// fleet-seconds than random placement, and the whole comparison is
// reproducible bit-for-bit from the seed.
func TestSmartBeatsRandomDeterministic(t *testing.T) {
	pool := sched.UniformPool(uarch.TableIV(), 1)
	tasks := sched.GenerateTasks(8, 7)
	ctx := context.Background()

	first, err := RunComparison(ctx, pool, tasks, tinyProto, 42)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunComparison(ctx, pool, tasks, tinyProto, 42)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("comparison not deterministic:\n first %+v\nsecond %+v", first, second)
	}
	if got := first.Smart.Completed; got != int64(len(tasks)) {
		t.Fatalf("smart completed %d of %d jobs", got, len(tasks))
	}
	if got := first.Random.Completed; got != int64(len(tasks)) {
		t.Fatalf("random completed %d of %d jobs", got, len(tasks))
	}
	if first.Smart.SimSeconds >= first.Random.SimSeconds {
		t.Fatalf("smart placement (%f fleet-seconds) did not beat random (%f)",
			first.Smart.SimSeconds, first.Random.SimSeconds)
	}
	if d := first.Delta(); d <= 0 || d >= 1 {
		t.Fatalf("delta %f out of (0,1)", d)
	}
}

// TestColdThenLearned pins the cold-start path: with an unwarmed cost
// model the smart policy places randomly (mode "cold"); once a job has run
// on a baseline-configured server, the same video places smart.
func TestColdThenLearned(t *testing.T) {
	// A pool of only baseline servers: the cold random draw must land on
	// baseline, which feeds the learning path.
	s := newTestServer(t, Config{Pool: sched.Pool{uarch.Baseline(), uarch.Baseline()}})
	ctx := context.Background()
	s.Start(ctx)
	defer s.Stop()

	run := func(wantMode string) {
		t.Helper()
		view, err := s.Submit(ctx, JobRequest{Video: "bbb"})
		if err != nil {
			t.Fatal(err)
		}
		final, err := s.WaitJob(ctx, view.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != StateDone {
			t.Fatalf("job ended %s: %s", final.State, final.Error)
		}
		if final.Mode != wantMode {
			t.Fatalf("job placed in mode %q, want %q", final.Mode, wantMode)
		}
		if final.Server != "baseline" {
			t.Fatalf("job placed on %q, want baseline", final.Server)
		}
		if final.SimSeconds <= 0 {
			t.Fatalf("sim seconds %f", final.SimSeconds)
		}
	}
	run("cold")
	run("smart")
}

// TestWarmSkipsKnownVideos checks Warm is idempotent and deduplicating.
func TestWarmSkipsKnownVideos(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx := context.Background()
	if err := s.Warm(ctx, []string{"bbb", "bbb"}); err != nil {
		t.Fatal(err)
	}
	if s.costOf("bbb") == nil {
		t.Fatal("warm did not populate the cost cache")
	}
	rep := s.costOf("bbb")
	if err := s.Warm(ctx, []string{"bbb"}); err != nil {
		t.Fatal(err)
	}
	if s.costOf("bbb") != rep {
		t.Fatal("second warm replaced the cached report")
	}
}

// TestSubmitValidation exercises the 400-path checks.
func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx := context.Background()
	cases := []JobRequest{
		{Video: "no-such-video"},
		{Video: "bbb", CRF: 99},
		{Video: "bbb", Refs: 99},
		{Video: "bbb", Preset: "warpspeed"},
	}
	for _, req := range cases {
		if _, err := s.Submit(ctx, req); err == nil {
			t.Fatalf("submit %+v: expected validation error", req)
		}
	}
}

// TestCancelWhileQueued withdraws a queued job via its submission context
// and checks it settles canceled without ever running.
func TestCancelWhileQueued(t *testing.T) {
	s := newTestServer(t, Config{})
	// Not started: the job stays queued, so the cancellation must win.
	ctx, cancel := context.WithCancel(context.Background())
	view, err := s.Submit(ctx, JobRequest{Video: "bbb"})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	final, err := s.WaitJob(context.Background(), view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCanceled {
		t.Fatalf("job state %s, want canceled", final.State)
	}
	if got := s.Totals().Canceled; got != 1 {
		t.Fatalf("canceled total %d, want 1", got)
	}
}

// TestHTTPLifecycle drives the full API surface over a real listener:
// submit, poll to completion, healthz, 404 and 400.
func TestHTTPLifecycle(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx := context.Background()
	s.Start(ctx)
	defer s.Stop()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, JobView) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var view JobView
		json.NewDecoder(resp.Body).Decode(&view)
		return resp, view
	}

	resp, view := post(`{"video":"bbb","class":"live","priority":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	if view.State != StateQueued || view.ID == "" {
		t.Fatalf("submit view %+v", view)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got JobView
		json.NewDecoder(r.Body).Decode(&got)
		r.Body.Close()
		if got.State == StateDone {
			if got.Server == "" || got.SimSeconds <= 0 {
				t.Fatalf("done view %+v", got)
			}
			break
		}
		if got.State == StateFailed || got.State == StateCanceled {
			t.Fatalf("job ended %s: %s", got.State, got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health healthBody
	json.NewDecoder(r.Body).Decode(&health)
	r.Body.Close()
	if health.Status != "ok" || health.PoolSize != 5 || health.Totals.Completed != 1 {
		t.Fatalf("healthz %+v", health)
	}

	if r, err = http.Get(ts.URL + "/jobs/job-999"); err != nil || r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %v %v", r.StatusCode, err)
	}
	r.Body.Close()
	if resp, _ := post(`{"video":"no-such-video"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad video status %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(`{broken`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status %d, want 400", resp.StatusCode)
	}

	// The obs side door rides on the same mux.
	if r, err = http.Get(ts.URL + "/metrics"); err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %v %v", r.StatusCode, err)
	}
	r.Body.Close()
}

// TestHTTPAdmissionFull pins the 429 path: a depth-1 queue with no
// dispatcher running fills after one job.
func TestHTTPAdmissionFull(t *testing.T) {
	s := newTestServer(t, Config{QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"video":"bbb"}`
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/jobs", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit status %d, want 429", resp.StatusCode)
	}
	var e errorBody
	json.NewDecoder(resp.Body).Decode(&e)
	if e.Reason != "full" {
		t.Fatalf("overflow reason %q, want full", e.Reason)
	}
	if got := s.Totals().Rejected; got != 1 {
		t.Fatalf("rejected total %d, want 1", got)
	}
}

// TestStopDrainsQueuedJobs checks graceful shutdown: jobs admitted before
// Stop still execute.
func TestStopDrainsQueuedJobs(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	s.Start(ctx)
	var ids []string
	for i := 0; i < 4; i++ {
		view, err := s.Submit(ctx, JobRequest{Video: "bbb"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, view.ID)
	}
	s.Stop()
	if _, err := s.Submit(ctx, JobRequest{Video: "bbb"}); !errors.Is(err, queue.ErrClosed) {
		t.Fatalf("submit after stop: %v, want ErrClosed", err)
	}
	for _, id := range ids {
		final, err := s.WaitJob(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != StateDone {
			t.Fatalf("job %s ended %s after graceful stop: %s", id, final.State, final.Error)
		}
	}
	if got := s.Totals().Completed; got != 4 {
		t.Fatalf("completed %d, want 4", got)
	}
}

// BenchmarkDispatch measures one placement decision — the per-job overhead
// the online dispatcher adds on top of execution — with a warm cost model,
// a four-job batch and a ten-server fleet.
func BenchmarkDispatch(b *testing.B) {
	pool := sched.UniformPool(uarch.TableIV(), 2)
	s, err := New(Config{
		Pool: pool, Proto: tinyProto, Seed: 1, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]*record, 4)
	for i := range batch {
		video := sched.GenerateTasks(len(batch), 9)[i].Video
		batch[i] = &record{seq: uint64(i + 1), task: sched.Task{Video: video}}
		s.learn(video, &perf.Report{Topdown: perf.Topdown{
			FrontEnd: 0.2 + 0.1*float64(i), BadSpec: 0.1,
			MemBound: 0.3 - 0.05*float64(i), CoreBound: 0.2,
		}})
	}
	// The free snapshot is rebuilt per iteration in real dispatch; here the
	// fleet is fully idle, so one snapshot serves every solve.
	free := s.transport.freeSlots()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.place(batch, free)
	}
}
