package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/uarch"
)

// fleetTransport is the networked counterpart of the loopback: the
// orchestrator half of the pull-based worker protocol (wire.go). Workers
// are upserted on every message (registration IS the heartbeat), idle
// workers park a long poll, and each delivered job is wrapped in a lease
// that heartbeats renew. A lease that outlives its TTL — the worker
// crashed, hung, or lost its network — is expired by the monitor and the
// job requeued at its original rank; a result that arrives after its lease
// expired is reconciled by the dispatcher's lateSettle, so every job
// settles exactly once no matter how the race falls.

// FleetOptions tunes the worker-fleet transport.
type FleetOptions struct {
	// LeaseTTL is how long a leased job survives without a heartbeat
	// renewing it before it is requeued. Zero (or negative) selects the
	// adaptive policy: the TTL starts at 10s and tracks 3× the p99 of
	// observed job wall durations, clamped to [1s, 60s] — long jobs get
	// room to finish, short-job fleets reclaim crashed capacity fast. A
	// positive value pins the TTL (operator override).
	LeaseTTL time.Duration
	// PollWait bounds how long an idle worker's poll parks server-side
	// before returning 204 (0: 10s).
	PollWait time.Duration
}

// Adaptive lease-TTL policy constants (see FleetOptions.LeaseTTL).
const (
	adaptiveTTLStart  = 10 * time.Second
	adaptiveTTLMin    = time.Second
	adaptiveTTLMax    = 60 * time.Second
	adaptiveTTLFactor = 3
	leaseDurWindow    = 128 // completed-lease durations the p99 is taken over
)

// lease tracks one delivered job from assignment to settlement.
type lease struct {
	id      string
	worker  string
	cfgName string
	// spec is the leasing worker's capability at assignment time; it prices
	// the job when this lease's result settles it.
	spec    backend.ServerSpec
	tk      *queue.Ticket[*record]
	finish  func(outcome)
	created time.Time // assignment time, feeding the adaptive-TTL histogram
	expires time.Time

	done bool // finish consumed (by result or expiry); never reset
	// superseded marks a lease that expired or was disclaimed before its
	// result arrived: the job was requeued, and the lease is kept around so
	// a late result can still be reconciled.
	superseded bool
}

type fleetWorker struct {
	id   string
	cfg  uarch.Config
	spec backend.ServerSpec // full economic capability from the last message
	last time.Time          // last message of any kind
	util float64
	jobs int64
	gone bool // missed its heartbeat window; revived by any message
	// park is non-nil while an idle long-poll waits: delivery sends one
	// Assignment, withdrawal/supersession closes the channel. All
	// transitions happen under fleetTransport.mu, so a channel no longer
	// registered here is guaranteed to resolve without blocking.
	park  chan Assignment
	lease *lease
}

type fleetMetrics struct {
	workersG   *obs.Gauge
	reassigned *obs.Counter
	hbMiss     *obs.Counter
	late       *obs.Counter
	ttlMs      *obs.Gauge
	busyW      func(id string) *obs.Gauge
	utilW      func(id string) *obs.Gauge
}

type fleetTransport struct {
	s    *Server
	wait time.Duration
	met  fleetMetrics

	mu      sync.Mutex
	cond    *sync.Cond
	workers map[string]*fleetWorker
	leases  map[string]*lease
	seq     uint64
	closed  bool
	// ttl is the current lease TTL; mutated under mu when adaptive.
	ttl      time.Duration
	adaptive bool
	durs     [leaseDurWindow]time.Duration // ring of completed-lease durations
	durN     int                           // total durations observed

	stopc       chan struct{}
	monitorDone chan struct{}
}

func newFleetTransport(s *Server, opts FleetOptions, reg *obs.Registry) *fleetTransport {
	adaptive := opts.LeaseTTL <= 0
	if adaptive {
		opts.LeaseTTL = adaptiveTTLStart
	}
	if opts.PollWait <= 0 {
		opts.PollWait = 10 * time.Second
	}
	f := &fleetTransport{
		s:           s,
		ttl:         opts.LeaseTTL,
		adaptive:    adaptive,
		wait:        opts.PollWait,
		workers:     make(map[string]*fleetWorker),
		leases:      make(map[string]*lease),
		stopc:       make(chan struct{}),
		monitorDone: make(chan struct{}),
		met: fleetMetrics{
			workersG:   reg.Gauge("fleet_workers"),
			reassigned: reg.Counter("fleet_lease_reassigned"),
			hbMiss:     reg.Counter("fleet_heartbeat_miss"),
			late:       reg.Counter("fleet_results_late"),
			ttlMs:      reg.Gauge("fleet_lease_ttl_ms"),
			busyW:      func(id string) *obs.Gauge { return reg.Gauge("fleet_worker_busy", "worker", id) },
			utilW:      func(id string) *obs.Gauge { return reg.Gauge("fleet_worker_util_pct", "worker", id) },
		},
	}
	f.met.ttlMs.Set(f.ttl.Milliseconds())
	f.cond = sync.NewCond(&f.mu)
	return f
}

// observeLeaseLocked folds one completed lease's wall duration into the
// adaptive TTL: TTL = clamp(3 × p99 of the last leaseDurWindow durations).
// Caller holds f.mu.
func (f *fleetTransport) observeLeaseLocked(d time.Duration) {
	if !f.adaptive || d < 0 {
		return
	}
	f.durs[f.durN%leaseDurWindow] = d
	f.durN++
	n := f.durN
	if n > leaseDurWindow {
		n = leaseDurWindow
	}
	sorted := append([]time.Duration(nil), f.durs[:n]...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	ttl := adaptiveTTLFactor * sorted[n*99/100]
	if ttl < adaptiveTTLMin {
		ttl = adaptiveTTLMin
	}
	if ttl > adaptiveTTLMax {
		ttl = adaptiveTTLMax
	}
	f.ttl = ttl
	f.met.ttlMs.Set(ttl.Milliseconds())
}

// --- transport interface --------------------------------------------------------

func (f *fleetTransport) open(ctx context.Context) {
	go f.monitor(ctx)
}

func (f *fleetTransport) size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.liveLocked()
}

func (f *fleetTransport) liveLocked() int {
	n := 0
	for _, w := range f.workers {
		if !w.gone {
			n++
		}
	}
	return n
}

// freeSlots lists idle parked workers in id order (deterministic so the
// seeded-random cold path is reproducible for a fixed fleet).
func (f *fleetTransport) freeSlots() []slot {
	f.mu.Lock()
	defer f.mu.Unlock()
	ids := make([]string, 0, len(f.workers))
	for id, w := range f.workers {
		if !w.gone && w.lease == nil && w.park != nil {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	out := make([]slot, len(ids))
	for i, id := range ids {
		w := f.workers[id]
		out[i] = slot{id: id, label: id, cfg: w.cfg, spec: w.spec, util: w.util}
	}
	return out
}

// classes snapshots the distinct capability classes of the live fleet
// (label-deduped, label order) for deadline-admission checks.
func (f *fleetTransport) classes() []backend.ServerSpec {
	f.mu.Lock()
	defer f.mu.Unlock()
	byLabel := make(map[string]backend.ServerSpec)
	for _, w := range f.workers {
		if !w.gone {
			byLabel[w.spec.Label()] = w.spec
		}
	}
	labels := make([]string, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	out := make([]backend.ServerSpec, len(labels))
	for i, l := range labels {
		out[i] = byLabel[l]
	}
	return out
}

func (f *fleetTransport) waitFree(ctx context.Context) bool {
	if ctx.Done() != nil {
		defer context.AfterFunc(ctx, func() {
			f.mu.Lock()
			f.cond.Broadcast()
			f.mu.Unlock()
		})()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if ctx.Err() != nil || f.closed {
			return false
		}
		for _, w := range f.workers {
			if !w.gone && w.lease == nil && w.park != nil {
				return true
			}
		}
		f.cond.Wait()
	}
}

// start leases the job to the chosen parked worker and delivers the
// assignment into its waiting poll. An error means the worker is no longer
// deliverable (crashed, poll lapsed, already leased) and the caller
// requeues — finish is not called.
func (f *fleetTransport) start(_ context.Context, sl slot, tk *queue.Ticket[*record], finish func(outcome)) error {
	rec := tk.Payload()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errors.New("serve: fleet transport closed")
	}
	w := f.workers[sl.id]
	if w == nil || w.gone || w.park == nil || w.lease != nil {
		return fmt.Errorf("serve: worker %q is not free", sl.id)
	}
	f.seq++
	now := time.Now()
	l := &lease{
		id:      "lease-" + strconv.FormatUint(f.seq, 10),
		worker:  w.id,
		cfgName: w.spec.Label(),
		spec:    w.spec,
		tk:      tk,
		finish:  finish,
		created: now,
		expires: now.Add(f.ttl),
	}
	f.leases[l.id] = l
	w.lease = l
	ch := w.park
	w.park = nil
	f.met.busyW(w.id).Set(1)
	// Buffered channel, sole sender, park consumed under the lock: the send
	// can never block.
	ch <- Assignment{
		LeaseID: l.id, JobID: rec.id,
		Video: rec.task.Video, CRF: rec.task.CRF, Refs: rec.task.Refs,
		Preset: string(rec.task.Preset),
		Frames: f.s.cfg.Proto.Frames, Scale: f.s.cfg.Proto.Scale, Seed: f.s.cfg.Proto.Seed,
		SegStart: rec.seg.Start, SegEnd: rec.seg.End, Rung: rec.rung,
		WantStream: rec.wantStream,
		LeaseTTLMs: f.ttl.Milliseconds(),
	}
	return nil
}

func (f *fleetTransport) close() {
	f.mu.Lock()
	f.closed = true
	// Resolve every parked poll so worker processes fall out of their long
	// polls promptly instead of waiting out the window.
	for _, w := range f.workers {
		if w.park != nil {
			close(w.park)
			w.park = nil
		}
	}
	f.cond.Broadcast()
	f.mu.Unlock()
	close(f.stopc)
	<-f.monitorDone
}

// --- lease monitor --------------------------------------------------------------

// monitor periodically expires stale leases and declares silent workers
// gone. It exits on close() or ctx cancellation.
func (f *fleetTransport) monitor(ctx context.Context) {
	defer close(f.monitorDone)
	// The cadence is set once from the initial TTL; adaptive TTL growth only
	// makes the sweep relatively more frequent, never too slow to expire.
	f.mu.Lock()
	tick := f.ttl / 4
	f.mu.Unlock()
	if tick > time.Second {
		tick = time.Second
	}
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-f.stopc:
			return
		case <-ctx.Done():
			return
		case <-t.C:
			f.sweep(time.Now())
		}
	}
}

// sweep is one monitor pass: expire leases past their TTL (requeue their
// jobs), mark workers silent for a full TTL as gone, and garbage-collect
// settled leases.
func (f *fleetTransport) sweep(now time.Time) {
	var expired []*lease
	f.mu.Lock()
	for _, w := range f.workers {
		if !w.gone && now.Sub(w.last) > f.ttl {
			w.gone = true
			f.met.hbMiss.Inc()
		}
	}
	for id, l := range f.leases {
		if l.done {
			if !l.superseded || recTerminal(l.tk.Payload()) {
				// Settled normally, or its late result has been reconciled
				// (or a second attempt finished the job): nothing left to
				// race with.
				delete(f.leases, id)
			}
			continue
		}
		if now.After(l.expires) {
			l.done, l.superseded = true, true
			if w := f.workers[l.worker]; w != nil && w.lease == l {
				w.lease = nil
				f.met.busyW(w.id).Set(0)
			}
			f.met.reassigned.Inc()
			expired = append(expired, l)
		}
	}
	f.met.workersG.Set(int64(f.liveLocked()))
	f.mu.Unlock()
	// Requeue outside the lock: finish re-enters the dispatcher (queue,
	// record and flow locks).
	for _, l := range expired {
		l.finish(outcome{requeue: true})
	}
}

func recTerminal(rec *record) bool {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.state == StateDone || rec.state == StateFailed || rec.state == StateCanceled
}

// upsertLocked registers-or-refreshes a worker; every protocol message
// funnels through here, which is what makes re-registration idempotent and
// crash-rejoin under the same id seamless.
func (f *fleetTransport) upsertLocked(id string, spec backend.ServerSpec, now time.Time) *fleetWorker {
	w := f.workers[id]
	if w == nil {
		w = &fleetWorker{id: id}
		f.workers[id] = w
	}
	w.cfg = spec.Config
	w.spec = spec
	w.last = now
	w.gone = false
	f.met.workersG.Set(int64(f.liveLocked()))
	return w
}

// --- HTTP handlers --------------------------------------------------------------

// parseWorker validates the capability every protocol message carries and
// resolves it to a full server spec; false means the error response was
// written. Software workers must name a known uarch config; accelerator
// workers carry no config (the ASIC's host core is not modeled).
func parseWorker(w http.ResponseWriter, workerID, config, backendName string, price float64, spot bool) (backend.ServerSpec, bool) {
	if workerID == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "missing worker_id"})
		return backend.ServerSpec{}, false
	}
	kind, err := backend.ParseKind(backendName)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return backend.ServerSpec{}, false
	}
	spec := backend.ServerSpec{Backend: kind, PriceCentsHour: price, Spot: spot}
	if kind == backend.Software {
		cfg, ok := uarch.ByName(config)
		if !ok {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown configuration %q", config)})
			return backend.ServerSpec{}, false
		}
		spec.Config = cfg
	}
	return spec.FillDefaults(), true
}

func (f *fleetTransport) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb Heartbeat
	if !decodeJSON(w, r, &hb) {
		return
	}
	spec, ok := parseWorker(w, hb.WorkerID, hb.Config, hb.Backend, hb.PriceCentsHour, hb.Spot)
	if !ok {
		return
	}
	now := time.Now()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "shutting down", Reason: "closed"})
		return
	}
	fw := f.upsertLocked(hb.WorkerID, spec, now)
	fw.util = hb.UtilizationPct
	fw.jobs = hb.JobsDone
	f.met.utilW(fw.id).Set(int64(hb.UtilizationPct))
	leaseValid := true
	if hb.LeaseID != "" {
		l := f.leases[hb.LeaseID]
		if l != nil && !l.done && l.worker == hb.WorkerID {
			l.expires = now.Add(f.ttl)
		} else {
			leaseValid = false
		}
	}
	f.mu.Unlock()
	writeJSON(w, http.StatusOK, HeartbeatReply{OK: true, LeaseValid: leaseValid})
}

func (f *fleetTransport) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req PollRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	spec, ok := parseWorker(w, req.WorkerID, req.Config, req.Backend, req.PriceCentsHour, req.Spot)
	if !ok {
		return
	}
	now := time.Now()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "shutting down", Reason: "closed"})
		return
	}
	fw := f.upsertLocked(req.WorkerID, spec, now)
	var disclaimed *lease
	if l := fw.lease; l != nil && !l.done {
		// The lease holder itself says it is idle (it crashed and restarted,
		// or abandoned the job): release the orphan immediately instead of
		// waiting out the TTL.
		l.done, l.superseded = true, true
		fw.lease = nil
		f.met.reassigned.Inc()
		disclaimed = l
	}
	if fw.park != nil {
		// A previous poll for this id is still parked (duplicate poller or
		// a client that gave up unnoticed): supersede it.
		close(fw.park)
	}
	ch := make(chan Assignment, 1)
	fw.park = ch
	f.met.busyW(fw.id).Set(0)
	f.cond.Broadcast() // a slot became free
	f.mu.Unlock()
	if disclaimed != nil {
		disclaimed.finish(outcome{requeue: true})
	}

	timer := time.NewTimer(f.wait)
	defer timer.Stop()
	select {
	case a, okc := <-ch:
		if okc {
			writeJSON(w, http.StatusOK, a)
		} else {
			w.WriteHeader(http.StatusNoContent)
		}
	case <-timer.C:
		f.resolvePoll(fw, ch, w)
	case <-r.Context().Done():
		f.resolvePoll(fw, ch, w)
	}
}

// resolvePoll ends a poll that stopped waiting (window lapsed or client
// went away): if an assignment raced in it is still delivered — the lease
// TTL covers the case where the client is truly gone — otherwise the park
// is withdrawn and the poll returns empty.
func (f *fleetTransport) resolvePoll(fw *fleetWorker, ch chan Assignment, w http.ResponseWriter) {
	f.mu.Lock()
	if fw.park == ch {
		fw.park = nil
		f.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	f.mu.Unlock()
	// No longer registered: a send or close is already committed, so this
	// never blocks.
	if a, ok := <-ch; ok {
		writeJSON(w, http.StatusOK, a)
	} else {
		w.WriteHeader(http.StatusNoContent)
	}
}

func (f *fleetTransport) handleResult(w http.ResponseWriter, r *http.Request) {
	var res ResultReport
	// Results get a larger body budget than control messages: they may carry
	// an encoded bitstream (base64) for stitchable segment parts.
	if !decodeJSONLimit(w, r, &res, maxResultBody) {
		return
	}
	if res.WorkerID == "" || res.LeaseID == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "missing worker_id or lease_id"})
		return
	}
	f.mu.Lock()
	l := f.leases[res.LeaseID]
	if l == nil {
		f.mu.Unlock()
		writeJSON(w, http.StatusOK, ResultReply{Accepted: false, Reason: "unknown_lease"})
		return
	}
	if l.done {
		if !l.superseded {
			// Retry of a result that already settled: safe duplicate.
			f.mu.Unlock()
			writeJSON(w, http.StatusOK, ResultReply{Accepted: true, Reason: "duplicate"})
			return
		}
		// The lease expired before this result arrived; the job was
		// requeued and may even be running elsewhere. Reconcile: a late
		// success settles the job if nothing else has, a late failure is
		// discarded (the requeued retry is the better path), and anything
		// already settled stays settled.
		delete(f.leases, res.LeaseID)
		f.mu.Unlock()
		f.met.late.Inc()
		used := false
		if res.Error == "" {
			used = f.s.lateSettle(l.tk, f.outcomeOf(l, res))
		}
		reason := "late"
		if !used {
			reason = "late_discarded"
		}
		writeJSON(w, http.StatusOK, ResultReply{Accepted: used, Reason: reason})
		return
	}
	l.done = true
	if fw := f.workers[l.worker]; fw != nil && fw.lease == l {
		fw.lease = nil
		fw.jobs++
		f.met.busyW(fw.id).Set(0)
	}
	f.observeLeaseLocked(time.Since(l.created))
	f.mu.Unlock()
	l.finish(f.outcomeOf(l, res))
	writeJSON(w, http.StatusOK, ResultReply{Accepted: true})
}

// outcomeOf converts a wire result into the dispatcher's outcome.
func (f *fleetTransport) outcomeOf(l *lease, res ResultReport) outcome {
	out := outcome{
		seconds: res.Seconds,
		config:  l.cfgName,
		spec:    l.spec,
		report:  topdownReport(l.cfgName, res.Seconds, res.Topdown),
		stream:  res.Stream,
	}
	if res.Error != "" {
		out.err = errors.New(res.Error)
	}
	return out
}

// workerViews snapshots the fleet for /healthz.
func (f *fleetTransport) workerViews() []WorkerView {
	now := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	ids := make([]string, 0, len(f.workers))
	for id := range f.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]WorkerView, len(ids))
	for i, id := range ids {
		w := f.workers[id]
		v := WorkerView{
			ID: id, Config: w.cfg.Name, Busy: w.lease != nil,
			Backend: string(w.spec.Backend), PriceCentsHour: w.spec.PriceCentsHour,
			Spot:   w.spec.Spot,
			Parked: w.park != nil, Gone: w.gone, JobsDone: w.jobs,
			UtilizationPct: w.util, LastBeatMs: now.Sub(w.last).Milliseconds(),
		}
		if w.lease != nil {
			v.Lease = w.lease.id
		}
		out[i] = v
	}
	return out
}
