package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/uarch"
)

// fleetTransport is the networked counterpart of the loopback: the
// orchestrator half of the pull-based worker protocol (wire.go). Workers
// are upserted on every message (registration IS the heartbeat), idle
// workers park a long poll, and each delivered job is wrapped in a lease
// that heartbeats renew. A lease that outlives its TTL — the worker
// crashed, hung, or lost its network — is expired by the monitor and the
// job requeued at its original rank; a result that arrives after its lease
// expired is reconciled by the dispatcher's lateSettle, so every job
// settles exactly once no matter how the race falls.

// FleetOptions tunes the worker-fleet transport.
type FleetOptions struct {
	// LeaseTTL is how long a leased job survives without a heartbeat
	// renewing it before it is requeued (0: 10s).
	LeaseTTL time.Duration
	// PollWait bounds how long an idle worker's poll parks server-side
	// before returning 204 (0: 10s).
	PollWait time.Duration
}

// lease tracks one delivered job from assignment to settlement.
type lease struct {
	id      string
	worker  string
	cfgName string
	tk      *queue.Ticket[*record]
	finish  func(outcome)
	expires time.Time

	done bool // finish consumed (by result or expiry); never reset
	// superseded marks a lease that expired or was disclaimed before its
	// result arrived: the job was requeued, and the lease is kept around so
	// a late result can still be reconciled.
	superseded bool
}

type fleetWorker struct {
	id   string
	cfg  uarch.Config
	last time.Time // last message of any kind
	util float64
	jobs int64
	gone bool // missed its heartbeat window; revived by any message
	// park is non-nil while an idle long-poll waits: delivery sends one
	// Assignment, withdrawal/supersession closes the channel. All
	// transitions happen under fleetTransport.mu, so a channel no longer
	// registered here is guaranteed to resolve without blocking.
	park  chan Assignment
	lease *lease
}

type fleetMetrics struct {
	workersG   *obs.Gauge
	reassigned *obs.Counter
	hbMiss     *obs.Counter
	late       *obs.Counter
	busyW      func(id string) *obs.Gauge
	utilW      func(id string) *obs.Gauge
}

type fleetTransport struct {
	s    *Server
	ttl  time.Duration
	wait time.Duration
	met  fleetMetrics

	mu      sync.Mutex
	cond    *sync.Cond
	workers map[string]*fleetWorker
	leases  map[string]*lease
	seq     uint64
	closed  bool

	stopc       chan struct{}
	monitorDone chan struct{}
}

func newFleetTransport(s *Server, opts FleetOptions, reg *obs.Registry) *fleetTransport {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 10 * time.Second
	}
	if opts.PollWait <= 0 {
		opts.PollWait = 10 * time.Second
	}
	f := &fleetTransport{
		s:           s,
		ttl:         opts.LeaseTTL,
		wait:        opts.PollWait,
		workers:     make(map[string]*fleetWorker),
		leases:      make(map[string]*lease),
		stopc:       make(chan struct{}),
		monitorDone: make(chan struct{}),
		met: fleetMetrics{
			workersG:   reg.Gauge("fleet_workers"),
			reassigned: reg.Counter("fleet_lease_reassigned"),
			hbMiss:     reg.Counter("fleet_heartbeat_miss"),
			late:       reg.Counter("fleet_results_late"),
			busyW:      func(id string) *obs.Gauge { return reg.Gauge("fleet_worker_busy", "worker", id) },
			utilW:      func(id string) *obs.Gauge { return reg.Gauge("fleet_worker_util_pct", "worker", id) },
		},
	}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// --- transport interface --------------------------------------------------------

func (f *fleetTransport) open(ctx context.Context) {
	go f.monitor(ctx)
}

func (f *fleetTransport) size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.liveLocked()
}

func (f *fleetTransport) liveLocked() int {
	n := 0
	for _, w := range f.workers {
		if !w.gone {
			n++
		}
	}
	return n
}

// freeSlots lists idle parked workers in id order (deterministic so the
// seeded-random cold path is reproducible for a fixed fleet).
func (f *fleetTransport) freeSlots() []slot {
	f.mu.Lock()
	defer f.mu.Unlock()
	ids := make([]string, 0, len(f.workers))
	for id, w := range f.workers {
		if !w.gone && w.lease == nil && w.park != nil {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	out := make([]slot, len(ids))
	for i, id := range ids {
		w := f.workers[id]
		out[i] = slot{id: id, label: id, cfg: w.cfg, util: w.util}
	}
	return out
}

func (f *fleetTransport) waitFree(ctx context.Context) bool {
	if ctx.Done() != nil {
		defer context.AfterFunc(ctx, func() {
			f.mu.Lock()
			f.cond.Broadcast()
			f.mu.Unlock()
		})()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if ctx.Err() != nil || f.closed {
			return false
		}
		for _, w := range f.workers {
			if !w.gone && w.lease == nil && w.park != nil {
				return true
			}
		}
		f.cond.Wait()
	}
}

// start leases the job to the chosen parked worker and delivers the
// assignment into its waiting poll. An error means the worker is no longer
// deliverable (crashed, poll lapsed, already leased) and the caller
// requeues — finish is not called.
func (f *fleetTransport) start(_ context.Context, sl slot, tk *queue.Ticket[*record], finish func(outcome)) error {
	rec := tk.Payload()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errors.New("serve: fleet transport closed")
	}
	w := f.workers[sl.id]
	if w == nil || w.gone || w.park == nil || w.lease != nil {
		return fmt.Errorf("serve: worker %q is not free", sl.id)
	}
	f.seq++
	l := &lease{
		id:      "lease-" + strconv.FormatUint(f.seq, 10),
		worker:  w.id,
		cfgName: w.cfg.Name,
		tk:      tk,
		finish:  finish,
		expires: time.Now().Add(f.ttl),
	}
	f.leases[l.id] = l
	w.lease = l
	ch := w.park
	w.park = nil
	f.met.busyW(w.id).Set(1)
	// Buffered channel, sole sender, park consumed under the lock: the send
	// can never block.
	ch <- Assignment{
		LeaseID: l.id, JobID: rec.id,
		Video: rec.task.Video, CRF: rec.task.CRF, Refs: rec.task.Refs,
		Preset: string(rec.task.Preset),
		Frames: f.s.cfg.Proto.Frames, Scale: f.s.cfg.Proto.Scale, Seed: f.s.cfg.Proto.Seed,
		SegStart: rec.seg.Start, SegEnd: rec.seg.End, Rung: rec.rung,
		LeaseTTLMs: f.ttl.Milliseconds(),
	}
	return nil
}

func (f *fleetTransport) close() {
	f.mu.Lock()
	f.closed = true
	// Resolve every parked poll so worker processes fall out of their long
	// polls promptly instead of waiting out the window.
	for _, w := range f.workers {
		if w.park != nil {
			close(w.park)
			w.park = nil
		}
	}
	f.cond.Broadcast()
	f.mu.Unlock()
	close(f.stopc)
	<-f.monitorDone
}

// --- lease monitor --------------------------------------------------------------

// monitor periodically expires stale leases and declares silent workers
// gone. It exits on close() or ctx cancellation.
func (f *fleetTransport) monitor(ctx context.Context) {
	defer close(f.monitorDone)
	tick := f.ttl / 4
	if tick > time.Second {
		tick = time.Second
	}
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-f.stopc:
			return
		case <-ctx.Done():
			return
		case <-t.C:
			f.sweep(time.Now())
		}
	}
}

// sweep is one monitor pass: expire leases past their TTL (requeue their
// jobs), mark workers silent for a full TTL as gone, and garbage-collect
// settled leases.
func (f *fleetTransport) sweep(now time.Time) {
	var expired []*lease
	f.mu.Lock()
	for _, w := range f.workers {
		if !w.gone && now.Sub(w.last) > f.ttl {
			w.gone = true
			f.met.hbMiss.Inc()
		}
	}
	for id, l := range f.leases {
		if l.done {
			if !l.superseded || recTerminal(l.tk.Payload()) {
				// Settled normally, or its late result has been reconciled
				// (or a second attempt finished the job): nothing left to
				// race with.
				delete(f.leases, id)
			}
			continue
		}
		if now.After(l.expires) {
			l.done, l.superseded = true, true
			if w := f.workers[l.worker]; w != nil && w.lease == l {
				w.lease = nil
				f.met.busyW(w.id).Set(0)
			}
			f.met.reassigned.Inc()
			expired = append(expired, l)
		}
	}
	f.met.workersG.Set(int64(f.liveLocked()))
	f.mu.Unlock()
	// Requeue outside the lock: finish re-enters the dispatcher (queue,
	// record and flow locks).
	for _, l := range expired {
		l.finish(outcome{requeue: true})
	}
}

func recTerminal(rec *record) bool {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.state == StateDone || rec.state == StateFailed || rec.state == StateCanceled
}

// upsertLocked registers-or-refreshes a worker; every protocol message
// funnels through here, which is what makes re-registration idempotent and
// crash-rejoin under the same id seamless.
func (f *fleetTransport) upsertLocked(id string, cfg uarch.Config, now time.Time) *fleetWorker {
	w := f.workers[id]
	if w == nil {
		w = &fleetWorker{id: id}
		f.workers[id] = w
	}
	w.cfg = cfg
	w.last = now
	w.gone = false
	f.met.workersG.Set(int64(f.liveLocked()))
	return w
}

// --- HTTP handlers --------------------------------------------------------------

// parseWorker validates the (worker id, config name) pair every protocol
// message carries; a nil config return means the response was written.
func parseWorker(w http.ResponseWriter, workerID, config string) (uarch.Config, bool) {
	if workerID == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "missing worker_id"})
		return uarch.Config{}, false
	}
	cfg, ok := uarch.ByName(config)
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown configuration %q", config)})
		return uarch.Config{}, false
	}
	return cfg, true
}

func (f *fleetTransport) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb Heartbeat
	if !decodeJSON(w, r, &hb) {
		return
	}
	cfg, ok := parseWorker(w, hb.WorkerID, hb.Config)
	if !ok {
		return
	}
	now := time.Now()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "shutting down", Reason: "closed"})
		return
	}
	fw := f.upsertLocked(hb.WorkerID, cfg, now)
	fw.util = hb.UtilizationPct
	fw.jobs = hb.JobsDone
	f.met.utilW(fw.id).Set(int64(hb.UtilizationPct))
	leaseValid := true
	if hb.LeaseID != "" {
		l := f.leases[hb.LeaseID]
		if l != nil && !l.done && l.worker == hb.WorkerID {
			l.expires = now.Add(f.ttl)
		} else {
			leaseValid = false
		}
	}
	f.mu.Unlock()
	writeJSON(w, http.StatusOK, HeartbeatReply{OK: true, LeaseValid: leaseValid})
}

func (f *fleetTransport) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req PollRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	cfg, ok := parseWorker(w, req.WorkerID, req.Config)
	if !ok {
		return
	}
	now := time.Now()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "shutting down", Reason: "closed"})
		return
	}
	fw := f.upsertLocked(req.WorkerID, cfg, now)
	var disclaimed *lease
	if l := fw.lease; l != nil && !l.done {
		// The lease holder itself says it is idle (it crashed and restarted,
		// or abandoned the job): release the orphan immediately instead of
		// waiting out the TTL.
		l.done, l.superseded = true, true
		fw.lease = nil
		f.met.reassigned.Inc()
		disclaimed = l
	}
	if fw.park != nil {
		// A previous poll for this id is still parked (duplicate poller or
		// a client that gave up unnoticed): supersede it.
		close(fw.park)
	}
	ch := make(chan Assignment, 1)
	fw.park = ch
	f.met.busyW(fw.id).Set(0)
	f.cond.Broadcast() // a slot became free
	f.mu.Unlock()
	if disclaimed != nil {
		disclaimed.finish(outcome{requeue: true})
	}

	timer := time.NewTimer(f.wait)
	defer timer.Stop()
	select {
	case a, okc := <-ch:
		if okc {
			writeJSON(w, http.StatusOK, a)
		} else {
			w.WriteHeader(http.StatusNoContent)
		}
	case <-timer.C:
		f.resolvePoll(fw, ch, w)
	case <-r.Context().Done():
		f.resolvePoll(fw, ch, w)
	}
}

// resolvePoll ends a poll that stopped waiting (window lapsed or client
// went away): if an assignment raced in it is still delivered — the lease
// TTL covers the case where the client is truly gone — otherwise the park
// is withdrawn and the poll returns empty.
func (f *fleetTransport) resolvePoll(fw *fleetWorker, ch chan Assignment, w http.ResponseWriter) {
	f.mu.Lock()
	if fw.park == ch {
		fw.park = nil
		f.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	f.mu.Unlock()
	// No longer registered: a send or close is already committed, so this
	// never blocks.
	if a, ok := <-ch; ok {
		writeJSON(w, http.StatusOK, a)
	} else {
		w.WriteHeader(http.StatusNoContent)
	}
}

func (f *fleetTransport) handleResult(w http.ResponseWriter, r *http.Request) {
	var res ResultReport
	if !decodeJSON(w, r, &res) {
		return
	}
	if res.WorkerID == "" || res.LeaseID == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "missing worker_id or lease_id"})
		return
	}
	f.mu.Lock()
	l := f.leases[res.LeaseID]
	if l == nil {
		f.mu.Unlock()
		writeJSON(w, http.StatusOK, ResultReply{Accepted: false, Reason: "unknown_lease"})
		return
	}
	if l.done {
		if !l.superseded {
			// Retry of a result that already settled: safe duplicate.
			f.mu.Unlock()
			writeJSON(w, http.StatusOK, ResultReply{Accepted: true, Reason: "duplicate"})
			return
		}
		// The lease expired before this result arrived; the job was
		// requeued and may even be running elsewhere. Reconcile: a late
		// success settles the job if nothing else has, a late failure is
		// discarded (the requeued retry is the better path), and anything
		// already settled stays settled.
		delete(f.leases, res.LeaseID)
		f.mu.Unlock()
		f.met.late.Inc()
		used := false
		if res.Error == "" {
			used = f.s.lateSettle(l.tk, f.outcomeOf(l, res))
		}
		reason := "late"
		if !used {
			reason = "late_discarded"
		}
		writeJSON(w, http.StatusOK, ResultReply{Accepted: used, Reason: reason})
		return
	}
	l.done = true
	if fw := f.workers[l.worker]; fw != nil && fw.lease == l {
		fw.lease = nil
		fw.jobs++
		f.met.busyW(fw.id).Set(0)
	}
	f.mu.Unlock()
	l.finish(f.outcomeOf(l, res))
	writeJSON(w, http.StatusOK, ResultReply{Accepted: true})
}

// outcomeOf converts a wire result into the dispatcher's outcome.
func (f *fleetTransport) outcomeOf(l *lease, res ResultReport) outcome {
	out := outcome{
		seconds: res.Seconds,
		config:  l.cfgName,
		report:  topdownReport(l.cfgName, res.Seconds, res.Topdown),
	}
	if res.Error != "" {
		out.err = errors.New(res.Error)
	}
	return out
}

// workerViews snapshots the fleet for /healthz.
func (f *fleetTransport) workerViews() []WorkerView {
	now := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	ids := make([]string, 0, len(f.workers))
	for id := range f.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]WorkerView, len(ids))
	for i, id := range ids {
		w := f.workers[id]
		v := WorkerView{
			ID: id, Config: w.cfg.Name, Busy: w.lease != nil,
			Parked: w.park != nil, Gone: w.gone, JobsDone: w.jobs,
			UtilizationPct: w.util, LastBeatMs: now.Sub(w.last).Milliseconds(),
		}
		if w.lease != nil {
			v.Lease = w.lease.id
		}
		out[i] = v
	}
	return out
}
