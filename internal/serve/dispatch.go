package serve

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/perf"
	"repro/internal/sched"
	"repro/internal/uarch"
)

// This file is the online dispatcher: the incremental counterpart of the
// paper's one-shot Hungarian placement. Each cycle it takes the next
// dequeued job, tops the batch up with whatever else is waiting (bounded by
// the free-server count), and solves the batch×free-servers assignment with
// the same affinity cost model the offline smart scheduler uses — a batch
// of one degenerates to greedy argmax-affinity, a fuller batch recovers the
// regret-aware matching (a job only concedes its best server when another
// job loses more by missing it). Videos without a cached baseline
// characterization fall back to seeded-random placement, the cold-start
// behaviour the random control policy uses for everything.

// run is the dispatcher loop; it exits when ctx cancels or the queue is
// closed and drained.
func (s *Server) run(ctx context.Context) {
	defer close(s.runDone)
	for {
		ticket, err := s.q.Dequeue(ctx)
		if err != nil {
			return // canceled, or closed and drained
		}
		sp := s.met.dispatch.Start()
		batch := []*record{ticket.Payload()}
		if !s.waitFree(ctx) {
			// Canceled while every server was busy: the dequeued job never
			// ran; settle it so no waiter hangs.
			s.settleCanceled(batch[0])
			sp.End()
			return
		}
		s.mu.Lock()
		free := s.free
		s.mu.Unlock()
		for len(batch) < free {
			extra, ok := s.q.TryDequeue()
			if !ok {
				break
			}
			batch = append(batch, extra.Payload())
		}
		placements := s.place(batch)
		sp.End()
		for bi, rec := range batch {
			s.launch(ctx, rec, placements[bi])
		}
	}
}

// waitFree blocks until at least one server is free; false means ctx
// canceled first.
func (s *Server) waitFree(ctx context.Context) bool {
	if ctx.Done() != nil {
		defer context.AfterFunc(ctx, func() {
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		})()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.free == 0 {
		if ctx.Err() != nil {
			return false
		}
		s.cond.Wait()
	}
	return true
}

// placement pairs a batch entry with its chosen server and the mode the
// decision was made under.
type placement struct {
	server int
	mode   string // smart | random | cold
}

// place assigns every batch entry to a distinct free server and marks the
// servers busy, all under the fleet lock. len(batch) never exceeds the free
// count (run caps the batch), so every entry gets a server.
func (s *Server) place(batch []*record) []placement {
	s.mu.Lock()
	defer s.mu.Unlock()
	var freeIdx []int
	for si, b := range s.busy {
		if !b {
			freeIdx = append(freeIdx, si)
		}
	}
	out := make([]placement, len(batch))
	taken := make([]bool, len(freeIdx))

	// Partition the batch: smart-placeable rows (policy smart, warm cache)
	// solve jointly; the rest place random.
	var warm []int
	var cold []int
	reports := make([]*perf.Report, len(batch))
	for bi, rec := range batch {
		if s.cfg.Policy == PolicySmart {
			if rep := s.costOf(rec.task.Video); rep != nil {
				reports[bi] = rep
				warm = append(warm, bi)
				continue
			}
			out[bi].mode = "cold"
		} else {
			out[bi].mode = "random"
		}
		cold = append(cold, bi)
	}
	if len(warm) > 0 {
		cost := make([][]float64, len(warm))
		for k, bi := range warm {
			cost[k] = make([]float64, len(freeIdx))
			for j, si := range freeIdx {
				cost[k][j] = -sched.Affinity(reports[bi], s.cfg.Pool[si])
			}
		}
		// HungarianPad so overload degrades: a row the solve cannot place
		// (more warm jobs than free servers can only happen if run's batch
		// cap is ever loosened) falls back to the random path instead of
		// crashing the dispatcher.
		assign := sched.HungarianPad(cost)
		for k, bi := range warm {
			j := assign[k]
			if j < 0 {
				out[bi].mode = "cold"
				cold = append(cold, bi)
				continue
			}
			out[bi] = placement{server: freeIdx[j], mode: "smart"}
			taken[j] = true
		}
	}
	for _, bi := range cold {
		var remaining []int
		for j := range freeIdx {
			if !taken[j] {
				remaining = append(remaining, j)
			}
		}
		// Per-job hash, not a shared RNG stream: the draw depends only on
		// (seed, job sequence), so placement is reproducible regardless of
		// dispatch interleaving.
		j := remaining[int(splitmix64(s.cfg.Seed^batch[bi].seq)%uint64(len(remaining)))]
		out[bi].server = freeIdx[j]
		taken[j] = true
	}
	for _, p := range out {
		s.busy[p.server] = true
	}
	s.free -= len(batch)
	s.met.busySrv.Set(int64(len(s.cfg.Pool) - s.free))
	return out
}

// launch records the dispatch and hands the job to the execution stream.
func (s *Server) launch(ctx context.Context, rec *record, p placement) {
	cfg := s.cfg.Pool[p.server]
	rec.mu.Lock()
	rec.state = StateRunning
	rec.server = cfg.Name
	rec.mode = p.mode
	rec.started = time.Now()
	rec.mu.Unlock()
	s.met.placed(p.mode).Inc()
	if err := s.stream.Submit(ctx, func(jctx context.Context) error {
		return s.execute(jctx, rec, p.server)
	}); err != nil {
		// The stream refused (shutdown race): release the server and fail
		// the job so its waiters settle.
		s.release(p.server)
		s.settle(rec, StateFailed, 0, fmt.Errorf("serve: dispatch: %w", err))
	}
}

// execute runs one placed job on the simulated fleet via the shared core
// pipeline (decode/analysis caches and all), then settles the record.
func (s *Server) execute(ctx context.Context, rec *record, server int) error {
	cfg := s.cfg.Pool[server]
	w := s.cfg.Proto
	w.Video = rec.task.Video
	res, err := core.Run(ctx, core.Job{Workload: w, Options: rec.opts, Config: cfg})
	// Release before settling: a closed-loop client that saw the job finish
	// must find the fleet capacity already restored.
	s.release(server)
	if err != nil {
		s.settle(rec, StateFailed, 0, err)
		return err
	}
	// The fleet learns while serving: any job that happened to run on a
	// baseline-configured server doubles as the baseline characterization
	// of its video, warming the cost model for free.
	if cfg.Name == "baseline" {
		s.learn(rec.task.Video, res.Report)
	}
	s.settle(rec, StateDone, res.Report.Seconds, nil)
	return nil
}

// release returns a server to the free set.
func (s *Server) release(server int) {
	s.mu.Lock()
	s.busy[server] = false
	s.free++
	s.met.busySrv.Set(int64(len(s.cfg.Pool) - s.free))
	s.cond.Broadcast()
	s.mu.Unlock()
}

// settle moves a record to a terminal state exactly once and updates the
// outcome counters.
func (s *Server) settle(rec *record, state JobState, seconds float64, err error) {
	rec.mu.Lock()
	if rec.state == StateDone || rec.state == StateFailed || rec.state == StateCanceled {
		rec.mu.Unlock()
		return
	}
	rec.state = state
	rec.finished = time.Now()
	rec.seconds = seconds
	if err != nil {
		rec.errMsg = err.Error()
	}
	enq := rec.enq
	rec.mu.Unlock()

	s.met.sojourn.ObserveSince(enq)
	s.totMu.Lock()
	switch state {
	case StateDone:
		s.met.completed.Inc()
		s.met.simMs.Add(int64(seconds * 1e3))
		s.totals.Completed++
		s.totals.SimSeconds += seconds
	case StateFailed:
		s.met.failed.Inc()
		s.totals.Failed++
	case StateCanceled:
		s.met.canceled.Inc()
		s.totals.Canceled++
	}
	s.totMu.Unlock()
	close(rec.done)
}

// settleCanceled marks a withdrawn job (its queue ticket was canceled
// before dispatch).
func (s *Server) settleCanceled(rec *record) {
	s.settle(rec, StateCanceled, 0, context.Canceled)
}

// --- characterization cost model ------------------------------------------------

// costOf returns the cached baseline characterization of a video, or nil
// when the cache is cold.
func (s *Server) costOf(video string) *perf.Report {
	s.costMu.Lock()
	defer s.costMu.Unlock()
	return s.costs[video]
}

// learn stores a baseline characterization (first writer wins, keeping the
// model stable once warm).
func (s *Server) learn(video string, rep *perf.Report) {
	s.costMu.Lock()
	if _, ok := s.costs[video]; !ok {
		s.costs[video] = rep
	}
	s.costMu.Unlock()
}

// Warm profiles the given videos on the baseline configuration with the
// paper's default options (medium, crf 23) and fills the cost cache,
// fanning out on the shared execution engine. The model is keyed by video
// only — content dominates the bottleneck mix — so one profile per video
// serves every (crf, refs, preset) a job may carry. Duplicate and
// already-warm videos are skipped. Typically called at startup with the
// expected catalog; without it the dispatcher serves cold (random) until
// baseline-placed jobs warm the model organically.
func (s *Server) Warm(ctx context.Context, videos []string) error {
	want := make(map[string]bool)
	var todo []string
	for _, v := range videos {
		if want[v] || s.costOf(v) != nil {
			continue
		}
		want[v] = true
		todo = append(todo, v)
	}
	sort.Strings(todo)
	if len(todo) == 0 {
		return nil
	}
	opts := codec.Defaults()
	base := uarch.Baseline()
	_, err := exec.Pool{Policy: exec.FailFast, Metrics: s.cfg.Metrics}.Map(ctx, len(todo), func(ctx context.Context, i int) error {
		w := s.cfg.Proto
		w.Video = todo[i]
		res, err := core.Run(ctx, core.Job{Workload: w, Options: opts, Config: base})
		if err != nil {
			return fmt.Errorf("serve: warm %s: %w", todo[i], err)
		}
		s.learn(todo[i], res.Report)
		return nil
	})
	return err
}

// splitmix64 is the per-job hash behind deterministic random placement.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
