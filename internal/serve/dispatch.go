package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/backend"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/perf"
	"repro/internal/queue"
	"repro/internal/sched"
	"repro/internal/uarch"
)

// This file is the online dispatcher: the incremental counterpart of the
// paper's one-shot Hungarian placement, split into placement (here) and
// delivery (transport.go / fleet.go). Each cycle it takes the next dequeued
// job, tops the batch up with whatever else is waiting (bounded by the
// free-slot count), and solves the batch×free-slots assignment with the
// same affinity cost model the offline smart scheduler uses — a batch of
// one degenerates to greedy argmax-affinity, a fuller batch recovers the
// regret-aware matching (a job only concedes its best server when another
// job loses more by missing it). Videos without a cached baseline
// characterization fall back to seeded-random placement, the cold-start
// behaviour the random control policy uses for everything.

// run is the dispatcher loop; it exits when ctx cancels or the queue is
// closed and fully drained (including jobs put back by expiring leases).
func (s *Server) run(ctx context.Context) {
	defer close(s.runDone)
	for {
		ticket, err := s.q.Dequeue(ctx)
		if err != nil {
			if errors.Is(err, queue.ErrClosed) && s.waitDrain(ctx) {
				// A lease expired during drain and put its job back: the
				// closed queue has work again, keep dispatching.
				continue
			}
			return // canceled, or closed and drained
		}
		batch := []*queue.Ticket[*record]{ticket}
		var free []slot
		for {
			if !s.transport.waitFree(ctx) {
				// Canceled while no slot was free: the dequeued jobs never
				// ran; settle them so no waiter hangs.
				for _, tk := range batch {
					s.settleCanceled(tk.Payload())
				}
				return
			}
			if free = s.transport.freeSlots(); len(free) > 0 {
				break
			}
			// The slot that woke us vanished (fleet churn); wait again.
		}
		sp := s.met.dispatch.Start()
		for len(batch) < len(free) {
			extra, ok := s.q.TryDequeue()
			if !ok {
				break
			}
			batch = append(batch, extra)
		}
		recs := make([]*record, len(batch))
		for bi, tk := range batch {
			recs[bi] = tk.Payload()
		}
		placements := s.place(recs, free)
		sp.End()
		launched := false
		for bi, tk := range batch {
			p := placements[bi]
			if p.slot < 0 {
				// No placeable slot left for this row; back in line at its
				// original rank.
				s.requeue(tk)
				continue
			}
			launched = true
			s.launch(ctx, tk, free[p.slot], p.mode)
		}
		if !launched {
			// Every row was unplaceable on the current free set (e.g. only
			// accelerator slots are free and the batch needs software).
			// Requeue preserved the jobs; pause briefly so the retry loop
			// doesn't spin hot until a compatible slot frees up.
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// waitDrain parks after the queue reports closed-and-empty: with leases
// still in flight a timeout can requeue work, so "drained" only holds once
// nothing is running AND nothing is queued. Returns true when new work
// appeared (the caller re-enters the dequeue loop), false when drain is
// complete or ctx canceled.
func (s *Server) waitDrain(ctx context.Context) bool {
	if ctx.Done() != nil {
		defer context.AfterFunc(ctx, func() {
			s.flowMu.Lock()
			s.flowCond.Broadcast()
			s.flowMu.Unlock()
		})()
	}
	s.flowMu.Lock()
	defer s.flowMu.Unlock()
	for {
		if s.q.Depth() > 0 {
			return true
		}
		if s.inflight == 0 || ctx.Err() != nil {
			return false
		}
		s.flowCond.Wait()
	}
}

// addInflight tracks dispatched-but-unfinished jobs for drain accounting.
func (s *Server) addInflight(d int) {
	s.flowMu.Lock()
	s.inflight += d
	s.flowCond.Broadcast()
	s.flowMu.Unlock()
}

// utilBias scales worker utilization (percent) into the placement cost
// matrix; see place.
const utilBias = 0.05

// placement pairs a batch entry with its chosen free-slot index and the
// mode the decision was made under.
type placement struct {
	slot int    // index into the free snapshot; -1 = no slot available
	mode string // smart | random | cold
}

// place assigns every batch entry to a distinct slot of the free snapshot.
// len(batch) never exceeds len(free) (run caps the batch), so normally
// every entry gets a slot; -1 rows only appear if that invariant is ever
// loosened.
func (s *Server) place(batch []*record, free []slot) []placement {
	out := make([]placement, len(batch))
	reports := make([]*perf.Report, len(batch))
	for bi, rec := range batch {
		out[bi].slot = -1
		if s.cfg.Policy == PolicySmart {
			if reports[bi] = s.costOf(rec.task.Video); reports[bi] != nil {
				out[bi].mode = "smart"
			} else {
				out[bi].mode = "cold"
			}
		} else {
			out[bi].mode = "random"
		}
	}
	taken := make([]bool, len(free))
	if s.cfg.Policy == PolicySmart {
		var assigned []int
		if s.heteroPlacement(free) {
			// Economic path: mixed backends and/or the cost objective. The
			// matrix is built from predicted seconds (affinity-scaled for
			// software, closed-form for the accelerator), priced when the
			// objective is dollars, with infeasible cells (option surface,
			// quality floor, deadline) masked before the solve.
			specs := make([]backend.ServerSpec, len(free))
			bias := make([]float64, len(free))
			jobs := make([]sched.HeteroJob, len(batch))
			for j, sl := range free {
				specs[j] = sl.spec
				bias[j] = utilBias * sl.util / 100
			}
			for bi, rec := range batch {
				jobs[bi] = s.heteroJob(rec, reports[bi])
			}
			assigned = sched.AssignHetero(jobs, specs, s.accel, s.cfg.Objective, bias)
		} else {
			// Legacy affinity path (software-only fleet, seconds objective):
			// bit-identical to the pre-economic dispatcher.
			configs := make([]uarch.Config, len(free))
			bias := make([]float64, len(free))
			for j, sl := range free {
				configs[j] = sl.cfg
				// Live-load tiebreak: each slot's cost carries a small term from
				// its worker's reported utilization, so equal-affinity choices
				// prefer the idler machine. utilBias spans [0, 0.05] across the
				// 0-100% range — well under typical affinity gaps, so a real
				// bottleneck match still dominates.
				bias[j] = utilBias * sl.util / 100
			}
			assigned = sched.AssignDynamicBiased(reports, configs, bias)
		}
		for bi, j := range assigned {
			if j >= 0 {
				out[bi].slot = j
				taken[j] = true
			} else if out[bi].mode == "smart" {
				// Overload spillover (or every cell masked): this row falls
				// back to the cold (seeded-random) path.
				out[bi].mode = "cold"
			}
		}
	}
	for bi, rec := range batch {
		if out[bi].slot >= 0 {
			continue
		}
		var remaining []int
		for j := range free {
			if !taken[j] && s.executable(rec, free[j].spec) {
				remaining = append(remaining, j)
			}
		}
		if len(remaining) == 0 {
			continue // no compatible slot for this row; it requeues
		}
		// Per-job hash, not a shared RNG stream: the draw depends only on
		// (seed, job sequence), so placement is reproducible regardless of
		// dispatch interleaving.
		j := remaining[int(splitmix64(s.cfg.Seed^rec.seq)%uint64(len(remaining)))]
		out[bi].slot = j
		taken[j] = true
	}
	return out
}

// heteroPlacement reports whether this free snapshot needs the economic
// matrix: always under the cost objective, and whenever an accelerator
// slot is free (the affinity model cannot price or time it).
func (s *Server) heteroPlacement(free []slot) bool {
	if s.cfg.Objective == sched.ObjectiveCost {
		return true
	}
	for _, sl := range free {
		if sl.spec.Backend == backend.Accel {
			return true
		}
	}
	return false
}

// heteroJob projects a record into the economic placement row.
func (s *Server) heteroJob(rec *record, rep *perf.Report) sched.HeteroJob {
	return sched.HeteroJob{
		Report: rep, Opts: rec.opts,
		DeadlineSeconds: rec.deadlineSeconds, QualityFloor: rec.qualityFloor,
		Frames: rec.frames(), Width: rec.pw, Height: rec.ph,
	}
}

// executable reports whether the cold/random fallback may hand rec to a
// slot: the accelerator must accept the job's option surface, quality
// floor and (being exactly predictable) its deadline; software slots take
// anything — a cold software placement is the optimistic bet admission
// already made.
func (s *Server) executable(rec *record, spec backend.ServerSpec) bool {
	job := s.heteroJob(rec, nil)
	if !sched.Feasible(job, spec, s.accel) {
		return false
	}
	if rec.deadlineSeconds > 0 && spec.Backend == backend.Accel {
		if sec, ok := sched.PredictSeconds(nil, spec, s.accel, job.Frames, job.Width, job.Height); ok && sec > rec.deadlineSeconds {
			return false
		}
	}
	return true
}

// launch records the dispatch and hands the job to the transport. A start
// failure (the slot vanished between snapshot and delivery) requeues the
// job instead of failing it — delivery never began, so the attempt is free
// to retry elsewhere.
func (s *Server) launch(ctx context.Context, tk *queue.Ticket[*record], sl slot, mode string) {
	rec := tk.Payload()
	rec.mu.Lock()
	if rec.state == StateDone || rec.state == StateFailed || rec.state == StateCanceled {
		// Settled while queued: a late result from a previous lease beat the
		// requeued ticket through the queue. Nothing to run.
		rec.mu.Unlock()
		return
	}
	rec.state = StateRunning
	rec.server = sl.label
	rec.mode = mode
	rec.attempts++
	first := rec.attempts == 1
	if rec.started.IsZero() {
		rec.started = time.Now()
	}
	rec.mu.Unlock()
	s.met.placed(mode).Inc()
	if rec.parent != nil {
		s.partLaunched(rec, first)
	}
	s.addInflight(1)
	if err := s.transport.start(ctx, sl, tk, func(out outcome) { s.finish(tk, out) }); err != nil {
		s.requeue(tk)
		s.addInflight(-1)
	}
}

// finish is the single completion path for every dispatched attempt,
// called exactly once per successful start.
func (s *Server) finish(tk *queue.Ticket[*record], out outcome) {
	rec := tk.Payload()
	if out.requeue {
		// The attempt died without a result (lease expired, worker lost):
		// back in line at the original rank, then wake the drain waiter —
		// in this order, so drain never observes empty-and-idle in between.
		s.requeue(tk)
		s.addInflight(-1)
		return
	}
	if out.err == nil && out.report != nil && out.config == "baseline" {
		// The fleet learns while serving: any job that ran on a
		// baseline-configured slot doubles as the baseline characterization
		// of its video, warming the cost model for free.
		s.learn(rec.task.Video, out.report)
	}
	s.settle(rec, settlementOf(out))
	s.addInflight(-1)
}

// settlementOf prices one attempt's outcome: the settling attempt's spec
// and simulated seconds yield the job's dollar cost, exactly once because
// requeued attempts carry no outcome.
func settlementOf(out outcome) settlement {
	if out.err != nil {
		return settlement{state: StateFailed, backend: string(out.spec.Backend), err: out.err}
	}
	return settlement{
		state:   StateDone,
		seconds: out.seconds,
		cost:    out.spec.CostCents(out.seconds),
		backend: string(out.spec.Backend),
		class:   out.spec.Label(),
		stream:  out.stream,
	}
}

// requeue re-admits a dispatched-but-unfinished job at its original queue
// rank. Terminal records (a late result settled the job while its requeue
// was racing in) are left alone.
func (s *Server) requeue(tk *queue.Ticket[*record]) {
	rec := tk.Payload()
	rec.mu.Lock()
	if rec.state == StateDone || rec.state == StateFailed || rec.state == StateCanceled {
		rec.mu.Unlock()
		return
	}
	rec.state = StateQueued
	rec.server, rec.mode = "", ""
	rec.mu.Unlock()
	if err := s.q.Requeue(tk); err != nil {
		// The ticket was withdrawn mid-race (client cancellation): settle so
		// no waiter hangs.
		s.settleCanceled(rec)
		return
	}
	s.met.requeues.Inc()
	s.flowMu.Lock()
	s.flowCond.Broadcast()
	s.flowMu.Unlock()
}

// lateSettle handles a result that arrives after its lease expired: the
// job was requeued (and possibly re-dispatched), but the work is done and
// exactly-once settlement wants it. If the requeued ticket is still
// queued, it is withdrawn; if a second attempt is already running, the
// first settle wins at the record and the loser is a no-op. Reports
// whether the result was used.
func (s *Server) lateSettle(tk *queue.Ticket[*record], out outcome) bool {
	rec := tk.Payload()
	rec.mu.Lock()
	terminal := rec.state == StateDone || rec.state == StateFailed || rec.state == StateCanceled
	rec.mu.Unlock()
	if terminal {
		return false
	}
	// Withdraw the requeued ticket if it is still waiting; if it was already
	// re-dispatched this loses the race and the duplicate attempt's own
	// finish becomes the no-op (settle is terminal-once at the record).
	tk.Cancel()
	if out.err == nil && out.report != nil && out.config == "baseline" {
		s.learn(rec.task.Video, out.report)
	}
	s.settle(rec, settlementOf(out))
	return true
}

// settlement is the full terminal description of a record: state and
// simulated seconds as before, plus the economics (dollar cost of the
// settling attempt, backend kind that ran it, deadline verdict) and the
// bitstream when one was requested. Parents aggregate cost and misses
// from their parts before flowing through themselves.
type settlement struct {
	state   JobState
	seconds float64
	cost    float64 // cents, priced from the settling attempt's spec
	miss    bool    // parent-only override: any part missed its deadline
	backend string  // backend kind that executed ("software" / "accel")
	class   string  // capability class label (per-backend job counter key)
	stream  []byte  // encoded bitstream when the record wanted one
	err     error
}

// settle moves a record to a terminal state exactly once and updates the
// outcome counters. Parts of a multi-part job settle into their parent
// instead of the client-facing totals — the parent is the job the client
// submitted, and it flows through here itself once its last part lands.
// Cost is folded into the totals for every client-facing terminal record
// (a failed job still paid for its settling attempt); deadline misses
// count only on completion, since an unfinished job has no service time.
func (s *Server) settle(rec *record, st settlement) {
	rec.mu.Lock()
	if rec.state == StateDone || rec.state == StateFailed || rec.state == StateCanceled {
		rec.mu.Unlock()
		return
	}
	rec.state = st.state
	rec.finished = time.Now()
	rec.seconds = st.seconds
	rec.costCents = st.cost
	rec.backendName = st.backend
	if st.stream != nil && rec.wantStream {
		rec.stream = st.stream
	}
	miss := st.miss
	if st.state == StateDone && len(rec.parts) == 0 &&
		rec.deadlineSeconds > 0 && st.seconds > rec.deadlineSeconds {
		// Deadlines bound per-placed-unit service time; a parent's seconds
		// is the sum over parallel parts, so its verdict comes from st.miss
		// (any part missed), set by the finalizing partSettled call.
		miss = true
	}
	rec.deadlineMiss = miss
	if st.err != nil {
		rec.errMsg = st.err.Error()
	}
	enq := rec.enq
	errMsg := rec.errMsg
	rec.mu.Unlock()

	if st.state == StateDone && st.class != "" {
		// Execution units only (parts and plain jobs): parents never carry a
		// class, so the per-backend job counter counts actual encodes.
		s.met.backendJobs(st.class).Inc()
	}

	if rec.parent != nil {
		if st.state == StateDone {
			s.met.partsCompleted.Inc()
		}
		close(rec.done)
		s.partSettled(rec, st.state, st.seconds, st.cost, miss, errMsg)
		return
	}

	s.met.sojourn.ObserveSince(enq)
	s.totMu.Lock()
	s.totals.CostCents += st.cost
	s.met.costMicro.Add(int64(st.cost*1e6 + 0.5))
	switch st.state {
	case StateDone:
		s.met.completed.Inc()
		s.met.simMs.Add(int64(st.seconds * 1e3))
		s.totals.Completed++
		s.totals.SimSeconds += st.seconds
		if miss {
			s.met.deadlineMiss.Inc()
			s.totals.DeadlineMisses++
		}
	case StateFailed:
		s.met.failed.Inc()
		s.totals.Failed++
	case StateCanceled:
		s.met.canceled.Inc()
		s.totals.Canceled++
	}
	s.totMu.Unlock()
	close(rec.done)
}

// partLaunched folds one part dispatch into its parent: the first part to
// start moves the parent to running, and the moment every part has been
// dispatched at least once the fan-out latency is observed (requeued
// re-dispatches don't re-count).
func (s *Server) partLaunched(rec *record, first bool) {
	p := rec.parent
	p.mu.Lock()
	if p.state == StateQueued {
		p.state = StateRunning
		p.started = time.Now()
	}
	fannedOut := false
	if first {
		p.partsLaunched++
		fannedOut = p.partsLaunched == len(p.parts)
	}
	enq := p.enq
	p.mu.Unlock()
	if fannedOut {
		s.met.fanout.ObserveSince(enq)
	}
}

// partSettled folds one terminal part into its parent record. The caller
// holds no locks. Exactly one call observes the parent complete (partsTerm
// reaches len(parts) once), and that call settles the parent: done only if
// every part completed, failed on any part failure (the first failure also
// withdraws still-queued siblings — running parts finish and settle
// normally), canceled when cancellation emptied the graph without a
// failure.
func (s *Server) partSettled(rec *record, state JobState, seconds, cost float64, miss bool, errMsg string) {
	p := rec.parent
	p.mu.Lock()
	p.partsTerm++
	p.partsCost += cost
	if miss {
		p.partsMissed++
	}
	switch state {
	case StateDone:
		p.partsDone++
		p.partsSeconds += seconds
		if p.firstDone.IsZero() {
			p.firstDone = time.Now()
		}
	case StateFailed:
		p.partsFailed++
		if p.partErr == "" {
			p.partErr = rec.id + ": " + errMsg
		}
	case StateCanceled:
		p.partsCanceled++
	}
	firstFailure := state == StateFailed && p.partsFailed == 1
	finished := p.partsTerm == len(p.parts)
	var siblings []*record
	if firstFailure && !finished {
		siblings = append(siblings, p.parts...)
	}
	failed, canceled, missed := p.partsFailed, p.partsCanceled, p.partsMissed
	sum, costSum := p.partsSeconds, p.partsCost
	partErr, firstDone := p.partErr, p.firstDone
	p.mu.Unlock()

	// Fail fast: withdraw queued siblings. Each successful cancellation
	// settles that part, re-entering partSettled; the invocation that
	// brings partsTerm to len(parts) — possibly one of these nested calls —
	// finalizes the parent.
	for _, sib := range siblings {
		if sib != rec && sib.ticket.Cancel() {
			s.settleCanceled(sib)
		}
	}
	if !finished {
		return
	}
	if !firstDone.IsZero() {
		s.met.stitch.ObserveSince(firstDone)
	}
	switch {
	case failed > 0:
		s.settle(p, settlement{state: StateFailed, seconds: sum, cost: costSum,
			err: fmt.Errorf("serve: %d of %d parts failed; first: %s", failed, len(p.parts), partErr)})
	case canceled > 0:
		s.settle(p, settlement{state: StateCanceled, seconds: sum, cost: costSum, err: context.Canceled})
	default:
		s.settle(p, settlement{state: StateDone, seconds: sum, cost: costSum, miss: missed > 0})
	}
}

// settleCanceled marks a withdrawn job (its queue ticket was canceled
// before dispatch).
func (s *Server) settleCanceled(rec *record) {
	s.settle(rec, settlement{state: StateCanceled, err: context.Canceled})
}

// --- characterization cost model ------------------------------------------------

// costOf returns the cached baseline characterization of a video, or nil
// when the cache is cold.
func (s *Server) costOf(video string) *perf.Report {
	s.costMu.Lock()
	defer s.costMu.Unlock()
	return s.costs[video]
}

// learn stores a baseline characterization (first writer wins, keeping the
// model stable once warm).
func (s *Server) learn(video string, rep *perf.Report) {
	s.costMu.Lock()
	if _, ok := s.costs[video]; !ok {
		s.costs[video] = rep
	}
	s.costMu.Unlock()
}

// Warm profiles the given videos on the baseline configuration with the
// paper's default options (medium, crf 23) and fills the cost cache,
// fanning out on the shared execution engine. The model is keyed by video
// only — content dominates the bottleneck mix — so one profile per video
// serves every (crf, refs, preset) a job may carry. Duplicate and
// already-warm videos are skipped. Typically called at startup with the
// expected catalog; without it the dispatcher serves cold (random) until
// baseline-placed jobs warm the model organically.
func (s *Server) Warm(ctx context.Context, videos []string) error {
	want := make(map[string]bool)
	var todo []string
	for _, v := range videos {
		if want[v] || s.costOf(v) != nil {
			continue
		}
		want[v] = true
		todo = append(todo, v)
	}
	sort.Strings(todo)
	if len(todo) == 0 {
		return nil
	}
	opts := codec.Defaults()
	base := uarch.Baseline()
	_, err := exec.Pool{Policy: exec.FailFast, Metrics: s.cfg.Metrics}.Map(ctx, len(todo), func(ctx context.Context, i int) error {
		w := s.cfg.Proto
		w.Video = todo[i]
		res, err := core.Run(ctx, core.Job{Workload: w, Options: opts, Config: base})
		if err != nil {
			return fmt.Errorf("serve: warm %s: %w", todo[i], err)
		}
		s.learn(todo[i], res.Report)
		return nil
	})
	return err
}

// splitmix64 is the per-job hash behind deterministic random placement.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
