package serve

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Comparison is the smart-vs-random serving outcome over one task sequence
// on one pool: the online analogue of sched.Evaluate's offline comparison.
type Comparison struct {
	Smart  Totals `json:"smart"`
	Random Totals `json:"random"`
}

// Delta is the completed-work advantage of characterization-driven
// placement: the fraction of fleet service time the random policy spends
// that smart does not. Positive means smart finished the same jobs in
// fewer fleet-seconds, i.e. freed that share of capacity.
func (c Comparison) Delta() float64 {
	if c.Random.SimSeconds == 0 {
		return 0
	}
	return (c.Random.SimSeconds - c.Smart.SimSeconds) / c.Random.SimSeconds
}

// RunComparison serves the same task sequence twice over the same pool —
// once under smart placement with a pre-warmed cost model, once under the
// random control. The loop is closed (submit, wait for completion, submit
// the next), so every placement decision sees the whole fleet free: the
// outcome depends only on (pool, tasks, seed), making the comparison
// deterministic and assertable in tests.
func RunComparison(ctx context.Context, pool sched.Pool, tasks []sched.Task, proto core.Workload, seed uint64) (Comparison, error) {
	var out Comparison
	smart, err := runClosedLoop(ctx, pool, tasks, proto, seed, PolicySmart)
	if err != nil {
		return out, err
	}
	random, err := runClosedLoop(ctx, pool, tasks, proto, seed, PolicyRandom)
	if err != nil {
		return out, err
	}
	out.Smart, out.Random = smart, random
	return out, nil
}

// CostComparison is the dollars-vs-fleet-seconds outcome of serving one
// task sequence over one heterogeneous fleet under each objective.
type CostComparison struct {
	Seconds Totals `json:"seconds"` // placement minimized fleet service time
	Cost    Totals `json:"cost"`    // placement minimized dollars
}

// Savings is the fraction of the seconds-objective bill the cost objective
// avoids at equal work completed.
func (c CostComparison) Savings() float64 {
	if c.Seconds.CostCents == 0 {
		return 0
	}
	return (c.Seconds.CostCents - c.Cost.CostCents) / c.Seconds.CostCents
}

// RunCostComparison serves the same task sequence twice over the same
// heterogeneous fleet — once minimizing fleet-seconds, once minimizing
// dollars — with the cost model pre-warmed both times. The loop is closed
// like RunComparison, so the outcome depends only on (fleet, tasks, seed).
func RunCostComparison(ctx context.Context, fleet sched.Fleet, tasks []sched.Task, proto core.Workload, seed uint64) (CostComparison, error) {
	var out CostComparison
	secs, err := runClosedLoopFleet(ctx, fleet, tasks, proto, seed, sched.ObjectiveSeconds)
	if err != nil {
		return out, err
	}
	cost, err := runClosedLoopFleet(ctx, fleet, tasks, proto, seed, sched.ObjectiveCost)
	if err != nil {
		return out, err
	}
	out.Seconds, out.Cost = secs, cost
	return out, nil
}

func runClosedLoopFleet(ctx context.Context, fleet sched.Fleet, tasks []sched.Task, proto core.Workload, seed uint64, obj sched.Objective) (Totals, error) {
	s, err := New(Config{
		Servers: fleet, Objective: obj, Policy: PolicySmart, Workers: 1,
		Proto: proto, Seed: seed, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		return Totals{}, err
	}
	videos := make([]string, len(tasks))
	for i, t := range tasks {
		videos[i] = t.Video
	}
	if err := s.Warm(ctx, videos); err != nil {
		return Totals{}, err
	}
	s.Start(ctx)
	defer s.Stop()
	for _, t := range tasks {
		view, err := s.Submit(ctx, JobRequest{
			Video: t.Video, CRF: t.CRF, Refs: t.Refs, Preset: string(t.Preset),
		})
		if err != nil {
			return Totals{}, fmt.Errorf("serve: cost compare submit %s: %w", t.Video, err)
		}
		final, err := s.WaitJob(ctx, view.ID)
		if err != nil {
			return Totals{}, err
		}
		if final.State != StateDone {
			return Totals{}, fmt.Errorf("serve: cost compare job %s ended %s: %s", final.ID, final.State, final.Error)
		}
	}
	return s.Totals(), nil
}

func runClosedLoop(ctx context.Context, pool sched.Pool, tasks []sched.Task, proto core.Workload, seed uint64, pol Policy) (Totals, error) {
	s, err := New(Config{
		Pool: pool, Policy: pol, Workers: 1, Proto: proto, Seed: seed,
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		return Totals{}, err
	}
	if pol == PolicySmart {
		videos := make([]string, len(tasks))
		for i, t := range tasks {
			videos[i] = t.Video
		}
		if err := s.Warm(ctx, videos); err != nil {
			return Totals{}, err
		}
	}
	s.Start(ctx)
	defer s.Stop()
	for _, t := range tasks {
		view, err := s.Submit(ctx, JobRequest{
			Video: t.Video, CRF: t.CRF, Refs: t.Refs, Preset: string(t.Preset),
		})
		if err != nil {
			return Totals{}, fmt.Errorf("serve: compare submit %s: %w", t.Video, err)
		}
		final, err := s.WaitJob(ctx, view.ID)
		if err != nil {
			return Totals{}, err
		}
		if final.State != StateDone {
			return Totals{}, fmt.Errorf("serve: compare job %s ended %s: %s", final.ID, final.State, final.Error)
		}
	}
	return s.Totals(), nil
}
