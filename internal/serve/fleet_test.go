package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// The fleet tests drive the worker protocol at the wire level (raw HTTP,
// no internal/worker) so crashes and races are fully scripted: a "worker"
// here is just a test goroutine that polls, then misbehaves exactly as the
// scenario demands. The end-to-end tests with real workers live in
// internal/worker (which imports this package; the reverse would cycle).

// fleetHarness is one orchestrator in fleet mode behind a real listener.
type fleetHarness struct {
	s      *Server
	reg    *obs.Registry
	ts     *httptest.Server
	cancel context.CancelFunc
}

func newFleetHarness(t *testing.T, ttl time.Duration) *fleetHarness {
	t.Helper()
	reg := obs.NewRegistry()
	s, err := New(Config{
		Proto: tinyProto, Seed: 1, Metrics: reg,
		Fleet: &FleetOptions{LeaseTTL: ttl, PollWait: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	h := &fleetHarness{s: s, reg: reg, ts: ts, cancel: cancel}
	t.Cleanup(func() {
		// Cancel before Stop: scenarios deliberately leave jobs stranded on
		// dead workers, and a graceful drain would wait for them forever.
		cancel()
		s.Stop()
		ts.Close()
	})
	return h
}

func (h *fleetHarness) counter(name string) int64 {
	return h.reg.Snapshot().CounterTotal(name)
}

// protoWorker is a scripted wire-level worker. The zero values of the
// capability fields (backend/price/spot) advertise a default-priced
// on-demand software worker, matching the pre-economic protocol.
type protoWorker struct {
	t       *testing.T
	base    string
	id      string
	cfg     string
	backend string
	price   float64
	spot    bool
}

func (w *protoWorker) post(path string, body, out any) int {
	w.t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		w.t.Fatal(err)
	}
	resp, err := http.Post(w.base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		w.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			w.t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// poll blocks like a real worker's long poll; ok is false on 204.
func (w *protoWorker) poll() (Assignment, bool) {
	w.t.Helper()
	var a Assignment
	req := PollRequest{
		WorkerID: w.id, Config: w.cfg,
		Backend: w.backend, PriceCentsHour: w.price, Spot: w.spot,
	}
	switch code := w.post("/fleet/poll", req, &a); code {
	case http.StatusOK:
		return a, true
	case http.StatusNoContent:
		return Assignment{}, false
	default:
		w.t.Fatalf("poll: unexpected status %d", code)
		return Assignment{}, false
	}
}

func (w *protoWorker) beat(lease string) HeartbeatReply {
	w.t.Helper()
	var reply HeartbeatReply
	hb := Heartbeat{
		WorkerID: w.id, Config: w.cfg, LeaseID: lease, Busy: lease != "",
		Backend: w.backend, PriceCentsHour: w.price, Spot: w.spot,
	}
	if code := w.post("/fleet/heartbeat", hb, &reply); code != http.StatusOK {
		w.t.Fatalf("heartbeat: unexpected status %d", code)
	}
	return reply
}

func (w *protoWorker) result(a Assignment, seconds float64, errMsg string) ResultReply {
	w.t.Helper()
	var reply ResultReply
	rep := ResultReport{WorkerID: w.id, LeaseID: a.LeaseID, JobID: a.JobID, Seconds: seconds, Error: errMsg}
	if code := w.post("/fleet/result", rep, &reply); code != http.StatusOK {
		w.t.Fatalf("result: unexpected status %d", code)
	}
	return reply
}

func waitUntil(t *testing.T, d time.Duration, what string, f func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if f() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFleetLeaseExpiryLateResultSettles covers the requeue path and one
// side of the result-vs-expiry race: the worker goes silent, its lease
// expires and the job is requeued; then the presumed-dead worker's result
// arrives with no second attempt running — the late result must settle the
// job (exactly once) and withdraw the requeued ticket.
func TestFleetLeaseExpiryLateResultSettles(t *testing.T) {
	h := newFleetHarness(t, 150*time.Millisecond)
	w1 := &protoWorker{t: t, base: h.ts.URL, id: "w1", cfg: "baseline"}

	view, err := h.s.Submit(context.Background(), JobRequest{Video: "bbb"})
	if err != nil {
		t.Fatal(err)
	}
	a, ok := w1.poll()
	if !ok {
		t.Fatal("poll returned no assignment")
	}
	if a.JobID != view.ID {
		t.Fatalf("assignment for %s, want %s", a.JobID, view.ID)
	}
	// Silence: no heartbeat, no result. The lease must expire and requeue.
	waitUntil(t, 3*time.Second, "lease reassignment", func() bool {
		return h.counter("fleet_lease_reassigned") >= 1
	})
	if got, _ := h.s.Job(view.ID); got.State != StateQueued {
		t.Fatalf("after expiry job state %s, want %s", got.State, StateQueued)
	}
	if got := h.counter("serve_requeues"); got != 1 {
		t.Fatalf("serve_requeues %d, want 1", got)
	}
	if got := h.counter("queue_requeued"); got != 1 {
		t.Fatalf("queue_requeued %d, want 1", got)
	}

	// A heartbeat naming the dead lease must be told it lost it.
	if reply := w1.beat(a.LeaseID); reply.LeaseValid {
		t.Fatal("heartbeat validated an expired lease")
	}

	// The late result lands with no retry running: it settles the job.
	reply := w1.result(a, 2.5, "")
	if !reply.Accepted || reply.Reason != "late" {
		t.Fatalf("late result reply %+v, want accepted/late", reply)
	}
	final, err := h.s.WaitJob(context.Background(), view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.SimSeconds != 2.5 {
		t.Fatalf("final %+v, want done @2.5s", final)
	}
	if tot := h.s.Totals(); tot.Completed != 1 || tot.Failed != 0 || tot.Canceled != 0 {
		t.Fatalf("totals %+v, want exactly one completion", tot)
	}
	if got := h.counter("fleet_results_late"); got != 1 {
		t.Fatalf("fleet_results_late %d, want 1", got)
	}
}

// TestFleetLateResultLosesToRetry covers the other side of the race: the
// lease expires, a second worker re-runs and settles the job, and only
// then does the first worker's result crawl in — it must be discarded, and
// the job must settle exactly once with the retry's outcome.
func TestFleetLateResultLosesToRetry(t *testing.T) {
	h := newFleetHarness(t, 150*time.Millisecond)
	w1 := &protoWorker{t: t, base: h.ts.URL, id: "w1", cfg: "baseline"}
	w2 := &protoWorker{t: t, base: h.ts.URL, id: "w2", cfg: "baseline"}

	view, err := h.s.Submit(context.Background(), JobRequest{Video: "bbb"})
	if err != nil {
		t.Fatal(err)
	}
	a1, ok := w1.poll()
	if !ok {
		t.Fatal("w1 got no assignment")
	}
	waitUntil(t, 3*time.Second, "lease reassignment", func() bool {
		return h.counter("fleet_lease_reassigned") >= 1
	})
	// w2 picks up the requeued job and completes it.
	a2, ok := w2.poll()
	if !ok {
		t.Fatal("w2 got no assignment after requeue")
	}
	if a2.JobID != view.ID || a2.LeaseID == a1.LeaseID {
		t.Fatalf("retry assignment %+v, want same job under a fresh lease (first %+v)", a2, a1)
	}
	if reply := w2.result(a2, 4.0, ""); !reply.Accepted {
		t.Fatalf("retry result rejected: %+v", reply)
	}
	final, err := h.s.WaitJob(context.Background(), view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.SimSeconds != 4.0 {
		t.Fatalf("final %+v, want done @4.0s (the retry's result)", final)
	}
	if final.Attempts != 2 || final.Server != "w2" {
		t.Fatalf("final attempts %d on %q, want 2 on w2", final.Attempts, final.Server)
	}

	// Now the original worker's result arrives: too late, must not
	// double-settle. Depending on whether the monitor GC'd the superseded
	// lease yet, the reply is late_discarded or unknown_lease — rejected
	// either way.
	if reply := w1.result(a1, 9.9, ""); reply.Accepted {
		t.Fatalf("stale result accepted: %+v", reply)
	}
	if got, _ := h.s.Job(view.ID); got.SimSeconds != 4.0 {
		t.Fatalf("job overwritten by stale result: %+v", got)
	}
	if tot := h.s.Totals(); tot.Completed != 1 {
		t.Fatalf("totals %+v, want exactly one completion", tot)
	}
}

// TestFleetRejoinReclaimsOrphanedJob is the crash-and-rejoin path: a
// worker takes a job, "crashes", and a fresh process under the same id
// polls again. The orchestrator must treat the poll as a disclaimer of the
// old lease — the orphaned job requeues immediately (no TTL wait) and is
// redelivered.
func TestFleetRejoinReclaimsOrphanedJob(t *testing.T) {
	h := newFleetHarness(t, 10*time.Second) // TTL long: only the rejoin can free the job
	w1 := &protoWorker{t: t, base: h.ts.URL, id: "w1", cfg: "fe_op"}

	view, err := h.s.Submit(context.Background(), JobRequest{Video: "bbb"})
	if err != nil {
		t.Fatal(err)
	}
	a1, ok := w1.poll()
	if !ok {
		t.Fatal("w1 got no assignment")
	}
	// Crash, restart, poll again: the same id shows up idle.
	a2, ok := w1.poll()
	if !ok {
		t.Fatal("rejoined worker got no assignment")
	}
	if a2.JobID != view.ID || a2.LeaseID == a1.LeaseID {
		t.Fatalf("rejoin assignment %+v, want same job under a fresh lease", a2)
	}
	if got := h.counter("fleet_lease_reassigned"); got != 1 {
		t.Fatalf("fleet_lease_reassigned %d, want 1", got)
	}
	if reply := w1.result(a2, 1.0, ""); !reply.Accepted {
		t.Fatalf("result rejected: %+v", reply)
	}
	final, err := h.s.WaitJob(context.Background(), view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Attempts != 2 {
		t.Fatalf("final %+v, want done after 2 attempts", final)
	}
}

// TestFleetDuplicateResultIsIdempotent: a worker retrying its result post
// (e.g. after a network blip ate the first reply) must not double-settle.
func TestFleetDuplicateResultIsIdempotent(t *testing.T) {
	h := newFleetHarness(t, 10*time.Second)
	w1 := &protoWorker{t: t, base: h.ts.URL, id: "w1", cfg: "baseline"}

	view, err := h.s.Submit(context.Background(), JobRequest{Video: "bbb"})
	if err != nil {
		t.Fatal(err)
	}
	a, ok := w1.poll()
	if !ok {
		t.Fatal("no assignment")
	}
	if reply := w1.result(a, 3.0, ""); !reply.Accepted {
		t.Fatalf("first result rejected: %+v", reply)
	}
	// The retry is either recognized as a duplicate (lease still cached) or
	// rejected as unknown (monitor GC'd it); it must never settle again.
	reply := w1.result(a, 3.0, "")
	if reply.Accepted && reply.Reason != "duplicate" {
		t.Fatalf("duplicate reply %+v", reply)
	}
	if tot := h.s.Totals(); tot.Completed != 1 {
		t.Fatalf("totals %+v, want exactly one completion", tot)
	}
	if _, err := h.s.WaitJob(context.Background(), view.ID); err != nil {
		t.Fatal(err)
	}
}

// TestFleetHealthAndRegistration: heartbeats register workers idempotently
// and surface per-worker telemetry in /healthz and labeled gauges.
func TestFleetHealthAndRegistration(t *testing.T) {
	h := newFleetHarness(t, 5*time.Second)
	w1 := &protoWorker{t: t, base: h.ts.URL, id: "w1", cfg: "baseline"}
	for i := 0; i < 3; i++ { // re-registration must not duplicate
		w1.beat("")
	}
	if reply := w1.beat("lease-nonexistent"); reply.LeaseValid {
		t.Fatal("unknown lease reported valid")
	}

	resp, err := http.Get(h.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body healthBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !body.Fleet || body.PoolSize != 1 || len(body.Workers) != 1 {
		t.Fatalf("healthz %+v, want fleet with exactly worker w1", body)
	}
	if w := body.Workers[0]; w.ID != "w1" || w.Config != "baseline" || w.Busy {
		t.Fatalf("worker view %+v", w)
	}
	if g, ok := h.reg.Snapshot().Gauges["fleet_workers"]; !ok || g != 1 {
		t.Fatalf("fleet_workers gauge %d (present %v), want 1", g, ok)
	}
}

// TestHTTPHardening: wrong methods get JSON 405s with an Allow header, and
// oversized bodies get a JSON 413 — on the job API and the fleet endpoints.
func TestHTTPHardening(t *testing.T) {
	h := newFleetHarness(t, 5*time.Second)

	for _, path := range []string{"/jobs", "/fleet/heartbeat", "/fleet/poll", "/fleet/result"} {
		resp, err := http.Get(h.ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatalf("GET %s: non-JSON error body: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodPost {
			t.Fatalf("GET %s: status %d allow %q, want 405 allowing POST", path, resp.StatusCode, resp.Header.Get("Allow"))
		}
		if eb.Reason != "method" {
			t.Fatalf("GET %s: reason %q, want method", path, eb.Reason)
		}
	}

	huge := `{"video":"` + strings.Repeat("x", maxRequestBody+1) + `"}`
	for _, path := range []string{"/jobs", "/fleet/heartbeat"} {
		resp, err := http.Post(h.ts.URL+path, "application/json", strings.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatalf("POST %s oversized: non-JSON error body: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge || eb.Reason != "too_large" {
			t.Fatalf("POST %s oversized: status %d reason %q, want 413/too_large", path, resp.StatusCode, eb.Reason)
		}
	}

	// Garbage JSON is a 400 with a JSON body, not a silent 500.
	resp, err := http.Post(h.ts.URL+"/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("bad JSON: non-JSON error body: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || eb.Error == "" {
		t.Fatalf("bad JSON: status %d body %+v, want 400 with error", resp.StatusCode, eb)
	}
}
