package serve

import "repro/internal/perf"

// Wire types of the orchestrator <-> worker protocol (DESIGN.md §11),
// shared with internal/worker. All ride as JSON over the orchestrator's
// HTTP mux, modeled on the pull-based heartbeat/job-request design of
// production transcode workers: heartbeats carry capability + utilization,
// workers request work only when idle.
//
//	POST /fleet/heartbeat  Heartbeat    -> HeartbeatReply
//	POST /fleet/poll       PollRequest  -> 200 Assignment | 204 no work
//	POST /fleet/result     ResultReport -> ResultReply

// Heartbeat is the worker's periodic liveness + telemetry message. Every
// heartbeat doubles as (re-)registration — a worker that crashed and
// restarted under the same id is simply upserted, so rejoining needs no
// dedicated handshake.
type Heartbeat struct {
	WorkerID string `json:"worker_id"`
	// Config is the worker's uarch configuration name — its capability
	// metadata, driving characterization-based placement. Ignored (and may
	// be empty) when Backend is "accel".
	Config string `json:"config"`
	// Backend is the worker's encoder class ("software" default, or
	// "accel" for a fixed-function accelerator); with PriceCentsHour and
	// Spot it forms the worker's economic capability, feeding cost-aware
	// placement. Zero price resolves to the class default server-side.
	Backend        string  `json:"backend,omitempty"`
	PriceCentsHour float64 `json:"price_cents_hour,omitempty"`
	Spot           bool    `json:"spot,omitempty"`
	Busy           bool    `json:"busy"`
	// LeaseID names the lease the worker believes it holds; carrying it
	// renews the lease's expiry.
	LeaseID        string  `json:"lease_id,omitempty"`
	UtilizationPct float64 `json:"utilization_pct"`
	JobsDone       int64   `json:"jobs_done"`
}

// HeartbeatReply acknowledges a heartbeat. LeaseValid echoes whether the
// reported lease is still the worker's own: false means it expired and was
// reassigned, so the worker should abandon the job (a late result would be
// reconciled server-side, but the cycles are wasted).
type HeartbeatReply struct {
	OK         bool `json:"ok"`
	LeaseValid bool `json:"lease_valid"`
}

// PollRequest asks for one job; the request parks server-side (long poll)
// until work is assigned or the poll window lapses. Polling also upserts
// the worker, and — because a worker only polls when idle — implicitly
// disclaims any lease the orchestrator still holds for it, releasing the
// orphaned job back to the queue immediately instead of waiting out the
// lease TTL.
type PollRequest struct {
	WorkerID string `json:"worker_id"`
	Config   string `json:"config"`
	// Backend/PriceCentsHour/Spot mirror the Heartbeat capability fields,
	// so a poll-first worker is registered with its full spec.
	Backend        string  `json:"backend,omitempty"`
	PriceCentsHour float64 `json:"price_cents_hour,omitempty"`
	Spot           bool    `json:"spot,omitempty"`
}

// Assignment is one leased job: the task parameters plus the workload
// prototype the orchestrator applies to every job, so workers need no
// local configuration beyond their uarch config.
type Assignment struct {
	LeaseID string `json:"lease_id"`
	JobID   string `json:"job_id"`
	Video   string `json:"video"`
	CRF     int    `json:"crf"`
	Refs    int    `json:"refs"`
	Preset  string `json:"preset"`
	Frames  int    `json:"frames,omitempty"`
	Scale   int    `json:"scale,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	// SegStart/SegEnd bound the frame range this job encodes ([start, end);
	// both zero: the whole clip) — one segment of a segment-parallel
	// fan-out. The decode half still covers the whole mezzanine, so segment
	// jobs share the worker's decode and analysis caches with their
	// siblings.
	SegStart int `json:"seg_start,omitempty"`
	SegEnd   int `json:"seg_end,omitempty"`
	// Rung names the ABR-ladder rendition this job belongs to (logs and
	// worker-side observability; placement does not read it).
	Rung string `json:"rung,omitempty"`
	// WantStream asks the worker to return the encoded bitstream in its
	// ResultReport (segment parts of a stitchable rendition).
	WantStream bool `json:"want_stream,omitempty"`
	// LeaseTTLMs is how long the lease survives without a heartbeat
	// renewing it; the worker must heartbeat well inside this window. With
	// adaptive leases the value reflects the TTL at assignment time.
	LeaseTTLMs int64 `json:"lease_ttl_ms"`
}

// ResultReport streams one finished job back.
type ResultReport struct {
	WorkerID string  `json:"worker_id"`
	LeaseID  string  `json:"lease_id"`
	JobID    string  `json:"job_id"`
	Seconds  float64 `json:"seconds"`
	Error    string  `json:"error,omitempty"`
	// Topdown carries the measured profile so jobs run on
	// baseline-configured workers feed the orchestrator's cost model
	// exactly like loopback executions do. Accelerator workers produce no
	// profile (their encode bypasses the uarch simulation).
	Topdown *perf.Topdown `json:"topdown,omitempty"`
	// Stream is the encoded bitstream, present only when the assignment
	// set WantStream (base64 on the wire via encoding/json).
	Stream []byte `json:"stream,omitempty"`
}

// ResultReply tells the worker whether its result settled the job.
// Accepted is true for the settling result AND for safe duplicates
// (retries, superseded-but-reconciled) — any reply that means "stop
// retrying"; Reason says which.
type ResultReply struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
}

// WorkerView is the per-worker slice of GET /healthz in fleet mode.
type WorkerView struct {
	ID             string  `json:"id"`
	Config         string  `json:"config"`
	Backend        string  `json:"backend,omitempty"`
	PriceCentsHour float64 `json:"price_cents_hour,omitempty"`
	Spot           bool    `json:"spot,omitempty"`
	Busy           bool    `json:"busy"`
	Parked         bool    `json:"parked"` // an idle long-poll is waiting for work
	Gone           bool    `json:"gone,omitempty"`
	JobsDone       int64   `json:"jobs_done"`
	UtilizationPct float64 `json:"utilization_pct"`
	LastBeatMs     int64   `json:"last_heartbeat_ms"` // age of the last message
	Lease          string  `json:"lease,omitempty"`
}

// topdownReport rebuilds the minimal perf.Report the affinity cost model
// needs from a wire Topdown (sched.Affinity only reads the topdown split).
func topdownReport(config string, seconds float64, td *perf.Topdown) *perf.Report {
	if td == nil {
		return nil
	}
	return &perf.Report{Config: config, Seconds: seconds, Topdown: *td}
}
