package serve

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/queue"
	"repro/internal/sched"
	"repro/internal/uarch"
)

// This file is the transport half of the dispatcher split: the dispatcher
// (dispatch.go) owns admission, ordering and placement; a transport owns
// delivery and completion. Two transports exist: the in-process loopback
// below (the PR-5 behaviour, kept so RunComparison and single-process
// deployments work unchanged) and the networked pull-based worker fleet
// (fleet.go).

// slot is one free execution slot the dispatcher can place onto. Slots are
// snapshots: a fleet slot can vanish between Free and Start (the worker
// crashed or its poll timed out), which Start reports as an error so the
// dispatcher requeues instead of losing the job.
type slot struct {
	id    string       // transport-unique slot key
	label string       // what JobView.Server reports (config name / worker id)
	cfg   uarch.Config // capability metadata driving placement
	// spec is the slot's full economic capability: backend kind, uarch
	// config, hourly price, spot flag. cfg duplicates spec.Config for the
	// legacy affinity path.
	spec backend.ServerSpec
	// util is the slot's reported utilization percent (fleet heartbeats;
	// loopback slots are dedicated simulated servers and report 0). The
	// dispatcher folds it into placement as a load-spreading tiebreak.
	util float64
}

// outcome is the terminal report of one dispatched attempt.
type outcome struct {
	seconds float64
	report  *perf.Report // full profile when the executor measured one
	config  string       // configuration name the attempt ran on
	// spec is the executing server's capability; the settling attempt's
	// spec prices the job (cost = seconds × price), which is what makes
	// cost accounting exactly-once — requeued attempts carry no outcome.
	spec    backend.ServerSpec
	stream  []byte // encoded bitstream when the record wanted one
	err     error
	requeue bool // the attempt died without a result: re-admit, don't fail
}

// transport abstracts how placed jobs execute.
type transport interface {
	// open starts the transport's background machinery under ctx.
	open(ctx context.Context)
	// size is the current fleet size (servers, or registered live workers).
	size() int
	// freeSlots snapshots the currently idle slots in deterministic order.
	freeSlots() []slot
	// classes snapshots the distinct live capability classes (one spec per
	// label) for deadline-admission checks; empty means no capability is
	// known yet and admission stays optimistic.
	classes() []backend.ServerSpec
	// waitFree blocks until at least one slot is free; false means ctx won.
	waitFree(ctx context.Context) bool
	// start hands one placed job to the identified slot. finish is called
	// exactly once with the outcome — unless start itself returns an error
	// (the slot vanished between freeSlots and start), in which case the
	// job was never delivered and finish is never called.
	start(ctx context.Context, sl slot, tk *queue.Ticket[*record], finish func(outcome)) error
	// close stops the transport; loopback waits for in-flight jobs.
	close()
}

// --- loopback -------------------------------------------------------------------

// loopback is the in-process transport: the fleet is simulated by running
// every placed job through core.Run on the shared exec stream, one busy
// flag per configured server. It is the transport behind RunComparison and
// any serve instance without Fleet options.
type loopback struct {
	pool    sched.Pool
	fleet   sched.Fleet // per-server specs, aligned with pool indices
	accel   backend.AccelModel
	workers int
	proto   core.Workload
	metrics *obs.Registry
	busySrv *obs.Gauge

	stream *exec.Stream

	mu   sync.Mutex
	cond *sync.Cond
	busy []bool
	free int
}

func newLoopback(cfg Config, reg *obs.Registry) *loopback {
	l := &loopback{
		pool:    cfg.Servers.Configs(),
		fleet:   cfg.Servers,
		accel:   backend.DefaultAccel(),
		workers: cfg.Workers,
		proto:   cfg.Proto,
		metrics: reg,
		busySrv: reg.Gauge("serve_busy_servers"),
		busy:    make([]bool, len(cfg.Servers)),
		free:    len(cfg.Servers),
	}
	l.cond = sync.NewCond(&l.mu)
	return l
}

func (l *loopback) open(ctx context.Context) {
	l.stream = exec.Pool{Workers: l.workers, Metrics: l.metrics}.Stream(ctx)
}

func (l *loopback) size() int { return len(l.pool) }

func (l *loopback) freeSlots() []slot {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []slot
	for i, b := range l.busy {
		if !b {
			out = append(out, slot{
				id: "local-" + itoa(i), label: l.fleet[i].Label(),
				cfg: l.pool[i], spec: l.fleet[i],
			})
		}
	}
	return out
}

func (l *loopback) classes() []backend.ServerSpec {
	seen := make(map[string]bool)
	var out []backend.ServerSpec
	for _, spec := range l.fleet {
		if !seen[spec.Label()] {
			seen[spec.Label()] = true
			out = append(out, spec)
		}
	}
	return out
}

// waitFree blocks until at least one server is free; false means ctx
// canceled first.
func (l *loopback) waitFree(ctx context.Context) bool {
	if ctx.Done() != nil {
		defer context.AfterFunc(ctx, func() {
			l.mu.Lock()
			l.cond.Broadcast()
			l.mu.Unlock()
		})()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.free == 0 {
		if ctx.Err() != nil {
			return false
		}
		l.cond.Wait()
	}
	return true
}

func (l *loopback) start(ctx context.Context, sl slot, tk *queue.Ticket[*record], finish func(outcome)) error {
	i, err := l.index(sl.id)
	if err != nil {
		return err
	}
	l.mu.Lock()
	if l.busy[i] {
		l.mu.Unlock()
		return fmt.Errorf("serve: slot %s already busy", sl.id)
	}
	l.busy[i] = true
	l.free--
	l.busySrv.Set(int64(len(l.pool) - l.free))
	l.mu.Unlock()

	rec := tk.Payload()
	if err := l.stream.Submit(ctx, func(jctx context.Context) error {
		spec := l.fleet[i]
		cfg := l.pool[i]
		w := l.proto
		w.Video = rec.task.Video
		job := core.Job{Workload: w, Options: rec.opts, Config: cfg, Segment: rec.seg, KeepStream: rec.wantStream}
		if spec.Backend == backend.Accel {
			// Fixed-function path: the encode runs with no uarch simulation
			// attached (same bits, no profile) and the wall clock comes from
			// the accelerator's closed-form throughput model.
			res, err := core.EncodeOnly(jctx, job)
			l.release(i)
			if err != nil {
				finish(outcome{config: spec.Label(), spec: spec, err: err})
				return err
			}
			finish(outcome{
				seconds: l.accel.Seconds(rec.frames(), rec.pw, rec.ph),
				config:  spec.Label(), spec: spec, stream: res.Stream,
			})
			return nil
		}
		res, err := core.Run(jctx, job)
		// Release before finishing: a closed-loop client that saw the job
		// settle must find the fleet capacity already restored.
		l.release(i)
		if err != nil {
			finish(outcome{config: cfg.Name, spec: spec, err: err})
			return err
		}
		finish(outcome{seconds: res.Report.Seconds, report: res.Report, config: cfg.Name, spec: spec, stream: res.Stream})
		return nil
	}); err != nil {
		l.release(i)
		return fmt.Errorf("serve: dispatch: %w", err)
	}
	return nil
}

// release returns a server to the free set.
func (l *loopback) release(i int) {
	l.mu.Lock()
	l.busy[i] = false
	l.free++
	l.busySrv.Set(int64(len(l.pool) - l.free))
	l.cond.Broadcast()
	l.mu.Unlock()
}

func (l *loopback) close() {
	if l.stream != nil {
		l.stream.Close()
	}
}

// index resolves a loopback slot id back to its pool index.
func (l *loopback) index(id string) (int, error) {
	var i int
	if _, err := fmt.Sscanf(id, "local-%d", &i); err != nil || i < 0 || i >= len(l.pool) {
		return 0, fmt.Errorf("serve: unknown loopback slot %q", id)
	}
	return i, nil
}

// itoa is a stdlib-free decimal render for small non-negative ints (slot
// ids); the sched package keeps its own full-range variant.
func itoa(v int) string {
	return fmt.Sprintf("%d", v)
}
