// Package serve is the online serving layer: an HTTP transcoding-job API
// in front of a characterization-driven live dispatcher over a
// heterogeneous simulated fleet.
//
// The paper's §III-D2 scheduler study is offline — every task is known
// upfront and placed in one Hungarian solve (internal/sched). This package
// is the same placement policy moved to the deployment shape real
// transcoding services have (Li et al.): jobs *arrive* on a bounded
// admission queue (internal/queue) and a dispatcher assigns each batch of
// waiting jobs to free servers of a sched.Pool using the characterization
// cost model, falling back to seeded-random placement while the cost cache
// is cold. Execution runs on the shared exec layer through core.Run, so
// repeated videos hit the decode/analysis caches exactly like sweep
// points do.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/queue"
	"repro/internal/sched"
	"repro/internal/vbench"
)

// Policy selects the dispatcher's placement rule.
type Policy string

const (
	// PolicySmart places by characterization affinity (the online variant
	// of the paper's smart scheduler), falling back to seeded-random
	// placement for videos whose baseline profile is not cached yet.
	PolicySmart Policy = "smart"
	// PolicyRandom places every job uniformly at random over the free
	// servers — the paper's random scheduler, used as the control.
	PolicyRandom Policy = "random"
)

// ParsePolicy validates a -policy flag value.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicySmart, PolicyRandom:
		return Policy(s), nil
	}
	return "", fmt.Errorf("serve: unknown policy %q (want smart or random)", s)
}

// Config assembles a serving instance.
type Config struct {
	// Pool is the software fleet; one entry per server. Required for the
	// in-process loopback transport unless Servers is given; ignored in
	// fleet mode, where capability comes from worker registrations.
	Pool sched.Pool
	// Servers is the full heterogeneous fleet — backend kind, uarch
	// config, hourly price and spot flag per server. When empty it is
	// derived from Pool at default on-demand prices; when set it overrides
	// Pool (which becomes its software projection). Like Pool it drives
	// only the loopback transport.
	Servers sched.Fleet
	// Objective selects what placement minimizes: fleet-seconds (default,
	// the legacy behavior) or dollars under per-job deadlines and quality
	// floors (sched.ObjectiveCost).
	Objective sched.Objective
	// Policy selects smart (default) or random placement.
	Policy Policy
	// QueueDepth bounds the admission queue (0: 256, the queue default).
	QueueDepth int
	// Workers bounds concurrent loopback executions; 0 means len(Pool)
	// (every server can run one job at a time, so more workers never help).
	Workers int
	// Proto supplies the Workload fields other than Video (Frames, Scale,
	// Seed) applied to every submitted job, mirroring sched.Measure.
	Proto core.Workload
	// Seed drives the deterministic random placement (random policy and
	// cold-cache fallback).
	Seed uint64
	// Metrics selects the registry; nil means obs.Default().
	Metrics *obs.Registry
	// Fleet switches execution from the in-process loopback to the
	// networked pull-based worker fleet (fleet.go): jobs are leased to
	// worker processes (cmd/worker) that register, heartbeat and poll over
	// the same HTTP listener. Nil keeps the loopback.
	Fleet *FleetOptions
}

// ErrDeadlineInfeasible is the typed admission rejection for a job whose
// DeadlineSeconds no live server class can predictably meet — the client
// learns at submit time (HTTP 422) instead of discovering a silently late
// job. Cold software classes are optimistic (no prediction yet), so the
// rejection only fires when every feasible class is predictably too slow.
var ErrDeadlineInfeasible = errors.New("serve: no server class can meet the requested deadline")

// JobState is the lifecycle of a submitted job.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// JobRequest is the POST /jobs body: the task parameters of the paper's
// studies plus the queueing class/priority/deadline of the serving layer.
// Segments and Ladder expand the request into a multi-part job graph: the
// submitted job becomes a parent record whose rung x segment sub-jobs flow
// through the queue as ordinary leased units, are placed independently,
// and settle back into the parent (which completes only when every part
// has).
type JobRequest struct {
	Video    string `json:"video"`
	CRF      int    `json:"crf,omitempty"`      // 0: 23
	Refs     int    `json:"refs,omitempty"`     // 0: 3
	Preset   string `json:"preset,omitempty"`   // "": medium
	Class    string `json:"class,omitempty"`    // fairness class
	Priority int    `json:"priority,omitempty"` // higher dequeues first
	// DeadlineMs is a relative deadline in milliseconds used for intra-class
	// ordering (0: none).
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// DeadlineSeconds caps the simulated service seconds of each placed
	// unit (the whole encode, or each part of a segmented/ladder job).
	// Admission rejects the job with ErrDeadlineInfeasible when no live
	// server class can predictably meet it; placement masks
	// deadline-busting cells; a completed job that still ran over is
	// counted as a deadline miss. 0 means no deadline.
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
	// QualityFloor is the worst acceptable effective CRF (0: none). The
	// accelerator backend carries a CRF-equivalent quality penalty; a
	// server whose penalty would push the job past the floor is infeasible
	// for it.
	QualityFloor int `json:"quality_floor,omitempty"`
	// Segments splits the encode into that many independently placed
	// segment sub-jobs (0 or 1: whole-clip). The split follows
	// core.SegmentsFor, so the per-part outputs stitch byte-identically to
	// a serial segmented encode.
	Segments int `json:"segments,omitempty"`
	// Ladder expands the request into one rendition per rung (an ABR
	// ladder); rungs multiply with Segments. Every rung of the same segment
	// reuses one shared codec.Analysis artifact through the core caches.
	Ladder []Rung `json:"ladder,omitempty"`
}

// Rung is one rendition of an ABR ladder request. Zero fields inherit the
// request's top-level value (and then the usual defaults).
type Rung struct {
	Name   string `json:"name,omitempty"`
	CRF    int    `json:"crf,omitempty"`
	Refs   int    `json:"refs,omitempty"`
	Preset string `json:"preset,omitempty"`
}

// Fan-out caps: a single POST /jobs may expand into at most
// maxLadderRungs x maxSegments queued parts.
const (
	maxLadderRungs = 8
	maxSegments    = 64
)

// JobView is the externally visible state of one job (GET /jobs/{id}).
type JobView struct {
	ID         string    `json:"id"`
	State      JobState  `json:"state"`
	Class      string    `json:"class,omitempty"`
	Video      string    `json:"video"`
	CRF        int       `json:"crf"`
	Refs       int       `json:"refs"`
	Preset     string    `json:"preset"`
	Priority   int       `json:"priority,omitempty"`
	Server     string    `json:"server,omitempty"` // config name (loopback) / worker id (fleet)
	Mode       string    `json:"mode,omitempty"`   // smart | random | cold
	Attempts   int       `json:"attempts,omitempty"`
	Submitted  time.Time `json:"submitted"`
	Started    time.Time `json:"started"`  // zero until dispatched
	Finished   time.Time `json:"finished"` // zero until terminal
	SimSeconds float64   `json:"simulated_seconds,omitempty"`
	// Backend is the encoder class that settled the job ("software" /
	// "accel"; empty for multi-part parents, whose parts may mix).
	Backend string `json:"backend,omitempty"`
	// CostCents is what the settling attempt cost (seconds × the executing
	// server's hourly price); parents sum their parts.
	CostCents       float64 `json:"cost_cents,omitempty"`
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
	// DeadlineMiss marks a completed job whose service seconds exceeded
	// its deadline (for parents: any part missed).
	DeadlineMiss bool   `json:"deadline_miss,omitempty"`
	Error        string `json:"error,omitempty"`
	// Part fields (sub-jobs of a multi-part submission only).
	Parent  string         `json:"parent,omitempty"`
	Rung    string         `json:"rung,omitempty"`
	Segment *codec.Segment `json:"segment,omitempty"`
	// Parent fields (multi-part submissions only). PartsDone counts parts
	// that completed successfully; Parts lists every part's job id.
	PartsTotal int      `json:"parts_total,omitempty"`
	PartsDone  int      `json:"parts_done,omitempty"`
	Parts      []string `json:"parts,omitempty"`
}

// Totals summarizes a server's lifetime outcomes. SimSeconds is the summed
// simulated service time of completed jobs — the completed-work measure the
// smart-vs-random comparison reports (same work, fewer fleet-seconds means
// more capacity headroom).
type Totals struct {
	Submitted  int64   `json:"submitted"`
	Completed  int64   `json:"completed"`
	Failed     int64   `json:"failed"`
	Canceled   int64   `json:"canceled"`
	Rejected   int64   `json:"rejected"`
	SimSeconds float64 `json:"simulated_seconds"`
	// CostCents is the summed dollar cost of completed jobs — the ground
	// truth the serve_cost_microcents counter approximates at integer
	// resolution. Every settled attempt is priced exactly once.
	CostCents float64 `json:"cost_cents"`
	// DeadlineMisses counts completed jobs that ran past their
	// DeadlineSeconds (parents count once if any part missed).
	DeadlineMisses int64 `json:"deadline_misses"`
}

// record is the server-side job state; mu guards the mutable fields.
type record struct {
	seq      uint64
	id       string
	task     sched.Task
	opts     codec.Options
	class    string
	priority int
	seg      codec.Segment // frame range of a segment part (zero: whole clip)
	rung     string        // ladder rendition name ("" outside ladders)

	// Economic metadata, immutable after submit. deadlineSeconds caps the
	// simulated service seconds of this unit; qualityFloor is the worst
	// acceptable effective CRF; pw/ph/pframes is the proxy geometry the
	// accelerator clock model sizes the unit with (pframes is the whole
	// clip — frames() applies the segment slice).
	deadlineSeconds float64
	qualityFloor    int
	pw, ph, pframes int
	wantStream      bool // keep the encoded bitstream for stitching

	// parent links a part to the record its outcome settles into; nil for
	// plain jobs and for parents themselves. ticket is the part's admission
	// ticket, kept so a sibling failure (or client cancellation) can
	// withdraw still-queued parts.
	parent *record
	ticket *queue.Ticket[*record]

	done chan struct{} // closed at any terminal state

	mu       sync.Mutex
	state    JobState
	server   string
	mode     string
	attempts int // dispatch attempts; >1 means lease reassignment happened
	enq      time.Time
	started  time.Time
	finished time.Time
	seconds  float64
	errMsg   string
	// Settlement economics (set once, by the settling attempt).
	costCents    float64
	backendName  string
	deadlineMiss bool
	stream       []byte // part bitstream retained for the rendition stitch

	// Parent-side aggregates (multi-part submissions only; guarded by mu).
	// The parent never enters the queue — it settles when its last part
	// does.
	parts         []*record
	partsLaunched int // parts past their first dispatch (fan-out tracking)
	partsTerm     int // parts in any terminal state
	partsDone     int // parts that completed successfully
	partsFailed   int
	partsCanceled int
	partsSeconds  float64   // summed simulated seconds of done parts
	partsCost     float64   // summed cost of settled parts
	partsMissed   int       // parts that completed past their deadline
	partErr       string    // first part failure, surfaced as the parent error
	firstDone     time.Time // first part completion (stitch-latency anchor)
}

// frames is the clip length this record encodes: the segment width for
// parts, the whole proxy clip otherwise.
func (r *record) frames() int {
	if !r.seg.IsZero() {
		return r.seg.End - r.seg.Start
	}
	return r.pframes
}

// view snapshots a record for the API.
func (r *record) view() JobView {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := JobView{
		ID: r.id, State: r.state, Class: r.class,
		Video: r.task.Video, CRF: r.task.CRF, Refs: r.task.Refs,
		Preset: string(r.task.Preset), Priority: r.priority,
		Server: r.server, Mode: r.mode, Attempts: r.attempts,
		Submitted: r.enq, Started: r.started, Finished: r.finished,
		SimSeconds: r.seconds, Error: r.errMsg,
		Backend: r.backendName, CostCents: r.costCents,
		DeadlineSeconds: r.deadlineSeconds, DeadlineMiss: r.deadlineMiss,
		Rung: r.rung,
	}
	if r.parent != nil {
		v.Parent = r.parent.id
	}
	if !r.seg.IsZero() {
		seg := r.seg
		v.Segment = &seg
	}
	if len(r.parts) > 0 {
		v.PartsTotal = len(r.parts)
		v.PartsDone = r.partsDone
		v.Parts = make([]string, len(r.parts))
		for i, p := range r.parts {
			v.Parts[i] = p.id
		}
	}
	return v
}

// serveMetrics bundles the serving layer's obs instrumentation.
type serveMetrics struct {
	submitted *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	canceled  *obs.Counter
	rejected  *obs.Counter
	sojourn   *obs.Histogram
	dispatch  *obs.Histogram
	simMs     *obs.Counter
	requeues  *obs.Counter
	placed    func(mode string) *obs.Counter
	// Multi-part job graph: part admissions/completions, plus the two
	// graph-shape latencies — fanout is submission until every part has
	// been dispatched at least once, stitch is the reassembly tail from the
	// first part completion to the parent settling.
	partsSubmitted *obs.Counter
	partsCompleted *obs.Counter
	fanout         *obs.Histogram
	stitch         *obs.Histogram
	// Economic layer: cost in microcents (obs counters are integers and
	// per-job costs on the tiny CI proxies are ~1e-5 cents; Totals.CostCents
	// keeps the float ground truth), per-backend execution counts, and
	// completed-but-late jobs.
	costMicro    *obs.Counter
	deadlineMiss *obs.Counter
	backendJobs  func(label string) *obs.Counter
}

// Server is one serving instance: queue, dispatcher, transport and the
// job records behind the HTTP API.
type Server struct {
	cfg   Config
	accel backend.AccelModel // the fixed-function backend's clock/quality model
	q     *queue.Queue[*record]
	met   serveMetrics

	transport transport

	flowMu   sync.Mutex // drain accounting: dispatched-but-unfinished jobs
	flowCond *sync.Cond
	inflight int

	jobsMu sync.Mutex
	jobs   map[string]*record
	seq    uint64

	costMu sync.Mutex
	costs  map[string]*perf.Report // per-video baseline characterization

	totMu  sync.Mutex
	totals Totals

	runDone chan struct{}
	started bool
}

// New builds a stopped server; call Start to begin dispatching.
func New(cfg Config) (*Server, error) {
	if len(cfg.Pool) == 0 && len(cfg.Servers) == 0 && cfg.Fleet == nil {
		return nil, errors.New("serve: empty pool")
	}
	if cfg.Fleet == nil {
		// Loopback: resolve the economic fleet view. Servers overrides Pool;
		// a plain Pool is lifted to default on-demand prices, so existing
		// callers see the legacy behavior with costs attached.
		if len(cfg.Servers) == 0 {
			cfg.Servers = sched.FleetFromPool(cfg.Pool)
		} else {
			servers := make(sched.Fleet, len(cfg.Servers))
			for i, spec := range cfg.Servers {
				servers[i] = spec.FillDefaults()
			}
			cfg.Servers = servers
		}
		cfg.Pool = cfg.Servers.Configs()
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicySmart
	}
	if _, err := ParsePolicy(string(cfg.Policy)); err != nil {
		return nil, err
	}
	obj, err := sched.ParseObjective(string(cfg.Objective))
	if err != nil {
		return nil, err
	}
	cfg.Objective = obj
	if cfg.Fleet == nil && (cfg.Workers <= 0 || cfg.Workers > len(cfg.Pool)) {
		cfg.Workers = len(cfg.Pool)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	s := &Server{
		cfg:   cfg,
		accel: backend.DefaultAccel(),
		q: queue.New[*record](queue.Options{
			MaxDepth: cfg.QueueDepth, Name: "serve", Metrics: reg,
		}),
		met: serveMetrics{
			submitted: reg.Counter("serve_jobs_submitted"),
			completed: reg.Counter("serve_jobs_completed"),
			failed:    reg.Counter("serve_jobs_failed"),
			canceled:  reg.Counter("serve_jobs_canceled"),
			rejected:  reg.Counter("serve_jobs_rejected"),
			sojourn:   reg.Histogram("serve_sojourn_ns"),
			dispatch:  reg.Histogram("serve_dispatch_ns"),
			simMs:     reg.Counter("serve_completed_sim_ms"),
			requeues:  reg.Counter("serve_requeues"),
			placed:    func(mode string) *obs.Counter { return reg.Counter("serve_placements", "mode", mode) },

			partsSubmitted: reg.Counter("serve_parts_submitted"),
			partsCompleted: reg.Counter("serve_parts_completed"),
			fanout:         reg.Histogram("serve_fanout_ns"),
			stitch:         reg.Histogram("serve_stitch_ns"),

			costMicro:    reg.Counter("serve_cost_microcents"),
			deadlineMiss: reg.Counter("serve_deadline_miss"),
			backendJobs:  func(label string) *obs.Counter { return reg.Counter("serve_backend_jobs", "backend", label) },
		},
		jobs:    make(map[string]*record),
		costs:   make(map[string]*perf.Report),
		runDone: make(chan struct{}),
	}
	s.flowCond = sync.NewCond(&s.flowMu)
	if cfg.Fleet != nil {
		s.transport = newFleetTransport(s, *cfg.Fleet, reg)
	} else {
		s.transport = newLoopback(cfg, reg)
	}
	return s, nil
}

// Start launches the transport and the dispatcher loop. The server runs
// until Stop (graceful drain) or ctx cancellation (abandons queued jobs).
func (s *Server) Start(ctx context.Context) {
	if s.started {
		return
	}
	s.started = true
	s.transport.open(ctx)
	go s.run(ctx)
}

// Stop gracefully shuts the server down: admissions close immediately,
// already-queued jobs are dispatched and executed (fleet leases that expire
// during drain are reassigned, not dropped), then the dispatcher and the
// transport exit. Safe to call once after Start.
func (s *Server) Stop() {
	s.q.Close()
	<-s.runDone
	s.transport.close()
}

// Submit validates and admits one job. The returned view is the queued
// state; rejections return queue.ErrFull / queue.ErrClosed (admission) or a
// validation error. Canceling ctx while the job is still queued withdraws
// it; a job already dispatched runs to completion.
func (s *Server) Submit(ctx context.Context, req JobRequest) (JobView, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	task, opts, err := buildTask(req)
	if err != nil {
		return JobView{}, err
	}
	pw, ph, pframes, err := s.proxyDims(req.Video)
	if err != nil {
		return JobView{}, err
	}
	if len(req.Ladder) > 0 || req.Segments > 1 {
		return s.submitMulti(ctx, req, task, pw, ph, pframes)
	}
	if err := s.admitDeadline(opts, req, pframes, pw, ph); err != nil {
		s.met.rejected.Inc()
		s.totMu.Lock()
		s.totals.Rejected++
		s.totMu.Unlock()
		return JobView{}, err
	}
	rec := &record{
		task:     task,
		opts:     opts,
		class:    req.Class,
		priority: req.Priority,
		done:     make(chan struct{}),
		state:    StateQueued,
		enq:      time.Now(),

		deadlineSeconds: req.DeadlineSeconds,
		qualityFloor:    req.QualityFloor,
		pw:              pw,
		ph:              ph,
		pframes:         pframes,
	}
	s.jobsMu.Lock()
	s.seq++
	rec.seq = s.seq
	rec.id = "job-" + strconv.FormatUint(rec.seq, 10)
	rec.task.Name = rec.id
	s.jobsMu.Unlock()

	var deadline time.Time
	if req.DeadlineMs > 0 {
		deadline = rec.enq.Add(time.Duration(req.DeadlineMs) * time.Millisecond)
	}
	// The queue's own ctx watcher is bypassed (Background) so that the
	// serving layer observes every cancellation and can settle the record.
	ticket, err := s.q.Submit(context.Background(), rec, queue.SubmitOptions{
		Class: req.Class, Priority: req.Priority, Deadline: deadline,
	})
	if err != nil {
		s.met.rejected.Inc()
		s.totMu.Lock()
		s.totals.Rejected++
		s.totMu.Unlock()
		return JobView{}, err
	}
	if ctx.Done() != nil {
		context.AfterFunc(ctx, func() {
			if ticket.Cancel() {
				s.settleCanceled(rec)
			}
		})
	}
	s.jobsMu.Lock()
	s.jobs[rec.id] = rec
	s.jobsMu.Unlock()
	s.met.submitted.Inc()
	s.totMu.Lock()
	s.totals.Submitted++
	s.totMu.Unlock()
	return rec.view(), nil
}

// submitMulti expands a segmented and/or ladder request into a parent
// record plus rung x segment part records. The parent never enters the
// queue: parts flow through admission as ordinary leased units and settle
// back into it (dispatch.go's partSettled). Admission is all-or-nothing —
// if any part is rejected (queue full/closed) every already-queued sibling
// is withdrawn and the whole submit fails, so a client never observes a
// half-admitted job graph.
func (s *Server) submitMulti(ctx context.Context, req JobRequest, task sched.Task, pw, ph, pframes int) (JobView, error) {
	reject := func(err error) (JobView, error) {
		s.met.rejected.Inc()
		s.totMu.Lock()
		s.totals.Rejected++
		s.totMu.Unlock()
		return JobView{}, err
	}
	if req.Segments > maxSegments {
		return JobView{}, fmt.Errorf("serve: segments %d exceeds limit %d", req.Segments, maxSegments)
	}
	if len(req.Ladder) > maxLadderRungs {
		return JobView{}, fmt.Errorf("serve: ladder has %d rungs, limit %d", len(req.Ladder), maxLadderRungs)
	}

	// Resolve each rung to its task + options; zero rung fields inherit the
	// top-level request. A segmented non-ladder request is one unnamed rung.
	type partSpec struct {
		task sched.Task
		opts codec.Options
		rung string
	}
	rungs := req.Ladder
	if len(rungs) == 0 {
		rungs = []Rung{{}}
	}
	specs := make([]partSpec, len(rungs))
	for i, rg := range rungs {
		r := req
		r.Segments, r.Ladder = 0, nil
		if rg.CRF != 0 {
			r.CRF = rg.CRF
		}
		if rg.Refs != 0 {
			r.Refs = rg.Refs
		}
		if rg.Preset != "" {
			r.Preset = rg.Preset
		}
		rtask, ropts, err := buildTask(r)
		if err != nil {
			return JobView{}, fmt.Errorf("serve: ladder rung %d (%q): %w", i, rg.Name, err)
		}
		name := rg.Name
		if name == "" && len(req.Ladder) > 0 {
			name = "rung" + itoa(i)
		}
		specs[i] = partSpec{task: rtask, opts: ropts, rung: name}
	}

	// The segment plan follows the workload the parts will actually encode
	// (core.SegmentsFor normalizes the clip length and clamps the part
	// count), so every part's range is valid by construction.
	segs := []codec.Segment{{}}
	if req.Segments > 1 {
		w := s.cfg.Proto
		w.Video = req.Video
		plan, err := core.SegmentsFor(w, req.Segments)
		if err != nil {
			return JobView{}, fmt.Errorf("serve: %w", err)
		}
		segs = plan
	}

	// Deadline admission per rung: every part must be placeable within the
	// deadline on some live class, so check each rung against its widest
	// segment (the strictest part). A typed rejection here beats admitting
	// a graph that placement can never finish on time.
	if req.DeadlineSeconds > 0 {
		widest := pframes
		if len(segs) > 1 {
			widest = 0
			for _, sg := range segs {
				if n := sg.End - sg.Start; n > widest {
					widest = n
				}
			}
		}
		for i, spec := range specs {
			r := req
			if err := s.admitDeadline(spec.opts, r, widest, pw, ph); err != nil {
				return reject(fmt.Errorf("ladder rung %d (%q): %w", i, spec.rung, err))
			}
		}
	}

	now := time.Now()
	parent := &record{
		task:     task,
		class:    req.Class,
		priority: req.Priority,
		done:     make(chan struct{}),
		state:    StateQueued,
		enq:      now,

		deadlineSeconds: req.DeadlineSeconds,
		qualityFloor:    req.QualityFloor,
		pw:              pw,
		ph:              ph,
		pframes:         pframes,
	}
	parts := make([]*record, 0, len(specs)*len(segs))
	s.jobsMu.Lock()
	s.seq++
	parent.seq = s.seq
	parent.id = "job-" + strconv.FormatUint(parent.seq, 10)
	parent.task.Name = parent.id
	for _, spec := range specs {
		for _, sg := range segs {
			s.seq++
			part := &record{
				seq: s.seq, task: spec.task, opts: spec.opts,
				class: req.Class, priority: req.Priority,
				seg: sg, rung: spec.rung, parent: parent,
				done: make(chan struct{}), state: StateQueued, enq: now,

				deadlineSeconds: req.DeadlineSeconds,
				qualityFloor:    req.QualityFloor,
				pw:              pw,
				ph:              ph,
				pframes:         pframes,
				// Parts keep their bitstreams so the parent can be stitched
				// into a downloadable rendition (GET /jobs/{id}/rendition).
				wantStream: true,
			}
			part.id = parent.id + "." + strconv.Itoa(len(parts)+1)
			part.task.Name = part.id
			parts = append(parts, part)
		}
	}
	parent.parts = parts
	s.jobsMu.Unlock()

	var deadline time.Time
	if req.DeadlineMs > 0 {
		deadline = now.Add(time.Duration(req.DeadlineMs) * time.Millisecond)
	}
	for i, part := range parts {
		ticket, err := s.q.Submit(context.Background(), part, queue.SubmitOptions{
			Class: req.Class, Priority: req.Priority, Deadline: deadline,
		})
		if err != nil {
			// All-or-nothing: withdraw the parts already admitted. None is
			// externally visible yet (records register below), so no
			// settlement is owed.
			for _, prev := range parts[:i] {
				prev.ticket.Cancel()
			}
			return reject(err)
		}
		part.ticket = ticket
	}

	s.jobsMu.Lock()
	s.jobs[parent.id] = parent
	for _, part := range parts {
		s.jobs[part.id] = part
	}
	s.jobsMu.Unlock()
	if ctx.Done() != nil {
		context.AfterFunc(ctx, func() {
			for _, part := range parts {
				if part.ticket.Cancel() {
					s.settleCanceled(part)
				}
			}
		})
	}
	s.met.submitted.Inc()
	s.met.partsSubmitted.Add(int64(len(parts)))
	s.totMu.Lock()
	s.totals.Submitted++
	s.totMu.Unlock()
	return parent.view(), nil
}

// Job returns the current view of a job by id.
func (s *Server) Job(id string) (JobView, bool) {
	s.jobsMu.Lock()
	rec := s.jobs[id]
	s.jobsMu.Unlock()
	if rec == nil {
		return JobView{}, false
	}
	return rec.view(), true
}

// WaitJob blocks until the job reaches a terminal state (done, failed or
// canceled) and returns its final view.
func (s *Server) WaitJob(ctx context.Context, id string) (JobView, error) {
	s.jobsMu.Lock()
	rec := s.jobs[id]
	s.jobsMu.Unlock()
	if rec == nil {
		return JobView{}, fmt.Errorf("serve: unknown job %q", id)
	}
	select {
	case <-rec.done:
		return rec.view(), nil
	case <-ctx.Done():
		return JobView{}, ctx.Err()
	}
}

// Totals returns the server's lifetime outcome counters.
func (s *Server) Totals() Totals {
	s.totMu.Lock()
	defer s.totMu.Unlock()
	return s.totals
}

// QueueDepth exposes the admission queue depth (the healthz signal).
func (s *Server) QueueDepth() int { return s.q.Depth() }

// Pressure exposes the admission queue backpressure fraction.
func (s *Server) Pressure() float64 { return s.q.Pressure() }

// proxyDims resolves the proxy geometry a video's jobs will encode under
// the server's workload prototype — the sizing input of the accelerator
// clock model and deadline admission.
func (s *Server) proxyDims(video string) (w, h, frames int, err error) {
	wl := s.cfg.Proto
	wl.Video = video
	w, h, frames, err = core.ProxyDims(wl)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("serve: %w", err)
	}
	return w, h, frames, nil
}

// admitDeadline applies the deadline-feasibility admission check: reject
// (typed) when every live server class is predictably unable to finish a
// unit of frames×(pw×ph) within req.DeadlineSeconds. An empty class list
// (fleet mode before any worker registered) and cold software classes
// admit optimistically.
func (s *Server) admitDeadline(opts codec.Options, req JobRequest, frames, pw, ph int) error {
	if req.DeadlineSeconds <= 0 {
		return nil
	}
	classes := s.transport.classes()
	job := sched.HeteroJob{
		Report: s.costOf(req.Video), Opts: opts,
		DeadlineSeconds: req.DeadlineSeconds, QualityFloor: req.QualityFloor,
		Frames: frames, Width: pw, Height: ph,
	}
	if !sched.FeasibleAnywhere(job, classes, s.accel) {
		return fmt.Errorf("%w (deadline %gs over %d live classes)",
			ErrDeadlineInfeasible, req.DeadlineSeconds, len(classes))
	}
	return nil
}

// buildTask validates a request and resolves defaults into a sched.Task
// plus its encode options (validated eagerly so a bad preset is a 400 at
// submission, not a failed job later).
func buildTask(req JobRequest) (sched.Task, codec.Options, error) {
	if _, err := vbench.ByName(req.Video); err != nil {
		return sched.Task{}, codec.Options{}, fmt.Errorf("serve: %w", err)
	}
	task := sched.Task{Video: req.Video, CRF: req.CRF, Refs: req.Refs, Preset: codec.Preset(req.Preset)}
	if task.CRF == 0 {
		task.CRF = 23
	}
	if task.Refs == 0 {
		task.Refs = 3
	}
	if task.Preset == "" {
		task.Preset = codec.PresetMedium
	}
	if task.CRF < 0 || task.CRF > 51 {
		return sched.Task{}, codec.Options{}, fmt.Errorf("serve: crf %d out of range [0,51]", task.CRF)
	}
	if task.Refs < 1 || task.Refs > 16 {
		return sched.Task{}, codec.Options{}, fmt.Errorf("serve: refs %d out of range [1,16]", task.Refs)
	}
	opts, err := task.Options()
	if err != nil {
		return sched.Task{}, codec.Options{}, fmt.Errorf("serve: %w", err)
	}
	return task, opts, nil
}

// --- HTTP API -------------------------------------------------------------------

// Handler returns the service mux: the job API mounted on top of the
// standard -debug-addr observability endpoints (/metrics, /debug/vars,
// /debug/pprof), so one listener serves both. In fleet mode the worker
// protocol endpoints (/fleet/*) are mounted too. Every route carries a
// method-mismatch fallback with a JSON 405 and Allow header, so clients
// never see a bare 404/405 page for using the wrong verb.
func (s *Server) Handler() http.Handler {
	mux := obs.Mux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("/jobs", methodNotAllowed(http.MethodPost))
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("/jobs/{id}", methodNotAllowed(http.MethodGet))
	mux.HandleFunc("GET /jobs/{id}/rendition", s.handleRendition)
	mux.HandleFunc("/jobs/{id}/rendition", methodNotAllowed(http.MethodGet))
	mux.HandleFunc("GET /healthz", s.handleHealth)
	if ft, ok := s.transport.(*fleetTransport); ok {
		mux.HandleFunc("POST /fleet/heartbeat", ft.handleHeartbeat)
		mux.HandleFunc("/fleet/heartbeat", methodNotAllowed(http.MethodPost))
		mux.HandleFunc("POST /fleet/poll", ft.handlePoll)
		mux.HandleFunc("/fleet/poll", methodNotAllowed(http.MethodPost))
		mux.HandleFunc("POST /fleet/result", ft.handleResult)
		mux.HandleFunc("/fleet/result", methodNotAllowed(http.MethodPost))
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

// maxRequestBody caps every decoded POST body; job submissions and worker
// protocol messages are all far below this.
const maxRequestBody = 1 << 16

// maxResultBody is the larger cap for /fleet/result, whose reports may
// carry a part bitstream for the rendition stitch.
const maxResultBody = 1 << 20

// decodeJSON decodes one size-capped JSON body, writing the JSON error
// response itself on failure; the return reports whether decoding
// succeeded and the handler should proceed.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	return decodeJSONLimit(w, r, v, maxRequestBody)
}

func decodeJSONLimit(w http.ResponseWriter, r *http.Request, v any, limit int64) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit), Reason: "too_large"})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

// methodNotAllowed is the fallback handler mounted on the method-less
// pattern of every route: a JSON 405 naming the allowed verb.
func methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeJSON(w, http.StatusMethodNotAllowed,
			errorBody{Error: fmt.Sprintf("method %s not allowed (want %s)", r.Method, allow), Reason: "method"})
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	// Deliberately not r.Context(): a POSTed job is fire-and-forget; the
	// client disconnecting must not withdraw it.
	view, err := s.Submit(context.Background(), req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, view)
	case errors.Is(err, queue.ErrFull):
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error(), Reason: "full"})
	case errors.Is(err, queue.ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error(), Reason: "closed"})
	case errors.Is(err, ErrDeadlineInfeasible):
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: err.Error(), Reason: "deadline_infeasible"})
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleRendition serves the stitched bitstream of a completed multi-part
// job: GET /jobs/{id}/rendition[?rung=name]. Parts keep their encoded
// streams at settlement; once the parent is done the requested rung's
// parts are stitched in segment order (codec.StitchStreams) — the
// server-side counterpart of the byte-identical segment fan-out.
func (s *Server) handleRendition(w http.ResponseWriter, r *http.Request) {
	stream, status, eb := s.rendition(r.PathValue("id"), r.URL.Query().Get("rung"))
	if status != http.StatusOK {
		writeJSON(w, status, eb)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(stream)
}

func (s *Server) rendition(id, rung string) ([]byte, int, errorBody) {
	s.jobsMu.Lock()
	rec := s.jobs[id]
	s.jobsMu.Unlock()
	if rec == nil {
		return nil, http.StatusNotFound, errorBody{Error: "unknown job"}
	}
	rec.mu.Lock()
	state := rec.state
	rec.mu.Unlock()
	if len(rec.parts) == 0 {
		return nil, http.StatusNotFound, errorBody{
			Error: "job has no stitchable parts (plain jobs carry no rendition)", Reason: "no_rendition"}
	}
	if state != StateDone {
		return nil, http.StatusConflict, errorBody{
			Error: fmt.Sprintf("job is %s, rendition needs done", state), Reason: "not_ready"}
	}
	var sel []*record
	rungs := make(map[string]bool)
	for _, p := range rec.parts {
		rungs[p.rung] = true
		if p.rung == rung {
			sel = append(sel, p)
		}
	}
	if len(sel) == 0 {
		names := make([]string, 0, len(rungs))
		for n := range rungs {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, http.StatusNotFound, errorBody{
			Error: fmt.Sprintf("unknown rung %q (have %q)", rung, names), Reason: "unknown_rung"}
	}
	sort.Slice(sel, func(i, j int) bool { return sel[i].seg.Start < sel[j].seg.Start })
	streams := make([][]byte, len(sel))
	for i, p := range sel {
		p.mu.Lock()
		st := p.stream
		p.mu.Unlock()
		if len(st) == 0 {
			return nil, http.StatusInternalServerError, errorBody{
				Error: fmt.Sprintf("part %s settled without its bitstream", p.id), Reason: "stream_unavailable"}
		}
		streams[i] = st
	}
	out, err := codec.StitchStreams(streams)
	if err != nil {
		return nil, http.StatusInternalServerError, errorBody{
			Error: "stitch: " + err.Error(), Reason: "stitch_failed"}
	}
	return out, http.StatusOK, errorBody{}
}

// healthBody is the GET /healthz response. PoolSize is the live transport
// size: configured servers for loopback, registered live workers in fleet
// mode (where the per-worker detail rides in Workers).
type healthBody struct {
	Status      string       `json:"status"`
	Policy      Policy       `json:"policy"`
	PoolSize    int          `json:"pool_size"`
	FreeServers int          `json:"free_servers"`
	QueueDepth  int          `json:"queue_depth"`
	Pressure    float64      `json:"pressure"`
	Totals      Totals       `json:"totals"`
	Fleet       bool         `json:"fleet,omitempty"`
	Workers     []WorkerView `json:"workers,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	body := healthBody{
		Status: "ok", Policy: s.cfg.Policy, PoolSize: s.transport.size(),
		FreeServers: len(s.transport.freeSlots()), QueueDepth: s.q.Depth(),
		Pressure: s.q.Pressure(), Totals: s.Totals(),
	}
	if ft, ok := s.transport.(*fleetTransport); ok {
		body.Fleet = true
		body.Workers = ft.workerViews()
	}
	writeJSON(w, http.StatusOK, body)
}
