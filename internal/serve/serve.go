// Package serve is the online serving layer: an HTTP transcoding-job API
// in front of a characterization-driven live dispatcher over a
// heterogeneous simulated fleet.
//
// The paper's §III-D2 scheduler study is offline — every task is known
// upfront and placed in one Hungarian solve (internal/sched). This package
// is the same placement policy moved to the deployment shape real
// transcoding services have (Li et al.): jobs *arrive* on a bounded
// admission queue (internal/queue) and a dispatcher assigns each batch of
// waiting jobs to free servers of a sched.Pool using the characterization
// cost model, falling back to seeded-random placement while the cost cache
// is cold. Execution runs on the shared exec layer through core.Run, so
// repeated videos hit the decode/analysis caches exactly like sweep
// points do.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/queue"
	"repro/internal/sched"
	"repro/internal/vbench"
)

// Policy selects the dispatcher's placement rule.
type Policy string

const (
	// PolicySmart places by characterization affinity (the online variant
	// of the paper's smart scheduler), falling back to seeded-random
	// placement for videos whose baseline profile is not cached yet.
	PolicySmart Policy = "smart"
	// PolicyRandom places every job uniformly at random over the free
	// servers — the paper's random scheduler, used as the control.
	PolicyRandom Policy = "random"
)

// ParsePolicy validates a -policy flag value.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicySmart, PolicyRandom:
		return Policy(s), nil
	}
	return "", fmt.Errorf("serve: unknown policy %q (want smart or random)", s)
}

// Config assembles a serving instance.
type Config struct {
	// Pool is the heterogeneous fleet; one entry per server. Required for
	// the in-process loopback transport; ignored in fleet mode, where
	// capability comes from worker registrations.
	Pool sched.Pool
	// Policy selects smart (default) or random placement.
	Policy Policy
	// QueueDepth bounds the admission queue (0: 256, the queue default).
	QueueDepth int
	// Workers bounds concurrent loopback executions; 0 means len(Pool)
	// (every server can run one job at a time, so more workers never help).
	Workers int
	// Proto supplies the Workload fields other than Video (Frames, Scale,
	// Seed) applied to every submitted job, mirroring sched.Measure.
	Proto core.Workload
	// Seed drives the deterministic random placement (random policy and
	// cold-cache fallback).
	Seed uint64
	// Metrics selects the registry; nil means obs.Default().
	Metrics *obs.Registry
	// Fleet switches execution from the in-process loopback to the
	// networked pull-based worker fleet (fleet.go): jobs are leased to
	// worker processes (cmd/worker) that register, heartbeat and poll over
	// the same HTTP listener. Nil keeps the loopback.
	Fleet *FleetOptions
}

// JobState is the lifecycle of a submitted job.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// JobRequest is the POST /jobs body: the task parameters of the paper's
// studies plus the queueing class/priority/deadline of the serving layer.
// Segments and Ladder expand the request into a multi-part job graph: the
// submitted job becomes a parent record whose rung x segment sub-jobs flow
// through the queue as ordinary leased units, are placed independently,
// and settle back into the parent (which completes only when every part
// has).
type JobRequest struct {
	Video    string `json:"video"`
	CRF      int    `json:"crf,omitempty"`      // 0: 23
	Refs     int    `json:"refs,omitempty"`     // 0: 3
	Preset   string `json:"preset,omitempty"`   // "": medium
	Class    string `json:"class,omitempty"`    // fairness class
	Priority int    `json:"priority,omitempty"` // higher dequeues first
	// DeadlineMs is a relative deadline in milliseconds used for intra-class
	// ordering (0: none).
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Segments splits the encode into that many independently placed
	// segment sub-jobs (0 or 1: whole-clip). The split follows
	// core.SegmentsFor, so the per-part outputs stitch byte-identically to
	// a serial segmented encode.
	Segments int `json:"segments,omitempty"`
	// Ladder expands the request into one rendition per rung (an ABR
	// ladder); rungs multiply with Segments. Every rung of the same segment
	// reuses one shared codec.Analysis artifact through the core caches.
	Ladder []Rung `json:"ladder,omitempty"`
}

// Rung is one rendition of an ABR ladder request. Zero fields inherit the
// request's top-level value (and then the usual defaults).
type Rung struct {
	Name   string `json:"name,omitempty"`
	CRF    int    `json:"crf,omitempty"`
	Refs   int    `json:"refs,omitempty"`
	Preset string `json:"preset,omitempty"`
}

// Fan-out caps: a single POST /jobs may expand into at most
// maxLadderRungs x maxSegments queued parts.
const (
	maxLadderRungs = 8
	maxSegments    = 64
)

// JobView is the externally visible state of one job (GET /jobs/{id}).
type JobView struct {
	ID         string    `json:"id"`
	State      JobState  `json:"state"`
	Class      string    `json:"class,omitempty"`
	Video      string    `json:"video"`
	CRF        int       `json:"crf"`
	Refs       int       `json:"refs"`
	Preset     string    `json:"preset"`
	Priority   int       `json:"priority,omitempty"`
	Server     string    `json:"server,omitempty"` // config name (loopback) / worker id (fleet)
	Mode       string    `json:"mode,omitempty"`   // smart | random | cold
	Attempts   int       `json:"attempts,omitempty"`
	Submitted  time.Time `json:"submitted"`
	Started    time.Time `json:"started"`  // zero until dispatched
	Finished   time.Time `json:"finished"` // zero until terminal
	SimSeconds float64   `json:"simulated_seconds,omitempty"`
	Error      string    `json:"error,omitempty"`
	// Part fields (sub-jobs of a multi-part submission only).
	Parent  string         `json:"parent,omitempty"`
	Rung    string         `json:"rung,omitempty"`
	Segment *codec.Segment `json:"segment,omitempty"`
	// Parent fields (multi-part submissions only). PartsDone counts parts
	// that completed successfully; Parts lists every part's job id.
	PartsTotal int      `json:"parts_total,omitempty"`
	PartsDone  int      `json:"parts_done,omitempty"`
	Parts      []string `json:"parts,omitempty"`
}

// Totals summarizes a server's lifetime outcomes. SimSeconds is the summed
// simulated service time of completed jobs — the completed-work measure the
// smart-vs-random comparison reports (same work, fewer fleet-seconds means
// more capacity headroom).
type Totals struct {
	Submitted  int64   `json:"submitted"`
	Completed  int64   `json:"completed"`
	Failed     int64   `json:"failed"`
	Canceled   int64   `json:"canceled"`
	Rejected   int64   `json:"rejected"`
	SimSeconds float64 `json:"simulated_seconds"`
}

// record is the server-side job state; mu guards the mutable fields.
type record struct {
	seq      uint64
	id       string
	task     sched.Task
	opts     codec.Options
	class    string
	priority int
	seg      codec.Segment // frame range of a segment part (zero: whole clip)
	rung     string        // ladder rendition name ("" outside ladders)

	// parent links a part to the record its outcome settles into; nil for
	// plain jobs and for parents themselves. ticket is the part's admission
	// ticket, kept so a sibling failure (or client cancellation) can
	// withdraw still-queued parts.
	parent *record
	ticket *queue.Ticket[*record]

	done chan struct{} // closed at any terminal state

	mu       sync.Mutex
	state    JobState
	server   string
	mode     string
	attempts int // dispatch attempts; >1 means lease reassignment happened
	enq      time.Time
	started  time.Time
	finished time.Time
	seconds  float64
	errMsg   string

	// Parent-side aggregates (multi-part submissions only; guarded by mu).
	// The parent never enters the queue — it settles when its last part
	// does.
	parts         []*record
	partsLaunched int // parts past their first dispatch (fan-out tracking)
	partsTerm     int // parts in any terminal state
	partsDone     int // parts that completed successfully
	partsFailed   int
	partsCanceled int
	partsSeconds  float64   // summed simulated seconds of done parts
	partErr       string    // first part failure, surfaced as the parent error
	firstDone     time.Time // first part completion (stitch-latency anchor)
}

// view snapshots a record for the API.
func (r *record) view() JobView {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := JobView{
		ID: r.id, State: r.state, Class: r.class,
		Video: r.task.Video, CRF: r.task.CRF, Refs: r.task.Refs,
		Preset: string(r.task.Preset), Priority: r.priority,
		Server: r.server, Mode: r.mode, Attempts: r.attempts,
		Submitted: r.enq, Started: r.started, Finished: r.finished,
		SimSeconds: r.seconds, Error: r.errMsg,
		Rung: r.rung,
	}
	if r.parent != nil {
		v.Parent = r.parent.id
	}
	if !r.seg.IsZero() {
		seg := r.seg
		v.Segment = &seg
	}
	if len(r.parts) > 0 {
		v.PartsTotal = len(r.parts)
		v.PartsDone = r.partsDone
		v.Parts = make([]string, len(r.parts))
		for i, p := range r.parts {
			v.Parts[i] = p.id
		}
	}
	return v
}

// serveMetrics bundles the serving layer's obs instrumentation.
type serveMetrics struct {
	submitted *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	canceled  *obs.Counter
	rejected  *obs.Counter
	sojourn   *obs.Histogram
	dispatch  *obs.Histogram
	simMs     *obs.Counter
	requeues  *obs.Counter
	placed    func(mode string) *obs.Counter
	// Multi-part job graph: part admissions/completions, plus the two
	// graph-shape latencies — fanout is submission until every part has
	// been dispatched at least once, stitch is the reassembly tail from the
	// first part completion to the parent settling.
	partsSubmitted *obs.Counter
	partsCompleted *obs.Counter
	fanout         *obs.Histogram
	stitch         *obs.Histogram
}

// Server is one serving instance: queue, dispatcher, transport and the
// job records behind the HTTP API.
type Server struct {
	cfg Config
	q   *queue.Queue[*record]
	met serveMetrics

	transport transport

	flowMu   sync.Mutex // drain accounting: dispatched-but-unfinished jobs
	flowCond *sync.Cond
	inflight int

	jobsMu sync.Mutex
	jobs   map[string]*record
	seq    uint64

	costMu sync.Mutex
	costs  map[string]*perf.Report // per-video baseline characterization

	totMu  sync.Mutex
	totals Totals

	runDone chan struct{}
	started bool
}

// New builds a stopped server; call Start to begin dispatching.
func New(cfg Config) (*Server, error) {
	if len(cfg.Pool) == 0 && cfg.Fleet == nil {
		return nil, errors.New("serve: empty pool")
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicySmart
	}
	if _, err := ParsePolicy(string(cfg.Policy)); err != nil {
		return nil, err
	}
	if cfg.Fleet == nil && (cfg.Workers <= 0 || cfg.Workers > len(cfg.Pool)) {
		cfg.Workers = len(cfg.Pool)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	s := &Server{
		cfg: cfg,
		q: queue.New[*record](queue.Options{
			MaxDepth: cfg.QueueDepth, Name: "serve", Metrics: reg,
		}),
		met: serveMetrics{
			submitted: reg.Counter("serve_jobs_submitted"),
			completed: reg.Counter("serve_jobs_completed"),
			failed:    reg.Counter("serve_jobs_failed"),
			canceled:  reg.Counter("serve_jobs_canceled"),
			rejected:  reg.Counter("serve_jobs_rejected"),
			sojourn:   reg.Histogram("serve_sojourn_ns"),
			dispatch:  reg.Histogram("serve_dispatch_ns"),
			simMs:     reg.Counter("serve_completed_sim_ms"),
			requeues:  reg.Counter("serve_requeues"),
			placed:    func(mode string) *obs.Counter { return reg.Counter("serve_placements", "mode", mode) },

			partsSubmitted: reg.Counter("serve_parts_submitted"),
			partsCompleted: reg.Counter("serve_parts_completed"),
			fanout:         reg.Histogram("serve_fanout_ns"),
			stitch:         reg.Histogram("serve_stitch_ns"),
		},
		jobs:    make(map[string]*record),
		costs:   make(map[string]*perf.Report),
		runDone: make(chan struct{}),
	}
	s.flowCond = sync.NewCond(&s.flowMu)
	if cfg.Fleet != nil {
		s.transport = newFleetTransport(s, *cfg.Fleet, reg)
	} else {
		s.transport = newLoopback(cfg, reg)
	}
	return s, nil
}

// Start launches the transport and the dispatcher loop. The server runs
// until Stop (graceful drain) or ctx cancellation (abandons queued jobs).
func (s *Server) Start(ctx context.Context) {
	if s.started {
		return
	}
	s.started = true
	s.transport.open(ctx)
	go s.run(ctx)
}

// Stop gracefully shuts the server down: admissions close immediately,
// already-queued jobs are dispatched and executed (fleet leases that expire
// during drain are reassigned, not dropped), then the dispatcher and the
// transport exit. Safe to call once after Start.
func (s *Server) Stop() {
	s.q.Close()
	<-s.runDone
	s.transport.close()
}

// Submit validates and admits one job. The returned view is the queued
// state; rejections return queue.ErrFull / queue.ErrClosed (admission) or a
// validation error. Canceling ctx while the job is still queued withdraws
// it; a job already dispatched runs to completion.
func (s *Server) Submit(ctx context.Context, req JobRequest) (JobView, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	task, opts, err := buildTask(req)
	if err != nil {
		return JobView{}, err
	}
	if len(req.Ladder) > 0 || req.Segments > 1 {
		return s.submitMulti(ctx, req, task)
	}
	rec := &record{
		task:     task,
		opts:     opts,
		class:    req.Class,
		priority: req.Priority,
		done:     make(chan struct{}),
		state:    StateQueued,
		enq:      time.Now(),
	}
	s.jobsMu.Lock()
	s.seq++
	rec.seq = s.seq
	rec.id = "job-" + strconv.FormatUint(rec.seq, 10)
	rec.task.Name = rec.id
	s.jobsMu.Unlock()

	var deadline time.Time
	if req.DeadlineMs > 0 {
		deadline = rec.enq.Add(time.Duration(req.DeadlineMs) * time.Millisecond)
	}
	// The queue's own ctx watcher is bypassed (Background) so that the
	// serving layer observes every cancellation and can settle the record.
	ticket, err := s.q.Submit(context.Background(), rec, queue.SubmitOptions{
		Class: req.Class, Priority: req.Priority, Deadline: deadline,
	})
	if err != nil {
		s.met.rejected.Inc()
		s.totMu.Lock()
		s.totals.Rejected++
		s.totMu.Unlock()
		return JobView{}, err
	}
	if ctx.Done() != nil {
		context.AfterFunc(ctx, func() {
			if ticket.Cancel() {
				s.settleCanceled(rec)
			}
		})
	}
	s.jobsMu.Lock()
	s.jobs[rec.id] = rec
	s.jobsMu.Unlock()
	s.met.submitted.Inc()
	s.totMu.Lock()
	s.totals.Submitted++
	s.totMu.Unlock()
	return rec.view(), nil
}

// submitMulti expands a segmented and/or ladder request into a parent
// record plus rung x segment part records. The parent never enters the
// queue: parts flow through admission as ordinary leased units and settle
// back into it (dispatch.go's partSettled). Admission is all-or-nothing —
// if any part is rejected (queue full/closed) every already-queued sibling
// is withdrawn and the whole submit fails, so a client never observes a
// half-admitted job graph.
func (s *Server) submitMulti(ctx context.Context, req JobRequest, task sched.Task) (JobView, error) {
	reject := func(err error) (JobView, error) {
		s.met.rejected.Inc()
		s.totMu.Lock()
		s.totals.Rejected++
		s.totMu.Unlock()
		return JobView{}, err
	}
	if req.Segments > maxSegments {
		return JobView{}, fmt.Errorf("serve: segments %d exceeds limit %d", req.Segments, maxSegments)
	}
	if len(req.Ladder) > maxLadderRungs {
		return JobView{}, fmt.Errorf("serve: ladder has %d rungs, limit %d", len(req.Ladder), maxLadderRungs)
	}

	// Resolve each rung to its task + options; zero rung fields inherit the
	// top-level request. A segmented non-ladder request is one unnamed rung.
	type partSpec struct {
		task sched.Task
		opts codec.Options
		rung string
	}
	rungs := req.Ladder
	if len(rungs) == 0 {
		rungs = []Rung{{}}
	}
	specs := make([]partSpec, len(rungs))
	for i, rg := range rungs {
		r := req
		r.Segments, r.Ladder = 0, nil
		if rg.CRF != 0 {
			r.CRF = rg.CRF
		}
		if rg.Refs != 0 {
			r.Refs = rg.Refs
		}
		if rg.Preset != "" {
			r.Preset = rg.Preset
		}
		rtask, ropts, err := buildTask(r)
		if err != nil {
			return JobView{}, fmt.Errorf("serve: ladder rung %d (%q): %w", i, rg.Name, err)
		}
		name := rg.Name
		if name == "" && len(req.Ladder) > 0 {
			name = "rung" + itoa(i)
		}
		specs[i] = partSpec{task: rtask, opts: ropts, rung: name}
	}

	// The segment plan follows the workload the parts will actually encode
	// (core.SegmentsFor normalizes the clip length and clamps the part
	// count), so every part's range is valid by construction.
	segs := []codec.Segment{{}}
	if req.Segments > 1 {
		w := s.cfg.Proto
		w.Video = req.Video
		plan, err := core.SegmentsFor(w, req.Segments)
		if err != nil {
			return JobView{}, fmt.Errorf("serve: %w", err)
		}
		segs = plan
	}

	now := time.Now()
	parent := &record{
		task:     task,
		class:    req.Class,
		priority: req.Priority,
		done:     make(chan struct{}),
		state:    StateQueued,
		enq:      now,
	}
	parts := make([]*record, 0, len(specs)*len(segs))
	s.jobsMu.Lock()
	s.seq++
	parent.seq = s.seq
	parent.id = "job-" + strconv.FormatUint(parent.seq, 10)
	parent.task.Name = parent.id
	for _, spec := range specs {
		for _, sg := range segs {
			s.seq++
			part := &record{
				seq: s.seq, task: spec.task, opts: spec.opts,
				class: req.Class, priority: req.Priority,
				seg: sg, rung: spec.rung, parent: parent,
				done: make(chan struct{}), state: StateQueued, enq: now,
			}
			part.id = parent.id + "." + strconv.Itoa(len(parts)+1)
			part.task.Name = part.id
			parts = append(parts, part)
		}
	}
	parent.parts = parts
	s.jobsMu.Unlock()

	var deadline time.Time
	if req.DeadlineMs > 0 {
		deadline = now.Add(time.Duration(req.DeadlineMs) * time.Millisecond)
	}
	for i, part := range parts {
		ticket, err := s.q.Submit(context.Background(), part, queue.SubmitOptions{
			Class: req.Class, Priority: req.Priority, Deadline: deadline,
		})
		if err != nil {
			// All-or-nothing: withdraw the parts already admitted. None is
			// externally visible yet (records register below), so no
			// settlement is owed.
			for _, prev := range parts[:i] {
				prev.ticket.Cancel()
			}
			return reject(err)
		}
		part.ticket = ticket
	}

	s.jobsMu.Lock()
	s.jobs[parent.id] = parent
	for _, part := range parts {
		s.jobs[part.id] = part
	}
	s.jobsMu.Unlock()
	if ctx.Done() != nil {
		context.AfterFunc(ctx, func() {
			for _, part := range parts {
				if part.ticket.Cancel() {
					s.settleCanceled(part)
				}
			}
		})
	}
	s.met.submitted.Inc()
	s.met.partsSubmitted.Add(int64(len(parts)))
	s.totMu.Lock()
	s.totals.Submitted++
	s.totMu.Unlock()
	return parent.view(), nil
}

// Job returns the current view of a job by id.
func (s *Server) Job(id string) (JobView, bool) {
	s.jobsMu.Lock()
	rec := s.jobs[id]
	s.jobsMu.Unlock()
	if rec == nil {
		return JobView{}, false
	}
	return rec.view(), true
}

// WaitJob blocks until the job reaches a terminal state (done, failed or
// canceled) and returns its final view.
func (s *Server) WaitJob(ctx context.Context, id string) (JobView, error) {
	s.jobsMu.Lock()
	rec := s.jobs[id]
	s.jobsMu.Unlock()
	if rec == nil {
		return JobView{}, fmt.Errorf("serve: unknown job %q", id)
	}
	select {
	case <-rec.done:
		return rec.view(), nil
	case <-ctx.Done():
		return JobView{}, ctx.Err()
	}
}

// Totals returns the server's lifetime outcome counters.
func (s *Server) Totals() Totals {
	s.totMu.Lock()
	defer s.totMu.Unlock()
	return s.totals
}

// QueueDepth exposes the admission queue depth (the healthz signal).
func (s *Server) QueueDepth() int { return s.q.Depth() }

// Pressure exposes the admission queue backpressure fraction.
func (s *Server) Pressure() float64 { return s.q.Pressure() }

// buildTask validates a request and resolves defaults into a sched.Task
// plus its encode options (validated eagerly so a bad preset is a 400 at
// submission, not a failed job later).
func buildTask(req JobRequest) (sched.Task, codec.Options, error) {
	if _, err := vbench.ByName(req.Video); err != nil {
		return sched.Task{}, codec.Options{}, fmt.Errorf("serve: %w", err)
	}
	task := sched.Task{Video: req.Video, CRF: req.CRF, Refs: req.Refs, Preset: codec.Preset(req.Preset)}
	if task.CRF == 0 {
		task.CRF = 23
	}
	if task.Refs == 0 {
		task.Refs = 3
	}
	if task.Preset == "" {
		task.Preset = codec.PresetMedium
	}
	if task.CRF < 0 || task.CRF > 51 {
		return sched.Task{}, codec.Options{}, fmt.Errorf("serve: crf %d out of range [0,51]", task.CRF)
	}
	if task.Refs < 1 || task.Refs > 16 {
		return sched.Task{}, codec.Options{}, fmt.Errorf("serve: refs %d out of range [1,16]", task.Refs)
	}
	opts, err := task.Options()
	if err != nil {
		return sched.Task{}, codec.Options{}, fmt.Errorf("serve: %w", err)
	}
	return task, opts, nil
}

// --- HTTP API -------------------------------------------------------------------

// Handler returns the service mux: the job API mounted on top of the
// standard -debug-addr observability endpoints (/metrics, /debug/vars,
// /debug/pprof), so one listener serves both. In fleet mode the worker
// protocol endpoints (/fleet/*) are mounted too. Every route carries a
// method-mismatch fallback with a JSON 405 and Allow header, so clients
// never see a bare 404/405 page for using the wrong verb.
func (s *Server) Handler() http.Handler {
	mux := obs.Mux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("/jobs", methodNotAllowed(http.MethodPost))
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("/jobs/{id}", methodNotAllowed(http.MethodGet))
	mux.HandleFunc("GET /healthz", s.handleHealth)
	if ft, ok := s.transport.(*fleetTransport); ok {
		mux.HandleFunc("POST /fleet/heartbeat", ft.handleHeartbeat)
		mux.HandleFunc("/fleet/heartbeat", methodNotAllowed(http.MethodPost))
		mux.HandleFunc("POST /fleet/poll", ft.handlePoll)
		mux.HandleFunc("/fleet/poll", methodNotAllowed(http.MethodPost))
		mux.HandleFunc("POST /fleet/result", ft.handleResult)
		mux.HandleFunc("/fleet/result", methodNotAllowed(http.MethodPost))
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

// maxRequestBody caps every decoded POST body; job submissions and worker
// protocol messages are all far below this.
const maxRequestBody = 1 << 16

// decodeJSON decodes one size-capped JSON body, writing the JSON error
// response itself on failure; the return reports whether decoding
// succeeded and the handler should proceed.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit), Reason: "too_large"})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

// methodNotAllowed is the fallback handler mounted on the method-less
// pattern of every route: a JSON 405 naming the allowed verb.
func methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeJSON(w, http.StatusMethodNotAllowed,
			errorBody{Error: fmt.Sprintf("method %s not allowed (want %s)", r.Method, allow), Reason: "method"})
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	// Deliberately not r.Context(): a POSTed job is fire-and-forget; the
	// client disconnecting must not withdraw it.
	view, err := s.Submit(context.Background(), req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, view)
	case errors.Is(err, queue.ErrFull):
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error(), Reason: "full"})
	case errors.Is(err, queue.ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error(), Reason: "closed"})
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// healthBody is the GET /healthz response. PoolSize is the live transport
// size: configured servers for loopback, registered live workers in fleet
// mode (where the per-worker detail rides in Workers).
type healthBody struct {
	Status      string       `json:"status"`
	Policy      Policy       `json:"policy"`
	PoolSize    int          `json:"pool_size"`
	FreeServers int          `json:"free_servers"`
	QueueDepth  int          `json:"queue_depth"`
	Pressure    float64      `json:"pressure"`
	Totals      Totals       `json:"totals"`
	Fleet       bool         `json:"fleet,omitempty"`
	Workers     []WorkerView `json:"workers,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	body := healthBody{
		Status: "ok", Policy: s.cfg.Policy, PoolSize: s.transport.size(),
		FreeServers: len(s.transport.freeSlots()), QueueDepth: s.q.Depth(),
		Pressure: s.q.Pressure(), Totals: s.Totals(),
	}
	if ft, ok := s.transport.(*fleetTransport); ok {
		body.Fleet = true
		body.Workers = ft.workerViews()
	}
	writeJSON(w, http.StatusOK, body)
}
