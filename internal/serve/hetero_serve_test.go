package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/sched"
	"repro/internal/uarch"
)

// mixedFleet is the canonical two-class market the acceptance tests run
// on: a cheap baseline software server and an accelerator priced high
// enough (1¢ per busy second) that its ~10× speed advantage does NOT make
// it the cheaper choice — so the seconds and cost objectives must diverge.
func mixedFleet() sched.Fleet {
	return sched.Fleet{
		backend.ServerSpec{Backend: backend.Software, Config: uarch.Baseline(), PriceCentsHour: 34},
		backend.ServerSpec{Backend: backend.Accel, PriceCentsHour: 3600},
	}
}

// TestCostAwareBeatsFleetSecondsDeterministic is the tentpole acceptance
// gate: on a mixed fleet, cost-aware placement must produce a strictly
// lower total bill than fleet-seconds-only placement at an equal deadline
// -miss count, and the whole comparison must be bit-reproducible.
func TestCostAwareBeatsFleetSecondsDeterministic(t *testing.T) {
	ctx := context.Background()
	tasks := sched.GenerateTasks(6, 42)
	first, err := RunCostComparison(ctx, mixedFleet(), tasks, tinyProto, 42)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunCostComparison(ctx, mixedFleet(), tasks, tinyProto, 42)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("cost comparison not deterministic:\nfirst:  %+v\nsecond: %+v", first, second)
	}
	if first.Seconds.Completed != first.Cost.Completed || first.Cost.Completed != int64(len(tasks)) {
		t.Fatalf("unequal work: seconds completed %d, cost completed %d, want %d",
			first.Seconds.Completed, first.Cost.Completed, len(tasks))
	}
	if first.Seconds.DeadlineMisses != first.Cost.DeadlineMisses {
		t.Fatalf("unequal deadline misses: seconds %d, cost %d",
			first.Seconds.DeadlineMisses, first.Cost.DeadlineMisses)
	}
	if first.Cost.CostCents >= first.Seconds.CostCents {
		t.Fatalf("cost objective did not save money: %.9f¢ vs %.9f¢ under seconds",
			first.Cost.CostCents, first.Seconds.CostCents)
	}
	// The flip side of the trade: the seconds objective must have bought
	// real speed with those dollars (it routed accel-feasible jobs to the
	// ASIC), otherwise the fleets degenerated to the same placement.
	if first.Seconds.SimSeconds >= first.Cost.SimSeconds {
		t.Fatalf("seconds objective not faster: %.6fs vs %.6fs under cost",
			first.Seconds.SimSeconds, first.Cost.SimSeconds)
	}
	if sav := first.Savings(); sav <= 0 || sav > 1 {
		t.Fatalf("savings fraction %f out of range", sav)
	}
}

// TestDeadlineInfeasibleRejectedAtAdmission pins the typed admission
// rejection: a deadline no live server class can predictably meet fails
// Submit with ErrDeadlineInfeasible and returns HTTP 422 with the
// deadline_infeasible reason, before the job ever touches the queue.
func TestDeadlineInfeasibleRejectedAtAdmission(t *testing.T) {
	ctx := context.Background()
	reg := obs.NewRegistry()
	s, err := New(Config{
		Pool: sched.Pool{uarch.Baseline()}, Proto: tinyProto, Seed: 1, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the class: admission is deliberately optimistic while the cost
	// model is cold (it cannot predict what it has never measured).
	if err := s.Warm(ctx, []string{"bbb"}); err != nil {
		t.Fatal(err)
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	s.Start(runCtx)
	defer s.Stop()

	_, err = s.Submit(ctx, JobRequest{Video: "bbb", DeadlineSeconds: 1e-9})
	if !errors.Is(err, ErrDeadlineInfeasible) {
		t.Fatalf("impossible deadline admitted: err = %v", err)
	}
	if got := s.Totals().Rejected; got != 1 {
		t.Fatalf("rejected total %d, want 1", got)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(JobRequest{Video: "bbb", DeadlineSeconds: 1e-9})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity || eb.Reason != "deadline_infeasible" {
		t.Fatalf("HTTP rejection: status %d reason %q, want 422 deadline_infeasible", resp.StatusCode, eb.Reason)
	}

	// A generous deadline sails through and completes without a miss.
	view, err := s.Submit(ctx, JobRequest{Video: "bbb", DeadlineSeconds: 10})
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.WaitJob(ctx, view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.DeadlineMiss {
		t.Fatalf("feasible job ended %s (miss=%v)", final.State, final.DeadlineMiss)
	}
	if got := s.Totals().DeadlineMisses; got != 0 {
		t.Fatalf("deadline misses %d, want 0", got)
	}
}

// TestSpotPreemptionMidLadder is the spot-recovery acceptance gate at the
// wire level: a spot accelerator worker takes one segment part of a
// two-part job and vanishes without notice (kill -9 semantics — no
// disclaim, no result). The lease must expire, ONLY the preempted part be
// re-attempted, the surviving on-demand worker finish everything, and the
// parent's bill price each part exactly once at the settling attempt.
func TestSpotPreemptionMidLadder(t *testing.T) {
	h := newFleetHarness(t, 150*time.Millisecond)
	spot := &protoWorker{t: t, base: h.ts.URL, id: "w-spot", backend: "accel", spot: true}
	onDemand := &protoWorker{t: t, base: h.ts.URL, id: "w1", cfg: "baseline"}

	view, err := h.s.Submit(context.Background(), JobRequest{Video: "bbb", Segments: 2})
	if err != nil {
		t.Fatal(err)
	}
	if view.PartsTotal != 2 {
		t.Fatalf("parts total %d, want 2", view.PartsTotal)
	}

	// The spot worker polls first and is handed one part... then dies.
	aSpot, ok := spot.poll()
	if !ok {
		t.Fatal("spot worker got no assignment")
	}
	if !aSpot.WantStream {
		t.Fatal("segment part assigned without want_stream")
	}
	// The on-demand worker takes the sibling and finishes it properly.
	a1, ok := onDemand.poll()
	if !ok {
		t.Fatal("on-demand worker got no assignment")
	}
	if aSpot.JobID == a1.JobID {
		t.Fatalf("both workers got part %s", a1.JobID)
	}
	onDemand.result(a1, 2.0, "")

	// Silence from the spot worker: its lease expires and the preempted
	// part is requeued; the on-demand worker picks it up and finishes. The
	// tiny TTL can also declare the parked on-demand worker gone between
	// polls, so keep polling — the next request revives it.
	var a2 Assignment
	waitUntil(t, 10*time.Second, "preempted part reassigned", func() bool {
		a, ok := onDemand.poll()
		if ok {
			a2 = a
		}
		return ok
	})
	if a2.JobID != aSpot.JobID {
		t.Fatalf("reassigned part %s, want the preempted %s", a2.JobID, aSpot.JobID)
	}
	onDemand.result(a2, 3.0, "")

	waitUntil(t, 2*time.Second, "parent settles", func() bool {
		v, ok := h.s.Job(view.ID)
		return ok && v.State == StateDone
	})
	parent, ok := h.s.Job(view.ID)
	if !ok {
		t.Fatal("parent vanished")
	}
	if parent.PartsDone != 2 {
		t.Fatalf("parts done %d, want 2", parent.PartsDone)
	}
	if got := h.counter("fleet_lease_reassigned"); got != 1 {
		t.Fatalf("lease reassignments %d, want exactly 1 (the preempted part)", got)
	}

	// Zero loss, minimal re-work: the preempted part carries the extra
	// attempt, its sibling was never touched again.
	var preempted, sibling JobView
	for _, id := range parent.Parts {
		pv, ok := h.s.Job(id)
		if !ok {
			t.Fatalf("part %s vanished", id)
		}
		if pv.ID == aSpot.JobID {
			preempted = pv
		} else {
			sibling = pv
		}
	}
	if preempted.Attempts != 2 {
		t.Fatalf("preempted part attempts %d, want 2", preempted.Attempts)
	}
	if sibling.Attempts != 1 {
		t.Fatalf("untouched sibling attempts %d, want 1", sibling.Attempts)
	}

	// Exactly-once economics: both parts settled on the on-demand software
	// worker (default price), so the bill is (2s + 3s) at that rate — the
	// abandoned spot attempt contributes nothing.
	wantCents := backend.ServerSpec{Backend: backend.Software, Config: uarch.Baseline()}.
		FillDefaults().CostCents(2.0 + 3.0)
	if diff := parent.CostCents - wantCents; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("parent cost %.12f¢, want %.12f¢", parent.CostCents, wantCents)
	}
	if tot := h.s.Totals().CostCents; tot != parent.CostCents {
		t.Fatalf("totals cost %.12f¢, want %.12f¢", tot, parent.CostCents)
	}
	if preempted.Backend != string(backend.Software) {
		t.Fatalf("preempted part settled on %q, want software", preempted.Backend)
	}

	// The spot worker's capability made it to the registry before it died.
	var sawSpot bool
	for _, wv := range h.s.transport.(*fleetTransport).workerViews() {
		if wv.ID == "w-spot" {
			sawSpot = wv.Spot && wv.Backend == string(backend.Accel) && wv.PriceCentsHour > 0
		}
	}
	if !sawSpot {
		t.Fatal("spot worker's economic capability not registered")
	}
}

// TestRenditionStitchesByteIdentical pins the server-side stitch: the
// bitstream GET /jobs/{id}/rendition returns for a segment-parallel job
// must equal the reference stitch of independently encoded segments.
func TestRenditionStitchesByteIdentical(t *testing.T) {
	ctx := context.Background()
	s, err := New(Config{
		Pool:  sched.Pool{uarch.Baseline(), uarch.Baseline()},
		Proto: tinyProto, Seed: 1, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	s.Start(runCtx)
	defer s.Stop()

	view, err := s.Submit(ctx, JobRequest{Video: "bbb", Segments: 2})
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.WaitJob(ctx, view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}

	// Reference: encode the same segments independently, stitch locally.
	task := sched.Task{Video: "bbb", CRF: 23, Refs: 3, Preset: codec.PresetMedium}
	opts, err := task.Options()
	if err != nil {
		t.Fatal(err)
	}
	w := tinyProto
	w.Video = "bbb"
	segs, err := core.SegmentsFor(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	streams := make([][]byte, len(segs))
	for i, sg := range segs {
		res, err := core.EncodeOnly(ctx, core.Job{Workload: w, Options: opts, Segment: sg})
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = res.Stream
	}
	want, err := codec.StitchStreams(streams)
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/jobs/" + view.ID + "/rendition")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rendition status %d: %s", resp.StatusCode, got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("rendition content type %q", ct)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("stitched rendition differs from reference: %d vs %d bytes", len(got), len(want))
	}

	// Error surface: plain jobs carry no rendition, unknown rungs 404.
	plain, err := s.Submit(ctx, JobRequest{Video: "bbb"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitJob(ctx, plain.ID); err != nil {
		t.Fatal(err)
	}
	if _, status, eb := s.rendition(plain.ID, ""); status != http.StatusNotFound || eb.Reason != "no_rendition" {
		t.Fatalf("plain-job rendition: status %d reason %q", status, eb.Reason)
	}
	if _, status, eb := s.rendition(view.ID, "nope"); status != http.StatusNotFound || eb.Reason != "unknown_rung" {
		t.Fatalf("unknown rung: status %d reason %q", status, eb.Reason)
	}
}

// TestAdaptiveLeaseTTL covers the self-tuning lease window: with no
// operator override the TTL starts at 10s, and after observing fast jobs
// it contracts toward 3×p99 (clamped at 1s), which new assignments and
// the published gauge both reflect.
func TestAdaptiveLeaseTTL(t *testing.T) {
	h := newFleetHarness(t, 0) // 0 = adaptive
	w1 := &protoWorker{t: t, base: h.ts.URL, id: "w1", cfg: "baseline"}

	gauge := func() int64 {
		return h.reg.Snapshot().Gauges["fleet_lease_ttl_ms"]
	}
	if got := gauge(); got != 10_000 {
		t.Fatalf("initial adaptive TTL %dms, want 10000", got)
	}

	view, err := h.s.Submit(context.Background(), JobRequest{Video: "bbb"})
	if err != nil {
		t.Fatal(err)
	}
	a1, ok := w1.poll()
	if !ok {
		t.Fatal("no assignment")
	}
	if a1.LeaseTTLMs != 10_000 {
		t.Fatalf("first assignment TTL %dms, want the 10000 start", a1.LeaseTTLMs)
	}
	w1.result(a1, 0.5, "")
	waitUntil(t, 2*time.Second, "job settles", func() bool {
		v, ok := h.s.Job(view.ID)
		return ok && v.State == StateDone
	})

	// One sub-millisecond completion: 3×p99 is far below the floor, so the
	// TTL clamps to 1s and the next lease is cut under the new window.
	if got := gauge(); got != 1000 {
		t.Fatalf("adapted TTL %dms, want the 1000 floor", got)
	}
	if _, err := h.s.Submit(context.Background(), JobRequest{Video: "bbb"}); err != nil {
		t.Fatal(err)
	}
	a2, ok := w1.poll()
	if !ok {
		t.Fatal("no second assignment")
	}
	if a2.LeaseTTLMs != 1000 {
		t.Fatalf("second assignment TTL %dms, want adapted 1000", a2.LeaseTTLMs)
	}
	w1.result(a2, 0.5, "")
}

// BenchmarkDispatchHeterogeneous measures one economic placement decision:
// a four-job warm batch against a ten-slot mixed fleet under the cost
// objective — the matrix build plus the masked Hungarian solve.
func BenchmarkDispatchHeterogeneous(b *testing.B) {
	fleet := make(sched.Fleet, 0, 10)
	for _, cfg := range uarch.TableIV() {
		fleet = append(fleet, backend.ServerSpec{Backend: backend.Software, Config: cfg}.FillDefaults())
	}
	for len(fleet) < 10 {
		fleet = append(fleet, backend.ServerSpec{Backend: backend.Accel}.FillDefaults())
	}
	s, err := New(Config{
		Servers: fleet, Objective: sched.ObjectiveCost,
		Proto: tinyProto, Seed: 1, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	opts := codec.Defaults()
	batch := make([]*record, 4)
	for i := range batch {
		video := sched.GenerateTasks(len(batch), 9)[i].Video
		batch[i] = &record{
			seq: uint64(i + 1), task: sched.Task{Video: video}, opts: opts,
			deadlineSeconds: 1, pw: 128, ph: 80, pframes: 4,
		}
		s.learn(video, &perf.Report{Seconds: 4e-4, Topdown: perf.Topdown{
			FrontEnd: 20 + 10*float64(i), BadSpec: 10,
			MemBound: 30 - 5*float64(i), CoreBound: 20,
		}})
	}
	free := s.transport.freeSlots()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.place(batch, free)
	}
}
