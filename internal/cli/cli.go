// Package cli holds the scaffolding every cmd/* binary shares: flag
// parsing, a signal-canceled root context, uniform error reporting on
// stderr and exit-code conventions. Keeping it in one place is what makes
// Ctrl-C behave identically across the six tools — the context from Main
// reaches the sweep engine, so an 816-point sweep aborts within one
// in-flight job per worker and the process exits non-zero.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/codec"
	"repro/internal/obs"
)

// flagDebugAddr is shared by every cmd/* binary (they all enter through
// Main): when set, the process serves live metrics (/metrics), expvar
// (/debug/vars) and pprof (/debug/pprof) for the duration of the run —
// the observability side door for watching an 816-point sweep from
// another terminal.
var flagDebugAddr = flag.String("debug-addr", "",
	"serve /metrics, expvar and pprof debug endpoints on this address (e.g. localhost:6060)")

// Main parses flags, installs SIGINT/SIGTERM cancellation on the root
// context, optionally starts the -debug-addr endpoint, runs the command
// body, and exits: 0 on success, 130 when the run was canceled (the shell
// convention for death-by-interrupt), 1 on any other error.
func Main(name string, run func(ctx context.Context) error) {
	flag.Parse()
	if *flagDebugAddr != "" {
		addr, err := obs.Serve(*flagDebugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%s: debug endpoint on http://%s/debug/vars\n", name, addr)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := run(ctx)
	stop()
	if err == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		os.Exit(130)
	}
	os.Exit(1)
}

// Ints parses a comma-separated integer list flag value ("1,6,11").
func Ints(s string) ([]int, error) {
	var out []int
	for _, tok := range Strings(s) {
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}

// BaseURL normalizes a server flag into a request base URL: a bare
// host:port gets the http scheme and trailing slashes are trimmed, so both
// "-addr localhost:8080" and "-target http://host:8080/" produce a prefix
// that path concatenation works on.
func BaseURL(s string) string {
	s = strings.TrimRight(s, "/")
	if s != "" && !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return s
}

// Strings splits a comma-separated list flag value, dropping empty tokens
// (so "a,,b," parses the same as "a,b").
func Strings(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// Progress returns a sweep progress callback that rewrites one stderr
// status line per completed point, or nil when off is true. The final call
// terminates the line so subsequent output starts clean.
func Progress(name string, off bool) func(done, total int) {
	if off {
		return nil
	}
	return func(done, total int) {
		fmt.Fprintf(os.Stderr, "\r%s: %d/%d points", name, done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// Summary prints the end-of-run telemetry digest on stderr (one line:
// points, per-point latency quantiles, cache traffic, failures) unless off
// is true. It reads the default obs registry, so it reflects everything
// the process ran.
func Summary(name string, off bool) {
	if off {
		return
	}
	fmt.Fprintln(os.Stderr, SummaryLine(name, obs.Default().Snapshot()))
}

// SummaryLine renders the digest Summary prints; split out so tests can
// pin the format without capturing stderr.
func SummaryLine(name string, s obs.Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", name)
	if total := s.CounterTotal("core_sweep_points_total"); total > 0 {
		fmt.Fprintf(&b, " %d points", total)
		if failed := s.CounterTotal("core_sweep_points_failed"); failed > 0 {
			fmt.Fprintf(&b, " (%d failed)", failed)
		}
	}
	if h, ok := s.HistogramByName("core_sweep_point_ns"); ok && h.Count > 0 {
		fmt.Fprintf(&b, ", point p50 %s p95 %s p99 %s",
			obs.FmtDuration(h.P50), obs.FmtDuration(h.P95), obs.FmtDuration(h.P99))
	}
	if h, ok := s.HistogramByName("core_sweep_warmup_ns"); ok && h.Count > 0 {
		fmt.Fprintf(&b, ", warm-up %s", obs.FmtDuration(h.Sum))
	}
	hits, misses := s.CounterTotal("core_cache_hits"), s.CounterTotal("core_cache_misses")
	if hits+misses > 0 {
		fmt.Fprintf(&b, ", cache %d hits / %d misses", hits, misses)
		if bytes := s.CounterTotal("core_cache_bytes"); bytes > 0 {
			fmt.Fprintf(&b, " (%.1f MiB cached)", float64(bytes)/(1<<20))
		}
	}
	if util, ok := s.Gauges["exec_utilization_pct"]; ok {
		fmt.Fprintf(&b, ", workers %d%% busy", util)
	}
	// Per-encode-stage latency split (populated when stage metrics are on).
	var stages []string
	for st := codec.EncodeStage(0); st < codec.NumEncodeStages; st++ {
		if h, ok := s.HistogramByName("encode_stage_" + st.String() + "_ns"); ok && h.Count > 0 {
			stages = append(stages, fmt.Sprintf("%s %s", st, obs.FmtDuration(h.Sum)))
		}
	}
	if len(stages) > 0 {
		fmt.Fprintf(&b, ", stages [%s]", strings.Join(stages, " "))
	}
	if served := s.CounterTotal("serve_jobs_completed"); served > 0 {
		fmt.Fprintf(&b, ", served %d jobs", served)
		if h, ok := s.HistogramByName("serve_sojourn_ns"); ok && h.Count > 0 {
			fmt.Fprintf(&b, " (sojourn p50 %s p95 %s p99 %s)",
				obs.FmtDuration(h.P50), obs.FmtDuration(h.P95), obs.FmtDuration(h.P99))
		}
		if rejected := s.CounterTotal("serve_jobs_rejected"); rejected > 0 {
			fmt.Fprintf(&b, ", %d rejected", rejected)
		}
	}
	// Multi-part job-graph digest: segment/rung parts completed, plus the
	// fan-out (submit -> all parts dispatched) and stitch (first part done
	// -> parent settled) latencies of the segmented jobs.
	if parts := s.CounterTotal("serve_parts_completed"); parts > 0 {
		fmt.Fprintf(&b, ", %d segment parts", parts)
		fan, okF := s.HistogramByName("serve_fanout_ns")
		st, okS := s.HistogramByName("serve_stitch_ns")
		if okF && fan.Count > 0 && okS && st.Count > 0 {
			fmt.Fprintf(&b, " (fan-out p50 %s, stitch p50 %s)",
				obs.FmtDuration(fan.P50), obs.FmtDuration(st.P50))
		}
	}
	// Fleet orchestrator digest: live workers, how busy, and the failure
	// machinery's activity (reassigned leases, heartbeat misses).
	if workers, ok := s.Gauges["fleet_workers"]; ok {
		fmt.Fprintf(&b, ", fleet %d workers (%d busy)", workers, s.GaugeTotal("fleet_worker_busy"))
		if re := s.CounterTotal("fleet_lease_reassigned"); re > 0 {
			fmt.Fprintf(&b, ", %d leases reassigned", re)
		}
		if miss := s.CounterTotal("fleet_heartbeat_miss"); miss > 0 {
			fmt.Fprintf(&b, ", %d heartbeat misses", miss)
		}
	}
	// Worker-side digest (cmd/worker processes).
	if ran := s.CounterTotal("worker_jobs_done"); ran > 0 {
		fmt.Fprintf(&b, ", ran %d leased jobs", ran)
		if aborts := s.CounterTotal("worker_lease_aborts"); aborts > 0 {
			fmt.Fprintf(&b, " (%d aborted)", aborts)
		}
	}
	return b.String()
}
