// Package cli holds the scaffolding every cmd/* binary shares: flag
// parsing, a signal-canceled root context, uniform error reporting on
// stderr and exit-code conventions. Keeping it in one place is what makes
// Ctrl-C behave identically across the six tools — the context from Main
// reaches the sweep engine, so an 816-point sweep aborts within one
// in-flight job per worker and the process exits non-zero.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
)

// Main parses flags, installs SIGINT/SIGTERM cancellation on the root
// context, runs the command body, and exits: 0 on success, 130 when the
// run was canceled (the shell convention for death-by-interrupt), 1 on any
// other error.
func Main(name string, run func(ctx context.Context) error) {
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := run(ctx)
	stop()
	if err == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		os.Exit(130)
	}
	os.Exit(1)
}

// Ints parses a comma-separated integer list flag value ("1,6,11").
func Ints(s string) ([]int, error) {
	var out []int
	for _, tok := range Strings(s) {
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}

// Strings splits a comma-separated list flag value, dropping empty tokens
// (so "a,,b," parses the same as "a,b").
func Strings(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// Progress returns a sweep progress callback that rewrites one stderr
// status line per completed point, or nil when off is true. The final call
// terminates the line so subsequent output starts clean.
func Progress(name string, off bool) func(done, total int) {
	if off {
		return nil
	}
	return func(done, total int) {
		fmt.Fprintf(os.Stderr, "\r%s: %d/%d points", name, done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}
