package cli

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestInts(t *testing.T) {
	got, err := Ints("1,6,,11,")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, 6, 11}) {
		t.Fatalf("Ints = %v", got)
	}
	if _, err := Ints("1,x"); err == nil {
		t.Fatal("bad token accepted")
	}
	got, err = Ints("")
	if err != nil || got != nil {
		t.Fatalf("empty list = %v, %v", got, err)
	}
}

func TestStrings(t *testing.T) {
	if got := Strings("a,,b,"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Strings = %v", got)
	}
	if got := Strings(""); got != nil {
		t.Fatalf("Strings(\"\") = %v", got)
	}
}

func TestProgressOff(t *testing.T) {
	if Progress("x", true) != nil {
		t.Fatal("off progress not nil")
	}
	if Progress("x", false) == nil {
		t.Fatal("on progress is nil")
	}
}

func TestSummaryLine(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("core_sweep_points_total").Add(16)
	r.Counter("core_sweep_points_failed").Add(2)
	r.Counter("core_cache_hits", "cache", "snapshot").Add(12)
	r.Counter("core_cache_misses", "cache", "snapshot").Add(4)
	r.Counter("core_cache_bytes", "cache", "decoded").Add(3 << 20)
	for i := 0; i < 16; i++ {
		r.Histogram("core_sweep_point_ns").Observe(int64(50+i) * 1e6)
	}
	r.Gauge("exec_utilization_pct").Set(93)
	line := SummaryLine("sweep", r.Snapshot())
	for _, want := range []string{
		"sweep:", "16 points", "(2 failed)", "p50", "p95", "p99",
		"12 hits / 4 misses", "3.0 MiB cached", "93% busy",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("summary line missing %q: %s", want, line)
		}
	}
}

func TestSummaryLineServe(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("serve_jobs_completed").Add(50)
	r.Counter("serve_jobs_rejected").Add(3)
	for i := 0; i < 50; i++ {
		r.Histogram("serve_sojourn_ns").Observe(int64(10+i) * 1e6)
	}
	line := SummaryLine("serve", r.Snapshot())
	for _, want := range []string{
		"serve:", "served 50 jobs", "sojourn p50", "p95", "p99", "3 rejected",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("summary line missing %q: %s", want, line)
		}
	}
	if strings.Contains(line, "segment parts") {
		t.Errorf("summary line mentions parts without any: %s", line)
	}

	// Segmented/ladder jobs add the part digest with both graph latencies.
	r.Counter("serve_parts_completed").Add(8)
	r.Histogram("serve_fanout_ns").Observe(2e6)
	r.Histogram("serve_stitch_ns").Observe(5e6)
	line = SummaryLine("serve", r.Snapshot())
	for _, want := range []string{"8 segment parts", "fan-out p50", "stitch p50"} {
		if !strings.Contains(line, want) {
			t.Errorf("summary line missing %q: %s", want, line)
		}
	}
}

func TestBaseURL(t *testing.T) {
	for in, want := range map[string]string{
		"localhost:8080":      "http://localhost:8080",
		"http://host:8080/":   "http://host:8080",
		"https://host/":       "https://host",
		"http://host:8080///": "http://host:8080",
		"10.0.0.7:9090":       "http://10.0.0.7:9090",
		"":                    "",
	} {
		if got := BaseURL(in); got != want {
			t.Errorf("BaseURL(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSummaryLineFleet(t *testing.T) {
	r := obs.NewRegistry()
	r.Gauge("fleet_workers").Set(3)
	r.Gauge("fleet_worker_busy", "worker", "w1").Set(1)
	r.Gauge("fleet_worker_busy", "worker", "w2").Set(1)
	r.Counter("fleet_lease_reassigned").Add(2)
	r.Counter("fleet_heartbeat_miss").Add(1)
	line := SummaryLine("serve", r.Snapshot())
	for _, want := range []string{
		"fleet 3 workers (2 busy)", "2 leases reassigned", "1 heartbeat misses",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("fleet summary missing %q: %s", want, line)
		}
	}

	// Worker-side digest renders independently of the orchestrator clause.
	w := obs.NewRegistry()
	w.Counter("worker_jobs_done").Add(7)
	w.Counter("worker_lease_aborts").Add(1)
	line = SummaryLine("worker", w.Snapshot())
	for _, want := range []string{"ran 7 leased jobs", "(1 aborted)"} {
		if !strings.Contains(line, want) {
			t.Errorf("worker summary missing %q: %s", want, line)
		}
	}
}

func TestSummaryLineEmpty(t *testing.T) {
	// A run that swept nothing still renders a valid (terse) line.
	if got := SummaryLine("vprof", obs.NewRegistry().Snapshot()); got != "vprof:" {
		t.Fatalf("empty summary = %q", got)
	}
}
