package cli

import (
	"reflect"
	"testing"
)

func TestInts(t *testing.T) {
	got, err := Ints("1,6,,11,")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, 6, 11}) {
		t.Fatalf("Ints = %v", got)
	}
	if _, err := Ints("1,x"); err == nil {
		t.Fatal("bad token accepted")
	}
	got, err = Ints("")
	if err != nil || got != nil {
		t.Fatalf("empty list = %v, %v", got, err)
	}
}

func TestStrings(t *testing.T) {
	if got := Strings("a,,b,"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Strings = %v", got)
	}
	if got := Strings(""); got != nil {
		t.Fatalf("Strings(\"\") = %v", got)
	}
}

func TestProgressOff(t *testing.T) {
	if Progress("x", true) != nil {
		t.Fatal("off progress not nil")
	}
	if Progress("x", false) == nil {
		t.Fatal("on progress is nil")
	}
}
