package vbench

import (
	"testing"

	"repro/internal/frame"
)

func TestCatalogMatchesTableI(t *testing.T) {
	if len(Catalog) != 15 {
		t.Fatalf("catalog has %d entries, Table I lists 15", len(Catalog))
	}
	// Spot-check the published rows.
	checks := []struct {
		name    string
		w, h    int
		fps     int
		entropy float64
	}{
		{"desktop", 1280, 720, 30, 0.2},
		{"chicken", 3840, 2160, 30, 5.9},
		{"hall", 1920, 1080, 29, 7.7},
		{"holi", 854, 480, 30, 7.0},
	}
	for _, c := range checks {
		v, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if v.Width != c.w || v.Height != c.h || v.FPS != c.fps || v.Entropy != c.entropy {
			t.Errorf("%s: got %+v", c.name, v)
		}
	}
	// Catalog is in ascending entropy order, as in the paper.
	for i := 1; i < len(Catalog); i++ {
		if Catalog[i].Entropy < Catalog[i-1].Entropy {
			t.Errorf("catalog not entropy-sorted at %s", Catalog[i].ShortName)
		}
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name must error")
	}
	if v, err := ByName("bbb"); err != nil || v.ShortName != "bbb" {
		t.Fatal("big buck bunny must resolve")
	}
}

func TestNamesOrder(t *testing.T) {
	names := Names()
	if len(names) != 15 || names[0] != "desktop" || names[14] != "hall" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestResolutionLabel(t *testing.T) {
	v, _ := ByName("chicken")
	if v.Resolution() != "2160p" {
		t.Fatalf("resolution %s", v.Resolution())
	}
}

func TestSourceDeterministic(t *testing.T) {
	info, _ := ByName("cricket")
	a := NewSource(info, SourceOptions{Scale: 8})
	b := NewSource(info, SourceOptions{Scale: 8})
	fa, fb := a.Frame(5), b.Frame(5)
	for i := range fa.Y.Pix {
		if fa.Y.Pix[i] != fb.Y.Pix[i] {
			t.Fatal("same source parameters must give identical pixels")
		}
	}
}

func TestSourceSeedChangesContent(t *testing.T) {
	info, _ := ByName("cricket")
	a := NewSource(info, SourceOptions{Scale: 8, Seed: 1})
	b := NewSource(info, SourceOptions{Scale: 8, Seed: 2})
	fa, fb := a.Frame(0), b.Frame(0)
	diff := 0
	for i := range fa.Y.Pix {
		if fa.Y.Pix[i] != fb.Y.Pix[i] {
			diff++
		}
	}
	if diff < len(fa.Y.Pix)/4 {
		t.Fatalf("different seeds gave nearly identical frames (%d differing)", diff)
	}
}

func TestSourceScaleGeometry(t *testing.T) {
	info, _ := ByName("presentation") // 1920x1080
	s := NewSource(info, SourceOptions{Scale: 4})
	if s.W != 480 || s.H%16 != 0 {
		t.Fatalf("scaled dims %dx%d", s.W, s.H)
	}
	f := s.Frame(0)
	if f.Width != s.W || f.Height != s.H {
		t.Fatal("frame dims disagree with source dims")
	}
	// A deep scale is floored to a usable size.
	tiny := NewSource(info, SourceOptions{Scale: 100})
	if tiny.W < 64 || tiny.H < 64 {
		t.Fatalf("floor violated: %dx%d", tiny.W, tiny.H)
	}
}

// temporalEnergy sums |frame(i) - frame(i+1)| over the luma plane: the raw
// difficulty motion estimation faces.
func temporalEnergy(s *Source, frames int) int64 {
	var total int64
	prev := s.Frame(0)
	for i := 1; i < frames; i++ {
		cur := s.Frame(i)
		total += frame.SSD(&cur.Y, 0, 0, &prev.Y, 0, 0, cur.Y.W, cur.Y.H)
		prev = cur
	}
	return total
}

func TestEntropyDrivesTemporalComplexity(t *testing.T) {
	// The synthetic catalog must preserve the paper's complexity ordering:
	// high-entropy content has far more temporal energy than screen content.
	low, _ := ByName("desktop") // entropy 0.2
	high, _ := ByName("hall")   // entropy 7.7
	// Compare at equal synthesis size to isolate the content effect.
	lowSrc := NewSource(low, SourceOptions{Scale: 8})
	highSrc := NewSource(high, SourceOptions{Scale: 12})
	le := temporalEnergy(lowSrc, 6) / int64(lowSrc.W*lowSrc.H)
	he := temporalEnergy(highSrc, 6) / int64(highSrc.W*highSrc.H)
	if he < 4*le {
		t.Fatalf("entropy 7.7 energy (%d) not >> entropy 0.2 energy (%d)", he, le)
	}
}

func TestSceneCutsScaleWithEntropy(t *testing.T) {
	low, _ := ByName("desktop")
	high, _ := ByName("hall")
	ls := NewSource(low, SourceOptions{Scale: 8})
	hs := NewSource(high, SourceOptions{Scale: 8})
	if ls.sceneLen <= hs.sceneLen {
		t.Fatalf("scene length should shrink with entropy: low %d, high %d", ls.sceneLen, hs.sceneLen)
	}
}

func TestFrameCount(t *testing.T) {
	info, _ := ByName("game1") // 60 fps
	s := NewSource(info, SourceOptions{Scale: 8})
	if n := s.FrameCount(5); n != 300 {
		t.Fatalf("5 s at 60 fps = %d frames", n)
	}
}

func BenchmarkFrameSynthesis(b *testing.B) {
	info, _ := ByName("cricket")
	s := NewSource(info, SourceOptions{Scale: 4})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Frame(i % 120)
	}
}
