// Package vbench provides the video workload substrate: the published
// vbench catalog (Table I of the paper) and a deterministic synthetic video
// generator whose content complexity is driven by the catalog's entropy
// metric.
//
// The real vbench suite ships 15 five-second clips selected by clustering a
// corpus of millions of cloud videos; the clips themselves are not
// redistributable here, so Source synthesizes content with the same
// *encoder-relevant* properties: texture detail, motion magnitude, and
// scene-cut frequency all scale with the published entropy value. Higher
// entropy therefore costs the encoder more search effort and more residual
// bits, exactly the causal role entropy plays in the paper.
package vbench

import "fmt"

// VideoInfo describes one catalog entry (one row of Table I).
type VideoInfo struct {
	FullName  string  // original vbench file name
	ShortName string  // name used throughout the paper's figures
	Width     int     // luma width in pixels
	Height    int     // luma height in pixels
	FPS       int     // frames per second
	Entropy   float64 // vbench complexity metric (bits needed for visually lossless coding)
}

// Resolution returns the conventional vertical-line label, e.g. "1080p".
func (v VideoInfo) Resolution() string { return fmt.Sprintf("%dp", v.Height) }

// Catalog lists the 15 vbench videos of Table I in ascending entropy order,
// exactly as published.
var Catalog = []VideoInfo{
	{"desktop_1280x720_30.mkv", "desktop", 1280, 720, 30, 0.2},
	{"presentation_1920x1080_25.mkv", "presentation", 1920, 1080, 25, 0.2},
	{"bike_1280x720_29.mkv", "bike", 1280, 720, 29, 0.9},
	{"funny_1920x1080_30.mkv", "funny", 1920, 1080, 30, 2.5},
	{"cricket_1280x720_30.mkv", "cricket", 1280, 720, 30, 3.4},
	{"house_1920x1080_30.mkv", "house", 1920, 1080, 30, 3.6},
	{"game1_1920x1080_60.mkv", "game1", 1920, 1080, 60, 4.6},
	{"game2_1280x720_30.mkv", "game2", 1280, 720, 30, 4.9},
	{"girl_1280x720_30.mkv", "girl", 1280, 720, 30, 5.9},
	{"chicken_3840x2160_30.mkv", "chicken", 3840, 2160, 30, 5.9},
	{"game3_1280x720_59.mkv", "game3", 1280, 720, 59, 6.1},
	{"cat_854x480_29.mkv", "cat", 854, 480, 29, 6.8},
	{"holi_854x480_30.mkv", "holi", 854, 480, 30, 7.0},
	{"landscape_1920x1080_29.mkv", "landscape", 1920, 1080, 29, 7.2},
	{"hall_1920x1080_29.mkv", "hall", 1920, 1080, 29, 7.7},
}

// BigBuckBunny is the additional widely-studied test video the paper uses
// alongside vbench.
var BigBuckBunny = VideoInfo{"big_buck_bunny_1920x1080_30.mkv", "bbb", 1920, 1080, 30, 3.0}

// ByName returns the catalog entry (or BigBuckBunny) with the given short
// name.
func ByName(short string) (VideoInfo, error) {
	if short == BigBuckBunny.ShortName {
		return BigBuckBunny, nil
	}
	for _, v := range Catalog {
		if v.ShortName == short {
			return v, nil
		}
	}
	return VideoInfo{}, fmt.Errorf("vbench: unknown video %q", short)
}

// Names returns the short names of the catalog in Table I order.
func Names() []string {
	out := make([]string, len(Catalog))
	for i, v := range Catalog {
		out[i] = v.ShortName
	}
	return out
}
