package vbench

import (
	"math"

	"repro/internal/frame"
)

// SourceOptions control synthesis.
type SourceOptions struct {
	// Scale divides the catalog resolution by this factor (rounded up to a
	// multiple of 16). Scale 1 synthesizes at full resolution. Experiments
	// use proxy scales so that cycle-level simulation stays tractable; see
	// DESIGN.md §6.
	Scale int
	// Seed perturbs the deterministic content. Zero selects a per-video
	// default derived from the video name, so each catalog entry has stable,
	// distinct content.
	Seed uint64
}

// Source deterministically synthesizes the frames of one catalog video.
// Content is a layered value-noise background with global pan, a set of
// independently moving textured objects, per-frame sensor noise, and
// periodic scene cuts. All four layers scale with the video's entropy, so
// the encoder-visible complexity ordering of the synthetic catalog matches
// the published one.
type Source struct {
	Info  VideoInfo
	W, H  int // synthesis resolution (after scaling)
	seed  uint64
	scale int
	// Derived complexity knobs.
	sceneLen int     // frames per scene before a hard cut
	panVX    float64 // background pan, luma pixels per frame
	panVY    float64
	objects  int // number of moving foreground objects
	fineAmp  int // high-frequency texture amplitude
	midAmp   int // mid-frequency texture amplitude
	noiseAmp int // per-frame temporal (sensor) noise amplitude
}

// roundUp16 rounds n up to the next multiple of 16, with a floor of 64 so
// even deeply scaled proxies keep a few macroblock rows.
func roundUp16(n int) int {
	if n < 64 {
		n = 64
	}
	return (n + 15) &^ 15
}

// ProxyDims reports the proxy frame geometry a Source would synthesize for
// info at the given downscale factor — the same rounding NewSource applies.
// Exposed so capacity models (e.g. the accelerator wall-clock model) can
// size a job without building a Source.
func ProxyDims(info VideoInfo, scale int) (w, h int) {
	if scale < 1 {
		scale = 1
	}
	return roundUp16(info.Width / scale), roundUp16(info.Height / scale)
}

// NewSource builds a Source for the given catalog entry.
func NewSource(info VideoInfo, opts SourceOptions) *Source {
	scale := opts.Scale
	if scale < 1 {
		scale = 1
	}
	seed := opts.Seed
	if seed == 0 {
		seed = hashString(info.ShortName)
	}
	e := info.Entropy
	s := &Source{
		Info:  info,
		W:     roundUp16(info.Width / scale),
		H:     roundUp16(info.Height / scale),
		seed:  seed,
		scale: scale,
	}
	// Scene cuts: high-entropy content cuts every second or two; screen
	// content essentially never within a 5 s clip.
	s.sceneLen = int(4 * float64(info.FPS) / (0.5 + e))
	if s.sceneLen < 8 {
		s.sceneLen = 8
	}
	// Pan velocity in synthesis pixels per frame; direction from the seed.
	// A deliberate fractional component keeps the motion off the integer
	// grid most frames (real camera motion is never pixel-aligned).
	v := (0.3+1.1*e)/float64(scale) + 0.21 + float64(mix(seed, 9)%40)/100
	if mix(seed, 1)%2 == 0 {
		v = -v
	}
	s.panVX = v
	s.panVY = v * (0.25 + float64(mix(seed, 2)%50)/100)
	s.objects = 1 + int(e/1.4)
	s.fineAmp = 4 + int(e*6)
	s.midAmp = 18 + int(e*4)
	s.noiseAmp = int(e * 1.1)
	return s
}

// FrameCount returns the number of frames in a clip of the given duration in
// seconds (vbench clips are 5 s).
func (s *Source) FrameCount(seconds float64) int {
	return int(seconds * float64(s.Info.FPS))
}

// Frame synthesizes frame i. Calls are pure: the same i always yields the
// same pixels.
func (s *Source) Frame(i int) *frame.Frame {
	f := frame.New(s.W, s.H)
	f.PTS = i
	scene := 0
	t := i
	if s.sceneLen > 0 {
		scene = i / s.sceneLen
		t = i % s.sceneLen
	}
	sceneSeed := mix(s.seed, uint64(scene)*0x9E3779B97F4A7C15+0xABCD)

	// Pan tracked in quarter-pel units: consecutive frames shift by
	// fractional amounts, so motion compensation from the previous frame
	// needs interpolation (lossy), while every few frames the cumulative
	// shift realigns to an integer and an *older* reference matches
	// exactly — the classic reason multiple reference frames pay off.
	panXq := int(s.panVX * 4 * float64(t))
	panYq := int(s.panVY * 4 * float64(t))
	panX := panXq >> 2
	panY := panYq >> 2

	// Background: three octaves of value noise sampled at quarter-pel
	// world coordinates so that the pan is smooth sub-pel translation.
	y := &f.Y
	for py := 0; py < s.H; py++ {
		row := y.Row(py)
		wyq := py*4 + panYq
		for px := 0; px < s.W; px++ {
			wxq := px*4 + panXq
			v := 110 +
				(vnoise(sceneSeed, wxq, wyq, 64*4)-128)*90/128 +
				(vnoise(sceneSeed+7, wxq, wyq, 16*4)-128)*s.midAmp/128 +
				(vnoise(sceneSeed+13, wxq, wyq, 4*4)-128)*s.fineAmp/128
			row[px] = clamp255(v)
		}
	}

	// Moving objects: textured rectangles with their own velocities.
	for o := 0; o < s.objects; o++ {
		s.drawObject(f, sceneSeed, o, t)
	}

	// Temporal sensor noise: decorrelates successive frames in proportion to
	// entropy, so even perfect motion compensation leaves residual energy.
	if s.noiseAmp > 0 {
		frameSeed := mix(sceneSeed, 0xF00D+uint64(t))
		for py := 0; py < s.H; py++ {
			row := y.Row(py)
			for px := 0; px < s.W; px += 2 {
				n := int(hash2(frameSeed, int32(px), int32(py))&0xFF) - 128
				row[px] = clamp255(int(row[px]) + n*s.noiseAmp/128)
			}
		}
	}

	// Chroma: smooth low-amplitude noise around mid-grey, panned with luma.
	fillChroma(&f.Cb, sceneSeed+101, panX/2, panY/2)
	fillChroma(&f.Cr, sceneSeed+211, panX/2, panY/2)

	f.ExtendEdges()
	return f
}

// drawObject renders moving object o for scene-relative time t.
func (s *Source) drawObject(f *frame.Frame, sceneSeed uint64, o, t int) {
	oseed := mix(sceneSeed, 0xB0B0+uint64(o))
	// Objects are large enough that their motion occludes and reveals
	// meaningful background area each frame — the phenomenon that makes
	// older reference frames (refs > 1) pay off, as in real content.
	ow := 24 + int(mix(oseed, 1)%uint64(s.W/3+1))
	oh := 16 + int(mix(oseed, 2)%uint64(s.H/3+1))
	// Velocity grows with entropy; objects move against the pan direction
	// half the time, which maximizes search effort. Motion is oscillatory
	// (sports-like): an object returns near earlier positions, so the
	// background it revealed there is best predicted from older frames.
	vmax := 0.5 + 1.6*s.Info.Entropy/float64(s.scale)
	vx := vmax * (float64(mix(oseed, 3)%200)/100 - 1)
	vy := vmax * (float64(mix(oseed, 4)%200)/100 - 1) * 0.6
	x0 := int(mix(oseed, 5) % uint64(s.W))
	y0 := int(mix(oseed, 6) % uint64(s.H))
	period := 6 + int(mix(oseed, 7)%10)
	amp := float64(period) / 2
	osc := amp * math.Sin(2*math.Pi*float64(t)/float64(period))
	// Positions wrap around the picture.
	ox := modInt(x0+int(vx*float64(t)+osc*vx), s.W)
	oy := modInt(y0+int(vy*float64(t)+osc*vy), s.H)

	y := &f.Y
	for j := 0; j < oh; j++ {
		py := oy + j
		if py >= s.H {
			break
		}
		row := y.Row(py)
		for i := 0; i < ow; i++ {
			px := ox + i
			if px >= s.W {
				break
			}
			v := 70 + (vnoise(oseed, i, j, 8)-128)*100/128
			row[px] = clamp255(v)
		}
	}
}

// fillChroma writes panned smooth noise into a chroma plane.
func fillChroma(p *frame.Plane, seed uint64, panX, panY int) {
	for py := 0; py < p.H; py++ {
		row := p.Row(py)
		for px := 0; px < p.W; px++ {
			v := 128 + (vnoise(seed, px+panX, py+panY, 32)-128)*24/128
			row[px] = clamp255(v)
		}
	}
}

func clamp255(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

func modInt(a, m int) int {
	a %= m
	if a < 0 {
		a += m
	}
	return a
}

// --- deterministic hashing -------------------------------------------------

func mix(seed, v uint64) uint64 {
	h := seed + v*0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

func hashString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

func hash2(seed uint64, x, y int32) uint32 {
	return uint32(mix(seed, uint64(uint32(x))<<32|uint64(uint32(y))))
}

// vnoise returns smooth value noise in [0, 255] at point (x, y) with the
// given lattice wavelength, using bilinear interpolation of hashed lattice
// values with smoothstep easing.
func vnoise(seed uint64, x, y, wl int) int {
	xf := modInt(x, wl)
	yf := modInt(y, wl)
	xi := int32((x - xf) / wl)
	yi := int32((y - yf) / wl)
	v00 := int(hash2(seed, xi, yi) & 0xFF)
	v10 := int(hash2(seed, xi+1, yi) & 0xFF)
	v01 := int(hash2(seed, xi, yi+1) & 0xFF)
	v11 := int(hash2(seed, xi+1, yi+1) & 0xFF)
	// Smoothstep weights in 1/256 units.
	tx := (xf*256 + 128) / wl
	ty := (yf*256 + 128) / wl
	tx = tx * tx * (3*256 - 2*tx) / (256 * 256)
	ty = ty * ty * (3*256 - 2*ty) / (256 * 256)
	top := v00 + (v10-v00)*tx/256
	bot := v01 + (v11-v01)*tx/256
	return top + (bot-top)*ty/256
}
