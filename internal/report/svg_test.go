package report

import (
	"strings"
	"testing"
)

func TestSVGHeatmapWellFormed(t *testing.T) {
	var b strings.Builder
	vals := [][]float64{{1, 2, 3}, {4, 5, 6}}
	err := SVGHeatmap(&b, "fig3a <FE>", []string{"crf01", "crf51"}, []string{"r1", "r2", "r3"},
		func(i, j int) float64 { return vals[i][j] })
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not an svg document")
	}
	if strings.Count(out, "<rect") < 6 {
		t.Fatal("missing cells")
	}
	if !strings.Contains(out, "fig3a &lt;FE&gt;") {
		t.Fatal("title not escaped")
	}
	if strings.Contains(out, "NaN") {
		t.Fatal("NaN leaked into svg")
	}
}

func TestSVGLinesWellFormed(t *testing.T) {
	var b strings.Builder
	err := SVGLines(&b, "time vs refs", "ms", []string{"1", "2", "4", "8"},
		[]Series{
			{Name: "crf10", Points: []float64{10, 12, 14, 15}},
			{Name: "crf40", Points: []float64{5, 5.5, 5.7, 5.7}},
		})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "<polyline") != 2 {
		t.Fatal("series count wrong")
	}
	if strings.Count(out, "<circle") != 8 {
		t.Fatal("marker count wrong")
	}
	if !strings.Contains(out, "crf40") {
		t.Fatal("legend missing")
	}
}

func TestSVGLinesSinglePoint(t *testing.T) {
	var b strings.Builder
	err := SVGLines(&b, "degenerate", "y", []string{"only"},
		[]Series{{Name: "s", Points: []float64{3}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<circle") {
		t.Fatal("single point lost")
	}
}

func TestSVGBarsWellFormed(t *testing.T) {
	var b strings.Builder
	err := SVGBars(&b, "speedups", "%", []string{"task1", "task2"},
		[]Series{
			{Name: "random", Points: []float64{2, 3}},
			{Name: "smart", Points: []float64{4, 5}},
			{Name: "best", Points: []float64{5, 6}},
		})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// 6 bars + frame + 3 legend swatches.
	if strings.Count(out, "<rect") < 10 {
		t.Fatalf("bar count wrong:\n%s", out)
	}
}

func TestHeatColorEndpoints(t *testing.T) {
	if heatColor(0) != "#ffffff" {
		t.Fatalf("cold endpoint %s", heatColor(0))
	}
	if heatColor(1) == heatColor(0) {
		t.Fatal("ramp is flat")
	}
	// Out-of-range inputs clamp.
	if heatColor(-5) != heatColor(0) || heatColor(5) != heatColor(1) {
		t.Fatal("clamping broken")
	}
}
