// Package report renders experiment results as aligned ASCII tables,
// textual heatmaps and CSV, the formats cmd/paper uses to regenerate every
// table and figure of the paper.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table writes an aligned text table.
func Table(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(headers)); err != nil {
		return err
	}
	total := len(widths)*2 - 2
	for _, wd := range widths {
		total += wd
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes rows as comma-separated values (no quoting; callers pass
// simple numeric/identifier cells).
func CSV(w io.Writer, headers []string, rows [][]string) error {
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, strings.Join(r, ",")); err != nil {
			return err
		}
	}
	return nil
}

// heatChars maps normalized intensity to glyphs, light to dark.
var heatChars = []rune(" .:-=+*#%@")

// Heatmap renders a 2-D field as a character raster with row/column labels
// and a scale legend. vals(i, j) supplies the cell for row i, column j.
func Heatmap(w io.Writer, title string, rowLabels, colLabels []string, vals func(i, j int) float64) error {
	lo, hi := vals(0, 0), vals(0, 0)
	for i := range rowLabels {
		for j := range colLabels {
			v := vals(i, j)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s  [min=%.3g max=%.3g]\n", title, lo, hi); err != nil {
		return err
	}
	labW := 0
	for _, l := range rowLabels {
		if len(l) > labW {
			labW = len(l)
		}
	}
	// Column header (first character of each label, plus a legend line).
	if _, err := fmt.Fprintf(w, "%*s  %s\n", labW, "", strings.Join(colLabels, " ")); err != nil {
		return err
	}
	span := hi - lo
	for i, rl := range rowLabels {
		var b strings.Builder
		for j, cl := range colLabels {
			v := vals(i, j)
			t := 0.0
			if span > 0 {
				t = (v - lo) / span
			}
			idx := int(t * float64(len(heatChars)-1))
			ch := heatChars[idx]
			cell := strings.Repeat(string(ch), len(cl))
			b.WriteString(cell)
			if j < len(colLabels)-1 {
				b.WriteString(" ")
			}
		}
		if _, err := fmt.Fprintf(w, "%*s  %s\n", labW, rl, b.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "scale: '%s' = %.3g ... '%s' = %.3g\n",
		string(heatChars[0]), lo, string(heatChars[len(heatChars)-1]), hi)
	return err
}

// F formats a float compactly for table cells.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// I formats an int.
func I(v int) string { return fmt.Sprintf("%d", v) }
