package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	var b strings.Builder
	err := Table(&b, []string{"name", "value"}, [][]string{
		{"short", "1"},
		{"much-longer-cell", "22"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines: %q", out)
	}
	// The value column starts at the same offset in every row.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][idx-len("short")+len("short"):], "") {
		t.Fatal("unreachable")
	}
	if strings.Index(lines[3], "22") != strings.Index(lines[0], "value") {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	if err := CSV(&b, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}}); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,4\n"
	if b.String() != want {
		t.Fatalf("csv %q", b.String())
	}
}

func TestHeatmapRendersScale(t *testing.T) {
	var b strings.Builder
	vals := [][]float64{{0, 1, 2}, {3, 4, 5}}
	err := Heatmap(&b, "test map", []string{"r0", "r1"}, []string{"c0", "c1", "c2"},
		func(i, j int) float64 { return vals[i][j] })
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, needle := range []string{"test map", "min=0", "max=5", "r0", "r1", "scale:"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("heatmap missing %q:\n%s", needle, out)
		}
	}
	// Highest cell uses the darkest glyph, lowest the lightest.
	if !strings.Contains(out, "@") {
		t.Fatalf("no dark glyph for max:\n%s", out)
	}
}

func TestHeatmapFlatField(t *testing.T) {
	var b strings.Builder
	err := Heatmap(&b, "flat", []string{"r"}, []string{"c"}, func(i, j int) float64 { return 7 })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "min=7 max=7") {
		t.Fatalf("flat field mishandled:\n%s", b.String())
	}
}

func TestFormatters(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Fatal(F(3.14159, 2))
	}
	if I(42) != "42" {
		t.Fatal(I(42))
	}
}
