package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// SVG rendering for the paper's figures: heatmaps (Figures 3 and 5) and
// multi-series line charts (Figures 4, 6-9). Pure stdlib, deterministic
// output, no fonts beyond generic sans-serif.

// svgEscape sanitizes text nodes.
func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// heatColor maps t in [0,1] onto a white->blue->red ramp.
func heatColor(t float64) string {
	t = math.Max(0, math.Min(1, t))
	// Piecewise: white (1,1,1) -> steel blue (0.25,0.45,0.8) -> firebrick (0.8,0.15,0.15).
	var r, g, b float64
	if t < 0.5 {
		u := t * 2
		r = 1 + (0.25-1)*u
		g = 1 + (0.45-1)*u
		b = 1 + (0.80-1)*u
	} else {
		u := (t - 0.5) * 2
		r = 0.25 + (0.80-0.25)*u
		g = 0.45 + (0.15-0.45)*u
		b = 0.80 + (0.15-0.80)*u
	}
	return fmt.Sprintf("#%02x%02x%02x", int(r*255), int(g*255), int(b*255))
}

// SVGHeatmap renders a labelled heatmap. vals(i, j) supplies the cell for
// row i, column j.
func SVGHeatmap(w io.Writer, title string, rowLabels, colLabels []string, vals func(i, j int) float64) error {
	const cell, labW, labH, pad = 26, 64, 40, 10
	width := labW + cell*len(colLabels) + 110 + pad
	height := labH + cell*len(rowLabels) + pad + 22

	lo, hi := vals(0, 0), vals(0, 0)
	for i := range rowLabels {
		for j := range colLabels {
			v := vals(i, j)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13" font-weight="bold">%s</text>`+"\n", pad, svgEscape(title))
	for j, cl := range colLabels {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
			labW+j*cell+cell/2, labH-6, svgEscape(cl))
	}
	for i, rl := range rowLabels {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%s</text>`+"\n",
			labW-6, labH+i*cell+cell/2+4, svgEscape(rl))
		for j := range colLabels {
			v := vals(i, j)
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"><title>%s/%s: %.4g</title></rect>`+"\n",
				labW+j*cell, labH+i*cell, cell-1, cell-1,
				heatColor((v-lo)/span), svgEscape(rl), svgEscape(colLabels[j]), v)
		}
	}
	// Legend.
	lx := labW + cell*len(colLabels) + 18
	for k := 0; k <= 20; k++ {
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="16" height="%d" fill="%s"/>`+"\n",
			lx, labH+k*cell*len(rowLabels)/21, cell*len(rowLabels)/21+1, heatColor(1-float64(k)/20))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d">%.3g</text>`+"\n", lx+20, labH+10, hi)
	fmt.Fprintf(&b, `<text x="%d" y="%d">%.3g</text>`+"\n", lx+20, labH+cell*len(rowLabels), lo)
	fmt.Fprint(&b, "</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is one line of a chart.
type Series struct {
	Name   string
	Points []float64 // y values, one per x label
}

var seriesColors = []string{
	"#3b6fb3", "#c8503c", "#4f9d55", "#8a5fb4", "#c7913a",
	"#50a8a4", "#b45f84", "#6a6a6a", "#2e4372", "#7d2e2e", "#2e5e33",
}

// SVGLines renders a multi-series line chart with x tick labels and a
// legend. All series must have len(Points) == len(xLabels).
func SVGLines(w io.Writer, title, yLabel string, xLabels []string, series []Series) error {
	const plotW, plotH, left, top, pad = 460, 240, 64, 34, 10
	width := left + plotW + 150
	height := top + plotH + 50

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Points {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 1
	}
	if hi == lo {
		hi = lo + 1
	}
	// Pad the range 5% each side.
	span := hi - lo
	lo -= span * 0.05
	hi += span * 0.05
	span = hi - lo

	x := func(j int) float64 {
		if len(xLabels) == 1 {
			return left + plotW/2
		}
		return left + float64(j)*plotW/float64(len(xLabels)-1)
	}
	y := func(v float64) float64 { return top + plotH - (v-lo)/span*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13" font-weight="bold">%s</text>`+"\n", pad, svgEscape(title))
	fmt.Fprintf(&b, `<text x="14" y="%d" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`+"\n",
		top+plotH/2, top+plotH/2, svgEscape(yLabel))
	// Frame and gridlines.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#999"/>`+"\n", left, top, plotW, plotH)
	for k := 0; k <= 4; k++ {
		gy := top + float64(k)*plotH/4
		gv := hi - float64(k)*span/4
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#e5e5e5"/>`+"\n", left, gy, left+plotW, gy)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%.3g</text>`+"\n", left-6, gy+4, gv)
	}
	for j, xl := range xLabels {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			x(j), top+plotH+16, svgEscape(xl))
	}
	// Series.
	for si, s := range series {
		color := seriesColors[si%len(seriesColors)]
		var pts []string
		for j, v := range s.Points {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(j), y(v)))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
			strings.Join(pts, " "), color)
		for j, v := range s.Points {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.4" fill="%s"><title>%s @ %s: %.4g</title></circle>`+"\n",
				x(j), y(v), color, svgEscape(s.Name), svgEscape(xLabels[j]), v)
		}
		// Legend entry.
		ly := top + 8 + si*16
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			left+plotW+12, ly, left+plotW+30, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", left+plotW+34, ly+4, svgEscape(s.Name))
	}
	fmt.Fprint(&b, "</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// SVGBars renders a grouped bar chart (Figure 8/9 style): one group per x
// label, one bar per series.
func SVGBars(w io.Writer, title, yLabel string, xLabels []string, series []Series) error {
	const plotW, plotH, left, top = 460, 240, 64, 34
	width := left + plotW + 150
	height := top + plotH + 60

	lo, hi := 0.0, math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Points {
			hi = math.Max(hi, v)
			lo = math.Min(lo, v)
		}
	}
	if math.IsInf(hi, -1) || hi == lo {
		hi = lo + 1
	}
	span := hi - lo
	hi += span * 0.08
	span = hi - lo

	groupW := float64(plotW) / float64(len(xLabels))
	barW := groupW * 0.8 / float64(len(series))
	y := func(v float64) float64 { return top + plotH - (v-lo)/span*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="10" y="16" font-size="13" font-weight="bold">%s</text>`+"\n", svgEscape(title))
	fmt.Fprintf(&b, `<text x="14" y="%d" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`+"\n",
		top+plotH/2, top+plotH/2, svgEscape(yLabel))
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#999"/>`+"\n", left, top, plotW, plotH)
	for k := 0; k <= 4; k++ {
		gy := top + float64(k)*plotH/4
		gv := hi - float64(k)*span/4
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#e5e5e5"/>`+"\n", left, gy, left+plotW, gy)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%.3g</text>`+"\n", left-6, gy+4, gv)
	}
	for gi, xl := range xLabels {
		gx := float64(left) + float64(gi)*groupW
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			gx+groupW/2, top+plotH+16, svgEscape(xl))
		for si, s := range series {
			v := s.Points[gi]
			bx := gx + groupW*0.1 + float64(si)*barW
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %s: %.4g</title></rect>`+"\n",
				bx, y(v), barW-1, float64(top+plotH)-y(v), seriesColors[si%len(seriesColors)],
				svgEscape(s.Name), svgEscape(xl), v)
		}
	}
	for si, s := range series {
		ly := top + 8 + si*16
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="14" height="10" fill="%s"/>`+"\n",
			left+plotW+12, ly-8, seriesColors[si%len(seriesColors)])
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", left+plotW+30, ly, svgEscape(s.Name))
	}
	fmt.Fprint(&b, "</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
