package perf

import (
	"math"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/uarch"
)

func sampleResult() *uarch.Result {
	m := uarch.NewMachine(uarch.Baseline(), trace.NewImage(nil))
	for i := 0; i < 400; i++ {
		m.Call(trace.FnAnalyse)
		m.Ops(trace.FnAnalyse, 250)
		m.Load2D(trace.FnSAD, 0x100000000+uint64(i*2048)%(1<<22), 16, 16, 512)
		m.Branch(trace.FnAnalyse, 1, i%3 == 0)
		m.Store2D(trace.FnIDCT, 0x300000000+uint64(i*1024)%(1<<20), 16, 4, 512)
		m.Loop(trace.FnSAD, 2, 4+i%9)
	}
	return m.Result()
}

func TestTopdownFractionsSumTo100(t *testing.T) {
	rep := FromResult(sampleResult(), 1)
	td := rep.Topdown
	sum := td.Retiring + td.FrontEnd + td.BadSpec + td.BackEnd
	if math.Abs(sum-100) > 1e-6 {
		t.Fatalf("top-down sums to %f", sum)
	}
	if math.Abs(td.BackEnd-(td.MemBound+td.CoreBound)) > 1e-6 {
		t.Fatalf("back-end %f != mem %f + core %f", td.BackEnd, td.MemBound, td.CoreBound)
	}
	for _, v := range []float64{td.Retiring, td.FrontEnd, td.BadSpec, td.BackEnd} {
		if v < 0 || v > 100 {
			t.Fatalf("slot fraction out of range: %f", v)
		}
	}
}

func TestMPKIScaleFree(t *testing.T) {
	r := sampleResult()
	a := FromResult(r, 1)
	b := FromResult(r, 8)
	// Rates are scale-free; only seconds scale with the sample factor.
	if a.BranchMPKI != b.BranchMPKI || a.L1DMPKI != b.L1DMPKI {
		t.Fatal("MPKI must not depend on the sample factor")
	}
	if math.Abs(b.Seconds-8*a.Seconds) > 1e-12 {
		t.Fatalf("seconds scaling: %g vs %g", a.Seconds, b.Seconds)
	}
}

func TestMPKIDefinition(t *testing.T) {
	r := sampleResult()
	rep := FromResult(r, 1)
	want := float64(r.L1D.Misses) / r.Insts * 1000
	if math.Abs(rep.L1DMPKI-want) > 1e-9 {
		t.Fatalf("L1D MPKI %f != %f", rep.L1DMPKI, want)
	}
	if rep.StallAnyPKI != rep.StallROBPKI+rep.StallRSPKI+rep.StallSBPKI {
		t.Fatal("stall-any must be the sum of the components")
	}
}

func TestOperationalIntensity(t *testing.T) {
	rep := FromResult(sampleResult(), 1)
	if rep.DRAMBytes > 0 && rep.OperationalIntensity() <= 0 {
		t.Fatal("operational intensity must be positive with DRAM traffic")
	}
	empty := &Report{}
	if empty.OperationalIntensity() != 0 {
		t.Fatal("zero traffic must give zero intensity")
	}
}

func TestStringSummary(t *testing.T) {
	rep := FromResult(sampleResult(), 1)
	s := rep.String()
	for _, needle := range []string{"baseline", "ipc=", "ret=", "brMPKI="} {
		if !strings.Contains(s, needle) {
			t.Fatalf("summary %q missing %q", s, needle)
		}
	}
}

func TestEmptyResultIsSafe(t *testing.T) {
	m := uarch.NewMachine(uarch.Baseline(), trace.NewImage(nil))
	rep := FromResult(m.Result(), 1)
	if rep.IPC != 0 || rep.BranchMPKI != 0 {
		t.Fatal("empty run must produce zero rates, not NaN")
	}
	if math.IsNaN(rep.Topdown.Retiring) {
		t.Fatal("NaN in top-down of empty run")
	}
}

func TestCompare(t *testing.T) {
	base := &Report{Seconds: 2, BranchMPKI: 3, L1IMPKI: 1}
	base.Topdown.FrontEnd = 8
	opt := &Report{Seconds: 1.9, BranchMPKI: 2.5, L1IMPKI: 0.4}
	opt.Topdown.FrontEnd = 3
	d := Compare(base, opt)
	if !d.Improved() {
		t.Fatal("faster run not marked improved")
	}
	if d.SpeedupPct < 5.2 || d.SpeedupPct > 5.3 {
		t.Fatalf("speedup %f", d.SpeedupPct)
	}
	if d.BranchMPKI >= 0 || d.L1IMPKI >= 0 || d.FrontEnd >= 0 {
		t.Fatalf("improvements should be negative deltas: %+v", d)
	}
	// Degenerate optimized run.
	if Compare(base, &Report{}).SpeedupPct != 0 {
		t.Fatal("zero-time run must not divide")
	}
}

func TestDominantBottleneck(t *testing.T) {
	mk := func(fe, bs, mem, core float64) *Report {
		r := &Report{}
		r.Topdown = Topdown{FrontEnd: fe, BadSpec: bs, MemBound: mem, CoreBound: core, BackEnd: mem + core}
		return r
	}
	cases := []struct {
		r    *Report
		want Bottleneck
	}{
		{mk(30, 5, 10, 5), BottleneckFrontEnd},
		{mk(5, 30, 10, 5), BottleneckBadSpec},
		{mk(5, 5, 30, 10), BottleneckMemory},
		{mk(5, 5, 10, 30), BottleneckCore},
		{mk(4, 4, 4, 4), BottleneckNone},
	}
	for i, c := range cases {
		if got := c.r.DominantBottleneck(); got != c.want {
			t.Errorf("case %d: %s, want %s", i, got, c.want)
		}
	}
}
