// Package perf is the profiling layer of the reproduction — the stand-in
// for Intel VTune and Linux perf. It converts raw simulator counters into
// the quantities the paper reports: Top-down pipeline-slot fractions
// (retiring / front-end bound / bad speculation / back-end bound, with
// memory- and core-bound sub-components) and misses-per-kilo-instruction
// rates for the branch unit and each cache level.
package perf

import (
	"fmt"

	"repro/internal/uarch"
)

// Topdown is the four-way (plus back-end split) slot breakdown of the
// Top-down Microarchitecture Analysis Method, in percent of pipeline slots.
type Topdown struct {
	Retiring float64
	FrontEnd float64
	BadSpec  float64
	BackEnd  float64

	MemBound  float64 // component of BackEnd
	CoreBound float64 // component of BackEnd
}

// Report is the full profile of one transcoding run on one configuration.
type Report struct {
	Config       string
	SampleFactor float64

	Insts   float64
	Cycles  float64
	IPC     float64
	Seconds float64 // estimated wall-clock transcoding time

	Topdown Topdown

	// Misses per kilo instruction.
	BranchMPKI float64
	L1DMPKI    float64
	L2MPKI     float64
	L3MPKI     float64
	L1IMPKI    float64
	ITLBMPKI   float64

	// Resource-stall cycles per kilo instruction (Fig. 5 e-h).
	StallAnyPKI float64
	StallROBPKI float64
	StallRSPKI  float64
	StallSBPKI  float64

	// Raw traffic for roofline analysis.
	DRAMBytes float64
	Ops       float64
}

// FromResult derives a Report from simulator counters. sampleFactor scales
// the time estimate back to full-trace magnitude (rates are scale-free).
func FromResult(r *uarch.Result, sampleFactor float64) *Report {
	cyc := r.Cycles()
	rep := &Report{
		Config:       r.Config,
		SampleFactor: sampleFactor,
		Insts:        r.Insts,
		Cycles:       cyc,
		IPC:          r.IPC(),
		Seconds:      r.Seconds(sampleFactor),
		DRAMBytes:    r.DRAMBytes(),
		Ops:          r.Uops,
	}
	if cyc > 0 {
		be := r.MemCycles + r.CoreCycles
		rep.Topdown = Topdown{
			Retiring:  100 * r.BaseCycles / cyc,
			FrontEnd:  100 * r.FECycles / cyc,
			BadSpec:   100 * r.BSCycles / cyc,
			BackEnd:   100 * be / cyc,
			MemBound:  100 * r.MemCycles / cyc,
			CoreBound: 100 * r.CoreCycles / cyc,
		}
	}
	if r.Insts > 0 {
		k := 1000 / r.Insts
		rep.BranchMPKI = r.Mispredicts * k
		rep.L1DMPKI = float64(r.L1D.Misses) * k
		rep.L2MPKI = float64(r.L2.Misses) * k
		rep.L3MPKI = float64(r.L3.Misses) * k
		rep.L1IMPKI = float64(r.L1I.Misses) * k
		rep.ITLBMPKI = float64(r.ITLB.Misses) * k
		rep.StallROBPKI = r.ROBStall * k
		rep.StallRSPKI = r.RSStall * k
		rep.StallSBPKI = r.SBStall * k
		rep.StallAnyPKI = rep.StallROBPKI + rep.StallRSPKI + rep.StallSBPKI
	}
	return rep
}

// OperationalIntensity returns compute ops per byte of DRAM traffic, the
// x-axis of the roofline model used throughout §IV.
func (r *Report) OperationalIntensity() float64 {
	if r.DRAMBytes == 0 {
		return 0
	}
	return r.Ops / r.DRAMBytes
}

// String renders a compact single-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%s: %.2fs ipc=%.2f ret=%.1f%% fe=%.1f%% bs=%.1f%% be=%.1f%% (mem %.1f%% core %.1f%%) brMPKI=%.2f l1d=%.2f l2=%.2f l3=%.2f",
		r.Config, r.Seconds, r.IPC,
		r.Topdown.Retiring, r.Topdown.FrontEnd, r.Topdown.BadSpec, r.Topdown.BackEnd,
		r.Topdown.MemBound, r.Topdown.CoreBound,
		r.BranchMPKI, r.L1DMPKI, r.L2MPKI, r.L3MPKI)
}

// Bottleneck names the dominant pipeline problem of a profile, the label
// the smart scheduler keys its placement on.
type Bottleneck string

// Bottleneck classes in Top-down terminology.
const (
	BottleneckMemory   Bottleneck = "memory-bound"
	BottleneckCore     Bottleneck = "core-bound"
	BottleneckFrontEnd Bottleneck = "front-end-bound"
	BottleneckBadSpec  Bottleneck = "bad-speculation"
	BottleneckNone     Bottleneck = "retiring-limited"
)

// DominantBottleneck classifies the profile by its largest wasted-slot
// component; profiles wasting less than 10% of slots anywhere are
// retiring-limited.
func (r *Report) DominantBottleneck() Bottleneck {
	td := r.Topdown
	best, share := BottleneckNone, 10.0
	for _, c := range []struct {
		b Bottleneck
		v float64
	}{
		{BottleneckMemory, td.MemBound},
		{BottleneckCore, td.CoreBound},
		{BottleneckFrontEnd, td.FrontEnd},
		{BottleneckBadSpec, td.BadSpec},
	} {
		if c.v > share {
			best, share = c.b, c.v
		}
	}
	return best
}
