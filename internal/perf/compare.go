package perf

// Delta summarizes how an optimized run compares against a baseline run of
// the same workload — the per-video rows of Figure 8.
type Delta struct {
	SpeedupPct float64 // (base/opt - 1) * 100

	// Absolute changes in the headline rates (optimized minus baseline;
	// negative is an improvement).
	BranchMPKI float64
	L1IMPKI    float64
	L1DMPKI    float64
	L2MPKI     float64
	L3MPKI     float64

	// Slot-share changes in percentage points.
	FrontEnd float64
	BadSpec  float64
	MemBound float64
}

// Compare measures opt against base. Both reports must come from the same
// workload for the comparison to be meaningful.
func Compare(base, opt *Report) Delta {
	d := Delta{
		BranchMPKI: opt.BranchMPKI - base.BranchMPKI,
		L1IMPKI:    opt.L1IMPKI - base.L1IMPKI,
		L1DMPKI:    opt.L1DMPKI - base.L1DMPKI,
		L2MPKI:     opt.L2MPKI - base.L2MPKI,
		L3MPKI:     opt.L3MPKI - base.L3MPKI,
		FrontEnd:   opt.Topdown.FrontEnd - base.Topdown.FrontEnd,
		BadSpec:    opt.Topdown.BadSpec - base.Topdown.BadSpec,
		MemBound:   opt.Topdown.MemBound - base.Topdown.MemBound,
	}
	if opt.Seconds > 0 {
		d.SpeedupPct = (base.Seconds/opt.Seconds - 1) * 100
	}
	return d
}

// Improved reports whether the optimized run is faster.
func (d Delta) Improved() bool { return d.SpeedupPct > 0 }
