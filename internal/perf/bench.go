package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BenchEntry mirrors one row of BENCH_core.json as written by
// scripts/bench.sh: a benchmark name plus its ns/op and allocs/op. The
// special "_note" row carries the partial-run marker an interrupted
// benchmark leaves behind.
type BenchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Partial     bool    `json:"partial,omitempty"`
}

// ReadBenchFile parses a BENCH_core.json-format file.
func ReadBenchFile(path string) ([]BenchEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perf: read bench file: %w", err)
	}
	var entries []BenchEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("perf: parse bench file %s: %w", path, err)
	}
	return entries, nil
}

// BenchDelta is the comparison of one benchmark across two runs.
type BenchDelta struct {
	Name      string
	BaseNs    float64
	NewNs     float64
	Ratio     float64 // NewNs / BaseNs; > 1 is a slowdown
	Regressed bool    // Ratio exceeds the ns/op tolerance

	BaseAllocs     float64
	NewAllocs      float64
	AllocRatio     float64 // NewAllocs / BaseAllocs; > 1 is more allocation
	AllocRegressed bool    // AllocRatio exceeds the allocs/op tolerance

	// New marks a benchmark present in the new run but absent from the
	// baseline: informational only (there is nothing to regress against)
	// until the baseline file is regenerated.
	New bool
}

// CompareBench compares a new benchmark run against a baseline with a
// relative ns/op tolerance (0.10 = ±10%) and a relative allocs/op tolerance
// (0.20 = ±20%): a benchmark regresses when its new time exceeds
// base*(1+tol) or its new allocation count exceeds base*(1+allocTol). Time
// is noisy, allocation counts are nearly deterministic — the separate, wider
// alloc gate catches a reintroduced per-iteration allocation even on a
// machine too loaded for stable timings. It returns one delta per baseline
// benchmark, sorted by name.
//
// Hard errors (rather than deltas): a partial marker in either file — an
// interrupted run proves nothing either way — and a baseline benchmark
// missing from the new run, which would otherwise let a gate pass by
// silently dropping the slow benchmark. The asymmetric case — a benchmark
// in the new run with no baseline entry — is NOT an error: new benchmarks
// land before their baseline is regenerated, so they are reported as
// informational deltas with New set and can never regress.
func CompareBench(base, cur []BenchEntry, tol, allocTol float64) ([]BenchDelta, error) {
	if tol < 0 || allocTol < 0 {
		return nil, fmt.Errorf("perf: negative tolerance (ns %v, allocs %v)", tol, allocTol)
	}
	for _, e := range append(append([]BenchEntry{}, base...), cur...) {
		if e.Partial {
			return nil, fmt.Errorf("perf: refusing to compare a partial benchmark run (entry %q)", e.Name)
		}
	}
	curByName := make(map[string]BenchEntry, len(cur))
	for _, e := range cur {
		if e.Name != "" && e.Name[0] != '_' {
			curByName[e.Name] = e
		}
	}
	var deltas []BenchDelta
	for _, b := range base {
		if b.Name == "" || b.Name[0] == '_' {
			continue // marker rows are not benchmarks
		}
		n, ok := curByName[b.Name]
		if !ok {
			return nil, fmt.Errorf("perf: benchmark %s missing from new run", b.Name)
		}
		d := BenchDelta{
			Name:   b.Name,
			BaseNs: b.NsPerOp, NewNs: n.NsPerOp,
			BaseAllocs: b.AllocsPerOp, NewAllocs: n.AllocsPerOp,
		}
		if b.NsPerOp > 0 {
			d.Ratio = n.NsPerOp / b.NsPerOp
			d.Regressed = d.Ratio > 1+tol
		}
		if b.AllocsPerOp > 0 {
			d.AllocRatio = n.AllocsPerOp / b.AllocsPerOp
			d.AllocRegressed = d.AllocRatio > 1+allocTol
		} else if n.AllocsPerOp > 0 {
			// A benchmark that allocated nothing at baseline and allocates now
			// has no finite ratio but is still a regression.
			d.AllocRegressed = true
		}
		deltas = append(deltas, d)
		delete(curByName, b.Name)
	}
	for _, n := range curByName {
		deltas = append(deltas, BenchDelta{
			Name: n.Name, NewNs: n.NsPerOp, NewAllocs: n.AllocsPerOp, New: true,
		})
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas, nil
}

// Regressions filters a comparison down to the benchmarks that regressed —
// in time, in allocations, or both.
func Regressions(deltas []BenchDelta) []BenchDelta {
	var out []BenchDelta
	for _, d := range deltas {
		if d.Regressed || d.AllocRegressed {
			out = append(out, d)
		}
	}
	return out
}
