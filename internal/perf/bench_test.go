package perf

import (
	"os"
	"path/filepath"
	"testing"
)

func benchBase() []BenchEntry {
	return []BenchEntry{
		{Name: "BenchmarkDecodeReplay", NsPerOp: 14_000_000, AllocsPerOp: 32},
		{Name: "BenchmarkSweepCRFRefsCached", NsPerOp: 276_000_000, AllocsPerOp: 7769},
		{Name: "BenchmarkSweepCRFRefsUncached", NsPerOp: 557_000_000, AllocsPerOp: 8121},
	}
}

func TestCompareBenchWithinTolerance(t *testing.T) {
	base := benchBase()
	cur := benchBase()
	cur[0].NsPerOp *= 1.08 // +8%: inside a ±10% gate
	cur[1].NsPerOp *= 0.85 // faster is always fine
	deltas, err := CompareBench(base, cur, 0.10, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 3 {
		t.Fatalf("deltas = %d, want 3", len(deltas))
	}
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %+v", regs)
	}
}

func TestCompareBenchCatchesSlowdown(t *testing.T) {
	base := benchBase()
	cur := benchBase()
	cur[1].NsPerOp *= 1.20 // the acceptance-criteria case: a 20% slowdown
	deltas, err := CompareBench(base, cur, 0.10, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Name != "BenchmarkSweepCRFRefsCached" {
		t.Fatalf("regressions = %+v, want exactly the doctored benchmark", regs)
	}
	if regs[0].Ratio < 1.19 || regs[0].Ratio > 1.21 {
		t.Fatalf("ratio = %v, want ~1.20", regs[0].Ratio)
	}
}

func TestCompareBenchCatchesAllocRegression(t *testing.T) {
	base := benchBase()
	cur := benchBase()
	cur[1].AllocsPerOp *= 1.35 // +35% allocs: outside the ±20% alloc gate
	deltas, err := CompareBench(base, cur, 0.10, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Name != "BenchmarkSweepCRFRefsCached" {
		t.Fatalf("regressions = %+v, want exactly the doctored benchmark", regs)
	}
	if regs[0].Regressed || !regs[0].AllocRegressed {
		t.Fatalf("want an alloc-only regression, got %+v", regs[0])
	}
	if regs[0].AllocRatio < 1.34 || regs[0].AllocRatio > 1.36 {
		t.Fatalf("alloc ratio = %v, want ~1.35", regs[0].AllocRatio)
	}
	// +15% allocs stays inside the wider alloc gate.
	cur[1].AllocsPerOp = base[1].AllocsPerOp * 1.15
	deltas, err = CompareBench(base, cur, 0.10, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %+v", regs)
	}
}

func TestCompareBenchAllocFromZero(t *testing.T) {
	base := []BenchEntry{{Name: "BenchmarkSAD", NsPerOp: 400, AllocsPerOp: 0}}
	cur := []BenchEntry{{Name: "BenchmarkSAD", NsPerOp: 400, AllocsPerOp: 1}}
	deltas, err := CompareBench(base, cur, 0.10, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if regs := Regressions(deltas); len(regs) != 1 || !regs[0].AllocRegressed {
		t.Fatalf("zero-to-nonzero allocation not flagged: %+v", deltas)
	}
}

func TestCompareBenchMissingBenchmark(t *testing.T) {
	if _, err := CompareBench(benchBase(), benchBase()[:2], 0.10, 0.20); err == nil {
		t.Fatal("missing benchmark not rejected")
	}
}

func TestCompareBenchNewBenchmark(t *testing.T) {
	cur := append(benchBase(), BenchEntry{Name: "BenchmarkDeblock", NsPerOp: 900_000, AllocsPerOp: 0})
	deltas, err := CompareBench(benchBase(), cur, 0.10, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 4 {
		t.Fatalf("deltas = %d, want 4 (3 baseline + 1 new)", len(deltas))
	}
	var got *BenchDelta
	for i := range deltas {
		if deltas[i].Name == "BenchmarkDeblock" {
			got = &deltas[i]
		} else if deltas[i].New {
			t.Fatalf("baseline benchmark marked new: %+v", deltas[i])
		}
	}
	if got == nil || !got.New || got.NewNs != 900_000 || got.BaseNs != 0 {
		t.Fatalf("new benchmark delta = %+v, want informational New entry", got)
	}
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("new benchmark regressed the gate: %+v", regs)
	}
}

func TestCompareBenchRejectsPartial(t *testing.T) {
	cur := append(benchBase(), BenchEntry{Name: "_note", Partial: true})
	if _, err := CompareBench(benchBase(), cur, 0.10, 0.20); err == nil {
		t.Fatal("partial run not rejected")
	}
}

func TestCompareBenchIgnoresMarkerRows(t *testing.T) {
	base := append(benchBase(), BenchEntry{Name: "_note"})
	deltas, err := CompareBench(base, benchBase(), 0.10, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 3 {
		t.Fatalf("marker row compared: %+v", deltas)
	}
}

func TestReadBenchFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.json")
	const body = `[
  {"name": "BenchmarkDecodeReplay", "ns_per_op": 13995578, "allocs_per_op": 32},
  {"name": "_note", "partial": true}
]`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].NsPerOp != 13995578 || !entries[1].Partial {
		t.Fatalf("parsed %+v", entries)
	}
	if _, err := ReadBenchFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file not reported")
	}
}
