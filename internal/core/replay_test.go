package core

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/codec"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// TestReplayMachineEquivalence is the fidelity guarantee at the machine
// level: a Machine fed the recorded decode trace reaches bit-for-bit the
// state of a Machine that consumed the decode live.
func TestReplayMachineEquivalence(t *testing.T) {
	w := tinyWorkload("cricket")
	stream, err := Mezzanine(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	for _, dopt := range []codec.DecoderOptions{
		{},
		{TraceSampleLog2: 2},
		{Tune: codec.Tuning{FuseDeblock: true}},
	} {
		live := uarch.NewMachine(uarch.Baseline(), trace.NewImage(nil))
		liveFrames, _, err := codec.NewDecoder(dopt, live).Decode(stream)
		if err != nil {
			t.Fatal(err)
		}

		recFrames, _, events, err := codec.RecordDecode(stream, dopt)
		if err != nil {
			t.Fatal(err)
		}
		replayed := uarch.NewMachine(uarch.Baseline(), trace.NewImage(nil))
		if err := trace.Replay(events, replayed); err != nil {
			t.Fatal(err)
		}

		if !live.Result().Equal(replayed.Result()) {
			t.Fatalf("opts %+v: replayed machine state differs from live decode:\nlive:     %+v\nreplayed: %+v",
				dopt, live.Result(), replayed.Result())
		}
		if len(liveFrames) != len(recFrames) {
			t.Fatalf("opts %+v: frame count differs: %d vs %d", dopt, len(liveFrames), len(recFrames))
		}
		for i := range liveFrames {
			if !reflect.DeepEqual(liveFrames[i], recFrames[i]) {
				t.Fatalf("opts %+v: decoded frame %d differs between live and recording decode", dopt, i)
			}
		}
	}
}

// TestReplayRunEquivalence is the fidelity guarantee at the experiment
// level: the profile of a full transcode is identical whether the decode
// half was replayed from the cache or simulated live, so every figure stays
// bit-for-bit unchanged by the cache.
func TestReplayRunEquivalence(t *testing.T) {
	w := tinyWorkload("cricket")
	opt := codec.Defaults()
	opt.CRF = 27
	opt.Refs = 2
	job := Job{Workload: w, Options: opt, Config: uarch.Baseline()}

	cached, err := Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	job.NoReplayCache = true
	livePath, err := Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cached.Report, livePath.Report) {
		t.Fatalf("replay-path report differs from live-decode report:\ncached: %+v\nlive:   %+v",
			cached.Report, livePath.Report)
	}
	if !reflect.DeepEqual(cached.Stats, livePath.Stats) {
		t.Fatal("replay-path codec stats differ from live-decode stats")
	}
}

// TestParsedReplayMachineEquivalence pins the parsed fan-out at the
// machine level on a real decode trace: for every Table IV configuration,
// ReplayEvents on the cached parsed slab reaches bit-for-bit the state of
// the streaming trace.Replay reference.
func TestParsedReplayMachineEquivalence(t *testing.T) {
	w := tinyWorkload("cricket")
	_, events, err := DecodedMezzanine(context.Background(), w, codec.DecoderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParsedDecodeTrace(context.Background(), w, codec.DecoderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if parsed2, err := ParsedDecodeTrace(context.Background(), w, codec.DecoderOptions{}); err != nil || parsed2 != parsed {
		t.Fatalf("parsed trace not cached: %p vs %p (err %v)", parsed, parsed2, err)
	}
	for _, cfg := range uarch.TableIV() {
		ref := uarch.NewMachine(cfg, trace.NewImage(nil))
		if err := trace.Replay(events, ref); err != nil {
			t.Fatal(err)
		}
		fast := uarch.NewMachine(cfg, trace.NewImage(nil))
		fast.ReplayEvents(parsed)
		if !ref.Result().Equal(fast.Result()) {
			t.Fatalf("%s: parsed replay diverged from streaming replay:\nref:  %+v\nfast: %+v",
				cfg.Name, ref.Result(), fast.Result())
		}
	}
}

// TestParsedRunEquivalence is the fidelity guarantee at the experiment
// level: a run whose replays stream the raw varint buffer (NoParseCache)
// produces exactly the profile of the default parsed fan-out. The custom
// code image forces Run's per-job replay branch, so both replay paths
// actually execute rather than sharing a cached snapshot.
func TestParsedRunEquivalence(t *testing.T) {
	w := tinyWorkload("cricket")
	opt := codec.Defaults()
	opt.CRF = 29
	opt.Refs = 2
	job := Job{Workload: w, Options: opt, Config: uarch.Baseline(), Image: trace.NewImage(nil)}

	parsedPath, err := Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	job.NoParseCache = true
	streamPath, err := Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsedPath.Report, streamPath.Report) {
		t.Fatalf("parsed-path report differs from streaming-path report:\nparsed: %+v\nstream: %+v",
			parsedPath.Report, streamPath.Report)
	}
	if !reflect.DeepEqual(parsedPath.Stats, streamPath.Stats) {
		t.Fatal("parsed-path codec stats differ from streaming-path stats")
	}

	// And through the default (snapshot) path: a full job pair without the
	// custom image, cold snapshots forced by a unique seed so both runs
	// build through their respective replay branch.
	cold := w
	cold.Seed = 424242
	job = Job{Workload: cold, Options: opt, Config: uarch.Baseline(), NoParseCache: true}
	streamSnap, err := Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	job.NoParseCache = false
	parsedSnap, err := Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsedSnap.Report, streamSnap.Report) {
		t.Fatal("snapshot-path reports differ between parsed and streaming builds")
	}
}

// TestDecodedMezzanineCached verifies hits share one entry and that the
// cached frames are not handed to encoders directly (Run clones them).
func TestDecodedMezzanineCached(t *testing.T) {
	w := tinyWorkload("cat")
	fa, ea, err := DecodedMezzanine(context.Background(), w, codec.DecoderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fb, eb, err := DecodedMezzanine(context.Background(), w, codec.DecoderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fa) == 0 || len(ea) == 0 {
		t.Fatal("empty decode cache entry")
	}
	if fa[0] != fb[0] || &ea[0] != &eb[0] {
		t.Fatal("decoded mezzanine not cached")
	}
	// A different decoder configuration is a different entry.
	fc, _, err := DecodedMezzanine(context.Background(), w, codec.DecoderOptions{TraceSampleLog2: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fc[0] == fa[0] {
		t.Fatal("distinct decoder options share a cache entry")
	}
}

// TestCacheSingleflight hammers both caches from many goroutines on a cold
// key; under -race this catches stampedes and unsynchronized map access,
// and pointer identity proves everyone got the one shared build.
func TestCacheSingleflight(t *testing.T) {
	w := Workload{Video: "house", Frames: 6, Scale: 8, Seed: 7777} // cold: unique seed
	const callers = 16
	streams := make([][]byte, callers)
	events := make([][]byte, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			s, err := Mezzanine(context.Background(), w)
			if err != nil {
				t.Error(err)
				return
			}
			streams[i] = s
			_, e, err := DecodedMezzanine(context.Background(), w, codec.DecoderOptions{})
			if err != nil {
				t.Error(err)
				return
			}
			events[i] = e
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if &streams[i][0] != &streams[0][0] {
			t.Fatal("concurrent Mezzanine callers built separate streams")
		}
		if &events[i][0] != &events[0][0] {
			t.Fatal("concurrent DecodedMezzanine callers built separate traces")
		}
	}
}

// TestFlightCacheBuildsOnce checks the singleflight primitive directly: n
// concurrent gets of one cold key run build exactly once.
func TestFlightCacheBuildsOnce(t *testing.T) {
	var c flightCache[string, int]
	var builds int32
	var mu sync.Mutex
	const callers = 32
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func() {
			defer wg.Done()
			v, err := c.get(context.Background(), "k", func() (int, error) {
				mu.Lock()
				builds++
				mu.Unlock()
				return 99, nil
			})
			if err != nil || v != 99 {
				t.Errorf("get = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if builds != 1 {
		t.Fatalf("build ran %d times", builds)
	}
}
