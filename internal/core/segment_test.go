package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/codec"
	"repro/internal/uarch"
)

// TestSegmentsFor pins the segment plan against the workload's normalized
// clip length (defaulted frame counts included).
func TestSegmentsFor(t *testing.T) {
	segs, err := SegmentsFor(Workload{Video: "cricket", Frames: 10, Scale: 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []codec.Segment{{Start: 0, End: 4}, {Start: 4, End: 7}, {Start: 7, End: 10}}
	if !reflect.DeepEqual(segs, want) {
		t.Fatalf("SegmentsFor = %v, want %v", segs, want)
	}
	// Frames 0 normalizes to the 16-frame default before splitting.
	segs, err = SegmentsFor(Workload{Video: "cricket", Scale: 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[1].End != 16 {
		t.Fatalf("defaulted SegmentsFor = %v, want two segments over 16 frames", segs)
	}
	if _, err := SegmentsFor(Workload{Video: "no-such-video"}, 2); err == nil {
		t.Fatal("want error for unknown video")
	}
}

// TestSegmentRunEquivalence is the core-level fidelity guarantee for
// segment jobs: a per-segment Run through the cached decode + shared
// analysis fast path produces a profile and stats bit-for-bit identical to
// the same segment run fully live (no replay cache, no analysis cache).
func TestSegmentRunEquivalence(t *testing.T) {
	w := tinyWorkload("cricket")
	segs, err := SegmentsFor(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		job := Job{Workload: w, Options: codec.Defaults(), Config: uarch.Baseline(), Segment: seg}
		cached, err := Run(context.Background(), job)
		if err != nil {
			t.Fatalf("seg %v cached: %v", seg, err)
		}
		job.NoAnalysisCache = true
		noAna, err := Run(context.Background(), job)
		if err != nil {
			t.Fatalf("seg %v no-analysis: %v", seg, err)
		}
		job.NoReplayCache = true
		live, err := Run(context.Background(), job)
		if err != nil {
			t.Fatalf("seg %v live: %v", seg, err)
		}
		for name, got := range map[string]*Result{"no-analysis": noAna, "live": live} {
			if !reflect.DeepEqual(cached.Report, got.Report) {
				t.Fatalf("seg %v: %s report differs from cached fast path", seg, name)
			}
			if !reflect.DeepEqual(cached.Stats, got.Stats) {
				t.Fatalf("seg %v: %s stats differ from cached fast path", seg, name)
			}
		}
		if n := len(cached.Stats.Frames); n != seg.Len() {
			t.Fatalf("seg %v: stats cover %d frames, want %d", seg, n, seg.Len())
		}
	}
}

// TestSegmentStatsStitch checks that per-segment core runs compose: the
// stitched per-segment stats equal the stats of a serial segmented encode
// of the same plan (codec.EncodeSegments over the same decoded frames).
func TestSegmentStatsStitch(t *testing.T) {
	w := tinyWorkload("desktop")
	opt := codec.Defaults()
	segs, err := SegmentsFor(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*codec.Stats, len(segs))
	for i, seg := range segs {
		res, err := Run(context.Background(), Job{Workload: w, Options: opt, Config: uarch.Baseline(), Segment: seg})
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = res.Stats
	}
	got, err := codec.StitchStats(parts)
	if err != nil {
		t.Fatal(err)
	}

	frames, _, err := DecodedMezzanine(context.Background(), w, decoderOptions(opt))
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := codec.EncodeSegments(cloneFrames(frames), 30, opt, nil, len(segs))
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalBits != want.TotalBits || got.AveragePSNR != want.AveragePSNR ||
		len(got.Frames) != len(want.Frames) {
		t.Fatalf("stitched per-job stats diverge from serial segmented encode:\ngot  bits=%d psnr=%.4f frames=%d\nwant bits=%d psnr=%.4f frames=%d",
			got.TotalBits, got.AveragePSNR, len(got.Frames),
			want.TotalBits, want.AveragePSNR, len(want.Frames))
	}
}

// TestSegmentRejectsBadRange pins validation: out-of-range segments fail
// instead of silently clamping.
func TestSegmentRejectsBadRange(t *testing.T) {
	w := tinyWorkload("cricket")
	for _, seg := range []codec.Segment{{Start: 4, End: 2}, {Start: 0, End: 99}, {Start: -1, End: 3}} {
		if _, err := Run(context.Background(), Job{Workload: w, Options: codec.Defaults(), Config: uarch.Baseline(), Segment: seg}); err == nil {
			t.Fatalf("segment %v: want error", seg)
		}
	}
}
