package core

import (
	"context"
	"fmt"

	"repro/internal/codec"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/vbench"
)

// The shared-analysis caches are the fourth and fifth singleflight layers of
// the sweep pipeline (after mezzanine, decoded frames and post-decode machine
// snapshots): a crf x refs sweep shares one codec.Analysis artifact — the
// lookahead cost curves and AQ variance map that do not depend on crf or refs
// — and one machine snapshot that has already consumed both the decode trace
// and the artifact's recorded lookahead events. Each point then starts its
// encode from a memcpy-speed clone instead of re-running the lookahead.
// Fidelity is pinned by TestAnalysisRunEquivalence and the codec package's
// TestAnalysisEncodeEquivalence: reports, stats and the bitstream are
// bit-for-bit identical with and without the reuse.

// analysisKey identifies one shared analysis artifact. The decoder options
// select which decoded-frame entry the artifact's recorded addresses refer
// to; the params fold in the option subset the lookahead work depends on.
type analysisKey struct {
	w    Workload
	dopt codec.DecoderOptions
	p    codec.AnalysisParams
}

var anaCache = flightCache[analysisKey, *codec.Analysis]{
	name: "analysis",
	size: func(a *codec.Analysis) int64 { return a.SizeBytes() },
}

// sharedAnalysis returns (building and caching on first use) the
// crf/refs-invariant analysis artifact for a workload's decoded mezzanine,
// scoped to a segment of it (zero segment: the whole clip). Every rung of
// an ABR ladder encoding the same segment shares one artifact — params fold
// in the segment's base and length, so distinct segments get distinct
// entries. The cached frames are shared read-only state: decoded frames
// always carry decoder-assigned virtual bases, so Analyze never mutates
// them, and the recorded addresses match what any job encoding the same
// frames emits.
func sharedAnalysis(ctx context.Context, w Workload, dopt codec.DecoderOptions, opt codec.Options, seg codec.Segment) (*codec.Analysis, error) {
	w, err := w.normalized()
	if err != nil {
		return nil, err
	}
	frames, _, err := DecodedMezzanine(ctx, w, dopt)
	if err != nil {
		return nil, err
	}
	if !seg.IsZero() {
		if err := seg.Validate(len(frames)); err != nil {
			return nil, err
		}
		frames = frames[seg.Start:seg.End]
	}
	info, err := vbench.ByName(w.Video)
	if err != nil {
		return nil, err
	}
	p := codec.AnalysisParamsFor(opt, frames[0].Width, frames[0].Height, frames[0].PTS, len(frames))
	return anaCache.get(ctx, analysisKey{w: w, dopt: dopt, p: p}, func() (*codec.Analysis, error) {
		a, err := codec.Analyze(frames, info.FPS, opt)
		if err != nil {
			return nil, fmt.Errorf("core: analysis of %s: %w", w.Video, err)
		}
		return a, nil
	})
}

// anaSnapKey identifies one analysis-machine snapshot: a machine of one
// configuration (with the default code image) that has consumed one
// workload's decode trace plus the shared artifact's lookahead events.
type anaSnapKey struct {
	w    Workload
	dopt codec.DecoderOptions
	cfg  uarch.Config
	p    codec.AnalysisParams
}

var anaSnapCache = flightCache[anaSnapKey, *uarch.Machine]{name: "ana_snapshot"}

// anaParsedCache holds the pre-parsed form of each shared artifact's
// recorded lookahead events, keyed like the artifact itself (no uarch
// config): every configuration's analysis snapshot fans out from one
// parsed slab, decoding the artifact's varint stream exactly once.
var anaParsedCache = flightCache[analysisKey, *trace.EventBuf]{
	name: "ana_parsed",
	size: func(b *trace.EventBuf) int64 { return int64(b.SizeBytes()) },
}

// parsedAnalysisTrace returns (building and caching on first use) the
// parsed event form of an artifact's recorded lookahead trace.
func parsedAnalysisTrace(ctx context.Context, w Workload, dopt codec.DecoderOptions, a *codec.Analysis) (*trace.EventBuf, error) {
	key := analysisKey{w: w, dopt: dopt, p: a.Params}
	return anaParsedCache.get(ctx, key, func() (*trace.EventBuf, error) {
		b, err := trace.Parse(a.Events())
		if err != nil {
			return nil, fmt.Errorf("core: parse of %s analysis trace: %w", w.Video, err)
		}
		return b, nil
	})
}

// analysisMachine returns the cached post-decode, post-lookahead machine
// snapshot, building it on first use by cloning the decode snapshot and
// replaying the artifact's recorded events into it — from the shared
// parsed slab by default, or streaming the raw buffer when noParse is set
// (bit-identical builds either way). Callers must Clone the snapshot
// before feeding it further events.
func analysisMachine(ctx context.Context, w Workload, dopt codec.DecoderOptions, cfg uarch.Config, a *codec.Analysis, noParse bool) (*uarch.Machine, error) {
	w, err := w.normalized()
	if err != nil {
		return nil, err
	}
	key := anaSnapKey{w: w, dopt: dopt, cfg: cfg, p: a.Params}
	return anaSnapCache.get(ctx, key, func() (*uarch.Machine, error) {
		snap, err := decodedMachine(context.Background(), w, dopt, cfg, noParse)
		if err != nil {
			return nil, err
		}
		m := snap.Clone()
		if noParse {
			if err := trace.Replay(a.Events(), m); err != nil {
				return nil, fmt.Errorf("core: replay of %s analysis trace: %w", w.Video, err)
			}
			return m, nil
		}
		parsed, err := parsedAnalysisTrace(context.Background(), w, dopt, a)
		if err != nil {
			return nil, err
		}
		m.ReplayEvents(parsed)
		return m, nil
	})
}
