package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/codec"
	"repro/internal/uarch"
)

func TestProbeFlags(t *testing.T) {
	w := Workload{Video: "desktop", Frames: 16}
	run := func(name string, tune codec.Tuning) {
		opt := codec.Defaults()
		opt.Tune = tune
		res, err := Run(context.Background(), Job{Workload: w, Options: opt, Config: uarch.Baseline()})
		if err != nil {
			t.Fatal(err)
		}
		r := res.Report
		fmt.Printf("%-12s t=%.5f cyc=%.2fM l1d=%.2f l2=%.2f l3=%.2f mem%%=%.1f insts=%.1fM\n",
			name, r.Seconds, r.Cycles/1e6, r.L1DMPKI, r.L2MPKI, r.L3MPKI, r.Topdown.MemBound, r.Insts/1e6)
	}
	run("none", codec.Tuning{})
	run("fuse", codec.Tuning{FuseDeblock: true})
	run("interchange", codec.Tuning{InterchangeResidual: true})
	run("distribute", codec.Tuning{DistributeLookahead: true})
	run("all", codec.Tuning{FuseDeblock: true, InterchangeResidual: true, DistributeLookahead: true})
}
