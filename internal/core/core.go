// Package core is the paper's experimental pipeline: it wires the workload
// generator, the instrumented codec and the microarchitecture simulator
// together and exposes the three profiling sweeps of §III-C — across
// crf x refs, across presets, and across videos — plus single-run
// characterization used by the optimization and scheduling studies.
//
// All sweeps execute through one engine: a declarative Plan (warm targets,
// point count, a point builder) handed to Sweep, which runs on the
// context-aware worker pool in internal/exec. Canceling the context stops
// a sweep within one in-flight job per worker; unstarted points carry
// ctx.Err().
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/exec"
	"repro/internal/frame"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/vbench"
)

// Workload selects the video content of one experiment.
type Workload struct {
	Video  string // vbench short name
	Frames int    // clip length in frames (0: 16-frame default)
	Scale  int    // proxy downscale factor (0: auto, see DESIGN.md §6)
	Seed   uint64 // content seed override (0: per-video default)
}

// proxyLines is the target proxy height when Scale is auto: every catalog
// video is reduced to roughly this many lines so that one simulated second
// costs about the same regardless of source resolution.
const proxyLines = 256

// normalized resolves defaulted fields so that equal workloads share one
// mezzanine cache entry.
func (w Workload) normalized() (Workload, error) {
	if w.Frames <= 0 {
		w.Frames = 16
	}
	if w.Scale <= 0 {
		info, err := vbench.ByName(w.Video)
		if err != nil {
			return w, err
		}
		w.Scale = info.Height / proxyLines
		if w.Scale < 1 {
			w.Scale = 1
		}
	}
	return w, nil
}

// DefaultWorkload returns the proxy settings used by the experiment
// harness: a 16-frame clip auto-scaled to roughly 192 lines.
func DefaultWorkload(video string) Workload {
	return Workload{Video: video}
}

// SegmentsFor computes the segment plan a workload splits into: parts
// balanced contiguous frame ranges (codec.SplitSegments) over the
// workload's normalized clip length. The plan is what a multi-part serve
// job fans out as, one Job.Segment per entry.
func SegmentsFor(w Workload, parts int) ([]codec.Segment, error) {
	nw, err := w.normalized()
	if err != nil {
		return nil, err
	}
	return codec.SplitSegments(nw.Frames, parts), nil
}

// Job is one transcoding run to simulate.
type Job struct {
	Workload Workload
	Options  codec.Options
	Config   uarch.Config
	// Segment restricts the encode to a frame range of the decoded clip
	// (zero: the whole clip) — the unit of segment-parallel transcoding.
	// The decode half still covers the whole mezzanine, exactly as a
	// production segment worker downloads and decodes the source before
	// encoding its slice; per-segment shared-analysis artifacts are keyed
	// by the range. Segment bitstreams stitch byte-identically to a serial
	// segmented encode (codec.EncodeSegments, TestSegmentStitchByteIdentical).
	Segment codec.Segment
	// Image overrides the default code layout (used by the AutoFDO study);
	// nil selects the compiler-default layout.
	Image *trace.Image
	// SkipDecode omits the decode half of the transcode (encode-only
	// microbenchmarks); full transcodes decode a cached mezzanine stream
	// first, exactly as a production transcode does.
	SkipDecode bool
	// NoReplayCache forces the decode half to run live through codec.Decoder
	// instead of replaying the cached recorded trace. The two paths produce
	// bit-for-bit identical profiles (asserted by TestReplayRunEquivalence);
	// this escape hatch exists for fidelity A/B checks and for measuring the
	// replay layer's own speedup.
	NoReplayCache bool
	// NoParseCache forces replays to stream the raw varint trace through
	// trace.Replay instead of fanning out from the cached pre-parsed event
	// slab via Machine.ReplayEvents. The two paths are bit-for-bit identical
	// (TestParsedRunEquivalence, TestReplayEventsEquivalence); this escape
	// hatch exists for fidelity A/B checks and for measuring the parsed
	// layer's own speedup.
	NoParseCache bool
	// NoAnalysisCache disables the shared per-video analysis artifact: the
	// encoder runs its own lookahead and AQ variance pass instead of reusing
	// the memoized one. Like NoReplayCache the two paths are bit-for-bit
	// identical (TestAnalysisRunEquivalence); this escape hatch exists for
	// fidelity A/B checks and for measuring the analysis layer's own speedup.
	NoAnalysisCache bool
	// StageMetrics attaches a per-encode-stage latency observer that feeds
	// the encode_stage_<stage>_ns histograms in obs.Default(). Opt-in: the
	// timing calls cost real wall time per macroblock, so throughput-critical
	// paths (the benchmarked sweeps) leave it off.
	StageMetrics bool
	// KeepStream retains the encoded bitstream on the Result. Off by
	// default: characterization sweeps only need the profile, and holding
	// every part's bitstream would bloat long runs. The serving layer turns
	// it on for segmented jobs so parts can be stitched into a rendition.
	KeepStream bool
}

// stageRecorder bridges codec.StageObserver onto the shared metrics
// registry, one histogram per encode stage.
type stageRecorder struct {
	hists [codec.NumEncodeStages]*obs.Histogram
}

func newStageRecorder(reg *obs.Registry) *stageRecorder {
	r := &stageRecorder{}
	for s := codec.EncodeStage(0); s < codec.NumEncodeStages; s++ {
		r.hists[s] = reg.Histogram("encode_stage_" + s.String() + "_ns")
	}
	return r
}

func (r *stageRecorder) ObserveStage(s codec.EncodeStage, d time.Duration) {
	r.hists[s].Observe(int64(d))
}

// Result bundles the profile and the codec-side outcome of a run.
type Result struct {
	Report *perf.Report
	Stats  *codec.Stats
	// Stream is the encoded bitstream, populated only when Job.KeepStream
	// was set (or by EncodeOnly, which always returns it).
	Stream []byte
}

// --- mezzanine cache ----------------------------------------------------------

// mezzanine is the "uploaded" form of each workload: a high-quality encode
// produced once per (video, frames, scale, seed) and then decoded at the
// start of every transcode job, mirroring how a streaming service stores
// one pristine copy and transcodes it many times. Per-key singleflight
// guarantees the pristine encode runs exactly once even when concurrent
// sweep workers miss simultaneously.
var mezzCache = flightCache[Workload, []byte]{
	name: "mezzanine",
	size: func(b []byte) int64 { return int64(len(b)) },
}

// mezzanineOptions returns the settings of the pristine copy.
func mezzanineOptions() (codec.Options, error) {
	o := codec.Options{RC: codec.RCCQP, QP: 12, CRF: 23, KeyintMax: 250}
	if err := codec.ApplyPreset(&o, codec.PresetVeryfast); err != nil {
		return o, fmt.Errorf("core: mezzanine preset: %w", err)
	}
	return o, nil
}

// sourceFrames synthesizes the raw clip for a workload.
func sourceFrames(w Workload) ([]*frame.Frame, vbench.VideoInfo, error) {
	info, err := vbench.ByName(w.Video)
	if err != nil {
		return nil, info, err
	}
	src := vbench.NewSource(info, vbench.SourceOptions{Scale: w.Scale, Seed: w.Seed})
	n := w.Frames
	if n <= 0 {
		n = src.FrameCount(5)
	}
	frames := make([]*frame.Frame, n)
	for i := range frames {
		frames[i] = src.Frame(i)
	}
	return frames, info, nil
}

// Mezzanine returns (building and caching on first use) the pristine
// bitstream for a workload. Cache builds are detached from ctx: canceling
// a waiting caller never poisons the entry.
func Mezzanine(ctx context.Context, w Workload) ([]byte, error) {
	w, err := w.normalized()
	if err != nil {
		return nil, err
	}
	return mezzCache.get(ctx, w, func() ([]byte, error) {
		frames, info, err := sourceFrames(w)
		if err != nil {
			return nil, err
		}
		mo, err := mezzanineOptions()
		if err != nil {
			return nil, err
		}
		enc, err := codec.NewEncoder(frames[0].Width, frames[0].Height, info.FPS, mo, nil)
		if err != nil {
			return nil, err
		}
		stream, _, err := enc.EncodeAll(frames)
		if err != nil {
			return nil, fmt.Errorf("core: mezzanine encode of %s: %w", w.Video, err)
		}
		return stream, nil
	})
}

// --- decoded-mezzanine cache ----------------------------------------------------

// decodedMezz is one decode cache entry: the reconstructed frames plus the
// recorded decoder event stream. Both are shared across every job that hits
// the entry — frames are cloned before handing them to an encoder, and the
// event buffer is only ever read (by trace.Replay).
type decodedMezz struct {
	frames []*frame.Frame
	events []byte
}

// decodeKey identifies one decode of one mezzanine: decoder options change
// both the emitted event stream (sampling, loop tuning) and nothing else,
// so (workload, options) fully determines the entry.
type decodeKey struct {
	w   Workload
	opt codec.DecoderOptions
}

var decCache = flightCache[decodeKey, *decodedMezz]{
	name: "decoded",
	size: func(d *decodedMezz) int64 {
		n := int64(len(d.events))
		for _, f := range d.frames {
			n += int64(f.ByteSize())
		}
		return n
	},
}

// decoderOptions derives the decode-side options a job's encode options
// imply — the single place the decode half of Run is configured.
func decoderOptions(o codec.Options) codec.DecoderOptions {
	return codec.DecoderOptions{TraceSampleLog2: o.TraceSampleLog2, Tune: o.Tune}
}

// DecodedMezzanine returns (building and caching on first use) the decoded
// frames and recorded decode trace of a workload's mezzanine. The returned
// slices are shared cache state: callers must treat the frames and buffer
// as read-only (Run clones the frames before encoding into a job).
func DecodedMezzanine(ctx context.Context, w Workload, opt codec.DecoderOptions) ([]*frame.Frame, []byte, error) {
	w, err := w.normalized()
	if err != nil {
		return nil, nil, err
	}
	ent, err := decCache.get(ctx, decodeKey{w: w, opt: opt}, func() (*decodedMezz, error) {
		// Detached build: the nested cache lookup must not inherit the
		// waiter's cancellation, or an abandoned build could cache ctx.Err().
		stream, err := Mezzanine(context.Background(), w)
		if err != nil {
			return nil, err
		}
		frames, _, events, err := codec.RecordDecode(stream, opt)
		if err != nil {
			return nil, fmt.Errorf("core: mezzanine decode of %s: %w", w.Video, err)
		}
		return &decodedMezz{frames: frames, events: events}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return ent.frames, ent.events, nil
}

// --- parsed-trace cache ---------------------------------------------------------

// parsedDecCache holds the pre-parsed form of each recorded decode trace.
// It is keyed exactly like the raw buffer (decodeKey, no uarch config), so
// all five Table IV machine snapshots of one workload fan out from a
// single parsed slab: the varint stream is decoded once per (workload,
// decoder options) instead of once per configuration. Entries share the
// decoded cache's eviction story — both live for the process and are
// sized into the same obs byte gauges.
var parsedDecCache = flightCache[decodeKey, *trace.EventBuf]{
	name: "parsed",
	size: func(b *trace.EventBuf) int64 { return int64(b.SizeBytes()) },
}

// ParsedDecodeTrace returns (building and caching on first use) the parsed
// event representation of a workload's recorded decode trace. The returned
// buffer is shared cache state: callers must treat it as read-only.
func ParsedDecodeTrace(ctx context.Context, w Workload, opt codec.DecoderOptions) (*trace.EventBuf, error) {
	w, err := w.normalized()
	if err != nil {
		return nil, err
	}
	return parsedDecCache.get(ctx, decodeKey{w: w, opt: opt}, func() (*trace.EventBuf, error) {
		_, events, err := DecodedMezzanine(context.Background(), w, opt)
		if err != nil {
			return nil, err
		}
		b, err := trace.Parse(events)
		if err != nil {
			return nil, fmt.Errorf("core: parse of %s decode trace: %w", w.Video, err)
		}
		return b, nil
	})
}

// snapKey identifies one decoded-machine snapshot: a machine of one
// configuration (with the default code image) that has already consumed
// one workload's decode event stream.
type snapKey struct {
	w   Workload
	opt codec.DecoderOptions
	cfg uarch.Config
}

var snapCache = flightCache[snapKey, *uarch.Machine]{name: "snapshot"}

// decodedMachine returns the cached post-decode machine snapshot for a
// (workload, decoder options, configuration) triple, building it on first
// use by replaying the recorded decode trace into a fresh machine. The
// default build fans out from the shared parsed slab (one trace decode
// serves every configuration); noParse streams the raw buffer through
// trace.Replay instead — the two builds are bit-identical, so the cached
// snapshot is the same machine either way. Callers must Clone the snapshot
// before feeding it further events.
func decodedMachine(ctx context.Context, w Workload, dopt codec.DecoderOptions, cfg uarch.Config, noParse bool) (*uarch.Machine, error) {
	w, err := w.normalized()
	if err != nil {
		return nil, err
	}
	return snapCache.get(ctx, snapKey{w: w, opt: dopt, cfg: cfg}, func() (*uarch.Machine, error) {
		m := uarch.NewMachine(cfg, trace.NewImage(nil))
		if noParse {
			_, events, err := DecodedMezzanine(context.Background(), w, dopt)
			if err != nil {
				return nil, err
			}
			if err := trace.Replay(events, m); err != nil {
				return nil, fmt.Errorf("core: replay of %s decode trace: %w", w.Video, err)
			}
			return m, nil
		}
		parsed, err := ParsedDecodeTrace(context.Background(), w, dopt)
		if err != nil {
			return nil, err
		}
		m.ReplayEvents(parsed)
		return m, nil
	})
}

// cloneFrames deep-copies a cached frame slice so a job's encoder works on
// private pixels (virtual bases are preserved, keeping traced addresses
// identical to a live decode).
func cloneFrames(src []*frame.Frame) []*frame.Frame {
	out := make([]*frame.Frame, len(src))
	for i, f := range src {
		out[i] = f.Clone()
	}
	return out
}

// Run simulates one transcoding job end to end: decode the mezzanine (unless
// skipped), re-encode with the job's options, all under the configured
// microarchitecture. Returns the profile and codec statistics.
//
// Cancellation is observed at the stage boundaries (cache waits and the
// start of the encode); a job already inside the encoder runs to
// completion, which bounds a canceled sweep's overhang to one in-flight
// job per worker.
func Run(ctx context.Context, job Job) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nw, err := job.Workload.normalized()
	if err != nil {
		return nil, err
	}
	job.Workload = nw
	img := job.Image
	if img == nil {
		img = trace.NewImage(nil)
	}

	var machine *uarch.Machine
	var input []*frame.Frame
	var analysis *codec.Analysis
	info, err := vbench.ByName(job.Workload.Video)
	if err != nil {
		return nil, err
	}
	switch {
	case job.SkipDecode:
		machine = uarch.NewMachine(job.Config, img)
		input, _, err = sourceFrames(job.Workload)
		if err != nil {
			return nil, err
		}
	case job.NoReplayCache:
		// Live path: simulate the decode directly into this job's machine.
		machine = uarch.NewMachine(job.Config, img)
		stream, err := Mezzanine(ctx, job.Workload)
		if err != nil {
			return nil, err
		}
		dec := codec.NewDecoder(decoderOptions(job.Options), machine)
		input, _, err = dec.Decode(stream)
		if err != nil {
			return nil, fmt.Errorf("core: mezzanine decode of %s: %w", job.Workload.Video, err)
		}
	default:
		// Cached path: the decode is simulated once per (workload, decoder
		// options) and its event stream recorded; each job then gets the
		// post-decode machine state without re-running codec.Decoder. The
		// machine is a deterministic event consumer, so its state — and
		// therefore the profile — is bit-for-bit what the live path
		// produces (TestReplayRunEquivalence).
		dopt := decoderOptions(job.Options)
		frames, events, err := DecodedMezzanine(ctx, job.Workload, dopt)
		if err != nil {
			return nil, err
		}
		if job.Image == nil && !job.NoAnalysisCache && job.Options.RC != codec.RCABR2 {
			// Shared analysis: the crf/refs-invariant lookahead work is
			// memoized once per workload, and the machine snapshot has already
			// consumed both the decode trace and the artifact's recorded
			// lookahead events — the encode starts past the lookahead at
			// memcpy speed. (Two-pass ABR interleaves a full first-pass encode
			// before its lookahead, so its tracer state cannot resume from the
			// artifact.)
			if analysis, err = sharedAnalysis(ctx, job.Workload, dopt, job.Options, job.Segment); err != nil {
				return nil, err
			}
			snap, err := analysisMachine(ctx, job.Workload, dopt, job.Config, analysis, job.NoParseCache)
			if err != nil {
				return nil, err
			}
			machine = snap.Clone()
		} else if job.Image == nil {
			// Default code image: clone the cached post-decode machine
			// snapshot — the decode half at memcpy speed.
			snap, err := decodedMachine(ctx, job.Workload, dopt, job.Config, job.NoParseCache)
			if err != nil {
				return nil, err
			}
			machine = snap.Clone()
		} else {
			// Custom image (e.g. the AutoFDO study): snapshots are keyed on
			// the default layout, so re-drive the recorded events into this
			// job's machine instead — from the shared parsed slab unless the
			// job opted out.
			machine = uarch.NewMachine(job.Config, img)
			if job.NoParseCache {
				if err := trace.Replay(events, machine); err != nil {
					return nil, fmt.Errorf("core: replay of %s decode trace: %w", job.Workload.Video, err)
				}
			} else {
				parsed, err := ParsedDecodeTrace(ctx, job.Workload, dopt)
				if err != nil {
					return nil, err
				}
				machine.ReplayEvents(parsed)
			}
		}
		input = cloneFrames(frames)
	}

	if !job.Segment.IsZero() {
		// Segment jobs encode a slice of the decoded clip; frames keep their
		// absolute PTS and decoder-assigned bases, so the per-segment encode
		// is exactly what codec.EncodeSegment produces for this range.
		if err := job.Segment.Validate(len(input)); err != nil {
			return nil, err
		}
		input = input[job.Segment.Start:job.Segment.End]
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	enc, err := codec.NewEncoder(input[0].Width, input[0].Height, info.FPS, job.Options, machine)
	if err != nil {
		return nil, err
	}
	if analysis != nil {
		if err := enc.SetAnalysis(analysis); err != nil {
			return nil, err
		}
	}
	if job.StageMetrics {
		enc.SetStageObserver(newStageRecorder(obs.Default()))
	}
	stream, stats, err := enc.EncodeAll(input)
	if err != nil {
		return nil, fmt.Errorf("core: encode of %s: %w", job.Workload.Video, err)
	}
	rep := perf.FromResult(machine.Result(), enc.SampleFactor())
	res := &Result{Report: rep, Stats: stats}
	if job.KeepStream {
		res.Stream = stream
	}
	return res, nil
}

// EncodeOnly runs the codec half of a job with no microarchitectural
// simulation attached — the execution path of a fixed-function accelerator
// backend, which produces bits but no topdown profile. It reuses the same
// cached decoded mezzanine and the same encoder as Run, so for any options
// both backends accept, the bitstream is byte-identical to the software
// path's (TestEncodeOnlyMatchesRun) and segment parts from a mixed fleet
// stitch cleanly. The accelerator's wall clock comes from
// backend.AccelModel, not from measuring this call.
func EncodeOnly(ctx context.Context, job Job) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nw, err := job.Workload.normalized()
	if err != nil {
		return nil, err
	}
	job.Workload = nw
	info, err := vbench.ByName(job.Workload.Video)
	if err != nil {
		return nil, err
	}
	frames, _, err := DecodedMezzanine(ctx, job.Workload, decoderOptions(job.Options))
	if err != nil {
		return nil, err
	}
	input := cloneFrames(frames)
	if !job.Segment.IsZero() {
		if err := job.Segment.Validate(len(input)); err != nil {
			return nil, err
		}
		input = input[job.Segment.Start:job.Segment.End]
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	enc, err := codec.NewEncoder(input[0].Width, input[0].Height, info.FPS, job.Options, nil)
	if err != nil {
		return nil, err
	}
	stream, stats, err := enc.EncodeAll(input)
	if err != nil {
		return nil, fmt.Errorf("core: encode of %s: %w", job.Workload.Video, err)
	}
	return &Result{Stats: stats, Stream: stream}, nil
}

// ProxyDims reports the proxy geometry (frame dimensions and clip length)
// a workload resolves to — the inputs of the accelerator's closed-form
// wall-clock model and of deadline admission checks.
func ProxyDims(w Workload) (width, height, frames int, err error) {
	nw, err := w.normalized()
	if err != nil {
		return 0, 0, 0, err
	}
	info, err := vbench.ByName(nw.Video)
	if err != nil {
		return 0, 0, 0, err
	}
	width, height = vbench.ProxyDims(info, nw.Scale)
	return width, height, nw.Frames, nil
}

// --- sweeps ---------------------------------------------------------------------

// Point is one sweep sample: the parameter coordinates plus profile and
// codec outcomes.
type Point struct {
	Video  string
	CRF    int
	Refs   int
	Preset codec.Preset

	Report *perf.Report
	Stats  *codec.Stats
	Err    error
}

// Points is an ordered sweep result, one Point per planned job.
type Points []Point

// FirstErr returns the first per-point error in sweep order, or nil when
// every point succeeded. CLIs use it to turn per-point failures into
// non-zero exit codes instead of silently printing them into CSVs.
func (ps Points) FirstErr() error {
	for i := range ps {
		if ps[i].Err != nil {
			return ps[i].Err
		}
	}
	return nil
}

// Failed returns the subset of points whose build or run failed, in sweep
// order.
func (ps Points) Failed() Points {
	var out Points
	for i := range ps {
		if ps[i].Err != nil {
			out = append(out, ps[i])
		}
	}
	return out
}

// SweepOpts adjusts how a sweep executes without changing what it measures.
type SweepOpts struct {
	// NoReplayCache runs every point's decode live instead of replaying the
	// recorded decode trace (see Job.NoReplayCache).
	NoReplayCache bool
	// NoParseCache streams every replay through the raw varint buffer
	// instead of the shared parsed event slab (see Job.NoParseCache).
	NoParseCache bool
	// NoAnalysisCache runs every point's lookahead and AQ analysis live
	// instead of reusing the shared per-video artifact (see
	// Job.NoAnalysisCache).
	NoAnalysisCache bool
	// StageMetrics turns on per-encode-stage latency histograms for every
	// point (see Job.StageMetrics).
	StageMetrics bool
	// Progress, when non-nil, is called once per finished point with the
	// running count and the total. Calls are serialized by the engine.
	Progress func(done, total int)
}

// WarmTarget names one decode-cache entry a sweep's points will hit, so the
// workers fan out against warm state instead of stampeding a cold cache.
type WarmTarget struct {
	Workload Workload
	Decoder  codec.DecoderOptions
	Config   uarch.Config
}

// Plan declares a sweep: which caches to warm, how many points there are,
// and how to build each point's job and coordinates. Every §III-C sweep is
// a Plan; so is any future axis.
type Plan struct {
	// Warm lists the decode-cache entries to pre-build (in parallel) before
	// the points fan out.
	Warm []WarmTarget
	// N is the number of points.
	N int
	// Build returns the i-th point's job and coordinate labels. A build
	// error marks the point failed and the runner skips it — the job is
	// never executed, so the original error survives into Point.Err.
	Build func(i int) (Job, Point, error)
	// Opts adjusts execution (replay cache, progress reporting).
	Opts SweepOpts
}

// Sweep executes a plan on the shared worker pool and returns one Point
// per planned job, in plan order.
//
// Cancellation: when ctx is canceled the sweep returns within one
// in-flight job per worker; points that never started carry ctx.Err() in
// Point.Err. Per-point failures (build or run) land in Point.Err without
// stopping the other points.
func Sweep(ctx context.Context, p Plan) Points {
	met := obs.Default()
	if len(p.Warm) > 0 {
		warmSpan := met.Histogram("core_sweep_warmup_ns").Start()
		errs, err := exec.Pool{Policy: exec.FailFast}.Map(ctx, len(p.Warm), func(ctx context.Context, i int) error {
			t := p.Warm[i]
			return warmDecode(ctx, t.Workload, t.Decoder, t.Config, p.Opts)
		})
		warmSpan.End()
		if err != nil {
			// Preserve the pre-engine contract: a warm-up failure yields a
			// single point naming the workload that failed.
			for i, e := range errs {
				if e != nil && !errors.Is(e, exec.ErrSkipped) {
					return Points{{Video: p.Warm[i].Workload.Video, Err: e}}
				}
			}
			return Points{{Err: err}}
		}
	}

	points := make(Points, p.N)
	jobs := make([]Job, p.N)
	runnable := make([]bool, p.N)
	for i := range points {
		job, pt, err := p.Build(i)
		points[i] = pt
		if err != nil {
			points[i].Err = err
			continue
		}
		jobs[i] = job
		runnable[i] = true
	}

	pointHist := met.Histogram("core_sweep_point_ns")
	met.Counter("core_sweep_points_total").Add(int64(p.N))
	pool := exec.Pool{OnProgress: p.Opts.Progress}
	errs, _ := pool.Map(ctx, p.N, func(ctx context.Context, i int) error {
		if !runnable[i] {
			return nil // build already failed the point; never run the zero Job
		}
		sp := pointHist.Start()
		res, err := Run(ctx, jobs[i])
		sp.End()
		if err != nil {
			return err
		}
		points[i].Report = res.Report
		points[i].Stats = res.Stats
		return nil
	})
	for i, e := range errs {
		if e != nil && points[i].Err == nil {
			points[i].Err = e
		}
	}
	if failed := len(points.Failed()); failed > 0 {
		met.Counter("core_sweep_points_failed").Add(int64(failed))
	}
	return points
}

// warmDecode pre-builds the caches a sweep's points will hit: always the
// mezzanine, and — unless the sweep opts out of replay — the decoded
// frames, the recorded decode trace and the post-decode machine snapshot
// for the sweep's configuration.
func warmDecode(ctx context.Context, w Workload, dopt codec.DecoderOptions, cfg uarch.Config, opts SweepOpts) error {
	if opts.NoReplayCache {
		_, err := Mezzanine(ctx, w)
		return err
	}
	_, err := decodedMachine(ctx, w, dopt, cfg, opts.NoParseCache)
	return err
}

// SweepCRFRefs profiles every (crf, refs) combination on one video — the
// §III-C1 experiment behind Figures 3, 4 and 5.
func SweepCRFRefs(ctx context.Context, w Workload, base codec.Options, cfg uarch.Config, crfs, refs []int) Points {
	return SweepCRFRefsWith(ctx, w, base, cfg, crfs, refs, SweepOpts{})
}

// SweepCRFRefsWith is SweepCRFRefs with explicit execution options.
func SweepCRFRefsWith(ctx context.Context, w Workload, base codec.Options, cfg uarch.Config, crfs, refs []int, opts SweepOpts) Points {
	return Sweep(ctx, Plan{
		// Every point shares one decoder configuration: crf and refs only
		// alter the encode half.
		Warm: []WarmTarget{{Workload: w, Decoder: decoderOptions(base), Config: cfg}},
		N:    len(crfs) * len(refs),
		Build: func(i int) (Job, Point, error) {
			crf := crfs[i/len(refs)]
			rf := refs[i%len(refs)]
			opt := base
			opt.RC = codec.RCCRF
			opt.CRF = crf
			opt.Refs = rf
			return Job{Workload: w, Options: opt, Config: cfg,
					NoReplayCache: opts.NoReplayCache, NoParseCache: opts.NoParseCache, NoAnalysisCache: opts.NoAnalysisCache,
					StageMetrics: opts.StageMetrics},
				Point{Video: w.Video, CRF: crf, Refs: rf}, nil
		},
		Opts: opts,
	})
}

// SweepPresets profiles all presets at fixed crf/refs on one video — the
// §III-C2 experiment behind Figure 6. Following the paper, crf and refs are
// pinned to the defaults (23/3) regardless of the preset's own values.
func SweepPresets(ctx context.Context, w Workload, cfg uarch.Config, presets []codec.Preset, crf, refs int) Points {
	return SweepPresetsWith(ctx, w, cfg, presets, crf, refs, SweepOpts{})
}

// SweepPresetsWith is SweepPresets with explicit execution options.
func SweepPresetsWith(ctx context.Context, w Workload, cfg uarch.Config, presets []codec.Preset, crf, refs int, opts SweepOpts) Points {
	return Sweep(ctx, Plan{
		// All preset points decode full-trace with default tuning (the
		// presets alter only the encode half), so they share one decode
		// cache entry.
		Warm: []WarmTarget{{Workload: w, Config: cfg}},
		N:    len(presets),
		Build: func(i int) (Job, Point, error) {
			pt := Point{Video: w.Video, CRF: crf, Refs: refs, Preset: presets[i]}
			opt := codec.Options{RC: codec.RCCRF, CRF: crf, QP: 26, KeyintMax: 250}
			if err := codec.ApplyPreset(&opt, presets[i]); err != nil {
				return Job{}, pt, err
			}
			opt.Refs = refs
			opt.TraceSampleLog2 = 0
			return Job{Workload: w, Options: opt, Config: cfg,
				NoReplayCache: opts.NoReplayCache, NoParseCache: opts.NoParseCache, NoAnalysisCache: opts.NoAnalysisCache,
				StageMetrics: opts.StageMetrics}, pt, nil
		},
		Opts: opts,
	})
}

// SweepVideos profiles a fixed configuration (medium, crf 23, refs 3 unless
// overridden) across videos — the §III-C3 experiment behind Figure 7.
func SweepVideos(ctx context.Context, videos []string, frames, scale int, base codec.Options, cfg uarch.Config) Points {
	return SweepVideosWith(ctx, videos, frames, scale, base, cfg, SweepOpts{})
}

// SweepVideosWith is SweepVideos with explicit execution options. The
// per-video warm-up runs in parallel on the pool (it was serial before the
// execution layer existed).
func SweepVideosWith(ctx context.Context, videos []string, frames, scale int, base codec.Options, cfg uarch.Config, opts SweepOpts) Points {
	warm := make([]WarmTarget, len(videos))
	for i, v := range videos {
		warm[i] = WarmTarget{
			Workload: Workload{Video: v, Frames: frames, Scale: scale},
			Decoder:  decoderOptions(base),
			Config:   cfg,
		}
	}
	return Sweep(ctx, Plan{
		Warm: warm,
		N:    len(videos),
		Build: func(i int) (Job, Point, error) {
			w := Workload{Video: videos[i], Frames: frames, Scale: scale}
			return Job{Workload: w, Options: base, Config: cfg,
					NoReplayCache: opts.NoReplayCache, NoParseCache: opts.NoParseCache, NoAnalysisCache: opts.NoAnalysisCache,
					StageMetrics: opts.StageMetrics},
				Point{Video: videos[i], CRF: base.CRF, Refs: base.Refs}, nil
		},
		Opts: opts,
	})
}
