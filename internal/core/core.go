// Package core is the paper's experimental pipeline: it wires the workload
// generator, the instrumented codec and the microarchitecture simulator
// together and exposes the three profiling sweeps of §III-C — across
// crf x refs, across presets, and across videos — plus single-run
// characterization used by the optimization and scheduling studies.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/perf"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/vbench"
)

// Workload selects the video content of one experiment.
type Workload struct {
	Video  string // vbench short name
	Frames int    // clip length in frames (0: 16-frame default)
	Scale  int    // proxy downscale factor (0: auto, see DESIGN.md §6)
	Seed   uint64 // content seed override (0: per-video default)
}

// proxyLines is the target proxy height when Scale is auto: every catalog
// video is reduced to roughly this many lines so that one simulated second
// costs about the same regardless of source resolution.
const proxyLines = 256

// normalized resolves defaulted fields so that equal workloads share one
// mezzanine cache entry.
func (w Workload) normalized() (Workload, error) {
	if w.Frames <= 0 {
		w.Frames = 16
	}
	if w.Scale <= 0 {
		info, err := vbench.ByName(w.Video)
		if err != nil {
			return w, err
		}
		w.Scale = info.Height / proxyLines
		if w.Scale < 1 {
			w.Scale = 1
		}
	}
	return w, nil
}

// DefaultWorkload returns the proxy settings used by the experiment
// harness: a 16-frame clip auto-scaled to roughly 192 lines.
func DefaultWorkload(video string) Workload {
	return Workload{Video: video}
}

// Job is one transcoding run to simulate.
type Job struct {
	Workload Workload
	Options  codec.Options
	Config   uarch.Config
	// Image overrides the default code layout (used by the AutoFDO study);
	// nil selects the compiler-default layout.
	Image *trace.Image
	// SkipDecode omits the decode half of the transcode (encode-only
	// microbenchmarks); full transcodes decode a cached mezzanine stream
	// first, exactly as a production transcode does.
	SkipDecode bool
	// NoReplayCache forces the decode half to run live through codec.Decoder
	// instead of replaying the cached recorded trace. The two paths produce
	// bit-for-bit identical profiles (asserted by TestReplayRunEquivalence);
	// this escape hatch exists for fidelity A/B checks and for measuring the
	// replay layer's own speedup.
	NoReplayCache bool
}

// Result bundles the profile and the codec-side outcome of a run.
type Result struct {
	Report *perf.Report
	Stats  *codec.Stats
}

// --- mezzanine cache ----------------------------------------------------------

// mezzanine is the "uploaded" form of each workload: a high-quality encode
// produced once per (video, frames, scale, seed) and then decoded at the
// start of every transcode job, mirroring how a streaming service stores
// one pristine copy and transcodes it many times. Per-key singleflight
// guarantees the pristine encode runs exactly once even when concurrent
// sweep workers miss simultaneously.
var mezzCache flightCache[Workload, []byte]

// mezzanineOptions returns the settings of the pristine copy.
func mezzanineOptions() codec.Options {
	o := codec.Options{RC: codec.RCCQP, QP: 12, CRF: 23, KeyintMax: 250}
	if err := codec.ApplyPreset(&o, codec.PresetVeryfast); err != nil {
		panic(err)
	}
	return o
}

// sourceFrames synthesizes the raw clip for a workload.
func sourceFrames(w Workload) ([]*frame.Frame, vbench.VideoInfo, error) {
	info, err := vbench.ByName(w.Video)
	if err != nil {
		return nil, info, err
	}
	src := vbench.NewSource(info, vbench.SourceOptions{Scale: w.Scale, Seed: w.Seed})
	n := w.Frames
	if n <= 0 {
		n = src.FrameCount(5)
	}
	frames := make([]*frame.Frame, n)
	for i := range frames {
		frames[i] = src.Frame(i)
	}
	return frames, info, nil
}

// Mezzanine returns (building and caching on first use) the pristine
// bitstream for a workload.
func Mezzanine(w Workload) ([]byte, error) {
	w, err := w.normalized()
	if err != nil {
		return nil, err
	}
	return mezzCache.get(w, func() ([]byte, error) {
		frames, info, err := sourceFrames(w)
		if err != nil {
			return nil, err
		}
		enc, err := codec.NewEncoder(frames[0].Width, frames[0].Height, info.FPS, mezzanineOptions(), nil)
		if err != nil {
			return nil, err
		}
		stream, _, err := enc.EncodeAll(frames)
		if err != nil {
			return nil, fmt.Errorf("core: mezzanine encode of %s: %w", w.Video, err)
		}
		return stream, nil
	})
}

// --- decoded-mezzanine cache ----------------------------------------------------

// decodedMezz is one decode cache entry: the reconstructed frames plus the
// recorded decoder event stream. Both are shared across every job that hits
// the entry — frames are cloned before handing them to an encoder, and the
// event buffer is only ever read (by trace.Replay).
type decodedMezz struct {
	frames []*frame.Frame
	events []byte
}

// decodeKey identifies one decode of one mezzanine: decoder options change
// both the emitted event stream (sampling, loop tuning) and nothing else,
// so (workload, options) fully determines the entry.
type decodeKey struct {
	w   Workload
	opt codec.DecoderOptions
}

var decCache flightCache[decodeKey, *decodedMezz]

// decoderOptions derives the decode-side options a job's encode options
// imply — the single place the decode half of Run is configured.
func decoderOptions(o codec.Options) codec.DecoderOptions {
	return codec.DecoderOptions{TraceSampleLog2: o.TraceSampleLog2, Tune: o.Tune}
}

// DecodedMezzanine returns (building and caching on first use) the decoded
// frames and recorded decode trace of a workload's mezzanine. The returned
// slices are shared cache state: callers must treat the frames and buffer
// as read-only (Run clones the frames before encoding into a job).
func DecodedMezzanine(w Workload, opt codec.DecoderOptions) ([]*frame.Frame, []byte, error) {
	w, err := w.normalized()
	if err != nil {
		return nil, nil, err
	}
	ent, err := decCache.get(decodeKey{w: w, opt: opt}, func() (*decodedMezz, error) {
		stream, err := Mezzanine(w)
		if err != nil {
			return nil, err
		}
		frames, _, events, err := codec.RecordDecode(stream, opt)
		if err != nil {
			return nil, fmt.Errorf("core: mezzanine decode of %s: %w", w.Video, err)
		}
		return &decodedMezz{frames: frames, events: events}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return ent.frames, ent.events, nil
}

// snapKey identifies one decoded-machine snapshot: a machine of one
// configuration (with the default code image) that has already consumed
// one workload's decode event stream.
type snapKey struct {
	w   Workload
	opt codec.DecoderOptions
	cfg uarch.Config
}

var snapCache flightCache[snapKey, *uarch.Machine]

// decodedMachine returns the cached post-decode machine snapshot for a
// (workload, decoder options, configuration) triple, building it on first
// use by replaying the recorded decode trace into a fresh machine. Callers
// must Clone the snapshot before feeding it further events.
func decodedMachine(w Workload, dopt codec.DecoderOptions, cfg uarch.Config) (*uarch.Machine, error) {
	w, err := w.normalized()
	if err != nil {
		return nil, err
	}
	return snapCache.get(snapKey{w: w, opt: dopt, cfg: cfg}, func() (*uarch.Machine, error) {
		_, events, err := DecodedMezzanine(w, dopt)
		if err != nil {
			return nil, err
		}
		m := uarch.NewMachine(cfg, trace.NewImage(nil))
		if err := trace.Replay(events, m); err != nil {
			return nil, fmt.Errorf("core: replay of %s decode trace: %w", w.Video, err)
		}
		return m, nil
	})
}

// cloneFrames deep-copies a cached frame slice so a job's encoder works on
// private pixels (virtual bases are preserved, keeping traced addresses
// identical to a live decode).
func cloneFrames(src []*frame.Frame) []*frame.Frame {
	out := make([]*frame.Frame, len(src))
	for i, f := range src {
		out[i] = f.Clone()
	}
	return out
}

// Run simulates one transcoding job end to end: decode the mezzanine (unless
// skipped), re-encode with the job's options, all under the configured
// microarchitecture. Returns the profile and codec statistics.
func Run(job Job) (*Result, error) {
	nw, err := job.Workload.normalized()
	if err != nil {
		return nil, err
	}
	job.Workload = nw
	img := job.Image
	if img == nil {
		img = trace.NewImage(nil)
	}

	var machine *uarch.Machine
	var input []*frame.Frame
	info, err := vbench.ByName(job.Workload.Video)
	if err != nil {
		return nil, err
	}
	switch {
	case job.SkipDecode:
		machine = uarch.NewMachine(job.Config, img)
		input, _, err = sourceFrames(job.Workload)
		if err != nil {
			return nil, err
		}
	case job.NoReplayCache:
		// Live path: simulate the decode directly into this job's machine.
		machine = uarch.NewMachine(job.Config, img)
		stream, err := Mezzanine(job.Workload)
		if err != nil {
			return nil, err
		}
		dec := codec.NewDecoder(decoderOptions(job.Options), machine)
		input, _, err = dec.Decode(stream)
		if err != nil {
			return nil, fmt.Errorf("core: mezzanine decode of %s: %w", job.Workload.Video, err)
		}
	default:
		// Cached path: the decode is simulated once per (workload, decoder
		// options) and its event stream recorded; each job then gets the
		// post-decode machine state without re-running codec.Decoder. The
		// machine is a deterministic event consumer, so its state — and
		// therefore the profile — is bit-for-bit what the live path
		// produces (TestReplayRunEquivalence).
		dopt := decoderOptions(job.Options)
		frames, events, err := DecodedMezzanine(job.Workload, dopt)
		if err != nil {
			return nil, err
		}
		if job.Image == nil {
			// Default code image: clone the cached post-decode machine
			// snapshot — the decode half at memcpy speed.
			snap, err := decodedMachine(job.Workload, dopt, job.Config)
			if err != nil {
				return nil, err
			}
			machine = snap.Clone()
		} else {
			// Custom image (e.g. the AutoFDO study): snapshots are keyed on
			// the default layout, so re-drive the recorded events into this
			// job's machine instead.
			machine = uarch.NewMachine(job.Config, img)
			if err := trace.Replay(events, machine); err != nil {
				return nil, fmt.Errorf("core: replay of %s decode trace: %w", job.Workload.Video, err)
			}
		}
		input = cloneFrames(frames)
	}

	enc, err := codec.NewEncoder(input[0].Width, input[0].Height, info.FPS, job.Options, machine)
	if err != nil {
		return nil, err
	}
	_, stats, err := enc.EncodeAll(input)
	if err != nil {
		return nil, fmt.Errorf("core: encode of %s: %w", job.Workload.Video, err)
	}
	rep := perf.FromResult(machine.Result(), enc.SampleFactor())
	return &Result{Report: rep, Stats: stats}, nil
}

// --- sweeps ---------------------------------------------------------------------

// Point is one sweep sample: the parameter coordinates plus profile and
// codec outcomes.
type Point struct {
	Video  string
	CRF    int
	Refs   int
	Preset codec.Preset

	Report *perf.Report
	Stats  *codec.Stats
	Err    error
}

// runParallel evaluates jobs on a fixed pool of GOMAXPROCS workers pulling
// indices from a channel, preserving order in the returned slice. A pool
// (rather than one goroutine per job gated by a semaphore) keeps an
// 816-point sweep at a handful of live goroutines instead of 816 parked
// ones.
func runParallel(n int, build func(i int) (Job, Point)) []Point {
	points := make([]Point, n)
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		jobs[i], points[i] = build(i)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := Run(jobs[i])
				if err != nil {
					points[i].Err = err
					continue
				}
				points[i].Report = res.Report
				points[i].Stats = res.Stats
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return points
}

// SweepOpts adjusts how a sweep executes without changing what it measures.
type SweepOpts struct {
	// NoReplayCache runs every point's decode live instead of replaying the
	// recorded decode trace (see Job.NoReplayCache).
	NoReplayCache bool
}

// warmDecode pre-builds the caches a sweep's points will hit so the workers
// fan out against warm state: always the mezzanine, and — unless the sweep
// opts out of replay — the decoded frames, the recorded decode trace and
// the post-decode machine snapshot for the sweep's configuration.
func warmDecode(w Workload, dopt codec.DecoderOptions, cfg uarch.Config, opts SweepOpts) error {
	if opts.NoReplayCache {
		_, err := Mezzanine(w)
		return err
	}
	_, err := decodedMachine(w, dopt, cfg)
	return err
}

// SweepCRFRefs profiles every (crf, refs) combination on one video — the
// §III-C1 experiment behind Figures 3, 4 and 5.
func SweepCRFRefs(w Workload, base codec.Options, cfg uarch.Config, crfs, refs []int) []Point {
	return SweepCRFRefsWith(w, base, cfg, crfs, refs, SweepOpts{})
}

// SweepCRFRefsWith is SweepCRFRefs with explicit execution options.
func SweepCRFRefsWith(w Workload, base codec.Options, cfg uarch.Config, crfs, refs []int, opts SweepOpts) []Point {
	// Every point shares one decoder configuration: crf and refs only alter
	// the encode half.
	if err := warmDecode(w, decoderOptions(base), cfg, opts); err != nil {
		return []Point{{Video: w.Video, Err: err}}
	}
	n := len(crfs) * len(refs)
	return runParallel(n, func(i int) (Job, Point) {
		crf := crfs[i/len(refs)]
		rf := refs[i%len(refs)]
		opt := base
		opt.RC = codec.RCCRF
		opt.CRF = crf
		opt.Refs = rf
		return Job{Workload: w, Options: opt, Config: cfg, NoReplayCache: opts.NoReplayCache},
			Point{Video: w.Video, CRF: crf, Refs: rf}
	})
}

// SweepPresets profiles all presets at fixed crf/refs on one video — the
// §III-C2 experiment behind Figure 6. Following the paper, crf and refs are
// pinned to the defaults (23/3) regardless of the preset's own values.
func SweepPresets(w Workload, cfg uarch.Config, presets []codec.Preset, crf, refs int) []Point {
	// All preset points decode full-trace with default tuning (the presets
	// alter only the encode half), so they share one decode cache entry.
	if err := warmDecode(w, codec.DecoderOptions{}, cfg, SweepOpts{}); err != nil {
		return []Point{{Video: w.Video, Err: err}}
	}
	return runParallel(len(presets), func(i int) (Job, Point) {
		opt := codec.Options{RC: codec.RCCRF, CRF: crf, QP: 26, KeyintMax: 250}
		if err := codec.ApplyPreset(&opt, presets[i]); err != nil {
			return Job{}, Point{Err: err}
		}
		opt.Refs = refs
		opt.TraceSampleLog2 = 0
		return Job{Workload: w, Options: opt, Config: cfg},
			Point{Video: w.Video, CRF: crf, Refs: refs, Preset: presets[i]}
	})
}

// SweepVideos profiles a fixed configuration (medium, crf 23, refs 3 unless
// overridden) across videos — the §III-C3 experiment behind Figure 7.
func SweepVideos(videos []string, frames, scale int, base codec.Options, cfg uarch.Config) []Point {
	for _, v := range videos {
		w := Workload{Video: v, Frames: frames, Scale: scale}
		if err := warmDecode(w, decoderOptions(base), cfg, SweepOpts{}); err != nil {
			return []Point{{Video: v, Err: err}}
		}
	}
	return runParallel(len(videos), func(i int) (Job, Point) {
		w := Workload{Video: videos[i], Frames: frames, Scale: scale}
		return Job{Workload: w, Options: base, Config: cfg},
			Point{Video: videos[i], CRF: base.CRF, Refs: base.Refs}
	})
}
