// Package core is the paper's experimental pipeline: it wires the workload
// generator, the instrumented codec and the microarchitecture simulator
// together and exposes the three profiling sweeps of §III-C — across
// crf x refs, across presets, and across videos — plus single-run
// characterization used by the optimization and scheduling studies.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/perf"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/vbench"
)

// Workload selects the video content of one experiment.
type Workload struct {
	Video  string // vbench short name
	Frames int    // clip length in frames (0: 16-frame default)
	Scale  int    // proxy downscale factor (0: auto, see DESIGN.md §6)
	Seed   uint64 // content seed override (0: per-video default)
}

// proxyLines is the target proxy height when Scale is auto: every catalog
// video is reduced to roughly this many lines so that one simulated second
// costs about the same regardless of source resolution.
const proxyLines = 256

// normalized resolves defaulted fields so that equal workloads share one
// mezzanine cache entry.
func (w Workload) normalized() (Workload, error) {
	if w.Frames <= 0 {
		w.Frames = 16
	}
	if w.Scale <= 0 {
		info, err := vbench.ByName(w.Video)
		if err != nil {
			return w, err
		}
		w.Scale = info.Height / proxyLines
		if w.Scale < 1 {
			w.Scale = 1
		}
	}
	return w, nil
}

// DefaultWorkload returns the proxy settings used by the experiment
// harness: a 16-frame clip auto-scaled to roughly 192 lines.
func DefaultWorkload(video string) Workload {
	return Workload{Video: video}
}

// Job is one transcoding run to simulate.
type Job struct {
	Workload Workload
	Options  codec.Options
	Config   uarch.Config
	// Image overrides the default code layout (used by the AutoFDO study);
	// nil selects the compiler-default layout.
	Image *trace.Image
	// SkipDecode omits the decode half of the transcode (encode-only
	// microbenchmarks); full transcodes decode a cached mezzanine stream
	// first, exactly as a production transcode does.
	SkipDecode bool
}

// Result bundles the profile and the codec-side outcome of a run.
type Result struct {
	Report *perf.Report
	Stats  *codec.Stats
}

// --- mezzanine cache ----------------------------------------------------------

// mezzanine is the "uploaded" form of each workload: a high-quality encode
// produced once per (video, frames, scale, seed) and then decoded at the
// start of every transcode job, mirroring how a streaming service stores
// one pristine copy and transcodes it many times.
var mezzCache struct {
	sync.Mutex
	streams map[Workload][]byte
}

// mezzanineOptions returns the settings of the pristine copy.
func mezzanineOptions() codec.Options {
	o := codec.Options{RC: codec.RCCQP, QP: 12, CRF: 23, KeyintMax: 250}
	if err := codec.ApplyPreset(&o, codec.PresetVeryfast); err != nil {
		panic(err)
	}
	return o
}

// sourceFrames synthesizes the raw clip for a workload.
func sourceFrames(w Workload) ([]*frame.Frame, vbench.VideoInfo, error) {
	info, err := vbench.ByName(w.Video)
	if err != nil {
		return nil, info, err
	}
	src := vbench.NewSource(info, vbench.SourceOptions{Scale: w.Scale, Seed: w.Seed})
	n := w.Frames
	if n <= 0 {
		n = src.FrameCount(5)
	}
	frames := make([]*frame.Frame, n)
	for i := range frames {
		frames[i] = src.Frame(i)
	}
	return frames, info, nil
}

// Mezzanine returns (building and caching on first use) the pristine
// bitstream for a workload.
func Mezzanine(w Workload) ([]byte, error) {
	w, err := w.normalized()
	if err != nil {
		return nil, err
	}
	mezzCache.Lock()
	if mezzCache.streams == nil {
		mezzCache.streams = make(map[Workload][]byte)
	}
	if s, ok := mezzCache.streams[w]; ok {
		mezzCache.Unlock()
		return s, nil
	}
	mezzCache.Unlock()

	frames, info, err := sourceFrames(w)
	if err != nil {
		return nil, err
	}
	enc, err := codec.NewEncoder(frames[0].Width, frames[0].Height, info.FPS, mezzanineOptions(), nil)
	if err != nil {
		return nil, err
	}
	stream, _, err := enc.EncodeAll(frames)
	if err != nil {
		return nil, fmt.Errorf("core: mezzanine encode of %s: %w", w.Video, err)
	}
	mezzCache.Lock()
	mezzCache.streams[w] = stream
	mezzCache.Unlock()
	return stream, nil
}

// Run simulates one transcoding job end to end: decode the mezzanine (unless
// skipped), re-encode with the job's options, all under the configured
// microarchitecture. Returns the profile and codec statistics.
func Run(job Job) (*Result, error) {
	nw, err := job.Workload.normalized()
	if err != nil {
		return nil, err
	}
	job.Workload = nw
	img := job.Image
	if img == nil {
		img = trace.NewImage(nil)
	}
	machine := uarch.NewMachine(job.Config, img)

	var input []*frame.Frame
	info, err := vbench.ByName(job.Workload.Video)
	if err != nil {
		return nil, err
	}
	if job.SkipDecode {
		input, _, err = sourceFrames(job.Workload)
		if err != nil {
			return nil, err
		}
	} else {
		stream, err := Mezzanine(job.Workload)
		if err != nil {
			return nil, err
		}
		dec := codec.NewDecoder(codec.DecoderOptions{
			TraceSampleLog2: job.Options.TraceSampleLog2,
			Tune:            job.Options.Tune,
		}, machine)
		input, _, err = dec.Decode(stream)
		if err != nil {
			return nil, fmt.Errorf("core: mezzanine decode of %s: %w", job.Workload.Video, err)
		}
	}

	enc, err := codec.NewEncoder(input[0].Width, input[0].Height, info.FPS, job.Options, machine)
	if err != nil {
		return nil, err
	}
	_, stats, err := enc.EncodeAll(input)
	if err != nil {
		return nil, fmt.Errorf("core: encode of %s: %w", job.Workload.Video, err)
	}
	rep := perf.FromResult(machine.Result(), enc.SampleFactor())
	return &Result{Report: rep, Stats: stats}, nil
}

// --- sweeps ---------------------------------------------------------------------

// Point is one sweep sample: the parameter coordinates plus profile and
// codec outcomes.
type Point struct {
	Video  string
	CRF    int
	Refs   int
	Preset codec.Preset

	Report *perf.Report
	Stats  *codec.Stats
	Err    error
}

// runParallel evaluates jobs across all CPUs, preserving order.
func runParallel(n int, build func(i int) (Job, Point)) []Point {
	points := make([]Point, n)
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		jobs[i], points[i] = build(i)
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := Run(jobs[i])
			if err != nil {
				points[i].Err = err
				return
			}
			points[i].Report = res.Report
			points[i].Stats = res.Stats
		}(i)
	}
	wg.Wait()
	return points
}

// SweepCRFRefs profiles every (crf, refs) combination on one video — the
// §III-C1 experiment behind Figures 3, 4 and 5.
func SweepCRFRefs(w Workload, base codec.Options, cfg uarch.Config, crfs, refs []int) []Point {
	// Warm the mezzanine before fanning out.
	if _, err := Mezzanine(w); err != nil {
		return []Point{{Video: w.Video, Err: err}}
	}
	n := len(crfs) * len(refs)
	return runParallel(n, func(i int) (Job, Point) {
		crf := crfs[i/len(refs)]
		rf := refs[i%len(refs)]
		opt := base
		opt.RC = codec.RCCRF
		opt.CRF = crf
		opt.Refs = rf
		return Job{Workload: w, Options: opt, Config: cfg},
			Point{Video: w.Video, CRF: crf, Refs: rf}
	})
}

// SweepPresets profiles all presets at fixed crf/refs on one video — the
// §III-C2 experiment behind Figure 6. Following the paper, crf and refs are
// pinned to the defaults (23/3) regardless of the preset's own values.
func SweepPresets(w Workload, cfg uarch.Config, presets []codec.Preset, crf, refs int) []Point {
	if _, err := Mezzanine(w); err != nil {
		return []Point{{Video: w.Video, Err: err}}
	}
	return runParallel(len(presets), func(i int) (Job, Point) {
		opt := codec.Options{RC: codec.RCCRF, CRF: crf, QP: 26, KeyintMax: 250}
		if err := codec.ApplyPreset(&opt, presets[i]); err != nil {
			return Job{}, Point{Err: err}
		}
		opt.Refs = refs
		opt.TraceSampleLog2 = 0
		return Job{Workload: w, Options: opt, Config: cfg},
			Point{Video: w.Video, CRF: crf, Refs: refs, Preset: presets[i]}
	})
}

// SweepVideos profiles a fixed configuration (medium, crf 23, refs 3 unless
// overridden) across videos — the §III-C3 experiment behind Figure 7.
func SweepVideos(videos []string, frames, scale int, base codec.Options, cfg uarch.Config) []Point {
	for _, v := range videos {
		w := Workload{Video: v, Frames: frames, Scale: scale}
		if _, err := Mezzanine(w); err != nil {
			return []Point{{Video: v, Err: err}}
		}
	}
	return runParallel(len(videos), func(i int) (Job, Point) {
		w := Workload{Video: videos[i], Frames: frames, Scale: scale}
		return Job{Workload: w, Options: base, Config: cfg},
			Point{Video: videos[i], CRF: base.CRF, Refs: base.Refs}
	})
}
