package core

import (
	"context"
	"sync"

	"repro/internal/obs"
)

// flightCache is a keyed build-once cache with per-key singleflight: the
// first caller of a key starts build exactly once while concurrent callers
// of the same key wait on that build instead of duplicating it (the cache
// stampede two sweeps warming the same mezzanine used to hit). Distinct
// keys build in parallel — only the map access is serialized.
//
// Build results, including errors, are cached: every build here is a pure
// function of its key (deterministic synthesis, encode or decode), so a
// failure would fail identically on retry.
//
// Each cache self-reports into obs.Default under its name label:
// core_cache_hits / core_cache_misses (one per get), core_cache_bytes
// (successful builds, via size), and core_cache_detached_builds — builds
// whose triggering caller was canceled before the build landed, i.e. work
// the detach policy saved from being wasted.
type flightCache[K comparable, V any] struct {
	// name labels this cache's metrics; empty disables self-reporting.
	name string
	// size measures a built value's footprint for core_cache_bytes;
	// nil skips the byte accounting.
	size func(V) int64

	mu sync.Mutex
	m  map[K]*flightEntry[V]
}

type flightEntry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// get returns the cached value for k, building it with build on first use.
//
// The build runs in its own goroutine, detached from ctx: a canceled
// waiter — including the caller that triggered the build — returns
// ctx.Err() immediately while the build runs to completion and lands in
// the cache. Cancellation therefore can never poison an entry: the next
// caller of the key gets the real value, not a stale context error. Builds
// are bounded CPU work (one encode or decode), so letting an abandoned
// build finish costs at most one job's worth of compute.
func (c *flightCache[K, V]) get(ctx context.Context, k K, build func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*flightEntry[V])
	}
	e := c.m[k]
	builder := e == nil
	if builder {
		e = &flightEntry[V]{done: make(chan struct{})}
		c.m[k] = e
		ent := e
		go func() {
			defer close(ent.done)
			ent.val, ent.err = build()
			if c.name != "" && ent.err == nil && c.size != nil {
				obs.Default().Counter("core_cache_bytes", "cache", c.name).Add(c.size(ent.val))
			}
		}()
	}
	c.mu.Unlock()
	if c.name != "" {
		if builder {
			obs.Default().Counter("core_cache_misses", "cache", c.name).Inc()
		} else {
			obs.Default().Counter("core_cache_hits", "cache", c.name).Inc()
		}
	}
	select {
	case <-e.done:
		return e.val, e.err
	case <-ctx.Done():
		if builder && c.name != "" {
			obs.Default().Counter("core_cache_detached_builds", "cache", c.name).Inc()
		}
		var zero V
		return zero, ctx.Err()
	}
}
