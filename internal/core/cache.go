package core

import "sync"

// flightCache is a keyed build-once cache with per-key singleflight: the
// first caller of a key runs build exactly once while concurrent callers of
// the same key block on that build instead of duplicating it (the cache
// stampede two sweeps warming the same mezzanine used to hit). Distinct
// keys build in parallel — only the map access is serialized.
//
// Build results, including errors, are cached: every build here is a pure
// function of its key (deterministic synthesis, encode or decode), so a
// failure would fail identically on retry.
type flightCache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*flightEntry[V]
}

type flightEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// get returns the cached value for k, building it with build on first use.
func (c *flightCache[K, V]) get(k K, build func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*flightEntry[V])
	}
	e := c.m[k]
	if e == nil {
		e = new(flightEntry[V])
		c.m[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = build() })
	return e.val, e.err
}
