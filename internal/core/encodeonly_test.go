package core

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/codec"
	"repro/internal/uarch"
)

// The accelerator execution path (EncodeOnly, no uarch sink) must produce
// the byte-identical bitstream of the simulated software path for any
// options both backends accept — that is what keeps segment stitching safe
// on a mixed fleet.
func TestEncodeOnlyMatchesRun(t *testing.T) {
	w := Workload{Video: "bbb", Frames: 6, Scale: 16}
	opt := codec.Defaults()
	if err := codec.ApplyPreset(&opt, codec.PresetVeryfast); err != nil {
		t.Fatal(err)
	}
	opt.CRF = 28
	opt.Refs = 2

	seg := codec.Segment{Start: 2, End: 5}
	soft, err := Run(context.Background(), Job{
		Workload: w, Options: opt, Config: uarch.Baseline(),
		Segment: seg, KeepStream: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(soft.Stream) == 0 {
		t.Fatal("KeepStream produced no bitstream")
	}
	accel, err := EncodeOnly(context.Background(), Job{
		Workload: w, Options: opt, Segment: seg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(soft.Stream, accel.Stream) {
		t.Fatalf("bitstreams differ: software %d bytes, encode-only %d bytes",
			len(soft.Stream), len(accel.Stream))
	}
	if accel.Stats == nil || accel.Stats.Frames == nil || len(accel.Stats.Frames) != 3 {
		t.Fatalf("encode-only stats: %+v", accel.Stats)
	}
	if accel.Report != nil {
		t.Fatal("encode-only run should carry no uarch profile")
	}
}

func TestProxyDims(t *testing.T) {
	wpx, hpx, frames, err := ProxyDims(Workload{Video: "bbb", Frames: 4, Scale: 16})
	if err != nil {
		t.Fatal(err)
	}
	// 1920/16 = 120 → 128 after macroblock rounding; 1080/16 = 67 → 80.
	if wpx != 128 || hpx != 80 || frames != 4 {
		t.Fatalf("ProxyDims = %d×%d ×%d frames", wpx, hpx, frames)
	}
	if _, _, _, err := ProxyDims(Workload{Video: "no-such-video"}); err == nil {
		t.Fatal("unknown video accepted")
	}
}
