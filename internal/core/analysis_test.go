package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/codec"
	"repro/internal/uarch"
)

// TestAnalysisRunEquivalence is the fidelity guarantee for the shared
// analysis layer at the experiment level: a job that reuses the memoized
// lookahead artifact produces a profile and stats bit-for-bit identical to a
// job that runs its own lookahead. Covered across the option families that
// change what the lookahead does: the defaults (AQ + b-adapt 1), b-adapt 2
// with trace sampling, and ultrafast.
func TestAnalysisRunEquivalence(t *testing.T) {
	w := tinyWorkload("cricket")
	badapt2 := codec.Defaults()
	badapt2.BAdapt = 2
	badapt2.TraceSampleLog2 = 2
	ultra := codec.Options{RC: codec.RCCRF, CRF: 30, QP: 26, KeyintMax: 250}
	if err := codec.ApplyPreset(&ultra, codec.PresetUltrafast); err != nil {
		t.Fatal(err)
	}
	for name, opt := range map[string]codec.Options{
		"medium": codec.Defaults(), "badapt2_sampled": badapt2, "ultrafast": ultra,
	} {
		t.Run(name, func(t *testing.T) {
			job := Job{Workload: w, Options: opt, Config: uarch.Baseline()}
			shared, err := Run(context.Background(), job)
			if err != nil {
				t.Fatal(err)
			}
			job.NoAnalysisCache = true
			live, err := Run(context.Background(), job)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(shared.Report, live.Report) {
				t.Fatalf("analysis-reuse report differs from live-lookahead report:\nshared: %+v\nlive:   %+v",
					shared.Report, live.Report)
			}
			if !reflect.DeepEqual(shared.Stats, live.Stats) {
				t.Fatal("analysis-reuse codec stats differ from live-lookahead stats")
			}
		})
	}
}

// TestAnalysisSweepDeterminism runs the crf x refs sweep with and without
// the shared artifact and requires every point's report and stats to match —
// the sweep-level form of the determinism.sh CSV gate.
func TestAnalysisSweepDeterminism(t *testing.T) {
	w := tinyWorkload("desktop")
	base := codec.Defaults()
	crfs, refs := []int{23, 41}, []int{1, 4}
	shared := SweepCRFRefsWith(context.Background(), w, base, uarch.Baseline(), crfs, refs, SweepOpts{})
	live := SweepCRFRefsWith(context.Background(), w, base, uarch.Baseline(), crfs, refs,
		SweepOpts{NoAnalysisCache: true})
	if err := shared.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if err := live.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if len(shared) != len(live) {
		t.Fatalf("point count differs: %d vs %d", len(shared), len(live))
	}
	for i := range shared {
		if !reflect.DeepEqual(shared[i], live[i]) {
			t.Errorf("point %d (crf %d refs %d) differs between shared-analysis and live sweeps",
				i, shared[i].CRF, shared[i].Refs)
		}
	}
}

// TestAnalysisTwoPassBypass pins the guard: two-pass ABR jobs run their own
// lookahead (the artifact cannot reproduce the interleaved first pass) and
// still succeed with the analysis cache nominally enabled.
func TestAnalysisTwoPassBypass(t *testing.T) {
	opt := codec.Defaults()
	opt.RC = codec.RCABR2
	opt.BitrateKbps = 400
	res, err := Run(context.Background(), Job{Workload: tinyWorkload("cricket"), Options: opt, Config: uarch.Baseline()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Insts <= 0 {
		t.Fatalf("degenerate two-pass report: %+v", res.Report)
	}
}

// TestSharedAnalysisCached verifies singleflight identity: two option sets
// with equal analysis params share one artifact, and a param-changing option
// gets its own.
func TestSharedAnalysisCached(t *testing.T) {
	w := tinyWorkload("cat")
	dopt := decoderOptions(codec.Defaults())
	a1, err := sharedAnalysis(context.Background(), w, dopt, codec.Defaults(), codec.Segment{})
	if err != nil {
		t.Fatal(err)
	}
	crf41 := codec.Defaults()
	crf41.RC = codec.RCCRF
	crf41.CRF = 41
	crf41.Refs = 4
	a2, err := sharedAnalysis(context.Background(), w, dopt, crf41, codec.Segment{})
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("crf/refs-only option change did not share the analysis artifact")
	}
	sampled := codec.Defaults()
	sampled.TraceSampleLog2 = 2
	a3, err := sharedAnalysis(context.Background(), w, decoderOptions(sampled), sampled, codec.Segment{})
	if err != nil {
		t.Fatal(err)
	}
	if a3 == a1 {
		t.Fatal("distinct analysis params share a cache entry")
	}
}
