package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/codec"
	"repro/internal/opt/autofdo"
	"repro/internal/opt/graphite"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/vbench"
)

func TestProbeOpt(t *testing.T) {
	for _, video := range []string{"desktop", "cricket", "hall"} {
		w := Workload{Video: video, Frames: 16}
		opt := codec.Defaults()

		base, err := Run(context.Background(), Job{Workload: w, Options: opt, Config: uarch.Baseline()})
		if err != nil {
			t.Fatal(err)
		}

		// AutoFDO: train on the same workload, apply layout.
		nw, _ := w.normalized()
		frames, info, _ := sourceFrames(nw)
		col := autofdo.NewCollector()
		enc, _ := codec.NewEncoder(frames[0].Width, frames[0].Height, info.FPS, opt, col)
		enc.EncodeAll(frames)
		img := col.Profile().Apply(trace.NewImage(nil), autofdo.Options{})
		fdo, err := Run(context.Background(), Job{Workload: w, Options: opt, Config: uarch.Baseline(), Image: img})
		if err != nil {
			t.Fatal(err)
		}

		gopt := opt
		gopt.Tune = graphite.All().Tuning()
		gr, err := Run(context.Background(), Job{Workload: w, Options: gopt, Config: uarch.Baseline()})
		if err != nil {
			t.Fatal(err)
		}

		su := func(a, b float64) float64 { return (a/b - 1) * 100 }
		fmt.Printf("%-10s base=%.4fs fdo=%+.2f%% graphite=%+.2f%% | fe %.1f->%.1f | l1d %.2f->%.2f | br %.2f->%.2f\n",
			video, base.Report.Seconds, su(base.Report.Seconds, fdo.Report.Seconds), su(base.Report.Seconds, gr.Report.Seconds),
			base.Report.Topdown.FrontEnd, fdo.Report.Topdown.FrontEnd,
			base.Report.L1DMPKI, gr.Report.L1DMPKI,
			base.Report.BranchMPKI, fdo.Report.BranchMPKI)
	}
}

func TestProbeSched(t *testing.T) {
	_ = vbench.Catalog
}
