package core

import (
	"context"
	"testing"

	"repro/internal/codec"
	"repro/internal/uarch"
)

// tinyWorkload keeps integration tests fast on one CPU.
func tinyWorkload(video string) Workload {
	return Workload{Video: video, Frames: 10, Scale: 8}
}

func runPoint(t *testing.T, w Workload, crf, refs int, cfg uarch.Config) *Result {
	t.Helper()
	opt := codec.Defaults()
	opt.CRF = crf
	opt.Refs = refs
	res, err := Run(context.Background(), Job{Workload: w, Options: opt, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunSmoke(t *testing.T) {
	res := runPoint(t, tinyWorkload("cricket"), 23, 3, uarch.Baseline())
	r := res.Report
	if r.Seconds <= 0 || r.Insts <= 0 {
		t.Fatalf("degenerate report: %+v", r)
	}
	sum := r.Topdown.Retiring + r.Topdown.FrontEnd + r.Topdown.BadSpec + r.Topdown.BackEnd
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("top-down sums to %f", sum)
	}
	if res.Stats.TotalBits <= 0 || res.Stats.AveragePSNR < 20 {
		t.Fatalf("codec stats implausible: %+v", res.Stats)
	}
}

func TestWorkloadNormalization(t *testing.T) {
	w, err := Workload{Video: "presentation"}.normalized()
	if err != nil {
		t.Fatal(err)
	}
	if w.Frames != 16 {
		t.Fatalf("default frames %d", w.Frames)
	}
	// 1080 lines / 256 target -> scale 4.
	if w.Scale != 4 {
		t.Fatalf("auto scale %d", w.Scale)
	}
	if _, err := (Workload{Video: "nope"}).normalized(); err == nil {
		t.Fatal("unknown video accepted")
	}
}

func TestMezzanineCached(t *testing.T) {
	w := tinyWorkload("cat")
	a, err := Mezzanine(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mezzanine(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("mezzanine not cached")
	}
	if len(a) == 0 {
		t.Fatal("empty mezzanine")
	}
}

func TestRunErrorsOnUnknownVideo(t *testing.T) {
	_, err := Run(context.Background(), Job{Workload: Workload{Video: "void"}, Options: codec.Defaults(), Config: uarch.Baseline()})
	if err == nil {
		t.Fatal("unknown video accepted")
	}
}

// --- paper trend assertions ------------------------------------------------

// TestTrendTimeFallsWithCRF asserts Figure 2/3's speed edge: raising crf
// speeds up transcoding.
func TestTrendTimeFallsWithCRF(t *testing.T) {
	w := tinyWorkload("cricket")
	lo := runPoint(t, w, 10, 2, uarch.Baseline())
	hi := runPoint(t, w, 45, 2, uarch.Baseline())
	if hi.Report.Seconds >= lo.Report.Seconds {
		t.Fatalf("crf 45 (%.4fs) not faster than crf 10 (%.4fs)",
			hi.Report.Seconds, lo.Report.Seconds)
	}
}

// TestTrendTimeRisesWithRefs asserts Figure 4B: more references slow the
// transcode.
func TestTrendTimeRisesWithRefs(t *testing.T) {
	w := tinyWorkload("cricket")
	one := runPoint(t, w, 20, 1, uarch.Baseline())
	eight := runPoint(t, w, 20, 8, uarch.Baseline())
	if eight.Report.Seconds <= one.Report.Seconds {
		t.Fatalf("refs 8 (%.4fs) not slower than refs 1 (%.4fs)",
			eight.Report.Seconds, one.Report.Seconds)
	}
}

// TestTrendBranchMPKIFallsWithCRF asserts Figure 5a's direction.
func TestTrendBranchMPKIFallsWithCRF(t *testing.T) {
	w := tinyWorkload("cricket")
	lo := runPoint(t, w, 8, 2, uarch.Baseline())
	hi := runPoint(t, w, 35, 2, uarch.Baseline())
	if hi.Report.BranchMPKI >= lo.Report.BranchMPKI {
		t.Fatalf("branch MPKI rose with crf: %.2f -> %.2f",
			lo.Report.BranchMPKI, hi.Report.BranchMPKI)
	}
}

// TestTrendBadSpecFallsWithCRF asserts Figure 3c's direction.
func TestTrendBadSpecFallsWithCRF(t *testing.T) {
	w := tinyWorkload("cricket")
	lo := runPoint(t, w, 8, 2, uarch.Baseline())
	hi := runPoint(t, w, 35, 2, uarch.Baseline())
	if hi.Report.Topdown.BadSpec >= lo.Report.Topdown.BadSpec {
		t.Fatalf("bad speculation rose with crf: %.1f -> %.1f",
			lo.Report.Topdown.BadSpec, hi.Report.Topdown.BadSpec)
	}
}

// TestTrendSBStallsFallWithRefs asserts Figure 5h's noted exception: store
// buffer stalls drop as refs improve compression.
func TestTrendSBStallsFallWithRefs(t *testing.T) {
	w := tinyWorkload("cricket")
	one := runPoint(t, w, 23, 1, uarch.Baseline())
	eight := runPoint(t, w, 23, 8, uarch.Baseline())
	if eight.Report.StallSBPKI >= one.Report.StallSBPKI {
		t.Fatalf("SB stalls rose with refs: %.2f -> %.2f",
			one.Report.StallSBPKI, eight.Report.StallSBPKI)
	}
}

// TestTrendEntropyRaisesBranchMPKI asserts Figure 7b: complex videos
// mispredict more.
func TestTrendEntropyRaisesBranchMPKI(t *testing.T) {
	low := runPoint(t, tinyWorkload("desktop"), 23, 3, uarch.Baseline()) // entropy 0.2
	high := runPoint(t, tinyWorkload("hall"), 23, 3, uarch.Baseline())   // entropy 7.7
	if high.Report.BranchMPKI <= low.Report.BranchMPKI {
		t.Fatalf("entropy 7.7 branch MPKI %.2f not above entropy 0.2's %.2f",
			high.Report.BranchMPKI, low.Report.BranchMPKI)
	}
	if high.Report.Topdown.BadSpec <= low.Report.Topdown.BadSpec {
		t.Fatalf("entropy 7.7 bad-spec %.1f%% not above entropy 0.2's %.1f%%",
			high.Report.Topdown.BadSpec, low.Report.Topdown.BadSpec)
	}
}

// TestTrendSlowerPresetsLowerDataMPKI asserts Figure 6c: slow presets do
// more compute per byte, diluting data-cache misses.
func TestTrendSlowerPresetsLowerDataMPKI(t *testing.T) {
	w := tinyWorkload("cricket")
	pts := SweepPresets(context.Background(), w, uarch.Baseline(), []codec.Preset{codec.PresetVeryfast, codec.PresetSlower}, 23, 3)
	for _, p := range pts {
		if p.Err != nil {
			t.Fatal(p.Err)
		}
	}
	fast, slow := pts[0].Report, pts[1].Report
	if slow.L1DMPKI >= fast.L1DMPKI {
		t.Fatalf("slower preset L1d MPKI %.2f not below veryfast's %.2f",
			slow.L1DMPKI, fast.L1DMPKI)
	}
	if slow.Seconds <= fast.Seconds {
		t.Fatalf("slower preset (%.4fs) not slower than veryfast (%.4fs)",
			slow.Seconds, fast.Seconds)
	}
}

// TestSweepShapes runs a minimal grid and checks structural integrity.
func TestSweepCRFRefsGrid(t *testing.T) {
	w := tinyWorkload("cat")
	pts := SweepCRFRefs(context.Background(), w, codec.Defaults(), uarch.Baseline(), []int{15, 35}, []int{1, 4})
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.Err != nil {
			t.Fatal(p.Err)
		}
		if p.Report == nil || p.Stats == nil {
			t.Fatal("missing results")
		}
	}
	// Row-major order: crf varies slowest.
	if pts[0].CRF != 15 || pts[1].CRF != 15 || pts[2].CRF != 35 {
		t.Fatalf("grid order broken: %+v", pts)
	}
	if pts[0].Refs != 1 || pts[1].Refs != 4 {
		t.Fatal("refs order broken")
	}
}

func TestSweepVideosShape(t *testing.T) {
	pts := SweepVideos(context.Background(), []string{"desktop", "holi"}, 8, 8, codec.Defaults(), uarch.Baseline())
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.Err != nil {
			t.Fatal(p.Err)
		}
	}
	if pts[0].Video != "desktop" || pts[1].Video != "holi" {
		t.Fatal("video order broken")
	}
}

// TestConfigOrdering sanity-checks that every optimized configuration beats
// the baseline on the workload class it targets (the premise of Figure 9).
func TestOptimizedConfigsBeatBaseline(t *testing.T) {
	w := tinyWorkload("holi")
	base := runPoint(t, w, 15, 2, uarch.Baseline())
	for _, cfg := range uarch.TableIV()[1:] {
		opt := runPoint(t, w, 15, 2, cfg)
		if opt.Report.Seconds > base.Report.Seconds*1.02 {
			t.Errorf("%s (%.4fs) slower than baseline (%.4fs)",
				cfg.Name, opt.Report.Seconds, base.Report.Seconds)
		}
	}
}
