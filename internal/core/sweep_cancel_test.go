package core

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/uarch"
)

// TestSweepCancel is the execution-layer contract at the sweep level:
// canceling the context mid-sweep returns promptly, finished points keep
// their results, and points that never started carry ctx.Err(). It is also
// the fast -race gate in scripts/ci.sh.
func TestSweepCancel(t *testing.T) {
	w := tinyWorkload("cricket")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Cancel from inside the progress callback after the first completed
	// point, so the cut lands mid-sweep deterministically.
	var calls int32
	opts := SweepOpts{Progress: func(done, total int) {
		if atomic.AddInt32(&calls, 1) == 1 {
			cancel()
		}
	}}
	start := time.Now()
	pts := SweepCRFRefsWith(ctx, w, codec.Defaults(), uarch.Baseline(),
		[]int{10, 20, 30, 40}, []int{1, 2, 3, 4}, opts)
	elapsed := time.Since(start)

	if len(pts) != 16 {
		t.Fatalf("%d points", len(pts))
	}
	var finished, canceled int
	for _, p := range pts {
		switch {
		case p.Err == nil && p.Report != nil:
			finished++
		case errors.Is(p.Err, context.Canceled):
			canceled++
		case p.Err != nil:
			t.Fatalf("unexpected point error: %v", p.Err)
		default:
			t.Fatal("point with neither result nor error")
		}
	}
	if finished == 0 {
		t.Fatal("no point finished before cancellation")
	}
	if canceled == 0 {
		t.Fatal("no point carries ctx.Err() after cancellation")
	}
	if err := Points(pts).FirstErr(); !errors.Is(err, context.Canceled) {
		t.Fatalf("FirstErr = %v", err)
	}
	// Generous bound: "promptly" means within one in-flight tiny job per
	// worker, not the 12+ remaining grid points.
	if elapsed > 2*time.Minute {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestSweepPreCanceled checks that a sweep under an already-canceled
// context runs nothing and marks every point.
func TestSweepPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pts := SweepCRFRefs(ctx, tinyWorkload("cricket"), codec.Defaults(), uarch.Baseline(),
		[]int{20, 30}, []int{1, 2})
	if err := pts.FirstErr(); !errors.Is(err, context.Canceled) {
		t.Fatalf("FirstErr = %v", err)
	}
	for _, p := range pts {
		if p.Report != nil {
			t.Fatal("point ran under pre-canceled context")
		}
	}
}

// TestSweepPresetsBuildError pins the build-error fix: a preset that fails
// to apply must fail only its own point with the original error — the old
// runner executed the zero Job and clobbered the error with a bogus
// unknown-video one.
func TestSweepPresetsBuildError(t *testing.T) {
	w := tinyWorkload("cat")
	pts := SweepPresets(context.Background(), w, uarch.Baseline(),
		[]codec.Preset{codec.PresetUltrafast, "nosuchpreset"}, 23, 3)
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].Err != nil {
		t.Fatalf("valid preset failed: %v", pts[0].Err)
	}
	if pts[0].Report == nil {
		t.Fatal("valid preset missing report")
	}
	bad := pts[1]
	if bad.Err == nil {
		t.Fatal("invalid preset did not fail")
	}
	if bad.Report != nil {
		t.Fatal("failed build still produced a report: the zero Job ran")
	}
	if !strings.Contains(bad.Err.Error(), "nosuchpreset") {
		t.Fatalf("build error %q lost the original cause", bad.Err)
	}
	// Coordinates survive on the failed point so CSVs and logs can name it.
	if bad.Preset != "nosuchpreset" || bad.Video != w.Video {
		t.Fatalf("failed point lost its coordinates: %+v", bad)
	}
	if failed := pts.Failed(); len(failed) != 1 || failed[0].Preset != "nosuchpreset" {
		t.Fatalf("Failed() = %+v", failed)
	}
}

// TestSweepProgressCounts checks the progress contract end to end through
// core.Sweep: one serialized call per point, ending at (n, n).
func TestSweepProgressCounts(t *testing.T) {
	var calls []int
	opts := SweepOpts{Progress: func(done, total int) {
		if total != 4 {
			t.Errorf("total = %d", total)
		}
		calls = append(calls, done)
	}}
	pts := SweepCRFRefsWith(context.Background(), tinyWorkload("cat"), codec.Defaults(),
		uarch.Baseline(), []int{20, 35}, []int{1, 2}, opts)
	if err := pts.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 4 {
		t.Fatalf("%d progress calls for 4 points", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress call %d reported done=%d", i, d)
		}
	}
}

// TestFlightCacheCancelDetach checks the cancellation contract of the
// singleflight layer: a canceled waiter detaches with ctx.Err() while the
// build keeps running and lands in the cache, so later callers get the
// real value — the cache is never poisoned by a canceled context.
func TestFlightCacheCancelDetach(t *testing.T) {
	var c flightCache[string, int]
	building := make(chan struct{})
	release := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-building
		cancel()
	}()
	_, err := c.get(ctx, "k", func() (int, error) {
		close(building)
		<-release
		return 42, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got %v", err)
	}

	close(release) // let the detached build finish
	v, err := c.get(context.Background(), "k", func() (int, error) {
		t.Error("build ran twice")
		return 0, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("post-cancel get = %d, %v; cache was poisoned", v, err)
	}
}
