// Package autofdo models AutoFDO, the feedback-directed optimization tool
// the paper applies to FFmpeg (§III-D1). The real tool collects a sampled
// execution profile with perf, then recompiles: hot functions are split
// from their cold tails and packed together, and biased branches are
// reordered so the common path falls through. Both effects are reproduced
// here against the synthetic code image: Collector gathers the profile
// from a training run (it is a trace.Sink, like the simulator), and
// Profile.Apply produces the re-laid-out image whose smaller hot footprint
// and canonicalized branches the simulator then measures.
package autofdo

import (
	"sort"

	"repro/internal/trace"
)

// siteStats accumulates outcomes of one static branch site.
type siteStats struct {
	taken uint64
	total uint64
}

// Profile is the execution profile of a training run.
type Profile struct {
	fnWeight [trace.NumFuncs]float64
	branches map[uint32]*siteStats
}

// Collector gathers a Profile. It implements trace.Sink so a training
// encode can run against it exactly as it runs against the simulator.
type Collector struct {
	p Profile
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{p: Profile{branches: make(map[uint32]*siteStats)}}
}

// Profile returns the collected profile.
func (c *Collector) Profile() *Profile { return &c.p }

var _ trace.Sink = (*Collector)(nil)

func key(fn trace.FuncID, site trace.BranchID) uint32 {
	return uint32(fn)<<16 | uint32(site)
}

// Ops accumulates instruction weight.
func (c *Collector) Ops(fn trace.FuncID, n int) { c.p.fnWeight[fn] += float64(n) }

// Load adds memory-instruction weight.
func (c *Collector) Load(fn trace.FuncID, _ uint64, bytes int) {
	c.p.fnWeight[fn] += float64(bytes/64 + 1)
}

// Store adds memory-instruction weight.
func (c *Collector) Store(fn trace.FuncID, _ uint64, bytes int) {
	c.p.fnWeight[fn] += float64(bytes/64 + 1)
}

// Load2D adds block-access weight.
func (c *Collector) Load2D(fn trace.FuncID, _ uint64, w, h, _ int) {
	c.p.fnWeight[fn] += float64(w*h/64 + h)
}

// Store2D adds block-access weight.
func (c *Collector) Store2D(fn trace.FuncID, _ uint64, w, h, _ int) {
	c.p.fnWeight[fn] += float64(w*h/64 + h)
}

// Branch records a conditional outcome.
func (c *Collector) Branch(fn trace.FuncID, site trace.BranchID, taken bool) {
	c.p.fnWeight[fn]++
	s := c.p.branches[key(fn, site)]
	if s == nil {
		s = &siteStats{}
		c.p.branches[key(fn, site)] = s
	}
	s.total++
	if taken {
		s.taken++
	}
}

// Loop records loop iterations (all weight, strongly biased taken).
func (c *Collector) Loop(fn trace.FuncID, site trace.BranchID, iters int) {
	c.p.fnWeight[fn] += float64(iters)
	s := c.p.branches[key(fn, site)]
	if s == nil {
		s = &siteStats{}
		c.p.branches[key(fn, site)] = s
	}
	s.total += uint64(iters)
	s.taken += uint64(iters - 1)
}

// Call records an invocation.
func (c *Collector) Call(fn trace.FuncID) { c.p.fnWeight[fn] += 2 }

// Options tune the optimizer; zero values give AutoFDO defaults.
type Options struct {
	// HotCoverage is the cumulative weight fraction packed hot (default
	// 0.99, AutoFDO's default working-set threshold).
	HotCoverage float64
	// BiasThreshold is the minimum outcome bias for direction
	// canonicalization (default 0.85).
	BiasThreshold float64
	// MinSamples is the minimum site sample count considered (default 64).
	MinSamples uint64
}

func (o *Options) defaults() {
	if o.HotCoverage == 0 {
		o.HotCoverage = 0.99
	}
	if o.BiasThreshold == 0 {
		o.BiasThreshold = 0.85
	}
	if o.MinSamples == 0 {
		o.MinSamples = 64
	}
}

// Apply re-lays-out the code image according to the profile: hot functions
// are ordered by weight and hot/cold-split (packed), and strongly
// taken-biased branch sites are canonicalized to fall through. The input
// image is not modified.
func (p *Profile) Apply(img *trace.Image, opts Options) *trace.Image {
	opts.defaults()

	type fw struct {
		fn trace.FuncID
		w  float64
	}
	var fns []fw
	var total float64
	for fn := trace.FuncID(1); fn < trace.NumFuncs; fn++ {
		fns = append(fns, fw{fn, p.fnWeight[fn]})
		total += p.fnWeight[fn]
	}
	sort.SliceStable(fns, func(i, j int) bool { return fns[i].w > fns[j].w })

	order := make([]trace.FuncID, 0, len(fns))
	packed := make(map[trace.FuncID]bool)
	var cum float64
	for _, f := range fns {
		order = append(order, f.fn)
		if f.w > 0 && cum < opts.HotCoverage*total {
			packed[f.fn] = true
		}
		cum += f.w
	}

	out := img.Relayout(order, packed)
	for k, s := range p.branches {
		if s.total < opts.MinSamples {
			continue
		}
		bias := float64(s.taken) / float64(s.total)
		if bias >= opts.BiasThreshold {
			out.SetCanonical(trace.FuncID(k>>16), trace.BranchID(k&0xFFFF))
		}
	}
	return out
}
