package autofdo

import (
	"testing"

	"repro/internal/trace"
)

func trainedCollector() *Collector {
	c := NewCollector()
	// SAD dominates, CAVLC second, deblock cold-ish.
	for i := 0; i < 1000; i++ {
		c.Ops(trace.FnSAD, 500)
		c.Load2D(trace.FnSAD, 0, 16, 16, 512)
	}
	for i := 0; i < 300; i++ {
		c.Ops(trace.FnCAVLC, 200)
		c.Branch(trace.FnCAVLC, 4, i%10 != 0) // 90% taken
		c.Branch(trace.FnCAVLC, 5, i%2 == 0)  // unbiased
	}
	c.Ops(trace.FnDeblock, 50)
	for i := 0; i < 10; i++ {
		c.Loop(trace.FnSAD, 7, 16) // backedge taken 150/160: biased
	}
	c.Call(trace.FnSAD)
	return c
}

func TestCollectorAccumulates(t *testing.T) {
	c := trainedCollector()
	p := c.Profile()
	if p.fnWeight[trace.FnSAD] <= p.fnWeight[trace.FnCAVLC] {
		t.Fatal("SAD should be hotter than CAVLC")
	}
	if p.fnWeight[trace.FnCAVLC] <= p.fnWeight[trace.FnDeblock] {
		t.Fatal("CAVLC should be hotter than deblock")
	}
	s := p.branches[key(trace.FnCAVLC, 4)]
	if s == nil || s.total != 300 || s.taken != 270 {
		t.Fatalf("branch stats %+v", s)
	}
}

func TestApplyOrdersHotFirstAndPacks(t *testing.T) {
	p := trainedCollector().Profile()
	base := trace.NewImage(nil)
	out := p.Apply(base, Options{})
	// SAD is the hottest function: placed first and packed.
	if out.Region(trace.FnSAD).Addr > out.Region(trace.FnCAVLC).Addr {
		t.Fatal("hottest function not first")
	}
	if !out.Region(trace.FnSAD).Packed {
		t.Fatal("hot function not packed")
	}
	// A function with zero samples is never packed.
	if out.Region(trace.FnMEESA).Packed {
		t.Fatal("cold function packed")
	}
	// The optimized image's hot prefix is denser than the original layout.
	if out.Size >= base.Size {
		t.Fatalf("optimized image %d not smaller than %d", out.Size, base.Size)
	}
	// Input image untouched.
	if base.Region(trace.FnSAD).Packed {
		t.Fatal("Apply mutated its input")
	}
}

func TestApplyCanonicalizesBiasedBranches(t *testing.T) {
	p := trainedCollector().Profile()
	out := p.Apply(trace.NewImage(nil), Options{})
	if !out.BranchCanonical(trace.FnCAVLC, 4) {
		t.Fatal("ninety-percent-taken branch not canonicalized")
	}
	if out.BranchCanonical(trace.FnCAVLC, 5) {
		t.Fatal("unbiased branch canonicalized")
	}
	// Loop backedges are heavily taken: canonicalized too.
	if !out.BranchCanonical(trace.FnSAD, 7) {
		t.Fatal("loop backedge not canonicalized")
	}
}

func TestMinSamplesGate(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 10; i++ { // below the 64-sample default
		c.Branch(trace.FnSAD, 1, true)
	}
	out := c.Profile().Apply(trace.NewImage(nil), Options{})
	if out.BranchCanonical(trace.FnSAD, 1) {
		t.Fatal("under-sampled branch must not be canonicalized")
	}
}

func TestOptionsOverrides(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 100; i++ {
		c.Branch(trace.FnSAD, 1, i%4 != 0) // 75% taken
	}
	// Default threshold 0.85: not canonicalized.
	if c.Profile().Apply(trace.NewImage(nil), Options{}).BranchCanonical(trace.FnSAD, 1) {
		t.Fatal("75% bias should not pass the 0.85 default")
	}
	// Lowered threshold: canonicalized.
	out := c.Profile().Apply(trace.NewImage(nil), Options{BiasThreshold: 0.7, MinSamples: 10})
	if !out.BranchCanonical(trace.FnSAD, 1) {
		t.Fatal("explicit threshold ignored")
	}
}
