// Package graphite models Graphite, GCC's polyhedral loop optimizer, as
// the paper applies it to FFmpeg (§III-D1): compilation with
// -floop-interchange -ftree-loop-distribution -floop-block. Each flag maps
// to a concrete restructuring of the codec's hot frame loops (see
// codec.Tuning); the transformations change the real iteration order and
// pass structure — and therefore the data-address stream the cache
// simulator measures — without changing any coded output, exactly the
// contract of a semantics-preserving loop optimization.
package graphite

import "repro/internal/codec"

// Flags mirror the GCC command line used in the paper.
type Flags struct {
	LoopBlock        bool // -floop-block
	LoopInterchange  bool // -floop-interchange
	LoopDistribution bool // -ftree-loop-distribution
}

// All returns the paper's full flag set.
func All() Flags {
	return Flags{LoopBlock: true, LoopInterchange: true, LoopDistribution: true}
}

// Tuning converts the flag set into the codec's loop-tuning switches:
//
//   - -floop-block fuses deblocking into the macroblock-row loop so
//     reconstructed pixels are filtered while still cache-resident;
//   - -floop-interchange iterates residual sub-blocks row-major;
//   - -ftree-loop-distribution splits the lookahead's variance pass out and
//     memoizes it for adaptive quantization.
func (f Flags) Tuning() codec.Tuning {
	return codec.Tuning{
		FuseDeblock:         f.LoopBlock,
		InterchangeResidual: f.LoopInterchange,
		DistributeLookahead: f.LoopDistribution,
	}
}
