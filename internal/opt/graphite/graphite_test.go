package graphite

import "testing"

func TestAllEnablesEverything(t *testing.T) {
	f := All()
	if !f.LoopBlock || !f.LoopInterchange || !f.LoopDistribution {
		t.Fatalf("All() = %+v", f)
	}
}

func TestTuningMapping(t *testing.T) {
	cases := []struct {
		flags Flags
		fuse  bool
		inter bool
		dist  bool
	}{
		{Flags{}, false, false, false},
		{Flags{LoopBlock: true}, true, false, false},
		{Flags{LoopInterchange: true}, false, true, false},
		{Flags{LoopDistribution: true}, false, false, true},
		{All(), true, true, true},
	}
	for _, c := range cases {
		tn := c.flags.Tuning()
		if tn.FuseDeblock != c.fuse || tn.InterchangeResidual != c.inter || tn.DistributeLookahead != c.dist {
			t.Errorf("%+v -> %+v", c.flags, tn)
		}
	}
}
