package uarch

import (
	"math"
	"testing"

	"repro/internal/trace"
)

func newTestMachine(cfg Config) *Machine {
	return NewMachine(cfg, trace.NewImage(nil))
}

func TestTableIVMatchesPaper(t *testing.T) {
	configs := TableIV()
	if len(configs) != 5 {
		t.Fatalf("%d configs, Table IV lists 5", len(configs))
	}
	base := configs[0]
	if base.Name != "baseline" || base.L1D.Size != 32<<10 || base.L2.Size != 256<<10 ||
		base.L3.Size != 8192<<10 || base.L4 != nil || base.ITLBEntries != 128 ||
		base.ROBSize != 128 || base.RSSize != 36 || base.IssueAtDispatch ||
		base.Predictor != "pentium_m" {
		t.Fatalf("baseline mismatch: %+v", base)
	}
	fe, _ := ByName("fe_op")
	if fe.L1I.Size != 64<<10 || fe.ITLBEntries != 256 || fe.L1D.Size != 32<<10 {
		t.Fatalf("fe_op mismatch: %+v", fe)
	}
	be1, _ := ByName("be_op1")
	if be1.L1D.Size != 64<<10 || be1.L2.Size != 512<<10 || be1.L3.Size != 4096<<10 ||
		be1.L4 == nil || be1.L4.Size != 16384<<10 {
		t.Fatalf("be_op1 mismatch: %+v", be1)
	}
	be2, _ := ByName("be_op2")
	if be2.ROBSize != 256 || be2.RSSize != 72 || !be2.IssueAtDispatch {
		t.Fatalf("be_op2 mismatch: %+v", be2)
	}
	bs, _ := ByName("bs_op")
	if bs.Predictor != "tage" {
		t.Fatalf("bs_op mismatch: %+v", bs)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown config resolved")
	}
}

func TestOpsAccumulateInstructionsAndCycles(t *testing.T) {
	m := newTestMachine(Baseline())
	m.Ops(trace.FnSAD, 4000)
	r := m.Result()
	if r.Insts != 4000 {
		t.Fatalf("insts %f", r.Insts)
	}
	if r.BaseCycles != 1000 {
		t.Fatalf("base cycles %f (width 4)", r.BaseCycles)
	}
	if r.Cycles() < r.BaseCycles {
		t.Fatal("total cycles below base")
	}
}

func TestLoadsDriveCacheHierarchy(t *testing.T) {
	m := newTestMachine(Baseline())
	// Stream 1 MB of reads: far beyond L1/L2, within L3.
	for a := uint64(0); a < 1<<20; a += 64 {
		m.Load(trace.FnSAD, 0x100000000+a, 64)
	}
	r := m.Result()
	if r.L1D.Misses == 0 || r.L2.Misses == 0 {
		t.Fatalf("streaming loads produced no misses: %+v %+v", r.L1D, r.L2)
	}
	if r.MemCycles == 0 {
		t.Fatal("no memory stall cycles charged")
	}
	// Re-streaming the same megabyte hits L3 (it fits), so L3 misses stop
	// growing while L1 misses continue.
	l3Before := r.L3.Misses
	for a := uint64(0); a < 1<<20; a += 64 {
		m.Load(trace.FnSAD, 0x100000000+a, 64)
	}
	r2 := m.Result()
	if r2.L3.Misses != l3Before {
		t.Fatalf("second sweep should hit L3: %d -> %d", l3Before, r2.L3.Misses)
	}
}

func TestLoad2DTouchesRows(t *testing.T) {
	m := newTestMachine(Baseline())
	m.Load2D(trace.FnSAD, 0x100000000, 16, 16, 512)
	r := m.Result()
	// 16 rows, 512-byte stride: every row is a distinct line -> >= 16 loads.
	if r.Loads < 16 {
		t.Fatalf("loads %f", r.Loads)
	}
}

func TestBiggerL1DReducesMisses(t *testing.T) {
	run := func(cfg Config) uint64 {
		m := newTestMachine(cfg)
		// Working set of 48 KB: misses in 32 KB, fits in 64 KB.
		for pass := 0; pass < 20; pass++ {
			for a := uint64(0); a < 48<<10; a += 64 {
				m.Load(trace.FnSAD, 0x100000000+a, 8)
			}
		}
		return m.Result().L1D.Misses
	}
	if small, big := run(Baseline()), run(BeOp1()); big*4 > small {
		t.Fatalf("be_op1 L1d misses %d not << baseline %d", big, small)
	}
}

func TestBiggerL1IReducesFetchStalls(t *testing.T) {
	run := func(cfg Config) float64 {
		m := newTestMachine(cfg)
		// Alternate among many functions so the unpacked hot set exceeds
		// 32 KB but fits in 64 KB.
		fns := []trace.FuncID{trace.FnSAD, trace.FnSATD, trace.FnMEUMH, trace.FnSubpel,
			trace.FnInterp, trace.FnIntraPred, trace.FnAnalyse, trace.FnCAVLC,
			trace.FnDeblock, trace.FnTrellis, trace.FnLookahead, trace.FnDecParse}
		for i := 0; i < 3000; i++ {
			fn := fns[i%len(fns)]
			m.Call(fn)
			m.Ops(fn, 300)
		}
		return m.Result().FECycles
	}
	base, fe := run(Baseline()), run(FeOp())
	if fe >= base {
		t.Fatalf("fe_op fetch cycles %f not below baseline %f", fe, base)
	}
}

func TestTAGEConfigReducesMispredicts(t *testing.T) {
	run := func(cfg Config) float64 {
		m := newTestMachine(cfg)
		// Period-300 pattern on one site (see branch tests).
		for i := 0; i < 30000; i++ {
			m.Branch(trace.FnCAVLC, 5, (i*i+i/7)%300 < 150 && i%300 < 170)
		}
		return m.Result().Mispredicts
	}
	base, bs := run(Baseline()), run(BsOp())
	if bs >= base {
		t.Fatalf("bs_op mispredicts %f not below baseline %f", bs, base)
	}
}

func TestBiggerROBReducesROBStalls(t *testing.T) {
	run := func(cfg Config) float64 {
		m := newTestMachine(cfg)
		// Sparse long-latency misses: each hits memory.
		for i := uint64(0); i < 2000; i++ {
			m.Ops(trace.FnSAD, 200)
			m.Load(trace.FnSAD, 0x100000000+i*1<<14, 8)
		}
		return m.Result().ROBStall
	}
	base, be2 := run(Baseline()), run(BeOp2())
	if be2 >= base {
		t.Fatalf("be_op2 ROB stalls %f not below baseline %f", be2, base)
	}
}

func TestStoreBufferStallsOnBursts(t *testing.T) {
	m := newTestMachine(Baseline())
	// A dense burst of store misses with no intervening instructions.
	for i := uint64(0); i < 3000; i++ {
		m.Store(trace.FnBitWriter, 0x200000000+i*4096, 8)
	}
	r := m.Result()
	if r.SBStall == 0 {
		t.Fatal("store burst should fill the store buffer")
	}
	// Interleaving computation drains the buffer: fewer stalls per store.
	m2 := newTestMachine(Baseline())
	for i := uint64(0); i < 3000; i++ {
		m2.Ops(trace.FnSAD, 400)
		m2.Store(trace.FnBitWriter, 0x200000000+i*4096, 8)
	}
	if m2.Result().SBStall >= r.SBStall {
		t.Fatal("interleaved compute should drain the store buffer")
	}
}

func TestLoopEventCounts(t *testing.T) {
	m := newTestMachine(Baseline())
	m.Loop(trace.FnSAD, 7, 10)
	r := m.Result()
	if r.Insts != 10 || r.Branches != 10 || r.TakenBr != 9 {
		t.Fatalf("loop accounting: insts=%f branches=%f taken=%f", r.Insts, r.Branches, r.TakenBr)
	}
	m.Loop(trace.FnSAD, 7, 0) // degenerate: ignored
	if m.Result().Insts != 10 {
		t.Fatal("zero-iteration loop should be ignored")
	}
}

func TestTopdownComponentsSumToCycles(t *testing.T) {
	m := newTestMachine(Baseline())
	for i := 0; i < 500; i++ {
		m.Call(trace.FnAnalyse)
		m.Ops(trace.FnAnalyse, 100)
		m.Load2D(trace.FnSAD, 0x100000000+uint64(i*997)%(1<<22), 16, 16, 512)
		m.Branch(trace.FnAnalyse, 1, i%3 == 0)
		m.Loop(trace.FnSAD, 2, 5+i%7)
		m.Store2D(trace.FnIDCT, 0x300000000+uint64(i*4096)%(1<<21), 16, 4, 512)
	}
	r := m.Result()
	sum := r.BaseCycles + r.FECycles + r.BSCycles + r.MemCycles + r.CoreCycles
	if math.Abs(sum-r.Cycles()) > 1e-6 {
		t.Fatalf("cycle components %f != total %f", sum, r.Cycles())
	}
	if r.IPC() <= 0 || r.IPC() > float64(r.WidthUops) {
		t.Fatalf("IPC %f out of range", r.IPC())
	}
}

func TestSecondsScalesWithSampleFactor(t *testing.T) {
	m := newTestMachine(Baseline())
	m.Ops(trace.FnSAD, 100000)
	r := m.Result()
	if s1, s4 := r.Seconds(1), r.Seconds(4); math.Abs(s4-4*s1) > 1e-12 {
		t.Fatalf("sample scaling wrong: %g vs %g", s1, s4)
	}
}

func TestResultAdd(t *testing.T) {
	a := newTestMachine(Baseline())
	b := newTestMachine(Baseline())
	a.Ops(trace.FnSAD, 100)
	b.Ops(trace.FnSATD, 200)
	b.Load(trace.FnSATD, 0x100000000, 64)
	ra, rb := a.Result(), b.Result()
	total := ra.Insts + rb.Insts
	ra.Add(rb)
	if ra.Insts != total {
		t.Fatalf("Add insts %f != %f", ra.Insts, total)
	}
	if ra.L1D.Accesses != rb.L1D.Accesses {
		t.Fatal("Add lost cache stats")
	}
}

func TestDRAMBytes(t *testing.T) {
	m := newTestMachine(Baseline())
	for a := uint64(0); a < 1<<21; a += 64 {
		m.Load(trace.FnSAD, 0x100000000+a, 8)
	}
	r := m.Result()
	want := float64(r.L3.Misses) * 64
	if r.DRAMBytes() != want {
		t.Fatalf("DRAM bytes %f != %f", r.DRAMBytes(), want)
	}
}

func TestCanonicalBranchRemovesTakenBubble(t *testing.T) {
	img := trace.NewImage(nil)
	// Mark the site canonical and pack the function (FDO applies both).
	img = img.Relayout(nil, map[trace.FuncID]bool{trace.FnCAVLC: true})
	img.SetCanonical(trace.FnCAVLC, 9)
	mPlain := NewMachine(Baseline(), trace.NewImage(nil))
	mOpt := NewMachine(Baseline(), img)
	for i := 0; i < 10000; i++ {
		mPlain.Branch(trace.FnCAVLC, 9, true) // biased taken
		mOpt.Branch(trace.FnCAVLC, 9, true)
	}
	if mOpt.Result().FECycles >= mPlain.Result().FECycles {
		t.Fatal("canonicalized taken branches should cost fewer fetch bubbles")
	}
	// Prediction accuracy itself is unchanged.
	if mOpt.Result().Mispredicts != mPlain.Result().Mispredicts {
		t.Fatal("canonicalization must not change predictability")
	}
}

func BenchmarkMachineLoad2D(b *testing.B) {
	m := newTestMachine(Baseline())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Load2D(trace.FnSAD, 0x100000000+uint64(i%4096)*64, 16, 16, 512)
	}
}

func TestNextLinePrefetcherHidesStreamingMisses(t *testing.T) {
	run := func(cfg Config) (float64, uint64) {
		m := newTestMachine(cfg)
		for a := uint64(0); a < 1<<20; a += 64 {
			m.Load(trace.FnSAD, 0x100000000+a, 8)
		}
		r := m.Result()
		return r.MemCycles, r.L1D.Misses
	}
	baseCycles, _ := run(Baseline())
	pfCycles, _ := run(PfOp())
	if pfCycles >= baseCycles/2 {
		t.Fatalf("prefetcher barely helped a pure stream: %f vs %f", pfCycles, baseCycles)
	}
	// Random access defeats the stream detector.
	rnd := func(cfg Config) float64 {
		m := newTestMachine(cfg)
		a := uint64(0x100000000)
		for i := 0; i < 16384; i++ {
			a = a*6364136223846793005 + 1442695040888963407
			m.Load(trace.FnSAD, 0x100000000+(a%(1<<24))&^63, 8)
		}
		return m.Result().MemCycles
	}
	if rnd(PfOp()) < rnd(Baseline())*0.9 {
		t.Fatal("prefetcher should not help random access")
	}
}

func TestExtendedConfigs(t *testing.T) {
	if len(Extended()) != 6 {
		t.Fatalf("%d extended configs", len(Extended()))
	}
	pf, ok := ByName("pf_op")
	if !ok || !pf.NextLinePrefetch {
		t.Fatal("pf_op missing or misconfigured")
	}
	for _, c := range TableIV() {
		if c.NextLinePrefetch {
			t.Fatalf("%s: Table IV configs must not enable the prefetcher", c.Name)
		}
	}
}
