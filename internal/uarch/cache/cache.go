// Package cache implements the structural memory-side models of the
// simulator: set-associative LRU caches and TLBs. These are real structural
// simulators — the hit/miss behaviour emerges from the address stream the
// instrumented codec produces, not from rates or formulas.
package cache

import "fmt"

// Config sizes one cache level.
type Config struct {
	Name     string
	Size     int // total bytes
	LineSize int // bytes per line (block)
	Assoc    int // ways per set
}

// Stats aggregates accesses and misses.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses/accesses (0 when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative cache with true-LRU replacement.
//
// Each way is one 16-byte entry (tag + LRU stamp, stamp 0 meaning invalid)
// so a whole set is contiguous in memory: the lookup loop walks one array
// with one bounds check instead of three parallel slices. The tag shift is
// precomputed — this function is the single hottest loop of the simulator
// and runs once per cache-line touch of the entire workload.
type Cache struct {
	cfg      Config
	sets     int
	setShift uint
	setMask  uint64
	tagShift uint
	assoc    int
	ents     []entry // sets*assoc, set-major
	clock    uint64
	stats    Stats

	// MRU short-circuit: index and line number of the most recently touched
	// entry. mru < 0 means no valid MRU. The MRU entry carries the globally
	// newest stamp, so it can never be another line's LRU victim — if the
	// incoming address maps to the same line, the full set walk would find
	// exactly this entry, making the short-circuit bit-identical.
	mru     int
	mruLine uint64
}

type entry struct {
	tag   uint64
	stamp uint64 // LRU clock at last touch; 0 = invalid
}

// New builds a cache. Size must be a multiple of LineSize*Assoc and the set
// count must be a power of two; New panics otherwise since configurations
// are static data.
func New(cfg Config) *Cache {
	if cfg.LineSize <= 0 || cfg.Assoc <= 0 || cfg.Size <= 0 {
		panic(fmt.Sprintf("cache %s: bad config %+v", cfg.Name, cfg))
	}
	sets := cfg.Size / (cfg.LineSize * cfg.Assoc)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", cfg.Name, sets))
	}
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	c := &Cache{
		cfg:      cfg,
		sets:     sets,
		setShift: shift,
		setMask:  uint64(sets - 1),
		tagShift: uint(setBits(sets)),
		assoc:    cfg.Assoc,
		ents:     make([]entry, sets*cfg.Assoc),
		mru:      -1,
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// Access looks up the line containing addr, inserting it on a miss, and
// reports whether it hit. Writes allocate like reads (write-allocate,
// write-back approximation).
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	c.stats.Accesses++
	line := addr >> c.setShift
	if c.mru >= 0 && line == c.mruLine {
		// Same line as the previous access. Nothing has touched the cache
		// since, so the entry is still resident; the set walk would hit it
		// and perform exactly this stamp update.
		c.ents[c.mru].stamp = c.clock
		return true
	}
	set := int(line & c.setMask)
	tag := line >> c.tagShift
	base := set * c.assoc
	ents := c.ents[base : base+c.assoc]
	// Hit scan first, victim scan only on a miss: the LRU victim is dead
	// work on the (common) hit path, and which entry it would have been is
	// unobservable when the walk returns early.
	for i := range ents {
		e := &ents[i]
		if e.stamp != 0 && e.tag == tag {
			e.stamp = c.clock
			c.mru, c.mruLine = base+i, line
			return true
		}
	}
	victim := 0
	oldest := ^uint64(0)
	for i := range ents {
		if s := ents[i].stamp; s < oldest {
			victim = i
			oldest = s
		}
	}
	c.stats.Misses++
	ents[victim] = entry{tag: tag, stamp: c.clock}
	c.mru, c.mruLine = base+victim, line
	return false
}

// Clone returns an independent deep copy of the cache: contents, LRU
// clocks and statistics. Cloning a warmed cache is how core's decoded-
// machine snapshots hand every sweep job post-decode cache state at memcpy
// speed.
func (c *Cache) Clone() *Cache {
	n := *c
	n.ents = append([]entry(nil), c.ents...)
	return &n
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.ents {
		c.ents[i] = entry{}
	}
	c.stats = Stats{}
	c.clock = 0
	c.mru = -1
	c.mruLine = 0
}

func setBits(sets int) int {
	b := 0
	for 1<<b < sets {
		b++
	}
	return b
}

// TLB is a fully-structural translation buffer: a set-associative cache of
// page numbers.
type TLB struct {
	inner    *Cache
	pageBits uint
}

// NewTLB builds a TLB with the given entry count, associativity and page
// size (bytes).
func NewTLB(name string, entries, assoc, pageSize int) *TLB {
	pb := uint(0)
	for 1<<pb < pageSize {
		pb++
	}
	return &TLB{
		inner: New(Config{
			Name:     name,
			Size:     entries, // one "byte" per entry with LineSize 1
			LineSize: 1,
			Assoc:    assoc,
		}),
		pageBits: pb,
	}
}

// Access translates addr, reporting whether the page was resident.
func (t *TLB) Access(addr uint64) bool {
	return t.inner.Access(addr >> t.pageBits)
}

// Stats returns hit/miss counters.
func (t *TLB) Stats() Stats { return t.inner.Stats() }

// Reset clears the TLB.
func (t *TLB) Reset() { t.inner.Reset() }

// Clone returns an independent deep copy of the TLB.
func (t *TLB) Clone() *TLB {
	n := *t
	n.inner = t.inner.Clone()
	return &n
}
