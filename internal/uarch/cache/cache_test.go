package cache

import (
	"testing"
	"testing/quick"
)

func TestMissThenHit(t *testing.T) {
	c := New(Config{Name: "t", Size: 1024, LineSize: 64, Assoc: 2})
	if c.Access(0x1000) {
		t.Fatal("cold access must miss")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access must hit")
	}
	if !c.Access(0x1030) {
		t.Fatal("same line (different offset) must hit")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 64B lines, 2 sets -> conflict three lines into one set.
	c := New(Config{Name: "t", Size: 256, LineSize: 64, Assoc: 2})
	// Set index = (addr>>6) & 1. Addresses 0x000, 0x080, 0x100 share set 0.
	c.Access(0x000)
	c.Access(0x080)
	c.Access(0x000) // touch to make 0x080 the LRU victim
	c.Access(0x100) // evicts 0x080
	if !c.Access(0x000) {
		t.Fatal("MRU line was evicted")
	}
	if c.Access(0x080) {
		t.Fatal("LRU line should have been evicted")
	}
}

func TestAssociativityHoldsWays(t *testing.T) {
	c := New(Config{Name: "t", Size: 64 * 8, LineSize: 64, Assoc: 8}) // one set, 8 ways
	for i := uint64(0); i < 8; i++ {
		c.Access(i << 6)
	}
	for i := uint64(0); i < 8; i++ {
		if !c.Access(i << 6) {
			t.Fatalf("way %d evicted within capacity", i)
		}
	}
	c.Access(8 << 6) // ninth line evicts exactly one (the LRU: line 0)
	// Probe MRU-first so the probes themselves do not cascade evictions.
	hits := 0
	for i := int64(7); i >= 0; i-- {
		if c.Access(uint64(i) << 6) {
			hits++
		}
	}
	if hits != 7 {
		t.Fatalf("expected exactly one eviction, got %d hits", hits)
	}
}

func TestResetClears(t *testing.T) {
	c := New(Config{Name: "t", Size: 1024, LineSize: 64, Assoc: 2})
	c.Access(0x40)
	c.Reset()
	if c.Stats().Accesses != 0 {
		t.Fatal("stats not reset")
	}
	if c.Access(0x40) {
		t.Fatal("contents not reset")
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	bad := []Config{
		{Name: "zero", Size: 0, LineSize: 64, Assoc: 2},
		{Name: "nonpow2", Size: 3 * 64 * 2, LineSize: 64, Assoc: 2},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", cfg.Name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Fatal("idle miss rate")
	}
	s = Stats{Accesses: 10, Misses: 3}
	if s.MissRate() != 0.3 {
		t.Fatalf("miss rate %f", s.MissRate())
	}
}

func TestStreamLargerThanCacheMissesEverySweep(t *testing.T) {
	c := New(Config{Name: "t", Size: 4096, LineSize: 64, Assoc: 4})
	// Stream 4x the capacity twice: with LRU, the second sweep also misses.
	lines := 4 * 4096 / 64
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i) << 6)
		}
	}
	s := c.Stats()
	if s.Misses != s.Accesses {
		t.Fatalf("cyclic over-capacity stream should always miss: %+v", s)
	}
}

func TestWorkingSetWithinCacheAlwaysHitsAfterWarmup(t *testing.T) {
	f := func(seed uint16) bool {
		c := New(Config{Name: "t", Size: 8192, LineSize: 64, Assoc: 8})
		base := uint64(seed) << 12
		lines := 8192 / 64 / 2 // half capacity
		for i := 0; i < lines; i++ {
			c.Access(base + uint64(i)<<6)
		}
		for i := 0; i < lines; i++ {
			if !c.Access(base + uint64(i)<<6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTLBPageGranularity(t *testing.T) {
	tlb := NewTLB("itlb", 16, 4, 4096)
	if tlb.Access(0x1000) {
		t.Fatal("cold page must miss")
	}
	if !tlb.Access(0x1FFF) {
		t.Fatal("same page must hit")
	}
	if tlb.Access(0x2000) {
		t.Fatal("next page must miss")
	}
	if tlb.Stats().Misses != 2 {
		t.Fatalf("stats %+v", tlb.Stats())
	}
}

func TestTLBCapacity(t *testing.T) {
	tlb := NewTLB("itlb", 8, 4, 4096)
	for i := uint64(0); i < 8; i++ {
		tlb.Access(i * 4096)
	}
	hits := 0
	for i := uint64(0); i < 8; i++ {
		if tlb.Access(i * 4096) {
			hits++
		}
	}
	if hits != 8 {
		t.Fatalf("8 pages must fit an 8-entry TLB, got %d hits", hits)
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := New(Config{Name: "l1", Size: 32 << 10, LineSize: 64, Assoc: 8})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*64) & 0xFFFFF)
	}
}
