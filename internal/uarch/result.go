package uarch

import "repro/internal/uarch/cache"

// Result carries the raw counter state of a finished simulation. All
// quantities are in sampled-trace units; callers scale by the trace sample
// factor when estimating absolute time (rates like MPKI and slot fractions
// are scale-free).
type Result struct {
	Config string

	Insts  float64
	Uops   float64
	Loads  float64
	Stores float64

	Branches    float64
	Mispredicts float64
	TakenBr     float64

	// Cycle components of the interval model.
	BaseCycles float64 // uops / width: useful dispatch
	FECycles   float64
	BSCycles   float64
	MemCycles  float64
	CoreCycles float64

	// Resource-stall cycle counters (Fig. 5 e-h).
	ROBStall float64
	RSStall  float64
	SBStall  float64

	L1I, L1D, L2, L3, L4 cache.Stats
	ITLB                 cache.Stats

	WidthUops int
	FreqGHz   float64
}

// Result snapshots the machine counters.
func (m *Machine) Result() *Result {
	r := &Result{
		Config:      m.cfg.Name,
		Insts:       m.insts,
		Uops:        m.uops,
		Loads:       m.loads,
		Stores:      m.stores,
		Branches:    m.branches,
		Mispredicts: m.mispredict,
		TakenBr:     m.takenBr,
		BaseCycles:  m.uops / float64(m.cfg.WidthUops),
		FECycles:    m.feCycles,
		BSCycles:    m.bsCycles,
		MemCycles:   m.memCycles,
		CoreCycles:  m.coreCycles,
		ROBStall:    m.robStall,
		RSStall:     m.rsStall,
		SBStall:     m.sbStall,
		L1I:         m.l1i.Stats(),
		L1D:         m.l1d.Stats(),
		L2:          m.l2.Stats(),
		L3:          m.l3.Stats(),
		ITLB:        m.itlb.Stats(),
		WidthUops:   m.cfg.WidthUops,
		FreqGHz:     m.cfg.FreqGHz,
	}
	if m.l4 != nil {
		r.L4 = m.l4.Stats()
	}
	return r
}

// Cycles returns total simulated cycles (sampled units).
func (r *Result) Cycles() float64 {
	return r.BaseCycles + r.FECycles + r.BSCycles + r.MemCycles + r.CoreCycles
}

// Seconds estimates wall-clock execution time given the trace sample
// factor.
func (r *Result) Seconds(sampleFactor float64) float64 {
	return r.Cycles() * sampleFactor / (r.FreqGHz * 1e9)
}

// IPC returns retired instructions per cycle.
func (r *Result) IPC() float64 {
	c := r.Cycles()
	if c == 0 {
		return 0
	}
	return r.Insts / c
}

// DRAMBytes estimates main-memory traffic: last-level misses times the line
// size (64 B). With an L4, its misses are the DRAM traffic.
func (r *Result) DRAMBytes() float64 {
	misses := r.L3.Misses
	if r.L4.Accesses > 0 {
		misses = r.L4.Misses
	}
	return float64(misses) * 64
}

// Equal reports whether two results are bit-for-bit identical: every
// counter, every cache level, every stall component. It backs the replay
// fidelity guarantee — a machine fed a recorded trace must reach exactly
// the state of a machine fed the live event stream.
func (r *Result) Equal(o *Result) bool {
	if r == nil || o == nil {
		return r == o
	}
	return *r == *o
}

// Add accumulates another result into r (same configuration), used to merge
// the decode and encode halves of a transcode.
func (r *Result) Add(o *Result) {
	r.Insts += o.Insts
	r.Uops += o.Uops
	r.Loads += o.Loads
	r.Stores += o.Stores
	r.Branches += o.Branches
	r.Mispredicts += o.Mispredicts
	r.TakenBr += o.TakenBr
	r.BaseCycles += o.BaseCycles
	r.FECycles += o.FECycles
	r.BSCycles += o.BSCycles
	r.MemCycles += o.MemCycles
	r.CoreCycles += o.CoreCycles
	r.ROBStall += o.ROBStall
	r.RSStall += o.RSStall
	r.SBStall += o.SBStall
	addStats(&r.L1I, o.L1I)
	addStats(&r.L1D, o.L1D)
	addStats(&r.L2, o.L2)
	addStats(&r.L3, o.L3)
	addStats(&r.L4, o.L4)
	addStats(&r.ITLB, o.ITLB)
}

func addStats(dst *cache.Stats, src cache.Stats) {
	dst.Accesses += src.Accesses
	dst.Misses += src.Misses
}
