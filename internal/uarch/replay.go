package uarch

import "repro/internal/trace"

// ReplayEvents consumes a parsed trace with a devirtualized event loop.
// trace.Replay and trace.ReplayParsed dispatch through the trace.Sink
// interface — one dynamic call per event; here the switch jumps straight
// into the Machine's concrete methods, so a sweep fanning one parsed slab
// out to N configurations pays neither varint decoding nor interface
// dispatch per event. Observationally identical to driving the machine as
// a Sink through trace.Replay on the buffer the EventBuf was parsed from;
// the machine-equivalence suite pins this for every Table IV
// configuration.
func (m *Machine) ReplayEvents(b *trace.EventBuf) {
	evs := b.Events()
	for i := range evs {
		e := &evs[i]
		switch e.Kind {
		case trace.EvOps:
			m.Ops(e.Fn, int(e.A))
		case trace.EvLoad:
			m.Load(e.Fn, e.Addr, int(e.A))
		case trace.EvStore:
			m.Store(e.Fn, e.Addr, int(e.A))
		case trace.EvLoad2D:
			m.Load2D(e.Fn, e.Addr, int(e.A), int(e.B), int(e.C))
		case trace.EvStore2D:
			m.Store2D(e.Fn, e.Addr, int(e.A), int(e.B), int(e.C))
		case trace.EvBranch:
			m.Branch(e.Fn, e.Site, e.Taken)
		case trace.EvLoop:
			m.Loop(e.Fn, e.Site, int(e.A))
		case trace.EvCall:
			m.Call(e.Fn)
		}
	}
}
