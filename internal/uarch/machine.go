package uarch

import (
	"repro/internal/trace"
	"repro/internal/uarch/branch"
	"repro/internal/uarch/cache"
)

// Machine simulates one core running the instrumented transcoder. It
// implements trace.Sink: the codec drives it event by event, and the
// machine's structural caches and predictors plus its interval-model stall
// accounting turn the event stream into cycles and counters.
//
// The cycle model follows interval simulation (Carlson et al., the
// mechanism behind Sniper): a width-limited dispatch base plus additive
// penalty intervals for front-end misses, branch-mispredict flushes, and
// MLP-adjusted memory stalls, with structural back-pressure terms for the
// ROB, the reservation stations and the store buffer.
type Machine struct {
	cfg   Config
	img   *trace.Image
	fmeta *[trace.NumFuncs]fetchMeta // derived from img; immutable, shared by clones

	l1i  *cache.Cache
	l1d  *cache.Cache
	l2   *cache.Cache
	l3   *cache.Cache
	l4   *cache.Cache // nil if not configured
	itlb *cache.TLB
	pred branch.Predictor

	// Fetch state: per-function cyclic cursor within the hot span.
	curFn   trace.FuncID
	fetchAt [trace.NumFuncs]int

	// Counters.
	insts  float64
	uops   float64
	loads  float64
	stores float64

	branches   float64
	mispredict float64
	takenBr    float64

	feCycles   float64 // fetch-miss + redirect bubbles
	bsCycles   float64 // mispredict flushes
	memCycles  float64 // data-miss stalls (MLP adjusted)
	coreCycles float64 // RS + SB structural stalls

	robStall float64 // resource-stall cycle counters (Fig. 5 f/g/h)
	rsStall  float64
	sbStall  float64

	// MLP cluster tracking.
	lastMissAt  float64 // insts at last L1D miss
	missCluster int

	// Store-buffer occupancy model.
	sbOcc       float64
	lastStoreAt float64

	// Next-line prefetcher state: last miss line and run length of the
	// ascending stream.
	pfLastLine uint64
	pfRun      int
	pfHits     float64
}

// fetchMeta caches the per-function fetch geometry derived from the
// immutable code image, so the fetch hot loop reads flat precomputed
// fields instead of re-deriving span and dilution per call.
type fetchMeta struct {
	addr    uint64
	span    int // FetchSpan()
	rounded int // span rounded up to a 64-byte line multiple
	hot     int // HotBytes
	// dilute[i] is the diluted fetch footprint of i instructions:
	// min(span, i*4*span/hot) — exactly the reference arithmetic in
	// fetchSlow. For i >= len(dilute), i*4 >= hot, so the footprint is
	// provably span (floor(a*span/hot) >= span ⇔ a >= hot). nil when the
	// region has no hot bytes.
	dilute []int32
}

// maxDiluteEntries bounds a single dilution table; instruction counts past
// the table fall back to the reference division.
const maxDiluteEntries = 1 << 14

func buildFetchMeta(img *trace.Image) *[trace.NumFuncs]fetchMeta {
	var fms [trace.NumFuncs]fetchMeta
	for fn := trace.FuncID(0); fn < trace.NumFuncs; fn++ {
		r := img.Region(fn)
		span := r.FetchSpan()
		fm := &fms[fn]
		fm.addr = r.Addr
		fm.span = span
		fm.rounded = (span + 63) &^ 63
		fm.hot = r.HotBytes
		if span <= 0 || r.HotBytes <= 0 {
			continue
		}
		n := (r.HotBytes + 3) / 4
		if n > maxDiluteEntries {
			n = maxDiluteEntries
		}
		tab := make([]int32, n)
		for i := range tab {
			b := i * 4 * span / r.HotBytes
			if b > span {
				b = span
			}
			tab[i] = int32(b)
		}
		fm.dilute = tab
	}
	return &fms
}

// NewMachine builds a machine for the given configuration and code image.
func NewMachine(cfg Config, img *trace.Image) *Machine {
	m := &Machine{cfg: cfg, img: img, fmeta: buildFetchMeta(img)}
	m.l1i = cache.New(cfg.L1I.cacheConfig("l1i"))
	m.l1d = cache.New(cfg.L1D.cacheConfig("l1d"))
	m.l2 = cache.New(cfg.L2.cacheConfig("l2"))
	m.l3 = cache.New(cfg.L3.cacheConfig("l3"))
	if cfg.L4 != nil {
		m.l4 = cache.New(cfg.L4.cacheConfig("l4"))
	}
	m.itlb = cache.NewTLB("itlb", cfg.ITLBEntries, 4, 4096)
	m.pred = branch.New(cfg.Predictor)
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Clone returns an independent deep copy of the machine: counters, fetch
// cursors, cache and TLB contents, and trained predictor state. The code
// image is shared (it is immutable after construction). Cloning a machine
// that has consumed a workload's decode gives each transcode job its
// post-decode state for the cost of a memcpy instead of a re-simulation.
func (m *Machine) Clone() *Machine {
	n := *m
	n.l1i = m.l1i.Clone()
	n.l1d = m.l1d.Clone()
	n.l2 = m.l2.Clone()
	n.l3 = m.l3.Clone()
	if m.l4 != nil {
		n.l4 = m.l4.Clone()
	}
	n.itlb = m.itlb.Clone()
	n.pred = m.pred.Clone()
	return &n
}

var _ trace.Sink = (*Machine)(nil)

// --- instruction side ---------------------------------------------------------

// Ops models n ALU micro-ops executing in fn: dispatch bandwidth plus the
// instruction-fetch stream walking the function's hot span.
func (m *Machine) Ops(fn trace.FuncID, n int) {
	m.insts += float64(n)
	m.uops += float64(n)
	m.fetch(fn, n)
}

// Call models a fetch redirect into fn.
func (m *Machine) Call(fn trace.FuncID) {
	m.curFn = fn
	m.insts += 2
	m.uops += 2
	m.icacheAccess(m.fmeta[fn].addr + uint64(m.fetchAt[fn]))
}

// fetch walks the fetch cursor of fn across its span, touching each new
// 64-byte line in the L1i/iTLB. In an unpacked (pre-FDO) layout the hot
// instructions are diluted across the whole function body, inflating the
// touched footprint by Total/Hot.
//
// This is the hot-loop form: the dilution division is a table lookup, and
// the two modulo reductions become conditional subtractions, valid because
// off ∈ [0, span) and bytes ∈ [0, span] bound every operand below twice
// its modulus. Degenerate operands (negative instruction counts from a
// hostile trace, or counts past the dilution table) fall back to
// fetchSlow, the pinned reference arithmetic.
func (m *Machine) fetch(fn trace.FuncID, instrs int) {
	fm := &m.fmeta[fn]
	span := fm.span
	if span <= 0 {
		return
	}
	var bytes int
	if fm.hot > 0 {
		if uint(instrs) >= uint(len(fm.dilute)) {
			m.fetchSlow(fm, fn, instrs)
			return
		}
		bytes = int(fm.dilute[instrs])
	} else {
		bytes = instrs * 4
		if bytes > span {
			bytes = span // further fetch revisits lines touched this call
		}
	}
	off := m.fetchAt[fn]
	if off < 0 || bytes < 0 {
		m.fetchSlow(fm, fn, instrs)
		return
	}
	first := off / 64
	last := (off + bytes) / 64
	rounded := fm.rounded
	for l := first; l <= last; l++ {
		lineOff := l * 64
		if lineOff >= rounded {
			lineOff -= rounded
		}
		m.icacheAccess(fm.addr + uint64(lineOff))
	}
	at := off + bytes
	if at >= span {
		at -= span
	}
	m.fetchAt[fn] = at
}

// fetchSlow is the reference fetch arithmetic (modulo reductions and the
// dilution division), kept verbatim for operands outside the fast path's
// proven bounds.
func (m *Machine) fetchSlow(fm *fetchMeta, fn trace.FuncID, instrs int) {
	span := fm.span
	bytes := instrs * 4
	if fm.hot > 0 {
		// Dilution: n hot instructions cover n*4*(span/hot) bytes of the
		// layout (2x when hot/cold code interleaves, 1x after FDO packing).
		bytes = bytes * span / fm.hot
	}
	if bytes > span {
		bytes = span
	}
	off := m.fetchAt[fn]
	first := off / 64
	last := (off + bytes) / 64
	for l := first; l <= last; l++ {
		lineOff := (l * 64) % ((span + 63) &^ 63)
		m.icacheAccess(fm.addr + uint64(lineOff))
	}
	m.fetchAt[fn] = (off + bytes) % span
}

// icacheAccess performs one instruction-line lookup: iTLB then L1i, with
// misses escalating down the hierarchy and charging fetch-bubble cycles.
func (m *Machine) icacheAccess(addr uint64) {
	if !m.itlb.Access(addr) {
		m.feCycles += 18 // page walk
	}
	if m.l1i.Access(addr) {
		return
	}
	// Instruction lines share L2/L3 with data.
	lat := float64(m.cfg.LatL2)
	if !m.l2.Access(addr) {
		lat = float64(m.cfg.LatL3)
		if !m.l3.Access(addr) {
			lat = float64(m.cfg.LatMem)
			if m.l4 != nil {
				if m.l4.Access(addr) {
					lat = float64(m.cfg.LatL4)
				}
			}
		}
	}
	m.feCycles += lat
}

// --- data side ------------------------------------------------------------------

// Load models a contiguous read.
func (m *Machine) Load(fn trace.FuncID, addr uint64, bytes int) {
	m.dataRange(fn, addr, bytes, false)
}

// Store models a contiguous write.
func (m *Machine) Store(fn trace.FuncID, addr uint64, bytes int) {
	m.dataRange(fn, addr, bytes, true)
}

// Load2D models a 2-D block read (w x h pixels, rows `stride` apart).
//
// The row walk batches dataRange inline with the write branch hoisted out:
// each row still performs its line accesses, then its own insts/uops/fetch
// update, in exactly dataRange's order — loadAccess reads m.insts for MLP
// clustering, so per-row interleaving is load-bearing and must not be
// merged across rows.
func (m *Machine) Load2D(fn trace.FuncID, addr uint64, w, h, stride int) {
	if w <= 0 {
		return // every row would be dataRange's bytes<=0 no-op
	}
	for j := 0; j < h; j++ {
		rowAddr := addr + uint64(j*stride)
		first := rowAddr &^ 63
		last := (rowAddr + uint64(w) - 1) &^ 63
		for line := first; line <= last; line += 64 {
			m.loadAccess(line)
		}
		n := int(last-first)/64 + 1
		m.insts += float64(n)
		m.uops += float64(n)
		m.fetch(fn, n)
	}
}

// Store2D models a 2-D block write (same row-batched walk as Load2D).
func (m *Machine) Store2D(fn trace.FuncID, addr uint64, w, h, stride int) {
	if w <= 0 {
		return
	}
	for j := 0; j < h; j++ {
		rowAddr := addr + uint64(j*stride)
		first := rowAddr &^ 63
		last := (rowAddr + uint64(w) - 1) &^ 63
		for line := first; line <= last; line += 64 {
			m.storeAccess(line)
		}
		n := int(last-first)/64 + 1
		m.insts += float64(n)
		m.uops += float64(n)
		m.fetch(fn, n)
	}
}

// dataRange touches every line of [addr, addr+bytes) as one memory uop per
// line.
func (m *Machine) dataRange(fn trace.FuncID, addr uint64, bytes int, write bool) {
	if bytes <= 0 {
		return
	}
	first := addr &^ 63
	last := (addr + uint64(bytes) - 1) &^ 63
	for line := first; line <= last; line += 64 {
		if write {
			m.storeAccess(line)
		} else {
			m.loadAccess(line)
		}
	}
	// Memory uops also flow through fetch/dispatch.
	n := int(last-first)/64 + 1
	m.insts += float64(n)
	m.uops += float64(n)
	m.fetch(fn, n)
}

// loadAccess runs one load through the data hierarchy and charges MLP-
// adjusted stall cycles for misses.
func (m *Machine) loadAccess(line uint64) {
	m.loads++
	if m.l1d.Access(line) {
		return
	}
	// Next-line stream prefetcher: after two consecutive ascending-line
	// misses, the following lines of the stream are assumed in flight and
	// their latency is covered by the prefetcher (they still allocate).
	if m.cfg.NextLinePrefetch {
		if line == m.pfLastLine+64 {
			m.pfRun++
		} else if line != m.pfLastLine {
			m.pfRun = 0
		}
		m.pfLastLine = line
		if m.pfRun >= 2 {
			m.pfHits++
			m.l2.Access(line)
			m.l3.Access(line)
			return // latency hidden by the prefetch stream
		}
	}
	lat := float64(m.cfg.LatL2)
	if !m.l2.Access(line) {
		lat = float64(m.cfg.LatL3)
		if !m.l3.Access(line) {
			lat = float64(m.cfg.LatMem)
			if m.l4 != nil {
				if m.l4.Access(line) {
					lat = float64(m.cfg.LatL4)
				}
			}
		}
	}

	// Memory-level parallelism: misses close together in the instruction
	// stream overlap, bounded by scheduler capacity.
	if m.insts-m.lastMissAt < float64(m.cfg.ROBSize)/2 {
		m.missCluster++
	} else {
		m.missCluster = 1
	}
	m.lastMissAt = m.insts
	maxMLP := m.cfg.RSSize / 9
	if maxMLP < 2 {
		maxMLP = 2
	}
	conc := m.missCluster
	if conc > maxMLP {
		conc = maxMLP
		// Cluster overflow backs up into the reservation stations.
		rs := 2.0
		if m.cfg.IssueAtDispatch {
			rs = 1.0
		}
		m.rsStall += rs
		m.coreCycles += rs
	}
	stall := lat / float64(conc)
	m.memCycles += stall

	// ROB-full portion: the out-of-order window hides ROBSize/width cycles
	// of each miss; the remainder stalls retirement with a full ROB.
	hidden := float64(m.cfg.ROBSize) / float64(m.cfg.WidthUops)
	if lat > hidden {
		m.robStall += (lat - hidden) / float64(conc)
	}
}

// storeAccess models a write: write-allocate traffic plus store-buffer
// occupancy. Stores stall the pipeline only when the buffer fills.
func (m *Machine) storeAccess(line uint64) {
	m.stores++
	cost := 0.5 // cycles of buffer residency for an L1 hit
	if !m.l1d.Access(line) {
		lat := float64(m.cfg.LatL2)
		if !m.l2.Access(line) {
			lat = float64(m.cfg.LatL3)
			if !m.l3.Access(line) {
				lat = float64(m.cfg.LatMem)
				if m.l4 != nil {
					if m.l4.Access(line) {
						lat = float64(m.cfg.LatL4)
					}
				}
			}
		}
		cost = lat / 4 // write-allocate fills overlap heavily
	}
	// Drain: the buffer retires entries while instructions flow.
	elapsed := m.insts - m.lastStoreAt
	m.lastStoreAt = m.insts
	m.sbOcc -= elapsed * 0.4
	if m.sbOcc < 0 {
		m.sbOcc = 0
	}
	m.sbOcc += cost
	if m.sbOcc > storeBufferEntries {
		over := m.sbOcc - storeBufferEntries
		m.sbStall += over
		m.coreCycles += over
		m.sbOcc = storeBufferEntries
	}
}

// storeBufferEntries is fixed across Table IV configurations (the paper
// varies ROB and RS only).
const storeBufferEntries = 42

// --- control side -----------------------------------------------------------------

// Branch models one dynamic data-dependent conditional branch.
func (m *Machine) Branch(fn trace.FuncID, site trace.BranchID, taken bool) {
	m.insts++
	m.uops++
	m.branches++
	r := m.img.Region(fn)
	pc := r.Addr + uint64(site)*16
	// AutoFDO direction canonicalization: the optimized layout flips the
	// polarity of strongly biased branches so the common path falls
	// through; the fetch bubble charged for taken branches disappears.
	effTaken := taken
	if r.Packed && m.img.BranchCanonical(fn, site) {
		effTaken = !taken
	}
	if effTaken {
		m.takenBr++
		m.feCycles += 0.8 // fetch redirect bubble
	}
	if !m.pred.PredictUpdate(pc, taken) {
		m.mispredict++
		m.bsCycles += float64(m.cfg.BranchPenalty)
	}
}

// Loop models a counted loop: iters backedge branches plus the trip-count
// exit prediction.
func (m *Machine) Loop(fn trace.FuncID, site trace.BranchID, iters int) {
	if iters <= 0 {
		return
	}
	m.insts += float64(iters)
	m.uops += float64(iters)
	m.branches += float64(iters)
	m.takenBr += float64(iters - 1)
	r := m.img.Region(fn)
	pc := r.Addr + uint64(site)*16 + 8
	miss := m.pred.LoopExit(pc, iters)
	m.mispredict += float64(miss)
	m.bsCycles += float64(miss) * float64(m.cfg.BranchPenalty)
}
