// Package branch implements structural branch-direction predictors: a
// bimodal table, a gshare global predictor, the Pentium-M-style hybrid that
// Sniper uses as its default, and TAGE. Predictors see the real
// data-dependent outcome streams of the instrumented codec, so their
// mispredict counts respond to content complexity and encoder parameters
// the way hardware counters do.
package branch

import "maps"

// Predictor predicts conditional branch directions. PredictUpdate performs
// the predict-then-train step for one dynamic branch and reports whether
// the prediction was correct. LoopExit models a counted loop executing
// `iters` iterations at the given site and returns the number of
// mispredicts charged (the interesting one is the exit).
type Predictor interface {
	Name() string
	PredictUpdate(pc uint64, taken bool) bool
	LoopExit(pc uint64, iters int) int
	Reset()
	// Clone returns an independent deep copy of the predictor, including
	// all trained table and history state.
	Clone() Predictor
}

// Stats tracks aggregate accuracy.
type Stats struct {
	Branches   uint64
	Mispredict uint64
}

// --- two-bit counter helpers -------------------------------------------------

func ctrTaken(c uint8) bool { return c >= 2 }

func ctrUpdate(c uint8, taken bool) uint8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// hashPC folds a branch address into a table index.
func hashPC(pc uint64, bits uint) uint64 {
	h := pc * 0x9E3779B97F4A7C15
	return (h >> (64 - bits))
}

// --- bimodal ------------------------------------------------------------------

// Bimodal is a per-site two-bit-counter table.
type Bimodal struct {
	table []uint8
	bits  uint
}

// NewBimodal builds a bimodal predictor with 2^bits counters.
func NewBimodal(bits uint) *Bimodal {
	b := &Bimodal{table: make([]uint8, 1<<bits), bits: bits}
	b.Reset()
	return b
}

func (b *Bimodal) Name() string { return "bimodal" }

func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 2 // weakly taken
	}
}

// Clone deep-copies the counter table.
func (b *Bimodal) Clone() Predictor {
	n := *b
	n.table = append([]uint8(nil), b.table...)
	return &n
}

func (b *Bimodal) PredictUpdate(pc uint64, taken bool) bool {
	i := hashPC(pc, b.bits)
	pred := ctrTaken(b.table[i])
	b.table[i] = ctrUpdate(b.table[i], taken)
	return pred == taken
}

// LoopExit without trip-count tracking mispredicts every exit of a loop
// longer than the counter can express.
func (b *Bimodal) LoopExit(pc uint64, iters int) int {
	if iters <= 1 {
		// Degenerate loop: behaves like a not-taken branch that bimodal
		// usually gets right once trained.
		if !b.PredictUpdate(pc, false) {
			return 1
		}
		return 0
	}
	// Saturated-taken counters always miss the exit.
	i := hashPC(pc, b.bits)
	b.table[i] = 3
	return 1
}

// --- gshare -------------------------------------------------------------------

// GShare XORs a global history register with the address.
type GShare struct {
	table []uint8
	bits  uint
	hist  uint64
}

// NewGShare builds a gshare predictor with 2^bits counters.
func NewGShare(bits uint) *GShare {
	g := &GShare{table: make([]uint8, 1<<bits), bits: bits}
	g.Reset()
	return g
}

func (g *GShare) Name() string { return "gshare" }

func (g *GShare) Reset() {
	for i := range g.table {
		g.table[i] = 2
	}
	g.hist = 0
}

// Clone deep-copies the counter table and history register.
func (g *GShare) Clone() Predictor {
	n := *g
	n.table = append([]uint8(nil), g.table...)
	return &n
}

func (g *GShare) index(pc uint64) uint64 {
	return (hashPC(pc, g.bits) ^ (g.hist & ((1 << g.bits) - 1)))
}

func (g *GShare) PredictUpdate(pc uint64, taken bool) bool {
	i := g.index(pc)
	pred := ctrTaken(g.table[i])
	g.table[i] = ctrUpdate(g.table[i], taken)
	g.hist <<= 1
	if taken {
		g.hist |= 1
	}
	return pred == taken
}

func (g *GShare) LoopExit(pc uint64, iters int) int {
	// Global history can capture short fixed trip counts.
	if iters <= 8 {
		miss := 0
		for k := 0; k < iters; k++ {
			if !g.PredictUpdate(pc, k < iters-1) {
				miss++
			}
		}
		if miss > 1 {
			miss = 1
		}
		return miss
	}
	g.hist = (g.hist << 4) | 0xF
	return 1
}

// --- Pentium-M hybrid -----------------------------------------------------------

// PentiumM approximates the Pentium M predictor: a bimodal table backed by
// a global predictor with a chooser, plus a loop detector that captures
// fixed trip counts up to its counter width (64 iterations).
type PentiumM struct {
	bim    *Bimodal
	gsh    *GShare
	choose []uint8
	bits   uint
	loops  map[uint64]int // last trip count per site
}

// NewPentiumM builds the hybrid with default table sizes.
func NewPentiumM() *PentiumM {
	// Table sizes reflect the Pentium M's modest budget; aliasing in these
	// small tables is the main accuracy gap against TAGE.
	p := &PentiumM{
		bim:    NewBimodal(9),
		gsh:    NewGShare(10),
		choose: make([]uint8, 1<<9),
		bits:   9,
		loops:  make(map[uint64]int),
	}
	for i := range p.choose {
		p.choose[i] = 2
	}
	return p
}

func (p *PentiumM) Name() string { return "pentium_m" }

func (p *PentiumM) Reset() {
	p.bim.Reset()
	p.gsh.Reset()
	for i := range p.choose {
		p.choose[i] = 2
	}
	p.loops = make(map[uint64]int)
}

// Clone deep-copies both component predictors, the chooser and the loop
// detector.
func (p *PentiumM) Clone() Predictor {
	n := *p
	n.bim = p.bim.Clone().(*Bimodal)
	n.gsh = p.gsh.Clone().(*GShare)
	n.choose = append([]uint8(nil), p.choose...)
	n.loops = maps.Clone(p.loops)
	return &n
}

func (p *PentiumM) PredictUpdate(pc uint64, taken bool) bool {
	// Flattened: the chooser and the bimodal table share p.bits, so one
	// multiply-hash serves both, and both component updates are inlined on
	// their tables directly — the arithmetic is exactly Bimodal.PredictUpdate
	// and GShare.PredictUpdate, minus the per-branch call overhead and the
	// repeated hashing. This runs once per dynamic branch of the workload.
	h := pc * 0x9E3779B97F4A7C15
	i := h >> (64 - p.bits)
	useG := ctrTaken(p.choose[i])
	bi := h >> (64 - p.bim.bits)
	okB := ctrTaken(p.bim.table[bi]) == taken
	p.bim.table[bi] = ctrUpdate(p.bim.table[bi], taken)
	gi := (h >> (64 - p.gsh.bits)) ^ (p.gsh.hist & ((1 << p.gsh.bits) - 1))
	okG := ctrTaken(p.gsh.table[gi]) == taken
	p.gsh.table[gi] = ctrUpdate(p.gsh.table[gi], taken)
	p.gsh.hist <<= 1
	if taken {
		p.gsh.hist |= 1
	}
	// Train the chooser toward whichever component was right.
	if okG != okB {
		p.choose[i] = ctrUpdate(p.choose[i], okG)
	}
	if useG {
		return okG
	}
	return okB
}

// LoopExit: the loop detector captures stable trip counts up to 64.
func (p *PentiumM) LoopExit(pc uint64, iters int) int {
	last, seen := p.loops[pc]
	p.loops[pc] = iters
	if iters <= 64 && seen && last == iters {
		return 0
	}
	if iters <= 2 {
		// Short loops resolve through the regular predictor most times.
		return 0
	}
	return 1
}

// --- TAGE ----------------------------------------------------------------------

// tageEntry is one tagged component entry.
type tageEntry struct {
	tag    uint16
	ctr    int8 // -4..3, taken when >= 0
	useful uint8
}

// TAGE implements a compact TAGE predictor: a bimodal base plus four tagged
// tables with geometrically increasing history lengths.
type TAGE struct {
	base   *Bimodal
	tables [4][]tageEntry
	hlens  [4]uint
	bits   uint
	hist   uint64
	loops  map[uint64][4]int // recent trip counts per site
	tick   uint8
}

// NewTAGE builds the predictor with 2^11-entry tagged tables and history
// lengths 8/16/32/64.
func NewTAGE() *TAGE {
	t := &TAGE{
		base:  NewBimodal(12),
		hlens: [4]uint{8, 16, 32, 64},
		bits:  11,
		loops: make(map[uint64][4]int),
	}
	for i := range t.tables {
		t.tables[i] = make([]tageEntry, 1<<t.bits)
	}
	return t
}

func (t *TAGE) Name() string { return "tage" }

func (t *TAGE) Reset() {
	t.base.Reset()
	for i := range t.tables {
		for j := range t.tables[i] {
			t.tables[i][j] = tageEntry{}
		}
	}
	t.hist = 0
	t.loops = make(map[uint64][4]int)
}

// Clone deep-copies the base table, all tagged components, the global
// history and the loop detector.
func (t *TAGE) Clone() Predictor {
	n := *t
	n.base = t.base.Clone().(*Bimodal)
	for i := range t.tables {
		n.tables[i] = append([]tageEntry(nil), t.tables[i]...)
	}
	n.loops = maps.Clone(t.loops)
	return &n
}

func (t *TAGE) foldedHist(n uint) uint64 {
	h := t.hist & ((1 << n) - 1)
	return h ^ (h >> 7) ^ (h >> 13)
}

func (t *TAGE) index(pc uint64, comp int) uint64 {
	return (hashPC(pc, t.bits) ^ t.foldedHist(t.hlens[comp])) & ((1 << t.bits) - 1)
}

func (t *TAGE) tag(pc uint64, comp int) uint16 {
	return uint16((pc>>2 ^ uint64(comp)<<9 ^ t.foldedHist(t.hlens[comp])*3) & 0x3FF)
}

// PredictUpdate follows the TAGE algorithm: longest matching component
// provides the prediction; allocation on mispredict.
//
// Flattened table access: t.hist only advances at the very end, so the
// per-component folded histories — and therefore every index and tag — are
// invariant across the predict, update and allocate steps. They are
// computed once up front instead of re-derived at each t.index/t.tag call
// (the streaming form re-folds the history up to eleven times per branch).
func (t *TAGE) PredictUpdate(pc uint64, taken bool) bool {
	hp := hashPC(pc, t.bits)
	mask := uint64(1)<<t.bits - 1
	var ix [4]uint64
	var tgs [4]uint16
	for c := 0; c < 4; c++ {
		f := t.foldedHist(t.hlens[c])
		ix[c] = (hp ^ f) & mask
		tgs[c] = uint16((pc>>2 ^ uint64(c)<<9 ^ f*3) & 0x3FF)
	}

	provider := -1
	var pi uint64
	pred := false
	for c := 3; c >= 0; c-- {
		i := ix[c]
		if t.tables[c][i].tag == tgs[c] {
			provider = c
			pi = i
			pred = t.tables[c][i].ctr >= 0
			break
		}
	}
	if provider < 0 {
		i := hashPC(pc, 12)
		pred = ctrTaken(t.base.table[i])
	}
	correct := pred == taken

	// Update provider (or base).
	if provider >= 0 {
		e := &t.tables[provider][pi]
		if taken {
			if e.ctr < 3 {
				e.ctr++
			}
		} else if e.ctr > -4 {
			e.ctr--
		}
		if correct && e.useful < 3 {
			e.useful++
		}
	} else {
		i := hashPC(pc, 12)
		t.base.table[i] = ctrUpdate(t.base.table[i], taken)
	}

	// Allocate a longer-history entry on mispredict.
	if !correct && provider < 3 {
		for c := provider + 1; c < 4; c++ {
			e := &t.tables[c][ix[c]]
			if e.useful == 0 {
				e.tag = tgs[c]
				if taken {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				break
			}
			// Gradually age useful bits so allocation cannot starve.
			t.tick++
			if t.tick == 0 {
				e.useful--
			}
		}
	}

	t.hist <<= 1
	if taken {
		t.hist |= 1
	}
	return correct
}

// LoopExit: long histories let TAGE capture trip counts up to its history
// length, and its allocation policy tolerates a small working set of
// alternating trip counts per site.
func (t *TAGE) LoopExit(pc uint64, iters int) int {
	prev := t.loops[pc]
	t.loops[pc] = [4]int{iters, prev[0], prev[1], prev[2]}
	if iters <= 2 {
		return 0
	}
	if iters <= 512 && (iters == prev[0] || iters == prev[1] || iters == prev[2] || iters == prev[3]) {
		return 0
	}
	return 1
}

// New constructs a predictor by configuration name ("pentium_m", "tage",
// "bimodal", "gshare"). Unknown names fall back to pentium_m.
func New(name string) Predictor {
	switch name {
	case "tage":
		return NewTAGE()
	case "bimodal":
		return NewBimodal(12)
	case "gshare":
		return NewGShare(12)
	default:
		return NewPentiumM()
	}
}
