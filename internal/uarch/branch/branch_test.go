package branch

import (
	"math/rand"
	"testing"
)

// accuracy trains p on the outcome stream and returns the hit fraction.
func accuracy(p Predictor, pcs []uint64, outcomes []bool) float64 {
	hits := 0
	for i, taken := range outcomes {
		if p.PredictUpdate(pcs[i%len(pcs)], taken) {
			hits++
		}
	}
	return float64(hits) / float64(len(outcomes))
}

func constStream(n int, taken bool) []bool {
	s := make([]bool, n)
	for i := range s {
		s[i] = taken
	}
	return s
}

func TestAllPredictorsLearnBias(t *testing.T) {
	for _, name := range []string{"bimodal", "gshare", "pentium_m", "tage"} {
		p := New(name)
		acc := accuracy(p, []uint64{0x400100}, constStream(2000, true))
		if acc < 0.95 {
			t.Errorf("%s: accuracy %.3f on constant stream", name, acc)
		}
	}
}

func TestGShareLearnsAlternation(t *testing.T) {
	// T,N,T,N... is invisible to bimodal but trivial with history.
	stream := make([]bool, 4000)
	for i := range stream {
		stream[i] = i%2 == 0
	}
	bim := accuracy(NewBimodal(12), []uint64{0x400100}, stream)
	gsh := accuracy(NewGShare(12), []uint64{0x400100}, stream)
	if gsh < 0.9 {
		t.Fatalf("gshare accuracy %.3f on alternating stream", gsh)
	}
	if gsh <= bim {
		t.Fatalf("gshare (%.3f) should beat bimodal (%.3f) on alternation", gsh, bim)
	}
}

func TestTAGEBeatsPentiumMOnLongPatterns(t *testing.T) {
	// A period-300 random pattern: 10-bit history windows collide often
	// (the hybrid's budget) while TAGE's 32/64-bit components resolve them.
	pattern := make([]bool, 300)
	rng := rand.New(rand.NewSource(7))
	for i := range pattern {
		pattern[i] = rng.Intn(2) == 0
	}
	stream := make([]bool, 60000)
	for i := range stream {
		stream[i] = pattern[i%len(pattern)]
	}
	pm := accuracy(NewPentiumM(), []uint64{0x400100}, stream)
	tg := accuracy(NewTAGE(), []uint64{0x400100}, stream)
	if tg <= pm {
		t.Fatalf("TAGE (%.3f) should beat Pentium M (%.3f) on long patterns", tg, pm)
	}
	if tg < 0.9 {
		t.Fatalf("TAGE accuracy %.3f too low on periodic pattern", tg)
	}
}

func TestPredictorsNearChanceOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	stream := make([]bool, 20000)
	for i := range stream {
		stream[i] = rng.Intn(2) == 0
	}
	for _, name := range []string{"pentium_m", "tage"} {
		acc := accuracy(New(name), []uint64{0x400100}, stream)
		if acc < 0.40 || acc > 0.60 {
			t.Errorf("%s: accuracy %.3f on random stream, expected ~0.5", name, acc)
		}
	}
}

func TestAliasingHurtsSmallTables(t *testing.T) {
	// Many sites with opposite biases: the small hybrid aliases, TAGE's
	// tags disambiguate.
	pcs := make([]uint64, 512)
	for i := range pcs {
		pcs[i] = 0x400000 + uint64(i)*16
	}
	stream := make([]bool, 51200)
	for i := range stream {
		stream[i] = (i % len(pcs) % 2) == 0 // site parity decides direction
	}
	outcomes := make([]bool, len(stream))
	copy(outcomes, stream)
	pm := accuracy(NewPentiumM(), pcs, outcomes)
	tg := accuracy(NewTAGE(), pcs, outcomes)
	if tg <= pm {
		t.Fatalf("TAGE (%.3f) should beat the aliased hybrid (%.3f)", tg, pm)
	}
}

func TestLoopExitStableTripCounts(t *testing.T) {
	pm := NewPentiumM()
	tg := NewTAGE()
	// Stable trip count 20: both loop detectors converge after training.
	var pmMiss, tgMiss int
	for i := 0; i < 50; i++ {
		pmMiss += pm.LoopExit(0x400200, 20)
		tgMiss += tg.LoopExit(0x400200, 20)
	}
	if pmMiss > 2 || tgMiss > 2 {
		t.Fatalf("stable trip count should train: pm %d, tage %d", pmMiss, tgMiss)
	}
}

func TestLoopExitTripCountCapabilities(t *testing.T) {
	pm := NewPentiumM()
	tg := NewTAGE()
	// Alternating trip counts 10/30: beyond the Pentium M detector, within
	// TAGE's recent-trip memory.
	var pmMiss, tgMiss int
	for i := 0; i < 60; i++ {
		n := 10
		if i%2 == 1 {
			n = 30
		}
		pmMiss += pm.LoopExit(0x400300, n)
		tgMiss += tg.LoopExit(0x400300, n)
	}
	if tgMiss >= pmMiss {
		t.Fatalf("TAGE (%d) should beat Pentium M (%d) on alternating trips", tgMiss, pmMiss)
	}
	// Very long loops defeat the Pentium M detector (64-iteration budget).
	pm2 := NewPentiumM()
	miss := 0
	for i := 0; i < 20; i++ {
		miss += pm2.LoopExit(0x400400, 100)
	}
	if miss < 18 {
		t.Fatalf("Pentium M should miss exits of 100-iteration loops, missed %d/20", miss)
	}
}

func TestShortLoopsFree(t *testing.T) {
	for _, name := range []string{"pentium_m", "tage"} {
		p := New(name)
		if p.LoopExit(0x400500, 1) != 0 || p.LoopExit(0x400500, 2) != 0 {
			t.Errorf("%s: trivial loops should not mispredict", name)
		}
	}
}

func TestResetRestoresColdState(t *testing.T) {
	for _, name := range []string{"bimodal", "gshare", "pentium_m", "tage"} {
		p := New(name)
		// Train hard toward taken.
		for i := 0; i < 1000; i++ {
			p.PredictUpdate(0x400600, true)
		}
		p.Reset()
		// After reset the first not-taken outcomes should behave as from
		// cold (not as a fully-trained taken predictor): within a few
		// updates it must adapt.
		miss := 0
		for i := 0; i < 10; i++ {
			if !p.PredictUpdate(0x400600, false) {
				miss++
			}
		}
		if miss > 5 {
			t.Errorf("%s: %d misses after reset; state not cleared", name, miss)
		}
	}
}

func TestNewFallsBackToPentiumM(t *testing.T) {
	if New("whatever").Name() != "pentium_m" {
		t.Fatal("unknown predictor name must fall back to pentium_m")
	}
	if New("tage").Name() != "tage" {
		t.Fatal("tage not constructed")
	}
}

func BenchmarkPentiumM(b *testing.B) {
	p := NewPentiumM()
	for i := 0; i < b.N; i++ {
		p.PredictUpdate(uint64(0x400000+(i%64)*16), i%3 == 0)
	}
}

func BenchmarkTAGE(b *testing.B) {
	p := NewTAGE()
	for i := 0; i < b.N; i++ {
		p.PredictUpdate(uint64(0x400000+(i%64)*16), i%3 == 0)
	}
}
