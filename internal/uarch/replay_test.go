package uarch

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// replayWorkload records a synthetic but realistic event mix: every kind,
// several functions, addresses with reuse and streaming, biased branches
// and short loops.
func replayWorkload() []byte {
	rec := trace.NewRecorder()
	rng := rand.New(rand.NewSource(7))
	fns := []trace.FuncID{trace.FnSAD, trace.FnSATD, trace.FnDecMC, trace.FnDecIDCT, trace.FnDeblock, trace.FnDecParse}
	base := uint64(0x1_0000_0000)
	for i := 0; i < 20000; i++ {
		fn := fns[rng.Intn(len(fns))]
		switch rng.Intn(8) {
		case 0:
			rec.Ops(fn, 1+rng.Intn(64))
		case 1:
			rec.Load(fn, base+uint64(rng.Intn(1<<22)), 1+rng.Intn(256))
		case 2:
			rec.Store(fn, base+uint64(rng.Intn(1<<22)), 1+rng.Intn(128))
		case 3:
			rec.Load2D(fn, base+uint64(rng.Intn(1<<22)), 16, 16, 1920)
		case 4:
			rec.Store2D(fn, base+uint64(rng.Intn(1<<22)), 8, 8, 1920)
		case 5:
			rec.Branch(fn, trace.BranchID(rng.Intn(64)), rng.Intn(3) > 0)
		case 6:
			rec.Loop(fn, trace.BranchID(rng.Intn(64)), 1+rng.Intn(32))
		case 7:
			rec.Call(fn)
		}
	}
	return append([]byte(nil), rec.Bytes()...)
}

// TestReplayEventsEquivalence is the fast-path fidelity gate: for all five
// Table IV configurations, a machine driven by the devirtualized
// ReplayEvents loop — and one driven by trace.ReplayParsed through the
// Sink interface — must land on exactly the counters of the pinned
// event-by-event trace.Replay reference. The buffer is replayed twice so
// hidden state (fetch cursors, predictor history, cache LRU and MRU)
// that diverged in round one would surface as a counter difference in
// round two.
func TestReplayEventsEquivalence(t *testing.T) {
	buf := replayWorkload()
	parsed, err := trace.Parse(buf)
	if err != nil {
		t.Fatal(err)
	}
	img := trace.NewImage(nil)
	for _, cfg := range TableIV() {
		ref := NewMachine(cfg, img)
		fast := NewMachine(cfg, img)
		sink := NewMachine(cfg, img)
		for round := 0; round < 2; round++ {
			if err := trace.Replay(buf, ref); err != nil {
				t.Fatal(err)
			}
			fast.ReplayEvents(parsed)
			trace.ReplayParsed(parsed, sink)
			if r, f := ref.Result(), fast.Result(); !r.Equal(f) {
				t.Fatalf("%s round %d: ReplayEvents diverged:\n ref  %+v\n fast %+v", cfg.Name, round, r, f)
			}
			if r, s := ref.Result(), sink.Result(); !r.Equal(s) {
				t.Fatalf("%s round %d: ReplayParsed diverged:\n ref  %+v\n sink %+v", cfg.Name, round, r, s)
			}
		}
	}
}

// BenchmarkReplayEvents compares the devirtualized parsed loop against the
// streaming reference on the same machine configuration.
func BenchmarkReplayEvents(b *testing.B) {
	buf := replayWorkload()
	parsed, err := trace.Parse(buf)
	if err != nil {
		b.Fatal(err)
	}
	img := trace.NewImage(nil)
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := NewMachine(Baseline(), img)
			if err := trace.Replay(buf, m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parsed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := NewMachine(Baseline(), img)
			m.ReplayEvents(parsed)
		}
	})
}
