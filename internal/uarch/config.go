// Package uarch implements the trace-driven microarchitecture simulator the
// experiments run on: a Sniper-style interval core model fed by the
// instrumented codec's event stream, with structural caches, iTLB and
// branch predictors underneath. Machine implements trace.Sink; Result
// carries the counters that internal/perf turns into Top-down slot
// fractions and MPKI, the quantities the paper reports.
package uarch

import "repro/internal/uarch/cache"

// CacheParams sizes one level.
type CacheParams struct {
	Size  int
	Line  int
	Assoc int
}

// Config is one microarchitecture configuration (a Table IV row).
type Config struct {
	Name string

	L1D CacheParams
	L1I CacheParams
	L2  CacheParams
	L3  CacheParams
	L4  *CacheParams // nil when absent

	ITLBEntries int
	ROBSize     int
	RSSize      int
	// IssueAtDispatch lets micro-ops issue the cycle they dispatch,
	// shortening the schedule and easing reservation-station pressure.
	IssueAtDispatch bool
	Predictor       string // "pentium_m" or "tage"
	// NextLinePrefetch enables a simple ascending-stream L1d prefetcher.
	// Off in every Table IV configuration; pf_op (an extension beyond the
	// paper) turns it on to show where a prefetch-optimized server would
	// land in the scheduling study.
	NextLinePrefetch bool

	// Fixed pipeline parameters (identical across Table IV rows).
	WidthUops     int     // pipeline width in micro-ops per cycle
	FreqGHz       float64 // core clock
	BranchPenalty int     // mispredict flush cycles

	// Access latencies (cycles) for a hit in each level.
	LatL2, LatL3, LatL4, LatMem int
}

// Baseline returns the default configuration, Sniper's Gainestown model as
// published in Table IV: 32K L1s, 256K L2, 8M L3, 128-entry iTLB, 128-entry
// ROB, 36-entry RS, no issue-at-dispatch, Pentium M branch predictor.
func Baseline() Config {
	return Config{
		Name: "baseline",
		L1D:  CacheParams{32 << 10, 64, 8},
		L1I:  CacheParams{32 << 10, 64, 8},
		L2:   CacheParams{256 << 10, 64, 8},
		L3:   CacheParams{8192 << 10, 64, 16},

		ITLBEntries:     128,
		ROBSize:         128,
		RSSize:          36,
		IssueAtDispatch: false,
		Predictor:       "pentium_m",

		WidthUops:     4,
		FreqGHz:       3.5,
		BranchPenalty: 14,
		LatL2:         12,
		LatL3:         38,
		LatL4:         70,
		LatMem:        190,
	}
}

// FeOp is optimized against front-end stalls: doubled L1i and iTLB.
func FeOp() Config {
	c := Baseline()
	c.Name = "fe_op"
	c.L1I.Size = 64 << 10
	c.ITLBEntries = 256
	return c
}

// BeOp1 attacks back-end memory stalls with capacity: doubled L1d and L2,
// halved L3 backed by a new 16M L4.
func BeOp1() Config {
	c := Baseline()
	c.Name = "be_op1"
	c.L1D.Size = 64 << 10
	c.L2.Size = 512 << 10
	c.L3.Size = 4096 << 10
	c.L4 = &CacheParams{16384 << 10, 64, 16}
	return c
}

// BeOp2 attacks back-end core stalls with pipeline resources: doubled ROB
// and RS plus issue-at-dispatch.
func BeOp2() Config {
	c := Baseline()
	c.Name = "be_op2"
	c.ROBSize = 256
	c.RSSize = 72
	c.IssueAtDispatch = true
	return c
}

// BsOp replaces the Pentium M predictor with TAGE to cut bad speculation.
func BsOp() Config {
	c := Baseline()
	c.Name = "bs_op"
	c.Predictor = "tage"
	return c
}

// PfOp is an extension configuration beyond Table IV: the baseline plus a
// next-line L1d stream prefetcher, targeting the streaming portion of the
// memory-bound stalls.
func PfOp() Config {
	c := Baseline()
	c.Name = "pf_op"
	c.NextLinePrefetch = true
	return c
}

// TableIV lists the five configurations in paper order.
func TableIV() []Config {
	return []Config{Baseline(), FeOp(), BeOp1(), BeOp2(), BsOp()}
}

// Extended returns Table IV plus the extension configurations.
func Extended() []Config {
	return append(TableIV(), PfOp())
}

// ByName returns the configuration (Table IV or extension) with the given
// name.
func ByName(name string) (Config, bool) {
	for _, c := range Extended() {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}

func (p CacheParams) cacheConfig(name string) cache.Config {
	return cache.Config{Name: name, Size: p.Size, LineSize: p.Line, Assoc: p.Assoc}
}
