package uarch

import "testing"

func TestResultEqual(t *testing.T) {
	a := &Result{Config: "baseline", Insts: 100, Uops: 150, WidthUops: 4, FreqGHz: 2.9}
	b := &Result{Config: "baseline", Insts: 100, Uops: 150, WidthUops: 4, FreqGHz: 2.9}
	if !a.Equal(b) {
		t.Fatal("identical results reported unequal")
	}
	b.L1D.Misses++
	if a.Equal(b) {
		t.Fatal("differing L1D misses reported equal")
	}
	var nilr *Result
	if a.Equal(nilr) || nilr.Equal(a) {
		t.Fatal("nil compared equal to non-nil")
	}
	if !nilr.Equal(nil) {
		t.Fatal("nil != nil")
	}
}
