package uarch

import (
	"testing"

	"repro/internal/trace"
)

// TestFetchFootprintPackedVsUnpacked: the same instruction stream touches
// about half the i-cache lines once FDO packs the hot blocks.
func TestFetchFootprintPackedVsUnpacked(t *testing.T) {
	run := func(packed bool) uint64 {
		img := trace.NewImage(nil)
		if packed {
			img = img.Relayout(nil, map[trace.FuncID]bool{trace.FnAnalyse: true})
		}
		m := NewMachine(Baseline(), img)
		m.Ops(trace.FnAnalyse, 100000) // long stream in one function
		return m.Result().L1I.Accesses
	}
	unpacked, packed := run(false), run(true)
	if packed >= unpacked {
		t.Fatalf("packed fetch accesses %d not below unpacked %d", packed, unpacked)
	}
	// The dilution factor is ~2x for a function with cold tails.
	if packed*3 < unpacked {
		t.Fatalf("dilution implausibly high: %d vs %d", unpacked, packed)
	}
}

// TestFetchStaysWithinRegion: the walked line addresses never leave the
// function's region.
func TestFetchStaysWithinRegion(t *testing.T) {
	img := trace.NewImage(nil)
	m := NewMachine(Baseline(), img)
	r := img.Region(trace.FnSAD)
	m.Ops(trace.FnSAD, 1<<16) // far more than the span: must wrap
	// Indirect check: a second, far-away function remains cold in the TLB
	// until first touched.
	itlbBefore := m.Result().ITLB.Misses
	m.Call(trace.FnDecParse)
	if m.Result().ITLB.Misses <= itlbBefore && r.Addr>>12 != img.Region(trace.FnDecParse).Addr>>12 {
		t.Fatal("touching a new page did not reach the iTLB")
	}
}

// TestHotLoopStaysCacheResident: a single hot function's loop re-executed
// many times misses only on first touch.
func TestHotLoopStaysCacheResident(t *testing.T) {
	m := newTestMachine(Baseline())
	for i := 0; i < 1000; i++ {
		m.Ops(trace.FnSAD, 64)
	}
	r := m.Result()
	// Hot span of pixel_sad is ~512B unpacked = 8 lines; everything after
	// warmup must hit.
	if r.L1I.Misses > 16 {
		t.Fatalf("hot loop missed %d times", r.L1I.Misses)
	}
}

// TestManyFunctionsThrashSmallL1I: alternating across the whole hot set
// exceeds 32K and misses, while 64K (fe_op) captures it.
func TestManyFunctionsThrashSmallL1I(t *testing.T) {
	run := func(cfg Config) float64 {
		m := newTestMachine(cfg)
		fns := []trace.FuncID{}
		for f := trace.FuncID(1); f < trace.NumFuncs; f++ {
			fns = append(fns, f)
		}
		for i := 0; i < 4000; i++ {
			fn := fns[i%len(fns)]
			m.Call(fn)
			m.Ops(fn, 200)
		}
		r := m.Result()
		return float64(r.L1I.Misses) / float64(r.L1I.Accesses)
	}
	base, fe := run(Baseline()), run(FeOp())
	if base < 0.001 {
		t.Fatalf("full hot set should stress a 32K L1i (miss rate %f)", base)
	}
	if fe >= base {
		t.Fatalf("fe_op miss rate %f not below baseline %f", fe, base)
	}
}

// TestITLBCapacityEffect: touching more pages than the iTLB holds causes
// walks; fe_op's doubled iTLB absorbs more.
func TestITLBCapacityEffect(t *testing.T) {
	// The default image spans ~40 pages, well inside 128 entries; exercise
	// capacity by aliasing many synthetic regions through repeated
	// icache-visible calls at page granularity via data-independent calls.
	m := newTestMachine(Baseline())
	for f := trace.FuncID(1); f < trace.NumFuncs; f++ {
		m.Call(f)
	}
	r := m.Result()
	if r.ITLB.Misses == 0 {
		t.Fatal("first touches must miss the iTLB")
	}
	if r.ITLB.Misses > r.ITLB.Accesses {
		t.Fatal("more misses than accesses")
	}
}
