package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar registration: expvar.Publish panics on a
// duplicate name, and tests may start more than one server per process.
var publishOnce sync.Once

// Publish exports the default registry as the expvar variable "obs", so
// the standard /debug/vars page includes the full metrics snapshot.
func Publish() {
	publishOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any {
			return Default().Snapshot()
		}))
	})
}

// Mux returns a fresh mux carrying the standard debug endpoints every
// binary's -debug-addr serves:
//
//	/metrics     — the default registry snapshot as indented JSON
//	/debug/vars  — expvar, including the "obs" snapshot
//	/debug/pprof — the standard pprof profile index
//
// The serving layer mounts its API routes on top of this mux so one
// listener carries both the service and its observability side door.
func Mux() *http.ServeMux {
	Publish()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Default().Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug HTTP endpoint on addr and returns the bound
// listener address (useful when addr ends in ":0"). It serves Mux until
// the process exits; Serve fails fast (rather than in the background) when
// the address cannot be bound.
func Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug endpoint: %w", err)
	}
	go http.Serve(ln, Mux())
	return ln.Addr().String(), nil
}
