package obs

import (
	"encoding/json"
	"fmt"
	"os"
	osexec "os/exec"
	"runtime"
	"strings"
	"time"
)

// Manifest is the end-of-run record a cmd writes with -metrics-out: what
// ran (tool, arguments, code revision, Go version), how long it took, and
// the full metrics snapshot. It is the machine-readable counterpart of the
// -progress summary line, and the input the CI bench-regression gate and
// any cross-run comparison consume.
type Manifest struct {
	Tool        string    `json:"tool"`
	Args        []string  `json:"args"`
	GitRev      string    `json:"git_rev"`
	GoVersion   string    `json:"go_version"`
	Start       time.Time `json:"start"`
	WallSeconds float64   `json:"wall_seconds"`
	Metrics     Snapshot  `json:"metrics"`
}

// GitRevFallback is recorded when the working tree has no resolvable git
// revision (tarball checkouts, missing git binary).
const GitRevFallback = "unknown"

// GitRev resolves the HEAD commit of the repository containing dir, or
// GitRevFallback when there is none.
func GitRev(dir string) string {
	cmd := osexec.Command("git", "-C", dir, "rev-parse", "HEAD")
	out, err := cmd.Output()
	rev := strings.TrimSpace(string(out))
	if err != nil || rev == "" {
		return GitRevFallback
	}
	return rev
}

// NewManifest assembles a manifest for a run that began at start: args are
// the tool's command-line arguments, r is the registry to snapshot (nil
// selects Default).
func NewManifest(tool string, args []string, start time.Time, r *Registry) *Manifest {
	if r == nil {
		r = Default()
	}
	return &Manifest{
		Tool:        tool,
		Args:        args,
		GitRev:      GitRev("."),
		GoVersion:   runtime.Version(),
		Start:       start.UTC(),
		WallSeconds: time.Since(start).Seconds(),
		Metrics:     r.Snapshot(),
	}
}

// WriteFile serializes the manifest as indented JSON to path.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal manifest: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	return nil
}

// ReadManifest loads a manifest previously written by WriteFile.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: parse manifest %s: %w", path, err)
	}
	return &m, nil
}
